#!/bin/sh
# Extended tier-1 gate: build everything, vet, run the full test suite
# under the race detector, and smoke-test the dcserve demo path.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== evaluation-kernel determinism suite under -race (serial vs workers=N, incl. bit-parallel BFS)"
go test -race -count=1 \
    -run 'Determinis|AcrossWorker|IdenticalAcross|SamplePairs|Parallel|BitBFS|MultiSource' \
    ./internal/graph/ ./internal/rng/ ./internal/spanner/ \
    ./internal/routing/ ./internal/experiments/ ./internal/bench/

echo "== server fault-injection suite under -race (oversized lines, slow loris, disconnects, shutdown drain)"
go test -race -count=1 ./internal/server/

echo "== dccheck differential sweep (optimized == naive references, all gen families)"
go run ./cmd/dccheck -quick

echo "== dccheck per-backend sweep (each oracle backend forced, stretch bounds enforced)"
for be in landmark-bibfs exact-cached sparse-hub; do
    go run ./cmd/dccheck -quick -backend "$be" \
        || { echo "dccheck failed with backend $be forced"; exit 1; }
done

echo "== oracle godoc lint (every exported symbol in internal/oracle documented)"
UNDOC=$(awk '
    prev !~ /^\/\// && (/^(func|type|const|var) [A-Z]/ || /^func \([^)]*\) [A-Z]/) {
        print FILENAME ":" FNR ": " $0; bad = 1
    }
    { prev = $0 }
    END { exit bad }' $(ls internal/oracle/*.go | grep -v _test)) \
    || { echo "undocumented exported oracle symbols:"; echo "$UNDOC"; exit 1; }

echo "== wire v2/v3/v4 cross-version matrix (negotiation, trace-context downgrade, update/snapshot gating)"
go test -race -count=1 -run 'CrossVersion|FrameV3|TraceContext|TraceV2Dropped|BinaryTrace|UpdateSnap|BinaryUpdate|BinaryStatic|BinaryConcurrent' \
    ./internal/wire/ ./internal/server/

echo "== fuzz smoke (line protocol + wire frames v2+v3 + graphio reader, 5s each)"
go test -run '^$' -fuzz '^FuzzServerProtocol$' -fuzztime 5s ./internal/check/
go test -run '^$' -fuzz '^FuzzWireFrame$' -fuzztime 5s ./internal/check/
go test -run '^$' -fuzz '^FuzzGraphioRead$' -fuzztime 5s ./internal/check/

echo "== dcserve demo (512-node expander, 10k mixed queries)"
go run ./cmd/dcserve -demo -queries 10000

echo "== dcserve debug endpoint (/healthz, /metrics scrape)"
go build -o /tmp/dcserve.verify ./cmd/dcserve
rm -f /tmp/dcserve.verify.log
# The landmark backend is forced so the cache/path metric families the
# scrape below asserts on are the ones registered (auto would pick the
# exact table on a 512-node graph, which has no cache).
/tmp/dcserve.verify -listen 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -oracle-backend landmark-bibfs \
    >/tmp/dcserve.verify.log 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
DEBUG_ADDR=""
for _ in $(seq 1 100); do
    DEBUG_ADDR=$(sed -n 's/^debug listening on //p' /tmp/dcserve.verify.log)
    [ -n "$DEBUG_ADDR" ] && break
    sleep 0.1
done
[ -n "$DEBUG_ADDR" ] || { echo "dcserve never announced its debug address"; cat /tmp/dcserve.verify.log; exit 1; }
# The debug listener is up before the spanner+oracle build finishes, so
# wait for the serving banner — only then are the oracle and server
# metric families registered.
for _ in $(seq 1 200); do
    grep -q '^serving on ' /tmp/dcserve.verify.log && break
    sleep 0.1
done
grep -q '^serving on ' /tmp/dcserve.verify.log || { echo "dcserve never started serving"; cat /tmp/dcserve.verify.log; exit 1; }
curl -fsS "http://$DEBUG_ADDR/healthz" | grep -q ok || { echo "/healthz failed"; exit 1; }
curl -fsS "http://$DEBUG_ADDR/metrics" >/tmp/dcserve.verify.metrics
for fam in oracle_dist_queries_total oracle_cache_hits_total \
           oracle_backend_info oracle_backend_stretch_bound \
           oracle_dist_latency_seconds_bucket server_requests_total \
           server_active_conns go_goroutines; do
    grep -q "^$fam" /tmp/dcserve.verify.metrics || { echo "metric family $fam missing from /metrics"; exit 1; }
done
kill -INT "$SRV_PID"
wait "$SRV_PID" || { echo "dcserve did not drain cleanly"; exit 1; }
trap - EXIT
echo "scraped $(grep -c '^[a-z]' /tmp/dcserve.verify.metrics) samples from /metrics"

echo "== fleet e2e smoke (2-worker dcrouter + traced dcload over the binary protocol)"
go build -o /tmp/dcrouter.verify ./cmd/dcrouter
go build -o /tmp/dcload.verify ./cmd/dcload
rm -f /tmp/dcrouter.verify.log
# -d 64 keeps the 256-node graph inside the Theorem 2 expander regime
# (core.Build requires degree > n^{2/3}).
/tmp/dcrouter.verify -spawn 2 -n 256 -d 64 -listen 127.0.0.1:0 \
    -debug-addr 127.0.0.1:0 \
    >/tmp/dcrouter.verify.log 2>&1 &
RTR_PID=$!
trap 'kill "$RTR_PID" 2>/dev/null || true' EXIT
RTR_ADDR=""
for _ in $(seq 1 300); do
    RTR_ADDR=$(sed -n 's/^router serving on \([^ ]*\).*/\1/p' /tmp/dcrouter.verify.log)
    [ -n "$RTR_ADDR" ] && break
    sleep 0.1
done
[ -n "$RTR_ADDR" ] || { echo "dcrouter never announced its address"; cat /tmp/dcrouter.verify.log; exit 1; }
RTR_DEBUG=$(sed -n 's/^debug listening on //p' /tmp/dcrouter.verify.log)
[ -n "$RTR_DEBUG" ] || { echo "dcrouter never announced its debug address"; cat /tmp/dcrouter.verify.log; exit 1; }
# dcload exits 1 on zero answered requests or >1% errors, so its exit
# status is the assertion; -trace 8 sets the wire v3 sampling bit on
# every 8th request and verifies the target echoes it.
/tmp/dcload.verify -addr "$RTR_ADDR" -duration 2s -conns 4 -batch 1:3,16:1 -zipf 0.9 -trace 8 \
    >/tmp/dcload.verify.out 2>&1 \
    || { echo "dcload run against the router failed"; cat /tmp/dcload.verify.out /tmp/dcrouter.verify.log; exit 1; }
cat /tmp/dcload.verify.out
grep -q '^traced: [1-9][0-9]* requests confirmed sampled' /tmp/dcload.verify.out \
    || { echo "target never confirmed a sampled trace (v3 negotiation broken?)"; exit 1; }
echo "== flight recorder e2e (/debug/requests holds well-formed fan-out traces)"
curl -fsS "http://$RTR_DEBUG/debug/requests" >/tmp/dcrouter.verify.requests
python3 - <<'PYEOF'
import json
d = json.load(open("/tmp/dcrouter.verify.requests"))
assert d["recorded"] > 0, "flight recorder recorded nothing"
recs = d["requests"]
assert recs, "no requests drained from the recorder"
# Every record must carry a nonzero 16-hex-digit id and sane hops
# (hops append in completion order, so offsets need not be sorted).
for r in recs:
    assert len(r["id"]) == 16 and int(r["id"], 16) != 0, r["id"]
    for h in r["hops"]:
        assert h["offset_us"] >= 0 and h.get("dur_us", 0) >= 0, (r["id"], h)
        assert h["offset_us"] <= r["duration_us"] + 1, (r["id"], h)
# At least one fanned-out batch: split -> shard<i> -> merge hops with
# the split note naming the chunk/worker counts.
batch = next((r for r in recs
              for names in [[h["name"] for h in r["hops"]]]
              if "split" in names and "merge" in names
              and any(n.startswith("shard") for n in names)), None)
assert batch is not None, "no traced batch with split/shard/merge hops"
split = next(h for h in batch["hops"] if h["name"] == "split")
assert "chunks=" in split.get("note", "") and "workers=2" in split["note"], split
assert batch["duration_us"] > 0 and batch["path"] != "none"
print("flight recorder: %d traces, fan-out trace %s ok (%d hops, path=%s)"
      % (d["recorded"], batch["id"], len(batch["hops"]), batch["path"]))
PYEOF
kill -TERM "$RTR_PID"
wait "$RTR_PID" || { echo "dcrouter did not drain cleanly"; cat /tmp/dcrouter.verify.log; exit 1; }
trap - EXIT
grep -q '^drained, exiting' /tmp/dcrouter.verify.log || { echo "dcrouter missing drain banner"; cat /tmp/dcrouter.verify.log; exit 1; }
echo "fleet e2e: router drained cleanly"

echo "== dynamic churn e2e (dcserve -dynamic + dcload update mix, verified end state)"
rm -f /tmp/dcserve.dyn.log
# No expander regime needed here: dynamic mode maintains the incremental
# cluster spanner, so a thin regular graph exercises real topology churn.
/tmp/dcserve.verify -dynamic -n 256 -d 8 -listen 127.0.0.1:0 -oracle-backend exact-cached \
    >/tmp/dcserve.dyn.log 2>&1 &
DYN_PID=$!
trap 'kill "$DYN_PID" 2>/dev/null || true' EXIT
DYN_ADDR=""
for _ in $(seq 1 300); do
    DYN_ADDR=$(sed -n 's/^serving on \([^ ]*\).*/\1/p' /tmp/dcserve.dyn.log)
    [ -n "$DYN_ADDR" ] && break
    sleep 0.1
done
[ -n "$DYN_ADDR" ] || { echo "dynamic dcserve never started serving"; cat /tmp/dcserve.dyn.log; exit 1; }
# -updates drives edge mutations on a dedicated connection while queries
# race them; dcload's exit status asserts the final verify snapshot shows
# the maintained spanner equal to a from-scratch rebuild.
/tmp/dcload.verify -addr "$DYN_ADDR" -duration 2s -conns 2 -batch 1:3,8:1 -updates 50 \
    >/tmp/dcload.dyn.out 2>&1 \
    || { echo "dcload churn run failed"; cat /tmp/dcload.dyn.out /tmp/dcserve.dyn.log; exit 1; }
cat /tmp/dcload.dyn.out
grep -q '^update consistency: .*verified=true consistent=true' /tmp/dcload.dyn.out \
    || { echo "dynamic server end state not verified consistent"; exit 1; }
grep -Eq '^updates: sent=[1-9][0-9]* applied=[1-9]' /tmp/dcload.dyn.out \
    || { echo "no updates were applied during the churn run"; exit 1; }
kill -INT "$DYN_PID"
wait "$DYN_PID" || { echo "dynamic dcserve did not drain cleanly"; cat /tmp/dcserve.dyn.log; exit 1; }
trap - EXIT
echo "dynamic churn e2e: verified consistent end state"

echo "== dcspan CPU profile smoke"
rm -f /tmp/dcspan.verify.pprof
go run ./cmd/dcspan -n 512 -d 96 -trace -cpuprofile /tmp/dcspan.verify.pprof >/dev/null
test -s /tmp/dcspan.verify.pprof || { echo "cpuprofile is empty"; exit 1; }

echo "== dcbench quick smoke (schema-versioned BENCH_*.json)"
BENCH_DIR=$(mktemp -d /tmp/dcbench.verify.XXXXXX)
go run ./cmd/dcbench -quick -workers 2 -iters 1 -out "$BENCH_DIR"
BENCH_COUNT=$(ls "$BENCH_DIR"/BENCH_*.json | wc -l)
[ "$BENCH_COUNT" -ge 4 ] || { echo "dcbench emitted only $BENCH_COUNT scenarios, want >= 4"; exit 1; }
for f in "$BENCH_DIR"/BENCH_*.json; do
    for field in '"schema": "dcspanner/bench"' '"schema_version": 1' \
                 '"ns_per_op"' '"speedup_vs_serial"' '"fingerprint"' \
                 '"deterministic_across_workers": true'; do
        grep -q "$field" "$f" || { echo "$f missing $field"; exit 1; }
    done
done
echo "dcbench: $BENCH_COUNT scenarios validated in $BENCH_DIR"

echo "== dcbench -compare regression gate (self-compare must pass, slowed baseline must fail)"
go run ./cmd/dcbench -quick -workers 2 -iters 1 -run parallel_bfs,churn \
    -out "$BENCH_DIR" -compare "$BENCH_DIR" \
    || { echo "self-comparison against just-written baselines failed"; exit 1; }
# Corrupt one baseline's ns_per_op to 1 so any real timing regresses >25%.
sed 's/"ns_per_op": [0-9]*/"ns_per_op": 1/' "$BENCH_DIR/BENCH_parallel_bfs.json" \
    > "$BENCH_DIR/BENCH_parallel_bfs.json.tmp"
mv "$BENCH_DIR/BENCH_parallel_bfs.json.tmp" "$BENCH_DIR/BENCH_parallel_bfs.json"
if go run ./cmd/dcbench -quick -workers 2 -iters 1 -run parallel_bfs \
    -out /tmp -compare "$BENCH_DIR" 2>/dev/null; then
    echo "-compare did not fail against an impossible baseline"; exit 1
fi
rm -f /tmp/BENCH_parallel_bfs.json
echo "dcbench -compare: gate behaves"
rm -rf "$BENCH_DIR"

echo "verify: OK"
