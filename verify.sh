#!/bin/sh
# Extended tier-1 gate: build everything, vet, run the full test suite
# under the race detector, and smoke-test the dcserve demo path.
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== server fault-injection suite under -race (oversized lines, slow loris, disconnects, shutdown drain)"
go test -race -count=1 ./internal/server/

echo "== dcserve demo (512-node expander, 10k mixed queries)"
go run ./cmd/dcserve -demo -queries 10000

echo "verify: OK"
