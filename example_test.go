package dcspanner_test

import (
	"fmt"

	dcspanner "repro"
)

// Example demonstrates the core workflow: build a DC-spanner of an
// expander, certify its distance stretch, and substitute a routing onto
// it. All randomness is seeded, so the output is deterministic.
func Example() {
	g := dcspanner.MustRandomRegular(216, 60, 1)
	dc, err := dcspanner.Build(g, dcspanner.Options{
		Algorithm: dcspanner.AlgoExpander,
		Seed:      1,
		Expander:  dcspanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		panic(err)
	}
	rep := dcspanner.VerifyEdgeStretch(g, dc.Graph(), 3)
	fmt.Printf("stretch-3 violations: %d\n", rep.Violations)

	prob := dcspanner.RandomMatchingProblem(g.N(), 40, 2)
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		panic(err)
	}
	res := dcspanner.MeasureStretch(g.N(), onG, onH)
	fmt.Printf("distance stretch within budget: %v\n", res.DistanceStretch <= 3)
	// Output:
	// stretch-3 violations: 0
	// distance stretch within budget: true
}

// ExampleBuild_greedy builds a classical greedy 3-spanner of the explicit
// Margulis expander through the same API.
func ExampleBuild_greedy() {
	g := dcspanner.Margulis(8) // 64 vertices, deterministic
	dc, err := dcspanner.Build(g, dcspanner.Options{
		Algorithm: dcspanner.AlgoGreedy,
		Alpha:     3,
	})
	if err != nil {
		panic(err)
	}
	rep := dcspanner.VerifyEdgeStretch(g, dc.Graph(), 3)
	fmt.Printf("sparsified: %v, violations: %d\n", dc.Graph().M() < g.M(), rep.Violations)
	// Output:
	// sparsified: true, violations: 0
}

// ExampleNewOracle_backend serves distance queries through an explicitly
// chosen oracle backend. The exact-cached backend precomputes the
// all-pairs table, so every answer is the exact spanner distance — on
// small graphs it is also what OracleBackendAuto would pick.
func ExampleNewOracle_backend() {
	g := dcspanner.MustRandomRegular(216, 60, 1)
	dc, err := dcspanner.Build(g, dcspanner.Options{
		Algorithm: dcspanner.AlgoExpander,
		Seed:      1,
		Expander:  dcspanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		panic(err)
	}
	o, err := dcspanner.NewOracle(dc, dcspanner.OracleOptions{
		Backend: dcspanner.OracleBackendExactCached,
	})
	if err != nil {
		panic(err)
	}
	ans, err := o.Dist(3, 77)
	if err != nil {
		panic(err)
	}
	s := o.Stats()
	fmt.Printf("backend=%s stretchBound=%d exact=%v dist>0=%v\n",
		s.Backend, s.BackendStretchBound, ans.Exact, ans.Dist > 0)
	// Output:
	// backend=exact-cached stretchBound=1 exact=true dist>0=true
}

// ExampleMinCongestion approximates the paper's C(R) — the smallest
// congestion achievable by any routing — on a star workload whose optimum
// is forced.
func ExampleMinCongestion() {
	b := dcspanner.NewBuilder(7)
	for i := int32(1); i <= 6; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	prob := dcspanner.Problem{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 5, Dst: 6}}
	rt, err := dcspanner.MinCongestion(g, prob, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("C(R) =", rt.NodeCongestion(7))
	// Output:
	// C(R) = 3
}

// ExampleSimulatePackets runs the Section 1.1 store-and-forward model:
// five packets through one hub serialize into a six-step schedule.
func ExampleSimulatePackets() {
	k := 5
	var prob dcspanner.Problem
	var paths []dcspanner.Path
	for i := 0; i < k; i++ {
		src := int32(1 + i)
		dst := int32(1 + k + i)
		prob = append(prob, dcspanner.Pair{Src: src, Dst: dst})
		paths = append(paths, dcspanner.Path{src, 0, dst})
	}
	rt := &dcspanner.Routing{Problem: prob, Paths: paths}
	res, err := dcspanner.SimulatePackets(2*k+1, rt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan=%d congestion=%d\n", res.Makespan, res.Congestion)
	// Output:
	// makespan=6 congestion=5
}
