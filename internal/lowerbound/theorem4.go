package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Theorem4Analysis measures the Theorem 4 composite lower bound: the
// optimal-size 3-distance spanner of the composite fan graph and the
// adversarial routing whose congestion stretch is Ω(k) = Ω(n^{1/6}).
type Theorem4Analysis struct {
	Inst    *gen.Theorem4Instance
	H       *graph.Graph
	Removed []graph.Edge // k removed line edges per fan instance

	RoutingG *routing.Routing
	RoutingH *routing.Routing

	CongestionG int // 1 (the removed edges of one instance form a matching; across instances subsets overlap in ≤1 node)
	CongestionH int // ≥ k at each special node

	EdgesG, EdgesH  int
	PaperEdgeBound  float64 // n^{7/6} shape for the instance's parameters
	PaperBetaBound  float64 // (2k−1)/4
	MeasuredStretch float64 // CongestionH / CongestionG
}

// AnalyzeTheorem4 applies the Lemma 18 maximal removal to every fan
// instance of the composite graph (establishing the Ω(n^{7/6}) optimal
// spanner size), then builds the adversarial routing of a SINGLE instance
// — the removed edges of one fan, whose optimal congestion in G is 1 but
// which all funnel through that instance's special node in H, exactly as
// in the proof of Theorem 4 (which invokes Lemma 18 on one instance).
func AnalyzeTheorem4(inst *gen.Theorem4Instance) (*Theorem4Analysis, error) {
	k := inst.K
	removedSet := make(map[graph.Edge]bool, k*len(inst.Lines))
	var removed []graph.Edge
	var prob routing.Problem
	var pathsG, pathsH []routing.Path

	for i, line := range inst.Lines {
		s := inst.Specials[i]
		for j := 1; j <= k; j++ {
			u := line[2*(j-1)]
			v := line[2*(j-1)+1]
			w := line[2*j]
			e := graph.Edge{U: u, V: v}.Normalize()
			if removedSet[e] {
				return nil, fmt.Errorf("lowerbound: duplicate removal %v (family not edge-disjoint?)", e)
			}
			removedSet[e] = true
			removed = append(removed, e)
			if i == 0 {
				// The adversarial routing targets one instance.
				prob = append(prob, routing.Pair{Src: u, Dst: v})
				pathsG = append(pathsG, routing.Path{u, v})
				pathsH = append(pathsH, routing.Path{u, s, w, v})
			}
		}
	}
	h := inst.G.FilterEdges(func(e graph.Edge) bool { return !removedSet[e] })

	an := &Theorem4Analysis{
		Inst:     inst,
		H:        h,
		Removed:  removed,
		RoutingG: &routing.Routing{Problem: prob, Paths: pathsG},
		RoutingH: &routing.Routing{Problem: prob, Paths: pathsH},
		EdgesG:   inst.G.M(),
		EdgesH:   h.M(),
	}
	an.CongestionG = an.RoutingG.NodeCongestion(inst.G.N())
	an.CongestionH = an.RoutingH.NodeCongestion(inst.G.N())
	nTotal := float64(inst.G.N())
	an.PaperEdgeBound = math.Pow(nTotal, 7.0/6.0)
	an.PaperBetaBound = float64(2*k-1) / 4
	if an.CongestionG > 0 {
		an.MeasuredStretch = float64(an.CongestionH) / float64(an.CongestionG)
	}
	return an, nil
}

// Verify checks validity of both routings, spanner containment, and the
// per-instance edge accounting (each instance loses exactly k edges).
func (a *Theorem4Analysis) Verify() error {
	if err := a.RoutingG.Validate(a.Inst.G); err != nil {
		return fmt.Errorf("lowerbound: theorem4 G routing: %w", err)
	}
	if err := a.RoutingH.Validate(a.H); err != nil {
		return fmt.Errorf("lowerbound: theorem4 H routing: %w", err)
	}
	if !a.H.IsSubgraphOf(a.Inst.G) {
		return fmt.Errorf("lowerbound: H not a subgraph")
	}
	wantRemoved := a.Inst.K * len(a.Inst.Lines)
	if a.EdgesG-a.EdgesH != wantRemoved {
		return fmt.Errorf("lowerbound: removed %d edges, want %d", a.EdgesG-a.EdgesH, wantRemoved)
	}
	for i, p := range a.RoutingH.Paths {
		if p.Len() > 3 {
			return fmt.Errorf("lowerbound: substitute %d longer than 3", i)
		}
	}
	return nil
}
