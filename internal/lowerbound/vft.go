package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
)

// VFTAnalysis is the Figure 1 measurement: an f-vertex-fault-tolerant-
// style spanner of the clique–matching graph that keeps only f+1 matching
// edges, and the perfect-matching routing problem that forces congestion
// Ω(n^{2/3}) on the endpoints of the kept edges.
type VFTAnalysis struct {
	G *graph.Graph // two n/2-cliques + perfect matching
	H *graph.Graph // spanner keeping only f+1 matching edges
	F int          // the fault parameter, ⌈n^{1/3}⌉

	RoutingG *routing.Routing // the matching pairs routed over their own edges
	RoutingH *routing.Routing // balanced rerouting over the kept edges

	CongestionG int
	CongestionH int
	PaperBound  float64 // Ω(n^{2/3}): (n/2 − (f+1)) / (f+1) with balancing
}

// AnalyzeVFT builds the Figure 1 construction on the clique–matching
// graph with n vertices (n even). The spanner keeps the cliques intact
// (sparsifying them further cannot reduce congestion at the matching
// endpoints) and only the first f+1 matching edges, f = ⌈n^{1/3}⌉.
//
// The rerouted matching pairs are spread over the kept edges as evenly as
// possible — the best case for the spanner — and the congestion at kept-
// edge endpoints is still Ω(n^{2/3}).
func AnalyzeVFT(n int) (*VFTAnalysis, error) {
	if n < 8 || n%2 != 0 {
		return nil, fmt.Errorf("lowerbound: AnalyzeVFT needs even n >= 8")
	}
	g := gen.CliqueMatchingGraph(n)
	half := n / 2
	f := int(math.Ceil(math.Cbrt(float64(n))))
	kept := f + 1
	if kept > half {
		kept = half
	}
	h := g.FilterEdges(func(e graph.Edge) bool {
		// Matching edges are (i, half+i); drop those with i >= kept.
		if int(e.V) == int(e.U)+half {
			return int(e.U) < kept
		}
		return true
	})

	prob := make(routing.Problem, half)
	pathsG := make([]routing.Path, half)
	pathsH := make([]routing.Path, half)
	for i := 0; i < half; i++ {
		src, dst := int32(i), int32(half+i)
		prob[i] = routing.Pair{Src: src, Dst: dst}
		pathsG[i] = routing.Path{src, dst}
		if i < kept {
			pathsH[i] = routing.Path{src, dst}
			continue
		}
		// Balanced reroute via kept edge j: i → j → half+j → half+i.
		j := int32((i - kept) % kept)
		pathsH[i] = routing.Path{src, j, int32(half) + j, dst}
	}
	an := &VFTAnalysis{
		G: g, H: h, F: f,
		RoutingG: &routing.Routing{Problem: prob, Paths: pathsG},
		RoutingH: &routing.Routing{Problem: prob, Paths: pathsH},
	}
	an.CongestionG = an.RoutingG.NodeCongestion(n)
	an.CongestionH = an.RoutingH.NodeCongestion(n)
	an.PaperBound = float64(half-kept) / float64(kept)
	return an, nil
}

// Verify validates both routings and the spanner relationship.
func (a *VFTAnalysis) Verify() error {
	if err := a.RoutingG.Validate(a.G); err != nil {
		return fmt.Errorf("lowerbound: VFT G routing: %w", err)
	}
	if err := a.RoutingH.Validate(a.H); err != nil {
		return fmt.Errorf("lowerbound: VFT H routing: %w", err)
	}
	if !a.H.IsSubgraphOf(a.G) {
		return fmt.Errorf("lowerbound: VFT H not a subgraph")
	}
	if a.CongestionG != 1 {
		return fmt.Errorf("lowerbound: VFT C_G = %d, want 1", a.CongestionG)
	}
	return nil
}
