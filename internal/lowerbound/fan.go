// Package lowerbound constructs and measures the paper's lower-bound and
// separation witnesses: the Lemma 18 fan graph whose 3-distance spanners
// are forced into Ω(k) congestion stretch, the Theorem 4 composite graph
// (Ω(n^{7/6}) edges for any optimal 3-spanner with (3, Ω(n^{1/6}))
// congestion), the Figure 1 fault-tolerant-spanner counterexample, and
// the Lemma 2 separation between independent distance/congestion spanners
// and DC-spanners.
package lowerbound

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
)

// FanAnalysis is the Lemma 18 measurement on one fan instance.
type FanAnalysis struct {
	Fan     *gen.FanInstance
	H       *graph.Graph // the maximal-removal 3-distance spanner
	Removed []graph.Edge // E₁: one line edge removed per face (k edges)

	RoutingG *routing.Routing // the removed edges routed in G (their own edges)
	RoutingH *routing.Routing // their forced substitutes in H (all through s)

	CongestionG int // = 1: the removed edges form a matching
	CongestionH int // = k: every substitute passes the special node s
}

// AnalyzeFan builds the Lemma 18 spanner of maximal removal and the
// adversarial routing witnessing the congestion blow-up.
//
// The spanner removes the first line edge of every face f_j (positions
// (2j−2, 2j−1) along the line) and keeps everything else. Each removed
// edge keeps a 3-hop substitute a_{2j−1} → s → a_{2j+1} → a_{2j}
// (1-indexed), so H is a 3-distance spanner with |E| − k edges; by
// Lemma 18 (with x = 2k−1) no 3-distance spanner may remove
// asymptotically more.
func AnalyzeFan(f *gen.FanInstance) *FanAnalysis {
	k := f.K
	removedSet := make(map[graph.Edge]bool, k)
	removed := make([]graph.Edge, 0, k)
	for j := 1; j <= k; j++ {
		e := graph.Edge{U: f.Line[2*(j-1)], V: f.Line[2*(j-1)+1]}.Normalize()
		removedSet[e] = true
		removed = append(removed, e)
	}
	h := f.G.FilterEdges(func(e graph.Edge) bool { return !removedSet[e] })

	// Routing problem: the removed edges, oriented low line index → high.
	prob := make(routing.Problem, 0, k)
	pathsG := make([]routing.Path, 0, k)
	pathsH := make([]routing.Path, 0, k)
	for j := 1; j <= k; j++ {
		u := f.Line[2*(j-1)]   // a_{2j−1}, a ray tip
		v := f.Line[2*(j-1)+1] // a_{2j}, interior of the face
		w := f.Line[2*j]       // a_{2j+1}, the next ray tip
		prob = append(prob, routing.Pair{Src: u, Dst: v})
		pathsG = append(pathsG, routing.Path{u, v})
		pathsH = append(pathsH, routing.Path{u, f.S, w, v})
	}
	an := &FanAnalysis{
		Fan:      f,
		H:        h,
		Removed:  removed,
		RoutingG: &routing.Routing{Problem: prob, Paths: pathsG},
		RoutingH: &routing.Routing{Problem: prob, Paths: pathsH},
	}
	an.CongestionG = an.RoutingG.NodeCongestion(f.G.N())
	an.CongestionH = an.RoutingH.NodeCongestion(f.G.N())
	return an
}

// Verify checks the structural claims of the analysis: H is a spanning
// subgraph with exactly k fewer edges, both routings are valid, the G
// routing has congestion 1, and every substitute path has length ≤ 3
// (so H really is a 3-distance spanner on the removed edges).
func (a *FanAnalysis) Verify() error {
	f := a.Fan
	if a.H.M() != f.G.M()-f.K {
		return fmt.Errorf("lowerbound: spanner removed %d edges, want %d", f.G.M()-a.H.M(), f.K)
	}
	if err := a.RoutingG.Validate(f.G); err != nil {
		return fmt.Errorf("lowerbound: G routing invalid: %w", err)
	}
	if err := a.RoutingH.Validate(a.H); err != nil {
		return fmt.Errorf("lowerbound: H routing invalid: %w", err)
	}
	if a.CongestionG != 1 {
		return fmt.Errorf("lowerbound: C_G = %d, want 1", a.CongestionG)
	}
	for i, p := range a.RoutingH.Paths {
		if p.Len() > 3 {
			return fmt.Errorf("lowerbound: substitute %d has length %d > 3", i, p.Len())
		}
	}
	return nil
}

// ForcedThroughS reports whether every ≤3-hop substitute of every removed
// edge must pass through the special node s — the structural heart of
// Lemma 18. It enumerates all paths of length ≤ 3 between the endpoints
// in H and checks each contains s.
func (a *FanAnalysis) ForcedThroughS() bool {
	for _, e := range a.Removed {
		if !allShortPathsThrough(a.H, e.U, e.V, 3, a.Fan.S) {
			return false
		}
	}
	return true
}

// allShortPathsThrough enumerates simple paths of length ≤ limit from u to
// v in h (DFS; limit is tiny) and checks all of them contain w.
func allShortPathsThrough(h *graph.Graph, u, v int32, limit int, w int32) bool {
	var stack []int32
	ok := true
	var dfs func(x int32)
	dfs = func(x int32) {
		if !ok {
			return
		}
		if x == v {
			found := false
			for _, y := range stack {
				if y == w {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
			return
		}
		if len(stack) > limit {
			return
		}
		for _, y := range h.Neighbors(x) {
			onStack := false
			for _, z := range stack {
				if z == y {
					onStack = true
					break
				}
			}
			if onStack {
				continue
			}
			stack = append(stack, y)
			dfs(y)
			stack = stack[:len(stack)-1]
		}
	}
	stack = append(stack, u)
	dfs(u)
	return ok
}
