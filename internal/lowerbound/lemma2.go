package lowerbound

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/routing"
)

// Lemma2Analysis demonstrates the separation of Lemma 2: the spanner H of
// the Lemma 2 graph is simultaneously a 3-distance spanner and a low-
// congestion spanner, yet fails to be a (3, β)-DC-spanner for any
// β < n, witnessed by the perfect-matching routing problem.
type Lemma2Analysis struct {
	Inst *gen.Lemma2Instance

	// Unconstrained: each pair (a_i, b_i) routed over its private D_i
	// detour — congestion 1, but path length α+1 > α, so inadmissible as
	// an α-stretch substitute. This realizes the β-congestion-spanner
	// property (Definition 2 puts no length constraint on paths).
	Unconstrained *routing.Routing
	// Constrained: the best routing whose paths respect the α-stretch
	// budget (length ≤ α per unit-length pair). Every admissible path must
	// cross the single surviving matching edge (a_1, b_1).
	Constrained *routing.Routing

	CongestionG             int // optimal congestion of the problem in G (= 1)
	CongestionUnconstrained int // = 1: Definition 2 is satisfiable cheaply
	CongestionConstrained   int // = n: the DC-spanner property fails
}

// AnalyzeLemma2 builds both routings for the matching problem
// R = {(a_i, b_i)}.
func AnalyzeLemma2(inst *gen.Lemma2Instance) *Lemma2Analysis {
	n := inst.N
	prob := make(routing.Problem, n)
	uncon := make([]routing.Path, n)
	con := make([]routing.Path, n)
	a1, b1 := inst.A[0], inst.B[0]
	for i := 0; i < n; i++ {
		ai, bi := inst.A[i], inst.B[i]
		prob[i] = routing.Pair{Src: ai, Dst: bi}
		// Private detour through D_i (length alpha+1).
		d := make(routing.Path, 0, inst.Alpha+2)
		d = append(d, ai)
		d = append(d, inst.D[i]...)
		d = append(d, bi)
		uncon[i] = d
		// Length-constrained route through (a_1, b_1).
		if i == 0 {
			con[i] = routing.Path{ai, bi}
		} else {
			con[i] = routing.Path{ai, a1, b1, bi}
		}
	}
	an := &Lemma2Analysis{
		Inst:          inst,
		Unconstrained: &routing.Routing{Problem: prob, Paths: uncon},
		Constrained:   &routing.Routing{Problem: prob, Paths: con},
	}
	an.CongestionG = 1 // each pair routes over its own matching edge in G
	total := inst.G.N()
	an.CongestionUnconstrained = an.Unconstrained.NodeCongestion(total)
	an.CongestionConstrained = an.Constrained.NodeCongestion(total)
	return an
}

// Verify checks both routings are valid in H, the unconstrained routing
// has congestion 1, the constrained routing respects the α·l(p) length
// budget, and the constrained congestion equals n.
func (a *Lemma2Analysis) Verify() error {
	inst := a.Inst
	if err := a.Unconstrained.Validate(inst.H); err != nil {
		return fmt.Errorf("lowerbound: lemma2 unconstrained: %w", err)
	}
	if err := a.Constrained.Validate(inst.H); err != nil {
		return fmt.Errorf("lowerbound: lemma2 constrained: %w", err)
	}
	if a.CongestionUnconstrained != 1 {
		return fmt.Errorf("lowerbound: unconstrained congestion %d, want 1", a.CongestionUnconstrained)
	}
	alpha := inst.Alpha
	for i, p := range a.Constrained.Paths {
		if p.Len() > alpha {
			return fmt.Errorf("lowerbound: constrained path %d length %d > α=%d", i, p.Len(), alpha)
		}
	}
	if a.CongestionConstrained != inst.N {
		return fmt.Errorf("lowerbound: constrained congestion %d, want %d", a.CongestionConstrained, inst.N)
	}
	return nil
}

// NoShortPathAvoids checks the structural core of the separation: every
// path of length ≤ α between a_i and b_i (i ≥ 2) in H passes through the
// edge (a_1, b_1)'s endpoints — there is no admissible substitute that
// avoids the bottleneck. Checked exhaustively for the given i.
func (a *Lemma2Analysis) NoShortPathAvoids(i int) bool {
	inst := a.Inst
	if i == 0 {
		return true
	}
	// Any a-to-b crossing uses (a_1,b_1) or a full D_j path (length α+1).
	// A path of length ≤ α therefore must include both a_1 and b_1.
	return allShortPathsThrough(inst.H, inst.A[i], inst.B[i], inst.Alpha, inst.A[0]) &&
		allShortPathsThrough(inst.H, inst.A[i], inst.B[i], inst.Alpha, inst.B[0])
}
