package lowerbound

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func TestAnalyzeFanBasics(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		f := gen.FanGraph(k)
		an := AnalyzeFan(f)
		if err := an.Verify(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if an.CongestionH != k {
			t.Fatalf("k=%d: C_H = %d, want %d", k, an.CongestionH, k)
		}
	}
}

func TestFanSpannerIs3Spanner(t *testing.T) {
	f := gen.FanGraph(6)
	an := AnalyzeFan(f)
	rep := spanner.VerifyEdgeStretch(f.G, an.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("fan spanner violates stretch 3: max %v", rep.MaxStretch)
	}
}

func TestFanForcedThroughS(t *testing.T) {
	f := gen.FanGraph(5)
	an := AnalyzeFan(f)
	if !an.ForcedThroughS() {
		t.Fatal("some removed edge has a ≤3-hop substitute avoiding s")
	}
}

func TestFanCongestionBeatsLemma18Bound(t *testing.T) {
	// Lemma 18 guarantees β ≥ x/4 with x = 2k−1; the construction actually
	// achieves β = k ≥ (2k−1)/4.
	for _, k := range []int{2, 5, 9} {
		f := gen.FanGraph(k)
		an := AnalyzeFan(f)
		bound := float64(2*k-1) / 4
		if float64(an.CongestionH) < bound {
			t.Fatalf("k=%d: C_H = %d below Lemma 18 bound %v", k, an.CongestionH, bound)
		}
	}
}

func TestAnalyzeTheorem4Affine(t *testing.T) {
	inst, err := gen.Theorem4Affine(7)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTheorem4(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Verify(); err != nil {
		t.Fatal(err)
	}
	if an.CongestionG != 1 {
		t.Fatalf("C_G = %d, want 1", an.CongestionG)
	}
	if an.CongestionH != inst.K {
		t.Fatalf("C_H = %d, want k = %d", an.CongestionH, inst.K)
	}
	if an.MeasuredStretch < an.PaperBetaBound {
		t.Fatalf("measured stretch %v below paper bound %v", an.MeasuredStretch, an.PaperBetaBound)
	}
	// Edge accounting: each instance loses exactly k edges.
	wantRemoved := inst.K * len(inst.Lines)
	if an.EdgesG-an.EdgesH != wantRemoved {
		t.Fatalf("removed %d, want %d", an.EdgesG-an.EdgesH, wantRemoved)
	}
}

func TestTheorem4SpannerIs3Spanner(t *testing.T) {
	inst, err := gen.Theorem4Affine(5)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTheorem4(inst)
	if err != nil {
		t.Fatal(err)
	}
	rep := spanner.VerifyEdgeStretch(inst.G, an.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("theorem4 spanner violates stretch 3: max %v", rep.MaxStretch)
	}
}

func TestAnalyzeTheorem4Random(t *testing.T) {
	r := rng.New(31)
	inst, err := gen.Theorem4Random(150, 40, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeTheorem4(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Verify(); err != nil {
		t.Fatal(err)
	}
	if an.CongestionH != 3 {
		t.Fatalf("C_H = %d, want 3", an.CongestionH)
	}
}

func TestAnalyzeVFT(t *testing.T) {
	an, err := AnalyzeVFT(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Verify(); err != nil {
		t.Fatal(err)
	}
	// f = ⌈64^{1/3}⌉ = 4; kept = 5; rerouted = 27; balanced congestion at a
	// kept endpoint ≈ ⌈27/5⌉ + its own pair + passthrough.
	if an.CongestionH < int(an.PaperBound) {
		t.Fatalf("C_H = %d below paper bound %v", an.CongestionH, an.PaperBound)
	}
	if an.CongestionH <= 2 {
		t.Fatalf("VFT congestion %d shows no blow-up", an.CongestionH)
	}
}

func TestVFTSpannerIs3Spanner(t *testing.T) {
	an, err := AnalyzeVFT(32)
	if err != nil {
		t.Fatal(err)
	}
	rep := spanner.VerifyEdgeStretch(an.G, an.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("VFT spanner violates stretch 3: max %v", rep.MaxStretch)
	}
}

func TestVFTRejectsBadN(t *testing.T) {
	if _, err := AnalyzeVFT(7); err == nil {
		t.Fatal("accepted odd n")
	}
	if _, err := AnalyzeVFT(4); err == nil {
		t.Fatal("accepted tiny n")
	}
}

func TestAnalyzeLemma2(t *testing.T) {
	inst := gen.Lemma2Graph(10, 3)
	an := AnalyzeLemma2(inst)
	if err := an.Verify(); err != nil {
		t.Fatal(err)
	}
	if an.CongestionConstrained != 10 {
		t.Fatalf("constrained congestion %d, want 10", an.CongestionConstrained)
	}
	if an.CongestionUnconstrained != 1 {
		t.Fatalf("unconstrained congestion %d, want 1", an.CongestionUnconstrained)
	}
}

func TestLemma2HIs3Spanner(t *testing.T) {
	inst := gen.Lemma2Graph(8, 3)
	rep := spanner.VerifyEdgeStretch(inst.G, inst.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("Lemma 2 H violates stretch 3: max %v", rep.MaxStretch)
	}
}

func TestLemma2NoShortPathAvoidsBottleneck(t *testing.T) {
	inst := gen.Lemma2Graph(6, 3)
	an := AnalyzeLemma2(inst)
	for i := 1; i < inst.N; i++ {
		if !an.NoShortPathAvoids(i) {
			t.Fatalf("pair %d has an admissible substitute avoiding (a_1,b_1)", i)
		}
	}
}

// Property: the fan analysis invariants hold for all k.
func TestPropertyFanAnalysis(t *testing.T) {
	check := func(seed uint64) bool {
		k := 1 + int(seed%12)
		f := gen.FanGraph(k)
		an := AnalyzeFan(f)
		if an.Verify() != nil {
			return false
		}
		return an.CongestionH == k && an.CongestionG == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyzeTheorem4(b *testing.B) {
	inst, err := gen.Theorem4Affine(7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeTheorem4(inst); err != nil {
			b.Fatal(err)
		}
	}
}
