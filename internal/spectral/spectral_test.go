package spectral

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestTopEigenClique(t *testing.T) {
	g := gen.Clique(10)
	l1, vec := TopEigen(g, 200, rng.New(1))
	if math.Abs(l1-9) > 1e-6 {
		t.Fatalf("λ1(K10) = %v, want 9", l1)
	}
	// Eigenvector should be (close to) uniform.
	for i := 1; i < len(vec); i++ {
		if math.Abs(vec[i]-vec[0]) > 1e-6 {
			t.Fatalf("top eigenvector not uniform: %v vs %v", vec[i], vec[0])
		}
	}
}

func TestExpansionClique(t *testing.T) {
	// K_n has λ2 = … = λn = −1.
	g := gen.Clique(12)
	lam, l1 := Expansion(g, 300, rng.New(2))
	if math.Abs(l1-11) > 1e-6 {
		t.Fatalf("λ1 = %v", l1)
	}
	if math.Abs(lam-1) > 1e-4 {
		t.Fatalf("λ(K12) = %v, want 1", lam)
	}
}

func TestExpansionCompleteBipartite(t *testing.T) {
	// K_{a,a} has eigenvalues ±a (bipartite), so λ = |λ_n| = a.
	g := gen.CompleteBipartite(6, 6)
	lam, l1 := Expansion(g, 400, rng.New(3))
	if math.Abs(l1-6) > 1e-3 {
		t.Fatalf("λ1 = %v, want 6", l1)
	}
	if math.Abs(lam-6) > 1e-3 {
		t.Fatalf("λ = %v, want 6 (bipartite bottom eigenvalue)", lam)
	}
}

func TestExpansionCycle(t *testing.T) {
	// Odd cycle C_n: eigenvalues 2cos(2πk/n); the largest magnitude below
	// λ1 = 2 is |λ_n| = 2cos(π/n). Cycles are poor expanders: λ → 2.
	n := 41
	g := gen.Cycle(n)
	lam, _ := Expansion(g, 3000, rng.New(4))
	want := 2 * math.Cos(math.Pi/float64(n))
	if math.Abs(lam-want) > 0.01 {
		t.Fatalf("λ(C%d) = %v, want %v", n, lam, want)
	}
}

func TestRandomRegularIsNearRamanujan(t *testing.T) {
	// Random d-regular graphs have λ ≈ 2√(d−1) w.h.p. Allow generous slack.
	r := rng.New(7)
	d := 8
	g := gen.MustRandomRegular(300, d, r)
	lam, l1 := Expansion(g, 400, r)
	if math.Abs(l1-float64(d)) > 1e-3 {
		t.Fatalf("λ1 = %v, want %d", l1, d)
	}
	ramanujan := 2 * math.Sqrt(float64(d-1))
	if lam > 1.5*ramanujan {
		t.Fatalf("λ = %v far above Ramanujan bound %v", lam, ramanujan)
	}
	if lam >= float64(d) {
		t.Fatalf("λ = %v not separated from d = %d", lam, d)
	}
}

func TestMargulisExpands(t *testing.T) {
	g := gen.Margulis(12)
	lam, l1 := Expansion(g, 500, rng.New(8))
	if lam >= l1 {
		t.Fatalf("Margulis: λ = %v >= λ1 = %v", lam, l1)
	}
	// The classical bound for the 8-regular multigraph is λ ≤ 5√2 ≈ 7.07;
	// the simple skeleton stays comfortably below its own top eigenvalue.
	if lam > 0.95*l1 {
		t.Fatalf("Margulis skeleton barely expands: λ/λ1 = %v", lam/l1)
	}
}

func TestIsExpander(t *testing.T) {
	r := rng.New(10)
	good := gen.MustRandomRegular(200, 10, r)
	if ok, lam := IsExpander(good, 9.0, r); !ok {
		t.Fatalf("random 10-regular rejected, λ = %v", lam)
	}
	bad := gen.Cycle(200)
	if ok, lam := IsExpander(bad, 1.0, r); ok {
		t.Fatalf("cycle accepted as expander with λ = %v", lam)
	}
}

func TestMixingCheckHoldsOnExpander(t *testing.T) {
	r := rng.New(11)
	g := gen.MustRandomRegular(200, 12, r)
	lam, _ := Expansion(g, 400, r)
	// Use measured λ with 25% slack for finite-size noise.
	rep := MixingCheck(g, 1.25*lam, 200, r)
	if rep.Violations != 0 {
		t.Fatalf("%d/%d mixing violations at λ = %v (max ratio %v)",
			rep.Violations, rep.Trials, lam, rep.MaxRatio)
	}
	if rep.MaxRatio <= 0 {
		t.Fatal("mixing check measured nothing")
	}
}

func TestMixingRatioLowerBoundsLambda(t *testing.T) {
	// The empirical max ratio can never exceed the true λ by much; on a
	// poor expander (cycle) the ratio should be large relative to degree.
	r := rng.New(12)
	g := gen.Cycle(100)
	rep := MixingCheck(g, 0.1, 100, r)
	if rep.Violations == 0 {
		t.Fatal("cycle should violate a λ=0.1 mixing bound")
	}
}

func TestConductanceSweep(t *testing.T) {
	r := rng.New(13)
	exp := gen.MustRandomRegular(128, 8, r)
	phiExp := ConductanceSweep(exp, 300, r)
	cyc := gen.Cycle(128)
	phiCyc := ConductanceSweep(cyc, 800, r)
	if phiCyc >= phiExp {
		t.Fatalf("cycle conductance %v >= expander conductance %v", phiCyc, phiExp)
	}
	if phiExp <= 0 {
		t.Fatalf("expander conductance %v <= 0", phiExp)
	}
}

func TestMatVecMatchesNaive(t *testing.T) {
	r := rng.New(14)
	g := gen.MustRandomRegular(60, 6, r)
	x := make([]float64, g.N())
	for i := range x {
		x[i] = r.Float64()
	}
	y := make([]float64, g.N())
	MatVec(g, x, y)
	for v := 0; v < g.N(); v++ {
		want := 0.0
		for _, w := range g.Neighbors(int32(v)) {
			want += x[w]
		}
		if math.Abs(y[v]-want) > 1e-12 {
			t.Fatalf("MatVec[%d] = %v, want %v", v, y[v], want)
		}
	}
}

func BenchmarkExpansion(b *testing.B) {
	r := rng.New(15)
	g := gen.MustRandomRegular(1000, 16, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Expansion(g, 100, rng.New(uint64(i)))
	}
}

func TestPaleySpectrumExact(t *testing.T) {
	// Paley graphs have eigenvalues (q-1)/2 and (−1 ± √q)/2 exactly, so
	// λ = (√q+1)/2 — a closed-form check of the whole estimation stack.
	for _, q := range []int{13, 17, 29, 37} {
		g, err := gen.Paley(q)
		if err != nil {
			t.Fatal(err)
		}
		lam, l1 := Expansion(g, 600, rng.New(uint64(q)))
		wantTop := float64(q-1) / 2
		wantLam := (math.Sqrt(float64(q)) + 1) / 2
		if math.Abs(l1-wantTop) > 1e-6 {
			t.Fatalf("Paley(%d): λ1 = %v, want %v", q, l1, wantTop)
		}
		if math.Abs(lam-wantLam) > 1e-4 {
			t.Fatalf("Paley(%d): λ = %v, want %v", q, lam, wantLam)
		}
	}
}
