// Package spectral estimates adjacency-matrix eigenvalues of graphs and
// verifies the expander properties the paper's theorems assume.
//
// The paper (Section 3) calls an n-node graph a spectral expander with
// expansion λ when max(|λ₂|, |λ_n|) ≤ λ, where λ₁ ≥ … ≥ λ_n are the
// adjacency eigenvalues ordered by magnitude. For the Δ-regular graphs
// used throughout, λ₁ = Δ with the all-ones eigenvector, so power
// iteration on the complement of the top eigenvector converges to exactly
// max(|λ₂|, |λ_n|). The package certifies — rather than assumes — the
// premise of Theorem 2 on every generated input.
package spectral

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MatVec computes y = A·x for the adjacency matrix of g, in parallel over
// vertex chunks. len(x) and len(y) must equal g.N().
func MatVec(g *graph.Graph, x, y []float64) {
	graph.ParallelRange(g.N(), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			sum := 0.0
			for _, w := range g.Neighbors(int32(v)) {
				sum += x[w]
			}
			y[v] = sum
		}
	})
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func scale(x []float64, c float64) {
	for i := range x {
		x[i] *= c
	}
}

// subtractProjection removes the component of x along the unit vector u.
func subtractProjection(x, u []float64) {
	c := dot(x, u)
	for i := range x {
		x[i] -= c * u[i]
	}
}

// shiftedPower runs power iteration on M = sign·A + c·I, optionally
// deflating the unit vector defl every step. It returns the Rayleigh
// quotient xᵀMx of the converged unit vector (an estimate of the largest
// eigenvalue of M restricted to defl's complement) and the vector itself.
//
// Shifting by c > 0 makes M's spectrum strictly ordered even when A has
// eigenvalue ties of opposite sign (bipartite graphs have λ_n = −λ₁, on
// which unshifted power iteration oscillates forever).
func shiftedPower(g *graph.Graph, sign, c float64, iters int, defl []float64, r *rng.RNG) (float64, []float64) {
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 + r.Norm64()
	}
	if defl != nil {
		subtractProjection(x, defl)
	}
	nx := norm(x)
	if nx == 0 {
		return 0, x
	}
	scale(x, 1/nx)
	mu := 0.0
	for it := 0; it < iters; it++ {
		MatVec(g, x, y)
		for i := range y {
			y[i] = sign*y[i] + c*x[i]
		}
		if defl != nil {
			subtractProjection(y, defl) // re-deflate against drift
		}
		ny := norm(y)
		if ny == 0 {
			return 0, x
		}
		mu = dot(x, y)
		scale(y, 1/ny)
		x, y = y, x
	}
	return mu, x
}

// TopEigen estimates λ₁ (the most positive adjacency eigenvalue, which is
// also the Perron value for connected graphs) and its eigenvector. It
// power-iterates on A + cI with c = Δ_max + 1, which is positive definite
// and has a strictly largest eigenvalue λ₁ + c, so it converges even on
// bipartite graphs.
func TopEigen(g *graph.Graph, iters int, r *rng.RNG) (float64, []float64) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	c := float64(g.MaxDegree()) + 1
	mu, v := shiftedPower(g, 1, c, iters, nil, r)
	return mu - c, v
}

// Expansion estimates λ = max(|λ₂|, |λ_n|) and λ₁. λ₂ comes from power
// iteration on A + cI deflated against the top eigenvector; λ_n from power
// iteration on cI − A (whose top eigenvalue is c − λ_n). For Δ-regular
// graphs λ₁ = Δ with the uniform eigenvector, making the deflation exact.
func Expansion(g *graph.Graph, iters int, r *rng.RNG) (lambda, lambda1 float64) {
	n := g.N()
	if n <= 1 {
		return 0, 0
	}
	c := float64(g.MaxDegree()) + 1
	mu1, v1 := shiftedPower(g, 1, c, iters, nil, r)
	l1 := mu1 - c
	mu2, _ := shiftedPower(g, 1, c, iters, v1, r)
	l2 := mu2 - c
	muN, _ := shiftedPower(g, -1, c, iters, nil, r)
	ln := c - muN
	lam := math.Abs(l2)
	if a := math.Abs(ln); a > lam {
		// Guard: on disconnected or tiny graphs the (−A) iteration can
		// converge back to −λ₁'s magnitude only if λ_n = −λ₁; that is the
		// correct answer for bipartite graphs, so no special-casing.
		lam = a
	}
	return lam, l1
}

// IsExpander reports whether g certifies as a spectral expander with
// expansion at most maxLambda, returning the measured λ as well.
func IsExpander(g *graph.Graph, maxLambda float64, r *rng.RNG) (bool, float64) {
	lam, _ := Expansion(g, 300, r)
	return lam <= maxLambda, lam
}

// MixingReport summarizes an empirical check of the expander mixing lemma
// (Lemma 3): for node subsets S, T,
//
//	|e(S,T) − (Δ/n)·|S|·|T|| ≤ λ·√(|S|·|T|),
//
// where e(S,T) counts ordered pairs (u ∈ S, v ∈ T) with {u,v} ∈ E.
type MixingReport struct {
	Trials         int
	MaxDiscrepancy float64 // max over trials of |e(S,T) − Δ|S||T|/n|
	MaxRatio       float64 // max over trials of discrepancy / √(|S||T|) — an empirical λ lower bound
	Violations     int     // trials exceeding lambda·√(|S||T|)
}

// MixingCheck runs `trials` random-subset instantiations of Lemma 3
// against the supplied λ bound on a Δ-regular graph (Δ is taken from the
// graph; for non-regular graphs the average degree is used, which is only
// a heuristic).
func MixingCheck(g *graph.Graph, lambda float64, trials int, r *rng.RNG) MixingReport {
	n := g.N()
	var rep MixingReport
	rep.Trials = trials
	if n == 0 {
		return rep
	}
	davg := 2 * float64(g.M()) / float64(n)
	inS := make([]bool, n)
	inT := make([]bool, n)
	for t := 0; t < trials; t++ {
		sSize := 1 + r.Intn(n)
		tSize := 1 + r.Intn(n)
		S := r.Sample(n, sSize)
		T := r.Sample(n, tSize)
		for _, v := range S {
			inS[v] = true
		}
		for _, v := range T {
			inT[v] = true
		}
		e := 0
		for _, u := range S {
			for _, w := range g.Neighbors(int32(u)) {
				if inT[w] {
					e++
				}
			}
		}
		expected := davg * float64(sSize) * float64(tSize) / float64(n)
		disc := math.Abs(float64(e) - expected)
		bound := lambda * math.Sqrt(float64(sSize)*float64(tSize))
		ratio := disc / math.Sqrt(float64(sSize)*float64(tSize))
		if disc > rep.MaxDiscrepancy {
			rep.MaxDiscrepancy = disc
		}
		if ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
		}
		if disc > bound {
			rep.Violations++
		}
		for _, v := range S {
			inS[v] = false
		}
		for _, v := range T {
			inT[v] = false
		}
	}
	return rep
}

// ConductanceSweep computes the minimum conductance over prefix cuts of
// the vertices ordered by the (deflated) second eigenvector — the standard
// spectral sweep certificate for edge expansion. Returns the minimum
// conductance φ(S) = e(S, V∖S) / min(vol(S), vol(V∖S)).
func ConductanceSweep(g *graph.Graph, iters int, r *rng.RNG) float64 {
	n := g.N()
	if n < 2 || g.M() == 0 {
		return 0
	}
	_, v1 := TopEigen(g, iters, r)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Norm64()
	}
	subtractProjection(x, v1)
	scale(x, 1/norm(x))
	for it := 0; it < iters; it++ {
		MatVec(g, x, y)
		subtractProjection(y, v1)
		ny := norm(y)
		if ny == 0 {
			break
		}
		scale(y, 1/ny)
		x, y = y, x
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Insertion of sort.Slice here is fine; n is small for sweep use.
	sortByScore(order, x)

	totalVol := 2 * g.M()
	inS := make([]bool, n)
	vol := 0
	cut := 0
	best := math.Inf(1)
	for i := 0; i < n-1; i++ {
		v := order[i]
		inS[v] = true
		vol += g.Degree(v)
		for _, w := range g.Neighbors(v) {
			if inS[w] {
				cut-- // edge became internal
			} else {
				cut++
			}
		}
		minVol := vol
		if totalVol-vol < minVol {
			minVol = totalVol - vol
		}
		if minVol > 0 {
			phi := float64(cut) / float64(minVol)
			if phi < best {
				best = phi
			}
		}
	}
	return best
}

func sortByScore(order []int32, score []float64) {
	// Simple bottom-up merge sort keyed by score; avoids importing sort
	// with a closure capture in the hot path and keeps determinism.
	n := len(order)
	buf := make([]int32, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if score[order[i]] <= score[order[j]] {
					buf[k] = order[i]
					i++
				} else {
					buf[k] = order[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = order[i]
				i++
				k++
			}
			for j < hi {
				buf[k] = order[j]
				j++
				k++
			}
		}
		copy(order, buf)
	}
}
