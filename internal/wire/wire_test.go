package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/oracle"
)

func TestNegotiate(t *testing.T) {
	cases := []struct {
		cMin, cMax, sMin, sMax uint16
		want                   uint16
		ok                     bool
	}{
		{2, 2, 2, 2, 2, true},
		{2, 3, 2, 2, 2, true},  // client newer, server caps
		{2, 2, 2, 5, 2, true},  // server newer, client caps
		{3, 7, 2, 4, 4, true},  // overlap picks the highest common
		{3, 3, 4, 9, 0, false}, // disjoint (client too old)
		{5, 9, 2, 4, 0, false}, // disjoint (server too old)
		{4, 2, 2, 9, 0, false}, // empty client interval
		{2, 9, 2, 9, 9, true},
	}
	for _, c := range cases {
		got, ok := Negotiate(c.cMin, c.cMax, c.sMin, c.sMax)
		if got != c.want || ok != c.ok {
			t.Errorf("Negotiate(%d,%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.cMin, c.cMax, c.sMin, c.sMax, got, ok, c.want, c.ok)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, 2, 7)
	if len(b) != HelloLen {
		t.Fatalf("hello is %d bytes, want %d", len(b), HelloLen)
	}
	minV, maxV, err := ParseHello(b)
	if err != nil || minV != 2 || maxV != 7 {
		t.Fatalf("ParseHello = (%d,%d,%v), want (2,7,nil)", minV, maxV, err)
	}
	if _, _, err := ParseHello(b[:5]); err == nil {
		t.Fatal("short hello accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] = 'x'
	if _, _, err := ParseHello(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic error = %v, want ErrBadMagic", err)
	}

	r := AppendHelloReply(nil, 2)
	v, err := ParseHelloReply(r)
	if err != nil || v != 2 {
		t.Fatalf("ParseHelloReply = (%d,%v), want (2,nil)", v, err)
	}
}

func TestMagicByteIsNonASCII(t *testing.T) {
	// The protocol sniffer relies on no text request starting with the
	// magic byte; ASCII (or even valid UTF-8 single bytes) would break it.
	if Magic[0] != MagicByte || MagicByte < 0x80 {
		t.Fatalf("Magic[0] = 0x%02x must be the non-ASCII MagicByte", Magic[0])
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: MsgStats, ID: 1},
		{Type: MsgDist, ID: 0xdeadbeef, Payload: AppendQuery(nil, oracle.Query{U: 3, V: -1})},
		{Type: MsgBatchR, ID: 1 << 60, Payload: bytes.Repeat([]byte{0xab}, 999)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f, 0); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

func TestFrameLimits(t *testing.T) {
	// Oversized length prefix: rejected after 4 bytes, before allocation.
	huge := binary.BigEndian.AppendUint32(nil, 1<<31)
	if _, err := ReadFrame(bytes.NewReader(huge), 1024); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized frame error = %v, want ErrFrameTooBig", err)
	}
	// Undersized length prefix (body can't hold type+id).
	tiny := binary.BigEndian.AppendUint32(nil, 3)
	if _, err := ReadFrame(bytes.NewReader(tiny), 1024); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame error = %v, want ErrShortFrame", err)
	}
	// Truncated body.
	trunc := AppendFrame(nil, Frame{Type: MsgStats, ID: 9, Payload: []byte("abcdef")})
	if _, err := ReadFrame(bytes.NewReader(trunc[:len(trunc)-3]), 1024); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame error = %v, want ErrUnexpectedEOF", err)
	}
	// Writer refuses frames its peer would reject.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgStats, ID: 1, Payload: make([]byte, 100)}, 50); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write error = %v, want ErrFrameTooBig", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected write still emitted %d bytes", buf.Len())
	}
}

func TestQueryAnswerCodecs(t *testing.T) {
	qs := []oracle.Query{{U: 0, V: 0}, {U: 7, V: 12}, {U: -1, V: 1 << 30}}
	got, err := DecodeQueries(AppendQueries(nil, qs))
	if err != nil {
		t.Fatalf("DecodeQueries: %v", err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Fatalf("query %d: got %+v, want %+v", i, got[i], qs[i])
		}
	}

	as := []oracle.Answer{
		{U: 1, V: 2, Dist: 3, Bound: 5, Exact: true},
		{U: 0, V: 9, Dist: -1, Bound: -1, Exact: false}, // Unreachable sentinels survive
	}
	back, err := DecodeAnswers(AppendAnswers(nil, as))
	if err != nil {
		t.Fatalf("DecodeAnswers: %v", err)
	}
	for i := range as {
		if back[i] != as[i] {
			t.Fatalf("answer %d: got %+v, want %+v", i, back[i], as[i])
		}
	}

	// Count/byte disagreement must error, not allocate the declared count.
	lying := AppendQueries(nil, qs)
	binary.BigEndian.PutUint32(lying[:4], 1<<30)
	if _, err := DecodeQueries(lying); err == nil || !strings.Contains(err.Error(), "declares") {
		t.Fatalf("lying count error = %v", err)
	}
	lyingA := AppendAnswers(nil, as)
	binary.BigEndian.PutUint32(lyingA[:4], 7)
	if _, err := DecodeAnswers(lyingA); err == nil {
		t.Fatal("lying answer count accepted")
	}
}

func TestInfoCodec(t *testing.T) {
	info := Info{N: 4096, MaxBatch: 16384}
	got, err := DecodeInfo(AppendInfo(nil, info))
	if err != nil || got != info {
		t.Fatalf("info round trip = (%+v, %v), want (%+v, nil)", got, err, info)
	}
	if _, err := DecodeInfo([]byte{1, 2, 3}); err == nil {
		t.Fatal("short info accepted")
	}
}
