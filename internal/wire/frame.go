package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/oracle"
)

// Frame is one decoded protocol frame. ReadFrame allocates Payload per
// frame, so a frame stays valid while later frames are read — which is
// what lets a pipelining server hand each frame to its own handler
// goroutine. Trace is the v3 trace context; it is zero on v2 connections
// (never encoded) and zero for untraced v3 requests.
type Frame struct {
	Type    byte
	ID      uint64
	Trace   TraceContext
	Payload []byte
}

// bodyMin returns the fixed body prefix length for a negotiated version.
func bodyMin(version uint16) int {
	if version >= 3 {
		return frameBodyMinV3
	}
	return frameBodyMin
}

// AppendFrame appends f's v2 wire encoding to dst and returns the
// extended slice. The trace context is dropped; see AppendFrameV.
func AppendFrame(dst []byte, f Frame) []byte {
	return AppendFrameV(dst, f, VersionMin)
}

// AppendFrameV appends f's wire encoding at the given negotiated version.
// Version 3 carries the trace context between id and payload; version 2
// drops it.
func AppendFrameV(dst []byte, f Frame, version uint16) []byte {
	body := bodyMin(version) + len(f.Payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	if version >= 3 {
		dst = binary.BigEndian.AppendUint64(dst, f.Trace.ID)
		dst = append(dst, f.Trace.Flags)
	}
	return append(dst, f.Payload...)
}

// WriteFrame writes one v2 frame. maxBody bounds the frame body exactly
// like ReadFrame, so a writer never emits a frame its symmetric peer must
// reject (0 means DefaultMaxFrameBytes).
func WriteFrame(w io.Writer, f Frame, maxBody int) error {
	return WriteFrameV(w, f, maxBody, VersionMin)
}

// WriteFrameV writes one frame at the given negotiated version.
func WriteFrameV(w io.Writer, f Frame, maxBody int, version uint16) error {
	if maxBody <= 0 {
		maxBody = DefaultMaxFrameBytes
	}
	body := bodyMin(version) + len(f.Payload)
	if body > maxBody {
		return fmt.Errorf("%w (payload %d, limit %d)", ErrFrameTooBig, len(f.Payload), maxBody)
	}
	_, err := w.Write(AppendFrameV(make([]byte, 0, frameHeaderLen+body), f, version))
	return err
}

// ReadFrame reads one v2 frame; see ReadFrameV.
func ReadFrame(r io.Reader, maxBody int) (Frame, error) {
	return ReadFrameV(r, maxBody, VersionMin)
}

// ReadFrameV reads one frame at the given negotiated version. maxBody
// bounds the frame body (everything after the length prefix; 0 means
// DefaultMaxFrameBytes): a length prefix above it returns ErrFrameTooBig
// before any allocation, so a hostile 4 GiB length costs the server four
// bytes of reading and nothing else. A length below the version's fixed
// body header returns ErrShortFrame. Either corruption error leaves the
// stream unsynchronized — the connection must close.
func ReadFrameV(r io.Reader, maxBody int, version uint16) (Frame, error) {
	if maxBody <= 0 {
		maxBody = DefaultMaxFrameBytes
	}
	min := bodyMin(version)
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > uint32(maxBody) {
		return Frame{}, fmt.Errorf("%w (length %d, limit %d)", ErrFrameTooBig, body, maxBody)
	}
	if body < uint32(min) {
		return Frame{}, fmt.Errorf("%w (length %d)", ErrShortFrame, body)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		// A truncated body is a dead or lying peer either way.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f := Frame{Type: buf[0], ID: binary.BigEndian.Uint64(buf[1:9]), Payload: buf[min:]}
	if version >= 3 {
		f.Trace = TraceContext{ID: binary.BigEndian.Uint64(buf[9:17]), Flags: buf[17]}
	}
	return f, nil
}

// AppendHello appends the 8-byte client hello advertising [minV, maxV].
func AppendHello(dst []byte, minV, maxV uint16) []byte {
	dst = append(dst, Magic[:]...)
	dst = binary.BigEndian.AppendUint16(dst, minV)
	return binary.BigEndian.AppendUint16(dst, maxV)
}

// ParseHello decodes a client hello. Short input or wrong magic errors.
func ParseHello(b []byte) (minV, maxV uint16, err error) {
	if len(b) < HelloLen {
		return 0, 0, fmt.Errorf("wire: hello is %d bytes, want %d", len(b), HelloLen)
	}
	if [4]byte(b[:4]) != Magic {
		return 0, 0, ErrBadMagic
	}
	return binary.BigEndian.Uint16(b[4:6]), binary.BigEndian.Uint16(b[6:8]), nil
}

// AppendHelloReply appends the 8-byte server reply carrying the
// negotiated version (0 = negotiation failed, connection closing).
func AppendHelloReply(dst []byte, version uint16) []byte {
	dst = append(dst, Magic[:]...)
	dst = binary.BigEndian.AppendUint16(dst, version)
	return binary.BigEndian.AppendUint16(dst, 0) // flags, reserved
}

// ParseHelloReply decodes the server hello reply.
func ParseHelloReply(b []byte) (version uint16, err error) {
	if len(b) < HelloLen {
		return 0, fmt.Errorf("wire: hello reply is %d bytes, want %d", len(b), HelloLen)
	}
	if [4]byte(b[:4]) != Magic {
		return 0, ErrBadMagic
	}
	return binary.BigEndian.Uint16(b[4:6]), nil
}

// AppendQuery appends one encoded query.
func AppendQuery(dst []byte, q oracle.Query) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(q.U))
	return binary.BigEndian.AppendUint32(dst, uint32(q.V))
}

// DecodeQuery decodes a MsgDist payload.
func DecodeQuery(b []byte) (oracle.Query, error) {
	if len(b) != queryLen {
		return oracle.Query{}, fmt.Errorf("wire: dist payload is %d bytes, want %d", len(b), queryLen)
	}
	return oracle.Query{
		U: int32(binary.BigEndian.Uint32(b[0:4])),
		V: int32(binary.BigEndian.Uint32(b[4:8])),
	}, nil
}

// AppendQueries appends a count-prefixed query slice (a MsgBatch payload).
func AppendQueries(dst []byte, qs []oracle.Query) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(qs)))
	for _, q := range qs {
		dst = AppendQuery(dst, q)
	}
	return dst
}

// DecodeQueries decodes a MsgBatch payload. The declared count must
// account for the payload exactly — a count that disagrees with the
// bytes actually present errors instead of trusting either side, so the
// count can never drive an allocation beyond the (already length-bounded)
// payload.
func DecodeQueries(b []byte) ([]oracle.Query, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch payload is %d bytes, want >= 4", len(b))
	}
	count := binary.BigEndian.Uint32(b[:4])
	rest := b[4:]
	if uint64(count)*queryLen != uint64(len(rest)) {
		return nil, fmt.Errorf("wire: batch declares %d queries but carries %d bytes", count, len(rest))
	}
	qs := make([]oracle.Query, count)
	for i := range qs {
		qs[i] = oracle.Query{
			U: int32(binary.BigEndian.Uint32(rest[i*queryLen:])),
			V: int32(binary.BigEndian.Uint32(rest[i*queryLen+4:])),
		}
	}
	return qs, nil
}

const answerFlagExact = 1 << 0

// AppendAnswer appends one encoded answer.
func AppendAnswer(dst []byte, a oracle.Answer) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.U))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.V))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Dist))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Bound))
	var flags byte
	if a.Exact {
		flags |= answerFlagExact
	}
	return append(dst, flags)
}

func decodeAnswer(b []byte) oracle.Answer {
	return oracle.Answer{
		U:     int32(binary.BigEndian.Uint32(b[0:4])),
		V:     int32(binary.BigEndian.Uint32(b[4:8])),
		Dist:  int32(binary.BigEndian.Uint32(b[8:12])),
		Bound: int32(binary.BigEndian.Uint32(b[12:16])),
		Exact: b[16]&answerFlagExact != 0,
	}
}

// DecodeAnswer decodes a MsgDistR payload.
func DecodeAnswer(b []byte) (oracle.Answer, error) {
	if len(b) != answerLen {
		return oracle.Answer{}, fmt.Errorf("wire: answer payload is %d bytes, want %d", len(b), answerLen)
	}
	return decodeAnswer(b), nil
}

// AppendAnswers appends a count-prefixed answer slice (a MsgBatchR
// payload).
func AppendAnswers(dst []byte, as []oracle.Answer) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(as)))
	for _, a := range as {
		dst = AppendAnswer(dst, a)
	}
	return dst
}

// DecodeAnswers decodes a MsgBatchR payload under the same
// count-must-match-bytes rule as DecodeQueries.
func DecodeAnswers(b []byte) ([]oracle.Answer, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: batch answer payload is %d bytes, want >= 4", len(b))
	}
	count := binary.BigEndian.Uint32(b[:4])
	rest := b[4:]
	if uint64(count)*answerLen != uint64(len(rest)) {
		return nil, fmt.Errorf("wire: batch answer declares %d answers but carries %d bytes", count, len(rest))
	}
	as := make([]oracle.Answer, count)
	for i := range as {
		as[i] = decodeAnswer(rest[i*answerLen:])
	}
	return as, nil
}

// Update request op codes (one byte on the wire — boolean today, a byte
// so a future op, e.g. a weighted re-label, needs no new message type).
const (
	updateOpAdd = 0
	updateOpDel = 1
)

// AppendUpdateReq appends an encoded MsgUpdate payload: one edge
// mutation of the live base graph.
func AppendUpdateReq(dst []byte, u, v int32, add bool) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(u))
	dst = binary.BigEndian.AppendUint32(dst, uint32(v))
	op := byte(updateOpDel)
	if add {
		op = updateOpAdd
	}
	return append(dst, op)
}

// DecodeUpdateReq decodes a MsgUpdate payload.
func DecodeUpdateReq(b []byte) (u, v int32, add bool, err error) {
	if len(b) != updateReqLen {
		return 0, 0, false, fmt.Errorf("wire: update payload is %d bytes, want %d", len(b), updateReqLen)
	}
	switch b[8] {
	case updateOpAdd:
		add = true
	case updateOpDel:
		add = false
	default:
		return 0, 0, false, fmt.Errorf("wire: update op 0x%02x, want add (0) or del (1)", b[8])
	}
	return int32(binary.BigEndian.Uint32(b[0:4])), int32(binary.BigEndian.Uint32(b[4:8])), add, nil
}

const (
	updateFlagApplied = 1 << 0
	updateFlagRebuilt = 1 << 1
)

// AppendUpdateResult appends an encoded MsgUpdateR payload.
func AppendUpdateResult(dst []byte, res oracle.UpdateResult) []byte {
	var flags byte
	if res.Applied {
		flags |= updateFlagApplied
	}
	if res.Rebuilt {
		flags |= updateFlagRebuilt
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(res.M))
	dst = binary.BigEndian.AppendUint32(dst, uint32(res.HM))
	return binary.BigEndian.AppendUint64(dst, res.Seq)
}

// DecodeUpdateResult decodes a MsgUpdateR payload.
func DecodeUpdateResult(b []byte) (oracle.UpdateResult, error) {
	if len(b) != updateRespLen {
		return oracle.UpdateResult{}, fmt.Errorf("wire: update result payload is %d bytes, want %d", len(b), updateRespLen)
	}
	return oracle.UpdateResult{
		Applied: b[0]&updateFlagApplied != 0,
		Rebuilt: b[0]&updateFlagRebuilt != 0,
		M:       int(binary.BigEndian.Uint32(b[1:5])),
		HM:      int(binary.BigEndian.Uint32(b[5:9])),
		Seq:     binary.BigEndian.Uint64(b[9:17]),
	}, nil
}

const snapFlagVerify = 1 << 0

// AppendSnapReq appends an encoded MsgSnap payload.
func AppendSnapReq(dst []byte, verify bool) []byte {
	var flags byte
	if verify {
		flags |= snapFlagVerify
	}
	return append(dst, flags)
}

// DecodeSnapReq decodes a MsgSnap payload.
func DecodeSnapReq(b []byte) (verify bool, err error) {
	if len(b) != snapReqLen {
		return false, fmt.Errorf("wire: snapshot payload is %d bytes, want %d", len(b), snapReqLen)
	}
	return b[0]&snapFlagVerify != 0, nil
}

const (
	snapFlagVerified   = 1 << 0
	snapFlagConsistent = 1 << 1
)

// AppendSnapshotInfo appends an encoded MsgSnapR payload.
func AppendSnapshotInfo(dst []byte, info oracle.SnapshotInfo) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(info.N))
	dst = binary.BigEndian.AppendUint32(dst, uint32(info.M))
	dst = binary.BigEndian.AppendUint32(dst, uint32(info.HM))
	dst = binary.BigEndian.AppendUint64(dst, info.Seq)
	dst = binary.BigEndian.AppendUint64(dst, info.GraphHash)
	dst = binary.BigEndian.AppendUint64(dst, info.SpannerHash)
	var flags byte
	if info.Verified {
		flags |= snapFlagVerified
	}
	if info.Consistent {
		flags |= snapFlagConsistent
	}
	return append(dst, flags)
}

// DecodeSnapshotInfo decodes a MsgSnapR payload.
func DecodeSnapshotInfo(b []byte) (oracle.SnapshotInfo, error) {
	if len(b) != snapRespLen {
		return oracle.SnapshotInfo{}, fmt.Errorf("wire: snapshot info payload is %d bytes, want %d", len(b), snapRespLen)
	}
	return oracle.SnapshotInfo{
		N:           int(binary.BigEndian.Uint32(b[0:4])),
		M:           int(binary.BigEndian.Uint32(b[4:8])),
		HM:          int(binary.BigEndian.Uint32(b[8:12])),
		Seq:         binary.BigEndian.Uint64(b[12:20]),
		GraphHash:   binary.BigEndian.Uint64(b[20:28]),
		SpannerHash: binary.BigEndian.Uint64(b[28:36]),
		Verified:    b[36]&snapFlagVerified != 0,
		Consistent:  b[36]&snapFlagConsistent != 0,
	}, nil
}

// Info is the MsgInfoR payload: the serving shape a client needs before
// generating traffic.
type Info struct {
	N        int // vertex count; queries must have endpoints in [0, N)
	MaxBatch int // largest accepted batch
}

// AppendInfo appends an encoded Info.
func AppendInfo(dst []byte, info Info) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(info.N))
	return binary.BigEndian.AppendUint32(dst, uint32(info.MaxBatch))
}

// DecodeInfo decodes a MsgInfoR payload.
func DecodeInfo(b []byte) (Info, error) {
	if len(b) != 8 {
		return Info{}, fmt.Errorf("wire: info payload is %d bytes, want 8", len(b))
	}
	return Info{
		N:        int(binary.BigEndian.Uint32(b[0:4])),
		MaxBatch: int(binary.BigEndian.Uint32(b[4:8])),
	}, nil
}

// BatchFrameBytes returns the frame-body size of a batch request or
// response carrying n entries — what a Config needs to size its frame
// limit so its own batch limit fits. It accounts for the largest fixed
// body prefix any negotiable version uses (v3's trace context included).
func BatchFrameBytes(n int) int {
	return frameBodyMinV3 + 4 + n*answerLen
}
