package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/oracle"
)

// stubServer accepts one binary connection and answers frames with fn
// (nil return = drop the request silently). Responses go out as fn
// returns, which lets tests answer out of order.
func stubServer(t *testing.T, fn func(f Frame) *Frame) (addr string) {
	return stubServerV(t, VersionMin, VersionMax, fn)
}

// stubServerV is stubServer with an explicit served version range — the
// cross-version matrix tests pin sMax to 2 to emulate an old fleet.
func stubServerV(t *testing.T, sMin, sMax uint16, fn func(f Frame) *Frame) (addr string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hello := make([]byte, HelloLen)
		if _, err := io.ReadFull(conn, hello); err != nil {
			return
		}
		cMin, cMax, err := ParseHello(hello)
		if err != nil {
			return
		}
		v, _ := Negotiate(cMin, cMax, sMin, sMax)
		conn.Write(AppendHelloReply(nil, v))
		if v == 0 {
			return
		}
		br := bufio.NewReader(conn)
		var wmu sync.Mutex
		for {
			f, err := ReadFrameV(br, DefaultMaxFrameBytes, v)
			if err != nil {
				return
			}
			go func(f Frame) {
				if resp := fn(f); resp != nil {
					wmu.Lock()
					defer wmu.Unlock()
					WriteFrameV(conn, *resp, DefaultMaxFrameBytes, v)
				}
			}(f)
		}
	}()
	return l.Addr().String()
}

func TestClientPipelinesOutOfOrder(t *testing.T) {
	// Hold the first dist response until the second has gone out; the
	// client must still resolve both calls correctly by id.
	release := make(chan struct{})
	var once sync.Once
	addr := stubServer(t, func(f Frame) *Frame {
		q, err := DecodeQuery(f.Payload)
		if err != nil {
			return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte(err.Error())}
		}
		if q.U == 0 { // the slow request waits for the fast one
			<-release
		} else {
			once.Do(func() { close(release) })
		}
		return &Frame{Type: MsgDistR, ID: f.ID,
			Payload: AppendAnswer(nil, oracle.Answer{U: q.U, V: q.V, Dist: q.U + q.V, Exact: true})}
	})
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != VersionMax {
		t.Fatalf("negotiated version %d, want %d", c.Version(), VersionMax)
	}

	type result struct {
		a   oracle.Answer
		err error
	}
	slow := make(chan result, 1)
	go func() {
		a, err := c.Dist(0, 5)
		slow <- result{a, err}
	}()
	// Give the slow request time to be parked server-side, then overtake.
	time.Sleep(20 * time.Millisecond)
	a, err := c.Dist(3, 4)
	if err != nil || a.Dist != 7 {
		t.Fatalf("fast Dist = (%+v, %v), want dist 7", a, err)
	}
	r := <-slow
	if r.err != nil || r.a.Dist != 5 {
		t.Fatalf("slow Dist = (%+v, %v), want dist 5", r.a, r.err)
	}
}

func TestClientConcurrentCallers(t *testing.T) {
	addr := stubServer(t, func(f Frame) *Frame {
		q, err := DecodeQuery(f.Payload)
		if err != nil {
			return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte(err.Error())}
		}
		return &Frame{Type: MsgDistR, ID: f.ID,
			Payload: AppendAnswer(nil, oracle.Answer{U: q.U, V: q.V, Dist: q.U ^ q.V, Exact: true})}
	})
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				u, v := int32(g), int32(i)
				a, err := c.Dist(u, v)
				if err != nil {
					t.Errorf("Dist(%d,%d): %v", u, v, err)
					return
				}
				if a.Dist != u^v {
					t.Errorf("Dist(%d,%d) = %d, want %d", u, v, a.Dist, u^v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientRemoteError(t *testing.T) {
	addr := stubServer(t, func(f Frame) *Frame {
		return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte("nope")}
	})
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	_, err = c.Stats()
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "nope" {
		t.Fatalf("err = %v, want RemoteError{nope}", err)
	}
	if !c.Healthy() {
		t.Fatal("a remote error must not kill the connection")
	}
}

func TestClientRequestTimeoutKillsConnection(t *testing.T) {
	addr := stubServer(t, func(f Frame) *Frame { return nil }) // black hole
	c, err := Dial(addr, ClientOptions{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Stats(); err == nil {
		t.Fatal("black-holed request returned nil error")
	}
	if c.Healthy() {
		t.Fatal("client still healthy after a request timeout")
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("dead client accepted another request")
	}
}

func TestClientServerDisconnectFailsPending(t *testing.T) {
	addr := stubServer(t, func(f Frame) *Frame {
		// Never answer; the test kills the client-side conn instead.
		return nil
	})
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Stats()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.conn.Close() // simulate the peer dropping mid-request
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending request resolved nil after disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request hung after disconnect")
	}
}
