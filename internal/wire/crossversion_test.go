package wire

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/oracle"
)

// echoStub answers dist queries and echoes the request trace context
// back with a fixed path mask, so tests can observe what survived the
// negotiated version.
func echoStub(t *testing.T, sMin, sMax uint16) string {
	return stubServerV(t, sMin, sMax, func(f Frame) *Frame {
		q, err := DecodeQuery(f.Payload)
		if err != nil {
			return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte(err.Error())}
		}
		return &Frame{
			Type:    MsgDistR,
			ID:      f.ID,
			Trace:   ResponseContext(f.Trace.ID, f.Trace.Sampled(), 0x4),
			Payload: AppendAnswer(nil, oracle.Answer{U: q.U, V: q.V, Dist: q.U + q.V, Exact: true}),
		}
	})
}

func TestCrossVersionV4ClientV4Server(t *testing.T) {
	addr := echoStub(t, VersionMin, VersionMax)
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 4 {
		t.Fatalf("negotiated %d, want 4", c.Version())
	}
	a, tc, err := c.DistTraced(2, 3, SampledContext(0xdeadbeef))
	if err != nil || a.Dist != 5 {
		t.Fatalf("DistTraced = (%+v, %v), want dist 5", a, err)
	}
	if tc.ID != 0xdeadbeef || !tc.Sampled() || tc.PathMask() != 0x4 {
		t.Fatalf("echoed trace = %+v, want id 0xdeadbeef sampled path 0x4", tc)
	}
}

func TestCrossVersionV4ClientV3Server(t *testing.T) {
	// A modern client against a fleet frozen at v3: negotiation lands on
	// 3, tracing still works, and the dynamic-graph calls fail fast
	// client-side — no frame is sent, so the old server never sees an
	// unknown message type.
	addr := echoStub(t, 2, 3)
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 3 {
		t.Fatalf("negotiated %d, want 3", c.Version())
	}
	a, tc, err := c.DistTraced(2, 3, SampledContext(0xdeadbeef))
	if err != nil || a.Dist != 5 {
		t.Fatalf("DistTraced = (%+v, %v), want dist 5", a, err)
	}
	if !tc.Sampled() {
		t.Fatalf("v3 connection dropped the trace context: %+v", tc)
	}
	if _, err := c.Update(0, 1, true); err == nil {
		t.Fatal("Update succeeded on a v3 connection")
	}
	if _, err := c.Snap(true); err == nil {
		t.Fatal("Snap succeeded on a v3 connection")
	}
	if !c.Healthy() {
		t.Fatal("client-side version gate killed the connection")
	}
}

func TestCrossVersionV3ClientV4Server(t *testing.T) {
	// An old client pinned at v3 against a modern fleet.
	addr := echoStub(t, VersionMin, VersionMax)
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second, MaxVersion: 3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 3 {
		t.Fatalf("negotiated %d, want 3", c.Version())
	}
	a, tc, err := c.DistTraced(2, 3, SampledContext(0xdeadbeef))
	if err != nil || a.Dist != 5 {
		t.Fatalf("DistTraced = (%+v, %v), want dist 5", a, err)
	}
	if tc.ID != 0xdeadbeef || !tc.Sampled() {
		t.Fatalf("echoed trace = %+v, want id 0xdeadbeef sampled", tc)
	}
}

func TestCrossVersionV3ClientV2Server(t *testing.T) {
	// A modern client against an old fleet: negotiation lands on 2, the
	// trace context is silently dropped, answers are unaffected.
	addr := echoStub(t, 2, 2)
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 2 {
		t.Fatalf("negotiated %d, want 2", c.Version())
	}
	a, tc, err := c.DistTraced(2, 3, SampledContext(0xdeadbeef))
	if err != nil || a.Dist != 5 {
		t.Fatalf("DistTraced = (%+v, %v), want dist 5", a, err)
	}
	if tc != (TraceContext{}) {
		t.Fatalf("v2 connection returned non-zero trace context %+v", tc)
	}
}

func TestCrossVersionV2ClientV3Server(t *testing.T) {
	// An old client against a modern fleet (MaxVersion pins the hello).
	addr := echoStub(t, VersionMin, VersionMax)
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second, MaxVersion: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 2 {
		t.Fatalf("negotiated %d, want 2", c.Version())
	}
	a, err := c.Dist(7, 8)
	if err != nil || a.Dist != 15 {
		t.Fatalf("Dist = (%+v, %v), want dist 15", a, err)
	}
}

func TestUpdateSnapRoundTrip(t *testing.T) {
	wantRes := oracle.UpdateResult{Applied: true, Rebuilt: true, M: 123, HM: 77, Seq: 42}
	wantInfo := oracle.SnapshotInfo{
		N: 64, M: 123, HM: 77, Seq: 42,
		GraphHash: 0x0123456789abcdef, SpannerHash: 0xfedcba9876543210,
		Verified: true, Consistent: true,
	}
	addr := stubServer(t, func(f Frame) *Frame {
		switch f.Type {
		case MsgUpdate:
			u, v, add, err := DecodeUpdateReq(f.Payload)
			if err != nil || u != 3 || v != 9 || add {
				return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte("bad update req")}
			}
			return &Frame{Type: MsgUpdateR, ID: f.ID, Payload: AppendUpdateResult(nil, wantRes)}
		case MsgSnap:
			verify, err := DecodeSnapReq(f.Payload)
			if err != nil || !verify {
				return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte("bad snap req")}
			}
			return &Frame{Type: MsgSnapR, ID: f.ID, Payload: AppendSnapshotInfo(nil, wantInfo)}
		}
		return &Frame{Type: MsgErr, ID: f.ID, Payload: []byte("unexpected type")}
	})
	c, err := Dial(addr, ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	res, err := c.Update(3, 9, false)
	if err != nil || res != wantRes {
		t.Fatalf("Update = (%+v, %v), want %+v", res, err, wantRes)
	}
	info, err := c.Snap(true)
	if err != nil || info != wantInfo {
		t.Fatalf("Snap = (%+v, %v), want %+v", info, err, wantInfo)
	}
}

func TestFrameV3RoundTrip(t *testing.T) {
	want := Frame{
		Type:    MsgBatch,
		ID:      42,
		Trace:   TraceContext{ID: 0x0123456789abcdef, Flags: TraceFlagSampled},
		Payload: []byte{1, 2, 3, 4},
	}
	var buf bytes.Buffer
	if err := WriteFrameV(&buf, want, 0, 3); err != nil {
		t.Fatalf("WriteFrameV: %v", err)
	}
	got, err := ReadFrameV(&buf, 0, 3)
	if err != nil {
		t.Fatalf("ReadFrameV: %v", err)
	}
	if got.Type != want.Type || got.ID != want.ID || got.Trace != want.Trace || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}

	// The same frame at v2 drops the trace context on the wire.
	buf.Reset()
	if err := WriteFrameV(&buf, want, 0, 2); err != nil {
		t.Fatalf("WriteFrameV v2: %v", err)
	}
	got2, err := ReadFrameV(&buf, 0, 2)
	if err != nil {
		t.Fatalf("ReadFrameV v2: %v", err)
	}
	if got2.Trace != (TraceContext{}) {
		t.Fatalf("v2 frame decoded trace %+v, want zero", got2.Trace)
	}
	if !bytes.Equal(got2.Payload, want.Payload) {
		t.Fatalf("v2 payload = %v, want %v", got2.Payload, want.Payload)
	}
}

func TestTraceContextFlags(t *testing.T) {
	tc := ResponseContext(9, true, 0xA)
	if !tc.Sampled() || tc.PathMask() != 0xA || tc.ID != 9 {
		t.Fatalf("ResponseContext = %+v (sampled=%v mask=%#x)", tc, tc.Sampled(), tc.PathMask())
	}
	tc = ResponseContext(9, false, 0x1)
	if tc.Sampled() {
		t.Fatal("unsampled response context reports sampled")
	}
	if tc.PathMask() != 0x1 {
		t.Fatalf("mask = %#x, want 0x1", tc.PathMask())
	}
	// Masks wider than four bits must not bleed into other flag bits.
	tc = ResponseContext(9, false, 0xFF)
	if tc.PathMask() != 0x3F {
		t.Fatalf("wide mask = %#x, want clamp to 0x3F", tc.PathMask())
	}
	if tc.Sampled() {
		t.Fatal("wide mask leaked into the sampled bit")
	}
}
