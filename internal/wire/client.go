package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oracle"
)

// ClientOptions tunes Dial/NewClient. The zero value is usable.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect + handshake (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds one round trip; a request that gets no
	// response within it fails the whole connection (the id map cannot
	// distinguish "slow" from "never") (default 30s).
	RequestTimeout time.Duration
	// MaxFrameBytes bounds received frame bodies (0 = DefaultMaxFrameBytes).
	MaxFrameBytes int
	// MaxVersion caps the version the client advertises (0 = VersionMax).
	// Pinning 2 yields a v2 connection against any server — the knob the
	// cross-version interop tests and version-frozen deployments use.
	MaxVersion uint16
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.MaxVersion == 0 || o.MaxVersion > VersionMax {
		o.MaxVersion = VersionMax
	}
	return o
}

// Client is one pipelined v2 connection, safe for concurrent use: any
// number of goroutines may have requests in flight; a background reader
// matches responses to callers by request id, so responses arriving out
// of order resolve the right calls. A Client is single-use — after any
// transport error it is dead (Healthy reports false, every call fails
// fast) and the owner should redial.
type Client struct {
	conn    net.Conn
	version uint16
	opts    ClientOptions

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan Frame
	dead    error // sticky first transport error; nil while healthy
	closed  bool
}

// Dial connects, performs the version handshake, and starts the reader.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the client side of the handshake over an
// established connection and starts the reader goroutine. On error the
// caller still owns conn.
func NewClient(conn net.Conn, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn.SetDeadline(time.Now().Add(opts.DialTimeout))
	if _, err := conn.Write(AppendHello(nil, VersionMin, opts.MaxVersion)); err != nil {
		return nil, fmt.Errorf("wire: hello: %w", err)
	}
	var reply [HelloLen]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return nil, fmt.Errorf("wire: hello reply: %w", err)
	}
	version, err := ParseHelloReply(reply[:])
	if err != nil {
		return nil, err
	}
	if version == 0 {
		return nil, fmt.Errorf("wire: server rejected versions [%d, %d]", VersionMin, opts.MaxVersion)
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:    conn,
		version: version,
		opts:    opts,
		bw:      bufio.NewWriterSize(conn, 16<<10),
		pending: make(map[uint64]chan Frame),
	}
	go c.readLoop()
	return c, nil
}

// Version returns the negotiated protocol version.
func (c *Client) Version() uint16 { return c.version }

// Healthy reports whether the connection is still usable.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead == nil && !c.closed
}

// Close tears the connection down; pending requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(fmt.Errorf("wire: client closed"))
	return err
}

// fail marks the client dead (first error wins) and resolves every
// pending request by closing its channel.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// readLoop dispatches response frames to their waiting callers.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 16<<10)
	for {
		f, err := ReadFrameV(br, c.opts.MaxFrameBytes, c.version)
		if err != nil {
			c.fail(fmt.Errorf("wire: read: %w", err))
			c.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f // buffered; never blocks the reader
		}
		// A response for an unknown id (a caller that timed out and
		// failed the connection is racing us to die) is dropped.
	}
}

// roundTrip sends one request frame and waits for its response. tc is
// the trace context to attach; it is silently dropped on v2 connections.
func (c *Client) roundTrip(typ byte, payload []byte, tc TraceContext) (Frame, error) {
	id := c.nextID.Add(1)
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.dead != nil || c.closed {
		err := c.dead
		c.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("wire: client closed")
		}
		return Frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.RequestTimeout))
	err := WriteFrameV(c.bw, Frame{Type: typ, ID: id, Trace: tc, Payload: payload}, c.opts.MaxFrameBytes, c.version)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("wire: write: %w", err)
		c.fail(err)
		c.conn.Close()
		return Frame{}, err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.dead
			c.mu.Unlock()
			return Frame{}, err
		}
		if f.Type == MsgErr {
			return Frame{}, &RemoteError{Msg: string(f.Payload)}
		}
		return f, nil
	case <-time.After(c.opts.RequestTimeout):
		// The id stays claimed forever if we just walk away; the stream
		// itself may also be wedged. Either way the connection is done.
		err := fmt.Errorf("wire: request %d timed out after %v", id, c.opts.RequestTimeout)
		c.fail(err)
		c.conn.Close()
		return Frame{}, err
	}
}

// expect validates a response frame's type.
func expect(f Frame, want byte) error {
	if f.Type != want {
		return fmt.Errorf("wire: response type 0x%02x, want 0x%02x", f.Type, want)
	}
	return nil
}

// Dist answers one distance query.
func (c *Client) Dist(u, v int32) (oracle.Answer, error) {
	a, _, err := c.DistTraced(u, v, TraceContext{})
	return a, err
}

// DistTraced answers one distance query carrying a trace context and
// returns the server's echoed context (resolution path, sampled bit).
// On a v2 connection the context is dropped and the returned context is
// zero.
func (c *Client) DistTraced(u, v int32, tc TraceContext) (oracle.Answer, TraceContext, error) {
	f, err := c.roundTrip(MsgDist, AppendQuery(nil, oracle.Query{U: u, V: v}), tc)
	if err != nil {
		return oracle.Answer{}, TraceContext{}, err
	}
	if err := expect(f, MsgDistR); err != nil {
		return oracle.Answer{}, TraceContext{}, err
	}
	a, err := DecodeAnswer(f.Payload)
	return a, f.Trace, err
}

// Batch answers a query batch; the response is index-aligned with qs and
// identical to oracle.AnswerBatch on the serving process.
func (c *Client) Batch(qs []oracle.Query) ([]oracle.Answer, error) {
	as, _, err := c.BatchTraced(qs, TraceContext{})
	return as, err
}

// BatchTraced answers a query batch carrying a trace context; see
// DistTraced for the trace semantics.
func (c *Client) BatchTraced(qs []oracle.Query, tc TraceContext) ([]oracle.Answer, TraceContext, error) {
	f, err := c.roundTrip(MsgBatch, AppendQueries(make([]byte, 0, 4+len(qs)*queryLen), qs), tc)
	if err != nil {
		return nil, TraceContext{}, err
	}
	if err := expect(f, MsgBatchR); err != nil {
		return nil, TraceContext{}, err
	}
	as, err := DecodeAnswers(f.Payload)
	if err != nil {
		return nil, TraceContext{}, err
	}
	if len(as) != len(qs) {
		return nil, TraceContext{}, fmt.Errorf("wire: batch of %d answered with %d answers", len(qs), len(as))
	}
	return as, f.Trace, nil
}

// requireV4 gates the dynamic-graph calls on the negotiated version: a
// pre-v4 peer would answer the unknown frame type with MsgErr at best,
// so the client fails fast without spending a round trip.
func (c *Client) requireV4(call string) error {
	if c.version >= 4 {
		return nil
	}
	return fmt.Errorf("wire: %s requires protocol version >= 4 (negotiated %d)", call, c.version)
}

// Update applies one edge mutation (insert when add, delete otherwise)
// to the server's live graph. Requires a v4 connection; servers without
// a dynamic engine answer a RemoteError.
func (c *Client) Update(u, v int32, add bool) (oracle.UpdateResult, error) {
	if err := c.requireV4("update"); err != nil {
		return oracle.UpdateResult{}, err
	}
	f, err := c.roundTrip(MsgUpdate, AppendUpdateReq(nil, u, v, add), TraceContext{})
	if err != nil {
		return oracle.UpdateResult{}, err
	}
	if err := expect(f, MsgUpdateR); err != nil {
		return oracle.UpdateResult{}, err
	}
	return DecodeUpdateResult(f.Payload)
}

// Snap fetches the server's dynamic-graph state snapshot; with verify
// set the server also rebuilds its spanner from scratch and reports
// whether the maintained one matches. Requires a v4 connection.
func (c *Client) Snap(verify bool) (oracle.SnapshotInfo, error) {
	if err := c.requireV4("snapshot"); err != nil {
		return oracle.SnapshotInfo{}, err
	}
	f, err := c.roundTrip(MsgSnap, AppendSnapReq(nil, verify), TraceContext{})
	if err != nil {
		return oracle.SnapshotInfo{}, err
	}
	if err := expect(f, MsgSnapR); err != nil {
		return oracle.SnapshotInfo{}, err
	}
	return DecodeSnapshotInfo(f.Payload)
}

// Stats fetches the server's stats report line.
func (c *Client) Stats() (string, error) {
	f, err := c.roundTrip(MsgStats, nil, TraceContext{})
	if err != nil {
		return "", err
	}
	if err := expect(f, MsgStatsR); err != nil {
		return "", err
	}
	return string(f.Payload), nil
}

// Info fetches the serving shape (vertex count, batch limit).
func (c *Client) Info() (Info, error) {
	f, err := c.roundTrip(MsgInfo, nil, TraceContext{})
	if err != nil {
		return Info{}, err
	}
	if err := expect(f, MsgInfoR); err != nil {
		return Info{}, err
	}
	return DecodeInfo(f.Payload)
}
