// Package wire is the binary serving wire format: a versioned,
// length-prefixed frame protocol carrying dist/batch/stats/info requests
// with pipelining. Version 1 is the human-readable line protocol of
// internal/server; the binary format starts at 2, version 3 adds an
// optional trace context to every frame, and version 4 adds the
// dynamic-graph messages (edge updates and state snapshots) with no
// frame-format change. The fleet tier is the consumer — cmd/dcrouter
// fans batches out to workers over pooled connections and cmd/dcload
// drives either server flavor at load.
//
// # Connection establishment
//
// A v2 connection opens with an 8-byte client hello
//
//	magic[4] | minVersion uint16 | maxVersion uint16
//
// and the server answers an 8-byte reply
//
//	magic[4] | version uint16 | flags uint16
//
// where version is the highest protocol version both sides support
// (Negotiate, modeled on udpx's ProtocolVersionAtLeast discipline:
// versions are ordered, and each side states the interval it speaks). A
// reply version of 0 means no overlap; the server closes after sending
// it. The first magic byte is deliberately non-ASCII, so a server
// serving both protocols on one port classifies a connection from a
// single peeked byte: 0xD5 is v2, anything else is the text protocol.
//
// # Frames
//
// After the handshake both directions speak frames. At version 2:
//
//	length uint32 | type uint8 | id uint64 | payload…
//
// At version 3 every frame additionally carries a fixed trace context
// between the id and the payload:
//
//	length uint32 | type uint8 | id uint64 | traceID uint64 | traceFlags uint8 | payload…
//
// length counts everything after itself and is bounded by the receiver's
// frame limit — an oversized length is a protocol error answered before
// any allocation, never an allocation. All integers are big-endian. id is
// assigned by the client and echoed verbatim in the matching response;
// clients may keep any number of requests in flight and servers may
// answer them out of order (pipelining), which is what makes one pooled
// connection carry many concurrent batches.
//
// The trace context is zero for untraced requests. traceFlags bit 0 is
// the sampling bit: a request with it set asks the server to record a
// hop-by-hop trace under traceID (see internal/obs.ReqTrace). Responses
// echo the trace context with bits 1..4 reporting the oracle resolution
// paths taken (the obs.Path* mask shifted left by one), so a router can
// attribute a slow answer to cache/landmark/bibfs/bulk work without a
// second round trip. A v3 peer talking to a v2 peer negotiates down to
// v2 and the trace context is silently dropped — tracing degrades,
// answers do not.
//
// # Messages
//
//	MsgDist   -> MsgDistR   one distance query / one Answer
//	MsgBatch  -> MsgBatchR  count-prefixed query slice / Answer slice
//	MsgStats  -> MsgStatsR  server stats report (UTF-8 text)
//	MsgInfo   -> MsgInfoR   vertex count + batch limit of the server
//	MsgUpdate -> MsgUpdateR one edge insert/delete / UpdateResult (v4+)
//	MsgSnap   -> MsgSnapR   state snapshot, optionally verified (v4+)
//	          <- MsgErr     UTF-8 error text for the echoed id
//
// The v4 messages ride the v3 frame format unchanged — negotiation is
// the only gate. A v4 client on a connection that negotiated down to 3
// or 2 fails Update/Snap client-side with a version error instead of
// sending frames an old server would answer with MsgErr; everything
// else (dist, batch, stats, info, tracing) is unaffected by the
// downgrade. Servers without a dynamic engine behind them answer
// MsgUpdate/MsgSnap with MsgErr even at v4 — speaking the version
// means understanding the frames, not necessarily serving mutations.
//
// Batch answers mirror oracle.AnswerBatch exactly — invalid queries
// answer the Unreachable sentinel at their index instead of failing the
// batch — so a routed batch is byte-identical to a single-process one
// (the property internal/check's router differential gates on).
package wire

import "fmt"

// Magic prefixes every v2 connection in both directions. MagicByte (the
// first byte) is the protocol discriminator: no text-protocol request
// can begin with it.
var Magic = [4]byte{0xD5, 'C', 'P', '2'}

// MagicByte is Magic[0], exported for single-byte protocol sniffing.
const MagicByte = 0xD5

// The protocol versions this package speaks. Version 1 is the text line
// protocol (never spoken in frames); the binary format starts at 2.
// Version 4 (update/snapshot messages) shares version 3's frame format.
const (
	VersionMin uint16 = 2
	VersionMax uint16 = 4
)

// Frame types. Requests have the high bit clear, responses set; MsgErr
// answers any request type.
const (
	MsgDist    byte = 0x01
	MsgBatch   byte = 0x02
	MsgStats   byte = 0x03
	MsgInfo    byte = 0x04
	MsgUpdate  byte = 0x05 // v4+
	MsgSnap    byte = 0x06 // v4+
	MsgDistR   byte = 0x81
	MsgBatchR  byte = 0x82
	MsgStatsR  byte = 0x83
	MsgInfoR   byte = 0x84
	MsgUpdateR byte = 0x85 // v4+
	MsgSnapR   byte = 0x86 // v4+
	MsgErr     byte = 0xFF
)

// Sizes of the fixed wire structures.
const (
	HelloLen = 8 // magic[4] + two uint16
	// frameHeaderLen is the length prefix itself.
	frameHeaderLen = 4
	// frameBodyMin is type + id, the smallest legal v2 frame body.
	frameBodyMin = 1 + 8
	// traceLen is the v3 trace context: traceID uint64 + flags uint8.
	traceLen = 8 + 1
	// frameBodyMinV3 is type + id + trace, the smallest legal v3 body.
	frameBodyMinV3 = frameBodyMin + traceLen
	// queryLen is one encoded Query (u, v int32).
	queryLen = 8
	// answerLen is one encoded Answer (u, v, dist, bound int32 + flags).
	answerLen = 17
	// updateReqLen is one encoded update request (u, v uint32 + op byte).
	updateReqLen = 9
	// updateRespLen is one encoded UpdateResult (flags + m, hm uint32 +
	// seq uint64).
	updateRespLen = 17
	// snapReqLen is one encoded snapshot request (flags byte).
	snapReqLen = 1
	// snapRespLen is one encoded SnapshotInfo (n, m, hm uint32 + seq,
	// ghash, hhash uint64 + flags byte).
	snapRespLen = 37
)

// Trace-context flag bits (v3 frames).
const (
	// TraceFlagSampled marks the request for hop-by-hop recording; on a
	// response it confirms the server traced the request.
	TraceFlagSampled byte = 1 << 0
	// tracePathShift positions the obs.Path* resolution mask (6 bits)
	// inside response flags. Widened from 4 to 6 bits when the oracle
	// grew backend-specific paths (exact table, hub bunches); peers that
	// still mask to 4 bits simply drop the new bits, so the widening is
	// wire-compatible in both directions.
	tracePathShift = 1
	tracePathBits  = 0x3F
)

// TraceContext is the per-frame trace field carried by v3 frames: a
// client-assigned 64-bit trace id plus flag bits. The zero value means
// "untraced" and encodes as nine zero bytes.
type TraceContext struct {
	ID    uint64
	Flags byte
}

// Sampled reports whether the sampling bit is set.
func (tc TraceContext) Sampled() bool { return tc.Flags&TraceFlagSampled != 0 }

// PathMask extracts the resolution-path mask from response flags
// (an obs.Path* bit set).
func (tc TraceContext) PathMask() uint8 { return uint8(tc.Flags>>tracePathShift) & tracePathBits }

// SampledContext builds a request trace context asking for recording.
func SampledContext(id uint64) TraceContext {
	return TraceContext{ID: id, Flags: TraceFlagSampled}
}

// ResponseContext builds the trace context a server echoes: the request
// id, the sampled bit if it traced, and the resolution-path mask.
func ResponseContext(id uint64, sampled bool, pathMask uint8) TraceContext {
	tc := TraceContext{ID: id, Flags: byte(pathMask&tracePathBits) << tracePathShift}
	if sampled {
		tc.Flags |= TraceFlagSampled
	}
	return tc
}

// DefaultMaxFrameBytes bounds one frame body (type + id + payload) when
// the caller does not choose a limit. It comfortably holds the default
// server batch limit (16384 answers ≈ 272 KiB).
const DefaultMaxFrameBytes = 1 << 20

// Negotiate resolves the version spoken on a connection: the highest
// version inside both [cMin, cMax] and [sMin, sMax]. ok is false when
// the intervals do not overlap (or either is empty).
func Negotiate(cMin, cMax, sMin, sMax uint16) (version uint16, ok bool) {
	lo, hi := cMin, cMax
	if sMin > lo {
		lo = sMin
	}
	if sMax < hi {
		hi = sMax
	}
	if lo > hi {
		return 0, false
	}
	return hi, true
}

// RemoteError is a MsgErr response: the server answered the request with
// a protocol-level error instead of a result.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// protocol corruption errors (distinct from io errors: the connection
// cannot be resynced and must close).
var (
	ErrBadMagic    = fmt.Errorf("wire: bad magic")
	ErrFrameTooBig = fmt.Errorf("wire: frame exceeds size limit")
	ErrShortFrame  = fmt.Errorf("wire: frame shorter than its fixed header")
)
