// Package wire is protocol version 2 of the serving wire format: a
// versioned, length-prefixed binary frame protocol carrying dist/batch/
// stats/info requests with pipelining. Version 1 is the human-readable
// line protocol of internal/server; v2 exists for the fleet tier —
// cmd/dcrouter fans batches out to workers over pooled v2 connections and
// cmd/dcload drives either server flavor at load.
//
// # Connection establishment
//
// A v2 connection opens with an 8-byte client hello
//
//	magic[4] | minVersion uint16 | maxVersion uint16
//
// and the server answers an 8-byte reply
//
//	magic[4] | version uint16 | flags uint16
//
// where version is the highest protocol version both sides support
// (Negotiate, modeled on udpx's ProtocolVersionAtLeast discipline:
// versions are ordered, and each side states the interval it speaks). A
// reply version of 0 means no overlap; the server closes after sending
// it. The first magic byte is deliberately non-ASCII, so a server
// serving both protocols on one port classifies a connection from a
// single peeked byte: 0xD5 is v2, anything else is the text protocol.
//
// # Frames
//
// After the handshake both directions speak frames:
//
//	length uint32 | type uint8 | id uint64 | payload…
//
// length counts everything after itself (1 + 8 + len(payload)) and is
// bounded by the receiver's frame limit — an oversized length is a
// protocol error answered before any allocation, never an allocation.
// All integers are big-endian. id is assigned by the client and echoed
// verbatim in the matching response; clients may keep any number of
// requests in flight and servers may answer them out of order
// (pipelining), which is what makes one pooled connection carry many
// concurrent batches.
//
// # Messages
//
//	MsgDist   -> MsgDistR   one distance query / one Answer
//	MsgBatch  -> MsgBatchR  count-prefixed query slice / Answer slice
//	MsgStats  -> MsgStatsR  server stats report (UTF-8 text)
//	MsgInfo   -> MsgInfoR   vertex count + batch limit of the server
//	          <- MsgErr     UTF-8 error text for the echoed id
//
// Batch answers mirror oracle.AnswerBatch exactly — invalid queries
// answer the Unreachable sentinel at their index instead of failing the
// batch — so a routed batch is byte-identical to a single-process one
// (the property internal/check's router differential gates on).
package wire

import "fmt"

// Magic prefixes every v2 connection in both directions. MagicByte (the
// first byte) is the protocol discriminator: no text-protocol request
// can begin with it.
var Magic = [4]byte{0xD5, 'C', 'P', '2'}

// MagicByte is Magic[0], exported for single-byte protocol sniffing.
const MagicByte = 0xD5

// The protocol versions this package speaks. Version 1 is the text line
// protocol (never spoken in frames); the binary format starts at 2.
const (
	VersionMin uint16 = 2
	VersionMax uint16 = 2
)

// Frame types. Requests have the high bit clear, responses set; MsgErr
// answers any request type.
const (
	MsgDist   byte = 0x01
	MsgBatch  byte = 0x02
	MsgStats  byte = 0x03
	MsgInfo   byte = 0x04
	MsgDistR  byte = 0x81
	MsgBatchR byte = 0x82
	MsgStatsR byte = 0x83
	MsgInfoR  byte = 0x84
	MsgErr    byte = 0xFF
)

// Sizes of the fixed wire structures.
const (
	HelloLen = 8 // magic[4] + two uint16
	// frameHeaderLen is the length prefix itself.
	frameHeaderLen = 4
	// frameBodyMin is type + id, the smallest legal frame body.
	frameBodyMin = 1 + 8
	// queryLen is one encoded Query (u, v int32).
	queryLen = 8
	// answerLen is one encoded Answer (u, v, dist, bound int32 + flags).
	answerLen = 17
)

// DefaultMaxFrameBytes bounds one frame body (type + id + payload) when
// the caller does not choose a limit. It comfortably holds the default
// server batch limit (16384 answers ≈ 272 KiB).
const DefaultMaxFrameBytes = 1 << 20

// Negotiate resolves the version spoken on a connection: the highest
// version inside both [cMin, cMax] and [sMin, sMax]. ok is false when
// the intervals do not overlap (or either is empty).
func Negotiate(cMin, cMax, sMin, sMax uint16) (version uint16, ok bool) {
	lo, hi := cMin, cMax
	if sMin > lo {
		lo = sMin
	}
	if sMax < hi {
		hi = sMax
	}
	if lo > hi {
		return 0, false
	}
	return hi, true
}

// RemoteError is a MsgErr response: the server answered the request with
// a protocol-level error instead of a result.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// protocol corruption errors (distinct from io errors: the connection
// cannot be resynced and must close).
var (
	ErrBadMagic    = fmt.Errorf("wire: bad magic")
	ErrFrameTooBig = fmt.Errorf("wire: frame exceeds size limit")
	ErrShortFrame  = fmt.Errorf("wire: frame shorter than its fixed header")
)
