package spanner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// SparsifyUniform keeps each edge with probability p = c·ln(n)/Δ, the
// uniform-sampling sparsifier that preserves spectral expansion of regular
// expanders w.h.p. (expander mixing + Chernoff). It is the repository's
// stand-in for the Koutis–Xu [16] row of Table 1: output size O(n log n)
// edges on Δ-regular inputs, still an expander, hence O(log n) diameter →
// O(log n) distance stretch, with matching routing solved by Valiant
// routing at polylog congestion. See DESIGN.md (substitutions).
func SparsifyUniform(g *graph.Graph, c float64, seed uint64) (*Spanner, error) {
	n := g.N()
	delta := g.MaxDegree()
	if delta == 0 {
		return nil, fmt.Errorf("spanner: edgeless graph")
	}
	p := c * math.Log(float64(n)) / float64(delta)
	if p > 1 {
		p = 1
	}
	r := rng.New(seed)
	for try := 0; try < 16; try++ {
		h := sampleEdges(g, p, r)
		if h.Connected() {
			return &Spanner{Base: g, H: h, Primary: h, Algorithm: "sparsify-uniform"}, nil
		}
	}
	return nil, fmt.Errorf("spanner: uniform sparsifier disconnected at p=%v; increase c", p)
}

// ExtractBoundedDegree emulates the Becchetti et al. [5] row of Table 1:
// from a dense expander (Δ = Ω(n)) extract a bounded-degree subgraph with
// O(n) edges that is still an expander. Each vertex nominates d incident
// edges uniformly at random; the union is kept, so degrees are at most 2d
// and the edge count at most n·d. For dense expanders the nomination graph
// is an expander w.h.p. (it contains a union of near-uniform random
// matchings); the harness certifies the output spectrally rather than
// assuming it.
func ExtractBoundedDegree(g *graph.Graph, d int, seed uint64) (*Spanner, error) {
	if d < 1 {
		return nil, fmt.Errorf("spanner: ExtractBoundedDegree needs d >= 1")
	}
	n := g.N()
	r := rng.New(seed)
	for try := 0; try < 16; try++ {
		// Each vertex nominates d incident edges; the receiving endpoint
		// accepts at most d incoming nominations (in random arrival
		// order), so every vertex ends with ≤ d outgoing + ≤ d accepted
		// incoming edges: degree ≤ 2d by construction.
		type nomination struct{ from, to int32 }
		noms := make([]nomination, 0, n*d)
		for v := int32(0); v < int32(n); v++ {
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			k := d
			if k > len(nbrs) {
				k = len(nbrs)
			}
			for _, idx := range r.Sample(len(nbrs), k) {
				noms = append(noms, nomination{from: v, to: nbrs[idx]})
			}
		}
		r.Shuffle(len(noms), func(i, j int) { noms[i], noms[j] = noms[j], noms[i] })
		incoming := make([]int, n)
		chosen := make(map[graph.Edge]bool, n*d)
		for _, nm := range noms {
			e := graph.Edge{U: nm.from, V: nm.to}.Normalize()
			if chosen[e] {
				continue // mutual nomination: already kept
			}
			if incoming[nm.to] >= d {
				continue
			}
			incoming[nm.to]++
			chosen[e] = true
		}
		h := g.FilterEdges(func(e graph.Edge) bool { return chosen[e] })
		if h.Connected() {
			return &Spanner{Base: g, H: h, Primary: h, Algorithm: "extract-bounded-degree"}, nil
		}
	}
	return nil, fmt.Errorf("spanner: bounded-degree extraction stayed disconnected; increase d")
}
