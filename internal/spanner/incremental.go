package spanner

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Incremental maintains a stretch-3 cluster spanner of a mutating graph
// under edge inserts and deletes — the dynamic-workload counterpart of
// BaswanaSen (k = 2). The construction is deliberately a *pure function
// of the current edge set* (plus the fixed seed), which is what makes
// incremental maintenance equal to rebuilding from scratch, edge for
// edge — the property the internal/check differential gate enforces
// after every update batch.
//
// Construction. Every vertex hashes (seed, v) once; vertices whose hash
// falls below the n^{-1/2} quantile are cluster centers — a
// graph-independent coin, so updates never re-flip it. A non-center
// joins the cluster of its smallest-id center neighbor (its star edge),
// or stays unclustered when it has none. Each vertex v then *wants* a
// deterministic local edge set W(v):
//
//   - unclustered v wants every incident edge;
//   - clustered non-center v wants its star edge {v, center};
//   - every clustered v wants one bridge edge to each adjacent foreign
//     cluster — the edge to the smallest-id neighbor in that cluster.
//
// H is exactly the union of the W(v): an edge survives while at least
// one endpoint wants it (a refcount of 1 or 2). Every base edge {u,v}
// has a detour of length ≤ 3 in H — same cluster: u–c–v over two star
// edges; different clusters: v–w–c(u)–w' bridge+star; an unclustered
// endpoint keeps the edge outright — so H is a 3-spanner, certified by
// Verify in the test suite and by internal/check online.
//
// Locality. Toggling {u,v} changes only N(u) and N(v), so only
// cluster(u) and cluster(v) can change; W(z) of any other vertex z
// depends on N(z) (unchanged) and its neighbors' cluster values, so it
// changes only when z neighbors an endpoint whose cluster changed. One
// update therefore recomputes W over {u, v} ∪ N(u) ∪ N(v) at worst —
// the Elkin–Neiman-style local-rule argument — and the refcounts absorb
// the diff.
//
// Incremental does no internal locking; callers serialize updates
// (oracle.Dynamic holds its update lock across Insert/Delete).
type Incremental struct {
	dg   *graph.DynGraph
	seed uint64
	n    int

	isCenter []bool
	cluster  []int32        // center id, or -1 while unclustered
	want     [][]graph.Edge // W(v), sorted, as last applied to the refcounts
	ref      map[graph.Edge]int8

	// Rebuild-threshold bookkeeping: dirty counts applied updates since
	// the last full recompute; when dirty exceeds threshold·M the next
	// update recomputes every W(v) instead of diffing locally. The result
	// is identical either way (the construction is a pure function of the
	// edge set) — the threshold bounds refcount-drift risk and keeps
	// per-update cost predictable after heavy churn, it never changes H.
	threshold float64
	dirty     int
	rebuilds  uint64
}

// IncrementalOptions configures NewIncremental.
type IncrementalOptions struct {
	// Seed keys the center hash. Two Incrementals with equal seeds over
	// equal edge sets hold identical spanners regardless of history.
	Seed uint64
	// RebuildThreshold is the dirty fraction (applied updates since the
	// last full recompute, over the current edge count) above which an
	// update triggers a full recompute instead of a local diff. 0 means
	// the default 0.25; negative disables full recomputes entirely.
	RebuildThreshold float64
}

// DefaultRebuildThreshold is the dirty fraction at which incremental
// maintenance falls back to a full recompute when
// IncrementalOptions.RebuildThreshold is zero.
const DefaultRebuildThreshold = 0.25

// NewIncremental builds the maintained spanner over a copy of base.
func NewIncremental(base *graph.Graph, opts IncrementalOptions) *Incremental {
	n := base.N()
	inc := &Incremental{
		dg:        graph.NewDynGraph(base),
		seed:      opts.Seed,
		n:         n,
		isCenter:  make([]bool, n),
		cluster:   make([]int32, n),
		want:      make([][]graph.Edge, n),
		ref:       make(map[graph.Edge]int8),
		threshold: opts.RebuildThreshold,
	}
	if inc.threshold == 0 {
		inc.threshold = DefaultRebuildThreshold
	}
	// Center coin: hash below the n^{-1/2} quantile of the uint64 range.
	// Graph-independent by design — edge churn never moves a center.
	thr := ^uint64(0)
	if n > 1 {
		thr = uint64(float64(thr) / math.Sqrt(float64(n)))
	}
	for v := 0; v < n; v++ {
		inc.isCenter[v] = centerHash(inc.seed, int32(v)) < thr
	}
	inc.recomputeAll()
	return inc
}

// centerHash is a splitmix64-style avalanche of (seed, v): a fixed,
// graph-independent coin per vertex.
func centerHash(seed uint64, v int32) uint64 {
	x := seed + 0x9e3779b97f4a7c15*uint64(v+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Graph returns the live mutable graph the spanner tracks. Callers must
// mutate it only through Insert/Delete, never directly.
func (inc *Incremental) Graph() *graph.DynGraph { return inc.dg }

// Seq returns the applied-update counter (delegates to the DynGraph).
func (inc *Incremental) Seq() uint64 { return inc.dg.Seq() }

// Rebuilds returns how many updates fell back to a full recompute under
// the dirty-fraction threshold.
func (inc *Incremental) Rebuilds() uint64 { return inc.rebuilds }

// HM returns the current spanner edge count.
func (inc *Incremental) HM() int { return len(inc.ref) }

// clusterOf recomputes v's cluster from its current neighborhood: v
// itself when v is a center, else the smallest-id center neighbor, else
// -1.
func (inc *Incremental) clusterOf(v int32) int32 {
	if inc.isCenter[v] {
		return v
	}
	for _, w := range inc.dg.Neighbors(v) { // sorted: first center is min id
		if inc.isCenter[w] {
			return w
		}
	}
	return -1
}

// wantOf computes W(v) fresh from the current graph and cluster values.
// The order is irrelevant (entries feed commutative refcounts); the
// edges themselves are normalized so both endpoints count the same key.
func (inc *Incremental) wantOf(v int32) []graph.Edge {
	nbrs := inc.dg.Neighbors(v)
	cv := inc.cluster[v]
	var out []graph.Edge
	if cv < 0 {
		for _, w := range nbrs {
			out = append(out, graph.Edge{U: v, V: w}.Normalize())
		}
		return out
	}
	if !inc.isCenter[v] {
		out = append(out, graph.Edge{U: v, V: cv}.Normalize())
	}
	seen := map[int32]bool{}
	for _, w := range nbrs { // sorted ⇒ first hit per cluster is min id
		cw := inc.cluster[w]
		if cw < 0 || cw == cv || seen[cw] {
			continue
		}
		seen[cw] = true
		out = append(out, graph.Edge{U: v, V: w}.Normalize())
	}
	return out
}

// applyVertex replaces v's contribution to the refcounts with a freshly
// computed W(v).
func (inc *Incremental) applyVertex(v int32) {
	for _, e := range inc.want[v] {
		if inc.ref[e]--; inc.ref[e] == 0 {
			delete(inc.ref, e)
		}
	}
	nw := inc.wantOf(v)
	for _, e := range nw {
		inc.ref[e]++
	}
	inc.want[v] = nw
}

// recomputeAll rebuilds clusters, want sets, and refcounts from scratch
// off the current edge set.
func (inc *Incremental) recomputeAll() {
	inc.ref = make(map[graph.Edge]int8, len(inc.ref))
	for v := int32(0); v < int32(inc.n); v++ {
		inc.cluster[v] = inc.clusterOf(v)
	}
	for v := int32(0); v < int32(inc.n); v++ {
		nw := inc.wantOf(v)
		for _, e := range nw {
			inc.ref[e]++
		}
		inc.want[v] = nw
	}
	inc.dirty = 0
}

// Insert adds the edge {u, v} to the live graph and maintains the
// spanner. It reports whether the graph changed and whether maintenance
// fell back to a full recompute.
func (inc *Incremental) Insert(u, v int32) (applied, rebuilt bool, err error) {
	return inc.update(u, v, true)
}

// Delete removes the edge {u, v} from the live graph and maintains the
// spanner. It reports whether the graph changed and whether maintenance
// fell back to a full recompute.
func (inc *Incremental) Delete(u, v int32) (applied, rebuilt bool, err error) {
	return inc.update(u, v, false)
}

func (inc *Incremental) update(u, v int32, add bool) (applied, rebuilt bool, err error) {
	if add {
		applied, err = inc.dg.Insert(u, v)
	} else {
		applied, err = inc.dg.Delete(u, v)
	}
	if err != nil || !applied {
		return applied, false, err
	}
	inc.dirty++
	m := inc.dg.M()
	if m < 1 {
		m = 1
	}
	if inc.threshold >= 0 && float64(inc.dirty) > inc.threshold*float64(m) {
		inc.recomputeAll()
		inc.rebuilds++
		return true, true, nil
	}

	// Local maintenance: only the endpoints' clusters can move; their
	// neighbors re-derive W only when the adjacent cluster value changed.
	affected := []int32{u, v}
	for _, x := range [2]int32{u, v} {
		old := inc.cluster[x]
		nc := inc.clusterOf(x)
		if nc == old {
			continue
		}
		inc.cluster[x] = nc
		affected = append(affected, inc.dg.Neighbors(x)...)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	var last int32 = -1
	for _, z := range affected {
		if z == last {
			continue
		}
		last = z
		inc.applyVertex(z)
	}
	return true, false, nil
}

// Edges returns the current spanner edge set, each edge once with U < V,
// sorted lexicographically — the canonical form compared byte-for-byte
// by the incremental-vs-rebuilt differential.
func (inc *Incremental) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(inc.ref))
	for e := range inc.ref {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Spanner freezes the maintained structure into the immutable Spanner
// form over a snapshot of the live graph. The certified stretch is 3 by
// the per-edge detour argument in the type comment.
func (inc *Incremental) Spanner() *Spanner {
	base := inc.dg.Snapshot()
	h := graph.FromEdges(inc.n, inc.Edges())
	return &Spanner{Base: base, H: h, Primary: h, Algorithm: "incremental-cluster3"}
}

// IncrementalAlpha is the distance stretch the incremental construction
// certifies: every base edge has a detour of ≤ 3 edges in H.
const IncrementalAlpha = 3
