package spanner

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
)

// Spanner bundles a spanner subgraph H of a base graph G together with
// the replacement-path router that realizes the paper's congestion
// guarantees. It implements routing.MatchingRouter via Router().
type Spanner struct {
	Base *graph.Graph // G
	H    *graph.Graph // the spanner: V(H) = V(G), E(H) ⊆ E(G)

	// Primary is the subgraph used for sampling 3-detours; for Algorithm 1
	// this is G' (the sampled graph), whose bounded degree is what caps
	// matching congestion (Lemma 17). For constructions without a separate
	// sampled graph it equals H.
	Primary *graph.Graph

	Algorithm string // human-readable construction name
}

// Validate checks the spanner invariants: same vertex set and E(H) ⊆ E(G).
func (s *Spanner) Validate() error {
	if s.H.N() != s.Base.N() {
		return fmt.Errorf("spanner: vertex count %d != base %d", s.H.N(), s.Base.N())
	}
	if !s.H.IsSubgraphOf(s.Base) {
		return fmt.Errorf("spanner: H is not a subgraph of G")
	}
	if s.Primary != nil && !s.Primary.IsSubgraphOf(s.H) {
		return fmt.Errorf("spanner: primary graph is not a subgraph of H")
	}
	return nil
}

// EdgeRatio returns |E(H)| / |E(G)|.
func (s *Spanner) EdgeRatio() float64 {
	if s.Base.M() == 0 {
		return 0
	}
	return float64(s.H.M()) / float64(s.Base.M())
}

// Router returns a fresh matching router over this spanner seeded from
// seed. Routers are stateful (they count fallbacks and consume randomness)
// and not safe for concurrent use; create one per goroutine.
func (s *Spanner) Router(seed uint64) *DetourRouter {
	primary := s.Primary
	if primary == nil {
		primary = s.H
	}
	return &DetourRouter{H: s.H, Primary: primary, RNG: rng.New(seed)}
}

// DetourRouter routes matching edges on a spanner following the paper's
// replacement-path rule: an edge surviving in H routes as itself; a
// removed edge routes over a uniformly random 3-hop detour in the primary
// (sampled) graph, preferring shorter detours when available. If no
// bounded detour exists the router falls back to a shortest path in H and
// counts the event — experiments report Fallbacks so constant-regime
// artifacts are visible rather than silent.
type DetourRouter struct {
	H       *graph.Graph
	Primary *graph.Graph
	RNG     *rng.RNG

	// Stats, accumulated across RouteMatching calls.
	Identity  int // edges present in H, routed as themselves
	Detour3   int // removed edges routed over sampled 3-detours
	Detour2   int // removed edges routed over a common neighbor (2-hop)
	Fallbacks int // removed edges needing a general shortest path in H

	scratch *graph.BFSScratch
	parent  []int32
}

// RouteMatching implements routing.MatchingRouter.
func (d *DetourRouter) RouteMatching(edges []graph.Edge) ([]routing.Path, error) {
	out := make([]routing.Path, len(edges))
	for i, e := range edges {
		p, err := d.RouteEdge(e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// RouteEdge routes a single source–destination pair that is an edge of the
// base graph, returning a path in H from e.U to e.V.
func (d *DetourRouter) RouteEdge(e graph.Edge) (routing.Path, error) {
	u, v := e.U, e.V
	if d.H.HasEdge(u, v) {
		d.Identity++
		return routing.Path{u, v}, nil
	}
	if det, ok := SampleThreeDetour(d.Primary, u, v, d.RNG); ok {
		d.Detour3++
		return routing.Path{u, det.X, det.Y, v}, nil
	}
	if mids := twoHopMiddles(d.Primary, u, v); len(mids) > 0 {
		d.Detour2++
		w := mids[d.RNG.Intn(len(mids))]
		return routing.Path{u, w, v}, nil
	}
	// Try the wider graph H before the general fallback.
	if d.Primary != d.H {
		if det, ok := SampleThreeDetour(d.H, u, v, d.RNG); ok {
			d.Detour3++
			return routing.Path{u, det.X, det.Y, v}, nil
		}
		if mids := twoHopMiddles(d.H, u, v); len(mids) > 0 {
			d.Detour2++
			w := mids[d.RNG.Intn(len(mids))]
			return routing.Path{u, w, v}, nil
		}
	}
	if d.scratch == nil {
		d.scratch = graph.NewBFSScratch(d.H.N())
		d.parent = make([]int32, d.H.N())
	}
	p := d.scratch.PathWithin(d.H, u, v, -1, d.parent)
	if p == nil {
		return nil, fmt.Errorf("spanner: pair (%d,%d) disconnected in H", u, v)
	}
	d.Fallbacks++
	return routing.Path(p), nil
}

var _ routing.MatchingRouter = (*DetourRouter)(nil)
