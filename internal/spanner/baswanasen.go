package spanner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// BaswanaSen computes a (2k−1)-distance spanner of an unweighted graph
// with expected O(k·n^{1+1/k}) edges, following the randomized clustering
// algorithm of Baswana & Sen [4] (the paper's reference point for
// classical distance-only spanners).
//
// Phase 1 runs k−1 rounds of cluster sampling with probability n^{−1/k};
// phase 2 connects every vertex to each adjacent surviving cluster.
func BaswanaSen(g *graph.Graph, k int, r *rng.RNG) (*Spanner, error) {
	return BaswanaSenTraced(g, k, r, nil)
}

// BaswanaSenTraced is BaswanaSen with phase tracing: each clustering
// round and the vertex–cluster joining phase open spans under parent
// (nil disables tracing at zero cost).
func BaswanaSenTraced(g *graph.Graph, k int, r *rng.RNG, parent *obs.Span) (*Spanner, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: BaswanaSen needs k >= 1")
	}
	n := g.N()
	if k == 1 {
		// A 1-spanner must preserve all distances exactly; the only
		// guaranteed subgraph is G itself.
		return &Spanner{Base: g, H: g, Primary: g, Algorithm: "baswana-sen-k1"}, nil
	}
	p := math.Pow(float64(n), -1.0/float64(k))
	bsp := parent.Start("baswana-sen")
	defer bsp.End()
	bsp.SetKV("k", k)

	// cluster[v] = id of v's cluster, or −1 once v has been discarded.
	cluster := make([]int32, n)
	for v := range cluster {
		cluster[v] = int32(v)
	}
	// center[c] tracks a representative used only for sampling stability.
	alive := make([]bool, n) // vertex still participates
	for v := range alive {
		alive[v] = true
	}

	spannerEdges := make(map[graph.Edge]bool)
	addEdge := func(u, w int32) { spannerEdges[graph.Edge{U: u, V: w}.Normalize()] = true }

	for phase := 1; phase <= k-1; phase++ {
		csp := bsp.Start(fmt.Sprintf("cluster-phase-%d", phase))
		// Sample clusters.
		sampled := make(map[int32]bool)
		clusterIDs := make(map[int32]bool)
		for v := 0; v < n; v++ {
			if alive[v] && cluster[v] >= 0 {
				clusterIDs[cluster[v]] = true
			}
		}
		for c := range clusterIDs {
			if r.Bernoulli(p) {
				sampled[c] = true
			}
		}
		newCluster := make([]int32, n)
		copy(newCluster, cluster)
		for v := int32(0); v < int32(n); v++ {
			if !alive[v] || cluster[v] < 0 {
				continue
			}
			if sampled[cluster[v]] {
				continue // v's cluster survives; v stays put
			}
			// Find neighbors grouped by adjacent cluster.
			var sampledNbr int32 = -1
			adjacent := make(map[int32]int32) // cluster -> one witness neighbor
			for _, w := range g.Neighbors(v) {
				if !alive[w] || cluster[w] < 0 || cluster[w] == cluster[v] {
					continue
				}
				c := cluster[w]
				if _, seen := adjacent[c]; !seen {
					adjacent[c] = w
				}
				if sampled[c] && sampledNbr < 0 {
					sampledNbr = w
				}
			}
			if sampledNbr >= 0 {
				// Join the sampled cluster through one edge.
				addEdge(v, sampledNbr)
				newCluster[v] = cluster[sampledNbr]
			} else {
				// No adjacent sampled cluster: add one edge per adjacent
				// cluster and retire v.
				for _, w := range adjacent {
					addEdge(v, w)
				}
				newCluster[v] = -1
				alive[v] = false
			}
		}
		cluster = newCluster
		csp.SetKV("sampledClusters", len(sampled))
		csp.SetKV("spannerEdges", len(spannerEdges))
		csp.End()
	}

	// Phase 2: vertex–cluster joining. Every vertex (including retired
	// ones) adds one edge to each adjacent surviving cluster.
	jsp := bsp.Start("vertex-cluster-join")
	for v := int32(0); v < int32(n); v++ {
		adjacent := make(map[int32]int32)
		for _, w := range g.Neighbors(v) {
			if alive[w] && cluster[w] >= 0 && (!alive[v] || cluster[w] != cluster[v]) {
				if _, seen := adjacent[cluster[w]]; !seen {
					adjacent[cluster[w]] = w
				}
			}
		}
		for _, w := range adjacent {
			addEdge(v, w)
		}
	}
	// Intra-cluster edges: each vertex that joined a cluster added its
	// connecting edge along the way; surviving clusters additionally keep
	// a spanning star via the edges accumulated during joins. (Vertices
	// that stayed in their own singleton cluster need no edge.)
	jsp.SetKV("spannerEdges", len(spannerEdges))
	jsp.End()

	h := g.FilterEdges(func(e graph.Edge) bool { return spannerEdges[e] })
	return &Spanner{Base: g, H: h, Primary: h, Algorithm: fmt.Sprintf("baswana-sen-k%d", k)}, nil
}

// Greedy computes the classical greedy alpha-spanner (Althöfer et al.):
// scan edges in canonical order and keep an edge only if the current
// spanner distance between its endpoints exceeds alpha. The output is
// always an alpha-distance spanner; for alpha = 2k−1 it has O(n^{1+1/k})
// edges. O(m · BFS) — intended for baseline-scale graphs.
func Greedy(g *graph.Graph, alpha int) *Spanner {
	n := g.N()
	kept := make([]graph.Edge, 0, n)
	// Incremental adjacency for the growing spanner.
	adj := make([][]int32, n)
	var distLimited func(u, v int32) bool // dist_H(u,v) <= alpha?
	dist := make([]int32, n)
	stamp := make([]int32, n)
	gen := int32(0)
	queue := make([]int32, 0, 64)
	distLimited = func(u, v int32) bool {
		gen++
		queue = queue[:0]
		queue = append(queue, u)
		dist[u] = 0
		stamp[u] = gen
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			if dist[x] >= int32(alpha) {
				break
			}
			for _, w := range adj[x] {
				if stamp[w] == gen {
					continue
				}
				stamp[w] = gen
				dist[w] = dist[x] + 1
				if w == v {
					return true
				}
				queue = append(queue, w)
			}
		}
		return false
	}
	for _, e := range g.Edges() {
		if !distLimited(e.U, e.V) {
			kept = append(kept, e)
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	keptSet := make(map[graph.Edge]bool, len(kept))
	for _, e := range kept {
		keptSet[e] = true
	}
	h := g.FilterEdges(func(e graph.Edge) bool { return keptSet[e] })
	return &Spanner{Base: g, H: h, Primary: h, Algorithm: fmt.Sprintf("greedy-%d", alpha)}
}
