package spanner

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// edgesEqual compares two canonical edge lists.
func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The keystone property: after any update sequence, the maintained
// spanner is identical — edge for edge — to the one built from scratch
// on the current edge set, and it is a valid 3-spanner of that edge set.
func TestIncrementalEqualsRebuilt(t *testing.T) {
	for name, base := range map[string]*graph.Graph{
		"er-sparse": gen.ErdosRenyi(40, 0.06, rng.New(7)),
		"er-dense":  gen.ErdosRenyi(30, 0.25, rng.New(8)),
		"cycle":     gen.Cycle(32),
		"clique":    gen.Clique(14),
	} {
		const seed = 0xd1_5c0_c0de
		inc := NewIncremental(base, IncrementalOptions{Seed: seed, RebuildThreshold: -1})
		r := rng.New(99)
		n := int32(base.N())
		for step := 0; step < 300; step++ {
			u, v := int32(r.Intn(int(n))), int32(r.Intn(int(n)))
			if u == v {
				continue
			}
			var err error
			if r.Bernoulli(0.5) {
				_, _, err = inc.Insert(u, v)
			} else {
				_, _, err = inc.Delete(u, v)
			}
			if err != nil {
				t.Fatal(err)
			}
			if step%29 != 0 {
				continue
			}
			snap := inc.Graph().Snapshot()
			fresh := NewIncremental(snap, IncrementalOptions{Seed: seed, RebuildThreshold: -1})
			if !edgesEqual(inc.Edges(), fresh.Edges()) {
				t.Fatalf("%s step %d: incremental spanner (%d edges) != rebuilt (%d edges)",
					name, step, inc.HM(), fresh.HM())
			}
			s := inc.Spanner()
			if err := s.Validate(); err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
			if rep := VerifyEdgeStretch(snap, s.H, IncrementalAlpha); rep.Violations != 0 {
				t.Fatalf("%s step %d: %d edges over stretch %d (max %.1f)",
					name, step, rep.Violations, IncrementalAlpha, rep.MaxStretch)
			}
		}
	}
}

// The rebuild threshold is a performance fallback, never a semantic one:
// a low threshold must trigger full recomputes and still produce the
// same spanner as threshold-free local maintenance.
func TestIncrementalRebuildThresholdSemanticsFree(t *testing.T) {
	base := gen.ErdosRenyi(36, 0.12, rng.New(11))
	const seed = 31337
	eager := NewIncremental(base, IncrementalOptions{Seed: seed, RebuildThreshold: 0.02})
	lazy := NewIncremental(base, IncrementalOptions{Seed: seed, RebuildThreshold: -1})
	r := rng.New(5)
	sawRebuild := false
	for step := 0; step < 200; step++ {
		u, v := int32(r.Intn(36)), int32(r.Intn(36))
		if u == v {
			continue
		}
		add := r.Bernoulli(0.5)
		var rebuilt bool
		var err1, err2 error
		if add {
			_, rebuilt, err1 = eager.Insert(u, v)
			_, _, err2 = lazy.Insert(u, v)
		} else {
			_, rebuilt, err1 = eager.Delete(u, v)
			_, _, err2 = lazy.Delete(u, v)
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		sawRebuild = sawRebuild || rebuilt
		if !edgesEqual(eager.Edges(), lazy.Edges()) {
			t.Fatalf("step %d: rebuild path diverged from local maintenance", step)
		}
	}
	if !sawRebuild || eager.Rebuilds() == 0 {
		t.Fatal("a 2% dirty threshold never triggered a full recompute over 200 updates")
	}
	if lazy.Rebuilds() != 0 {
		t.Fatalf("threshold -1 recomputed %d times", lazy.Rebuilds())
	}
}

// No-op updates (inserting a present edge, deleting an absent one) must
// not change the spanner or advance the sequence counter.
func TestIncrementalNoOpUpdates(t *testing.T) {
	base := gen.Cycle(20)
	inc := NewIncremental(base, IncrementalOptions{Seed: 3})
	before := inc.Edges()
	seq := inc.Seq()
	if applied, _, err := inc.Insert(0, 1); err != nil || applied {
		t.Fatalf("inserting a present edge: applied=%v err=%v", applied, err)
	}
	if applied, _, err := inc.Delete(0, 5); err != nil || applied {
		t.Fatalf("deleting an absent edge: applied=%v err=%v", applied, err)
	}
	if _, _, err := inc.Insert(0, 20); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if inc.Seq() != seq || !edgesEqual(inc.Edges(), before) {
		t.Fatal("no-op updates mutated the maintained state")
	}
}

// Disconnecting and reconnecting a component round-trips to the exact
// original spanner — deletions must fully unwind refcounts.
func TestIncrementalDeleteReinsertRoundTrip(t *testing.T) {
	base := gen.ErdosRenyi(30, 0.15, rng.New(21))
	inc := NewIncremental(base, IncrementalOptions{Seed: 77, RebuildThreshold: -1})
	want := inc.Edges()
	edges := append([]graph.Edge(nil), base.Edges()...)
	for _, e := range edges {
		if _, _, err := inc.Delete(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if inc.HM() != 0 || inc.Graph().M() != 0 {
		t.Fatalf("after deleting every edge: hm=%d m=%d", inc.HM(), inc.Graph().M())
	}
	for i := len(edges) - 1; i >= 0; i-- {
		if _, _, err := inc.Insert(edges[i].U, edges[i].V); err != nil {
			t.Fatal(err)
		}
	}
	if !edgesEqual(inc.Edges(), want) {
		t.Fatal("delete-all/re-insert-all did not restore the original spanner")
	}
}
