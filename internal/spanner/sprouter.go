package spanner

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
)

// SPRouter routes matching edges over uniformly random shortest paths in
// the spanner. It is the natural generalization of Theorem 2's "pick a
// replacement path uniformly at random" rule beyond 3-hop detours, and
// powers the Section 8 exploration: sparser sampling loses the 3-hop
// replacements, but uniformly random shortest paths keep spreading load
// at distance stretch equal to the spanner's (larger) stretch.
type SPRouter struct {
	H       *graph.Graph
	RNG     *rng.RNG
	sampler *routing.SPSampler

	// MaxLen, if positive, rejects paths longer than MaxLen with an error
	// — used when the caller needs a hard stretch guarantee.
	MaxLen int
}

// NewSPRouter creates a router over h.
func NewSPRouter(h *graph.Graph, seed uint64) *SPRouter {
	return &SPRouter{H: h, RNG: rng.New(seed), sampler: routing.NewSPSampler(h)}
}

// RouteMatching implements routing.MatchingRouter.
func (s *SPRouter) RouteMatching(edges []graph.Edge) ([]routing.Path, error) {
	out := make([]routing.Path, len(edges))
	for i, e := range edges {
		p := s.sampler.Sample(e.U, e.V, s.RNG)
		if p == nil {
			return nil, fmt.Errorf("spanner: pair (%d,%d) disconnected in H", e.U, e.V)
		}
		if s.MaxLen > 0 && p.Len() > s.MaxLen {
			return nil, fmt.Errorf("spanner: pair (%d,%d) needs %d hops > limit %d",
				e.U, e.V, p.Len(), s.MaxLen)
		}
		out[i] = p
	}
	return out, nil
}

var _ routing.MatchingRouter = (*SPRouter)(nil)

// BuildExpanderK is the Section 8 exploration "increase the distance
// stretch; this may give better congestion bounds": sample every edge with
// probability p (sparser than Theorem 2's n^{−ε} regime is allowed), and
// route removed edges over uniformly random shortest paths in H, whatever
// their length. The returned spanner's distance stretch is its measured
// per-edge stretch (verify with VerifyEdgeStretch) rather than a designed
// 3; the experiments sweep p and chart the stretch/size/congestion
// frontier.
func BuildExpanderK(g *graph.Graph, p float64, seed uint64) (*Spanner, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("spanner: BuildExpanderK needs p in (0,1], got %v", p)
	}
	r := rng.New(seed)
	for try := 0; try < 16; try++ {
		h := sampleEdges(g, p, r)
		if h.Connected() {
			return &Spanner{Base: g, H: h, Primary: h, Algorithm: "section8-expander-k"}, nil
		}
	}
	return nil, fmt.Errorf("spanner: sampled subgraph stayed disconnected at p=%v", p)
}
