package spanner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// RegularOptions configures Algorithm 1 (Section 4).
//
// The paper's analysis sets the support thresholds to a = λΔ' with
// λ = 2⁷ln²n/c₁ and b = c₁Δ. Those constants are asymptotic: for every n
// reachable in an experiment, λΔ' > Δ and no edge qualifies as supported,
// degenerating H to G. The options therefore expose the thresholds; the
// defaults scale the same way (a ∝ Δ', b ∝ Δ) with practical constants,
// and the experiments verify the resulting stretch/congestion shape. See
// DESIGN.md ("Asymptotic constants").
type RegularOptions struct {
	// DeltaPrime is Δ' (target sampled degree); 0 means ⌊√Δ⌋ per the paper.
	DeltaPrime int
	// SupportA is the 'a' of (a,b)-supported; 0 means max(1, ⌊AFrac·Δ'⌋).
	SupportA int
	// AFrac is the practical stand-in for λ: a = AFrac·Δ'. Default 0.5.
	AFrac float64
	// SupportB is the 'b' of (a,b)-supported; 0 means max(1, ⌊C1·Δ⌋).
	SupportB int
	// C1 is the paper's c₁ ∈ (0, 1−1/Δ). Default 0.25.
	C1 float64
	// EnsureDetour additionally reinserts any removed supported edge with
	// no surviving 3-detour in G', making H a 3-distance spanner
	// deterministically (the paper's prose description of reinsertion;
	// the analysis shows the set is empty w.h.p.). Default true via
	// DefaultRegularOptions.
	EnsureDetour bool
	// Seed drives the edge sampling.
	Seed uint64
	// Trace, when non-nil, receives the construction's phase spans
	// (sampling, support computation, reinsertion, detour checks).
	Trace *obs.Span
}

// DefaultRegularOptions returns options matching the paper's parameter
// shapes with practical constants.
func DefaultRegularOptions(seed uint64) RegularOptions {
	return RegularOptions{AFrac: 0.5, C1: 0.25, EnsureDetour: true, Seed: seed}
}

// PaperLambda returns the paper's λ = 2⁷·ln²n/c₁ (Algorithm 1 line 7) for
// reference and for documenting the constant-regime gap in experiments.
func PaperLambda(n int, c1 float64) float64 {
	ln := math.Log(float64(n))
	return 128 * ln * ln / c1
}

// RegularResult carries the Algorithm 1 outputs and accounting.
type RegularResult struct {
	Spanner *Spanner
	GPrime  *graph.Graph // G' = (V, E'), the sampled graph (line 5)

	Rho        float64 // the sampling probability Δ'/Δ
	DeltaPrime int
	SupportA   int
	SupportB   int

	Sampled             int // |E'|
	SupportedCount      int // |Ê|
	ReinsertedUnsupport int // |E ∖ Ê| reinserted on line 9-10
	ReinsertedNoDetour  int // supported-but-detourless edges reinserted (EnsureDetour)
}

// BuildRegular runs Algorithm 1 on a Δ-regular (or near-regular) graph:
//
//  1. keep each edge with probability ρ = Δ'/Δ → G';
//  2. compute Ê, the edges (a, b)-supported in at least one direction;
//  3. reinsert E” = E ∖ Ê;
//  4. (EnsureDetour) reinsert removed supported edges lacking a 3-detour
//     in G';
//  5. H = (V, E' ∪ E” ∪ reinserted).
func BuildRegular(g *graph.Graph, opts RegularOptions) (*RegularResult, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("spanner: empty graph")
	}
	delta := g.MaxDegree()
	if delta == 0 {
		return nil, fmt.Errorf("spanner: edgeless graph")
	}
	dp := opts.DeltaPrime
	if dp <= 0 {
		dp = int(math.Sqrt(float64(delta)))
		if dp < 1 {
			dp = 1
		}
	}
	rho := float64(dp) / float64(delta)
	if rho > 1 {
		rho = 1
	}
	aFrac := opts.AFrac
	if aFrac <= 0 {
		aFrac = 0.5
	}
	c1 := opts.C1
	if c1 <= 0 {
		c1 = 0.25
	}
	a := opts.SupportA
	if a <= 0 {
		a = int(aFrac * float64(dp))
		if a < 1 {
			a = 1
		}
	}
	b := opts.SupportB
	if b <= 0 {
		b = int(c1 * float64(delta))
		if b < 1 {
			b = 1
		}
	}

	rsp := opts.Trace.Start("regular")
	defer rsp.End()
	rsp.SetKV("rho", rho)

	r := rng.New(opts.Seed)
	ssp := rsp.Start("sample-gprime")
	gPrime := sampleEdges(g, rho, r)
	ssp.SetKV("sampled", gPrime.M())
	ssp.End()
	sup := rsp.Start("supported-edges")
	supported := SupportedEdges(g, a, b)
	sup.End()

	res := &RegularResult{
		GPrime:     gPrime,
		Rho:        rho,
		DeltaPrime: dp,
		SupportA:   a,
		SupportB:   b,
		Sampled:    gPrime.M(),
	}

	inPrime := make([]bool, g.M())
	{
		i := 0
		// FilterEdges preserved order, so a linear merge identifies E'.
		primeEdges := gPrime.Edges()
		for j, e := range g.Edges() {
			if i < len(primeEdges) && primeEdges[i] == e {
				inPrime[j] = true
				i++
			}
			_ = j
		}
	}

	psp := rsp.Start("partition-edges")
	keep := make([]bool, g.M())
	needCheck := make([]int, 0)
	for i := range keep {
		switch {
		case inPrime[i]:
			keep[i] = true
		case !supported[i]:
			keep[i] = true // E'' reinsertion (line 9–10)
			res.ReinsertedUnsupport++
		default:
			if opts.EnsureDetour {
				needCheck = append(needCheck, i)
			}
		}
		if supported[i] {
			res.SupportedCount++
		}
	}
	psp.SetKV("supported", res.SupportedCount)
	psp.SetKV("reinsertedUnsupported", res.ReinsertedUnsupport)
	psp.End()

	dsp := rsp.Start("detour-check")
	dsp.SetKV("candidates", len(needCheck))
	if len(needCheck) > 0 {
		// Parallel 3-detour existence checks in G' for removed supported
		// edges; reinsert those without one.
		edges := g.Edges()
		missing := make([]bool, len(needCheck))
		graph.ParallelRange(len(needCheck), func(lo, hi int) {
			scratch := graph.NewBFSScratch(n)
			for k := lo; k < hi; k++ {
				e := edges[needCheck[k]]
				if scratch.DistWithin(gPrime, e.U, e.V, 3) == graph.Unreachable {
					missing[k] = true
				}
			}
		})
		for k, m := range missing {
			if m {
				keep[needCheck[k]] = true
				res.ReinsertedNoDetour++
			}
		}
	}
	dsp.SetKV("reinserted", res.ReinsertedNoDetour)
	dsp.End()

	idx := 0
	h := g.FilterEdges(func(e graph.Edge) bool {
		k := keep[idx]
		idx++
		return k
	})
	res.Spanner = &Spanner{Base: g, H: h, Primary: gPrime, Algorithm: "algorithm1-regular"}
	return res, nil
}

// TheoremEdgeBound returns the Theorem 3 edge bound shape n^{5/3}·log²n,
// for normalizing measured |E(H)| in the harness.
func TheoremEdgeBound(n int) float64 {
	ln := math.Log2(float64(n))
	return math.Pow(float64(n), 5.0/3.0) * ln * ln
}
