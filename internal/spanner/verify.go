package spanner

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// StretchReport summarizes a distance-stretch verification.
type StretchReport struct {
	Checked     int
	MaxStretch  float64
	Violations  int // pairs exceeding the asserted bound
	MeanStretch float64
}

// VerifyEdgeStretch checks the per-edge distance stretch of h versus g:
// for every edge (u,v) of G, dist_H(u,v) must be at most alpha. Because
// replacing each edge of any path by its detour multiplies lengths by at
// most the per-edge stretch (Lemma 1's argument), this certifies h as an
// alpha-distance spanner. The sweep runs in parallel over edges.
func VerifyEdgeStretch(g, h *graph.Graph, alpha int) StretchReport {
	m := g.M()
	edges := g.Edges()
	// Compute per-edge stretch into a shared slice in parallel, reduce after.
	stretch := make([]float64, m)
	graph.ParallelRange(m, func(lo, hi int) {
		scratch := graph.NewBFSScratch(g.N())
		for i := lo; i < hi; i++ {
			e := edges[i]
			d := scratch.DistWithin(h, e.U, e.V, int32(alpha))
			if d == graph.Unreachable {
				// Beyond alpha (or disconnected): measure the real distance
				// for reporting.
				full := scratch.DistWithin(h, e.U, e.V, -1)
				if full == graph.Unreachable {
					stretch[i] = math.Inf(1)
				} else {
					stretch[i] = float64(full)
				}
			} else {
				stretch[i] = float64(d)
			}
		}
	})
	var rep StretchReport
	rep.Checked = m
	total := 0.0
	for _, s := range stretch {
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
		if s > float64(alpha) {
			rep.Violations++
		}
		total += s
	}
	if m > 0 {
		rep.MeanStretch = total / float64(m)
	}
	return rep
}

// VerifyPairStretch samples `pairs` random vertex pairs and measures
// dist_H / dist_G, certifying the end-to-end distance stretch on sampled
// pairs (full all-pairs verification is quadratic; edges are the binding
// case anyway by Lemma 1).
func VerifyPairStretch(g, h *graph.Graph, pairs int, r *rng.RNG) StretchReport {
	n := g.N()
	type pair struct{ u, v int32 }
	ps := make([]pair, pairs)
	for i := range ps {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		for v == u {
			v = int32(r.Intn(n))
		}
		ps[i] = pair{u, v}
	}
	stretch := make([]float64, pairs)
	graph.ParallelRange(pairs, func(lo, hi int) {
		sg := graph.NewBFSScratch(n)
		sh := graph.NewBFSScratch(n)
		for i := lo; i < hi; i++ {
			dg := sg.DistWithin(g, ps[i].u, ps[i].v, -1)
			dh := sh.DistWithin(h, ps[i].u, ps[i].v, -1)
			switch {
			case dg == graph.Unreachable && dh == graph.Unreachable:
				stretch[i] = 1
			case dh == graph.Unreachable:
				stretch[i] = math.Inf(1)
			case dg == 0:
				stretch[i] = 1
			default:
				stretch[i] = float64(dh) / float64(dg)
			}
		}
	})
	var rep StretchReport
	rep.Checked = pairs
	total := 0.0
	for _, s := range stretch {
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
		total += s
	}
	if pairs > 0 {
		rep.MeanStretch = total / float64(pairs)
	}
	return rep
}
