package spanner

import (
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// StretchReport summarizes a distance-stretch verification.
type StretchReport struct {
	Checked     int
	MaxStretch  float64
	Violations  int // pairs exceeding the asserted bound
	MeanStretch float64
}

// VerifyOptions parameterizes the stretch-verification kernels.
//
// Determinism contract: for a fixed graph pair (and, for the pair sweep, a
// fixed RNG state), the report is byte-identical for every Workers value —
// all randomness is consumed serially before the parallel sweep starts,
// and each parallel unit writes only its own result slot.
type VerifyOptions struct {
	// Workers is the size of the BFS worker pool; 0 means graph.Workers()
	// (GOMAXPROCS). 1 runs the sweep inline with no goroutines.
	Workers int
	// Trace, when non-nil, receives one child span per sweep with the
	// worker count and sweep size as payload. Nil disables tracing.
	Trace *obs.Span
}

// VerifyEdgeStretch checks the per-edge distance stretch with default
// options (all cores, no tracing). See VerifyEdgeStretchOpts.
func VerifyEdgeStretch(g, h *graph.Graph, alpha int) StretchReport {
	return VerifyEdgeStretchOpts(g, h, alpha, VerifyOptions{})
}

// VerifyEdgeStretchOpts checks the per-edge distance stretch of h versus
// g: for every edge (u,v) of G, dist_H(u,v) must be at most alpha. Because
// replacing each edge of any path by its detour multiplies lengths by at
// most the per-edge stretch (Lemma 1's argument), this certifies h as an
// alpha-distance spanner.
//
// G's edge list is sorted by (U, V), so edges sharing a source form
// contiguous runs; the sweep runs one full BFS on h per distinct source
// through the multi-source kernel (bit-parallel on dense spanners, scalar
// otherwise) and reads every edge of the run out of that row. The per-edge
// values are identical to the old per-edge bounded-BFS kernel — the full
// spanner distance, +Inf when disconnected — and the reduction consumes
// them in edge order, so reports are byte-identical at any worker count
// and across kernels.
func VerifyEdgeStretchOpts(g, h *graph.Graph, alpha int, opt VerifyOptions) StretchReport {
	m := g.M()
	sp := opt.Trace.Start("edge-stretch-sweep")
	defer sp.End()
	sp.SetKV("edges", m)
	sp.SetKV("workers", effectiveWorkers(opt.Workers, m))
	edges := g.Edges()
	stretch := make([]float64, m)
	srcs := make([]int32, 0, 64)
	starts := make([]int, 0, 64)
	for i := 0; i < m; i++ {
		if i == 0 || edges[i].U != edges[i-1].U {
			srcs = append(srcs, edges[i].U)
			starts = append(starts, i)
		}
	}
	starts = append(starts, m)
	h.MultiSourceBFSSweep(srcs, opt.Workers, func(i int, src int32, dist []int32) {
		for j := starts[i]; j < starts[i+1]; j++ {
			if d := dist[edges[j].V]; d == graph.Unreachable {
				stretch[j] = math.Inf(1)
			} else {
				stretch[j] = float64(d)
			}
		}
	})
	rep := reduceStretch(stretch, float64(alpha))
	sp.SetKV("violations", rep.Violations)
	return rep
}

// VerifyPairStretch samples `pairs` random vertex pairs with default
// options. See VerifyPairStretchOpts.
func VerifyPairStretch(g, h *graph.Graph, pairs int, r *rng.RNG) StretchReport {
	return VerifyPairStretchOpts(g, h, pairs, r, VerifyOptions{})
}

// VerifyPairStretchOpts samples vertex pairs and measures dist_H / dist_G,
// certifying the end-to-end distance stretch on sampled pairs (full
// all-pairs verification is quadratic; edges are the binding case anyway
// by Lemma 1).
//
// The sample is drawn without replacement — `pairs` distinct unordered
// pairs, clamped to C(n, 2) when the request exceeds the pair space — and
// it is drawn serially from r before the parallel sweep begins, so the
// sampled set (and therefore the whole report) is identical for every
// opt.Workers value at a fixed RNG state. Report.Checked is the number of
// distinct pairs actually measured.
func VerifyPairStretchOpts(g, h *graph.Graph, pairs int, r *rng.RNG, opt VerifyOptions) StretchReport {
	n := g.N()
	if total := int64(n) * int64(n-1) / 2; int64(pairs) > total {
		pairs = int(total)
	}
	// The sample is the first (and only) RNG draw: it must happen before
	// any sweep so the pair set is a pure function of the RNG state.
	ps := r.SamplePairs(n, pairs)
	sp := opt.Trace.Start("pair-stretch-sweep")
	defer sp.End()
	sp.SetKV("pairs", pairs)
	sp.SetKV("workers", effectiveWorkers(opt.Workers, pairs))
	// Bucket pair indices by first endpoint (counting sort) so one BFS row
	// per distinct anchor serves every pair anchored there — on g and h
	// alike, since both sweeps share the grouping.
	cnt := make([]int32, n)
	for _, p := range ps {
		cnt[p[0]]++
	}
	srcs := make([]int32, 0, 64)
	for v := 0; v < n; v++ {
		if cnt[v] > 0 {
			srcs = append(srcs, int32(v))
		}
	}
	rowOf := make([]int32, n)
	off := make([]int32, len(srcs)+1)
	for i, s := range srcs {
		rowOf[s] = int32(i)
		off[i+1] = off[i] + cnt[s]
	}
	pos := append([]int32(nil), off[:len(srcs)]...)
	order := make([]int32, len(ps))
	for i, p := range ps {
		ri := rowOf[p[0]]
		order[pos[ri]] = int32(i)
		pos[ri]++
	}
	dg := make([]int32, len(ps))
	dh := make([]int32, len(ps))
	fill := func(dst []int32) func(i int, src int32, dist []int32) {
		return func(i int, src int32, dist []int32) {
			for _, pi := range order[off[i]:off[i+1]] {
				dst[pi] = dist[ps[pi][1]]
			}
		}
	}
	g.MultiSourceBFSSweep(srcs, opt.Workers, fill(dg))
	h.MultiSourceBFSSweep(srcs, opt.Workers, fill(dh))
	stretch := make([]float64, len(ps))
	for i := range ps {
		switch {
		case dg[i] == graph.Unreachable && dh[i] == graph.Unreachable:
			stretch[i] = 1
		case dh[i] == graph.Unreachable:
			stretch[i] = math.Inf(1)
		case dg[i] == 0:
			stretch[i] = 1
		default:
			stretch[i] = float64(dh[i]) / float64(dg[i])
		}
	}
	return reduceStretch(stretch, math.Inf(1))
}

// reduceStretch folds a per-unit stretch slice into a report; values above
// bound count as violations. The reduction is serial and
// order-independent, so it closes the determinism argument for the
// parallel sweeps.
func reduceStretch(stretch []float64, bound float64) StretchReport {
	rep := StretchReport{Checked: len(stretch)}
	total := 0.0
	for _, s := range stretch {
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
		if s > bound {
			rep.Violations++
		}
		total += s
	}
	if len(stretch) > 0 {
		rep.MeanStretch = total / float64(len(stretch))
	}
	return rep
}

// effectiveWorkers mirrors the graph package's worker clamping for scratch
// sizing and span payloads: 0 means all cores, never more workers than
// work items.
func effectiveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = graph.Workers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
