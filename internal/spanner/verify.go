package spanner

import (
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// StretchReport summarizes a distance-stretch verification.
type StretchReport struct {
	Checked     int
	MaxStretch  float64
	Violations  int // pairs exceeding the asserted bound
	MeanStretch float64
}

// VerifyOptions parameterizes the stretch-verification kernels.
//
// Determinism contract: for a fixed graph pair (and, for the pair sweep, a
// fixed RNG state), the report is byte-identical for every Workers value —
// all randomness is consumed serially before the parallel sweep starts,
// and each parallel unit writes only its own result slot.
type VerifyOptions struct {
	// Workers is the size of the BFS worker pool; 0 means graph.Workers()
	// (GOMAXPROCS). 1 runs the sweep inline with no goroutines.
	Workers int
	// Trace, when non-nil, receives one child span per sweep with the
	// worker count and sweep size as payload. Nil disables tracing.
	Trace *obs.Span
}

// VerifyEdgeStretch checks the per-edge distance stretch with default
// options (all cores, no tracing). See VerifyEdgeStretchOpts.
func VerifyEdgeStretch(g, h *graph.Graph, alpha int) StretchReport {
	return VerifyEdgeStretchOpts(g, h, alpha, VerifyOptions{})
}

// VerifyEdgeStretchOpts checks the per-edge distance stretch of h versus
// g: for every edge (u,v) of G, dist_H(u,v) must be at most alpha. Because
// replacing each edge of any path by its detour multiplies lengths by at
// most the per-edge stretch (Lemma 1's argument), this certifies h as an
// alpha-distance spanner. The sweep runs one bounded BFS per edge of G on
// opt.Workers goroutines via the graph package's parallel edge-sweep
// kernel, with per-worker reusable BFS scratch.
func VerifyEdgeStretchOpts(g, h *graph.Graph, alpha int, opt VerifyOptions) StretchReport {
	m := g.M()
	sp := opt.Trace.Start("edge-stretch-sweep")
	defer sp.End()
	sp.SetKV("edges", m)
	sp.SetKV("workers", effectiveWorkers(opt.Workers, m))
	// Compute per-edge stretch into a shared slice in parallel, reduce after.
	stretch := make([]float64, m)
	scratch := make([]*graph.BFSScratch, effectiveWorkers(opt.Workers, m))
	g.ParallelEdgeSweep(opt.Workers, func(w, lo, hi int, edges []graph.Edge) {
		s := scratch[w]
		if s == nil {
			s = graph.NewBFSScratch(g.N())
			scratch[w] = s
		}
		for i := lo; i < hi; i++ {
			e := edges[i]
			d := s.DistWithin(h, e.U, e.V, int32(alpha))
			if d == graph.Unreachable {
				// Beyond alpha (or disconnected): measure the real distance
				// for reporting.
				full := s.DistWithin(h, e.U, e.V, -1)
				if full == graph.Unreachable {
					stretch[i] = math.Inf(1)
				} else {
					stretch[i] = float64(full)
				}
			} else {
				stretch[i] = float64(d)
			}
		}
	})
	rep := reduceStretch(stretch, float64(alpha))
	sp.SetKV("violations", rep.Violations)
	return rep
}

// VerifyPairStretch samples `pairs` random vertex pairs with default
// options. See VerifyPairStretchOpts.
func VerifyPairStretch(g, h *graph.Graph, pairs int, r *rng.RNG) StretchReport {
	return VerifyPairStretchOpts(g, h, pairs, r, VerifyOptions{})
}

// VerifyPairStretchOpts samples vertex pairs and measures dist_H / dist_G,
// certifying the end-to-end distance stretch on sampled pairs (full
// all-pairs verification is quadratic; edges are the binding case anyway
// by Lemma 1).
//
// The sample is drawn without replacement — `pairs` distinct unordered
// pairs, clamped to C(n, 2) when the request exceeds the pair space — and
// it is drawn serially from r before the parallel sweep begins, so the
// sampled set (and therefore the whole report) is identical for every
// opt.Workers value at a fixed RNG state. Report.Checked is the number of
// distinct pairs actually measured.
func VerifyPairStretchOpts(g, h *graph.Graph, pairs int, r *rng.RNG, opt VerifyOptions) StretchReport {
	n := g.N()
	if total := int64(n) * int64(n-1) / 2; int64(pairs) > total {
		pairs = int(total)
	}
	ps := r.SamplePairs(n, pairs)
	sp := opt.Trace.Start("pair-stretch-sweep")
	defer sp.End()
	sp.SetKV("pairs", pairs)
	sp.SetKV("workers", effectiveWorkers(opt.Workers, pairs))
	type scratchPair struct{ sg, sh *graph.BFSScratch }
	scratch := make([]scratchPair, effectiveWorkers(opt.Workers, pairs))
	stretch := make([]float64, pairs)
	graph.ParallelRangeWorkers(pairs, opt.Workers, func(w, lo, hi int) {
		s := &scratch[w]
		if s.sg == nil {
			s.sg = graph.NewBFSScratch(n)
			s.sh = graph.NewBFSScratch(n)
		}
		for i := lo; i < hi; i++ {
			dg := s.sg.DistWithin(g, ps[i][0], ps[i][1], -1)
			dh := s.sh.DistWithin(h, ps[i][0], ps[i][1], -1)
			switch {
			case dg == graph.Unreachable && dh == graph.Unreachable:
				stretch[i] = 1
			case dh == graph.Unreachable:
				stretch[i] = math.Inf(1)
			case dg == 0:
				stretch[i] = 1
			default:
				stretch[i] = float64(dh) / float64(dg)
			}
		}
	})
	return reduceStretch(stretch, math.Inf(1))
}

// reduceStretch folds a per-unit stretch slice into a report; values above
// bound count as violations. The reduction is serial and
// order-independent, so it closes the determinism argument for the
// parallel sweeps.
func reduceStretch(stretch []float64, bound float64) StretchReport {
	rep := StretchReport{Checked: len(stretch)}
	total := 0.0
	for _, s := range stretch {
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
		if s > bound {
			rep.Violations++
		}
		total += s
	}
	if len(stretch) > 0 {
		rep.MeanStretch = total / float64(len(stretch))
	}
	return rep
}

// effectiveWorkers mirrors the graph package's worker clamping for scratch
// sizing and span payloads: 0 means all cores, never more workers than
// work items.
func effectiveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = graph.Workers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
