// Package spanner implements the paper's spanner constructions and the
// baselines they are compared against:
//
//   - BuildExpander — Theorem 2: 3-distance-stretch DC-spanner for
//     spectral expanders via independent edge sampling and random 3-hop
//     replacement paths across neighborhood matchings.
//   - BuildRegular — Algorithm 1 / Theorem 3: DC-spanner for Δ-regular
//     graphs via sampling with probability Δ'/Δ and reinsertion of edges
//     that are not (a, b)-supported.
//   - BaswanaSen, Greedy — classical distance-spanner baselines.
//   - SparsifyUniform, ExtractBoundedDegree — stand-ins for the [16] and
//     [5] rows of Table 1 (see DESIGN.md, substitutions).
//
// All constructions return a Spanner whose RouteMatching method provides
// the per-matching substitute routing required by Theorem 1 / Algorithm 2.
package spanner

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// ExtensionSupport counts, for the directed edge (u → v), the number of
// a-supported extensions of (u,v) toward v: neighbors z of v (z ≠ u) such
// that the base {u, z} is (a+1)-supported, i.e. u and z have at least a+1
// common neighbors (v itself being one of them). This is the quantity "b"
// in the paper's (a, b)-supported definition (Section 4, Figures 3–4).
func ExtensionSupport(g *graph.Graph, u, v int32, a int) int {
	b := 0
	for _, z := range g.Neighbors(v) {
		if z == u {
			continue
		}
		if g.CommonNeighbors(u, z) >= a+1 {
			b++
		}
	}
	return b
}

// IsSupported reports whether edge e is (a, b)-supported toward at least
// one of its endpoints.
func IsSupported(g *graph.Graph, e graph.Edge, a, b int) bool {
	return ExtensionSupport(g, e.U, e.V, a) >= b || ExtensionSupport(g, e.V, e.U, a) >= b
}

// SupportedEdges computes, in parallel over edges, whether each edge of g
// is (a, b)-supported in at least one direction. The result is indexed
// like g.Edges(). This is the Ê computation of Algorithm 1 line 8 and the
// dominant cost of the construction (O(Σ_v deg(v)²) common-neighbor
// counts), hence the parallel sweep.
func SupportedEdges(g *graph.Graph, a, b int) []bool {
	out := make([]bool, g.M())
	g.ParallelForEachEdge(func(i int, e graph.Edge) {
		out[i] = IsSupported(g, e, a, b)
	})
	return out
}

// ThreeDetour is a 3-hop replacement path u – X – Y – v for an edge (u,v):
// X ∈ N(u), Y ∈ N(v), (X,Y) an edge, all within the spanner.
type ThreeDetour struct {
	X, Y int32
}

// CountThreeDetours counts the 3-hop paths between u and v inside h
// (middle edges (x, y) with x ∈ N_h(u), y ∈ N_h(v), x ≠ v, y ≠ u, x ≠ y).
func CountThreeDetours(h *graph.Graph, u, v int32) int {
	total := 0
	for _, x := range h.Neighbors(u) {
		if x == v {
			continue
		}
		total += middleCount(h, x, v, u)
	}
	return total
}

// middleCount counts y ∈ N_h(x) ∩ N_h(v) with y ≠ u and y ≠ x... i.e. the
// number of valid detour middles through x for the pair (u, v).
func middleCount(h *graph.Graph, x, v, u int32) int {
	a, b := h.Neighbors(x), h.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			y := a[i]
			if y != u && y != x && y != v {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// SampleThreeDetour picks a uniformly random 3-hop path u–x–y–v in h, or
// ok=false if none exists. Uniformity: x is chosen with probability
// proportional to the number of valid middles through it, then y uniform
// among those middles — exactly the "choose one of the available 3-hop
// paths uniformly at random" rule of Theorem 2's replacement paths.
func SampleThreeDetour(h *graph.Graph, u, v int32, r *rng.RNG) (ThreeDetour, bool) {
	nu := h.Neighbors(u)
	weights := make([]int, len(nu))
	total := 0
	for i, x := range nu {
		if x == v {
			continue
		}
		w := middleCount(h, x, v, u)
		weights[i] = w
		total += w
	}
	if total == 0 {
		return ThreeDetour{}, false
	}
	pick := r.Intn(total)
	for i, x := range nu {
		if pick < weights[i] {
			// Select the pick-th valid middle through x.
			y, ok := nthMiddle(h, x, v, u, pick)
			if !ok {
				break // defensive; cannot happen
			}
			return ThreeDetour{X: x, Y: y}, true
		}
		pick -= weights[i]
	}
	return ThreeDetour{}, false
}

// nthMiddle returns the k-th (0-based) valid middle vertex y for the
// detour u–x–y–v.
func nthMiddle(h *graph.Graph, x, v, u int32, k int) (int32, bool) {
	a, b := h.Neighbors(x), h.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			y := a[i]
			if y != u && y != x && y != v {
				if k == 0 {
					return y, true
				}
				k--
			}
			i++
			j++
		}
	}
	return -1, false
}

// twoHopMiddles returns the common neighbors of u and v in h excluding u
// and v themselves — the routers of 2-detours with base {u, v}.
func twoHopMiddles(h *graph.Graph, u, v int32) []int32 {
	a, b := h.Neighbors(u), h.Neighbors(v)
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			w := a[i]
			if w != u && w != v {
				out = append(out, w)
			}
			i++
			j++
		}
	}
	return out
}
