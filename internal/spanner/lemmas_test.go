package spanner

// Lemma-level tests: each test pins one quantitative statement from the
// paper's analysis (Sections 3–4) to a measured assertion on concrete
// instances, so regressions in the constructions are caught at the level
// of the claims they must satisfy.

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spectral"
)

// Lemma 9: |E'| < nΔ' with probability ≥ 1 − 1/n. We check the sampled
// size is concentrated near its mean nΔ'/2 and under the bound.
func TestLemma9SampledEdgeCount(t *testing.T) {
	n, d := 343, 56
	g := gen.MustRandomRegular(n, d, rng.New(91))
	for seed := uint64(0); seed < 5; seed++ {
		res, err := BuildRegular(g, DefaultRegularOptions(seed))
		if err != nil {
			t.Fatal(err)
		}
		bound := n * res.DeltaPrime
		if res.Sampled >= bound {
			t.Fatalf("seed %d: |E'| = %d ≥ nΔ' = %d", seed, res.Sampled, bound)
		}
		mean := float64(n*res.DeltaPrime) / 2
		if math.Abs(float64(res.Sampled)-mean) > 0.25*mean {
			t.Fatalf("seed %d: |E'| = %d far from mean %v", seed, res.Sampled, mean)
		}
	}
}

// Lemma 16: every node of G' has degree at most 2Δ' w.h.p.
func TestLemma16GPrimeDegree(t *testing.T) {
	n, d := 512, 72
	g := gen.MustRandomRegular(n, d, rng.New(92))
	res, err := BuildRegular(g, DefaultRegularOptions(93))
	if err != nil {
		t.Fatal(err)
	}
	// The bound needs Δ' ≥ Ω(log n) for concentration; at Δ'=8 allow the
	// small-n tail: check against 3Δ' strictly and report the 2Δ'
	// fraction.
	over2 := 0
	for v := int32(0); v < int32(n); v++ {
		deg := res.GPrime.Degree(v)
		if deg > 3*res.DeltaPrime {
			t.Fatalf("node %d has G' degree %d > 3Δ' = %d", v, deg, 3*res.DeltaPrime)
		}
		if deg > 2*res.DeltaPrime {
			over2++
		}
	}
	if over2 > n/20 {
		t.Fatalf("%d/%d nodes exceed 2Δ' (Lemma 16 tail too heavy)", over2, n)
	}
}

// Lemma 17: for any matching M in G there is a routing in H with
// congestion ≤ 1 + 2Δ' (≈ 1 + 2√Δ) w.h.p.
func TestLemma17MatchingCongestionBound(t *testing.T) {
	n, d := 343, 56
	g := gen.MustRandomRegular(n, d, rng.New(94))
	res, err := BuildRegular(g, DefaultRegularOptions(95))
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, n)
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	router := res.Spanner.Router(96)
	paths, err := router.RouteMatching(m)
	if err != nil {
		t.Fatal(err)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
	c := rt.NodeCongestion(n)
	if c > 1+2*res.DeltaPrime {
		t.Fatalf("matching congestion %d > 1+2Δ' = %d", c, 1+2*res.DeltaPrime)
	}
}

// Lemma 5 (spirit): for edges {u,v} of an expander in the Theorem 2
// regime, the sampled neighborhood matching M^S_{u,v} stays large — we
// check the count of sampled 3-hop replacement paths is bounded away from
// zero for every removed edge (which is what the replacement rule needs).
func TestLemma5SampledReplacementsExist(t *testing.T) {
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, rng.New(97))
	sp, err := BuildExpander(g, ExpanderOptions{
		Epsilon: EpsilonForDegree(n, d), Seed: 98, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	minDetours := math.MaxInt
	for _, e := range g.Edges() {
		if sp.H.HasEdge(e.U, e.V) {
			continue
		}
		c := CountThreeDetours(sp.H, e.U, e.V)
		if c < minDetours {
			minDetours = c
		}
	}
	if minDetours < 10 {
		t.Fatalf("some removed edge has only %d sampled 3-hop replacements", minDetours)
	}
}

// Lemma 6: with high probability the sampled spanner has distance stretch
// at most 3 — across several independent seeds.
func TestLemma6StretchAcrossSeeds(t *testing.T) {
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, rng.New(99))
	eps := EpsilonForDegree(n, d)
	for seed := uint64(1); seed <= 5; seed++ {
		sp, err := BuildExpander(g, ExpanderOptions{Epsilon: eps, Seed: seed, EnsureConnected: true})
		if err != nil {
			t.Fatal(err)
		}
		rep := VerifyEdgeStretch(g, sp.H, 3)
		if rep.Violations != 0 {
			t.Fatalf("seed %d: %d stretch violations", seed, rep.Violations)
		}
	}
}

// Lemma 7 (first half): the spanner has (1+o(1))·Δ/n^ε expected degree,
// so |E(H)| concentrates at p·|E(G)|.
func TestLemma7SpannerSize(t *testing.T) {
	n, d := 343, 80
	g := gen.MustRandomRegular(n, d, rng.New(100))
	eps := EpsilonForDegree(n, d)
	p := ProbForEpsilon(n, eps)
	sp, err := BuildExpander(g, ExpanderOptions{Epsilon: eps, Seed: 101, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	want := p * float64(g.M())
	got := float64(sp.H.M())
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("|E(H)| = %v, expected ≈ %v", got, want)
	}
	maxDeg := float64(sp.H.MaxDegree())
	if maxDeg > 1.5*p*float64(d) {
		t.Fatalf("max spanner degree %v exceeds (1+o(1))Δp", maxDeg)
	}
}

// Lemma 7 (second half): expected matching congestion 1+o(1); the
// node-congestion profile's mean over touched nodes must be close to 1.
func TestLemma7ExpectedCongestion(t *testing.T) {
	n, d := 343, 80
	g := gen.MustRandomRegular(n, d, rng.New(102))
	sp, err := BuildExpander(g, ExpanderOptions{
		Epsilon: EpsilonForDegree(n, d), Seed: 103, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	used := make([]bool, n)
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	router := sp.Router(104)
	paths, err := router.RouteMatching(m)
	if err != nil {
		t.Fatal(err)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
	prof := rt.NodeCongestionProfile(n)
	sum, cnt := 0, 0
	for _, c := range prof {
		if c > 0 {
			sum += c
			cnt++
		}
	}
	mean := float64(sum) / float64(cnt)
	if mean > 1.6 {
		t.Fatalf("mean matching congestion %v, want 1+o(1)", mean)
	}
}

// Theorem 2 premise check: the generator's graphs really satisfy
// λ ≤ o(n^{1/3+2ε}) — i.e. λ is far below the premise ceiling.
func TestTheorem2PremiseCertified(t *testing.T) {
	n, d := 343, 80
	r := rng.New(105)
	g := gen.MustRandomRegular(n, d, r)
	lam, l1 := spectral.Expansion(g, 300, r)
	if math.Abs(l1-float64(d)) > 0.01 {
		t.Fatalf("λ1 = %v, want %d", l1, d)
	}
	eps := EpsilonForDegree(n, d)
	ceiling := math.Pow(float64(n), 1.0/3.0+2*eps)
	// λ ≈ 2√Δ = 2n^{1/3+ε/2} against the ceiling n^{1/3+2ε}: the ratio
	// decays like 2n^{−3ε/2}, slowly at laptop n — assert strict inequality
	// here and the decay across sizes below.
	if lam >= ceiling {
		t.Fatalf("λ = %v not within premise ceiling %v", lam, ceiling)
	}
	n2, d2 := 512, 96
	g2 := gen.MustRandomRegular(n2, d2, r)
	lam2, _ := spectral.Expansion(g2, 300, r)
	eps2 := EpsilonForDegree(n2, d2)
	ceiling2 := math.Pow(float64(n2), 1.0/3.0+2*eps2)
	_ = lam2
	if lam2 >= ceiling2 {
		t.Fatalf("n=512: λ = %v not within ceiling %v", lam2, ceiling2)
	}
}

// Corollary 1: for Δ' = √Δ and n ≥ Δ ≥ n^{2/3}, |E(H)| = O(λ·n^{5/3}).
// With the practical thresholds λ is a constant; check |E(H)| ≤ c·n^{5/3}.
func TestCorollary1EdgeBound(t *testing.T) {
	for _, sz := range []struct{ n, d int }{{216, 40}, {343, 56}} {
		g := gen.MustRandomRegular(sz.n, sz.d, rng.New(uint64(sz.n)))
		res, err := BuildRegular(g, DefaultRegularOptions(106))
		if err != nil {
			t.Fatal(err)
		}
		bound := 2 * math.Pow(float64(sz.n), 5.0/3.0)
		if float64(res.Spanner.H.M()) > bound {
			t.Fatalf("n=%d: |E(H)| = %d > 2n^{5/3} = %v", sz.n, res.Spanner.H.M(), bound)
		}
	}
}
