package spanner

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
)

func TestExtensionSupportClique(t *testing.T) {
	g := gen.Clique(5)
	// In K5, every z ∈ N(v)∖{u} (3 nodes) has |N(u)∩N(z)| = 3, so the
	// extension is a-supported for a+1 <= 3.
	if b := ExtensionSupport(g, 0, 1, 2); b != 3 {
		t.Fatalf("ExtensionSupport(K5, a=2) = %d, want 3", b)
	}
	if b := ExtensionSupport(g, 0, 1, 3); b != 0 {
		t.Fatalf("ExtensionSupport(K5, a=3) = %d, want 0", b)
	}
}

func TestIsSupportedPath(t *testing.T) {
	g := gen.Path(5)
	// A path has no triangles or 4-cycles: no edge has any supported
	// extension for a >= 1.
	for _, e := range g.Edges() {
		if IsSupported(g, e, 1, 1) {
			t.Fatalf("path edge %v reported supported", e)
		}
	}
}

func TestSupportedEdgesMatchesScalar(t *testing.T) {
	r := rng.New(1)
	g := gen.MustRandomRegular(60, 12, r)
	a, b := 2, 4
	par := SupportedEdges(g, a, b)
	for i, e := range g.Edges() {
		if par[i] != IsSupported(g, e, a, b) {
			t.Fatalf("edge %d: parallel %v != scalar", i, par[i])
		}
	}
}

func TestCountThreeDetoursK4(t *testing.T) {
	g := gen.Clique(4)
	// u=0, v=1; detours 0-2-3-1 and 0-3-2-1.
	if c := CountThreeDetours(g, 0, 1); c != 2 {
		t.Fatalf("K4 3-detours = %d, want 2", c)
	}
}

func TestCountThreeDetoursNoDetour(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	if c := CountThreeDetours(g, 1, 2); c != 0 {
		t.Fatalf("path 3-detours = %d, want 0", c)
	}
}

func TestSampleThreeDetourValidAndUniformish(t *testing.T) {
	g := gen.Clique(6)
	r := rng.New(2)
	counts := make(map[ThreeDetour]int)
	trials := 6000
	for i := 0; i < trials; i++ {
		d, ok := SampleThreeDetour(g, 0, 1, r)
		if !ok {
			t.Fatal("no detour in K6")
		}
		if d.X == 1 || d.Y == 0 || d.X == d.Y {
			t.Fatalf("invalid detour %+v", d)
		}
		if !g.HasEdge(0, d.X) || !g.HasEdge(d.X, d.Y) || !g.HasEdge(d.Y, 1) {
			t.Fatalf("detour %+v uses non-edges", d)
		}
		counts[d]++
	}
	// K6: x ∈ {2,3,4,5}, y ∈ {2,3,4,5}∖{x}: 12 detours, uniform ⇒ 500 each.
	if len(counts) != 12 {
		t.Fatalf("saw %d distinct detours, want 12", len(counts))
	}
	for d, c := range counts {
		if c < 350 || c > 650 {
			t.Fatalf("detour %+v count %d far from uniform 500", d, c)
		}
	}
}

func TestSampleThreeDetourNone(t *testing.T) {
	g := gen.Path(6)
	if _, ok := SampleThreeDetour(g, 2, 3, rng.New(3)); ok {
		t.Fatal("found detour on a path")
	}
}

func TestNeighborhoodMatchingClique(t *testing.T) {
	g := gen.Clique(6)
	m := NeighborhoodMatching(g, 0, 1)
	// N(0) = {1,2,3,4,5}, N(1) = {0,2,3,4,5}: the six participating
	// vertices admit a perfect node-disjoint matching of size 3.
	if len(m) != 3 {
		t.Fatalf("matching size %d, want 3", len(m))
	}
	used := make(map[int32]bool)
	for _, e := range m {
		if used[e.U] || used[e.V] {
			t.Fatal("matching reuses a vertex")
		}
		used[e.U] = true
		used[e.V] = true
		if !g.HasEdge(e.U, e.V) {
			t.Fatal("matching uses a non-edge")
		}
	}
}

func TestNeighborhoodMatchingLemma4Bound(t *testing.T) {
	// On a good expander the neighborhood matching should be large:
	// Lemma 4 promises Δ(1 − λn/Δ²) — only meaningful when Δ² > λn, i.e.
	// for dense expanders. Use a dense random regular graph.
	r := rng.New(4)
	n, d := 120, 60
	g := gen.MustRandomRegular(n, d, r)
	m := NeighborhoodMatching(g, 0, 1)
	// With Δ = n/2 the bound is positive and large; empirically the
	// matching should cover most of the neighborhood.
	if len(m) < d/2 {
		t.Fatalf("neighborhood matching only %d of Δ=%d", len(m), d)
	}
}

func TestBuildExpanderShape(t *testing.T) {
	r := rng.New(5)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	eps := EpsilonForDegree(n, d)
	if eps <= 0 {
		t.Fatalf("degree %d below n^{2/3}", d)
	}
	sp, err := BuildExpander(g, ExpanderOptions{Epsilon: eps, Seed: 7, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	p := math.Pow(float64(n), -eps)
	want := p * float64(g.M())
	got := float64(sp.H.M())
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("|E(H)| = %v, expected ≈ %v", got, want)
	}
}

func TestBuildExpanderStretch3(t *testing.T) {
	r := rng.New(6)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	sp, err := BuildExpander(g, ExpanderOptions{Epsilon: EpsilonForDegree(n, d), Seed: 11, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyEdgeStretch(g, sp.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("%d/%d edges exceed stretch 3 (max %v)", rep.Violations, rep.Checked, rep.MaxStretch)
	}
}

func TestExpanderRouterMatchingCongestion(t *testing.T) {
	r := rng.New(7)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	sp, err := BuildExpander(g, ExpanderOptions{Epsilon: EpsilonForDegree(n, d), Seed: 13, EnsureConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	// Matching routing problem over edges of G (the worst case for the
	// spanner: removed edges must detour).
	var m []graph.Edge
	used := make(map[int32]bool)
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	router := sp.Router(17)
	paths, err := router.RouteMatching(m)
	if err != nil {
		t.Fatal(err)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
	if err := rt.Validate(sp.H); err != nil {
		t.Fatal(err)
	}
	c := rt.NodeCongestion(n)
	// Theorem 2: expected congestion 1+o(1), overall O(log n). Allow a
	// generous constant: 6·log2(216) ≈ 46.
	limit := int(6 * math.Log2(float64(n)))
	if c > limit {
		t.Fatalf("matching congestion %d > %d", c, limit)
	}
	if router.Fallbacks > len(m)/10 {
		t.Fatalf("too many router fallbacks: %d of %d", router.Fallbacks, len(m))
	}
}

func TestBuildRegularInvariants(t *testing.T) {
	r := rng.New(8)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	res, err := BuildRegular(g, DefaultRegularOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Spanner
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.GPrime.IsSubgraphOf(sp.H) {
		t.Fatal("G' not contained in H")
	}
	if res.DeltaPrime != int(math.Sqrt(float64(d))) {
		t.Fatalf("Δ' = %d", res.DeltaPrime)
	}
	// Accounting: H = E' ∪ E'' ∪ reinserted-without-detour; since the three
	// sets can overlap only as specified, check via direct membership.
	if sp.H.M() > g.M() {
		t.Fatal("spanner larger than base")
	}
}

func TestBuildRegularStretch3Deterministic(t *testing.T) {
	r := rng.New(9)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	res, err := BuildRegular(g, DefaultRegularOptions(29))
	if err != nil {
		t.Fatal(err)
	}
	// With EnsureDetour, every edge of G has a ≤3-hop substitute in H.
	rep := VerifyEdgeStretch(g, res.Spanner.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("%d violations, max stretch %v", rep.Violations, rep.MaxStretch)
	}
}

func TestBuildRegularMatchingCongestionLemma17(t *testing.T) {
	r := rng.New(10)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	res, err := BuildRegular(g, DefaultRegularOptions(31))
	if err != nil {
		t.Fatal(err)
	}
	prob := routing.RandomMatchingProblem(n, n/4, r)
	var edges []graph.Edge
	for _, p := range prob {
		// Route arbitrary matching pairs that are edges of G if possible;
		// otherwise skip (Lemma 17 concerns matchings that are edge sets).
		if g.HasEdge(p.Src, p.Dst) {
			edges = append(edges, graph.Edge{U: p.Src, V: p.Dst}.Normalize())
		}
	}
	// Ensure decent sample: add greedy matching edges from G.
	used := make(map[int32]bool)
	for _, e := range edges {
		used[e.U] = true
		used[e.V] = true
	}
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			edges = append(edges, e)
		}
	}
	router := res.Spanner.Router(37)
	paths, err := router.RouteMatching(edges)
	if err != nil {
		t.Fatal(err)
	}
	rt := &routing.Routing{Problem: routing.MatchingProblem(edges), Paths: paths}
	if err := rt.Validate(res.Spanner.H); err != nil {
		t.Fatal(err)
	}
	c := rt.NodeCongestion(n)
	// Lemma 17: C ≤ 1 + 2Δ' w.h.p. Allow 2× slack for the small-n regime.
	limit := 2 * (1 + 2*res.DeltaPrime)
	if c > limit {
		t.Fatalf("matching congestion %d > %d (Δ'=%d)", c, limit, res.DeltaPrime)
	}
}

func TestBuildRegularEdgeCases(t *testing.T) {
	if _, err := BuildRegular(graph.NewBuilder(0).MustBuild(), DefaultRegularOptions(1)); err == nil {
		t.Fatal("accepted empty graph")
	}
	if _, err := BuildRegular(graph.NewBuilder(3).MustBuild(), DefaultRegularOptions(1)); err == nil {
		t.Fatal("accepted edgeless graph")
	}
}

func TestBaswanaSenStretch(t *testing.T) {
	r := rng.New(11)
	g := gen.MustRandomRegular(150, 20, r)
	for _, k := range []int{2, 3} {
		sp, err := BaswanaSen(g, k, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
		alpha := 2*k - 1
		rep := VerifyEdgeStretch(g, sp.H, alpha)
		if rep.Violations != 0 {
			t.Fatalf("k=%d: %d violations, max %v", k, rep.Violations, rep.MaxStretch)
		}
	}
}

func TestBaswanaSenSparsifies(t *testing.T) {
	r := rng.New(12)
	g := gen.Clique(100) // densest case
	sp, err := BaswanaSen(g, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	// 3-spanner of K100 should have ≪ 4950 edges (expected O(n^{1.5})).
	if sp.H.M() >= g.M()/2 {
		t.Fatalf("Baswana-Sen kept %d of %d edges", sp.H.M(), g.M())
	}
}

func TestBaswanaSenK1IsIdentity(t *testing.T) {
	g := gen.Cycle(10)
	sp, err := BaswanaSen(g, 1, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if sp.H.M() != g.M() {
		t.Fatal("k=1 spanner dropped edges")
	}
}

func TestGreedySpanner(t *testing.T) {
	g := gen.Clique(60)
	sp := Greedy(g, 3)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := VerifyEdgeStretch(g, sp.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("greedy violated stretch: max %v", rep.MaxStretch)
	}
	// Greedy 3-spanner of K_n has O(n^{3/2}) edges; for n=60 that is far
	// below 1770.
	if sp.H.M() > 60*8 {
		t.Fatalf("greedy kept %d edges", sp.H.M())
	}
}

func TestGreedyKeepsTreeWhenAlphaHuge(t *testing.T) {
	g := gen.Clique(20)
	sp := Greedy(g, 100)
	// With a huge stretch budget the greedy spanner is a spanning forest.
	if sp.H.M() != 19 {
		t.Fatalf("huge-alpha greedy kept %d edges, want 19", sp.H.M())
	}
	if !sp.H.Connected() {
		t.Fatal("greedy output disconnected")
	}
}

func TestSparsifyUniform(t *testing.T) {
	r := rng.New(14)
	n, d := 300, 40
	g := gen.MustRandomRegular(n, d, r)
	sp, err := SparsifyUniform(g, 3.0, 41)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.H.Connected() {
		t.Fatal("sparsifier disconnected")
	}
	// Expected edges ≈ c·ln n·n/2 ≈ 3·5.7·150 ≈ 2566; base has 6000.
	if sp.H.M() >= g.M() {
		t.Fatal("sparsifier did not sparsify")
	}
}

func TestExtractBoundedDegree(t *testing.T) {
	r := rng.New(15)
	n := 100
	g, err := gen.DenseExpander(n, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ExtractBoundedDegree(g, 4, 43)
	if err != nil {
		t.Fatal(err)
	}
	if sp.H.MaxDegree() > 8 {
		t.Fatalf("max degree %d > 2d = 8", sp.H.MaxDegree())
	}
	if !sp.H.Connected() {
		t.Fatal("extraction disconnected")
	}
	if sp.H.M() > n*4 {
		t.Fatalf("extraction kept %d edges > n·d", sp.H.M())
	}
}

func TestVerifyEdgeStretchIdentity(t *testing.T) {
	g := gen.Cycle(20)
	rep := VerifyEdgeStretch(g, g, 1)
	if rep.Violations != 0 || rep.MaxStretch != 1 {
		t.Fatalf("identity stretch report: %+v", rep)
	}
}

func TestVerifyEdgeStretchDetectsViolation(t *testing.T) {
	g := gen.Cycle(20)
	// Remove one edge: its endpoints are now 19 apart.
	h := g.FilterEdges(func(e graph.Edge) bool { return !(e.U == 0 && e.V == 1) })
	rep := VerifyEdgeStretch(g, h, 3)
	if rep.Violations != 1 {
		t.Fatalf("violations = %d, want 1", rep.Violations)
	}
	if rep.MaxStretch != 19 {
		t.Fatalf("max stretch = %v, want 19", rep.MaxStretch)
	}
}

func TestVerifyPairStretch(t *testing.T) {
	r := rng.New(16)
	g := gen.MustRandomRegular(100, 8, r)
	rep := VerifyPairStretch(g, g, 200, r)
	if rep.MaxStretch != 1 {
		t.Fatalf("identity pair stretch %v", rep.MaxStretch)
	}
}

// Property: the DetourRouter always produces valid paths in H with the
// right endpoints, for arbitrary spanners of random regular graphs.
func TestPropertyRouterValidity(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 40 + 2*r.Intn(40)
		g := gen.MustRandomRegular(n, 10, r)
		var h *graph.Graph
		for {
			h = g.FilterEdges(func(graph.Edge) bool { return r.Bernoulli(0.5) })
			if h.Connected() {
				break
			}
		}
		sp := &Spanner{Base: g, H: h, Primary: h, Algorithm: "test"}
		router := sp.Router(seed)
		var m []graph.Edge
		used := make(map[int32]bool)
		for _, e := range g.Edges() {
			if !used[e.U] && !used[e.V] {
				used[e.U] = true
				used[e.V] = true
				m = append(m, e)
			}
		}
		paths, err := router.RouteMatching(m)
		if err != nil {
			return false
		}
		for i, p := range paths {
			if !p.Valid(h, m[i].U, m[i].V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: BuildRegular with EnsureDetour is always a 3-distance spanner.
func TestPropertyRegularAlwaysStretch3(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 60 + 2*r.Intn(40)
		d := n / 3
		if (n*d)%2 != 0 {
			d++
		}
		g := gen.MustRandomRegular(n, d, r)
		res, err := BuildRegular(g, DefaultRegularOptions(seed))
		if err != nil {
			return false
		}
		rep := VerifyEdgeStretch(g, res.Spanner.H, 3)
		return rep.Violations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSupportedEdges(b *testing.B) {
	r := rng.New(17)
	g := gen.MustRandomRegular(300, 40, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SupportedEdges(g, 3, 10)
	}
}

func BenchmarkBuildRegular(b *testing.B) {
	r := rng.New(18)
	g := gen.MustRandomRegular(216, 60, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRegular(g, DefaultRegularOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleThreeDetour(b *testing.B) {
	r := rng.New(19)
	g := gen.MustRandomRegular(300, 30, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleThreeDetour(g, int32(i%300), int32((i+7)%300), r)
	}
}

func TestGreedySpannerGirth(t *testing.T) {
	// The greedy α-spanner never keeps an edge whose endpoints are within
	// α in the current spanner, so its girth exceeds α+1 — the structural
	// fact behind the Erdős-girth-conjecture size lower bounds the paper's
	// related work cites.
	g := gen.Clique(40)
	sp := Greedy(g, 3)
	girth := sp.H.Girth()
	if girth != graph.Unreachable && girth <= 4 {
		t.Fatalf("greedy 3-spanner girth %d, want > 4", girth)
	}
}
