package spanner

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
)

// The README and DESIGN.md promise that sampling results are identical
// regardless of GOMAXPROCS (chunked per-stream randomness). Pin it.
func TestSamplingDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.MustRandomRegular(300, 20, rng.New(7))
	build := func() *Spanner {
		sp, err := BuildExpander(g, ExpanderOptions{SampleProb: 0.4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	old := runtime.GOMAXPROCS(1)
	a := build()
	runtime.GOMAXPROCS(8)
	b := build()
	runtime.GOMAXPROCS(old)

	if a.H.M() != b.H.M() {
		t.Fatalf("edge counts differ across GOMAXPROCS: %d vs %d", a.H.M(), b.H.M())
	}
	for i, e := range a.H.Edges() {
		if b.H.Edges()[i] != e {
			t.Fatalf("edge %d differs across GOMAXPROCS", i)
		}
	}
}

// BuildRegular end-to-end determinism: same seed, different worker counts.
func TestRegularDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.MustRandomRegular(216, 40, rng.New(8))
	build := func() *RegularResult {
		res, err := BuildRegular(g, DefaultRegularOptions(123))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(1)
	a := build()
	runtime.GOMAXPROCS(4)
	b := build()
	runtime.GOMAXPROCS(old)
	if a.Spanner.H.M() != b.Spanner.H.M() || !a.Spanner.H.IsSubgraphOf(b.Spanner.H) {
		t.Fatalf("Algorithm 1 output differs across GOMAXPROCS: %d vs %d edges",
			a.Spanner.H.M(), b.Spanner.H.M())
	}
	if a.ReinsertedNoDetour != b.ReinsertedNoDetour {
		t.Fatalf("reinsertion accounting differs: %d vs %d",
			a.ReinsertedNoDetour, b.ReinsertedNoDetour)
	}
}
