package spanner

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The README and DESIGN.md promise that sampling results are identical
// regardless of GOMAXPROCS (chunked per-stream randomness). Pin it.
func TestSamplingDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.MustRandomRegular(300, 20, rng.New(7))
	build := func() *Spanner {
		sp, err := BuildExpander(g, ExpanderOptions{SampleProb: 0.4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	old := runtime.GOMAXPROCS(1)
	a := build()
	runtime.GOMAXPROCS(8)
	b := build()
	runtime.GOMAXPROCS(old)

	if a.H.M() != b.H.M() {
		t.Fatalf("edge counts differ across GOMAXPROCS: %d vs %d", a.H.M(), b.H.M())
	}
	for i, e := range a.H.Edges() {
		if b.H.Edges()[i] != e {
			t.Fatalf("edge %d differs across GOMAXPROCS", i)
		}
	}
}

// BuildRegular end-to-end determinism: same seed, different worker counts.
func TestRegularDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.MustRandomRegular(216, 40, rng.New(8))
	build := func() *RegularResult {
		res, err := BuildRegular(g, DefaultRegularOptions(123))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	old := runtime.GOMAXPROCS(1)
	a := build()
	runtime.GOMAXPROCS(4)
	b := build()
	runtime.GOMAXPROCS(old)
	if a.Spanner.H.M() != b.Spanner.H.M() || !a.Spanner.H.IsSubgraphOf(b.Spanner.H) {
		t.Fatalf("Algorithm 1 output differs across GOMAXPROCS: %d vs %d edges",
			a.Spanner.H.M(), b.Spanner.H.M())
	}
	if a.ReinsertedNoDetour != b.ReinsertedNoDetour {
		t.Fatalf("reinsertion accounting differs: %d vs %d",
			a.ReinsertedNoDetour, b.ReinsertedNoDetour)
	}
}

// The verification kernels promise byte-identical reports for every
// Workers value (ISSUE 4's determinism contract, DESIGN.md §9): the pair
// sample is drawn serially without replacement before the sweep, and each
// sweep unit writes only its own slot. Pin it on both graph families the
// Table 1 measurements use: random regular graphs and (dense) expanders.
func TestVerifyKernelsDeterministicAcrossWorkerCounts(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"random-regular", gen.MustRandomRegular(300, 24, rng.New(17))},
	}
	if exp, err := gen.DenseExpander(128, 0.5, rng.New(18)); err == nil {
		families = append(families, struct {
			name string
			g    *graph.Graph
		}{"dense-expander", exp})
	} else {
		t.Fatalf("DenseExpander: %v", err)
	}
	for _, fam := range families {
		h := Greedy(fam.g, 3)
		edgeBase := VerifyEdgeStretchOpts(fam.g, h.H, 3, VerifyOptions{Workers: 1})
		pairBase := VerifyPairStretchOpts(fam.g, h.H, 200, rng.New(99), VerifyOptions{Workers: 1})
		for _, workers := range []int{0, 2, 4, 13} {
			if got := VerifyEdgeStretchOpts(fam.g, h.H, 3, VerifyOptions{Workers: workers}); got != edgeBase {
				t.Errorf("%s: edge-stretch report differs at workers=%d: %+v vs %+v",
					fam.name, workers, got, edgeBase)
			}
			if got := VerifyPairStretchOpts(fam.g, h.H, 200, rng.New(99), VerifyOptions{Workers: workers}); got != pairBase {
				t.Errorf("%s: pair-stretch report differs at workers=%d: %+v vs %+v",
					fam.name, workers, got, pairBase)
			}
		}
	}
}

// The pair sample must be drawn without replacement: requesting more pairs
// than C(n,2) clamps to the full pair space, and Checked reports the
// distinct pairs actually measured.
func TestVerifyPairStretchSampleClampsToPairSpace(t *testing.T) {
	g := gen.MustRandomRegular(12, 4, rng.New(3))
	h := Greedy(g, 3)
	rep := VerifyPairStretchOpts(g, h.H, 1000, rng.New(5), VerifyOptions{Workers: 2})
	if want := 12 * 11 / 2; rep.Checked != want {
		t.Fatalf("Checked = %d, want clamp to C(12,2) = %d", rep.Checked, want)
	}
}
