package spanner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/rng"
)

// ExpanderOptions configures the Theorem 2 construction.
type ExpanderOptions struct {
	// Epsilon is the sampling exponent: each edge of G is kept
	// independently with probability n^{−Epsilon}. Theorem 2's premise is
	// an n^{2/3+ε}-regular expander; with that degree the spanner has
	// expected degree n^{2/3} and O(n^{5/3}) edges.
	Epsilon float64
	// SampleProb, if positive, overrides the probability directly (useful
	// for sweeps).
	SampleProb float64
	// Seed drives the edge sampling.
	Seed uint64
	// EnsureConnected retries the sampling (with evolving randomness)
	// until H is connected, up to 16 attempts. The theorem guarantees
	// connectivity w.h.p. for the stated parameter regime; for small-n
	// experiments the retry keeps the harness robust.
	EnsureConnected bool
	// Trace, when non-nil, receives the construction's phase spans
	// (sampling, connectivity checks) as children.
	Trace *obs.Span
}

// EpsilonForDegree returns the ε for which a Δ-regular n-vertex graph
// matches the Theorem 2 premise Δ = n^{2/3+ε}.
func EpsilonForDegree(n, delta int) float64 {
	return math.Log(float64(delta))/math.Log(float64(n)) - 2.0/3.0
}

// ProbForEpsilon returns the Theorem 2 sampling probability n^{−ε}.
func ProbForEpsilon(n int, eps float64) float64 {
	p := math.Pow(float64(n), -eps)
	if p > 1 {
		return 1
	}
	return p
}

// BuildExpander runs the Theorem 2 construction: independently keep every
// edge with probability p = n^{−ε} (or SampleProb). The returned spanner
// routes removed matching edges over uniformly random 3-hop paths, which
// is exactly the theorem's replacement-path rule; with the premise's
// expansion those paths cross the neighborhood matchings M_{u,v}^S of
// Lemma 4 in aggregate.
func BuildExpander(g *graph.Graph, opts ExpanderOptions) (*Spanner, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("spanner: empty graph")
	}
	p := opts.SampleProb
	if p <= 0 {
		if opts.Epsilon <= 0 {
			return nil, fmt.Errorf("spanner: BuildExpander needs Epsilon > 0 or SampleProb > 0")
		}
		p = math.Pow(float64(n), -opts.Epsilon)
	}
	if p > 1 {
		p = 1
	}
	r := rng.New(opts.Seed)
	attempts := 1
	if opts.EnsureConnected {
		attempts = 16
	}
	esp := opts.Trace.Start("expander")
	defer esp.End()
	esp.SetKV("p", fmt.Sprintf("%.4g", p))
	var h *graph.Graph
	for try := 0; try < attempts; try++ {
		ssp := esp.Start("sample-edges")
		ssp.SetKV("attempt", try+1)
		h = sampleEdges(g, p, r)
		ssp.SetKV("kept", h.M())
		ssp.End()
		csp := esp.Start("connectivity-check")
		ok := !opts.EnsureConnected || h.Connected()
		csp.End()
		if ok {
			esp.SetKV("attempts", try+1)
			return &Spanner{Base: g, H: h, Primary: h, Algorithm: "theorem2-expander"}, nil
		}
	}
	return nil, fmt.Errorf("spanner: sampled subgraph disconnected after %d attempts (p=%v)", attempts, p)
}

// sampleEdges keeps each edge independently with probability p. The
// per-edge coin flips come from per-chunk child streams split off the
// parent so the sample is deterministic in (seed) yet the sweep is
// parallel.
func sampleEdges(g *graph.Graph, p float64, r *rng.RNG) *graph.Graph {
	m := g.M()
	keep := make([]bool, m)
	// Chunked determinism: fixed chunk size decouples the result from
	// GOMAXPROCS.
	const chunk = 4096
	numChunks := (m + chunk - 1) / chunk
	streams := make([]*rng.RNG, numChunks)
	for i := range streams {
		streams[i] = r.Split()
	}
	graph.ParallelRange(numChunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			cr := streams[c]
			start := c * chunk
			end := start + chunk
			if end > m {
				end = m
			}
			for i := start; i < end; i++ {
				keep[i] = cr.Bernoulli(p)
			}
		}
	})
	idx := 0
	return g.FilterEdges(func(e graph.Edge) bool {
		k := keep[idx]
		idx++
		return k
	})
}

// NeighborhoodMatchingReport describes the Lemma 4 / Figure 2 measurement
// for one vertex pair.
type NeighborhoodMatchingReport struct {
	U, V         int32
	MatchingSize int // maximum bipartite matching between N(u) and N(v)
	Lemma4Bound  float64
}

// NeighborhoodMatching computes a maximum matching between N(u) and N(v)
// using edges of g — Lemma 4's M between N_u and N_v (Figure 2). The
// returned edges are node-disjoint edges of g with one endpoint playing
// the N_u role and the other the N_v role. Following the lemma statement,
// the full neighborhoods participate (v itself may sit in N_u).
//
// When N(u) ∩ N(v) ≠ ∅ the problem is NOT bipartite (two shared neighbors
// may be matched to each other, one playing the N_u role and the other
// the N_v role), so this uses Edmonds' blossom algorithm on the induced
// allowed-edge graph rather than Hopcroft–Karp.
func NeighborhoodMatching(g *graph.Graph, u, v int32) []graph.Edge {
	inU := make(map[int32]bool)
	inV := make(map[int32]bool)
	localID := make(map[int32]int32)
	var verts []int32
	add := func(x int32) {
		if _, ok := localID[x]; !ok {
			localID[x] = int32(len(verts))
			verts = append(verts, x)
		}
	}
	for _, x := range g.Neighbors(u) {
		inU[x] = true
		add(x)
	}
	for _, y := range g.Neighbors(v) {
		inV[y] = true
		add(y)
	}
	gg := matching.NewGeneralGraph(len(verts))
	for _, x := range verts {
		for _, y := range g.Neighbors(x) {
			if y <= x { // add each edge once
				continue
			}
			if _, ok := localID[y]; !ok {
				continue
			}
			if (inU[x] && inV[y]) || (inV[x] && inU[y]) {
				gg.AddEdge(localID[x], localID[y])
			}
		}
	}
	match, _ := matching.Blossom(gg)
	var out []graph.Edge
	for a := int32(0); a < int32(len(verts)); a++ {
		b := match[a]
		if b > a {
			out = append(out, graph.Edge{U: verts[a], V: verts[b]}.Normalize())
		}
	}
	return out
}

// NeighborhoodMatchingBipartite computes the maximum matching between
// N(u) and N(v) in the bipartite double cover: each side is a full copy
// of the neighborhood, and a vertex in N(u) ∩ N(v) may be used once per
// side. This is the combinatorial quantity Lemma 4's mixing-lemma
// argument bounds (e(M̄_u, M̄_v) = 0 by maximality); the node-disjoint
// variant (NeighborhoodMatching) can be up to the overlap smaller.
func NeighborhoodMatchingBipartite(g *graph.Graph, u, v int32) int {
	left := g.Neighbors(u)
	right := g.Neighbors(v)
	rightIdx := make(map[int32]int32, len(right))
	for i, y := range right {
		rightIdx[y] = int32(i)
	}
	b := &matching.Bipartite{L: len(left), R: len(right), Adj: make([][]int32, len(left))}
	for li, x := range left {
		for _, y := range g.Neighbors(x) {
			if ri, ok := rightIdx[y]; ok && y != x {
				b.Adj[li] = append(b.Adj[li], ri)
			}
		}
	}
	_, size := matching.HopcroftKarp(b)
	return size
}

// Lemma4Bound returns Δ(1 − λn/Δ²), the matching-size lower bound of
// Lemma 4 for a Δ-regular graph with spectral expansion λ.
func Lemma4Bound(n, delta int, lambda float64) float64 {
	d := float64(delta)
	return d * (1 - lambda*float64(n)/(d*d))
}
