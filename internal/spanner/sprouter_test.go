package spanner

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestSPRouterRoutesShortest(t *testing.T) {
	r := rng.New(1)
	g := gen.MustRandomRegular(80, 8, r)
	var h *graph.Graph
	for {
		h = g.FilterEdges(func(graph.Edge) bool { return r.Bernoulli(0.5) })
		if h.Connected() {
			break
		}
	}
	router := NewSPRouter(h, 2)
	var m []graph.Edge
	used := make(map[int32]bool)
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	paths, err := router.RouteMatching(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		if !p.Valid(h, m[i].U, m[i].V) {
			t.Fatalf("path %d invalid: %v", i, p)
		}
		if int32(p.Len()) != h.Dist(m[i].U, m[i].V) {
			t.Fatalf("path %d not shortest", i)
		}
	}
}

func TestSPRouterMaxLen(t *testing.T) {
	g := gen.Cycle(12)
	h := g.FilterEdges(func(e graph.Edge) bool { return !(e.U == 0 && e.V == 1) })
	router := NewSPRouter(h, 3)
	router.MaxLen = 3
	if _, err := router.RouteMatching([]graph.Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("11-hop detour accepted under MaxLen=3")
	}
	router2 := NewSPRouter(h, 3)
	paths, err := router2.RouteMatching([]graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].Len() != 11 {
		t.Fatalf("detour length %d, want 11", paths[0].Len())
	}
}

func TestSPRouterDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	h := b.MustBuild()
	router := NewSPRouter(h, 4)
	if _, err := router.RouteMatching([]graph.Edge{{U: 0, V: 3}}); err == nil {
		t.Fatal("accepted disconnected pair")
	}
}

func TestBuildExpanderK(t *testing.T) {
	r := rng.New(5)
	g := gen.MustRandomRegular(216, 60, r)
	sp, err := BuildExpanderK(g, 0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sp.H.Connected() {
		t.Fatal("disconnected output")
	}
	ratio := sp.EdgeRatio()
	if ratio < 0.12 || ratio > 0.28 {
		t.Fatalf("edge ratio %v far from p=0.2", ratio)
	}
	if _, err := BuildExpanderK(g, 0, 1); err == nil {
		t.Fatal("accepted p=0")
	}
	if _, err := BuildExpanderK(g, 1.5, 1); err == nil {
		t.Fatal("accepted p>1")
	}
}

func TestSPRouterSpreadsAcrossEquivalentPaths(t *testing.T) {
	// Diamond-rich graph: complete bipartite K_{2,8} gives many 2-hop
	// paths between the two left vertices; the router should not always
	// pick the same middle.
	g := gen.CompleteBipartite(2, 8)
	router := NewSPRouter(g, 7)
	middles := make(map[int32]bool)
	for i := 0; i < 200; i++ {
		paths, err := router.RouteMatching([]graph.Edge{{U: 0, V: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if len(paths[0]) != 3 {
			t.Fatalf("expected 2-hop path, got %v", paths[0])
		}
		middles[paths[0][1]] = true
	}
	if len(middles) < 6 {
		t.Fatalf("router used only %d of 8 middles", len(middles))
	}
}
