package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Lemma2Instance is the separation construction from Lemma 2 of the paper:
// a graph G whose spanner H is simultaneously a 3-distance spanner and a
// 2-congestion spanner, yet is NOT a (3, β)-DC-spanner for any
// β < |V(G)|/(2(α−1)), witnessed by the perfect-matching routing problem.
type Lemma2Instance struct {
	G     *graph.Graph
	H     *graph.Graph // G minus all matching edges except (a_1, b_1)
	Alpha int          // the distance-stretch parameter used for the D_i path lengths
	N     int          // |A| = |B|

	A []int32   // a_1..a_n (clique)
	B []int32   // b_1..b_n (clique)
	D [][]int32 // D_i = the α interior detour nodes of instance i
}

// MatchingProblem returns the routing problem R = {(a_i, b_i)} whose
// optimal congestion in G is 1 but which forces congestion n in H.
func (l *Lemma2Instance) MatchingProblem() [][2]int32 {
	pairs := make([][2]int32, l.N)
	for i := 0; i < l.N; i++ {
		pairs[i] = [2]int32{l.A[i], l.B[i]}
	}
	return pairs
}

// Lemma2Graph builds the Lemma 2 instance with |A| = |B| = n and detour
// sets D_i of size alpha (alpha >= 3), so each private detour
// a_i–d_{i,1}–…–d_{i,alpha}–b_i has length alpha+1.
//
// Note on the paper: the text defines |D_i| = α−1 (detour length α) but
// its own congestion argument calls the detour "(α+1)-length" and needs
// it to exceed the α-stretch budget — with length exactly α the matching
// routing could use the private detours and the separation would vanish.
// We implement the (α+1)-length variant, which makes every step of the
// Lemma 2 proof go through.
//
// Layout: a_i = i, b_i = n+i, d_{i,j} = 2n + i·alpha + j.
func Lemma2Graph(n, alpha int) *Lemma2Instance {
	if n < 2 || alpha < 3 {
		panic(fmt.Sprintf("gen: Lemma2Graph needs n >= 2, alpha >= 3; got n=%d alpha=%d", n, alpha))
	}
	inner := alpha
	total := 2*n + n*inner
	b := graph.NewBuilder(total)
	inst := &Lemma2Instance{Alpha: alpha, N: n}
	inst.A = make([]int32, n)
	inst.B = make([]int32, n)
	inst.D = make([][]int32, n)
	for i := 0; i < n; i++ {
		inst.A[i] = int32(i)
		inst.B[i] = int32(n + i)
		row := make([]int32, inner)
		for j := 0; j < inner; j++ {
			row[j] = int32(2*n + i*inner + j)
		}
		inst.D[i] = row
	}
	// Cliques on A and on B.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(inst.A[i], inst.A[j])
			b.AddEdge(inst.B[i], inst.B[j])
		}
	}
	// Perfect matching M between A and B.
	for i := 0; i < n; i++ {
		b.AddEdge(inst.A[i], inst.B[i])
	}
	// Detour paths a_i – d_{i,1} – … – d_{i,alpha−1} – b_i.
	for i := 0; i < n; i++ {
		prev := inst.A[i]
		for _, d := range inst.D[i] {
			b.AddEdge(prev, d)
			prev = d
		}
		b.AddEdge(prev, inst.B[i])
	}
	inst.G = b.MustBuild()
	// H removes every matching edge except (a_1, b_1).
	a1, b1 := inst.A[0], inst.B[0]
	inst.H = inst.G.FilterEdges(func(e graph.Edge) bool {
		if e.U == a1 && e.V == b1 {
			return true
		}
		// Matching edges are exactly (i, n+i) for i in [0, n).
		return !(int(e.U) < n && int(e.V) == int(e.U)+n)
	})
	return inst
}

// CliqueMatchingGraph is the Figure 1 graph: two cliques C_A and C_B of
// size n/2 each, inter-connected by a perfect matching. n must be even and
// at least 4. Clique A is {0..n/2−1}, clique B is {n/2..n−1}, and the
// matching pairs i with n/2+i.
func CliqueMatchingGraph(n int) *graph.Graph {
	if n < 4 || n%2 != 0 {
		panic(fmt.Sprintf("gen: CliqueMatchingGraph needs even n >= 4, got %d", n))
	}
	half := n / 2
	b := graph.NewBuilder(n)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			b.AddEdge(int32(i), int32(j))
			b.AddEdge(int32(half+i), int32(half+j))
		}
	}
	for i := 0; i < half; i++ {
		b.AddEdge(int32(i), int32(half+i))
	}
	return b.MustBuild()
}

// FanInstance is the Lemma 18 building-block graph: 2k+1 "line" nodes
// a_1..a_{2k+1} connected in a path, plus a special node s joined by "ray"
// edges to every odd-indexed line node. |V| = 2k+2, |E| = 3k+1.
type FanInstance struct {
	G    *graph.Graph
	K    int
	S    int32   // the special node
	Line []int32 // a_1..a_{2k+1} in line order (indices 0..2k)
}

// Rays returns the k+1 ray edges r_0..r_k, where r_i = (s, a_{2i+1}).
func (f *FanInstance) Rays() []graph.Edge {
	rays := make([]graph.Edge, 0, f.K+1)
	for i := 0; i <= f.K; i++ {
		rays = append(rays, graph.Edge{U: f.S, V: f.Line[2*i]}.Normalize())
	}
	return rays
}

// LineEdges returns the 2k line edges (a_i, a_{i+1}).
func (f *FanInstance) LineEdges() []graph.Edge {
	out := make([]graph.Edge, 0, 2*f.K)
	for i := 0; i+1 < len(f.Line); i++ {
		out = append(out, graph.Edge{U: f.Line[i], V: f.Line[i+1]}.Normalize())
	}
	return out
}

// FaceLineEdges returns, for face f_j (1-indexed j in [1, k]), its two
// consecutive line edges between rays r_{j−1} and r_j.
func (f *FanInstance) FaceLineEdges(j int) [2]graph.Edge {
	if j < 1 || j > f.K {
		panic("gen: face index out of range")
	}
	lo := 2 * (j - 1)
	return [2]graph.Edge{
		{U: f.Line[lo], V: f.Line[lo+1]},
		{U: f.Line[lo+1], V: f.Line[lo+2]},
	}
}

// FanGraph builds the Lemma 18 fan with parameter k >= 1. Line node a_i
// (1-indexed) is vertex i−1; the special node s is vertex 2k+1.
func FanGraph(k int) *FanInstance {
	if k < 1 {
		panic("gen: FanGraph needs k >= 1")
	}
	nLine := 2*k + 1
	s := int32(nLine)
	b := graph.NewBuilder(nLine + 1)
	inst := &FanInstance{K: k, S: s, Line: make([]int32, nLine)}
	for i := 0; i < nLine; i++ {
		inst.Line[i] = int32(i)
	}
	for i := 0; i+1 < nLine; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i <= k; i++ {
		b.AddEdge(s, int32(2*i))
	}
	inst.G = b.MustBuild()
	return inst
}

// fanOn builds a Lemma 18 fan whose line nodes are the given global ids
// (in order) and whose special node is s, adding edges into bld.
func fanOn(bld *graph.Builder, s int32, line []int32) {
	for i := 0; i+1 < len(line); i++ {
		bld.AddEdge(line[i], line[i+1])
	}
	for i := 0; i < len(line); i += 2 {
		bld.AddEdge(s, line[i])
	}
}
