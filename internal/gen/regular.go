package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RandomRegular samples a random d-regular simple graph on n vertices via
// the configuration model (uniform pairing of half-edges) followed by
// local edge-swap repair of self-loops and multi-edges.
//
// Random regular graphs are near-Ramanujan w.h.p. (λ = O(√d)), so the
// experiment harness uses them as the Theorem 2 / Theorem 3 input family
// and certifies λ with internal/spectral at runtime rather than trusting
// the asymptotic statement.
//
// n·d must be even and d < n. The repair loop always terminates for the
// parameter ranges used here; a hard retry bound guards pathological cases
// by resampling the pairing from scratch.
func RandomRegular(n, d int, r *rng.RNG) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: RandomRegular requires 0 <= d < n, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular requires n*d even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return graph.NewBuilder(n).MustBuild(), nil
	}
	if d == n-1 {
		// The only (n−1)-regular simple graph is the complete graph.
		return Clique(n), nil
	}
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if g, ok := tryPairing(n, d, r); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: RandomRegular(n=%d, d=%d) failed after %d attempts", n, d, maxAttempts)
}

// MustRandomRegular is RandomRegular that panics on error. For tests and
// generators with statically valid parameters.
func MustRandomRegular(n, d int, r *rng.RNG) *graph.Graph {
	g, err := RandomRegular(n, d, r)
	if err != nil {
		panic(err)
	}
	return g
}

// tryPairing runs one configuration-model draw plus repair.
func tryPairing(n, d int, r *rng.RNG) (*graph.Graph, bool) {
	// stubs[i] is the vertex owning half-edge i.
	stubs := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs[v*d+k] = int32(v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type pair = [2]int32
	edges := make([]pair, 0, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		edges = append(edges, pair{stubs[i], stubs[i+1]})
	}

	seen := make(map[graph.Edge]int, len(edges)) // edge -> index of first occurrence
	bad := make([]int, 0)                        // indices of loops / duplicate pairs
	norm := func(p pair) graph.Edge { return graph.Edge{U: p[0], V: p[1]}.Normalize() }
	classify := func(i int) {
		p := edges[i]
		if p[0] == p[1] {
			bad = append(bad, i)
			return
		}
		e := norm(p)
		if first, dup := seen[e]; dup && first != i {
			bad = append(bad, i)
			return
		}
		seen[e] = i
	}
	for i := range edges {
		classify(i)
	}

	// Repair: repeatedly swap a bad pair with a uniformly random pair.
	// Swapping (a,b),(c,d) -> (a,c),(b,d) preserves the degree sequence.
	budget := 200 * (len(bad) + 10)
	for len(bad) > 0 && budget > 0 {
		budget--
		i := bad[len(bad)-1]
		j := r.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i][0], edges[i][1]
		c, dd := edges[j][0], edges[j][1]
		// Proposed replacements.
		p1 := pair{a, c}
		p2 := pair{b, dd}
		if p1[0] == p1[1] || p2[0] == p2[1] {
			continue
		}
		e1, e2 := norm(p1), norm(p2)
		if e1 == e2 {
			continue
		}
		// The new edges must not collide with existing distinct edges.
		if k, ok := seen[e1]; ok && k != i && k != j {
			continue
		}
		if k, ok := seen[e2]; ok && k != i && k != j {
			continue
		}
		// j must currently be a good, registered edge to keep bookkeeping
		// simple: skip if j is itself bad.
		ej := norm(edges[j])
		if edges[j][0] == edges[j][1] || seen[ej] != j {
			continue
		}
		// Apply.
		if edges[i][0] != edges[i][1] {
			ei := norm(edges[i])
			if seen[ei] == i {
				delete(seen, ei)
			}
		}
		delete(seen, ej)
		edges[i] = p1
		edges[j] = p2
		seen[e1] = i
		seen[e2] = j
		bad = bad[:len(bad)-1]
	}
	if len(bad) > 0 {
		return nil, false
	}

	b := graph.NewBuilder(n)
	for _, p := range edges {
		b.AddEdge(p[0], p[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

// Margulis returns the Margulis–Gabber–Galil expander on m² vertices.
// Vertex (x, y) ∈ Z_m × Z_m is adjacent to
//
//	(x+y, y), (x−y, y), (x+y+1, y), (x−y−1, y),
//	(x, y+x), (x, y−x), (x, y+x+1), (x, y−x−1)   (all mod m).
//
// The underlying multigraph is 8-regular with second eigenvalue bounded
// away from 8 (λ ≤ 5√2 < 8); we return the simple-graph skeleton, which
// remains a constant-degree expander and is fully deterministic — useful
// when the harness wants an expander without sampling noise.
func Margulis(m int) *graph.Graph {
	if m < 2 {
		panic("gen: Margulis needs m >= 2")
	}
	n := m * m
	id := func(x, y int) int32 { return int32(((x%m+m)%m)*m + ((y%m + m) % m)) }
	b := graph.NewBuilder(n)
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			v := id(x, y)
			b.TryAddEdge(v, id(x+y, y))
			b.TryAddEdge(v, id(x-y, y))
			b.TryAddEdge(v, id(x+y+1, y))
			b.TryAddEdge(v, id(x-y-1, y))
			b.TryAddEdge(v, id(x, y+x))
			b.TryAddEdge(v, id(x, y-x))
			b.TryAddEdge(v, id(x, y+x+1))
			b.TryAddEdge(v, id(x, y-x-1))
		}
	}
	return b.BuildDedup()
}

// Paley returns the Paley graph on a prime q ≡ 1 (mod 4): vertices Z_q,
// with an edge {u, v} iff u−v is a nonzero quadratic residue mod q. Paley
// graphs are (q−1)/2-regular, self-complementary, strongly regular, and
// have adjacency eigenvalues exactly (−1 ± √q)/2 besides the degree — so
// λ = (√q+1)/2, essentially optimal expansion. They are the repository's
// deterministic dense expander: the spectral package's estimates can be
// validated against the closed-form eigenvalues.
func Paley(q int) (*graph.Graph, error) {
	if !isPrime(q) || q%4 != 1 {
		return nil, fmt.Errorf("gen: Paley needs a prime q ≡ 1 (mod 4), got %d", q)
	}
	residue := make([]bool, q)
	for x := 1; x < q; x++ {
		residue[x*x%q] = true
	}
	b := graph.NewBuilder(q)
	for u := 0; u < q; u++ {
		for v := u + 1; v < q; v++ {
			if residue[(v-u)%q] {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.MustBuild(), nil
}

// DenseExpander samples a random Δ-regular graph with Δ close to αn.
// Used by the Table 1 "[5]" experiment, whose premise is Δ = Ω(n). alpha
// must lie in (0, 1); the degree is rounded to keep n·Δ even.
func DenseExpander(n int, alpha float64, r *rng.RNG) (*graph.Graph, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("gen: DenseExpander alpha %v out of (0,1)", alpha)
	}
	d := int(alpha * float64(n))
	if d < 1 {
		d = 1
	}
	if (n*d)%2 != 0 {
		d++
	}
	if d >= n {
		d = n - 1
		if (n*d)%2 != 0 {
			d--
		}
	}
	return RandomRegular(n, d, r)
}
