package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// SubsetFamily samples, per Lemma 19, `count` subsets of a universe
// [0, n), each of size `size`, such that any pair of subsets shares at
// most one element. It uses rejection sampling: draw a subset, keep it if
// it intersects every accepted subset in at most one element, otherwise
// redraw. The paper's probabilistic argument guarantees such families
// exist for size ≈ (n/17)^{1/6}; the sampler enforces the property
// explicitly so the output is always valid (or an error if the parameters
// are infeasible for the retry budget).
//
// Each element ends up in ≈ count·size/n subsets; the Lemma's balance
// condition (every element in Θ(n^{1/6}) subsets) holds on average by
// construction and is measured by the experiment harness.
func SubsetFamily(n, count, size int, r *rng.RNG) ([][]int32, error) {
	if size < 1 || size > n {
		return nil, fmt.Errorf("gen: SubsetFamily size %d out of range for universe %d", size, n)
	}
	// occ[e] lists accepted subsets containing element e, so the
	// pairwise-intersection check touches only candidates sharing an
	// element rather than the whole family.
	occ := make([][]int32, n)
	family := make([][]int32, 0, count)
	maxTries := 200 * count
	tries := 0
	shared := make(map[int32]int)
	for len(family) < count {
		tries++
		if tries > maxTries {
			return nil, fmt.Errorf("gen: SubsetFamily(n=%d, count=%d, size=%d) exceeded retry budget", n, count, size)
		}
		cand := r.Sample(n, size)
		for k := range shared {
			delete(shared, k)
		}
		ok := true
		for _, e := range cand {
			for _, si := range occ[e] {
				shared[si]++
				if shared[si] >= 2 {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		idx := int32(len(family))
		sub := make([]int32, size)
		for i, e := range cand {
			sub[i] = int32(e)
			occ[e] = append(occ[e], idx)
		}
		family = append(family, sub)
	}
	return family, nil
}

// VerifySubsetFamily checks the Lemma 19 properties on a family over
// universe [0, n): every subset has the stated size, all elements are in
// range, and every pair of subsets shares at most one element. It returns
// the per-element occurrence counts for balance inspection.
func VerifySubsetFamily(n int, family [][]int32) ([]int, error) {
	occ := make([][]int32, n)
	counts := make([]int, n)
	for si, sub := range family {
		seen := make(map[int32]bool, len(sub))
		for _, e := range sub {
			if e < 0 || int(e) >= n {
				return nil, fmt.Errorf("gen: element %d of subset %d out of range", e, si)
			}
			if seen[e] {
				return nil, fmt.Errorf("gen: subset %d repeats element %d", si, e)
			}
			seen[e] = true
			counts[e]++
			occ[e] = append(occ[e], int32(si))
		}
	}
	// Pairwise check via shared-element accumulation.
	for e := 0; e < n; e++ {
		list := occ[e]
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := family[list[i]], family[list[j]]
				if intersectionSize(a, b) > 1 {
					return nil, fmt.Errorf("gen: subsets %d and %d share more than one element", list[i], list[j])
				}
			}
		}
	}
	return counts, nil
}

func intersectionSize(a, b []int32) int {
	set := make(map[int32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	c := 0
	for _, y := range b {
		if set[y] {
			c++
		}
	}
	return c
}

// AffinePlaneFamily returns the deterministic design alternative to
// Lemma 19: the lines of the affine plane AG(2, q) for prime q. The
// universe is the q² points (x, y) ↦ x·q+y; there are q²+q lines, each of
// size q, every two lines share at most one point, and every point lies on
// exactly q+1 lines. This matches the Lemma 19 profile with n = q².
func AffinePlaneFamily(q int) ([][]int32, error) {
	if q < 2 || !isPrime(q) {
		return nil, fmt.Errorf("gen: AffinePlaneFamily needs prime q, got %d", q)
	}
	id := func(x, y int) int32 { return int32(x*q + y) }
	family := make([][]int32, 0, q*q+q)
	// Sloped lines y = m·x + c.
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			line := make([]int32, q)
			for x := 0; x < q; x++ {
				line[x] = id(x, (m*x+c)%q)
			}
			family = append(family, line)
		}
	}
	// Vertical lines x = c.
	for c := 0; c < q; c++ {
		line := make([]int32, q)
		for y := 0; y < q; y++ {
			line[y] = id(c, y)
		}
		family = append(family, line)
	}
	return family, nil
}

func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}

// Theorem4Instance is the Theorem 4 composite lower-bound graph: many
// Lemma 18 fan instances over a shared pool of line nodes, arranged to be
// pairwise edge-disjoint via a Lemma 19 subset family.
type Theorem4Instance struct {
	G        *graph.Graph
	Pool     int       // number of shared line nodes (ids 0..Pool−1)
	Specials []int32   // s_i for each fan instance
	Lines    [][]int32 // the ordered line nodes of each instance
	K        int       // fan parameter: each instance has 2K+1 line nodes
}

// Theorem4Graph assembles the composite graph from a subset family whose
// subsets all have odd size 2k+1 >= 3. Subset i becomes the line of fan
// instance i (in subset order); instance i gets a fresh special node s_i.
// The family must have pairwise intersections <= 1 so instances are
// edge-disjoint; Build enforces this by rejecting duplicate edges.
func Theorem4Graph(pool int, family [][]int32) (*Theorem4Instance, error) {
	if len(family) == 0 {
		return nil, fmt.Errorf("gen: Theorem4Graph needs a nonempty family")
	}
	size := len(family[0])
	if size < 3 || size%2 == 0 {
		return nil, fmt.Errorf("gen: Theorem4Graph needs odd subset size >= 3, got %d", size)
	}
	for i, sub := range family {
		if len(sub) != size {
			return nil, fmt.Errorf("gen: subset %d has size %d, want %d", i, len(sub), size)
		}
	}
	k := (size - 1) / 2
	total := pool + len(family)
	b := graph.NewBuilder(total)
	inst := &Theorem4Instance{Pool: pool, K: k, Lines: family}
	inst.Specials = make([]int32, len(family))
	for i, sub := range family {
		s := int32(pool + i)
		inst.Specials[i] = s
		fanOn(b, s, sub)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: Theorem4Graph instances are not edge-disjoint: %w", err)
	}
	inst.G = g
	return inst, nil
}

// Theorem4Random builds the Theorem 4 graph with a random Lemma 19 family:
// `count` fans over a pool of `pool` line nodes, each fan using 2k+1 line
// nodes.
func Theorem4Random(pool, count, k int, r *rng.RNG) (*Theorem4Instance, error) {
	family, err := SubsetFamily(pool, count, 2*k+1, r)
	if err != nil {
		return nil, err
	}
	return Theorem4Graph(pool, family)
}

// Theorem4Affine builds the Theorem 4 graph deterministically from the
// affine plane AG(2, q) (q prime, odd): pool = q² line nodes and q²+q fan
// instances, each with q line nodes (so k = (q−1)/2).
func Theorem4Affine(q int) (*Theorem4Instance, error) {
	if q%2 == 0 {
		return nil, fmt.Errorf("gen: Theorem4Affine needs odd prime q, got %d", q)
	}
	family, err := AffinePlaneFamily(q)
	if err != nil {
		return nil, err
	}
	return Theorem4Graph(q*q, family)
}

// Lemma19Parameters returns the paper's nominal subset size (n/17)^{1/6}
// rounded to the nearest odd integer >= 3, for a pool of n line nodes.
func Lemma19Parameters(n int) (size int) {
	s := int(math.Round(math.Pow(float64(n)/17.0, 1.0/6.0)))
	if s < 3 {
		s = 3
	}
	if s%2 == 0 {
		s++
	}
	return s
}
