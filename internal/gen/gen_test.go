package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestClique(t *testing.T) {
	g := Clique(7)
	if g.M() != 21 {
		t.Fatalf("K7 has %d edges, want 21", g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 6 {
		t.Fatalf("K7 regularity = (%d,%v)", d, ok)
	}
}

func TestCycleAndPath(t *testing.T) {
	c := Cycle(9)
	if c.M() != 9 {
		t.Fatalf("C9 edges = %d", c.M())
	}
	if d, ok := c.IsRegular(); !ok || d != 2 {
		t.Fatalf("C9 regularity = (%d,%v)", d, ok)
	}
	p := Path(9)
	if p.M() != 8 {
		t.Fatalf("P9 edges = %d", p.M())
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(12, []int{1, 3})
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("circulant regularity = (%d,%v), want (4,true)", d, ok)
	}
	if !g.Connected() {
		t.Fatal("circulant disconnected")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("Q4 regularity = (%d,%v)", d, ok)
	}
	if diam, conn := g.DiameterLowerBound(0); !conn || diam != 4 {
		t.Fatalf("Q4 diameter = %d (conn=%v), want 4", diam, conn)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(5, 7)
	if g.N() != 35 {
		t.Fatalf("torus n = %d", g.N())
	}
	if d, ok := g.IsRegular(); !ok || d != 4 {
		t.Fatalf("torus regularity = (%d,%v)", d, ok)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 5)
	if g.M() != 15 {
		t.Fatalf("K3,5 edges = %d", g.M())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge inside part A")
	}
	if !g.HasEdge(0, 3) {
		t.Fatal("missing cross edge")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := rng.New(1)
	empty := ErdosRenyi(20, 0, r)
	if empty.M() != 0 {
		t.Fatalf("G(20,0) has %d edges", empty.M())
	}
	full := ErdosRenyi(20, 1, r)
	if full.M() != 190 {
		t.Fatalf("G(20,1) has %d edges, want 190", full.M())
	}
}

func TestRandomRegularIsRegular(t *testing.T) {
	r := rng.New(42)
	for _, tc := range []struct{ n, d int }{{10, 3}, {50, 4}, {64, 16}, {100, 22}, {40, 39}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if d, ok := g.IsRegular(); !ok || d != tc.d {
			t.Fatalf("RandomRegular(%d,%d): degree (%d,%v)", tc.n, tc.d, d, ok)
		}
		if g.N() != tc.n {
			t.Fatalf("vertex count %d, want %d", g.N(), tc.n)
		}
	}
}

func TestRandomRegularRejectsOddProduct(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("accepted odd n*d")
	}
	if _, err := RandomRegular(5, 5, r); err == nil {
		t.Fatal("accepted d >= n")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1 := MustRandomRegular(60, 6, rng.New(7))
	g2 := MustRandomRegular(60, 6, rng.New(7))
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ for identical seeds")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edge lists differ for identical seeds")
		}
	}
}

func TestRandomRegularConnectedForD3Plus(t *testing.T) {
	// Random d-regular graphs with d >= 3 are connected w.h.p.; use fixed
	// seeds so the test is deterministic.
	r := rng.New(2024)
	for trial := 0; trial < 5; trial++ {
		g := MustRandomRegular(80, 5, r)
		if !g.Connected() {
			t.Fatalf("trial %d: disconnected 5-regular graph", trial)
		}
	}
}

func TestMargulis(t *testing.T) {
	g := Margulis(8)
	if g.N() != 64 {
		t.Fatalf("Margulis(8) n = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("Margulis graph disconnected")
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("Margulis max degree %d > 8", g.MaxDegree())
	}
	// The simple skeleton has low diameter, characteristic of expansion.
	diam, conn := g.DiameterLowerBound(0)
	if !conn || diam > 10 {
		t.Fatalf("Margulis(8) diameter = %d (conn=%v)", diam, conn)
	}
}

func TestDenseExpander(t *testing.T) {
	g, err := DenseExpander(60, 0.5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := g.IsRegular()
	if !ok {
		t.Fatal("dense expander not regular")
	}
	if d < 25 || d > 35 {
		t.Fatalf("dense expander degree %d far from n/2", d)
	}
}

func TestLemma2GraphShape(t *testing.T) {
	n, alpha := 8, 3
	inst := Lemma2Graph(n, alpha)
	g := inst.G
	wantN := 2*n + n*alpha
	if g.N() != wantN {
		t.Fatalf("n = %d, want %d", g.N(), wantN)
	}
	// Edges: 2*C(n,2) cliques + n matching + n*(alpha+1) path edges.
	wantM := n*(n-1) + n + n*(alpha+1)
	if g.M() != wantM {
		t.Fatalf("m = %d, want %d", g.M(), wantM)
	}
	// H keeps exactly one matching edge.
	if g.M()-inst.H.M() != n-1 {
		t.Fatalf("H removed %d edges, want %d", g.M()-inst.H.M(), n-1)
	}
	if !inst.H.HasEdge(inst.A[0], inst.B[0]) {
		t.Fatal("H lost the (a_1,b_1) edge")
	}
	if inst.H.HasEdge(inst.A[3], inst.B[3]) {
		t.Fatal("H kept a removed matching edge")
	}
}

func TestLemma2DistanceStretch(t *testing.T) {
	inst := Lemma2Graph(6, 3)
	// Every removed matching edge has a 3-hop substitute in H.
	for i := 1; i < inst.N; i++ {
		d := inst.H.Dist(inst.A[i], inst.B[i])
		if d > 3 {
			t.Fatalf("dist_H(a_%d, b_%d) = %d > 3", i, i, d)
		}
	}
	// And the D_i detour exists with length alpha.
	for i := 0; i < inst.N; i++ {
		path := []int32{inst.A[i]}
		path = append(path, inst.D[i]...)
		path = append(path, inst.B[i])
		for j := 1; j < len(path); j++ {
			if !inst.H.HasEdge(path[j-1], path[j]) {
				t.Fatalf("detour path broken at instance %d", i)
			}
		}
	}
}

func TestCliqueMatchingGraph(t *testing.T) {
	g := CliqueMatchingGraph(12)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// 2*C(6,2) + 6 = 36.
	if g.M() != 36 {
		t.Fatalf("m = %d, want 36", g.M())
	}
	if !g.HasEdge(0, 6) || !g.HasEdge(5, 11) {
		t.Fatal("matching edges missing")
	}
	if g.HasEdge(0, 7) {
		t.Fatal("unexpected cross edge")
	}
}

func TestFanGraphShape(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		f := FanGraph(k)
		if f.G.N() != 2*k+2 {
			t.Fatalf("k=%d: n = %d, want %d", k, f.G.N(), 2*k+2)
		}
		if f.G.M() != 3*k+1 {
			t.Fatalf("k=%d: m = %d, want %d", k, f.G.M(), 3*k+1)
		}
		if len(f.Rays()) != k+1 {
			t.Fatalf("k=%d: %d rays, want %d", k, len(f.Rays()), k+1)
		}
		if len(f.LineEdges()) != 2*k {
			t.Fatalf("k=%d: %d line edges", k, len(f.LineEdges()))
		}
		for j := 1; j <= k; j++ {
			face := f.FaceLineEdges(j)
			for _, e := range face {
				if !f.G.HasEdge(e.U, e.V) {
					t.Fatalf("face %d edge %v missing", j, e)
				}
			}
		}
	}
}

func TestSubsetFamilyProperties(t *testing.T) {
	r := rng.New(5)
	family, err := SubsetFamily(100, 40, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(family) != 40 {
		t.Fatalf("family size %d", len(family))
	}
	if _, err := VerifySubsetFamily(100, family); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetFamilyInfeasible(t *testing.T) {
	r := rng.New(5)
	// Universe 5, subsets of size 4: two subsets must share >= 3 elements,
	// so requesting 10 of them must fail.
	if _, err := SubsetFamily(5, 10, 4, r); err == nil {
		t.Fatal("expected failure for infeasible family")
	}
}

func TestAffinePlaneFamily(t *testing.T) {
	q := 5
	family, err := AffinePlaneFamily(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(family) != q*q+q {
		t.Fatalf("family size %d, want %d", len(family), q*q+q)
	}
	counts, err := VerifySubsetFamily(q*q, family)
	if err != nil {
		t.Fatal(err)
	}
	for e, c := range counts {
		if c != q+1 {
			t.Fatalf("point %d lies on %d lines, want %d", e, c, q+1)
		}
	}
}

func TestAffinePlaneRejectsComposite(t *testing.T) {
	if _, err := AffinePlaneFamily(6); err == nil {
		t.Fatal("accepted composite q")
	}
}

func TestTheorem4Affine(t *testing.T) {
	q := 5
	inst, err := Theorem4Affine(q)
	if err != nil {
		t.Fatal(err)
	}
	wantN := q*q + q*q + q // pool + one special per line
	if inst.G.N() != wantN {
		t.Fatalf("n = %d, want %d", inst.G.N(), wantN)
	}
	// Each fan contributes 3k+1 edges with 2k+1 = q.
	k := (q - 1) / 2
	wantM := (q*q + q) * (3*k + 1)
	if inst.G.M() != wantM {
		t.Fatalf("m = %d, want %d", inst.G.M(), wantM)
	}
}

func TestTheorem4Random(t *testing.T) {
	r := rng.New(11)
	inst, err := Theorem4Random(120, 30, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Specials) != 30 {
		t.Fatalf("specials = %d", len(inst.Specials))
	}
	if inst.K != 2 {
		t.Fatalf("k = %d", inst.K)
	}
	// Every fan's edges exist.
	for i, line := range inst.Lines {
		s := inst.Specials[i]
		for j := 0; j+1 < len(line); j++ {
			if !inst.G.HasEdge(line[j], line[j+1]) {
				t.Fatalf("instance %d line edge missing", i)
			}
		}
		for j := 0; j < len(line); j += 2 {
			if !inst.G.HasEdge(s, line[j]) {
				t.Fatalf("instance %d ray missing", i)
			}
		}
	}
}

func TestLemma19Parameters(t *testing.T) {
	if s := Lemma19Parameters(17); s != 3 {
		t.Fatalf("size(17) = %d", s)
	}
	if s := Lemma19Parameters(17 * 1_000_000); s%2 == 0 || s < 3 {
		t.Fatalf("size not odd >= 3: %d", s)
	}
}

// Property: RandomRegular outputs are simple regular graphs across seeds.
func TestPropertyRandomRegularSimple(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + 2*r.Intn(30)
		d := 2 + r.Intn(6)
		if (n*d)%2 != 0 {
			d++
		}
		if d >= n {
			d = n - 1 - (n % 2)
		}
		g, err := RandomRegular(n, d, r)
		if err != nil {
			return false
		}
		got, ok := g.IsRegular()
		if !ok || got != d {
			return false
		}
		// Simplicity: edge list has no duplicates by construction; check a
		// few adjacency invariants instead.
		for v := int32(0); v < int32(n); v++ {
			nbrs := g.Neighbors(v)
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i] == nbrs[i-1] {
					return false
				}
			}
			for _, w := range nbrs {
				if w == v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lemma 2 instance — H is always a spanning subgraph missing
// exactly the n−1 matching edges.
func TestPropertyLemma2Subgraph(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(10)
		alpha := 3 + r.Intn(4)
		inst := Lemma2Graph(n, alpha)
		if !inst.H.IsSubgraphOf(inst.G) {
			return false
		}
		return inst.G.M()-inst.H.M() == n-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

var sinkGraph *graph.Graph

func BenchmarkRandomRegular(b *testing.B) {
	r := rng.New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkGraph = MustRandomRegular(500, 20, r)
	}
}

func BenchmarkMargulis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkGraph = Margulis(32)
	}
}

func TestPaleyBasics(t *testing.T) {
	g, err := Paley(13)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 13 {
		t.Fatalf("n = %d", g.N())
	}
	if d, ok := g.IsRegular(); !ok || d != 6 {
		t.Fatalf("Paley(13) degree = (%d,%v), want (6,true)", d, ok)
	}
	if !g.Connected() {
		t.Fatal("Paley graph disconnected")
	}
	// Self-complementary: m = n(n-1)/4.
	if g.M() != 13*12/4 {
		t.Fatalf("m = %d, want %d", g.M(), 13*12/4)
	}
}

func TestPaleyRejectsBadModulus(t *testing.T) {
	if _, err := Paley(7); err == nil { // 7 ≡ 3 (mod 4)
		t.Fatal("accepted q ≡ 3 (mod 4)")
	}
	if _, err := Paley(15); err == nil {
		t.Fatal("accepted composite q")
	}
}
