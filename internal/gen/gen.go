// Package gen builds the graph families used across the reproduction:
// standard families (cliques, cycles, hypercubes, circulants, Erdős–Rényi),
// expanders (random regular via the configuration model, the explicit
// Margulis–Gabber–Galil expander), and every bespoke construction that
// appears in the paper (the Lemma 2 separation graph, the Figure 1
// clique–matching graph, the Lemma 18 fan graph, the Lemma 19 subset
// families, and the Theorem 4 composite lower-bound graph).
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

// Circulant returns the circulant graph on n vertices with the given
// offsets: vertex i is adjacent to i±off (mod n) for each offset. Offsets
// must lie in [1, n/2].
func Circulant(n int, offsets []int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, off := range offsets {
		if off < 1 || off > n/2 {
			panic(fmt.Sprintf("gen: circulant offset %d out of range", off))
		}
		for i := 0; i < n; i++ {
			j := (i + off) % n
			if i != j {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.BuildDedup()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(int32(v), int32(w))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows×cols 2D torus (4-regular when rows, cols >= 3).
func Torus(rows, cols int) *graph.Graph {
	id := func(r, c int) int32 { return int32(r*cols + c) }
	b := graph.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.TryAddEdge(id(r, c), id((r+1)%rows, c))
			b.TryAddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.BuildDedup()
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(int32(i), int32(a+j))
		}
	}
	return bld.MustBuild()
}

// ErdosRenyi returns G(n, p): each possible edge independently with
// probability p.
func ErdosRenyi(n int, p float64, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.MustBuild()
}
