package packetsim

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/routing"
)

func TestSinglePacketDeliversInDilation(t *testing.T) {
	rt := &routing.Routing{
		Problem: routing.Problem{{Src: 0, Dst: 4}},
		Paths:   []routing.Path{{0, 1, 2, 3, 4}},
	}
	res, err := Simulate(5, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 4 {
		t.Fatalf("makespan %d, want 4", res.Makespan)
	}
	if res.Latencies[0] != 4 {
		t.Fatalf("latency %d", res.Latencies[0])
	}
	if res.MaxQueue != 1 {
		t.Fatalf("max queue %d, want 1", res.MaxQueue)
	}
}

func TestHubSerializesPackets(t *testing.T) {
	// k packets all passing node 0 (a star hub): the hub transmits one
	// per step, so makespan ≥ k+1 (last packet waits k−1 steps at source
	// side... exactly: all arrive at hub needing hub transmission).
	k := 5
	var paths []routing.Path
	var prob routing.Problem
	// Leaves 1..k send to leaves k+1..2k via hub 0.
	for i := 0; i < k; i++ {
		src := int32(1 + i)
		dst := int32(1 + k + i)
		prob = append(prob, routing.Pair{Src: src, Dst: dst})
		paths = append(paths, routing.Path{src, 0, dst})
	}
	rt := &routing.Routing{Problem: prob, Paths: paths}
	res, err := Simulate(2*k+1, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: all k sources transmit into the hub simultaneously; then the
	// hub drains one per step: makespan = 1 + k.
	if res.Makespan != 1+k {
		t.Fatalf("makespan %d, want %d", res.Makespan, 1+k)
	}
	if res.MaxQueue < k-1 {
		t.Fatalf("max queue %d, want >= %d", res.MaxQueue, k-1)
	}
	if res.Congestion != k {
		t.Fatalf("congestion %d, want %d", res.Congestion, k)
	}
}

func TestDisjointPathsRunInParallel(t *testing.T) {
	rt := &routing.Routing{
		Problem: routing.Problem{{Src: 0, Dst: 2}, {Src: 3, Dst: 5}},
		Paths:   []routing.Path{{0, 1, 2}, {3, 4, 5}},
	}
	res, err := Simulate(6, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2 {
		t.Fatalf("makespan %d, want 2 (parallel)", res.Makespan)
	}
}

func TestMakespanAtLeastLowerBounds(t *testing.T) {
	r := rng.New(1)
	g := gen.MustRandomRegular(60, 6, r)
	prob := routing.RandomProblem(60, 80, r)
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	for _, prio := range []Priority{FIFO, FarthestToGo, LongestInSystem} {
		res, err := Simulate(60, rt, Options{Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.Dilation {
			t.Fatalf("prio %d: makespan %d < dilation %d", prio, res.Makespan, res.Dilation)
		}
		if res.Delivered != len(prob) {
			t.Fatalf("prio %d: delivered %d of %d", prio, res.Delivered, len(prob))
		}
	}
}

func TestZeroLengthPathDeliversImmediately(t *testing.T) {
	rt := &routing.Routing{
		Problem: routing.Problem{{Src: 0, Dst: 1}},
		Paths:   []routing.Path{{0}},
	}
	res, err := Simulate(2, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Latencies[0] != 0 {
		t.Fatalf("zero-length path: %+v", res)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	rt := &routing.Routing{
		Problem: routing.Problem{{Src: 0, Dst: 1}},
		Paths:   []routing.Path{{}},
	}
	if _, err := Simulate(2, rt, Options{}); err == nil {
		t.Fatal("accepted empty path")
	}
}

func TestMaxStepsAbort(t *testing.T) {
	k := 10
	var paths []routing.Path
	var prob routing.Problem
	for i := 0; i < k; i++ {
		src := int32(1 + i)
		dst := int32(1 + k + i)
		prob = append(prob, routing.Pair{Src: src, Dst: dst})
		paths = append(paths, routing.Path{src, 0, dst})
	}
	rt := &routing.Routing{Problem: prob, Paths: paths}
	res, err := Simulate(2*k+1, rt, Options{MaxSteps: 3})
	if err == nil {
		t.Fatal("expected abort error")
	}
	if res.Delivered >= k {
		t.Fatalf("delivered %d with only 3 steps", res.Delivered)
	}
}

func TestReceiveCapSerializesFanIn(t *testing.T) {
	// k sources each one hop from a common destination 0: without the
	// receive cap all deliver in step 1; with it, one per step.
	k := 4
	var prob routing.Problem
	var paths []routing.Path
	for i := 0; i < k; i++ {
		src := int32(1 + i)
		prob = append(prob, routing.Pair{Src: src, Dst: 0})
		paths = append(paths, routing.Path{src, 0})
	}
	rt := &routing.Routing{Problem: prob, Paths: paths}
	free, err := Simulate(k+1, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Makespan != 1 {
		t.Fatalf("uncapped makespan %d, want 1", free.Makespan)
	}
	capped, err := Simulate(k+1, rt, Options{ReceiveCap: true})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Makespan != k {
		t.Fatalf("capped makespan %d, want %d", capped.Makespan, k)
	}
}

func TestReceiveCapStillDelivers(t *testing.T) {
	r := rng.New(9)
	g := gen.MustRandomRegular(40, 6, r)
	prob := routing.RandomProblem(40, 60, r)
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(40, rt, Options{ReceiveCap: true, Priority: FarthestToGo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(prob) {
		t.Fatalf("delivered %d of %d under receive cap", res.Delivered, len(prob))
	}
	uncapped, err := Simulate(40, rt, Options{Priority: FarthestToGo})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < uncapped.Makespan {
		t.Fatalf("receive cap sped things up? %d < %d", res.Makespan, uncapped.Makespan)
	}
}

// Property: makespan is always >= dilation and every packet's latency is
// >= its path length; all packets deliver within the default budget.
func TestPropertySimulationSane(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + 2*r.Intn(20)
		g := gen.MustRandomRegular(n, 4, r)
		if !g.Connected() {
			return true
		}
		prob := routing.RandomProblem(n, 1+r.Intn(2*n), r)
		rt, err := routing.ShortestPaths(g, prob)
		if err != nil {
			return false
		}
		res, err := Simulate(n, rt, Options{Priority: Priority(seed % 3)})
		if err != nil {
			return false
		}
		if res.Makespan < res.Dilation {
			return false
		}
		for i, p := range rt.Paths {
			if res.Latencies[i] < p.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulate(b *testing.B) {
	r := rng.New(2)
	g := gen.MustRandomRegular(200, 8, r)
	prob := routing.RandomProblem(200, 400, r)
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(200, rt, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
