// Package packetsim is a synchronous store-and-forward packet simulator
// in the node-capacity model the paper's introduction motivates
// (Section 1.1: in wireless networks "typically at most one packet can be
// received and forwarded by a node at a time", so routings with smaller
// node congestion yield lower latency and queue sizes).
//
// Given a routing (one path per packet), the simulator advances in
// synchronous steps; in each step every node transmits at most one queued
// packet one hop along its path. Makespan, per-packet latency, and queue
// occupancy are reported, so experiments can tie the paper's congestion
// stretch directly to delivered performance.
package packetsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/routing"
)

// Priority selects which queued packet a node forwards first.
type Priority int

const (
	// FIFO forwards in arrival order (ties by packet id).
	FIFO Priority = iota
	// FarthestToGo forwards the packet with the most remaining hops —
	// the classic priority that favors long paths.
	FarthestToGo
	// LongestInSystem forwards the oldest packet (injection order).
	LongestInSystem
)

// Options configures a simulation run.
type Options struct {
	Priority Priority
	// MaxSteps aborts the run (0 means 16·(n + total path length), far
	// beyond any legitimate schedule).
	MaxSteps int
	// ReceiveCap additionally limits every node to receiving at most one
	// packet per step — the strict reading of §1.1 ("at most one packet
	// can be received and forwarded by a node at a time"). A transmission
	// blocked by the receiver's cap stays queued at the sender.
	ReceiveCap bool
	// Trace, when non-nil, receives a span per simulation with the
	// injection and scheduling phases as children and the headline result
	// figures as payload.
	Trace *obs.Span
	// Workers sizes the worker pool of the congestion-accounting kernel
	// that computes the Congestion lower bound before the schedule runs;
	// 0 means all cores. The simulation itself is inherently sequential
	// (synchronous steps), so only the accounting parallelizes. Results
	// are identical for every value.
	Workers int
}

// Result summarizes a simulation.
type Result struct {
	Makespan  int   // steps until the last packet arrived
	Delivered int   // packets delivered (== packets unless aborted)
	MaxQueue  int   // maximum queue length observed at any node
	Latencies []int // per-packet delivery step (−1 if undelivered)

	// Lower bounds for context: any schedule needs ≥ Dilation steps and,
	// for each node, ≥ the number of packets that must cross it.
	Dilation   int
	Congestion int
}

// packet is the mutable in-flight state.
type packet struct {
	id   int
	path routing.Path
	pos  int // index into path of the node currently holding the packet
}

// Simulate runs the store-and-forward schedule for the given routing on
// an n-node network. Paths of length 0 (already at destination) deliver
// at step 0.
func Simulate(n int, rt *routing.Routing, opts Options) (*Result, error) {
	numPackets := len(rt.Paths)
	res := &Result{Latencies: make([]int, numPackets)}
	for i := range res.Latencies {
		res.Latencies[i] = -1
	}
	sim := opts.Trace.Start("packetsim")
	defer sim.End()
	sim.SetKV("packets", numPackets)

	inj := sim.Start("inject")
	queues := make([][]*packet, n)
	totalLen := 0
	for i, p := range rt.Paths {
		if len(p) == 0 {
			return nil, fmt.Errorf("packetsim: packet %d has empty path", i)
		}
		pk := &packet{id: i, path: p, pos: 0}
		if p.Len() == 0 {
			res.Latencies[i] = 0
			res.Delivered++
			continue
		}
		queues[p[0]] = append(queues[p[0]], pk)
		totalLen += p.Len()
		if p.Len() > res.Dilation {
			res.Dilation = p.Len()
		}
	}
	inj.SetKV("workers", opts.Workers)
	res.Congestion = rt.NodeCongestionWorkers(n, opts.Workers)
	inj.End()

	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 16 * (n + totalLen + 1)
	}

	run := sim.Start("schedule")
	inFlight := numPackets - res.Delivered
	step := 0
	for inFlight > 0 && step < maxSteps {
		step++
		// Selection phase: every node picks at most one packet to send.
		type move struct {
			pk   *packet
			from int32
		}
		var moves []move
		received := make(map[int32]bool)
		for v := 0; v < n; v++ {
			q := queues[v]
			if len(q) == 0 {
				continue
			}
			best := 0
			switch opts.Priority {
			case FarthestToGo:
				for i := 1; i < len(q); i++ {
					ri := q[i].path.Len() - q[i].pos
					rb := q[best].path.Len() - q[best].pos
					if ri > rb || (ri == rb && q[i].id < q[best].id) {
						best = i
					}
				}
			case LongestInSystem:
				for i := 1; i < len(q); i++ {
					if q[i].id < q[best].id {
						best = i
					}
				}
			default: // FIFO: head of queue
			}
			if opts.ReceiveCap {
				// The chosen packet's next hop must still be free to
				// receive this step (nodes are scanned in id order, a
				// fixed arbitration).
				next := q[best].path[q[best].pos+1]
				if received[next] {
					continue // blocked; stays queued
				}
				received[next] = true
			}
			moves = append(moves, move{pk: q[best], from: int32(v)})
			queues[v] = append(q[:best], q[best+1:]...)
		}
		// Delivery phase: all selected packets advance one hop
		// simultaneously (synchronous model).
		for _, m := range moves {
			m.pk.pos++
			at := m.pk.path[m.pk.pos]
			if m.pk.pos == len(m.pk.path)-1 {
				res.Latencies[m.pk.id] = step
				res.Delivered++
				inFlight--
				continue
			}
			queues[at] = append(queues[at], m.pk)
		}
		for v := 0; v < n; v++ {
			if len(queues[v]) > res.MaxQueue {
				res.MaxQueue = len(queues[v])
			}
		}
		if res.Delivered == numPackets {
			break
		}
	}
	run.End()
	res.Makespan = step
	sim.SetKV("makespan", res.Makespan)
	sim.SetKV("delivered", res.Delivered)
	sim.SetKV("maxQueue", res.MaxQueue)
	if inFlight > 0 {
		return res, fmt.Errorf("packetsim: %d packets undelivered after %d steps", inFlight, step)
	}
	return res, nil
}

// MeanLatency returns the average delivery step over delivered packets.
func (r *Result) MeanLatency() float64 {
	sum, cnt := 0, 0
	for _, l := range r.Latencies {
		if l >= 0 {
			sum += l
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}
