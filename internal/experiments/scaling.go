package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// Series is tabular data for external plotting: a header row plus data
// rows, ready for CSV emission. The paper reports asymptotic shapes rather
// than plots; these series regenerate the shapes as data so the scaling
// exponents can be read off directly.
type Series struct {
	Name   string
	Header []string
	Rows   [][]string
}

// ScalingTheorem2 sweeps n in the Theorem 2 regime and emits the series
// (n, |E(H)|, |E(H)|/n^{5/3}, matching congestion, permutation congestion
// stretch). A flat third column is the O(n^{5/3}) law.
func ScalingTheorem2(cfg Config) (*Series, error) {
	sizes := []struct{ n, d int }{{125, 40}, {216, 60}, {343, 80}, {512, 96}, {729, 112}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	s := &Series{
		Name:   "theorem2-scaling",
		Header: []string{"n", "delta", "edges_g", "edges_h", "edges_norm_n53", "match_congestion", "perm_cong_stretch"},
	}
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ uint64(sz.n)<<7)
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
			Epsilon: spanner.EpsilonForDegree(sz.n, sz.d), Seed: cfg.Seed + uint64(sz.n),
			EnsureConnected: true})
		if err != nil {
			return nil, err
		}
		m := greedyMatchingOfEdges(g)
		rt, _, err := routeMatchingOn(sp, m, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		prob := routing.RandomPermutationProblem(sz.n, r)
		onG, err := routing.ShortestPaths(g, prob)
		if err != nil {
			return nil, err
		}
		onH, _, err := routing.SubstituteViaMatchings(sz.n, onG, sp.Router(cfg.Seed+2))
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{
			itoa(sz.n), itoa(sz.d), itoa(g.M()), itoa(sp.H.M()),
			ftoa(float64(sp.H.M()) / math.Pow(float64(sz.n), 5.0/3.0)),
			itoa(cfg.nodeCongestion(rt, sz.n)),
			ftoa(float64(cfg.nodeCongestion(onH, sz.n)) / float64(onG.NodeCongestion(sz.n))),
		})
	}
	return s, nil
}

// ScalingTheorem3 sweeps n for Algorithm 1 with Δ ≈ 1.1·n^{2/3}.
func ScalingTheorem3(cfg Config) (*Series, error) {
	ns := []int{125, 216, 343, 512, 729}
	if cfg.Quick {
		ns = ns[:2]
	}
	s := &Series{
		Name:   "theorem3-scaling",
		Header: []string{"n", "delta", "delta_prime", "edges_g", "edges_h", "edges_norm", "reins_nodetour", "match_congestion"},
	}
	for _, n := range ns {
		d := int(1.1 * math.Pow(float64(n), 2.0/3.0))
		if (n*d)%2 != 0 {
			d++
		}
		r := rng.New(cfg.Seed ^ uint64(n)<<8)
		g := gen.MustRandomRegular(n, d, r)
		res, err := spanner.BuildRegular(g, spanner.DefaultRegularOptions(cfg.Seed+uint64(n)))
		if err != nil {
			return nil, err
		}
		m := greedyMatchingOfEdges(g)
		rt, _, err := routeMatchingOn(res.Spanner, m, cfg.Seed+3)
		if err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, []string{
			itoa(n), itoa(d), itoa(res.DeltaPrime), itoa(g.M()), itoa(res.Spanner.H.M()),
			ftoa(float64(res.Spanner.H.M()) / math.Pow(float64(n), 5.0/3.0)),
			itoa(res.ReinsertedNoDetour),
			itoa(cfg.nodeCongestion(rt, n)),
		})
	}
	return s, nil
}

// ScalingTheorem4 sweeps the affine-plane parameter q and emits the
// lower-bound series (n, optimal spanner edges, edges/n^{7/6}, forced
// congestion stretch, n^{1/6}).
func ScalingTheorem4(cfg Config) (*Series, error) {
	qs := []int{5, 7, 11, 13, 17}
	if cfg.Quick {
		qs = qs[:3]
	}
	s := &Series{
		Name:   "theorem4-scaling",
		Header: []string{"q", "n", "k", "edges_g", "edges_h", "edges_norm_n76", "cong_stretch", "n_pow_16"},
	}
	for _, q := range qs {
		inst, err := gen.Theorem4Affine(q)
		if err != nil {
			return nil, err
		}
		an, err := lowerbound.AnalyzeTheorem4(inst)
		if err != nil {
			return nil, err
		}
		nTotal := float64(inst.G.N())
		s.Rows = append(s.Rows, []string{
			itoa(q), itoa(inst.G.N()), itoa(inst.K), itoa(an.EdgesG), itoa(an.EdgesH),
			ftoa(float64(an.EdgesH) / math.Pow(nTotal, 7.0/6.0)),
			ftoa(an.MeasuredStretch),
			ftoa(math.Pow(nTotal, 1.0/6.0)),
		})
	}
	return s, nil
}

// AllSeries returns every scaling series.
func AllSeries(cfg Config) ([]*Series, error) {
	var out []*Series
	for _, f := range []func(Config) (*Series, error){ScalingTheorem2, ScalingTheorem3, ScalingTheorem4} {
		s, err := f(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.4f", v) }
