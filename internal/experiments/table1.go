package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// greedyMatchingOfEdges returns a maximal matching over the edges of g —
// the worst-case matching routing problem for a spanner of g (removed
// edges are forced onto detours).
func greedyMatchingOfEdges(g *graph.Graph) []graph.Edge {
	used := make([]bool, g.N())
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	return m
}

// routeMatchingOn routes a matching with the spanner's router, returning
// the routing and the router (for fallback stats).
func routeMatchingOn(sp *spanner.Spanner, m []graph.Edge, seed uint64) (*routing.Routing, *spanner.DetourRouter, error) {
	router := sp.Router(seed)
	paths, err := router.RouteMatching(m)
	if err != nil {
		return nil, nil, err
	}
	return &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}, router, nil
}

// Table1Theorem2 reproduces the Table 1 row "Theorem 2": on
// n^{2/3+ε}-regular expanders, a 3-distance spanner with O(n^{5/3}) edges,
// matching congestion 1+o(1) expected / O(log n) w.h.p., and general
// congestion O(log² n).
func Table1Theorem2(cfg Config) (*Result, error) {
	sizes := []struct{ n, d int }{{216, 60}, {343, 80}, {512, 96}, {729, 112}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "Δ", "ε", "λ", "|E(G)|", "|E(H)|", "E/n^{5/3}",
		"stretch≤3", "meanCong", "maxCong", "log2n", "permCongStretch", "log²n")
	var notes []string
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ uint64(sz.n))
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		lam, _ := spectral.Expansion(g, 300, r)
		eps := spanner.EpsilonForDegree(sz.n, sz.d)
		sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
			Epsilon: eps, Seed: cfg.Seed + uint64(sz.n), EnsureConnected: true,
			Trace: cfg.Trace})
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, sp.H, 3, cfg.Trace)

		// Matching congestion: route the maximal matching over G's edges.
		m := greedyMatchingOfEdges(g)
		rt, router, err := routeMatchingOn(sp, m, cfg.Seed+7)
		if err != nil {
			return nil, err
		}
		prof := cfg.nodeCongestionProfile(rt, sz.n)
		nonzero := make([]float64, 0, sz.n)
		maxC := 0
		for _, c := range prof {
			if c > 0 {
				nonzero = append(nonzero, float64(c))
			}
			if c > maxC {
				maxC = c
			}
		}
		meanC := stats.Summarize(nonzero).Mean

		// General routing: random permutation via shortest paths, then the
		// Theorem 1 substitution.
		prob := routing.RandomPermutationProblem(sz.n, r)
		onG, err := routing.ShortestPaths(g, prob)
		if err != nil {
			return nil, err
		}
		onH, _, err := routing.SubstituteViaMatchings(sz.n, onG, sp.Router(cfg.Seed+13))
		if err != nil {
			return nil, err
		}
		cG := cfg.nodeCongestion(onG, sz.n)
		cH := cfg.nodeCongestion(onH, sz.n)
		permStretch := float64(cH) / float64(cG)

		log2n := math.Log2(float64(sz.n))
		tb.AddRow(sz.n, sz.d, fmt.Sprintf("%.3f", eps), fmt.Sprintf("%.1f", lam),
			g.M(), sp.H.M(), float64(sp.H.M())/math.Pow(float64(sz.n), 5.0/3.0),
			fmt.Sprintf("viol=%d", rep.Violations), meanC, maxC, log2n,
			permStretch, log2n*log2n)
		if router.Fallbacks > 0 {
			notes = append(notes, fmt.Sprintf("n=%d: %d router fallbacks (of %d matching edges)",
				sz.n, router.Fallbacks, len(m)))
		}
	}
	body := tb.String() +
		"paper: edges O(n^{5/3}); stretch 3; matching congestion 1+o(1) mean, O(log n) max;\n" +
		"       permutation congestion stretch O(log² n)\n"
	if len(notes) > 0 {
		body += strings.Join(notes, "\n") + "\n"
	}
	return &Result{ID: "table1-thm2", Title: "Theorem 2 (expander DC-spanner)", Body: body}, nil
}

// Table1Theorem3 reproduces the Table 1 row "Theorem 3": Algorithm 1 on
// Δ-regular graphs with Δ ≥ n^{2/3}.
func Table1Theorem3(cfg Config) (*Result, error) {
	sizes := []struct{ n, d int }{{216, 40}, {343, 56}, {512, 72}, {729, 92}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "Δ", "Δ'", "|E(G)|", "|E(H)|", "E/(n^{5/3}log²n)",
		"reinsUnsup", "reinsNoDet", "stretch≤3", "matchCong", "1+2√Δ",
		"genCongStretch", "√Δ·log n")
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ (uint64(sz.n) << 1))
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		res, err := spanner.BuildRegular(g, spanner.DefaultRegularOptions(cfg.Seed+uint64(sz.n)))
		if err != nil {
			return nil, err
		}
		sp := res.Spanner
		rep := cfg.verifyEdgeStretch(g, sp.H, 3, cfg.Trace)

		m := greedyMatchingOfEdges(g)
		rt, _, err := routeMatchingOn(sp, m, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		matchCong := cfg.nodeCongestion(rt, sz.n)

		prob := routing.RandomPermutationProblem(sz.n, r)
		onG, err := routing.ShortestPaths(g, prob)
		if err != nil {
			return nil, err
		}
		onH, _, err := routing.SubstituteViaMatchings(sz.n, onG, sp.Router(cfg.Seed+19))
		if err != nil {
			return nil, err
		}
		genStretch := float64(cfg.nodeCongestion(onH, sz.n)) / float64(onG.NodeCongestion(sz.n))

		tb.AddRow(sz.n, sz.d, res.DeltaPrime, g.M(), sp.H.M(),
			float64(sp.H.M())/spanner.TheoremEdgeBound(sz.n),
			res.ReinsertedUnsupport, res.ReinsertedNoDetour,
			fmt.Sprintf("viol=%d", rep.Violations),
			matchCong, 1+2*math.Sqrt(float64(sz.d)),
			genStretch, math.Sqrt(float64(sz.d))*math.Log2(float64(sz.n)))
	}
	body := tb.String() +
		"paper: edges O(n^{5/3}·log²n); stretch 3; matching congestion ≤ 1+2√Δ (Lemma 17);\n" +
		"       general congestion stretch O(√Δ·log n) (Theorem 3)\n" +
		fmt.Sprintf("note: paper λ = 2⁷ln²n/c₁ ≈ %.0f at n=512 exceeds Δ'; practical thresholds per DESIGN.md\n",
			spanner.PaperLambda(512, 0.25))
	return &Result{ID: "table1-thm3", Title: "Theorem 3 (Algorithm 1, Δ-regular)", Body: body}, nil
}

// Table1KoutisXu reproduces the "[16]" row: uniform sparsification of an
// expander to O(n log n) edges, distance stretch O(log n), matching
// routing congestion polylog via Valiant routing.
func Table1KoutisXu(cfg Config) (*Result, error) {
	sizes := []struct{ n, d int }{{512, 64}, {1024, 64}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "Δ", "|E(G)|", "|E(H)|", "E/(n·log n)", "λ(G)", "λ(H)/Δ_H",
		"pairStretch", "log2n", "valiantCong", "log³n")
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ (uint64(sz.n) << 2))
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		lamG, _ := spectral.Expansion(g, 200, r)
		sp, err := spanner.SparsifyUniform(g, 3.0, cfg.Seed+uint64(sz.n))
		if err != nil {
			return nil, err
		}
		lamH, l1H := spectral.Expansion(sp.H, 200, r)
		pairRep := cfg.verifyPairStretch(g, sp.H, 300, r, cfg.Trace)

		// Matching routing problem solved on H by Valiant routing.
		m := greedyMatchingOfEdges(g)
		rt, err := routing.Valiant(sp.H, routing.MatchingProblem(m), r)
		if err != nil {
			return nil, err
		}
		cong := cfg.nodeCongestion(rt, sz.n)
		log2n := math.Log2(float64(sz.n))
		tb.AddRow(sz.n, sz.d, g.M(), sp.H.M(),
			float64(sp.H.M())/(float64(sz.n)*log2n),
			fmt.Sprintf("%.1f", lamG), fmt.Sprintf("%.2f", lamH/l1H),
			pairRep.MaxStretch, log2n, cong, log2n*log2n*log2n)
	}
	body := tb.String() +
		"paper row [16]: O(n log n) edges; distance stretch O(log n); congestion O(log⁴ n)\n" +
		"(uniform sampling stands in for Koutis–Xu; Valiant routing for Scheideler — DESIGN.md)\n"
	return &Result{ID: "table1-kx16", Title: "Table 1 row [16] (spectral sparsification)", Body: body}, nil
}

// Table1BoundedDegree reproduces the "[5]" row: from a dense expander
// (Δ = Ω(n)) extract an O(n)-edge bounded-degree expander.
func Table1BoundedDegree(cfg Config) (*Result, error) {
	sizes := []int{128, 256}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "Δ", "|E(G)|", "|E(H)|", "E/n", "maxDeg(H)", "λ(H)/Δ_H",
		"pairStretch", "log2n", "valiantCong", "log³n")
	for _, n := range sizes {
		r := rng.New(cfg.Seed ^ (uint64(n) << 3))
		g, err := gen.DenseExpander(n, 0.5, r)
		if err != nil {
			return nil, err
		}
		d, _ := g.IsRegular()
		sp, err := spanner.ExtractBoundedDegree(g, 5, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		lamH, l1H := spectral.Expansion(sp.H, 300, r)
		pairRep := cfg.verifyPairStretch(g, sp.H, 300, r, cfg.Trace)
		m := greedyMatchingOfEdges(g)
		rt, err := routing.Valiant(sp.H, routing.MatchingProblem(m), r)
		if err != nil {
			return nil, err
		}
		log2n := math.Log2(float64(n))
		tb.AddRow(n, d, g.M(), sp.H.M(), float64(sp.H.M())/float64(n),
			sp.H.MaxDegree(), fmt.Sprintf("%.2f", lamH/l1H),
			pairRep.MaxStretch, log2n, cfg.nodeCongestion(rt, n), log2n*log2n*log2n)
	}
	body := tb.String() +
		"paper row [5]: O(n) edges from Δ=Ω(n) expanders; stretch O(log n); congestion O(log³ n)\n"
	return &Result{ID: "table1-bd5", Title: "Table 1 row [5] (bounded-degree extraction)", Body: body}, nil
}
