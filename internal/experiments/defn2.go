package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// Definition2Beta measures the congestion stretch of Definition 2
// directly: β = C_H(R) / C_G(R), where both sides are (approximately)
// OPTIMAL congestions computed by the exponential-potential min-congestion
// solver — not the congestion of any particular substitute routing. This
// is the quantity the DC-spanner definition actually bounds; the
// Theorem 1 pipeline's substitute congestion (reported by the other
// experiments) is an upper bound on it.
func Definition2Beta(cfg Config) (*Result, error) {
	n, d := 216, 60
	if cfg.Quick {
		n, d = 125, 40
	}
	r := rng.New(cfg.Seed ^ 0xdef2)
	g := gen.MustRandomRegular(n, d, r)

	dc, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
		Epsilon: spanner.EpsilonForDegree(n, d), Seed: cfg.Seed + 31, EnsureConnected: true})
	if err != nil {
		return nil, err
	}
	gr := spanner.Greedy(g, 3)

	type problem struct {
		name string
		prob routing.Problem
		// exactCG is set when the optimum on G is known by construction.
		exactCG int
	}
	m := greedyMatchingOfEdges(g)
	problems := []problem{
		{name: "matching(edges)", prob: routing.MatchingProblem(m), exactCG: 1},
		{name: fmt.Sprintf("random(k=%d)", n), prob: routing.RandomProblem(n, n, r)},
		{name: "permutation", prob: routing.RandomPermutationProblem(n, r)},
	}

	tb := stats.NewTable("problem", "C_G(R)", "C_H(R) DC", "β DC", "C_H(R) greedy", "β greedy")
	for _, p := range problems {
		cG := p.exactCG
		if cG == 0 {
			rt, err := routing.MinCongestion(g, p.prob, routing.MinCongestionOptions{Seed: cfg.Seed + 41})
			if err != nil {
				return nil, err
			}
			cG = cfg.nodeCongestion(rt, n)
		}
		rtDC, err := routing.MinCongestion(dc.H, p.prob, routing.MinCongestionOptions{Seed: cfg.Seed + 42})
		if err != nil {
			return nil, err
		}
		rtGr, err := routing.MinCongestion(gr.H, p.prob, routing.MinCongestionOptions{Seed: cfg.Seed + 43})
		if err != nil {
			return nil, err
		}
		cDC := cfg.nodeCongestion(rtDC, n)
		cGr := cfg.nodeCongestion(rtGr, n)
		tb.AddRow(p.name, cG, cDC, float64(cDC)/float64(cG), cGr, float64(cGr)/float64(cG))
	}
	body := tb.String() +
		"paper (Definition 2): β compares OPTIMAL congestions C_H(R)/C_G(R); measured here\n" +
		"with the min-congestion solver on both graphs. The DC-spanner's β stays small on\n" +
		"every problem class, while the distance-only greedy spanner's β explodes on the\n" +
		"matching problem — Definition 2 separating the two constructions directly.\n"
	return &Result{ID: "defn2-beta", Title: "Definition 2 (optimal congestion stretch β)", Body: body}, nil
}
