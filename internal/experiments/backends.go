package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// OracleBackends surveys the serving layer's pluggable distance-oracle
// backends across instance families: for each family it runs the startup
// auto-tuner twice — once at the default 128 MiB memory budget and once
// at a deliberately tight 80 KiB budget — and tabulates every candidate's
// realized memory, declared stretch bound, and whether the tuner picked
// or skipped it. The memory and stretch columns are deterministic; the
// *picks* are timing-based (the tuner serves the fastest candidate within
// budget), so this experiment is excluded from the byte-identity
// determinism pins — on small instances the exact table wins the default
// budget essentially always, and the tight budget forces the fallback
// order the decision rule promises.
func OracleBackends(cfg Config) (*Result, error) {
	type family struct {
		name  string
		g     *graph.Graph
		h     *graph.Graph // nil: query the graph itself (alpha 1)
		alpha int
	}

	nReg, dReg := 343, 80
	mMarg, dCube := 32, 10
	if cfg.Quick {
		nReg, dReg = 216, 60
		mMarg, dCube = 16, 8
	}
	gReg := gen.MustRandomRegular(nReg, dReg, rng.New(cfg.Seed^0xbac0))
	sp, err := spanner.BuildExpander(gReg, spanner.ExpanderOptions{
		Epsilon: spanner.EpsilonForDegree(nReg, dReg), Seed: cfg.Seed + 1,
		EnsureConnected: true})
	if err != nil {
		return nil, err
	}
	families := []family{
		{"thm2-spanner", gReg, sp.H, 3},
		{"margulis", gen.Margulis(mMarg), nil, 1},
		{"hypercube", gen.Hypercube(dCube), nil, 1},
	}

	const tightBudget = int64(80) << 10
	tb := stats.NewTable("family", "n", "|E(H)|", "backend", "memKiB", "bound", "pick", "pick@80KiB")
	for _, f := range families {
		h := f.h
		if h == nil {
			h = f.g
		}
		base := oracle.Options{
			Backend: oracle.BackendAuto, Seed: cfg.Seed, Workers: 1,
			CacheSize: -1, SampleEvery: -1, TunerProbes: 512,
		}
		tight := base
		tight.MemoryBudget = tightBudget
		oDef, err := oracle.NewFromGraphs(f.g, h, f.alpha, base)
		if err != nil {
			return nil, fmt.Errorf("%s default budget: %w", f.name, err)
		}
		oTight, err := oracle.NewFromGraphs(f.g, h, f.alpha, tight)
		if err != nil {
			return nil, fmt.Errorf("%s tight budget: %w", f.name, err)
		}
		defRep, tightRep := oDef.TunerReport(), oTight.TunerReport()
		tightBy := make(map[string]oracle.TunerChoice, len(tightRep.Candidates))
		for _, c := range tightRep.Candidates {
			tightBy[c.Name] = c
		}
		for _, c := range defRep.Candidates {
			tightCell := " "
			if tc, ok := tightBy[c.Name]; ok {
				switch {
				case tc.Skipped != "":
					tightCell = "skip"
				case tc.Name == tightRep.Chosen:
					tightCell = "*"
				}
			}
			defCell := " "
			if c.Name == defRep.Chosen {
				defCell = "*"
			}
			tb.AddRow(f.name, h.N(), h.M(), c.Name,
				float64(c.MemoryBytes)/1024, c.StretchBound, defCell, tightCell)
		}
	}

	body := tb.String() +
		"memKiB and bound (the declared stretch bound) are deterministic per\n" +
		"(family, seed); the pick columns are the timing-based tuner verdicts\n" +
		"(default 128MiB budget vs a tight 80KiB budget) and may vary across\n" +
		"hosts, so this experiment carries no\n" +
		"byte-identity pin. The tight budget evicts the exact table and demonstrates\n" +
		"the fallback order: sparse-hub where its bunches fit, else landmark-bibfs\n" +
		"(never skipped — it is the bounded-memory floor).\n" +
		"paper: the oracle is serving machinery beyond the paper's scope, but the\n" +
		"sparse-hub backend's stretch≤3 contract is the same α=3 distance-stretch\n" +
		"regime as Theorem 2, realized by Thorup–Zwick bunches instead of spanner\n" +
		"edges; the harness (dccheck) enforces each declared bound per backend.\n"
	return &Result{ID: "oracle-backends", Title: "Distance-oracle backend survey and auto-tuner decisions", Body: body}, nil
}
