// Package experiments implements the reproduction harness: one runnable
// experiment per table row and figure of the paper (see DESIGN.md §3 for
// the index). Each experiment builds its workload, runs the relevant
// construction, measures edge counts / distance stretch / congestion
// stretch, and renders a paper-vs-measured table.
//
// Measurement (not construction) is where the harness spends most of its
// time, so the stretch and congestion sweeps run on the worker-pool
// kernels of internal/graph and internal/routing, sized by Config.Workers.
// Rendered reports are byte-identical for every worker count at a fixed
// seed (see the Config.Workers godoc and DESIGN.md §9); internal/bench
// times the same kernels in isolation.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Config controls experiment sizes and the measurement worker pool.
type Config struct {
	// Seed drives all randomness; equal seeds give identical reports.
	Seed uint64
	// Quick shrinks instance sizes for CI/benchmark runs.
	Quick bool
	// Trace, when non-nil, receives one span per experiment (RunAll) and
	// the construction phase spans of runners that thread it further down
	// (e.g. Table1Theorem2's expander builds). Nil disables tracing.
	Trace *obs.Span
	// Workers sizes the worker pool of the measurement kernels — the
	// multi-source BFS stretch sweeps and the node-congestion accounting.
	// 0 means all cores (GOMAXPROCS), 1 forces the serial path.
	//
	// Determinism guarantee: for a fixed Seed the rendered reports are
	// byte-identical for every Workers value. All random choices —
	// including sampled sources and pairs, which are drawn without
	// replacement — are made serially before any parallel sweep starts,
	// and every sweep writes only per-index result slots merged
	// order-independently (see DESIGN.md §9).
	Workers int
	// Metrics, when non-nil, receives kernel telemetry: the workers gauge
	// and per-sweep counters (see NewMetrics). Nil records nothing.
	Metrics *Metrics
}

// Result is a rendered experiment report.
type Result struct {
	ID    string
	Title string
	Body  string // rendered tables + notes
}

func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	b.WriteString(r.Body)
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Config) (*Result, error)

// registry maps experiment ids to runners, in presentation order.
var registry = []struct {
	ID     string
	Runner Runner
}{
	{"table1-thm2", Table1Theorem2},
	{"table1-thm3", Table1Theorem3},
	{"table1-kx16", Table1KoutisXu},
	{"table1-bd5", Table1BoundedDegree},
	{"table1-thm4", Table1Theorem4},
	{"fig1-vft", Figure1VFT},
	{"fig2-matching", Figure2Matching},
	{"fig34-detours", Figure34Detours},
	{"lemma2", Lemma2Separation},
	{"thm1-decompose", Theorem1Decompose},
	{"cor3-local", Corollary3Local},
	{"ablate-detour", AblateDetour},
	{"ablate-support", AblateSupport},
	{"ablate-epsilon", AblateEpsilon},
	{"ablate-coloring", AblateColoring},
	{"packet-latency", PacketLatency},
	{"irregular", IrregularDegrees},
	{"section8-stretch", Section8Stretch},
	{"fault-tolerance", FaultTolerance},
	{"seed-variance", SeedVariance},
	{"defn2-beta", Definition2Beta},
	{"oracle-backends", OracleBackends},
}

// IDs returns the known experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Lookup returns the runner for an id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner, true
		}
	}
	return nil, false
}

// RunAll executes every experiment, returning results in order and the
// first error encountered per experiment inline in its body (so a single
// failing experiment does not hide the others). With cfg.Trace set, each
// experiment runs under its own child span (named by its id) so the
// runner's phase tree shows where a slow sweep spends its time.
func RunAll(cfg Config) []*Result {
	cfg.Metrics.setWorkers(cfg.resolvedWorkers())
	out := make([]*Result, 0, len(registry))
	for _, e := range registry {
		ecfg := cfg
		esp := cfg.Trace.Start(e.ID)
		ecfg.Trace = esp
		res, err := e.Runner(ecfg)
		if err != nil {
			res = &Result{ID: e.ID, Title: "FAILED", Body: "error: " + err.Error() + "\n"}
			esp.SetKV("failed", err.Error())
		}
		esp.End()
		out = append(out, res)
	}
	return out
}
