package experiments

import (
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// Metrics is the experiment harness's kernel-level telemetry: how many
// parallel stretch sweeps and congestion accountings ran, how many units
// (edges, pairs, paths) they covered, and the worker-pool size in use.
// All fields are registered on one obs.Registry so cmd/dcbench and the
// debug endpoint render them from a single snapshot. A nil *Metrics is
// valid and records nothing, so the harness threads it unconditionally.
type Metrics struct {
	workers          *obs.Gauge
	stretchSweeps    *obs.Counter
	stretchUnits     *obs.Counter
	congestionSweeps *obs.Counter
	congestionPaths  *obs.Counter
}

// NewMetrics registers the eval_* metric family on reg and returns the
// handle the Config threads through the measurement kernels.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{}
	m.workers = reg.Gauge("eval_workers",
		"Worker-pool size used by the evaluation kernels (0 was resolved to GOMAXPROCS).")
	m.stretchSweeps = reg.Counter("eval_stretch_sweeps",
		"Parallel stretch sweeps (edge or pair) executed.")
	m.stretchUnits = reg.Counter("eval_stretch_units",
		"Edges plus sampled pairs measured by stretch sweeps.")
	m.congestionSweeps = reg.Counter("eval_congestion_sweeps",
		"Parallel node-congestion accountings executed.")
	m.congestionPaths = reg.Counter("eval_congestion_paths",
		"Paths swept by node-congestion accountings.")
	return m
}

// setWorkers records the resolved worker-pool size.
func (m *Metrics) setWorkers(w int) {
	if m == nil {
		return
	}
	m.workers.Set(float64(w))
}

func (m *Metrics) observeStretch(rep spanner.StretchReport) {
	if m == nil {
		return
	}
	m.stretchSweeps.Inc()
	m.stretchUnits.Add(int64(rep.Checked))
}

func (m *Metrics) observeCongestion(paths int) {
	if m == nil {
		return
	}
	m.congestionSweeps.Inc()
	m.congestionPaths.Add(int64(paths))
}

// resolvedWorkers is the worker count the kernels will actually use for
// cfg.Workers (0 means all cores).
func (cfg Config) resolvedWorkers() int {
	if cfg.Workers <= 0 {
		return graph.Workers()
	}
	return cfg.Workers
}

// verifyOpts assembles the spanner kernel options for a sweep traced
// under sp (usually the experiment's own span).
func (cfg Config) verifyOpts(sp *obs.Span) spanner.VerifyOptions {
	return spanner.VerifyOptions{Workers: cfg.Workers, Trace: sp}
}

// verifyEdgeStretch runs the parallel per-edge stretch sweep with the
// config's worker pool, tracing into sp and feeding cfg.Metrics.
func (cfg Config) verifyEdgeStretch(g, h *graph.Graph, alpha int, sp *obs.Span) spanner.StretchReport {
	rep := spanner.VerifyEdgeStretchOpts(g, h, alpha, cfg.verifyOpts(sp))
	cfg.Metrics.observeStretch(rep)
	return rep
}

// verifyPairStretch runs the parallel sampled-pair stretch sweep. The
// sample is drawn from r without replacement before the sweep starts, so
// the report is identical for every cfg.Workers value at a fixed RNG
// state (see spanner.VerifyPairStretchOpts).
func (cfg Config) verifyPairStretch(g, h *graph.Graph, pairs int, r *rng.RNG, sp *obs.Span) spanner.StretchReport {
	rep := spanner.VerifyPairStretchOpts(g, h, pairs, r, cfg.verifyOpts(sp))
	cfg.Metrics.observeStretch(rep)
	return rep
}

// nodeCongestion computes C(P) on the config's worker pool.
func (cfg Config) nodeCongestion(rt *routing.Routing, n int) int {
	cfg.Metrics.observeCongestion(len(rt.Paths))
	return rt.NodeCongestionWorkers(n, cfg.Workers)
}

// nodeCongestionProfile computes the per-vertex congestion profile on the
// config's worker pool.
func (cfg Config) nodeCongestionProfile(rt *routing.Routing, n int) []int {
	cfg.Metrics.observeCongestion(len(rt.Paths))
	return rt.NodeCongestionProfileWorkers(n, cfg.Workers)
}
