package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/spanner"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// Table1Theorem4 reproduces the lower-bound row: the composite fan graph
// whose optimal 3-distance spanner has Ω(n^{7/6}) edges and congestion
// stretch Ω(n^{1/6}).
func Table1Theorem4(cfg Config) (*Result, error) {
	qs := []int{7, 11, 13}
	if cfg.Quick {
		qs = qs[:1]
	}
	tb := stats.NewTable("q", "n=|V|", "k", "|E(G)|", "|E(H)|", "E_H/n^{7/6}",
		"stretch≤3", "C_G", "C_H", "betaPaper=(2k-1)/4", "n^{1/6}")
	for _, q := range qs {
		inst, err := gen.Theorem4Affine(q)
		if err != nil {
			return nil, err
		}
		an, err := lowerbound.AnalyzeTheorem4(inst)
		if err != nil {
			return nil, err
		}
		if err := an.Verify(); err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(inst.G, an.H, 3, cfg.Trace)
		n := float64(inst.G.N())
		tb.AddRow(q, inst.G.N(), inst.K, an.EdgesG, an.EdgesH,
			float64(an.EdgesH)/math.Pow(n, 7.0/6.0),
			fmt.Sprintf("viol=%d", rep.Violations),
			an.CongestionG, an.CongestionH, an.PaperBetaBound, math.Pow(n, 1.0/6.0))
	}
	body := tb.String() +
		"paper: any optimal-size 3-distance spanner has Ω(n^{7/6}) edges and is a\n" +
		"       (3, Ω(n^{1/6}))-DC-spanner; measured C_H = k per Lemma 18's forced routing\n"
	return &Result{ID: "table1-thm4", Title: "Theorem 4 (lower bound)", Body: body}, nil
}

// Figure1VFT reproduces the Figure 1 counterexample: an f-VFT-style
// spanner of the clique–matching graph has matching-routing congestion
// Ω(n^{2/3}).
func Figure1VFT(cfg Config) (*Result, error) {
	sizes := []int{64, 216, 512}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "f=⌈n^{1/3}⌉", "keptMatch", "C_G", "C_H", "n^{2/3}/2", "stretch≤3")
	for _, n := range sizes {
		an, err := lowerbound.AnalyzeVFT(n)
		if err != nil {
			return nil, err
		}
		if err := an.Verify(); err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(an.G, an.H, 3, cfg.Trace)
		tb.AddRow(n, an.F, an.F+1, an.CongestionG, an.CongestionH,
			math.Pow(float64(n), 2.0/3.0)/2,
			fmt.Sprintf("viol=%d", rep.Violations))
	}
	body := tb.String() +
		"paper (Fig. 1): keeping only ⌈n^{1/3}⌉+1 matching edges forces congestion Ω(n^{2/3})\n" +
		"on some kept endpoint, even though the spanner is fault-tolerant and 3-stretch.\n"
	return &Result{ID: "fig1-vft", Title: "Figure 1 (f-VFT spanner congestion)", Body: body}, nil
}

// Figure2Matching reproduces the Lemma 4 / Figure 2 measurement: maximum
// matchings between neighborhoods of vertex pairs on expanders.
func Figure2Matching(cfg Config) (*Result, error) {
	sizes := []struct{ n, d int }{{128, 64}, {216, 108}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("graph", "n", "Δ", "λ", "pairs", "minM(disjoint)", "minM(bipartite)",
		"Lemma4 bound Δ(1-λn/Δ²)")
	measure := func(name string, g *graph.Graph, lam float64, r *rng.RNG) {
		n := g.N()
		d, _ := g.IsRegular()
		bound := spanner.Lemma4Bound(n, d, lam)
		// 30 distinct pairs, drawn without replacement before the
		// measurement loop: no pair's matching is counted twice, and the
		// sampled set does not depend on how the loop is scheduled.
		ps := r.SamplePairs(n, 30)
		minDisjoint, minBip := math.Inf(1), math.Inf(1)
		for _, p := range ps {
			u, v := p[0], p[1]
			if m := float64(len(spanner.NeighborhoodMatching(g, u, v))); m < minDisjoint {
				minDisjoint = m
			}
			if m := float64(spanner.NeighborhoodMatchingBipartite(g, u, v)); m < minBip {
				minBip = m
			}
		}
		tb.AddRow(name, n, d, fmt.Sprintf("%.1f", lam), len(ps), minDisjoint, minBip, bound)
	}
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ (uint64(sz.n) << 4))
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		lam, _ := spectral.Expansion(g, 300, r)
		measure("random-regular", g, lam, r)
	}
	// Deterministic row: the Paley graph has λ = (√q+1)/2 in closed form,
	// so this row's bound carries no estimation error at all.
	q := 109
	if cfg.Quick {
		q = 61
	}
	pg, err := gen.Paley(q)
	if err != nil {
		return nil, err
	}
	measure("paley", pg, (math.Sqrt(float64(q))+1)/2, rng.New(cfg.Seed^0x9a1e))
	body := tb.String() +
		"paper (Lemma 4 / Fig. 2): every pair has a neighborhood matching of size ≥ Δ(1−λn/Δ²).\n" +
		"minM(bipartite) is Lemma 4's exact quantity (shared neighbors may serve both sides,\n" +
		"as in the mixing-lemma argument) and meets the bound; the node-disjoint variant\n" +
		"(Edmonds blossom) trails it by at most the neighborhood overlap.\n"
	return &Result{ID: "fig2-matching", Title: "Figure 2 / Lemma 4 (neighborhood matchings)", Body: body}, nil
}

// Figure34Detours reproduces the Figures 3–4 census: (a,b)-supported
// edges and 3-detour availability before/after sampling.
func Figure34Detours(cfg Config) (*Result, error) {
	sz := struct{ n, d int }{216, 60}
	if cfg.Quick {
		sz = struct{ n, d int }{125, 40}
	}
	r := rng.New(cfg.Seed ^ 0xf34)
	g := gen.MustRandomRegular(sz.n, sz.d, r)
	res, err := spanner.BuildRegular(g, spanner.DefaultRegularOptions(cfg.Seed+3))
	if err != nil {
		return nil, err
	}
	// Sweep the support threshold a around the expected number of common
	// neighbors Δ²/n, where the supported fraction transitions from 1 to 0
	// (the census the Figures 3–4 definitions are about).
	cn := sz.d * sz.d / sz.n
	tb := stats.NewTable("a", "b", "supported/total", "a/(Δ²/n)")
	for _, mult := range []float64{0.25, 0.5, 1, 1.25, 1.5, 2} {
		a := int(mult * float64(cn))
		if a < 1 {
			a = 1
		}
		b := sz.d / 4
		if b < 1 {
			b = 1
		}
		sup := spanner.SupportedEdges(g, a, b)
		count := 0
		for _, s := range sup {
			if s {
				count++
			}
		}
		tb.AddRow(a, b, fmt.Sprintf("%d/%d", count, g.M()), mult)
	}
	// Detour availability for removed supported edges in G'.
	removedWith, removedTotal := 0, 0
	gp := res.GPrime
	for _, e := range g.Edges() {
		if gp.HasEdge(e.U, e.V) {
			continue
		}
		removedTotal++
		if spanner.CountThreeDetours(gp, e.U, e.V) > 0 {
			removedWith++
		}
	}
	body := tb.String() + fmt.Sprintf(
		"removed edges with ≥1 3-detour in G': %d/%d (Δ'=%d, ρ=%.3f)\n"+
			"paper (Figs. 3–4): (a,b)-supported edges admit a·b 3-detours; unsupported or\n"+
			"detourless removed edges are reinserted (here: %d unsupported, %d detourless)\n",
		removedWith, removedTotal, res.DeltaPrime, res.Rho,
		res.ReinsertedUnsupport, res.ReinsertedNoDetour)
	return &Result{ID: "fig34-detours", Title: "Figures 3–4 (supported edges & 3-detours)", Body: body}, nil
}
