package experiments

import (
	"testing"

	"repro/internal/obs"
)

// The harness-level determinism guarantee (Config.Workers godoc): for a
// fixed seed, rendered experiment reports are byte-identical for every
// worker count. Cover the Table 1 stretch/congestion measurements — the
// rows that exercise the edge-stretch sweep, the sampled-pair sweep, and
// the parallel congestion accounting — plus the packet simulator's
// accounting path.
func TestReportsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment sweep")
	}
	ids := []string{"table1-thm2", "table1-kx16", "table1-thm4", "packet-latency"}
	for _, id := range ids {
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		base, err := run(Config{Seed: 42, Quick: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s workers=1: %v", id, err)
		}
		for _, workers := range []int{0, 2, 4} {
			got, err := run(Config{Seed: 42, Quick: true, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			if got.Body != base.Body {
				t.Errorf("%s: report differs between workers=1 and workers=%d:\n--- workers=1\n%s--- workers=%d\n%s",
					id, workers, base.Body, workers, got.Body)
			}
		}
	}
}

// Metrics plumbing: a run with a registry attached records the workers
// gauge and nonzero sweep counters without perturbing the report.
func TestMetricsRecordKernelActivity(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Seed: 42, Quick: true, Workers: 2, Metrics: NewMetrics(reg)}
	cfg.Metrics.setWorkers(cfg.resolvedWorkers())
	run, _ := Lookup("table1-thm2")
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["eval_workers"]; got != 2 {
		t.Errorf("eval_workers gauge = %v, want 2", got)
	}
	if snap.Counters["eval_stretch_sweeps"] == 0 {
		t.Error("eval_stretch_sweeps stayed zero across a Table 1 run")
	}
	if snap.Counters["eval_congestion_paths"] == 0 {
		t.Error("eval_congestion_paths stayed zero across a Table 1 run")
	}
}
