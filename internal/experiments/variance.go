package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// SeedVariance re-runs the two headline constructions across independent
// seeds and reports the distribution of the key metrics, quantifying how
// much of the reproduction is seed noise. The theorems are w.h.p.
// statements; tight distributions here are what "w.h.p." looks like at
// fixed n.
func SeedVariance(cfg Config) (*Result, error) {
	n, d := 343, 80
	runs := 10
	if cfg.Quick {
		n, d = 216, 60
		runs = 4
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0x5eed))
	m := greedyMatchingOfEdges(g)

	edges2 := make([]float64, 0, runs)
	cong2 := make([]float64, 0, runs)
	viol2 := 0
	for s := 0; s < runs; s++ {
		sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
			Epsilon: spanner.EpsilonForDegree(n, d), Seed: cfg.Seed + uint64(s) + 1,
			EnsureConnected: true})
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, sp.H, 3, cfg.Trace)
		viol2 += rep.Violations
		rt, _, err := routeMatchingOn(sp, m, cfg.Seed+uint64(s)+100)
		if err != nil {
			return nil, err
		}
		edges2 = append(edges2, float64(sp.H.M()))
		cong2 = append(cong2, float64(cfg.nodeCongestion(rt, n)))
	}

	dReg := d * 7 / 10 // Theorem 3 degree choice for the same n
	if (n*dReg)%2 != 0 {
		dReg++
	}
	gReg := gen.MustRandomRegular(n, dReg, rng.New(cfg.Seed^0x5eee))
	mReg := greedyMatchingOfEdges(gReg)
	edges3 := make([]float64, 0, runs)
	cong3 := make([]float64, 0, runs)
	viol3 := 0
	for s := 0; s < runs; s++ {
		res, err := spanner.BuildRegular(gReg, spanner.DefaultRegularOptions(cfg.Seed+uint64(s)+1))
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(gReg, res.Spanner.H, 3, cfg.Trace)
		viol3 += rep.Violations
		rt, _, err := routeMatchingOn(res.Spanner, mReg, cfg.Seed+uint64(s)+200)
		if err != nil {
			return nil, err
		}
		edges3 = append(edges3, float64(res.Spanner.H.M()))
		cong3 = append(cong3, float64(cfg.nodeCongestion(rt, n)))
	}

	tb := stats.NewTable("construction", "runs", "metric", "min", "mean", "max", "sd")
	addRows := func(name string, xs []float64, metric string) {
		s := stats.Summarize(xs)
		tb.AddRow(name, s.N, metric, s.Min, s.Mean, s.Max, s.StdDev)
	}
	addRows("theorem2", edges2, "|E(H)|")
	addRows("theorem2", cong2, "matchCong")
	addRows("theorem3", edges3, "|E(H)|")
	addRows("theorem3", cong3, "matchCong")

	body := tb.String() + fmt.Sprintf(
		"stretch-3 violations across all %d runs: theorem2=%d theorem3=%d\n"+
			"paper: both theorems are w.h.p. statements; at fixed n this shows up as tight\n"+
			"metric distributions and zero violations across independent seeds.\n",
		2*runs, viol2, viol3)
	return &Result{ID: "seed-variance", Title: "Seed variance of the headline constructions", Body: body}, nil
}
