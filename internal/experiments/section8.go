package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// Section8Stretch explores the paper's open problem (§8): "increase the
// distance stretches for the spectral expanders and regular graphs; this
// may give better congestion bounds." We sweep the sampling probability
// well past the Theorem 2 regime and route removed matching edges over
// uniformly random shortest paths (SPRouter) instead of 3-hop detours,
// charting the stretch / size / congestion frontier.
func Section8Stretch(cfg Config) (*Result, error) {
	n, d := 343, 80
	if cfg.Quick {
		n, d = 216, 60
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0x58))
	m := greedyMatchingOfEdges(g)
	tb := stats.NewTable("p", "|E(H)|", "E/|E(G)|", "maxStretch", "meanStretch", "matchCong")
	// Below p ≈ 1/d the sampled graph has isolated vertices w.h.p.
	// ((1−p)^Δ·n ≫ 1), so the sweep stops around 2/Δ…
	for _, p := range []float64{0.6, 0.4, 0.25, 0.15, 0.1} {
		sp, err := spanner.BuildExpanderK(g, p, cfg.Seed+uint64(p*1000))
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, sp.H, 3, cfg.Trace) // alpha param only sets the "violation" line
		router := spanner.NewSPRouter(sp.H, cfg.Seed+13)
		paths, err := router.RouteMatching(m)
		if err != nil {
			return nil, err
		}
		rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
		tb.AddRow(p, sp.H.M(), sp.EdgeRatio(), rep.MaxStretch,
			fmt.Sprintf("%.2f", rep.MeanStretch), cfg.nodeCongestion(rt, n))
	}
	body := tb.String() +
		"paper §8 (open): trading distance stretch for congestion. With uniform random\n" +
		"shortest-path replacement, sampling far below the Theorem 2 rate keeps matching\n" +
		"congestion small while the distance stretch grows from 3 toward the sampled\n" +
		"graph's diameter — the frontier the open problem asks about.\n"
	return &Result{ID: "section8-stretch", Title: "Exploration: stretch vs congestion frontier (§8)", Body: body}, nil
}

// FaultTolerance contrasts DC-spanners with the f-VFT spanners of the
// related-work discussion (Figure 1): after failing f random vertices, how
// much of the surviving demand keeps a 3-hop substitute, and what
// congestion does the surviving matching incur?
func FaultTolerance(cfg Config) (*Result, error) {
	n, d := 343, 80
	if cfg.Quick {
		n, d = 216, 60
	}
	r := rng.New(cfg.Seed ^ 0xf7)
	g := gen.MustRandomRegular(n, d, r)
	sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
		Epsilon: spanner.EpsilonForDegree(n, d), Seed: cfg.Seed + 21, EnsureConnected: true})
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("f (failed)", "survivingEdges", "within3", "within5", "disconnected", "matchCong")
	for _, f := range []int{0, int(math.Cbrt(float64(n))), n / 16, n / 8} {
		failed := make(map[int32]bool, f)
		for _, v := range r.Sample(n, f) {
			failed[int32(v)] = true
		}
		// Residual graphs G∖F and H∖F: keep all vertices, drop edges
		// touching failures, and only measure surviving demands.
		drop := func(e graph.Edge) bool { return !failed[e.U] && !failed[e.V] }
		gRes := g.FilterEdges(drop)
		hRes := sp.H.FilterEdges(drop)

		within3, within5, disc, total := 0, 0, 0, 0
		scratch := graph.NewBFSScratch(n)
		var m []graph.Edge
		used := make(map[int32]bool)
		for _, e := range gRes.Edges() {
			total++
			switch dist := scratch.DistWithin(hRes, e.U, e.V, 5); {
			case dist == graph.Unreachable:
				disc++
			case dist <= 3:
				within3++
				within5++
			default:
				within5++
			}
			if !used[e.U] && !used[e.V] {
				used[e.U] = true
				used[e.V] = true
				m = append(m, e)
			}
		}
		router := &spanner.DetourRouter{H: hRes, Primary: hRes, RNG: rng.New(cfg.Seed + 22)}
		cong := -1
		if paths, err := router.RouteMatching(m); err == nil {
			rt := &routing.Routing{Problem: routing.MatchingProblem(m), Paths: paths}
			cong = cfg.nodeCongestion(rt, n)
		}
		tb.AddRow(f, total, fmt.Sprintf("%d/%d", within3, total),
			fmt.Sprintf("%d/%d", within5, total), disc, cong)
	}
	body := tb.String() +
		"paper (related work / Fig. 1): f-VFT spanners guarantee residual stretch but not\n" +
		"congestion. The Theorem 2 DC-spanner is not designed for faults, yet random edge\n" +
		"sampling keeps most surviving demands within 3 hops after moderate failures, and\n" +
		"the surviving matching's congestion stays near the fault-free level.\n"
	return &Result{ID: "fault-tolerance", Title: "Exploration: vertex failures on the DC-spanner", Body: body}, nil
}
