package experiments

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/packetsim"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// AblateDetour quantifies the EnsureDetour reinsertion step of Algorithm 1
// (the paper's prose reinsertion rule vs. the bare Algorithm 1 listing):
// without it, removed supported edges may lose all 3-detours at practical
// n and the 3-stretch guarantee becomes probabilistic.
func AblateDetour(cfg Config) (*Result, error) {
	n, d := 343, 56
	if cfg.Quick {
		n, d = 216, 40
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0xab1))
	tb := stats.NewTable("EnsureDetour", "|E(H)|", "reinsNoDet", "stretchViol", "maxStretch", "matchCong")
	for _, ensure := range []bool{true, false} {
		opts := spanner.DefaultRegularOptions(cfg.Seed + 1)
		opts.EnsureDetour = ensure
		res, err := spanner.BuildRegular(g, opts)
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, res.Spanner.H, 3, cfg.Trace)
		m := greedyMatchingOfEdges(g)
		rt, _, err := routeMatchingOn(res.Spanner, m, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		tb.AddRow(ensure, res.Spanner.H.M(), res.ReinsertedNoDetour,
			rep.Violations, rep.MaxStretch, cfg.nodeCongestion(rt, n))
	}
	body := tb.String() +
		"EnsureDetour=true is the paper's reinsertion prose (stretch 3 becomes\n" +
		"deterministic); false is the bare Algorithm 1 listing, whose stretch guarantee\n" +
		"is w.h.p. only — at laptop n the difference is visible as violations.\n"
	return &Result{ID: "ablate-detour", Title: "Ablation: EnsureDetour reinsertion", Body: body}, nil
}

// AblateSupport sweeps the (a, b) support thresholds of Algorithm 1,
// exposing the size/congestion trade-off the constants c₁ and λ control.
func AblateSupport(cfg Config) (*Result, error) {
	n, d := 343, 56
	if cfg.Quick {
		n, d = 216, 40
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0xab2))
	// The supported fraction transitions where the threshold a crosses the
	// expected common-neighbor count Δ²/n; sweep across that point so the
	// size/reinsertion trade-off is visible.
	cn := d * d / n
	tb := stats.NewTable("a", "b", "supported", "|E(H)|", "edgeRatio", "matchCong", "stretchViol")
	for _, mult := range []float64{0.25, 0.75, 1.0, 1.25, 1.5, 2.0} {
		opts := spanner.DefaultRegularOptions(cfg.Seed + 3)
		opts.SupportA = int(mult * float64(cn))
		if opts.SupportA < 1 {
			opts.SupportA = 1
		}
		res, err := spanner.BuildRegular(g, opts)
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, res.Spanner.H, 3, cfg.Trace)
		m := greedyMatchingOfEdges(g)
		rt, _, err := routeMatchingOn(res.Spanner, m, cfg.Seed+4)
		if err != nil {
			return nil, err
		}
		tb.AddRow(res.SupportA, res.SupportB, res.SupportedCount, res.Spanner.H.M(),
			res.Spanner.EdgeRatio(), cfg.nodeCongestion(rt, n), rep.Violations)
	}
	body := tb.String() +
		"paper constants: c₁ and λ control these thresholds. Larger a/b mark fewer edges supported → more unconditional reinsertion\n" +
		"(denser H, lower congestion); smaller thresholds trust detours more (sparser H).\n"
	return &Result{ID: "ablate-support", Title: "Ablation: (a,b)-support thresholds", Body: body}, nil
}

// AblateEpsilon sweeps Theorem 2's sampling exponent ε: the edge count
// falls as n^{-ε} while matching congestion and (eventually) stretch
// degrade — the trade-off behind the O(n^{5/3}) operating point.
func AblateEpsilon(cfg Config) (*Result, error) {
	n, d := 343, 80
	if cfg.Quick {
		n, d = 216, 60
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0xab3))
	tb := stats.NewTable("ε", "p=n^-ε", "|E(H)|", "stretchViol", "maxStretch", "matchCong", "fallbacks")
	for _, eps := range []float64{0.05, 0.10, 0.15, 0.25, 0.40} {
		sp, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
			Epsilon: eps, Seed: cfg.Seed + 5, EnsureConnected: true})
		if err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(g, sp.H, 3, cfg.Trace)
		m := greedyMatchingOfEdges(g)
		rt, router, err := routeMatchingOn(sp, m, cfg.Seed+6)
		if err != nil {
			return nil, err
		}
		tb.AddRow(eps, math.Pow(float64(n), -eps), sp.H.M(),
			rep.Violations, rep.MaxStretch, cfg.nodeCongestion(rt, n), router.Fallbacks)
	}
	body := tb.String() +
		"paper (Theorem 2) needs ε < 1/3 − 3loglog n/log n so that 3-hop replacement paths\n" +
		"survive w.h.p.; pushing ε higher sparsifies further but loses the 3-stretch.\n"
	return &Result{ID: "ablate-epsilon", Title: "Ablation: Theorem 2 sampling exponent", Body: body}, nil
}

// AblateColoring compares Misra–Gries (m_k ≤ d_k+1, the Algorithm 2
// requirement) against greedy edge coloring (≤ 2d_k−1) inside the
// decomposition: more matchings per level inflate the congestion factor
// of Lemma 22.
func AblateColoring(cfg Config) (*Result, error) {
	n, d := 256, 16
	if cfg.Quick {
		n, d = 128, 12
	}
	r := rng.New(cfg.Seed ^ 0xab4)
	g := gen.MustRandomRegular(n, d, r)
	sp := spanner.Greedy(g, 3)
	prob := routing.RandomProblem(n, 4*n, r)
	onG, err := routing.ShortestPaths(g, prob)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("colorer", "levels", "matchings", "Σ(d_k+1)", "C(P')", "congStretch")
	cG := cfg.nodeCongestion(onG, n)
	for _, c := range []struct {
		name   string
		fn     routing.EdgeColorer
		strict bool
	}{
		{"misra-gries", matching.MisraGries, true},
		{"greedy", matching.GreedyEdgeColoring, false},
	} {
		dec, err := routing.DecomposeWith(n, onG, c.fn, c.strict)
		if err != nil {
			return nil, err
		}
		sub, err := dec.Substitute(sp.Router(cfg.Seed + 7))
		if err != nil {
			return nil, err
		}
		cH := cfg.nodeCongestion(sub, n)
		tb.AddRow(c.name, len(dec.Levels), dec.NumMatchings(),
			dec.DegreePlusOneSum(), cH, float64(cH)/float64(cG))
	}
	body := tb.String() +
		"paper (Algorithm 2) requires m_k ≤ d_k+1 (Misra–Gries / Vizing); greedy coloring can\n" +
		"double the matchings per level, which is exactly the slack Lemma 22 charges.\n"
	return &Result{ID: "ablate-coloring", Title: "Ablation: level edge coloring", Body: body}, nil
}

// PacketLatency ties the congestion stretch to delivered performance via
// the store-and-forward simulator (the Section 1.1 motivation): the same
// demand set is routed on G, on the DC-spanner, and on a distance-only
// greedy spanner, and packets are scheduled in the one-packet-per-node
// model.
func PacketLatency(cfg Config) (*Result, error) {
	n, d := 343, 80
	if cfg.Quick {
		n, d = 216, 60
	}
	g := gen.MustRandomRegular(n, d, rng.New(cfg.Seed^0xab5))
	m := greedyMatchingOfEdges(g)
	prob := routing.MatchingProblem(m)

	type variant struct {
		name string
		rt   *routing.Routing
	}
	var variants []variant

	// On G: the matching routes over its own edges.
	pathsG := make([]routing.Path, len(m))
	for i, e := range m {
		pathsG[i] = routing.Path{e.U, e.V}
	}
	variants = append(variants, variant{"G (direct)", &routing.Routing{Problem: prob, Paths: pathsG}})

	dc, err := spanner.BuildExpander(g, spanner.ExpanderOptions{
		Epsilon: spanner.EpsilonForDegree(n, d), Seed: cfg.Seed + 8, EnsureConnected: true})
	if err != nil {
		return nil, err
	}
	paths, err := dc.Router(cfg.Seed + 9).RouteMatching(m)
	if err != nil {
		return nil, err
	}
	variants = append(variants, variant{"DC-spanner (Thm 2)", &routing.Routing{Problem: prob, Paths: paths}})

	gr := spanner.Greedy(g, 3)
	paths2, err := gr.Router(cfg.Seed + 10).RouteMatching(m)
	if err != nil {
		return nil, err
	}
	variants = append(variants, variant{"greedy 3-spanner", &routing.Routing{Problem: prob, Paths: paths2}})

	tb := stats.NewTable("network", "edges", "congestion", "dilation", "makespan", "meanLatency", "maxQueue")
	edges := []int{g.M(), dc.H.M(), gr.H.M()}
	for i, v := range variants {
		res, err := packetsim.Simulate(n, v.rt, packetsim.Options{Priority: packetsim.FarthestToGo})
		if err != nil {
			return nil, err
		}
		tb.AddRow(v.name, edges[i], res.Congestion, res.Dilation, res.Makespan,
			fmt.Sprintf("%.1f", res.MeanLatency()), res.MaxQueue)
	}
	body := tb.String() +
		"paper §1.1: with one packet forwarded per node per step, routings with smaller\n" +
		"node congestion give lower latency and queue sizes — the DC-spanner delivers\n" +
		"close to the base graph while the distance-only spanner's hotspots serialize.\n"
	return &Result{ID: "packet-latency", Title: "Packet latency (store-and-forward, §1.1)", Body: body}, nil
}

// IrregularDegrees explores the paper's footnote 1 / Section 8 extension:
// Algorithm 1 on graphs whose degrees are only within a constant factor
// of each other (here G(n, p) with np = Δ).
func IrregularDegrees(cfg Config) (*Result, error) {
	n, d := 343, 56
	if cfg.Quick {
		n, d = 216, 40
	}
	r := rng.New(cfg.Seed ^ 0xab6)
	g := gen.ErdosRenyi(n, float64(d)/float64(n-1), r)
	if !g.Connected() {
		return nil, fmt.Errorf("experiments: G(n,p) instance disconnected")
	}
	res, err := spanner.BuildRegular(g, spanner.DefaultRegularOptions(cfg.Seed+11))
	if err != nil {
		return nil, err
	}
	rep := cfg.verifyEdgeStretch(g, res.Spanner.H, 3, cfg.Trace)
	m := greedyMatchingOfEdges(g)
	rt, _, err := routeMatchingOn(res.Spanner, m, cfg.Seed+12)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("n", "minDeg", "maxDeg", "|E(G)|", "|E(H)|", "stretch≤3", "matchCong", "1+2√Δmax")
	tb.AddRow(n, g.MinDegree(), g.MaxDegree(), g.M(), res.Spanner.H.M(),
		fmt.Sprintf("viol=%d", rep.Violations), cfg.nodeCongestion(rt, n),
		1+2*math.Sqrt(float64(g.MaxDegree())))
	body := tb.String() +
		"paper footnote 1: the Δ-regular analysis extends to degrees within a constant\n" +
		"factor; Algorithm 1 run unchanged on G(n,p) keeps stretch 3 and the Lemma 17\n" +
		"congestion shape (Section 8 lists full irregularity as open).\n"
	return &Result{ID: "irregular", Title: "Extension: near-regular degrees (footnote 1 / §8)", Body: body}, nil
}

// ensure graph import used
var _ = graph.Edge{}
