package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 42, Quick: true} }

func TestIDsAndLookup(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Fatalf("expected 22 experiments, got %d", len(ids))
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}

func runOne(t *testing.T, id string) *Result {
	t.Helper()
	run, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	res, err := run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id %q != %q", res.ID, id)
	}
	if !strings.Contains(res.Body, "paper") {
		t.Fatalf("%s: report missing paper reference:\n%s", id, res.Body)
	}
	return res
}

func TestTable1Theorem2Quick(t *testing.T) {
	res := runOne(t, "table1-thm2")
	if !strings.Contains(res.Body, "viol=0") {
		t.Fatalf("theorem 2 spanner violated stretch:\n%s", res.Body)
	}
}

func TestTable1Theorem3Quick(t *testing.T) {
	res := runOne(t, "table1-thm3")
	if !strings.Contains(res.Body, "viol=0") {
		t.Fatalf("theorem 3 spanner violated stretch:\n%s", res.Body)
	}
}

func TestTable1KoutisXuQuick(t *testing.T) { runOne(t, "table1-kx16") }

func TestTable1BoundedDegreeQuick(t *testing.T) { runOne(t, "table1-bd5") }

func TestTable1Theorem4Quick(t *testing.T) {
	res := runOne(t, "table1-thm4")
	if !strings.Contains(res.Body, "viol=0") {
		t.Fatalf("theorem 4 spanner violated stretch:\n%s", res.Body)
	}
}

func TestFigure1VFTQuick(t *testing.T)        { runOne(t, "fig1-vft") }
func TestFigure2MatchingQuick(t *testing.T)   { runOne(t, "fig2-matching") }
func TestFigure34DetoursQuick(t *testing.T)   { runOne(t, "fig34-detours") }
func TestLemma2Quick(t *testing.T)            { runOne(t, "lemma2") }
func TestTheorem1DecomposeQuick(t *testing.T) { runOne(t, "thm1-decompose") }

func TestCorollary3LocalQuick(t *testing.T) {
	res := runOne(t, "cor3-local")
	if !strings.Contains(res.Body, "true") {
		t.Fatalf("distributed != sequential:\n%s", res.Body)
	}
}

func TestAblateDetourQuick(t *testing.T) {
	res := runOne(t, "ablate-detour")
	// The EnsureDetour=true row must show zero violations.
	if !strings.Contains(res.Body, "true") {
		t.Fatalf("missing EnsureDetour row:\n%s", res.Body)
	}
}

func TestAblateSupportQuick(t *testing.T)  { runOne(t, "ablate-support") }
func TestAblateEpsilonQuick(t *testing.T)  { runOne(t, "ablate-epsilon") }
func TestAblateColoringQuick(t *testing.T) { runOne(t, "ablate-coloring") }

func TestPacketLatencyQuick(t *testing.T) {
	res := runOne(t, "packet-latency")
	if !strings.Contains(res.Body, "DC-spanner") || !strings.Contains(res.Body, "makespan") {
		t.Fatalf("packet latency report malformed:\n%s", res.Body)
	}
}

func TestIrregularQuick(t *testing.T) {
	res := runOne(t, "irregular")
	if !strings.Contains(res.Body, "viol=0") {
		t.Fatalf("irregular run violated stretch:\n%s", res.Body)
	}
}

func TestSection8StretchQuick(t *testing.T) { runOne(t, "section8-stretch") }

func TestDefinition2BetaQuick(t *testing.T) { runOne(t, "defn2-beta") }

func TestOracleBackendsQuick(t *testing.T) {
	res := runOne(t, "oracle-backends")
	// The tight 80KiB budget must evict the exact table on every family,
	// and the landmark floor must always survive.
	if !strings.Contains(res.Body, "skip") {
		t.Fatalf("tight budget skipped nothing:\n%s", res.Body)
	}
	for _, be := range []string{"landmark-bibfs", "exact-cached", "sparse-hub"} {
		if !strings.Contains(res.Body, be) {
			t.Fatalf("backend %s missing from survey:\n%s", be, res.Body)
		}
	}
}

func TestSeedVarianceQuick(t *testing.T) {
	res := runOne(t, "seed-variance")
	if !strings.Contains(res.Body, "theorem2=0 theorem3=0") {
		t.Fatalf("seed variance saw stretch violations:\n%s", res.Body)
	}
}

func TestFaultToleranceQuick(t *testing.T) {
	res := runOne(t, "fault-tolerance")
	if !strings.Contains(res.Body, "matchCong") {
		t.Fatalf("fault-tolerance report malformed:\n%s", res.Body)
	}
}

func TestRunAllQuickNoFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covered by per-experiment tests")
	}
	results := RunAll(quickCfg())
	if len(results) != len(IDs()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if strings.Contains(r.Body, "error:") {
			t.Errorf("%s failed:\n%s", r.ID, r.Body)
		}
	}
}

func TestScalingSeries(t *testing.T) {
	series, err := AllSeries(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Rows) == 0 {
			t.Fatalf("%s: empty series", s.Name)
		}
		for _, row := range s.Rows {
			if len(row) != len(s.Header) {
				t.Fatalf("%s: row width %d != header %d", s.Name, len(row), len(s.Header))
			}
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	run, _ := Lookup("lemma2")
	a, err := run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Body != b.Body {
		t.Fatal("same seed produced different reports")
	}
}
