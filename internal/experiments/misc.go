package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/local"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
	"repro/internal/stats"
)

// Lemma2Separation reproduces the Lemma 2 demonstration: a spanner that is
// a 3-distance spanner AND admits congestion-1 routings (Definition 2),
// yet is not a (3, β)-DC-spanner for any β < n.
func Lemma2Separation(cfg Config) (*Result, error) {
	sizes := []int{16, 64, 128}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n=|A|", "α", "|V|", "stretch≤3", "C_G",
		"C_H unconstrained", "C_H α-constrained", "separation β≥")
	for _, n := range sizes {
		inst := gen.Lemma2Graph(n, 3)
		an := lowerbound.AnalyzeLemma2(inst)
		if err := an.Verify(); err != nil {
			return nil, err
		}
		rep := cfg.verifyEdgeStretch(inst.G, inst.H, 3, cfg.Trace)
		tb.AddRow(n, inst.Alpha, inst.G.N(),
			fmt.Sprintf("viol=%d", rep.Violations),
			an.CongestionG, an.CongestionUnconstrained, an.CongestionConstrained,
			an.CongestionConstrained)
	}
	body := tb.String() +
		"paper (Lemma 2): H satisfies Definitions 1 and 2 separately, but the matching\n" +
		"routing's α-stretch substitutes all cross (a₁,b₁): the DC property fails with β = n.\n"
	return &Result{ID: "lemma2", Title: "Lemma 2 (distance+congestion ≠ DC)", Body: body}, nil
}

// Theorem1Decompose measures the Algorithm 2 pipeline: matchings used
// (Lemma 23), Σ(d_k+1) versus the Lemma 21 bound, and the end-to-end
// congestion stretch of the substitute routing (Lemma 22).
func Theorem1Decompose(cfg Config) (*Result, error) {
	n, d := 256, 16
	loads := []int{64, 256, 1024}
	if cfg.Quick {
		n, d = 128, 12
		loads = loads[:2]
	}
	r := rng.New(cfg.Seed ^ 0x71)
	g := gen.MustRandomRegular(n, d, r)
	// Use a deliberately aggressive (greedy 3-)spanner so the substitution
	// is visibly non-trivial: most demands must detour, which makes the
	// Lemma 22 congestion accounting observable rather than identity.
	sp := spanner.Greedy(g, 3)
	tb := stats.NewTable("paths", "C(P)", "levels", "matchings", "n³",
		"Σ(d_k+1)", "12·C·log2n", "C(P')", "congStretch", "distStretch")
	for _, k := range loads {
		prob := routing.RandomProblem(n, k, r)
		onG, err := routing.ShortestPaths(g, prob)
		if err != nil {
			return nil, err
		}
		sub, dec, err := routing.SubstituteViaMatchings(n, onG, sp.Router(cfg.Seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		cG := cfg.nodeCongestion(onG, n)
		cH := cfg.nodeCongestion(sub, n)
		tb.AddRow(k, cG, len(dec.Levels), dec.NumMatchings(), int64(n)*int64(n)*int64(n),
			dec.DegreePlusOneSum(), dec.Lemma21Bound(), cH,
			float64(cH)/float64(cG), sub.Stretch(onG))
	}
	body := tb.String() +
		"paper (Thm 1, Lemmas 21–23): ≤ O(n³) matchings; Σ(d_k+1) ≤ 12·C(P)·log n;\n" +
		"substitute congestion ≤ O(β'·log n)·C(P) where β' is the per-matching congestion.\n"
	return &Result{ID: "thm1-decompose", Title: "Theorem 1 (decomposition into matchings)", Body: body}, nil
}

// Corollary3Local runs the distributed Algorithm 1 in the LOCAL simulator
// and checks it against the sequential reference.
func Corollary3Local(cfg Config) (*Result, error) {
	sizes := []struct{ n, d int }{{120, 24}, {216, 40}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	tb := stats.NewTable("n", "Δ", "rounds", "messages", "maxMsgWords", "|E(G')|", "|E(H)|",
		"=sequential", "stretch≤3")
	for _, sz := range sizes {
		r := rng.New(cfg.Seed ^ (uint64(sz.n) << 5))
		g := gen.MustRandomRegular(sz.n, sz.d, r)
		opts := spanner.DefaultRegularOptions(cfg.Seed + uint64(sz.n))
		dist := local.DistributedRegularSpanner(g, opts)
		seq := local.SequentialReference(g, opts)
		same := dist.H.M() == seq.H.M() && dist.H.IsSubgraphOf(seq.H)
		rep := cfg.verifyEdgeStretch(g, dist.H, 3, cfg.Trace)
		tb.AddRow(sz.n, sz.d, dist.Rounds, dist.Messages, dist.MaxMsg, dist.GPrime.M(), dist.H.M(),
			same, fmt.Sprintf("viol=%d", rep.Violations))
	}
	body := tb.String() +
		"paper (Cor. 3): O(1) LOCAL rounds (here exactly 5: coin, 3×flood, decide);\n" +
		"the distributed output equals a sequential run with the same coins. The\n" +
		"Θ(Δ³)-word flood messages are why the protocol lives in LOCAL, not CONGEST.\n"
	return &Result{ID: "cor3-local", Title: "Corollary 3 (distributed LOCAL construction)", Body: body}, nil
}
