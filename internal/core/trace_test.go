package core

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// TestBuildPhaseTrace: a traced build yields a span tree whose phases
// nest under the root and whose per-phase durations sum to approximately
// the root's total (everything expensive in Build is inside a span).
//
// The coverage assertion is about wall time on a sub-millisecond build,
// so a single scheduler preemption between spans can push the unspanned
// share past the budget on a loaded host. The structural assertions run
// on every attempt; the timing one only needs to hold once.
func TestBuildPhaseTrace(t *testing.T) {
	g := gen.MustRandomRegular(216, 60, rng.New(3))
	const attempts = 5
	covered := false
	var sum, total time.Duration
	for try := 0; try < attempts && !covered; try++ {
		root := obs.StartSpan("build")
		_, err := Build(g, Options{
			Algorithm: AlgoExpander,
			Seed:      3,
			Expander:  spanner.ExpanderOptions{EnsureConnected: true},
			Trace:     root,
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()

		kids := root.Children()
		if len(kids) != 2 || kids[0].Name() != "expander" || kids[1].Name() != "validate" {
			names := make([]string, len(kids))
			for i, k := range kids {
				names[i] = k.Name()
			}
			t.Fatalf("top-level phases = %v, want [expander validate]", names)
		}
		sum, total = 0, root.Duration()
		for _, k := range kids {
			if k.Duration() > total {
				t.Errorf("phase %s (%v) exceeds total (%v)", k.Name(), k.Duration(), total)
			}
			sum += k.Duration()
		}
		if sum > total {
			t.Errorf("phase sum %v exceeds total %v", sum, total)
		}
		// The phases cover the build: at most 20% of the total is unspanned.
		covered = sum >= total*4/5
		// The expander phase itself decomposes into sample/connectivity spans.
		sub := kids[0].Children()
		if len(sub) < 2 || sub[0].Name() != "sample-edges" || sub[1].Name() != "connectivity-check" {
			t.Fatalf("expander sub-phases wrong: %v", sub)
		}
		if sub[0].KVs()["kept"] == "" {
			t.Error("sample-edges span missing kept KV")
		}
	}
	if !covered {
		t.Errorf("phase sum %v < 80%% of total %v on all %d attempts — a phase is missing a span",
			sum, total, attempts)
	}
}

// TestBuildRegularAndBaswanaSenTraced covers the other constructions'
// span taxonomies.
func TestBuildRegularAndBaswanaSenTraced(t *testing.T) {
	g := gen.MustRandomRegular(216, 60, rng.New(4))
	root := obs.StartSpan("build")
	_, err := Build(g, Options{Algorithm: AlgoRegular, Seed: 4, Trace: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	want := map[string]bool{"sample-gprime": false, "supported-edges": false,
		"partition-edges": false, "detour-check": false}
	if root.Children()[0].Name() != "regular" {
		t.Fatalf("root child = %q", root.Children()[0].Name())
	}
	for _, c := range root.Children()[0].Children() {
		if _, ok := want[c.Name()]; ok {
			want[c.Name()] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("regular build missing phase span %q", name)
		}
	}

	root2 := obs.StartSpan("build")
	_, err = Build(g, Options{Algorithm: AlgoBaswanaSen, K: 3, Seed: 4, Trace: root2})
	if err != nil {
		t.Fatal(err)
	}
	root2.End()
	bs := root2.Children()[0]
	if bs.Name() != "baswana-sen" {
		t.Fatalf("child = %q", bs.Name())
	}
	names := make([]string, 0)
	for _, c := range bs.Children() {
		names = append(names, c.Name())
	}
	if len(names) != 3 || names[0] != "cluster-phase-1" || names[1] != "cluster-phase-2" || names[2] != "vertex-cluster-join" {
		t.Errorf("baswana-sen phases = %v", names)
	}
}
