// Package core is the paper's primary contribution as a library: the
// (α, β)-DC-spanner. It ties a spanner construction (Theorem 2's expander
// sampling, Algorithm 1 for Δ-regular graphs, or a baseline) to the
// Theorem 1 machinery (decomposition of an arbitrary routing into
// matchings and reassembly on the spanner), so that a caller holding any
// routing P on G obtains an (α, β)-stretch substitute routing P' on H and
// the measured stretches.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// Algorithm selects a spanner construction.
type Algorithm string

const (
	// AlgoExpander is Theorem 2: edge sampling with probability n^{−ε} on
	// a spectral expander; distance stretch 3, matching congestion 1+o(1)
	// expected / O(log n) w.h.p., general congestion O(log² n).
	AlgoExpander Algorithm = "expander"
	// AlgoRegular is Algorithm 1 / Theorem 3 for Δ-regular graphs with
	// Δ ≥ n^{2/3}: distance stretch 3, congestion stretch O(√Δ·log n).
	AlgoRegular Algorithm = "regular"
	// AlgoBaswanaSen is the classical (2k−1)-spanner baseline [4].
	AlgoBaswanaSen Algorithm = "baswana-sen"
	// AlgoGreedy is the greedy α-spanner baseline.
	AlgoGreedy Algorithm = "greedy"
	// AlgoSparsifyUniform is the Table 1 "[16]" stand-in.
	AlgoSparsifyUniform Algorithm = "sparsify-uniform"
	// AlgoBoundedDegree is the Table 1 "[5]" stand-in.
	AlgoBoundedDegree Algorithm = "bounded-degree"
)

// Options configures Build.
type Options struct {
	Algorithm Algorithm
	Seed      uint64

	// Expander configures AlgoExpander; if Epsilon and SampleProb are both
	// zero, ε is derived from the graph's degree via EpsilonForDegree.
	Expander spanner.ExpanderOptions
	// Regular configures AlgoRegular; zero-value fields take the defaults
	// of spanner.DefaultRegularOptions.
	Regular spanner.RegularOptions

	// K is the Baswana–Sen parameter (stretch 2k−1); default 2.
	K int
	// Alpha is the greedy spanner stretch; default 3.
	Alpha int
	// SparsifyC is the uniform sparsifier's log-factor constant; default 3.
	SparsifyC float64
	// BoundedDegree is the per-node nomination count for AlgoBoundedDegree;
	// default 4.
	BoundedDegree int

	// Trace, when non-nil, receives the construction's phase spans —
	// dcspan -trace and the experiments runner's -trace hang the build
	// phase tree off it. Nil disables tracing at no cost.
	Trace *obs.Span
}

// DCSpanner is a built spanner with its substitute-routing machinery.
type DCSpanner struct {
	sp   *spanner.Spanner
	opts Options

	// RegularResult is populated when Algorithm == AlgoRegular.
	RegularResult *spanner.RegularResult
}

// Build constructs a DC-spanner of g.
func Build(g *graph.Graph, opts Options) (*DCSpanner, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	d := &DCSpanner{opts: opts}
	tr := opts.Trace
	switch opts.Algorithm {
	case AlgoExpander, "":
		eo := opts.Expander
		if eo.Epsilon == 0 && eo.SampleProb == 0 {
			eo.Epsilon = spanner.EpsilonForDegree(g.N(), g.MaxDegree())
			if eo.Epsilon <= 0 {
				return nil, fmt.Errorf("core: degree %d too small for the Theorem 2 regime (need Δ > n^{2/3}); set Expander.SampleProb explicitly", g.MaxDegree())
			}
		}
		if eo.Seed == 0 {
			eo.Seed = opts.Seed
		}
		if eo.Trace == nil {
			eo.Trace = tr
		}
		sp, err := spanner.BuildExpander(g, eo)
		if err != nil {
			return nil, err
		}
		d.sp = sp
	case AlgoRegular:
		ro := opts.Regular
		if ro.Seed == 0 {
			ro.Seed = opts.Seed
		}
		if ro.AFrac == 0 && ro.C1 == 0 && ro.SupportA == 0 && ro.SupportB == 0 {
			def := spanner.DefaultRegularOptions(ro.Seed)
			def.DeltaPrime = ro.DeltaPrime
			ro = def
		}
		if ro.Trace == nil {
			ro.Trace = tr
		}
		res, err := spanner.BuildRegular(g, ro)
		if err != nil {
			return nil, err
		}
		d.sp = res.Spanner
		d.RegularResult = res
	case AlgoBaswanaSen:
		k := opts.K
		if k <= 0 {
			k = 2
		}
		sp, err := spanner.BaswanaSenTraced(g, k, seedRNG(opts.Seed), tr)
		if err != nil {
			return nil, err
		}
		d.sp = sp
	case AlgoGreedy:
		alpha := opts.Alpha
		if alpha <= 0 {
			alpha = 3
		}
		gsp := tr.Start("greedy")
		d.sp = spanner.Greedy(g, alpha)
		gsp.SetKV("kept", d.sp.H.M())
		gsp.End()
	case AlgoSparsifyUniform:
		c := opts.SparsifyC
		if c <= 0 {
			c = 3
		}
		ssp := tr.Start("sparsify-uniform")
		sp, err := spanner.SparsifyUniform(g, c, opts.Seed)
		ssp.End()
		if err != nil {
			return nil, err
		}
		d.sp = sp
	case AlgoBoundedDegree:
		bd := opts.BoundedDegree
		if bd <= 0 {
			bd = 4
		}
		bsp := tr.Start("bounded-degree")
		sp, err := spanner.ExtractBoundedDegree(g, bd, opts.Seed)
		bsp.End()
		if err != nil {
			return nil, err
		}
		d.sp = sp
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", opts.Algorithm)
	}
	vsp := tr.Start("validate")
	err := d.sp.Validate()
	vsp.End()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Base returns the original graph G.
func (d *DCSpanner) Base() *graph.Graph { return d.sp.Base }

// Seed returns the seed the spanner was built with, so derived structures
// (e.g. a query oracle's landmark table) can key their own deterministic
// randomness off it.
func (d *DCSpanner) Seed() uint64 { return d.opts.Seed }

// CertifiedAlpha returns the distance stretch the construction certifies:
// 3 for the paper's Theorem 2 / Algorithm 1 spanners and the greedy
// default, 2k−1 for Baswana–Sen, and 0 for constructions whose stretch is
// only asymptotic (uniform sparsification, bounded-degree extraction) —
// callers treating 0 as "uncertified" should skip stretch assertions.
func (d *DCSpanner) CertifiedAlpha() int {
	switch d.opts.Algorithm {
	case AlgoExpander, AlgoRegular, "":
		return 3
	case AlgoGreedy:
		if d.opts.Alpha > 0 {
			return d.opts.Alpha
		}
		return 3
	case AlgoBaswanaSen:
		k := d.opts.K
		if k <= 0 {
			k = 2
		}
		return 2*k - 1
	default:
		return 0
	}
}

// Graph returns the spanner graph H.
func (d *DCSpanner) Graph() *graph.Graph { return d.sp.H }

// Spanner exposes the underlying construction.
func (d *DCSpanner) Spanner() *spanner.Spanner { return d.sp }

// VerifyDistance checks the per-edge distance stretch of H versus G.
func (d *DCSpanner) VerifyDistance(alpha int) spanner.StretchReport {
	return spanner.VerifyEdgeStretch(d.sp.Base, d.sp.H, alpha)
}

// SubstituteRouting runs the Theorem 1 pipeline on an arbitrary routing P
// in G: decompose P into matchings (Algorithm 2), route each matching on
// H with the spanner's replacement-path router, and splice the results
// into a substitute routing P' on H. The returned decomposition exposes
// the Lemma 21/23 accounting.
func (d *DCSpanner) SubstituteRouting(r *routing.Routing) (*routing.Routing, *routing.Decomposition, error) {
	router := d.sp.Router(d.opts.Seed ^ 0x5eed5eed5eed5eed)
	return routing.SubstituteViaMatchings(d.sp.Base.N(), r, router)
}

// RouteProblem routes a problem on G via BFS shortest paths, then
// substitutes it onto H, returning both routings.
func (d *DCSpanner) RouteProblem(prob routing.Problem) (onG, onH *routing.Routing, err error) {
	onG, err = routing.ShortestPaths(d.sp.Base, prob)
	if err != nil {
		return nil, nil, err
	}
	onH, _, err = d.SubstituteRouting(onG)
	if err != nil {
		return nil, nil, err
	}
	return onG, onH, nil
}

// StretchResult reports both stretches of a substitute routing versus the
// original (Definition 3's (α, β)-stretch substitute).
type StretchResult struct {
	DistanceStretch   float64 // max per-path length ratio
	CongestionG       int     // C(P) of the original routing
	CongestionH       int     // C(P') of the substitute
	CongestionStretch float64 // C(P') / C(P)
}

// MeasureStretch computes the (α, β) realized by a substitute routing.
func MeasureStretch(n int, orig, sub *routing.Routing) StretchResult {
	res := StretchResult{
		DistanceStretch: sub.Stretch(orig),
		CongestionG:     orig.NodeCongestion(n),
		CongestionH:     sub.NodeCongestion(n),
	}
	if res.CongestionG > 0 {
		res.CongestionStretch = float64(res.CongestionH) / float64(res.CongestionG)
	}
	return res
}
