package core

import "repro/internal/rng"

// seedRNG wraps rng.New so call sites in this package read naturally.
func seedRNG(seed uint64) *rng.RNG { return rng.New(seed) }
