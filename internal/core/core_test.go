package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

func buildRegularGraph(t testing.TB, n, d int, seed uint64) *DCSpanner {
	t.Helper()
	g := gen.MustRandomRegular(n, d, rng.New(seed))
	dc, err := Build(g, Options{Algorithm: AlgoRegular, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestBuildExpanderDefaultEpsilon(t *testing.T) {
	g := gen.MustRandomRegular(216, 60, rng.New(1))
	dc, err := Build(g, Options{Algorithm: AlgoExpander, Seed: 2,
		Expander: spanner.ExpanderOptions{EnsureConnected: true}})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Graph().M() >= g.M() {
		t.Fatal("expander spanner did not sparsify")
	}
	rep := dc.VerifyDistance(3)
	if rep.Violations != 0 {
		t.Fatalf("distance stretch violated: %+v", rep)
	}
}

func TestBuildExpanderRejectsLowDegree(t *testing.T) {
	g := gen.Cycle(100)
	if _, err := Build(g, Options{Algorithm: AlgoExpander}); err == nil {
		t.Fatal("accepted a 2-regular graph for the Theorem 2 regime")
	}
}

func TestBuildRegularAndSubstitute(t *testing.T) {
	dc := buildRegularGraph(t, 216, 60, 3)
	if dc.RegularResult == nil {
		t.Fatal("missing RegularResult")
	}
	prob := routing.RandomProblem(216, 100, rng.New(4))
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := onH.Validate(dc.Graph()); err != nil {
		t.Fatal(err)
	}
	res := MeasureStretch(216, onG, onH)
	if res.DistanceStretch > 3 {
		t.Fatalf("distance stretch %v > 3", res.DistanceStretch)
	}
	// Theorem 3 congestion shape: O(√Δ·log n)·C(P). Generous constant.
	limit := 4 * math.Sqrt(60) * math.Log2(216)
	if res.CongestionStretch > limit {
		t.Fatalf("congestion stretch %v > %v", res.CongestionStretch, limit)
	}
	if res.CongestionH < res.CongestionG {
		t.Fatalf("substitute congestion %d below original %d?", res.CongestionH, res.CongestionG)
	}
}

func TestBuildBaselines(t *testing.T) {
	g := gen.MustRandomRegular(120, 30, rng.New(5))
	for _, algo := range []Algorithm{AlgoBaswanaSen, AlgoGreedy, AlgoSparsifyUniform, AlgoBoundedDegree} {
		dc, err := Build(g, Options{Algorithm: algo, Seed: 6})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !dc.Graph().IsSubgraphOf(g) {
			t.Fatalf("%s: not a subgraph", algo)
		}
		if !dc.Graph().Connected() {
			t.Fatalf("%s: disconnected", algo)
		}
	}
}

func TestBuildUnknownAlgorithm(t *testing.T) {
	g := gen.Clique(10)
	if _, err := Build(g, Options{Algorithm: "nope"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestBuildEmptyGraph(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestMeasureStretchIdentity(t *testing.T) {
	g := gen.Cycle(12)
	prob := routing.Problem{{Src: 0, Dst: 3}}
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	res := MeasureStretch(12, rt, rt)
	if res.DistanceStretch != 1 || res.CongestionStretch != 1 {
		t.Fatalf("identity stretch = %+v", res)
	}
}

func TestSubstituteRoutingMatchingProblem(t *testing.T) {
	dc := buildRegularGraph(t, 216, 60, 7)
	prob := routing.RandomMatchingProblem(216, 50, rng.New(8))
	onG, onH, err := dc.RouteProblem(prob)
	if err != nil {
		t.Fatal(err)
	}
	res := MeasureStretch(216, onG, onH)
	if res.DistanceStretch > 3 {
		t.Fatalf("matching distance stretch %v", res.DistanceStretch)
	}
	_ = onH
}
