package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

func TestBuildRegularPopulatesResult(t *testing.T) {
	g := gen.MustRandomRegular(216, 60, rng.New(21))
	dc, err := Build(g, Options{Algorithm: AlgoRegular, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	res := dc.RegularResult
	if res == nil {
		t.Fatal("RegularResult nil")
	}
	if res.DeltaPrime < 1 || res.Rho <= 0 || res.Rho > 1 {
		t.Fatalf("bad parameters: %+v", res)
	}
	if res.Sampled != res.GPrime.M() {
		t.Fatalf("Sampled=%d but GPrime has %d edges", res.Sampled, res.GPrime.M())
	}
	if dc.Base() != g {
		t.Fatal("Base() lost the input graph")
	}
}

func TestBuildExpanderExplicitSampleProb(t *testing.T) {
	// A low-degree graph is fine when SampleProb is set explicitly.
	g := gen.MustRandomRegular(100, 10, rng.New(23))
	dc, err := Build(g, Options{
		Algorithm: AlgoExpander,
		Expander:  spanner.ExpanderOptions{SampleProb: 0.9, EnsureConnected: true},
		Seed:      24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Graph().M() > g.M() {
		t.Fatal("spanner gained edges")
	}
}

func TestBuildDefaultsKAndAlpha(t *testing.T) {
	g := gen.MustRandomRegular(100, 20, rng.New(25))
	bs, err := Build(g, Options{Algorithm: AlgoBaswanaSen, Seed: 26}) // default k=2
	if err != nil {
		t.Fatal(err)
	}
	rep := bs.VerifyDistance(3)
	if rep.Violations != 0 {
		t.Fatalf("default k=2 spanner violates stretch 3: %+v", rep)
	}
	gr, err := Build(g, Options{Algorithm: AlgoGreedy}) // default alpha=3
	if err != nil {
		t.Fatal(err)
	}
	if rep := gr.VerifyDistance(3); rep.Violations != 0 {
		t.Fatalf("default greedy violates stretch 3: %+v", rep)
	}
}

func TestSubstituteRoutingPreservesProblem(t *testing.T) {
	dc := buildRegularGraph(t, 216, 60, 27)
	prob := routing.RandomProblem(216, 30, rng.New(28))
	onG, err := routing.ShortestPaths(dc.Base(), prob)
	if err != nil {
		t.Fatal(err)
	}
	sub, dec, err := dc.SubstituteRouting(onG)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Paths) != len(prob) {
		t.Fatalf("substitute has %d paths for %d pairs", len(sub.Paths), len(prob))
	}
	for i, p := range sub.Paths {
		if p[0] != prob[i].Src || p[len(p)-1] != prob[i].Dst {
			t.Fatalf("pair %d endpoints changed", i)
		}
	}
	if dec.NumMatchings() <= 0 {
		t.Fatal("no matchings in decomposition")
	}
	// Lemma 23: far fewer matchings than n³.
	if dec.NumMatchings() >= 216*216 {
		t.Fatalf("suspiciously many matchings: %d", dec.NumMatchings())
	}
}

func TestMeasureStretchCongestionZeroGuard(t *testing.T) {
	// Empty routing: congestion 0 on both sides; stretch must not divide
	// by zero.
	empty := &routing.Routing{}
	res := MeasureStretch(4, empty, empty)
	if res.CongestionStretch != 0 {
		t.Fatalf("empty routing stretch %v", res.CongestionStretch)
	}
}

func TestBuildBoundedDegreeOptions(t *testing.T) {
	g, err := gen.DenseExpander(80, 0.5, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	dc, err := Build(g, Options{Algorithm: AlgoBoundedDegree, BoundedDegree: 3, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Graph().MaxDegree() > 6 {
		t.Fatalf("degree %d > 2d", dc.Graph().MaxDegree())
	}
}

func TestBuildSparsifyOptions(t *testing.T) {
	g := gen.MustRandomRegular(200, 40, rng.New(31))
	dc, err := Build(g, Options{Algorithm: AlgoSparsifyUniform, SparsifyC: 4, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !dc.Graph().Connected() {
		t.Fatal("sparsified graph disconnected")
	}
}
