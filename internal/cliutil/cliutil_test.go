package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graphio"
)

func parse(t *testing.T, args []string) *GraphConfig {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterGraphFlags(fs, "regular", 64, 8, 1)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterGraphFlagsDefaultsAndOverrides(t *testing.T) {
	c := parse(t, nil)
	if c.Gen != "regular" || c.N != 64 || c.D != 8 || c.Seed != 1 || c.In != "" {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = parse(t, []string{"-gen", "hypercube", "-n", "32", "-seed", "9"})
	if c.Gen != "hypercube" || c.N != 32 || c.Seed != 9 {
		t.Fatalf("overrides wrong: %+v", c)
	}
}

func TestBuildGenerators(t *testing.T) {
	cases := []struct {
		cfg   GraphConfig
		wantN int // 0 = just require non-empty
	}{
		{GraphConfig{Gen: "regular", N: 32, D: 4, Seed: 1}, 32},
		{GraphConfig{Gen: "hypercube", N: 16}, 16},
		{GraphConfig{Gen: "clique", N: 6}, 6},
		{GraphConfig{Gen: "margulis", N: 16}, 16},
		{GraphConfig{Gen: "torus", N: 16}, 16},
		{GraphConfig{Gen: "erdosrenyi", N: 40, D: 6, Seed: 2}, 40},
		{GraphConfig{Gen: "paley", N: 13}, 13},
	}
	for _, c := range cases {
		g, err := c.cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Gen, err)
		}
		if c.wantN > 0 && g.N() != c.wantN {
			t.Fatalf("%s: n = %d, want %d", c.cfg.Gen, g.N(), c.wantN)
		}
	}
	if _, err := (&GraphConfig{Gen: "nope"}).Build(); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestBuildFromFile(t *testing.T) {
	g, err := (&GraphConfig{Gen: "clique", N: 5}).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphio.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// -in overrides the generator entirely.
	g2, err := (&GraphConfig{Gen: "hypercube", N: 1024, In: path}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 || g2.M() != g.M() {
		t.Fatalf("loaded %v, want clique on 5", g2)
	}
}

func TestRegisterSeedFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	seed := RegisterSeedFlag(fs, 42)
	if err := fs.Parse([]string{"-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 7 {
		t.Fatalf("seed = %d, want 7", *seed)
	}
}
