// Package cliutil centralizes the flag surface shared by the cmd/*
// binaries: every tool takes a seed, and every tool that operates on a
// graph takes the same generate-or-load flags (-gen/-in/-n/-d). Before
// this package each command re-declared the flags and re-implemented the
// generator dispatch; dcspan, localsim, scaling, and dcserve now share
// one copy.
package cliutil

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/rng"
)

// GraphConfig is the shared generate-or-load parameter block. Fields are
// bound to flags by RegisterGraphFlags and consumed by Build.
type GraphConfig struct {
	Gen  string // graph family to generate
	In   string // edge-list file; overrides Gen when set
	N    int    // vertex count (approximate for margulis/torus)
	D    int    // degree (regular/erdosrenyi)
	Seed uint64
}

// GenKinds documents the families Build accepts, for flag usage strings.
const GenKinds = "regular|margulis|paley|clique|hypercube|torus|erdosrenyi"

// RegisterGraphFlags binds the shared -gen/-in/-n/-d/-seed flags on fs
// with per-tool defaults and returns the config they populate. Call
// fs.Parse (or flag.Parse when fs is flag.CommandLine) before reading it.
func RegisterGraphFlags(fs *flag.FlagSet, defGen string, defN, defD int, defSeed uint64) *GraphConfig {
	c := &GraphConfig{}
	fs.StringVar(&c.Gen, "gen", defGen, "graph family: "+GenKinds)
	fs.StringVar(&c.In, "in", "", "read the base graph from an edge-list file instead of generating")
	fs.IntVar(&c.N, "n", defN, "vertex count (approximate for margulis/torus)")
	fs.IntVar(&c.D, "d", defD, "degree (regular/erdosrenyi)")
	fs.Uint64Var(&c.Seed, "seed", defSeed, "random seed")
	return c
}

// RegisterSeedFlag binds only the shared -seed flag, for tools without a
// graph parameter block (e.g. scaling).
func RegisterSeedFlag(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "random seed")
}

// Build materializes the configured graph: loads c.In when set, otherwise
// dispatches on c.Gen.
func (c *GraphConfig) Build() (*graph.Graph, error) {
	if c.In != "" {
		f, err := os.Open(c.In)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphio.ReadEdgeList(f)
	}
	r := rng.New(c.Seed)
	switch c.Gen {
	case "regular":
		return gen.RandomRegular(c.N, c.D, r)
	case "paley":
		q := c.N
		for q > 2 && !(isPrime(q) && q%4 == 1) {
			q--
		}
		return gen.Paley(q)
	case "margulis":
		m := int(math.Round(math.Sqrt(float64(c.N))))
		return gen.Margulis(m), nil
	case "clique":
		return gen.Clique(c.N), nil
	case "hypercube":
		dim := 0
		for 1<<dim < c.N {
			dim++
		}
		return gen.Hypercube(dim), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(c.N))))
		return gen.Torus(side, side), nil
	case "erdosrenyi":
		p := float64(c.D) / float64(c.N-1)
		return gen.ErdosRenyi(c.N, p, r), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want %s)", c.Gen, GenKinds)
	}
}

// MustBuild is Build that prints the error and exits — the standard CLI
// prologue.
func (c *GraphConfig) MustBuild() *graph.Graph {
	g, err := c.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return g
}

func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}
