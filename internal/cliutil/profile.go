package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileConfig is the shared -cpuprofile/-memprofile parameter block.
// Every cmd/* binary registers it so any run can be profiled without
// tool-specific plumbing:
//
//	prof := cliutil.RegisterProfileFlags(flag.CommandLine)
//	flag.Parse()
//	defer prof.MustStart()()
type ProfileConfig struct {
	CPUProfile string
	MemProfile string

	cpuFile *os.File
}

// RegisterProfileFlags binds -cpuprofile and -memprofile on fs and
// returns the config they populate.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileConfig {
	p := &ProfileConfig{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given and returns a
// stop function that ends the profile and, when -memprofile was given,
// writes the heap profile. The stop function is safe to call when neither
// flag was set (it does nothing), so callers defer it unconditionally.
func (p *ProfileConfig) Start() (stop func() error, err error) {
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	return p.stop, nil
}

func (p *ProfileConfig) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// MustStart is Start for the standard CLI prologue: it exits on setup
// errors and returns a stop function that reports flush errors to stderr
// (profiling failures should not change a tool's exit status after its
// real work succeeded).
func (p *ProfileConfig) MustStart() func() {
	stop, err := p.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
