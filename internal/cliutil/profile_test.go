package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := RegisterProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := RegisterProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record (an empty
	// pprof file is still valid — the header alone makes it non-empty).
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileStartBadPath(t *testing.T) {
	p := &ProfileConfig{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}
	if _, err := p.Start(); err == nil {
		t.Fatal("want error for uncreatable cpuprofile path")
	}
}
