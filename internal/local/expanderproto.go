package local

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// The Theorem 2 construction is even more local than Algorithm 1: the
// spanner is pure independent edge sampling (one round of coin
// announcements), and the replacement path of a removed matching edge
// (u, v) is a 3-hop path u–x–y–v whose middle edge both endpoints can
// discover from 2-hop knowledge. This file implements that protocol:
//
//	round 1  every edge owner flips the keep-coin and informs the peer;
//	round 2  every node sends its sampled adjacency list to all
//	         G-neighbors;
//	round 3  for each matching demand (u, v) whose edge was removed, the
//	         owner u — knowing N_S(u), the sampled adjacencies of its own
//	         sampled neighbors, and N_S(v) (received from v, a
//	         G-neighbor) — samples a uniformly random 3-hop replacement
//	         path locally.
//
// Three rounds, no global knowledge, matching Theorem 2's replacement
// rule exactly.

// sampledAdj is a round-2 payload: the sender's sampled adjacency.
type sampledAdj []int32

// SizeWords implements Sized.
func (s sampledAdj) SizeWords() int { return len(s) }

// DistributedExpanderResult is the outcome of the distributed Theorem 2
// run for a matching routing problem.
type DistributedExpanderResult struct {
	H        *graph.Graph
	Routing  *routing.Routing
	Rounds   int
	Messages int64
	MaxMsg   int
	// Unroutable counts demands whose owner found no 3-hop replacement
	// locally (they fall back to centralized repair in Theorem 2's w.h.p.
	// failure branch; the tests require this to be rare).
	Unroutable int
}

// DistributedExpanderSpanner runs the protocol on g with sampling
// probability p for the matching routing problem given by edges of g
// (must be a matching; each pair is routed from its lower endpoint).
func DistributedExpanderSpanner(g *graph.Graph, p float64, seed uint64, demands []graph.Edge) (*DistributedExpanderResult, error) {
	n := g.N()
	// Validate the demands form a matching over edges of g.
	seen := make(map[int32]bool)
	for _, e := range demands {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("local: demand %v is not an edge of G", e)
		}
		if seen[e.U] || seen[e.V] {
			return nil, fmt.Errorf("local: demands are not a matching at %v", e)
		}
		seen[e.U] = true
		seen[e.V] = true
	}
	demandAt := make(map[int32]graph.Edge, len(demands))
	for _, e := range demands {
		demandAt[e.U] = e // owner = lower endpoint (e.U < e.V by normalization)
	}

	net := NewNetwork(g)
	// Per-node state.
	keepFlags := make([]map[graph.Edge]bool, n) // incident-edge coin results
	nbrAdj := make([]map[int32]sampledAdj, n)   // round-2 knowledge: neighbor -> its sampled adjacency
	for v := range keepFlags {
		keepFlags[v] = make(map[graph.Edge]bool)
		nbrAdj[v] = make(map[int32]sampledAdj)
	}

	// Round 1: coin announcements by owners.
	net.RunRound(func(ctx *NodeCtx) {
		u := ctx.ID
		for _, v := range ctx.Neighbors() {
			e := graph.Edge{U: u, V: v}.Normalize()
			if e.U != u {
				continue
			}
			kept := coin(seed, e) < p
			keepFlags[u][e] = kept
			ctx.Send(v, edgeInfo{E: e, Sampled: kept})
		}
	})

	// Round 2: merge coin results, then broadcast own sampled adjacency.
	net.RunRound(func(ctx *NodeCtx) {
		u := ctx.ID
		k := keepFlags[u]
		for _, m := range ctx.Inbox {
			ei := m.Payload.(edgeInfo)
			k[ei.E] = ei.Sampled
		}
		var adj sampledAdj
		for _, v := range ctx.Neighbors() {
			if k[graph.Edge{U: u, V: v}.Normalize()] {
				adj = append(adj, v)
			}
		}
		ctx.Broadcast(adj)
	})

	// Round 3: merge adjacencies; demand owners sample replacement paths.
	paths := make([]routing.Path, len(demands))
	demandIdx := make(map[graph.Edge]int, len(demands))
	for i, e := range demands {
		demandIdx[e] = i
	}
	var unroutable atomic.Int64
	net.RunRound(func(ctx *NodeCtx) {
		u := ctx.ID
		for _, m := range ctx.Inbox {
			nbrAdj[u][m.From] = m.Payload.(sampledAdj)
		}
		e, isOwner := demandAt[u]
		if !isOwner {
			return
		}
		v := e.Other(u)
		i := demandIdx[e]
		if keepFlags[u][e] {
			paths[i] = routing.Path{u, v}
			return
		}
		// Build the local candidate set: x ∈ N_S(u), y ∈ N_S(v) with
		// (x, y) sampled, x ≠ v, y ≠ u, x ≠ y. u knows N_S(u) (own
		// coins + received), x's sampled adjacency (round 2, x ∈ N_G(u)),
		// and N_S(v) (round 2 from v, a G-neighbor).
		inNSv := make(map[int32]bool)
		for _, y := range nbrAdj[u][v] {
			inNSv[y] = true
		}
		type cand struct{ x, y int32 }
		var cands []cand
		for _, x := range g.Neighbors(u) {
			if x == v || !keepFlags[u][graph.Edge{U: u, V: x}.Normalize()] {
				continue
			}
			for _, y := range nbrAdj[u][x] {
				if y != u && y != x && y != v && inNSv[y] {
					cands = append(cands, cand{x, y})
				}
			}
		}
		if len(cands) == 0 {
			unroutable.Add(1)
			return
		}
		// Uniform choice, seeded per demand for determinism.
		r := rng.New(seed ^ (uint64(uint32(e.U))<<32 | uint64(uint32(e.V))) ^ 0xdef0)
		c := cands[r.Intn(len(cands))]
		paths[i] = routing.Path{u, c.x, c.y, v}
	})

	// Assemble the spanner from owner coins.
	h := g.FilterEdges(func(e graph.Edge) bool { return coin(seed, e) < p })
	// Fill unroutable demands by centralized shortest path (the w.h.p.
	// failure branch).
	prob := routing.MatchingProblem(demands)
	for i, pth := range paths {
		if pth == nil {
			sp := h.ShortestPath(demands[i].U, demands[i].V)
			if sp == nil {
				return nil, fmt.Errorf("local: demand %v disconnected in H", demands[i])
			}
			paths[i] = routing.Path(sp)
		}
	}
	res := &DistributedExpanderResult{
		H:          h,
		Routing:    &routing.Routing{Problem: prob, Paths: paths},
		Rounds:     net.RoundsRun,
		Messages:   net.MessagesSent,
		MaxMsg:     net.MaxMessageWords,
		Unroutable: int(unroutable.Load()),
	}
	return res, nil
}

// epsilonProb is a small helper converting Theorem 2's ε to the sampling
// probability for an n-vertex graph.
func epsilonProb(n int, eps float64) float64 {
	return spanner.ProbForEpsilon(n, eps)
}
