// Package local implements a synchronous LOCAL-model message-passing
// simulator and the distributed spanner construction of Section 7
// (Corollary 3): an O(1)-round distributed version of Algorithm 1.
//
// The simulator is faithful to the LOCAL model: computation proceeds in
// synchronous rounds; in each round every node runs its handler with the
// messages received at the end of the previous round and may send one
// message to each neighbor (message size is unbounded in LOCAL, which the
// 3-hop-knowledge flooding of Section 7 exploits). Nodes share no memory;
// all cross-node information flows through messages.
package local

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Message is a payload delivered to a node at the start of a round.
type Message struct {
	From    int32
	Payload any
}

// NodeCtx is the per-round execution context handed to a node's handler.
type NodeCtx struct {
	ID    int32
	Round int
	Inbox []Message

	net    *Network
	outbox []outMsg
}

type outMsg struct {
	to      int32
	payload any
}

// Send queues a message to a neighbor for delivery next round. Sending to
// a non-neighbor panics: the LOCAL model only allows communication along
// edges.
func (c *NodeCtx) Send(to int32, payload any) {
	if !c.net.g.HasEdge(c.ID, to) {
		panic(fmt.Sprintf("local: node %d attempted to message non-neighbor %d", c.ID, to))
	}
	c.outbox = append(c.outbox, outMsg{to: to, payload: payload})
}

// Broadcast sends payload to every neighbor.
func (c *NodeCtx) Broadcast(payload any) {
	for _, w := range c.net.g.Neighbors(c.ID) {
		c.outbox = append(c.outbox, outMsg{to: w, payload: payload})
	}
}

// Neighbors exposes the node's local view of its adjacency (always known
// in LOCAL).
func (c *NodeCtx) Neighbors() []int32 {
	return c.net.g.Neighbors(c.ID)
}

// Handler is a node's per-round program.
type Handler func(ctx *NodeCtx)

// Sized lets message payloads report a size in abstract words, so the
// simulator can account for bandwidth. Payloads that do not implement it
// count as one word. The distinction matters for model placement: the
// Section 7 protocol floods 3-hop edge knowledge, whose per-message size
// grows with Δ³ — fine in LOCAL (unbounded messages), far outside CONGEST
// (O(log n)-bit messages), and the simulator's MaxMessageWords makes that
// visible.
type Sized interface {
	SizeWords() int
}

// Network simulates a LOCAL-model network over a graph.
type Network struct {
	g *graph.Graph

	RoundsRun    int
	MessagesSent int64
	// TotalWords is the cumulative payload volume in abstract words.
	TotalWords int64
	// MaxMessageWords is the largest single payload observed.
	MaxMessageWords int

	inboxes [][]Message
}

func payloadWords(p any) int {
	if s, ok := p.(Sized); ok {
		return s.SizeWords()
	}
	return 1
}

// NewNetwork creates a network over g with empty inboxes.
func NewNetwork(g *graph.Graph) *Network {
	return &Network{g: g, inboxes: make([][]Message, g.N())}
}

// Graph returns the underlying communication graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// RunRound executes one synchronous round: every node's handler runs (in
// parallel) against its current inbox; all sent messages are delivered
// into the inboxes for the next round.
func (n *Network) RunRound(h Handler) {
	numNodes := n.g.N()
	ctxs := make([]*NodeCtx, numNodes)
	graph.ParallelRange(numNodes, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			ctx := &NodeCtx{ID: int32(v), Round: n.RoundsRun, Inbox: n.inboxes[v], net: n}
			h(ctx)
			ctxs[v] = ctx
		}
	})
	// Synchronous delivery barrier.
	next := make([][]Message, numNodes)
	var sent int64
	var mu sync.Mutex
	graph.ParallelRange(numNodes, func(lo, hi int) {
		local := int64(0)
		for v := lo; v < hi; v++ {
			local += int64(len(ctxs[v].outbox))
		}
		mu.Lock()
		sent += local
		mu.Unlock()
	})
	// Delivery must be sequential per recipient; group by recipient.
	var words int64
	maxWords := n.MaxMessageWords
	for v := 0; v < numNodes; v++ {
		for _, m := range ctxs[v].outbox {
			w := payloadWords(m.payload)
			words += int64(w)
			if w > maxWords {
				maxWords = w
			}
			next[m.to] = append(next[m.to], Message{From: int32(v), Payload: m.payload})
		}
	}
	n.inboxes = next
	n.MessagesSent += sent
	n.TotalWords += words
	n.MaxMessageWords = maxWords
	n.RoundsRun++
}

// Run executes `rounds` rounds of the handler.
func (n *Network) Run(h Handler, rounds int) {
	for i := 0; i < rounds; i++ {
		n.RunRound(h)
	}
}
