package local

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func TestNetworkSingleRoundDelivery(t *testing.T) {
	g := gen.Path(3) // 0-1-2
	net := NewNetwork(g)
	received := make([][]int32, 3)
	// Round 1: everyone pings neighbors.
	net.RunRound(func(ctx *NodeCtx) {
		ctx.Broadcast(ctx.ID)
	})
	// Round 2: record inboxes.
	net.RunRound(func(ctx *NodeCtx) {
		for _, m := range ctx.Inbox {
			received[ctx.ID] = append(received[ctx.ID], m.From)
		}
	})
	if len(received[0]) != 1 || received[0][0] != 1 {
		t.Fatalf("node 0 inbox: %v", received[0])
	}
	if len(received[1]) != 2 {
		t.Fatalf("node 1 inbox: %v", received[1])
	}
	if net.RoundsRun != 2 {
		t.Fatalf("rounds = %d", net.RoundsRun)
	}
	if net.MessagesSent != 4 {
		t.Fatalf("messages = %d, want 4", net.MessagesSent)
	}
}

func TestNetworkRejectsNonNeighborSend(t *testing.T) {
	g := gen.Path(3)
	net := NewNetwork(g)
	defer func() {
		if recover() == nil {
			t.Fatal("sending to non-neighbor did not panic")
		}
	}()
	net.RunRound(func(ctx *NodeCtx) {
		if ctx.ID == 0 {
			ctx.Send(2, "illegal")
		}
	})
}

func TestNetworkFloodingReachesKHops(t *testing.T) {
	g := gen.Path(6)
	net := NewNetwork(g)
	// Flood node ids; after r rounds node 0's knowledge should include
	// exactly nodes within distance r.
	known := make([]map[int32]bool, 6)
	for i := range known {
		known[i] = map[int32]bool{int32(i): true}
	}
	flood := func(ctx *NodeCtx) {
		for _, m := range ctx.Inbox {
			for _, id := range m.Payload.([]int32) {
				known[ctx.ID][id] = true
			}
		}
		var snap []int32
		for id := range known[ctx.ID] {
			snap = append(snap, id)
		}
		ctx.Broadcast(snap)
	}
	net.Run(flood, 4)
	// After 4 rounds (3 effective propagation hops + final merge happens
	// next round), node 0 must know nodes 0..3.
	net.RunRound(func(ctx *NodeCtx) {
		for _, m := range ctx.Inbox {
			for _, id := range m.Payload.([]int32) {
				known[ctx.ID][id] = true
			}
		}
	})
	for id := int32(0); id <= 4; id++ {
		if !known[0][id] {
			t.Fatalf("node 0 missing id %d after flooding", id)
		}
	}
}

func TestDistributedMatchesSequentialReference(t *testing.T) {
	r := rng.New(51)
	g := gen.MustRandomRegular(120, 24, r)
	opts := spanner.DefaultRegularOptions(99)
	dist := DistributedRegularSpanner(g, opts)
	seq := SequentialReference(g, opts)

	if dist.GPrime.M() != seq.GPrime.M() || !dist.GPrime.IsSubgraphOf(seq.GPrime) {
		t.Fatalf("sampled graphs differ: distributed %d edges, sequential %d",
			dist.GPrime.M(), seq.GPrime.M())
	}
	if dist.H.M() != seq.H.M() || !dist.H.IsSubgraphOf(seq.H) {
		t.Fatalf("spanners differ: distributed %d edges, sequential %d",
			dist.H.M(), seq.H.M())
	}
}

func TestDistributedConstantRounds(t *testing.T) {
	r := rng.New(52)
	g := gen.MustRandomRegular(80, 16, r)
	dist := DistributedRegularSpanner(g, spanner.DefaultRegularOptions(7))
	if dist.Rounds != 5 {
		t.Fatalf("protocol used %d rounds, want 5 (O(1))", dist.Rounds)
	}
}

func TestDistributedOutputIs3Spanner(t *testing.T) {
	r := rng.New(53)
	g := gen.MustRandomRegular(120, 40, r)
	dist := DistributedRegularSpanner(g, spanner.DefaultRegularOptions(12))
	rep := spanner.VerifyEdgeStretch(g, dist.H, 3)
	if rep.Violations != 0 {
		t.Fatalf("distributed spanner violates stretch 3: max %v", rep.MaxStretch)
	}
	if !dist.H.IsSubgraphOf(g) {
		t.Fatal("H not a subgraph of G")
	}
	if !dist.GPrime.IsSubgraphOf(dist.H) {
		t.Fatal("G' not contained in H")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	r := rng.New(55)
	g := gen.MustRandomRegular(60, 12, r)
	dist := DistributedRegularSpanner(g, spanner.DefaultRegularOptions(5))
	if dist.TotalWords <= dist.Messages {
		t.Fatalf("flood messages should exceed one word each: words=%d messages=%d",
			dist.TotalWords, dist.Messages)
	}
	// After the last flood round a node broadcasts its 2-hop knowledge,
	// which on a Δ-regular graph holds ≥ Δ²/2-ish edges — far beyond
	// CONGEST's O(log n) words.
	if dist.MaxMsg < g.MaxDegree() {
		t.Fatalf("max message %d words suspiciously small (Δ=%d)", dist.MaxMsg, g.MaxDegree())
	}
}

func TestCoinDeterministicAndBalanced(t *testing.T) {
	e := graph.Edge{U: 3, V: 9}
	if coin(1, e) != coin(1, e) {
		t.Fatal("coin not deterministic")
	}
	if coin(1, e) == coin(2, e) {
		t.Fatal("coin ignores seed")
	}
	// Empirical balance over many edges.
	count := 0
	trials := 20000
	for i := 0; i < trials; i++ {
		if coin(7, graph.Edge{U: int32(i), V: int32(i + 1)}) < 0.5 {
			count++
		}
	}
	if count < trials*45/100 || count > trials*55/100 {
		t.Fatalf("coin biased: %d/%d below 0.5", count, trials)
	}
}

func BenchmarkDistributedSpanner(b *testing.B) {
	r := rng.New(54)
	g := gen.MustRandomRegular(100, 20, r)
	opts := spanner.DefaultRegularOptions(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistributedRegularSpanner(g, opts)
	}
}
