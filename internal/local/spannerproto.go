package local

import (
	"math"

	"repro/internal/graph"
	"repro/internal/spanner"
)

// edgeInfo is the unit of knowledge flooded through the network: an edge
// of G and whether it was sampled into G'.
type edgeInfo struct {
	E       graph.Edge
	Sampled bool
}

// edgeInfoList is a knowledge snapshot; it reports its size so the
// simulator's bandwidth accounting reflects the Δ³-word flood messages
// that place this protocol in LOCAL rather than CONGEST.
type edgeInfoList []edgeInfo

// SizeWords implements local.Sized: one word per (edge, flag) entry.
func (l edgeInfoList) SizeWords() int { return len(l) }

// coin returns the deterministic sampling coin for an edge: a hash of
// (seed, u, v) mapped to [0, 1). Both endpoints can evaluate it, which
// models "u samples its incident edges and informs v" without a shared
// random tape; the owner (min endpoint) is still the one that flips and
// announces, keeping the message flow of Section 7.
func coin(seed uint64, e graph.Edge) float64 {
	x := seed ^ (uint64(uint32(e.U))<<32 | uint64(uint32(e.V)))
	// SplitMix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * (1.0 / (1 << 53))
}

// DistributedResult carries the outcome of the distributed construction.
type DistributedResult struct {
	H          *graph.Graph
	GPrime     *graph.Graph
	Rounds     int
	Messages   int64
	TotalWords int64 // cumulative payload volume (abstract words)
	MaxMsg     int   // largest single message (words) — LOCAL, not CONGEST
	DeltaPrime int
	SupportA   int
	SupportB   int
	Rho        float64
}

// DistributedRegularSpanner runs the Section 7 protocol on the LOCAL
// simulator:
//
//	round 1   every edge owner flips the sampling coin and informs the
//	          other endpoint;
//	rounds 2–4 nodes flood their accumulated (edge, sampled) knowledge,
//	          after which every node knows all edges incident to its
//	          3-hop neighborhood in both G and G';
//	round 5   every edge owner decides locally whether its edge belongs
//	          to H: sampled edges stay; edges not (a,b)-supported are
//	          reinserted; removed supported edges without a surviving
//	          3-detour in G' are reinserted (and the owner informs the
//	          neighbor, completing Corollary 3's final round).
//
// The decision rule is exactly Algorithm 1's, evaluated on purely local
// knowledge; the output is therefore identical to a sequential execution
// with the same coins (asserted by tests).
func DistributedRegularSpanner(g *graph.Graph, opts spanner.RegularOptions) *DistributedResult {
	n := g.N()
	delta := g.MaxDegree()
	dp := opts.DeltaPrime
	if dp <= 0 {
		dp = int(math.Sqrt(float64(delta)))
		if dp < 1 {
			dp = 1
		}
	}
	rho := float64(dp) / float64(delta)
	if rho > 1 {
		rho = 1
	}
	aFrac := opts.AFrac
	if aFrac <= 0 {
		aFrac = 0.5
	}
	c1 := opts.C1
	if c1 <= 0 {
		c1 = 0.25
	}
	a := opts.SupportA
	if a <= 0 {
		a = int(aFrac * float64(dp))
		if a < 1 {
			a = 1
		}
	}
	b := opts.SupportB
	if b <= 0 {
		b = int(c1 * float64(delta))
		if b < 1 {
			b = 1
		}
	}

	net := NewNetwork(g)
	// Per-node persistent state: accumulated knowledge. Each node touches
	// only its own entry, so the slice is safe under the parallel round
	// execution.
	knowledge := make([]map[graph.Edge]bool, n)
	for v := range knowledge {
		knowledge[v] = make(map[graph.Edge]bool)
	}
	// Per-owner final decisions: keep[e] for edges owned by the node.
	decisions := make([]map[graph.Edge]bool, n)
	for v := range decisions {
		decisions[v] = make(map[graph.Edge]bool)
	}

	mergeInbox := func(ctx *NodeCtx) {
		k := knowledge[ctx.ID]
		for _, m := range ctx.Inbox {
			switch p := m.Payload.(type) {
			case edgeInfo:
				k[p.E] = p.Sampled
			case edgeInfoList:
				for _, ei := range p {
					k[ei.E] = ei.Sampled
				}
			}
		}
	}
	snapshot := func(v int32) edgeInfoList {
		k := knowledge[v]
		out := make(edgeInfoList, 0, len(k))
		for e, s := range k {
			out = append(out, edgeInfo{E: e, Sampled: s})
		}
		return out
	}

	// Round 1: owners flip coins and inform the other endpoint.
	net.RunRound(func(ctx *NodeCtx) {
		u := ctx.ID
		k := knowledge[u]
		for _, v := range ctx.Neighbors() {
			e := graph.Edge{U: u, V: v}.Normalize()
			if e.U != u {
				continue // not the owner
			}
			sampled := coin(opts.Seed, e) < rho
			k[e] = sampled
			ctx.Send(v, edgeInfo{E: e, Sampled: sampled})
		}
	})

	// Rounds 2–4: flood knowledge to 3 hops.
	for round := 0; round < 3; round++ {
		net.RunRound(func(ctx *NodeCtx) {
			mergeInbox(ctx)
			ctx.Broadcast(snapshot(ctx.ID))
		})
	}

	// Round 5: merge the last flood wave, then every owner decides its
	// incident edges from local knowledge and informs the neighbor of
	// reinsertions (the message itself carries no new decision power —
	// both endpoints could compute it — but matches the protocol text).
	net.RunRound(func(ctx *NodeCtx) {
		mergeInbox(ctx)
		u := ctx.ID
		base, sampledG := localViews(n, knowledge[u])
		for _, v := range ctx.Neighbors() {
			e := graph.Edge{U: u, V: v}.Normalize()
			if e.U != u {
				continue
			}
			sampled := knowledge[u][e]
			keep := sampled
			if !keep && !spanner.IsSupported(base, e, a, b) {
				keep = true // E'' reinsertion
			}
			if !keep && opts.EnsureDetour {
				if !hasThreeDetour(sampledG, e.U, e.V) {
					keep = true
				}
			}
			decisions[u][e] = keep
			if keep && !sampled {
				ctx.Send(v, edgeInfo{E: e, Sampled: false})
			}
		}
	})

	// Assemble H and G' from owner decisions.
	keepSet := make(map[graph.Edge]bool, g.M())
	sampledSet := make(map[graph.Edge]bool, g.M())
	for v := 0; v < n; v++ {
		for e, keep := range decisions[v] {
			if keep {
				keepSet[e] = true
			}
			if knowledge[v][e] && e.U == int32(v) {
				sampledSet[e] = true
			}
		}
	}
	h := g.FilterEdges(func(e graph.Edge) bool { return keepSet[e] })
	gp := g.FilterEdges(func(e graph.Edge) bool { return sampledSet[e] })
	return &DistributedResult{
		H: h, GPrime: gp,
		Rounds: net.RoundsRun, Messages: net.MessagesSent,
		TotalWords: net.TotalWords, MaxMsg: net.MaxMessageWords,
		DeltaPrime: dp, SupportA: a, SupportB: b, Rho: rho,
	}
}

// localViews materializes a node's knowledge as graphs over the global id
// space: the known base graph and the known sampled subgraph.
func localViews(n int, k map[graph.Edge]bool) (base, sampled *graph.Graph) {
	edges := make([]graph.Edge, 0, len(k))
	sedges := make([]graph.Edge, 0, len(k))
	for e, s := range k {
		edges = append(edges, e)
		if s {
			sedges = append(sedges, e)
		}
	}
	return graph.FromEdges(n, edges), graph.FromEdges(n, sedges)
}

// hasThreeDetour reports whether a path of length ≤ 3 connects u and v in
// h (avoiding the direct edge, which by construction is absent from h for
// the callers' inputs).
func hasThreeDetour(h *graph.Graph, u, v int32) bool {
	return h.DistWithin(u, v, 3) != graph.Unreachable
}

// SequentialReference computes what Algorithm 1 with the same hash-based
// coins would output, entirely centrally — the ground truth the
// distributed protocol is tested against.
func SequentialReference(g *graph.Graph, opts spanner.RegularOptions) *DistributedResult {
	n := g.N()
	delta := g.MaxDegree()
	dp := opts.DeltaPrime
	if dp <= 0 {
		dp = int(math.Sqrt(float64(delta)))
		if dp < 1 {
			dp = 1
		}
	}
	rho := float64(dp) / float64(delta)
	if rho > 1 {
		rho = 1
	}
	aFrac := opts.AFrac
	if aFrac <= 0 {
		aFrac = 0.5
	}
	c1 := opts.C1
	if c1 <= 0 {
		c1 = 0.25
	}
	a := opts.SupportA
	if a <= 0 {
		a = int(aFrac * float64(dp))
		if a < 1 {
			a = 1
		}
	}
	b := opts.SupportB
	if b <= 0 {
		b = int(c1 * float64(delta))
		if b < 1 {
			b = 1
		}
	}
	sampled := g.FilterEdges(func(e graph.Edge) bool { return coin(opts.Seed, e) < rho })
	supported := spanner.SupportedEdges(g, a, b)
	keep := make([]bool, g.M())
	scratch := graph.NewBFSScratch(n)
	for i, e := range g.Edges() {
		switch {
		case sampled.HasEdge(e.U, e.V):
			keep[i] = true
		case !supported[i]:
			keep[i] = true
		case opts.EnsureDetour && scratch.DistWithin(sampled, e.U, e.V, 3) == graph.Unreachable:
			keep[i] = true
		}
	}
	idx := 0
	h := g.FilterEdges(func(e graph.Edge) bool {
		k := keep[idx]
		idx++
		return k
	})
	return &DistributedResult{H: h, GPrime: sampled, DeltaPrime: dp, SupportA: a, SupportB: b, Rho: rho}
}
