package local

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spanner"
)

func matchingDemands(g *graph.Graph) []graph.Edge {
	used := make([]bool, g.N())
	var m []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			m = append(m, e)
		}
	}
	return m
}

func TestDistributedExpanderThreeRounds(t *testing.T) {
	r := rng.New(61)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	p := spanner.ProbForEpsilon(n, spanner.EpsilonForDegree(n, d))
	demands := matchingDemands(g)
	res, err := DistributedExpanderSpanner(g, p, 7, demands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if err := res.Routing.Validate(res.H); err != nil {
		t.Fatal(err)
	}
	// Theorem 2 w.h.p.: essentially every removed demand has a local
	// 3-hop replacement.
	if res.Unroutable > len(demands)/20 {
		t.Fatalf("%d of %d demands unroutable locally", res.Unroutable, len(demands))
	}
	// Every distributed path has length ≤ 3 unless it was a fallback.
	long := 0
	for _, pth := range res.Routing.Paths {
		if pth.Len() > 3 {
			long++
		}
	}
	if long > res.Unroutable {
		t.Fatalf("%d paths exceed 3 hops but only %d were fallbacks", long, res.Unroutable)
	}
}

func TestDistributedExpanderMatchesCentralSampling(t *testing.T) {
	r := rng.New(62)
	g := gen.MustRandomRegular(120, 24, r)
	p := 0.5
	res, err := DistributedExpanderSpanner(g, p, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The spanner must equal central sampling with the same coins.
	want := g.FilterEdges(func(e graph.Edge) bool { return coin(9, e) < p })
	if res.H.M() != want.M() || !res.H.IsSubgraphOf(want) {
		t.Fatalf("distributed H (%d edges) != central (%d edges)", res.H.M(), want.M())
	}
}

func TestDistributedExpanderCongestion(t *testing.T) {
	r := rng.New(63)
	n, d := 216, 60
	g := gen.MustRandomRegular(n, d, r)
	p := spanner.ProbForEpsilon(n, spanner.EpsilonForDegree(n, d))
	demands := matchingDemands(g)
	res, err := DistributedExpanderSpanner(g, p, 11, demands)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Routing.NodeCongestion(n)
	if c > 24 { // 3·log2(216) ≈ 23: generous Theorem 2 budget
		t.Fatalf("distributed matching congestion %d", c)
	}
}

func TestDistributedExpanderRejectsBadDemands(t *testing.T) {
	g := gen.Cycle(8)
	if _, err := DistributedExpanderSpanner(g, 0.9, 1, []graph.Edge{{U: 0, V: 4}}); err == nil {
		t.Fatal("accepted a non-edge demand")
	}
	if _, err := DistributedExpanderSpanner(g, 0.9, 1, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}); err == nil {
		t.Fatal("accepted overlapping demands")
	}
}

func TestEpsilonProbHelper(t *testing.T) {
	if p := epsilonProb(216, 0.1); p <= 0 || p >= 1 {
		t.Fatalf("p = %v", p)
	}
}
