package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe calls.
// Buckets are defined by their upper bounds; a value v lands in the first
// bucket whose bound is >= v, and values above every bound land in an
// implicit overflow bucket. Quantiles are answered by linear interpolation
// inside the owning bucket, which is exact enough for latency reporting
// (the intended use: the oracle's per-query latency and packetsim's
// per-packet delivery steps) while keeping Observe lock-free.
type Histogram struct {
	bounds []float64      // sorted ascending, len B
	counts []atomic.Int64 // len B+1; counts[B] is the overflow bucket
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	maxObs atomic.Uint64 // float64 bits of the maximum observed value
}

// NewHistogram builds a histogram from sorted ascending bucket upper
// bounds. It panics on empty or unsorted bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not strictly increasing at %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.maxObs.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// ExpBuckets returns n strictly increasing bounds start, start·factor,
// start·factor², … — the usual latency bucket layout. It panics unless
// start > 0, factor > 1, and n >= 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("stats: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewLatencyHistogram returns a histogram sized for query latencies in
// seconds: 60 exponential buckets from 100 ns to ~3.5 s.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(ExpBuckets(100e-9, 1.34, 60))
}

// bucketFor returns the index of the bucket owning v (binary search).
func (h *Histogram) bucketFor(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // == len(bounds) for overflow
}

// Observe records one value. Safe for concurrent use. NaN observations
// are dropped (not counted): a single NaN would otherwise poison the
// CAS-accumulated sum and every Mean/Stats report derived from it.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[h.bucketFor(v)].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxObs.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxObs.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Max returns the maximum observed value (0 when empty). A racing read
// that lands between a concurrent Observe's count increment and its max
// update reports 0 rather than the -Inf the max register is seeded with.
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return sanitizeMax(math.Float64frombits(h.maxObs.Load()))
}

// sanitizeMax clamps the seeded -Inf (and any NaN) out of a max register
// read, so no consumer ever renders a non-finite maximum for a histogram
// that has observations.
func sanitizeMax(m float64) float64 {
	if math.IsNaN(m) || math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Quantile returns an estimate of the q-th quantile (q in [0, 1]) by
// interpolating inside the bucket holding the rank-⌈q·n⌉ observation. An
// empty histogram reports 0. Values in the overflow bucket report the
// maximum observed value. Concurrent Observe calls during Quantile yield a
// best-effort snapshot.
func (h *Histogram) Quantile(q float64) float64 { return h.Buckets().Quantile(q) }

// HistogramBuckets is a structured point-in-time snapshot of a Histogram:
// bucket bounds with cumulative counts (the Prometheus histogram shape)
// plus the observation sum, count, and maximum. Count equals the last
// cumulative entry by construction, so a snapshot is always internally
// consistent even when Observe calls race the read.
type HistogramBuckets struct {
	// Bounds are the bucket upper bounds, ascending; an implicit +Inf
	// overflow bucket follows the last bound.
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i]; the final entry
	// (index len(Bounds)) includes the overflow bucket and equals Count.
	Cumulative []int64
	Count      int64
	Sum        float64
	Max        float64 // maximum observed value; 0 when empty
}

// Buckets snapshots the histogram. The per-bucket counts are loaded once
// each and Count is derived from them (not from the live total), so the
// snapshot never reports a cumulative series that disagrees with its own
// total.
func (h *Histogram) Buckets() HistogramBuckets {
	b := HistogramBuckets{
		Bounds:     h.bounds, // immutable after construction
		Cumulative: make([]int64, len(h.counts)),
	}
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		b.Cumulative[i] = running
	}
	b.Count = running
	b.Sum = math.Float64frombits(h.sum.Load())
	if running > 0 {
		b.Max = sanitizeMax(math.Float64frombits(h.maxObs.Load()))
	}
	return b
}

// Mean returns the snapshot's average observed value (0 when empty).
func (b HistogramBuckets) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Quantile answers the q-th quantile from the snapshot with the same
// interpolation rule as Histogram.Quantile. q is clamped to [0, 1] (NaN
// counts as 1). Ranks landing in the implicit +Inf overflow bucket report
// the maximum observed value, floored at the last finite bound — so a
// snapshot whose Max register is unset (zero value, or a read racing the
// first Observe) still answers a finite, monotone quantile instead of 0,
// -Inf, or NaN.
func (b HistogramBuckets) Quantile(q float64) float64 {
	if b.Count == 0 {
		return 0
	}
	if math.IsNaN(q) || q > 1 {
		q = 1
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(b.Count)))
	if rank < 1 {
		rank = 1
	}
	var prev int64
	for i, cum := range b.Cumulative {
		if cum < rank {
			prev = cum
			continue
		}
		if i == len(b.Bounds) {
			return b.overflowValue()
		}
		inBucket := cum - prev
		lower := 0.0
		if i > 0 {
			lower = b.Bounds[i-1]
		}
		upper := b.Bounds[i]
		// Position of the requested rank inside this bucket, in (0, 1].
		frac := float64(rank-prev) / float64(inBucket)
		return lower + (upper-lower)*frac
	}
	return b.overflowValue()
}

// overflowValue is the representative value of the +Inf overflow bucket:
// the observed maximum when it is consistent (anything in the overflow
// bucket must exceed the last bound), otherwise the last finite bound.
func (b HistogramBuckets) overflowValue() float64 {
	if len(b.Bounds) == 0 {
		return sanitizeMax(b.Max)
	}
	last := b.Bounds[len(b.Bounds)-1]
	if b.Max > last { // false for NaN, -Inf, and unset-zero Max
		return b.Max
	}
	return last
}

// Snapshot renders the headline quantiles, convenient for logs.
func (h *Histogram) Snapshot() string {
	b := h.Buckets()
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		b.Count, b.Mean(), b.Quantile(0.50), b.Quantile(0.95), b.Quantile(0.99), b.Max)
}
