// Package stats provides the small numeric-summary and table-rendering
// utilities the experiment harness uses to report paper-vs-measured
// results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P95          float64
	StdDev       float64
}

// Summarize computes a Summary; an empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(s.N))
	return s
}

// Percentile returns the p-th percentile (0–100) of a sorted sample using
// linear interpolation. It panics on empty input.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeInts is Summarize over ints.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary compactly.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.3g mean=%.3g med=%.3g p95=%.3g max=%.3g sd=%.3g",
		s.N, s.Min, s.Mean, s.Median, s.P95, s.Max, s.StdDev)
}

// Table renders aligned text tables for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.01 && v != 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", width[i]-len(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is 0 — convenient for normalized report
// columns.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
