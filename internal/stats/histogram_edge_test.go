package stats

import (
	"math"
	"strings"
	"testing"
)

// finite fails the test if v is NaN or ±Inf — the regression these tests
// pin is Stats()/bench output rendering non-finite numbers.
func finite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want a finite value", name, v)
	}
}

// TestHistogramEmptyReadsAreFinite: every read path of a histogram with
// zero observations must answer 0, never the -Inf the max register is
// seeded with and never NaN.
func TestHistogramEmptyReadsAreFinite(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for name, v := range map[string]float64{
		"Max":            h.Max(),
		"Mean":           h.Mean(),
		"Sum":            h.Sum(),
		"Quantile(0)":    h.Quantile(0),
		"Quantile(0.5)":  h.Quantile(0.5),
		"Quantile(1)":    h.Quantile(1),
		"Buckets().Max":  h.Buckets().Max,
		"Buckets().Mean": h.Buckets().Mean(),
	} {
		finite(t, name, v)
		if v != 0 {
			t.Errorf("%s = %v on an empty histogram, want 0", name, v)
		}
	}
	if s := h.Snapshot(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("empty Snapshot renders non-finite values: %q", s)
	}
}

// TestObserveNaNDropped: a NaN observation must not poison the
// CAS-accumulated sum (one NaN would make every later Mean NaN forever).
func TestObserveNaNDropped(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN observation counted: n=%d", h.Count())
	}
	h.Observe(1.5)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("Mean after NaN+1.5 = %v, want 1.5", got)
	}
	finite(t, "Max", h.Max())
}

// TestQuantileEdgeArguments: out-of-domain q must clamp, not propagate.
func TestQuantileEdgeArguments(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	cases := []struct {
		q    float64
		want float64
	}{
		{math.NaN(), 2},  // clamps to q=1: upper bound of the top occupied bucket
		{2, 2},           // q > 1 clamps to 1
		{-0.5, 1},        // q < 0 clamps to 0, which still answers rank 1
		{math.Inf(1), 2}, // +Inf clamps to 1
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestOverflowBucketQuantiles is the table-driven pin for the overflow
// bucket: manually assembled snapshots (the shapes a racing or
// deserialized reader can observe) must answer finite, monotone
// quantiles. The old code interpolated toward a zero or -Inf "max" and
// reported garbage below the last bound.
func TestOverflowBucketQuantiles(t *testing.T) {
	cases := []struct {
		name string
		b    HistogramBuckets
		q    float64
		want float64
	}{
		{
			name: "all mass in overflow, max unset (racing snapshot)",
			b:    HistogramBuckets{Bounds: []float64{1, 2}, Cumulative: []int64{0, 0, 3}, Count: 3},
			q:    0.99,
			want: 2, // floored at the last finite bound
		},
		{
			name: "all mass in overflow, max recorded",
			b:    HistogramBuckets{Bounds: []float64{1, 2}, Cumulative: []int64{0, 0, 3}, Count: 3, Max: 9},
			q:    0.99,
			want: 9,
		},
		{
			name: "overflow with inconsistent max below last bound",
			b:    HistogramBuckets{Bounds: []float64{1, 2}, Cumulative: []int64{0, 0, 1}, Count: 1, Max: 0.5},
			q:    1,
			want: 2,
		},
		{
			name: "overflow with -Inf max",
			b:    HistogramBuckets{Bounds: []float64{4}, Cumulative: []int64{0, 2}, Count: 2, Max: math.Inf(-1)},
			q:    0.5,
			want: 4,
		},
		{
			name: "no bounds at all",
			b:    HistogramBuckets{Cumulative: []int64{2}, Count: 2, Max: 7},
			q:    0.5,
			want: 7,
		},
		{
			name: "no bounds, NaN max",
			b:    HistogramBuckets{Cumulative: []int64{2}, Count: 2, Max: math.NaN()},
			q:    0.5,
			want: 0,
		},
		{
			name: "mass below and in overflow",
			b:    HistogramBuckets{Bounds: []float64{1, 2}, Cumulative: []int64{2, 2, 4}, Count: 4, Max: 10},
			q:    0.25,
			want: 0.5, // interpolated inside the first bucket
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.b.Quantile(tc.q)
			finite(t, "Quantile", got)
			if got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// TestLiveOverflowQuantileUsesObservedMax: the end-to-end path — observe
// past every bound, read quantiles — must report the true maximum, and
// Snapshot must stay finite throughout.
func TestLiveOverflowQuantileUsesObservedMax(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(70)
	if got := h.Quantile(0.99); got != 70 {
		t.Fatalf("overflow quantile = %v, want the observed max 70", got)
	}
	if s := h.Snapshot(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("Snapshot renders non-finite values: %q", s)
	}
}
