package stats

import (
	"fmt"
	"testing"
)

func TestCountersSnapshot(t *testing.T) {
	c := NewCounters("a", "b", "c")
	c.Add("b", 5)
	c.Add("a", 2)
	snap := c.Snapshot()
	want := []CounterValue{{"a", 2}, {"b", 5}, {"c", 0}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, w := range want {
		if snap[i] != w {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, snap[i], w)
		}
	}
	if got, wantStr := c.String(), "a=2 b=5 c=0"; got != wantStr {
		t.Errorf("String() = %q, want %q (must delegate to Snapshot order)", got, wantStr)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.7, 1.5, 3, 3, 8} {
		h.Observe(v)
	}
	b := h.Buckets()
	if fmt.Sprint(b.Bounds) != "[1 2 4]" {
		t.Errorf("bounds = %v", b.Bounds)
	}
	wantCum := []int64{2, 3, 5, 6}
	for i, w := range wantCum {
		if b.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, b.Cumulative[i], w)
		}
	}
	if b.Count != 6 {
		t.Errorf("count = %d, want 6", b.Count)
	}
	if b.Sum != 16.7 {
		t.Errorf("sum = %v, want 16.7", b.Sum)
	}
	if b.Max != 8 {
		t.Errorf("max = %v, want 8", b.Max)
	}
	// Snapshot quantiles agree with the histogram's own.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if hq, bq := h.Quantile(q), b.Quantile(q); hq != bq {
			t.Errorf("quantile(%v): histogram %v != snapshot %v", q, hq, bq)
		}
	}
}

func TestHistogramBucketsEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	b := h.Buckets()
	if b.Count != 0 || b.Sum != 0 || b.Max != 0 {
		t.Errorf("empty buckets = %+v", b)
	}
	if b.Quantile(0.5) != 0 || b.Mean() != 0 {
		t.Error("empty snapshot quantile/mean not 0")
	}
}
