package stats

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram stats not all zero: count=%d sum=%v mean=%v max=%v",
			h.Count(), h.Sum(), h.Mean(), h.Max())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		// The sample lives in bucket (1, 2]; any quantile must land there.
		if got <= 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want in (1, 2]", q, got)
		}
	}
	if h.Count() != 1 || h.Sum() != 1.5 || h.Max() != 1.5 {
		t.Errorf("count=%d sum=%v max=%v, want 1, 1.5, 1.5", h.Count(), h.Sum(), h.Max())
	}
}

func TestHistogramAllSameBucket(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got <= 10 || got > 20 {
			t.Errorf("Quantile(%v) = %v, want in (10, 20]", q, got)
		}
	}
	// Quantiles inside one bucket must be monotone in q.
	if h.Quantile(0.1) > h.Quantile(0.9) {
		t.Errorf("quantiles not monotone: q10=%v > q90=%v", h.Quantile(0.1), h.Quantile(0.9))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(50)
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("overflow Quantile(0.99) = %v, want max observed 100", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %v, want 100", got)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 12)) // 1, 2, 4, ..., 2048
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	// True p50 = 500 (bucket (256,512]); true p99 = 990 (bucket (512,1024]).
	if p50 < 256 || p50 > 512 {
		t.Errorf("p50 = %v, want within (256, 512]", p50)
	}
	if p99 < 512 || p99 > 1024 {
		t.Errorf("p99 = %v, want within (512, 1024]", p99)
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Errorf("mean = %v, want 500.5", h.Mean())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100+1) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	wantSum := float64(workers) * per * 50.5 * 1e-6
	if math.Abs(h.Sum()-wantSum)/wantSum > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestExpBucketsPanics(t *testing.T) {
	for _, c := range []struct{ start, factor float64; n int }{
		{0, 2, 3}, {1, 1, 3}, {1, 2, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v, %v, %d) did not panic", c.start, c.factor, c.n)
				}
			}()
			ExpBuckets(c.start, c.factor, c.n)
		}()
	}
}
