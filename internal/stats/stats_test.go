package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("sd = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.String() != "n=0" {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(sorted, 100); p != 40 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(sorted, 50); p != 25 {
		t.Fatalf("p50 = %v", p)
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Percentile(nil, 50)
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3)
	tb.AddRow("beta", 12.5)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "3") {
		t.Fatalf("row line: %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		12.5:     "12.500",
		0.001234: "0.00123",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.Inf(1)); got != "inf" {
		t.Errorf("inf = %q", got)
	}
	if got := formatFloat(math.NaN()); got != "nan" {
		t.Errorf("nan = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("zero denominator not handled")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestPropertySummaryOrdering(t *testing.T) {
	check := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Exclude non-finite values and magnitudes whose sum would
			// overflow float64 (the summary contract assumes finite sums).
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
