package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Counters is a fixed, ordered set of named monotonic counters safe for
// concurrent use — the serving layer's request/error accounting. The name
// set is frozen at construction so Add/Get are a slice index away from the
// atomic (no map lookup under contention on the hot path is necessary via
// Idx) and String renders the counters in declaration order, giving stats
// responses a stable shape.
type Counters struct {
	names []string
	vals  []atomic.Int64
	index map[string]int
}

// NewCounters declares the counter set. Names must be unique; it panics
// otherwise (a programming error, not input).
func NewCounters(names ...string) *Counters {
	c := &Counters{
		names: append([]string(nil), names...),
		vals:  make([]atomic.Int64, len(names)),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if _, dup := c.index[n]; dup {
			panic("stats: duplicate counter " + n)
		}
		c.index[n] = i
	}
	return c
}

// Idx returns the slot for name, for hot paths that want to resolve the
// name once. It panics on an undeclared name.
func (c *Counters) Idx(name string) int {
	i, ok := c.index[name]
	if !ok {
		panic("stats: unknown counter " + name)
	}
	return i
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) { c.vals[c.Idx(name)].Add(delta) }

// AddIdx increments the counter at a slot returned by Idx.
func (c *Counters) AddIdx(i int, delta int64) { c.vals[i].Add(delta) }

// Get returns the named counter's current value.
func (c *Counters) Get(name string) int64 { return c.vals[c.Idx(name)].Load() }

// CounterValue is one entry of a Counters snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// Snapshot returns the counters as ordered name/value pairs (declaration
// order), one atomic load per counter. Exposition layers (the obs
// registry, the wire stats response) iterate this instead of parsing the
// String rendering.
func (c *Counters) Snapshot() []CounterValue {
	out := make([]CounterValue, len(c.names))
	for i, n := range c.names {
		out[i] = CounterValue{Name: n, Value: c.vals[i].Load()}
	}
	return out
}

// String renders "name=value ..." in declaration order, delegating to
// Snapshot.
func (c *Counters) String() string {
	var b strings.Builder
	for i, cv := range c.Snapshot() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", cv.Name, cv.Value)
	}
	return b.String()
}
