package stats

import (
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters("conns", "busy", "requests")
	c.Add("conns", 1)
	c.Add("requests", 5)
	c.Add("requests", 2)
	if got := c.Get("requests"); got != 7 {
		t.Fatalf("requests = %d, want 7", got)
	}
	if got := c.Get("busy"); got != 0 {
		t.Fatalf("busy = %d, want 0", got)
	}
	if got := c.String(); got != "conns=1 busy=0 requests=7" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters("a", "b")
	ai := c.Idx("a")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddIdx(ai, 1)
				c.Add("b", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("a"); got != 8000 {
		t.Fatalf("a = %d, want 8000", got)
	}
	if got := c.Get("b"); got != 16000 {
		t.Fatalf("b = %d, want 16000", got)
	}
}

func TestCountersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown counter name did not panic")
		}
	}()
	NewCounters("x").Add("y", 1)
}
