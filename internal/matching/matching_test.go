package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestHopcroftKarpPerfect(t *testing.T) {
	// K_{5,5} has a perfect matching.
	b := &Bipartite{L: 5, R: 5, Adj: make([][]int32, 5)}
	for l := 0; l < 5; l++ {
		for r := 0; r < 5; r++ {
			b.Adj[l] = append(b.Adj[l], int32(r))
		}
	}
	matchL, size := HopcroftKarp(b)
	if size != 5 {
		t.Fatalf("size = %d, want 5", size)
	}
	if !VerifyMatching(b, matchL) {
		t.Fatal("invalid matching")
	}
}

func TestHopcroftKarpStar(t *testing.T) {
	// One left vertex adjacent to all rights: matching size 1.
	b := &Bipartite{L: 3, R: 4, Adj: [][]int32{{0, 1, 2, 3}, {0}, {0}}}
	_, size := HopcroftKarp(b)
	// Left 0 can take right 1..3 while left 1 or 2 takes right 0: size 2.
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
}

func TestHopcroftKarpAugmenting(t *testing.T) {
	// Classic case needing augmenting paths:
	// L0-{R0}, L1-{R0,R1}, L2-{R1,R2}: perfect matching of size 3 exists.
	b := &Bipartite{L: 3, R: 3, Adj: [][]int32{{0}, {0, 1}, {1, 2}}}
	matchL, size := HopcroftKarp(b)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if !VerifyMatching(b, matchL) {
		t.Fatal("invalid matching")
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	b := &Bipartite{L: 3, R: 3, Adj: make([][]int32, 3)}
	_, size := HopcroftKarp(b)
	if size != 0 {
		t.Fatalf("size = %d, want 0", size)
	}
}

// bruteMaxMatching computes maximum matching size by exhaustive search
// (exponential; only for tiny graphs).
func bruteMaxMatching(b *Bipartite) int {
	usedR := make([]bool, b.R)
	var rec func(l int) int
	rec = func(l int) int {
		if l == b.L {
			return 0
		}
		best := rec(l + 1) // skip l
		for _, r := range b.Adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if v := 1 + rec(l+1); v > best {
					best = v
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func TestPropertyHopcroftKarpOptimal(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		L := 1 + r.Intn(7)
		R := 1 + r.Intn(7)
		b := &Bipartite{L: L, R: R, Adj: make([][]int32, L)}
		for l := 0; l < L; l++ {
			for rr := 0; rr < R; rr++ {
				if r.Bernoulli(0.4) {
					b.Adj[l] = append(b.Adj[l], int32(rr))
				}
			}
		}
		matchL, size := HopcroftKarp(b)
		if !VerifyMatching(b, matchL) {
			return false
		}
		return size == bruteMaxMatching(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMisraGriesSmall(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Path(6), gen.Cycle(7), gen.Cycle(8), gen.Clique(6), gen.Clique(7),
		gen.CompleteBipartite(4, 5), gen.Hypercube(4),
	} {
		col := MisraGries(g)
		if !col.Verify() {
			t.Fatalf("%v: improper coloring", g)
		}
		if col.NumColors > g.MaxDegree()+1 {
			t.Fatalf("%v: %d colors > Δ+1 = %d", g, col.NumColors, g.MaxDegree()+1)
		}
	}
}

func TestMisraGriesEvenCycleUsesDeltaColors(t *testing.T) {
	// Even cycles are class 1: exactly 2 colors suffice; Misra-Gries may
	// use Δ+1 = 3, but must stay proper. Just check bound here.
	g := gen.Cycle(10)
	col := MisraGries(g)
	if !col.Verify() || col.NumColors > 3 {
		t.Fatalf("C10 coloring invalid or used %d colors", col.NumColors)
	}
}

func TestMisraGriesEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	col := MisraGries(g)
	if col.NumColors != 0 {
		t.Fatalf("empty graph used %d colors", col.NumColors)
	}
}

func TestMisraGriesMatchingsPartition(t *testing.T) {
	g := gen.Clique(8)
	col := MisraGries(g)
	ms := col.Matchings()
	total := 0
	for _, m := range ms {
		total += len(m)
		// Each group is a matching: no shared endpoints.
		used := make(map[int32]bool)
		for _, e := range m {
			if used[e.U] || used[e.V] {
				t.Fatal("color class is not a matching")
			}
			used[e.U] = true
			used[e.V] = true
		}
	}
	if total != g.M() {
		t.Fatalf("matchings cover %d edges, want %d", total, g.M())
	}
}

func TestPropertyMisraGriesRandomGraphs(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.BuildDedup()
		col := MisraGries(g)
		return col.Verify() && (g.M() == 0 || col.NumColors <= g.MaxDegree()+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEdgeColoring(t *testing.T) {
	g := gen.Clique(9)
	col := GreedyEdgeColoring(g)
	if !col.Verify() {
		t.Fatal("greedy coloring improper")
	}
	if col.NumColors > 2*g.MaxDegree()-1 {
		t.Fatalf("greedy used %d colors", col.NumColors)
	}
}

func TestGreedyMaximalMatching(t *testing.T) {
	g := gen.Cycle(9)
	m := GreedyMaximalMatching(g)
	used := make(map[int32]bool)
	for _, e := range m {
		if used[e.U] || used[e.V] {
			t.Fatal("not a matching")
		}
		used[e.U] = true
		used[e.V] = true
	}
	// Maximality: every edge touches a matched vertex.
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			t.Fatal("matching not maximal")
		}
	}
}

func BenchmarkMisraGriesRegular(b *testing.B) {
	r := rng.New(21)
	g := gen.MustRandomRegular(200, 12, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MisraGries(g)
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	r := rng.New(22)
	L, R := 300, 300
	bi := &Bipartite{L: L, R: R, Adj: make([][]int32, L)}
	for l := 0; l < L; l++ {
		for k := 0; k < 8; k++ {
			bi.Adj[l] = append(bi.Adj[l], int32(r.Intn(R)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(bi)
	}
}
