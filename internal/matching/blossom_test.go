package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBlossomTriangle(t *testing.T) {
	g := NewGeneralGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	match, size := Blossom(g)
	if size != 1 {
		t.Fatalf("triangle matching size %d, want 1", size)
	}
	if !VerifyGeneralMatching(g, match) {
		t.Fatal("invalid matching")
	}
}

func TestBlossomOddCycle(t *testing.T) {
	// C5 has maximum matching 2.
	g := NewGeneralGraph(5)
	for i := int32(0); i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	_, size := Blossom(g)
	if size != 2 {
		t.Fatalf("C5 matching size %d, want 2", size)
	}
}

func TestBlossomRequiresContraction(t *testing.T) {
	// The classic case: two triangles joined by a path, where a greedy
	// bipartite-style search fails without blossom contraction.
	//   0-1, 1-2, 2-0 (triangle A), 3-4, 4-5, 5-3 (triangle B), 2-3.
	g := NewGeneralGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	match, size := Blossom(g)
	if size != 3 {
		t.Fatalf("matching size %d, want 3 (perfect)", size)
	}
	if !VerifyGeneralMatching(g, match) {
		t.Fatal("invalid matching")
	}
}

func TestBlossomPetersenPerfect(t *testing.T) {
	// The Petersen graph has a perfect matching (size 5).
	outer := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int32{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	g := NewGeneralGraph(10)
	for _, e := range outer {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range inner {
		g.AddEdge(e[0], e[1])
	}
	for i := int32(0); i < 5; i++ {
		g.AddEdge(i, i+5)
	}
	match, size := Blossom(g)
	if size != 5 {
		t.Fatalf("Petersen matching size %d, want 5", size)
	}
	if !VerifyGeneralMatching(g, match) {
		t.Fatal("invalid matching")
	}
}

// bruteGeneralMatching computes the maximum matching size exhaustively.
func bruteGeneralMatching(g *GeneralGraph) int {
	type edge struct{ u, v int32 }
	var edges []edge
	for u := int32(0); u < int32(g.N); u++ {
		for _, v := range g.Adj[u] {
			if v > u {
				edges = append(edges, edge{u, v})
			}
		}
	}
	used := make([]bool, g.N)
	var rec func(i int) int
	rec = func(i int) int {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1)
		e := edges[i]
		if !used[e.u] && !used[e.v] {
			used[e.u] = true
			used[e.v] = true
			if got := 1 + rec(i+1); got > best {
				best = got
			}
			used[e.u] = false
			used[e.v] = false
		}
		return best
	}
	return rec(0)
}

func TestPropertyBlossomOptimal(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(9)
		g := NewGeneralGraph(n)
		seen := make(map[[2]int32]bool)
		for i := 0; i < 2*n; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				continue
			}
			seen[[2]int32{u, v}] = true
			g.AddEdge(u, v)
		}
		match, size := Blossom(g)
		if !VerifyGeneralMatching(g, match) {
			return false
		}
		return size == bruteGeneralMatching(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlossom(b *testing.B) {
	r := rng.New(77)
	n := 200
	g := NewGeneralGraph(n)
	for i := 0; i < 5*n; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blossom(g)
	}
}
