package matching

// Edmonds' blossom algorithm for maximum matching in general (not
// necessarily bipartite) graphs, O(V³).
//
// The spanner package needs it for Lemma 4's neighborhood matchings: when
// N(u) and N(v) overlap, the "matching between N(u) and N(v)" is a
// matching problem on a non-bipartite graph (a shared neighbor may be
// matched to another shared neighbor), and Hopcroft–Karp over the two
// sides systematically underestimates it.

// GeneralGraph is an adjacency-list graph for Blossom; vertices are
// 0..N−1.
type GeneralGraph struct {
	N   int
	Adj [][]int32
}

// NewGeneralGraph creates an empty graph on n vertices.
func NewGeneralGraph(n int) *GeneralGraph {
	return &GeneralGraph{N: n, Adj: make([][]int32, n)}
}

// AddEdge inserts an undirected edge (both directions). Duplicate edges
// are harmless (they only cost scan time).
func (g *GeneralGraph) AddEdge(u, v int32) {
	if u == v {
		return
	}
	g.Adj[u] = append(g.Adj[u], v)
	g.Adj[v] = append(g.Adj[v], u)
}

// Blossom computes a maximum matching. match[v] is the partner of v or −1.
func Blossom(g *GeneralGraph) (match []int32, size int) {
	n := g.N
	match = make([]int32, n)
	p := make([]int32, n)    // parent in the alternating tree
	base := make([]int32, n) // base of the blossom containing v
	q := make([]int32, 0, n)
	used := make([]bool, n)
	blossom := make([]bool, n)
	for i := range match {
		match[i] = -1
	}

	lca := func(a, b int32) int32 {
		usedPath := make(map[int32]bool)
		for {
			a = base[a]
			usedPath[a] = true
			if match[a] == -1 {
				break
			}
			a = p[match[a]]
		}
		for {
			b = base[b]
			if usedPath[b] {
				return b
			}
			b = p[match[b]]
		}
	}

	markPath := func(v, b, child int32) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	findPath := func(root int32) int32 {
		for i := range used {
			used[i] = false
			p[i] = -1
			base[i] = int32(i)
		}
		q = q[:0]
		q = append(q, root)
		used[root] = true
		for head := 0; head < len(q); head++ {
			v := q[head]
			for _, to := range g.Adj[v] {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// Found a blossom: contract it.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := int32(0); i < int32(n); i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								q = append(q, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						return to // augmenting path found
					}
					used[match[to]] = true
					q = append(q, match[to])
				}
			}
		}
		return -1
	}

	for v := int32(0); v < int32(n); v++ {
		if match[v] != -1 {
			continue
		}
		u := findPath(v)
		if u == -1 {
			continue
		}
		size++
		// Augment along the path ending at u.
		for u != -1 {
			pv := p[u]
			ppv := match[pv]
			match[u] = pv
			match[pv] = u
			u = ppv
		}
	}
	return match, size
}

// VerifyGeneralMatching checks match is a valid matching of g.
func VerifyGeneralMatching(g *GeneralGraph, match []int32) bool {
	for v := int32(0); v < int32(g.N); v++ {
		w := match[v]
		if w == -1 {
			continue
		}
		if w < 0 || int(w) >= g.N || match[w] != v || w == v {
			return false
		}
		found := false
		for _, x := range g.Adj[v] {
			if x == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
