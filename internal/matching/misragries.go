package matching

import (
	"repro/internal/graph"
)

// EdgeColoring is a proper edge coloring of a graph: Colors[i] is the
// color (in [0, NumColors)) of g.Edges()[i], with no two edges sharing an
// endpoint and a color.
type EdgeColoring struct {
	G         *graph.Graph
	Colors    []int32
	NumColors int
}

// Matchings groups the edges by color; each group is a matching.
func (c *EdgeColoring) Matchings() [][]graph.Edge {
	out := make([][]graph.Edge, c.NumColors)
	for i, e := range c.G.Edges() {
		col := c.Colors[i]
		out[col] = append(out[col], e)
	}
	return out
}

// Verify checks the coloring is proper and uses colors in range.
func (c *EdgeColoring) Verify() bool {
	n := c.G.N()
	seen := make(map[int64]bool, 2*c.G.M())
	key := func(v int32, col int32) int64 { return int64(v)*int64(c.NumColors+1) + int64(col) }
	_ = n
	for i, e := range c.G.Edges() {
		col := c.Colors[i]
		if col < 0 || int(col) >= c.NumColors {
			return false
		}
		ku, kv := key(e.U, col), key(e.V, col)
		if seen[ku] || seen[kv] {
			return false
		}
		seen[ku] = true
		seen[kv] = true
	}
	return true
}

// MisraGries edge-colors g with at most Δ+1 colors using the Misra–Gries
// constructive proof of Vizing's theorem. This is the coloring Algorithm 2
// needs: each level-k subgraph with degree d_k is split into m_k ≤ d_k+1
// matchings.
//
// Complexity O(n·m); entirely adequate for the level subgraphs arising in
// the experiments (their sizes shrink geometrically with level).
func MisraGries(g *graph.Graph) *EdgeColoring {
	n := g.N()
	maxDeg := g.MaxDegree()
	numColors := maxDeg + 1
	if g.M() == 0 {
		return &EdgeColoring{G: g, Colors: nil, NumColors: 0}
	}

	// colorAt[v][c] = the neighbor joined to v by the edge colored c, or −1.
	colorAt := make([][]int32, n)
	for v := range colorAt {
		row := make([]int32, numColors)
		for c := range row {
			row[c] = -1
		}
		colorAt[v] = row
	}
	// edgeColor[{u,v}] for output assembly.
	edgeColor := make(map[graph.Edge]int32, g.M())

	free := func(v int32) int32 {
		for c := int32(0); int(c) < numColors; c++ {
			if colorAt[v][c] == -1 {
				return c
			}
		}
		panic("matching: no free color (impossible with Δ+1 colors)")
	}
	isFree := func(v, c int32) bool { return colorAt[v][c] == -1 }

	setColor := func(u, v, c int32) {
		colorAt[u][c] = v
		colorAt[v][c] = u
		edgeColor[graph.Edge{U: u, V: v}.Normalize()] = c
	}
	unsetColor := func(u, v, c int32) {
		colorAt[u][c] = -1
		colorAt[v][c] = -1
	}
	getColor := func(u, v int32) (int32, bool) {
		c, ok := edgeColor[graph.Edge{U: u, V: v}.Normalize()]
		return c, ok
	}

	// invert flips colors c and d along the maximal cd-alternating path
	// starting at u (u has no c edge by choice of c, so the path starts
	// with a d edge if any). The path is collected first, then recolored,
	// so the walk never reads its own writes.
	invert := func(u, c, d int32) {
		type step struct{ a, b, col int32 }
		path := make([]step, 0, 16)
		v := u
		want := d
		for {
			w := colorAt[v][want]
			if w == -1 {
				break
			}
			path = append(path, step{v, w, want})
			v = w
			if want == d {
				want = c
			} else {
				want = d
			}
		}
		for _, s := range path {
			unsetColor(s.a, s.b, s.col)
		}
		for _, s := range path {
			nc := c
			if s.col == c {
				nc = d
			}
			setColor(s.a, s.b, nc)
		}
	}

	for _, e := range g.Edges() {
		u, v := e.U, e.V
		// Build a maximal fan F = [v = f0, f1, ...] around u: each
		// subsequent f_{i+1} is a neighbor of u whose edge (u, f_{i+1}) is
		// colored with a color free on f_i.
		fan := []int32{v}
		inFan := map[int32]bool{v: true}
		for {
			last := fan[len(fan)-1]
			extended := false
			for _, w := range g.Neighbors(u) {
				if inFan[w] {
					continue
				}
				cw, colored := getColor(u, w)
				if !colored {
					continue
				}
				if isFree(last, cw) {
					fan = append(fan, w)
					inFan[w] = true
					extended = true
					break
				}
			}
			if !extended {
				break
			}
		}
		c := free(u)
		d := free(fan[len(fan)-1])
		if c != d {
			invert(u, c, d)
		}
		// After inverting the cd path from u, d is free on u. Find the
		// first fan prefix [f0..fw] that is still a fan and whose tip has
		// d free; rotate and color.
		w := len(fan) - 1
		for i := range fan {
			if isFree(fan[i], d) {
				// Check prefix validity: for j < i, color(u, f_{j+1}) must
				// be free on f_j — inversion may have broken this only at
				// vertices on the cd path; recompute directly.
				valid := true
				for j := 0; j+1 <= i; j++ {
					cw, colored := getColor(u, fan[j+1])
					if !colored || !isFree(fan[j], cw) {
						valid = false
						break
					}
				}
				if valid {
					w = i
					break
				}
			}
		}
		// Rotate the fan prefix: shift color of (u, f_{j+1}) onto (u, f_j).
		for j := 0; j < w; j++ {
			cw, _ := getColor(u, fan[j+1])
			unsetColor(u, fan[j+1], cw)
			setColor(u, fan[j], cw)
		}
		if !isFree(fan[w], d) || !isFree(u, d) {
			panic("matching: Misra-Gries invariant violated")
		}
		setColor(u, fan[w], d)
	}

	colors := make([]int32, g.M())
	used := int32(0)
	for i, e := range g.Edges() {
		c := edgeColor[e]
		colors[i] = c
		if c+1 > used {
			used = c + 1
		}
	}
	return &EdgeColoring{G: g, Colors: colors, NumColors: int(used)}
}

// GreedyEdgeColoring colors edges greedily with the first color free at
// both endpoints; uses at most 2Δ−1 colors. Retained as a fast fallback
// and as a baseline to compare against Misra–Gries in tests.
func GreedyEdgeColoring(g *graph.Graph) *EdgeColoring {
	numColors := 2*g.MaxDegree() - 1
	if numColors < 1 {
		numColors = 1
	}
	n := g.N()
	colorAt := make([][]bool, n)
	for v := range colorAt {
		colorAt[v] = make([]bool, numColors)
	}
	colors := make([]int32, g.M())
	used := int32(0)
	for i, e := range g.Edges() {
		c := int32(0)
		for colorAt[e.U][c] || colorAt[e.V][c] {
			c++
		}
		colors[i] = c
		colorAt[e.U][c] = true
		colorAt[e.V][c] = true
		if c+1 > used {
			used = c + 1
		}
	}
	return &EdgeColoring{G: g, Colors: colors, NumColors: int(used)}
}

// GreedyMaximalMatching returns a maximal matching of g as a set of edges,
// scanning edges in their canonical order.
func GreedyMaximalMatching(g *graph.Graph) []graph.Edge {
	used := make([]bool, g.N())
	var out []graph.Edge
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			out = append(out, e)
		}
	}
	return out
}
