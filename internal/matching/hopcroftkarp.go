// Package matching provides the matching and edge-coloring substrates the
// spanner constructions rely on: Hopcroft–Karp maximum bipartite matching
// (used for the neighborhood matchings M_{u,v} of Lemma 4), greedy maximal
// matching, and Misra–Gries edge coloring with at most Δ+1 colors (used by
// Algorithm 2, which requires m_k ≤ d_k + 1 matchings per level).
package matching

// Bipartite describes a bipartite graph for maximum matching: left
// vertices 0..L−1, right vertices 0..R−1, and Adj[l] listing the right
// vertices adjacent to left vertex l.
type Bipartite struct {
	L, R int
	Adj  [][]int32
}

const unmatched = int32(-1)

// HopcroftKarp computes a maximum matching. It returns matchL (for each
// left vertex, its matched right vertex or −1) and the matching size.
// Complexity O(E·√V).
func HopcroftKarp(b *Bipartite) (matchL []int32, size int) {
	matchL = make([]int32, b.L)
	matchR := make([]int32, b.R)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	const inf = int32(1) << 30
	dist := make([]int32, b.L)
	queue := make([]int32, 0, b.L)

	bfs := func() bool {
		queue = queue[:0]
		for l := int32(0); l < int32(b.L); l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range b.Adj[l] {
				nl := matchR[r]
				if nl == unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range b.Adj[l] {
			nl := matchR[r]
			if nl == unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := int32(0); l < int32(b.L); l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}

// VerifyMatching checks that matchL is a valid matching of b: matched
// pairs are edges and no right vertex is used twice.
func VerifyMatching(b *Bipartite, matchL []int32) bool {
	usedR := make(map[int32]bool)
	for l, r := range matchL {
		if r == unmatched {
			continue
		}
		if usedR[r] {
			return false
		}
		usedR[r] = true
		ok := false
		for _, rr := range b.Adj[l] {
			if rr == r {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
