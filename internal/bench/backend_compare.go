package bench

import (
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// prepareBackendCompare races the three oracle backends on one batch
// workload over the shared scenario spanner: each iteration answers the
// same query batch through every backend and folds all answers into one
// fingerprint, so the measurement both times the backends side by side
// and proves they agree wherever they promise to (the exact and
// unbounded-landmark backends answer identically; the sparse backend's
// answers are deterministic, so its bounds fold in reproducibly too).
//
// Per-backend wall time accumulates in the bench_backend_ns{backend=...}
// counters — the per-backend split the BENCH JSON and the README
// decision table read — while NsPerOp times the whole three-backend
// sweep. Backend build cost is paid in prepare, not the timed loop,
// matching how a serving process amortizes it.
func prepareBackendCompare(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	nq := 20000
	if opt.Quick {
		nq = 4000
	}
	r := rng.New(opt.Seed).Split()
	qs := make([]oracle.Query, nq)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
	}
	answered := reg.Counter("bench_backend_queries", "oracle queries answered across all backends and iterations")
	names := oracle.BackendNames()
	nanos := make(map[string]*obs.Counter, len(names))
	for _, name := range names {
		nanos[name] = reg.CounterLabeled("bench_backend_ns",
			"wall nanoseconds answering the batch, split by backend", "backend", name)
	}
	// Worker count is fixed at oracle construction, so build one oracle
	// per (backend, workers) on demand; caching is disabled so every
	// iteration answers the full batch from scratch.
	oracles := make(map[string]map[int]*oracle.Oracle, len(names))
	for _, name := range names {
		oracles[name] = make(map[int]*oracle.Oracle)
	}
	return func(workers int) (uint64, error) {
		d := newDigest()
		for _, name := range names {
			o, ok := oracles[name][workers]
			if !ok {
				var err error
				o, err = oracle.NewFromGraphs(g, sp.H, 3, oracle.Options{
					Backend:     name,
					Workers:     workers,
					CacheSize:   -1,
					Seed:        opt.Seed,
					SampleEvery: -1,
				})
				if err != nil {
					return 0, err
				}
				oracles[name][workers] = o
			}
			t0 := time.Now()
			as := o.AnswerBatch(qs)
			nanos[name].Add(time.Since(t0).Nanoseconds())
			answered.Add(int64(len(as)))
			for _, a := range as {
				d = d.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
			}
		}
		return uint64(d), nil
	}, nil
}
