package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleMeasurement() *Measurement {
	return &Measurement{
		Schema:          SchemaName,
		SchemaVersion:   SchemaVersion,
		Name:            "stretch_sweep",
		Description:     "test",
		GeneratedAt:     "2026-08-06T00:00:00Z",
		GoVersion:       "go1.x",
		NumCPU:          4,
		Seed:            42,
		Quick:           true,
		Workers:         4,
		Warmup:          1,
		Iterations:      3,
		NsPerOp:         1000,
		AllocsPerOp:     10,
		BytesPerOp:      640,
		SerialNsPerOp:   3000,
		SpeedupVsSerial: 3,
		Deterministic:   true,
		Fingerprint:     "00000000deadbeef",
		Counters:        map[string]int64{"bench_stretch_edges": 99},
		Gauges:          map[string]float64{"bench_workers": 4},
	}
}

func TestMeasurementRoundTrip(t *testing.T) {
	m := sampleMeasurement()
	dir := t.TempDir()
	path, err := m.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_stretch_sweep.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, m)
	}
}

func TestDecodeRejectsBadMeasurements(t *testing.T) {
	corrupt := []struct {
		name   string
		mutate func(*Measurement)
		want   string
	}{
		{"wrong schema", func(m *Measurement) { m.Schema = "other" }, "schema"},
		{"future version", func(m *Measurement) { m.SchemaVersion = 99 }, "version"},
		{"bad name", func(m *Measurement) { m.Name = "Bad Name!" }, "name"},
		{"no timestamp", func(m *Measurement) { m.GeneratedAt = "" }, "generated_at"},
		{"zero workers", func(m *Measurement) { m.Workers = 0 }, "workers"},
		{"zero iters", func(m *Measurement) { m.Iterations = 0 }, "iterations"},
		{"zero ns", func(m *Measurement) { m.NsPerOp = 0 }, "ns_per_op"},
		{"short fingerprint", func(m *Measurement) { m.Fingerprint = "abc" }, "fingerprint"},
	}
	for _, tc := range corrupt {
		m := sampleMeasurement()
		tc.mutate(m)
		if err := m.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}

// The harness must flag a scenario whose results depend on the worker
// count, and must report the timing/alloc fields for a well-behaved one.
func TestRunDetectsNonDeterminism(t *testing.T) {
	bad := Scenario{
		Name:        "bad_scenario",
		Description: "fingerprint depends on workers",
		Prepare: func(opt Options, reg *obs.Registry) (Iter, error) {
			return func(workers int) (uint64, error) { return uint64(workers), nil }, nil
		},
	}
	m, err := Run(bad, Options{Workers: 4, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Deterministic {
		t.Error("worker-dependent scenario reported as deterministic")
	}

	good := Scenario{
		Name:        "good_scenario",
		Description: "constant result",
		Prepare: func(opt Options, reg *obs.Registry) (Iter, error) {
			c := reg.Counter("good_iters", "iterations")
			return func(workers int) (uint64, error) {
				c.Add(1)
				return 0xabcdef, nil
			}, nil
		},
	}
	m, err = Run(good, Options{Workers: 2, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Deterministic {
		t.Error("constant scenario reported as non-deterministic")
	}
	if m.Fingerprint != "0000000000abcdef" {
		t.Errorf("fingerprint = %q", m.Fingerprint)
	}
	// warmup 1 + serial probe 1 + serial loop 2 + parallel loop 2.
	if got := m.Counters["good_iters"]; got != 6 {
		t.Errorf("good_iters = %d, want 6", got)
	}
	if m.Gauges["bench_workers"] != 2 {
		t.Errorf("bench_workers gauge = %v, want 2", m.Gauges["bench_workers"])
	}
	if m.NsPerOp < 1 || m.SerialNsPerOp < 1 || m.SpeedupVsSerial <= 0 {
		t.Errorf("degenerate timing fields: %+v", m)
	}
}

// Every registered scenario must run quick, be deterministic across the
// serial/parallel split, and emit a valid measurement file.
func TestRegisteredScenariosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario")
	}
	if len(Scenarios()) < 4 {
		t.Fatalf("only %d scenarios registered, want >= 4", len(Scenarios()))
	}
	dir := t.TempDir()
	for _, sc := range Scenarios() {
		m, err := Run(sc, Options{Quick: true, Workers: 2, Warmup: 1, Iterations: 1})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !m.Deterministic {
			t.Errorf("%s: fingerprints diverged between workers=1 and workers=2", sc.Name)
		}
		path, err := m.WriteFile(dir)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if _, err := ReadFile(path); err != nil {
			t.Fatalf("%s: emitted file does not validate: %v", sc.Name, err)
		}
	}
}

// Scenario fingerprints must also be stable run to run at a fixed seed —
// the property that makes BENCH files comparable across regenerations.
func TestScenarioFingerprintStableAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scenario twice")
	}
	sc, ok := Lookup("stretch_sweep")
	if !ok {
		t.Fatal("stretch_sweep not registered")
	}
	opt := Options{Quick: true, Workers: 2, Iterations: 1}
	a, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint changed across runs: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("no_such_scenario"); ok {
		t.Error("Lookup found a scenario that does not exist")
	}
	sc, ok := Lookup("parallel_bfs")
	if !ok || sc.Name != "parallel_bfs" {
		t.Errorf("Lookup(parallel_bfs) = %+v, %v", sc, ok)
	}
}
