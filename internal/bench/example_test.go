package bench_test

import (
	"fmt"

	"repro/internal/bench"
)

// Running a registered scenario through the harness: the measurement
// records whether the serial and parallel runs agreed (the kernels'
// determinism contract) alongside the timing figures.
func ExampleRun() {
	sc, ok := bench.Lookup("parallel_bfs")
	if !ok {
		panic("scenario not registered")
	}
	m, err := bench.Run(sc, bench.Options{
		Quick:      true,
		Seed:       7,
		Workers:    2,
		Iterations: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, m.Workers, m.Deterministic)
	// Output: parallel_bfs 2 true
}
