package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// The BENCH_<name>.json schema is versioned so future PRs can evolve the
// format without silently breaking regression tooling: readers reject
// files whose schema name or version they do not understand, instead of
// misinterpreting fields.
const (
	// SchemaName identifies the file format.
	SchemaName = "dcspanner/bench"
	// SchemaVersion is bumped on any incompatible field change.
	SchemaVersion = 1
)

// Measurement is one scenario's recorded run — the unit persisted as
// BENCH_<name>.json and the baseline future PRs regress against.
type Measurement struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`

	Name        string `json:"name"`
	Description string `json:"description"`

	// Environment: enough to judge whether two measurements are comparable.
	GeneratedAt string `json:"generated_at"` // RFC3339
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`

	// Inputs.
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Workers    int    `json:"workers"` // resolved pool size (never 0)
	Warmup     int    `json:"warmup_iterations"`
	Iterations int    `json:"timed_iterations"`

	// Headline figures. BytesPerOp and AllocsPerOp are process-wide deltas
	// over the timed loop divided by iterations — an upper bound on the
	// scenario's own allocation, exact when nothing else runs.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`

	// SerialNsPerOp times the identical work at workers=1 after the same
	// warmup; SpeedupVsSerial = SerialNsPerOp / NsPerOp. On a single-core
	// runner both collapse to NsPerOp and the speedup reports 1.
	SerialNsPerOp   int64   `json:"serial_ns_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`

	// Deterministic records that the serial and parallel runs produced the
	// same result fingerprint — the kernels' determinism contract observed
	// end to end (DESIGN.md §9).
	Deterministic bool   `json:"deterministic_across_workers"`
	Fingerprint   string `json:"fingerprint"` // 16 hex digits, FNV-1a of the results

	// Selected obs counters and gauges snapshotted from the scenario's
	// registry after the timed runs (e.g. oracle cache hits, sweep sizes).
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Filename returns the canonical file name for a scenario measurement.
func Filename(name string) string { return "BENCH_" + name + ".json" }

// Encode renders the measurement as indented JSON with a trailing newline.
func (m *Measurement) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses and validates a measurement, rejecting unknown schemas.
func Decode(data []byte) (*Measurement, error) {
	var m Measurement
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("bench: malformed measurement: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the schema header and the fields every well-formed
// measurement must carry.
func (m *Measurement) Validate() error {
	switch {
	case m.Schema != SchemaName:
		return fmt.Errorf("bench: schema %q, want %q", m.Schema, SchemaName)
	case m.SchemaVersion != SchemaVersion:
		return fmt.Errorf("bench: schema version %d, want %d", m.SchemaVersion, SchemaVersion)
	case !nameRE.MatchString(m.Name):
		return fmt.Errorf("bench: invalid scenario name %q", m.Name)
	case m.GeneratedAt == "":
		return fmt.Errorf("bench: missing generated_at")
	case m.Workers < 1:
		return fmt.Errorf("bench: workers %d < 1", m.Workers)
	case m.Iterations < 1:
		return fmt.Errorf("bench: timed_iterations %d < 1", m.Iterations)
	case m.NsPerOp <= 0:
		return fmt.Errorf("bench: ns_per_op %d <= 0", m.NsPerOp)
	case m.SerialNsPerOp <= 0:
		return fmt.Errorf("bench: serial_ns_per_op %d <= 0", m.SerialNsPerOp)
	case m.SpeedupVsSerial <= 0:
		return fmt.Errorf("bench: speedup_vs_serial %g <= 0", m.SpeedupVsSerial)
	case len(m.Fingerprint) != 16:
		return fmt.Errorf("bench: fingerprint %q is not 16 hex digits", m.Fingerprint)
	}
	return nil
}

// WriteFile persists the measurement as dir/BENCH_<name>.json.
func (m *Measurement) WriteFile(dir string) (string, error) {
	data, err := m.Encode()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(m.Name))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile loads and validates a measurement file.
func ReadFile(path string) (*Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
