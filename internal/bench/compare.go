package bench

import (
	"fmt"
	"os"
	"path/filepath"
)

// DefaultTolerance is the regression gate -compare applies: a scenario
// more than 25% slower than its committed baseline fails the run.
const DefaultTolerance = 0.25

// Compare gates a fresh measurement against a committed baseline. It
// returns an error when m regressed: ns/op more than tolerance above the
// baseline's, or — when the two runs are configured identically (same
// seed, size class, and schema) — a changed determinism fingerprint,
// which means the kernels now compute different results, a bug no timing
// tolerance excuses. Faster-than-baseline runs always pass; timings are
// compared only between same-size runs, since quick and full inputs are
// different workloads.
func Compare(m, base *Measurement, tolerance float64) error {
	if m.Name != base.Name {
		return fmt.Errorf("bench: comparing %q against baseline for %q", m.Name, base.Name)
	}
	if m.Seed == base.Seed && m.Quick == base.Quick {
		if m.Fingerprint != base.Fingerprint {
			return fmt.Errorf("bench: %s: fingerprint %s differs from baseline %s at identical seed — results changed, not just timings",
				m.Name, m.Fingerprint, base.Fingerprint)
		}
	}
	if m.Quick != base.Quick {
		return nil // different size classes: timings are not comparable
	}
	limit := float64(base.NsPerOp) * (1 + tolerance)
	if float64(m.NsPerOp) > limit {
		return fmt.Errorf("bench: %s: %d ns/op is %.1f%% above baseline %d ns/op (tolerance %.0f%%)",
			m.Name, m.NsPerOp,
			100*(float64(m.NsPerOp)/float64(base.NsPerOp)-1),
			base.NsPerOp, 100*tolerance)
	}
	return nil
}

// CompareDir gates m against dir/BENCH_<name>.json. A missing baseline is
// not a regression — new scenarios land before their first committed
// baseline — so it reports (false, nil): not compared, no error.
func CompareDir(m *Measurement, dir string, tolerance float64) (bool, error) {
	path := filepath.Join(dir, Filename(m.Name))
	base, err := ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return true, Compare(m, base, tolerance)
}
