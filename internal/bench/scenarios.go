package bench

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/packetsim"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// FNV-1a 64-bit, folded over result values. Fingerprints exist to detect
// cross-worker divergence, not to survive adversaries, so a non-crypto
// hash is fine.
type digest uint64

func newDigest() digest { return 0xcbf29ce484222325 }

func (d digest) u64(x uint64) digest {
	for i := 0; i < 8; i++ {
		d ^= digest(x & 0xff)
		d *= 0x100000001b3
		x >>= 8
	}
	return d
}

func (d digest) i32s(xs []int32) digest {
	for _, x := range xs {
		d = d.u64(uint64(uint32(x)))
	}
	return d
}

func (d digest) ints(xs []int) digest {
	for _, x := range xs {
		d = d.u64(uint64(x))
	}
	return d
}

func (d digest) f64(x float64) digest { return d.u64(math.Float64bits(x)) }

// benchGraph builds the shared scenario input: a random d-regular graph in
// the Theorem 2 size class (full) or a smoke-sized one (quick).
func benchGraph(opt Options) (*graph.Graph, error) {
	n, d := 343, 80
	if opt.Quick {
		n, d = 216, 30
	}
	return gen.RandomRegular(n, d, rng.New(opt.Seed))
}

// benchSpanner samples the Theorem 2 expander spanner off the scenario
// graph; shared by the stretch, oracle, and packet scenarios.
func benchSpanner(opt Options, g *graph.Graph) (*spanner.Spanner, error) {
	return spanner.BuildExpander(g, spanner.ExpanderOptions{
		SampleProb:      0.35,
		Seed:            opt.Seed,
		EnsureConnected: true,
	})
}

var registry = []Scenario{
	{
		Name:        "parallel_bfs",
		Description: "bit-parallel multi-source BFS sweep (graph.BitParallelBFSInto) over sampled sources into a reused flat table",
		Prepare:     prepareParallelBFS,
	},
	{
		Name:        "spanner_build",
		Description: "Theorem 2 expander spanner construction (spanner.BuildExpander); build parallelism follows GOMAXPROCS, so the workers argument is ignored and speedup reads ~1",
		Prepare:     prepareSpannerBuild,
	},
	{
		Name:        "stretch_sweep",
		Description: "Table 1 edge-stretch verification kernel (spanner.VerifyEdgeStretchOpts) over every spanner edge",
		Prepare:     prepareStretchSweep,
	},
	{
		Name:        "congestion_profile",
		Description: "node-congestion accounting (routing.NodeCongestionProfileWorkers) over a random shortest-path routing",
		Prepare:     prepareCongestionProfile,
	},
	{
		Name:        "oracle_batch",
		Description: "distance-oracle batch answering (oracle.AnswerBatch) with caching disabled",
		Prepare:     prepareOracleBatch,
	},
	{
		Name:        "backend_compare",
		Description: "the three oracle backends (landmark-bibfs, exact-cached, sparse-hub) answering the same batch workload side by side; per-backend wall time lands in the bench_backend_ns counters",
		Prepare:     prepareBackendCompare,
	},
	{
		Name:        "router_fanout",
		Description: "oracle batches fanned across an in-process worker fleet over the binary wire protocol (router.AnswerBatch); fleet size = workers, each worker a single-threaded replica, so speedup tracks available cores",
		Prepare:     prepareRouterFanout,
	},
	{
		Name:        "tracing_overhead",
		Description: "request-tracing cost on the oracle serving path: each iteration answers the batch workload untraced (nil ReqTrace) and fully sampled (live ReqTrace into a flight recorder); the fingerprint proves tracing never changes answers",
		Prepare:     prepareTracingOverhead,
	},
	{
		Name:        "packetsim_round",
		Description: "store-and-forward packet round (packetsim.Simulate) incl. parallel congestion lower-bound accounting",
		Prepare:     preparePacketsimRound,
	},
	{
		Name:        "churn",
		Description: "dynamic-graph churn (oracle.Dynamic): a forward pass of edge toggles, a query batch against the mutated state, then the reverse pass restoring the initial state, closing with a verify snapshot; the fingerprint folds per-update edge counts, the mid-state answers, and the state hashes, so it proves the round trip is exact",
		Prepare:     prepareChurn,
	},
}

func prepareParallelBFS(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	k := 128
	if opt.Quick {
		k = 48
	}
	r := rng.New(opt.Seed).Split()
	sources := make([]int32, k)
	for i := range sources {
		sources[i] = int32(r.Intn(g.N()))
	}
	sweeps := reg.Counter("bench_bfs_sources", "BFS sources swept across all iterations")
	// The table is prepare-owned and Reset per iteration, so the steady
	// state allocates nothing; the fingerprint folds rows in source order,
	// the same bytes the old [][]int32 kernel produced.
	table := graph.NewFlatDist(len(sources), g.N())
	return func(workers int) (uint64, error) {
		table.Reset(len(sources), g.N())
		g.BitParallelBFSInto(sources, workers, table)
		sweeps.Add(int64(table.Rows()))
		d := newDigest()
		for i := 0; i < table.Rows(); i++ {
			d = d.i32s(table.Row(i))
		}
		return uint64(d), nil
	}, nil
}

func prepareSpannerBuild(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	builds := reg.Counter("bench_spanner_builds", "spanner constructions across all iterations")
	return func(workers int) (uint64, error) {
		sp, err := benchSpanner(opt, g)
		if err != nil {
			return 0, err
		}
		builds.Add(1)
		d := newDigest().u64(uint64(sp.H.M()))
		for _, e := range sp.H.Edges() {
			d = d.u64(uint64(uint32(e.U))<<32 | uint64(uint32(e.V)))
		}
		return uint64(d), nil
	}, nil
}

func prepareStretchSweep(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	edges := reg.Counter("bench_stretch_edges", "edges verified across all iterations")
	return func(workers int) (uint64, error) {
		rep := spanner.VerifyEdgeStretchOpts(g, sp.H, 3, spanner.VerifyOptions{Workers: workers})
		edges.Add(int64(rep.Checked))
		d := newDigest().u64(uint64(rep.Checked)).u64(uint64(rep.Violations))
		d = d.f64(rep.MaxStretch).f64(rep.MeanStretch)
		return uint64(d), nil
	}, nil
}

func prepareCongestionProfile(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed).Split()
	prob := routing.RandomProblem(g.N(), 4*g.N(), r)
	rt, err := routing.ShortestPaths(g, prob)
	if err != nil {
		return nil, err
	}
	paths := reg.Counter("bench_congestion_paths", "routed paths accounted across all iterations")
	return func(workers int) (uint64, error) {
		prof := rt.NodeCongestionProfileWorkers(g.N(), workers)
		paths.Add(int64(len(rt.Paths)))
		return uint64(newDigest().ints(prof)), nil
	}, nil
}

func prepareOracleBatch(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	nq := 20000
	if opt.Quick {
		nq = 4000
	}
	r := rng.New(opt.Seed).Split()
	qs := make([]oracle.Query, nq)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
	}
	answered := reg.Counter("bench_oracle_queries", "oracle queries answered across all iterations")
	// The worker count is fixed at oracle construction, so build one
	// oracle per distinct count on demand. Caching is disabled so every
	// iteration answers the full batch from scratch.
	oracles := make(map[int]*oracle.Oracle)
	return func(workers int) (uint64, error) {
		o, ok := oracles[workers]
		if !ok {
			var err error
			o, err = oracle.NewFromGraphs(g, sp.H, 3, oracle.Options{
				Workers:   workers,
				CacheSize: -1,
				Seed:      opt.Seed,
			})
			if err != nil {
				return 0, err
			}
			oracles[workers] = o
		}
		as := o.AnswerBatch(qs)
		answered.Add(int64(len(as)))
		d := newDigest()
		for _, a := range as {
			d = d.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
		}
		return uint64(d), nil
	}, nil
}

func prepareChurn(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	nTog, nq := 64, 2000
	if opt.Quick {
		nTog, nq = 24, 500
	}
	r := rng.New(opt.Seed).Split()
	pairs := make([][2]int32, nTog)
	for i := range pairs {
		u, v := int32(r.Intn(g.N())), int32(r.Intn(g.N()))
		for u == v {
			v = int32(r.Intn(g.N()))
		}
		pairs[i] = [2]int32{u, v}
	}
	qs := make([]oracle.Query, nq)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
	}
	updates := reg.Counter("bench_churn_updates", "edge updates applied across all iterations")
	queries := reg.Counter("bench_churn_queries", "mid-churn queries answered across all iterations")

	// One engine per worker count (the oracle's pool size is fixed at
	// construction). Each iteration leaves the engine exactly where it
	// started — every pair is toggled once forward and once in reverse,
	// and flips are involutions — so the engines never drift apart and
	// the fingerprint is stable across iterations and worker counts.
	// Rebuilt and Seq are deliberately NOT folded into the fingerprint:
	// both carry state across iteration boundaries (the dirty-fraction
	// counter and the update counter), while M/HM/answers/hashes are pure
	// functions of the toggle position within one iteration.
	type engine struct {
		d   *oracle.Dynamic
		cur map[graph.Edge]bool
	}
	engines := make(map[int]*engine)
	return func(workers int) (uint64, error) {
		en, ok := engines[workers]
		if !ok {
			dyn, err := oracle.NewDynamic(g, oracle.DynamicOptions{
				Spanner: spanner.IncrementalOptions{Seed: opt.Seed},
				Oracle: oracle.Options{Backend: oracle.BackendExactCached,
					Workers: workers, CacheSize: -1, Seed: opt.Seed, SampleEvery: -1},
			})
			if err != nil {
				return 0, err
			}
			cur := make(map[graph.Edge]bool, g.M())
			for _, e := range g.Edges() {
				cur[e] = true
			}
			en = &engine{d: dyn, cur: cur}
			engines[workers] = en
		}
		fp := newDigest()
		toggle := func(p [2]int32) error {
			e := graph.Edge{U: p[0], V: p[1]}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			add := !en.cur[e]
			res, err := en.d.Update(p[0], p[1], add)
			if err != nil {
				return err
			}
			if add {
				en.cur[e] = true
			} else {
				delete(en.cur, e)
			}
			updates.Add(1)
			fp = fp.u64(uint64(res.M)).u64(uint64(res.HM))
			return nil
		}
		for _, p := range pairs {
			if err := toggle(p); err != nil {
				return 0, err
			}
		}
		as := en.d.AnswerBatch(qs)
		queries.Add(int64(len(as)))
		for _, a := range as {
			fp = fp.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
		}
		for i := len(pairs) - 1; i >= 0; i-- {
			if err := toggle(pairs[i]); err != nil {
				return 0, err
			}
		}
		info := en.d.Snapshot(true)
		if !info.Consistent {
			return 0, fmt.Errorf("churn: maintained spanner diverged from a from-scratch rebuild (seq=%d)", info.Seq)
		}
		fp = fp.u64(info.GraphHash).u64(info.SpannerHash)
		return uint64(fp), nil
	}, nil
}

func preparePacketsimRound(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed).Split()
	prob := routing.RandomProblem(g.N(), g.N()/2, r)
	rt, err := routing.ShortestPaths(sp.H, prob)
	if err != nil {
		return nil, err
	}
	rounds := reg.Counter("bench_packetsim_rounds", "simulated rounds across all iterations")
	return func(workers int) (uint64, error) {
		res, err := packetsim.Simulate(g.N(), rt, packetsim.Options{Workers: workers})
		if err != nil {
			return 0, err
		}
		rounds.Add(1)
		d := newDigest().u64(uint64(res.Makespan)).u64(uint64(res.Delivered))
		d = d.u64(uint64(res.MaxQueue)).u64(uint64(res.Congestion)).ints(res.Latencies)
		return uint64(d), nil
	}, nil
}
