package bench

import (
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
)

// prepareRouterFanout measures the fleet-serving stack end to end: the
// same batch workload as oracle_batch, but answered through a Router
// fanning chunks across an in-process worker fleet over the binary wire
// protocol. The workers argument sets the fleet size — each worker runs
// a single-threaded oracle replica with caching disabled — so the
// parallelism measured is the router's fan-out, and the speedup over the
// serial (one-worker) run tracks the host's available cores. The
// fingerprint is computed exactly like oracle_batch's, which makes the
// determinism probe a routed-vs-fleet-size differential: every fleet
// size must merge chunks back into the identical answer sequence.
func prepareRouterFanout(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	nq := 20000
	if opt.Quick {
		nq = 4000
	}
	r := rng.New(opt.Seed).Split()
	qs := make([]oracle.Query, nq)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
	}
	answered := reg.Counter("bench_router_queries", "queries answered through the router across all iterations")

	// Worker oracles are replicas by construction: same graphs, same
	// seed, Workers=1 (the fleet is the parallelism under test) and no
	// cache (every iteration answers from scratch). Private registries —
	// nil — because replicas would collide on metric names.
	newOracle := func(i int) (*oracle.Oracle, error) {
		return oracle.NewFromGraphs(g, sp.H, 3, oracle.Options{
			Workers:   1,
			CacheSize: -1,
			Seed:      opt.Seed,
		})
	}

	// Fleet size is fixed at startup, so boot one fleet+router per
	// distinct worker count on demand (the harness probes workers=1 for
	// determinism plus the measured count). Listeners live until process
	// exit; dcbench is short-lived.
	type fanout struct {
		fleet *router.LocalFleet
		rt    *router.Router
	}
	fleets := make(map[int]*fanout)
	return func(workers int) (uint64, error) {
		fo, ok := fleets[workers]
		if !ok {
			fleet, err := router.StartLocalFleet(workers, newOracle, server.Config{})
			if err != nil {
				return 0, err
			}
			rt, err := router.New(router.Options{
				Workers:        fleet.Addrs(),
				HealthInterval: -1, // no background pings during timing
			})
			if err != nil {
				fleet.Close()
				return 0, err
			}
			fo = &fanout{fleet: fleet, rt: rt}
			fleets[workers] = fo
		}
		as, err := fo.rt.AnswerBatch(qs)
		if err != nil {
			return 0, err
		}
		answered.Add(int64(len(as)))
		d := newDigest()
		for _, a := range as {
			d = d.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
		}
		return uint64(d), nil
	}, nil
}
