package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func compareFixture(ns int64) *Measurement {
	return &Measurement{
		Schema:        SchemaName,
		SchemaVersion: SchemaVersion,
		Name:          "parallel_bfs",
		GeneratedAt:   "2026-01-01T00:00:00Z",
		Seed:          42,
		Workers:       1,
		Iterations:    3,
		NsPerOp:       ns,
		SerialNsPerOp: ns,

		SpeedupVsSerial: 1,
		Deterministic:   true,
		Fingerprint:     "b48c893fe9146085",
	}
}

func TestCompareToleratesSmallSlowdownsAndSpeedups(t *testing.T) {
	base := compareFixture(1000)
	for _, ns := range []int64{100, 999, 1000, 1200, 1250} {
		m := compareFixture(ns)
		if err := Compare(m, base, DefaultTolerance); err != nil {
			t.Errorf("ns=%d within 25%% tolerance but Compare failed: %v", ns, err)
		}
	}
	m := compareFixture(1251)
	if err := Compare(m, base, DefaultTolerance); err == nil {
		t.Error("25.1% regression passed the 25% gate")
	}
}

func TestCompareFailsOnFingerprintChangeAtSameSeed(t *testing.T) {
	base := compareFixture(1000)
	m := compareFixture(900) // faster, but wrong results
	m.Fingerprint = "deadbeefdeadbeef"
	err := Compare(m, base, DefaultTolerance)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("changed fingerprint at same seed not rejected: %v", err)
	}
	// Different seed: fingerprints legitimately differ, timing still gates.
	m.Seed = 43
	if err := Compare(m, base, DefaultTolerance); err != nil {
		t.Fatalf("different-seed fingerprint mismatch rejected: %v", err)
	}
}

func TestCompareSkipsTimingAcrossSizeClasses(t *testing.T) {
	base := compareFixture(1000)
	m := compareFixture(50000) // quick run vs full baseline: no timing gate
	m.Quick = true
	if err := Compare(m, base, DefaultTolerance); err != nil {
		t.Fatalf("cross-size-class comparison gated on timing: %v", err)
	}
	// But mismatched names are always an error.
	m.Name = "stretch_sweep"
	if err := Compare(m, base, DefaultTolerance); err == nil {
		t.Fatal("cross-scenario comparison not rejected")
	}
}

func TestCompareDirMissingAndPresentBaselines(t *testing.T) {
	dir := t.TempDir()
	m := compareFixture(1000)
	compared, err := CompareDir(m, dir, DefaultTolerance)
	if compared || err != nil {
		t.Fatalf("missing baseline: compared=%v err=%v, want false,nil", compared, err)
	}
	if _, err := m.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	fast := compareFixture(1100)
	compared, err = CompareDir(fast, dir, DefaultTolerance)
	if !compared || err != nil {
		t.Fatalf("within-tolerance run: compared=%v err=%v, want true,nil", compared, err)
	}
	slow := compareFixture(2000)
	compared, err = CompareDir(slow, dir, DefaultTolerance)
	if !compared || err == nil {
		t.Fatalf("2x regression: compared=%v err=%v, want true,error", compared, err)
	}
	// A corrupt baseline is an error, not a silent skip.
	path := filepath.Join(dir, Filename(m.Name))
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareDir(m, dir, DefaultTolerance); err == nil {
		t.Fatal("corrupt baseline not reported")
	}
}
