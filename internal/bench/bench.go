// Package bench is the reproducible benchmark harness for the evaluation
// kernels: a registry of named scenarios (spanner build, stretch sweep,
// congestion profile, oracle batch, packet-sim round, parallel BFS), each
// run as warmup + timed iterations off a fixed seed and persisted as a
// schema-versioned BENCH_<name>.json (see Measurement and DESIGN.md §9).
//
// Every scenario's iteration function is a pure function of its worker
// count argument: repeated calls — at any worker count — must return the
// same result fingerprint. The harness exploits this to verify the
// parallel kernels' determinism contract end to end (the Deterministic
// field) and to time an identical workers=1 run for SpeedupVsSerial.
// Randomness is drawn from splittable rng streams seeded by Options.Seed,
// never from global state, so two runs with equal Options measure exactly
// the same work.
//
// The cmd/dcbench CLI is a thin front end over Scenarios and Run.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// DefaultSeed seeds scenarios when Options.Seed is zero, matching the
// experiment harness default.
const DefaultSeed = 42

// Options configures one harness run. The zero value is usable: full-size
// inputs, all cores, one warmup and three timed iterations at DefaultSeed.
type Options struct {
	// Seed drives every scenario RNG stream; 0 means DefaultSeed.
	Seed uint64
	// Quick shrinks scenario inputs for smoke runs (CI, verify.sh).
	Quick bool
	// Workers is the measured pool size; <=0 means all cores.
	Workers int
	// Warmup is the number of untimed iterations before measuring
	// (default 1).
	Warmup int
	// Iterations is the number of timed iterations (default 3).
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Workers <= 0 {
		o.Workers = graph.Workers()
	}
	if o.Warmup <= 0 {
		o.Warmup = 1
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	return o
}

// Iter runs one scenario iteration with the given worker count and
// returns a fingerprint of the results. It must be deterministic: equal
// fingerprints for every call, at every worker count (re-create any RNG
// from a fixed seed inside the iteration rather than sharing one across
// calls).
type Iter func(workers int) (uint64, error)

// Prepare builds a scenario's inputs (untimed) and returns its iteration
// function. Metrics registered on reg are snapshotted into the
// measurement after the timed runs.
type Prepare func(opt Options, reg *obs.Registry) (Iter, error)

// Scenario is a named, registered benchmark.
type Scenario struct {
	Name        string // lower_snake_case; file name is BENCH_<Name>.json
	Description string
	Prepare     Prepare
}

// Scenarios returns the registered scenarios in presentation order.
func Scenarios() []Scenario {
	return append([]Scenario(nil), registry...)
}

// Lookup returns the scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range registry {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Run executes one scenario: prepare (untimed), warmup at the measured
// worker count, a workers=1 determinism probe, then timed serial and
// parallel loops under identical conditions. The returned measurement
// validates against the BENCH schema.
func Run(sc Scenario, opt Options) (*Measurement, error) {
	opt = opt.withDefaults()
	reg := obs.NewRegistry()
	reg.Gauge("bench_workers", "resolved worker-pool size for this run").Set(float64(opt.Workers))

	iter, err := sc.Prepare(opt, reg)
	if err != nil {
		return nil, fmt.Errorf("bench %s: prepare: %w", sc.Name, err)
	}

	// Warmup at the measured worker count; keep the fingerprint as the
	// reference every later iteration is checked against.
	var fp uint64
	for i := 0; i < opt.Warmup; i++ {
		if fp, err = iter(opt.Workers); err != nil {
			return nil, fmt.Errorf("bench %s: warmup: %w", sc.Name, err)
		}
	}
	// Determinism probe: the serial result must match the parallel one.
	// This also warms the serial path before its timed loop.
	fpSerial, err := iter(1)
	if err != nil {
		return nil, fmt.Errorf("bench %s: serial probe: %w", sc.Name, err)
	}
	deterministic := fpSerial == fp

	timeLoop := func(workers int) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < opt.Iterations; i++ {
			f, err := iter(workers)
			if err != nil {
				return 0, 0, 0, err
			}
			if f != fp {
				deterministic = false
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		iters := int64(opt.Iterations)
		nsPerOp = int64(elapsed) / iters
		if nsPerOp < 1 {
			nsPerOp = 1
		}
		return nsPerOp,
			int64(after.Mallocs-before.Mallocs) / iters,
			int64(after.TotalAlloc-before.TotalAlloc) / iters,
			nil
	}

	serialNs, serialAllocs, serialBytes, err := timeLoop(1)
	if err != nil {
		return nil, fmt.Errorf("bench %s: serial loop: %w", sc.Name, err)
	}
	ns, allocs, bytes := serialNs, serialAllocs, serialBytes
	if opt.Workers > 1 {
		if ns, allocs, bytes, err = timeLoop(opt.Workers); err != nil {
			return nil, fmt.Errorf("bench %s: timed loop: %w", sc.Name, err)
		}
	}

	snap := reg.Snapshot()
	m := &Measurement{
		Schema:        SchemaName,
		SchemaVersion: SchemaVersion,
		Name:          sc.Name,
		Description:   sc.Description,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Seed:          opt.Seed,
		Quick:         opt.Quick,
		Workers:       opt.Workers,
		Warmup:        opt.Warmup,
		Iterations:    opt.Iterations,
		NsPerOp:       ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		SerialNsPerOp: serialNs,
		// Round to 3 decimals so diffs of regenerated files stay readable.
		SpeedupVsSerial: math.Round(float64(serialNs)/float64(ns)*1000) / 1000,
		Deterministic:   deterministic,
		Fingerprint:     fmt.Sprintf("%016x", fp),
		Counters:        snap.Counters,
		Gauges:          snap.Gauges,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", sc.Name, err)
	}
	return m, nil
}
