package bench

import (
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// prepareTracingOverhead times the request-tracing plumbing on the
// oracle's serving path. Each iteration answers the same batch workload
// twice through one oracle: once untraced (a nil ReqTrace — the
// production default, paying only the nil checks) and once fully sampled
// (a live ReqTrace accumulating hops and path bits, finished into a
// flight recorder — the per-request worst case). The scenario's ns/op is
// the sum of the two arms, so a cost regression in either arm moves the
// number and trips `dcbench -compare`; the unsampled arm's tax relative
// to oracle_batch is the cost of threading trace plumbing at all.
//
// The fingerprint folds both answer sequences, which doubles as the
// proof that tracing never changes an answer: if the sampled arm ever
// diverged from the untraced one, the fingerprint would differ from the
// committed baseline.
func prepareTracingOverhead(opt Options, reg *obs.Registry) (Iter, error) {
	g, err := benchGraph(opt)
	if err != nil {
		return nil, err
	}
	sp, err := benchSpanner(opt, g)
	if err != nil {
		return nil, err
	}
	nq := 20000
	if opt.Quick {
		nq = 4000
	}
	r := rng.New(opt.Seed).Split()
	qs := make([]oracle.Query, nq)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
	}
	answered := reg.Counter("bench_tracing_queries", "queries answered across both arms and all iterations")
	sampled := reg.Counter("bench_tracing_sampled", "sampled-arm requests recorded into the flight recorder")
	flight := obs.NewFlightRecorder(0, 0, 0)

	// One oracle per distinct worker count, as in oracle_batch: caching
	// disabled so both arms answer the full batch from scratch.
	oracles := make(map[int]*oracle.Oracle)
	return func(workers int) (uint64, error) {
		o, ok := oracles[workers]
		if !ok {
			var err error
			o, err = oracle.NewFromGraphs(g, sp.H, 3, oracle.Options{
				Workers:   workers,
				CacheSize: -1,
				Seed:      opt.Seed,
			})
			if err != nil {
				return 0, err
			}
			oracles[workers] = o
		}
		plain := o.AnswerBatchTrace(qs, nil) // untraced arm
		tr := obs.NewReqTrace(0)             // sampled arm
		tr.SetVerb("batch", "bench")
		traced := o.AnswerBatchTrace(qs, tr)
		tr.Finish(flight, "")
		sampled.Add(1)
		answered.Add(int64(len(plain) + len(traced)))
		d := newDigest()
		for _, a := range plain {
			d = d.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
		}
		for _, a := range traced {
			d = d.u64(uint64(uint32(a.Dist))<<32 | uint64(uint32(a.Bound)))
		}
		return uint64(d), nil
	}, nil
}
