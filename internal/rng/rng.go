// Package rng provides a small, fast, deterministic, splittable random
// number generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// randomized construction in the paper (edge sampling, detour selection,
// configuration-model pairing, Lemma 19 subset families) must produce the
// same output for the same seed regardless of how many workers execute it.
// To that end the package implements xoshiro256** with a SplitMix64 seeder
// and a Split operation that derives statistically independent child streams
// from a parent, so parallel workers can each own a stream keyed by
// (seed, workerID).
//
// SamplePairs draws vertex pairs without replacement; the evaluation
// kernels draw such samples serially before fanning work out, which is how
// sampled-pair measurements stay identical across worker counts (see
// spanner.VerifyPairStretchOpts and DESIGN.md §9).
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next SplitMix64 output.
// It is the recommended seeding procedure for xoshiro generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	return r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split derives a child generator from the parent. The parent advances, so
// successive Split calls yield distinct children. Children are independent
// of later parent output for all practical purposes (the child is re-seeded
// through SplitMix64 rather than sharing state).
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Int31n is a convenience wrapper returning an int32 in [0, n).
func (r *RNG) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values p <= 0 always return
// false and p >= 1 always return true.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0. For k close to n it shuffles a full
// index slice; for small k it uses rejection sampling against a set.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Rejection sampling is fast while the hit rate is low.
	if k*3 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// SamplePairs returns k distinct unordered vertex pairs {u, v} with
// u != v, drawn uniformly without replacement from the C(n, 2) pairs on
// [0, n). Each returned pair is normalized u < v. It panics if k < 0 or
// k exceeds C(n, 2).
//
// This is the sampling primitive behind sampled-pair stretch measurement:
// drawing the whole sample up front from one stream (rather than inside a
// worker loop) is what makes the measurement identical across worker
// counts, and drawing without replacement means no pair is silently
// measured twice.
func (r *RNG) SamplePairs(n, k int) [][2]int32 {
	total := int64(n) * int64(n-1) / 2
	if k < 0 || int64(k) > total {
		panic("rng: SamplePairs with k out of range")
	}
	if k == 0 {
		return nil
	}
	out := make([][2]int32, 0, k)
	// Rejection sampling against a set of normalized pair keys is fast
	// while the hit rate is low; when the sample covers a third or more of
	// the pair space, enumerate-and-shuffle avoids long rejection tails.
	if int64(k)*3 < total {
		seen := make(map[int64]struct{}, k)
		for len(out) < k {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := int64(u)*int64(n) + int64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, [2]int32{u, v})
		}
		return out
	}
	all := make([][2]int32, 0, total)
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			all = append(all, [2]int32{u, v})
		}
	}
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return append(out, all[:k]...)
}

// Norm64 returns a standard normal variate via the polar Box–Muller method.
// It is used by the spectral package to seed random start vectors.
func (r *RNG) Norm64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
