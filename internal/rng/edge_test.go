package rng

import "testing"

// Exact-capacity edges of the sampling primitives: k equal to the full
// population (the enumerate-and-shuffle path with nothing left over) and
// the smallest non-trivial populations.

func TestSampleFullPopulation(t *testing.T) {
	const n = 9
	got := New(1).Sample(n, n)
	if len(got) != n {
		t.Fatalf("Sample(%d,%d) returned %d values", n, n, len(got))
	}
	seen := make([]bool, n)
	for _, v := range got {
		if v < 0 || v >= n {
			t.Fatalf("Sample value %d out of [0,%d)", v, n)
		}
		if seen[v] {
			t.Fatalf("Sample(%d,%d) repeated value %d", n, n, v)
		}
		seen[v] = true
	}
}

func TestSampleZeroAndSingleton(t *testing.T) {
	if got := New(1).Sample(5, 0); len(got) != 0 {
		t.Fatalf("Sample(5,0) = %v, want empty", got)
	}
	if got := New(1).Sample(1, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sample(1,1) = %v, want [0]", got)
	}
}

func TestSamplePairsSmallestPopulation(t *testing.T) {
	// n = 2 has exactly one unordered pair; asking for it must terminate
	// (no rejection-sampling tail chasing an exhausted key space).
	got := New(3).SamplePairs(2, 1)
	if len(got) != 1 || got[0] != [2]int32{0, 1} {
		t.Fatalf("SamplePairs(2,1) = %v, want [[0 1]]", got)
	}
	if got := New(3).SamplePairs(2, 0); len(got) != 0 {
		t.Fatalf("SamplePairs(2,0) = %v, want empty", got)
	}
}

func TestSamplePairsExactPairSpace(t *testing.T) {
	const n = 7
	total := n * (n - 1) / 2
	got := New(11).SamplePairs(n, total)
	if len(got) != total {
		t.Fatalf("SamplePairs(%d,%d) returned %d pairs", n, total, len(got))
	}
	seen := make(map[[2]int32]bool, total)
	for _, p := range got {
		if p[0] >= p[1] || p[0] < 0 || p[1] >= n {
			t.Fatalf("pair %v not normalized in range", p)
		}
		if seen[p] {
			t.Fatalf("pair %v sampled twice at full coverage", p)
		}
		seen[p] = true
	}
}
