package rng

import (
	"math"
	"testing"
)

func TestZipfUniform(t *testing.T) {
	z := NewZipf(0, 10)
	r := New(1)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for k, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("uniform P(%d) = %.3f, want ~0.1", k, got)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1.1, 1000)
	r := New(7)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	// Key 0 must dominate key 99 by roughly 100^1.1 ≈ 158×; allow slack.
	if counts[0] < 50*counts[99] {
		t.Errorf("P(0)=%d not ≫ P(99)=%d for s=1.1", counts[0], counts[99])
	}
	// Monotone head: the first few ranks decrease.
	if !(counts[0] > counts[1] && counts[1] > counts[4]) {
		t.Errorf("head not decreasing: %v", counts[:5])
	}
}

func TestZipfBounds(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 2} {
		z := NewZipf(s, 3)
		r := New(99)
		for i := 0; i < 10000; i++ {
			if k := z.Sample(r); k < 0 || k >= 3 {
				t.Fatalf("s=%v sample %d out of [0,3)", s, k)
			}
		}
	}
	z := NewZipf(1, 1)
	r := New(5)
	for i := 0; i < 100; i++ {
		if z.Sample(r) != 0 {
			t.Fatal("n=1 sampler strayed")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(1, 0) },
		func() { NewZipf(-1, 5) },
		func() { NewZipf(math.NaN(), 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Zipf parameters did not panic")
				}
			}()
			fn()
		}()
	}
}
