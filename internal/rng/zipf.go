package rng

import (
	"math"
	"sort"
)

// Zipf samples from a Zipf(s) distribution over {0, 1, …, n-1}:
// P(k) ∝ 1/(k+1)^s. Load generators use it to model key skew — s=0 is
// uniform, s≈1 is classic web-traffic skew where a few hot keys dominate.
// Sampling is a binary search over a precomputed CDF, so construction is
// O(n) and each sample O(log n) with no per-sample allocation. A Zipf is
// immutable after construction and safe for concurrent use with
// per-goroutine RNGs.
type Zipf struct {
	n   int
	cdf []float64 // cdf[k] = P(X <= k); empty when s == 0 (uniform fast path)
}

// NewZipf builds the sampler. It panics when n < 1 or s is negative or
// non-finite (a programming error, not input).
func NewZipf(s float64, n int) *Zipf {
	if n < 1 {
		panic("rng: Zipf needs n >= 1")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic("rng: Zipf needs a finite s >= 0")
	}
	z := &Zipf{n: n}
	if s == 0 {
		return z
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		z.cdf[k] = sum
	}
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	return z
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Sample draws one value in [0, N()) using r.
func (z *Zipf) Sample(r *RNG) int {
	if z.cdf == nil {
		return r.Intn(z.n)
	}
	u := r.Float64()
	k := sort.SearchFloat64s(z.cdf, u)
	if k >= z.n { // u can round to exactly 1.0
		k = z.n - 1
	}
	return k
}
