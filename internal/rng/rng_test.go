package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams collide %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(2)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d of expected %d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(4)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(6)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {100, 90}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) length %d", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestNorm64Moments(t *testing.T) {
	r := New(8)
	const trials = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := r.Norm64()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm64 mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm64 variance %v", variance)
	}
}

func TestShuffleIsPermutationProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n)
		for _, v := range xs {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}
