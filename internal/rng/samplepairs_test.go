package rng

import (
	"reflect"
	"testing"
)

func TestSamplePairsDistinctNormalizedInRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 5}, {10, 45}, // k = C(10,2): full pair space
		{100, 30}, {25, 200}, // dense regime (200 > C(25,2)/3)
	} {
		r := New(uint64(tc.n*1000 + tc.k))
		ps := r.SamplePairs(tc.n, tc.k)
		if len(ps) != tc.k {
			t.Fatalf("n=%d k=%d: got %d pairs", tc.n, tc.k, len(ps))
		}
		seen := make(map[[2]int32]bool, tc.k)
		for _, p := range ps {
			if p[0] >= p[1] || p[0] < 0 || int(p[1]) >= tc.n {
				t.Fatalf("n=%d: bad pair %v", tc.n, p)
			}
			if seen[p] {
				t.Fatalf("n=%d k=%d: duplicate pair %v", tc.n, tc.k, p)
			}
			seen[p] = true
		}
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	a := New(42).SamplePairs(50, 100)
	b := New(42).SamplePairs(50, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different pair samples")
	}
}

func TestSamplePairsPanicsOutOfRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 46}, {10, -1}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d k=%d: expected panic", tc.n, tc.k)
				}
			}()
			New(1).SamplePairs(tc.n, tc.k)
		}()
	}
}
