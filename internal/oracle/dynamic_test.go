package oracle

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// The backend refresh contract, end to end: an oracle.Dynamic driven
// through a random update sequence must answer every pair exactly like
// an oracle freshly built on the current spanner — for every backend.
func TestDynamicMatchesFreshOracle(t *testing.T) {
	base := gen.ErdosRenyi(48, 0.08, rng.New(3))
	for _, name := range BackendNames() {
		opts := Options{Backend: name, Seed: 42, SampleEvery: -1}
		d, err := NewDynamic(base, DynamicOptions{
			Spanner: spanner.IncrementalOptions{Seed: 0xfeed, RebuildThreshold: -1},
			Oracle:  opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(777)
		n := int32(base.N())
		for step := 0; step < 120; step++ {
			u, v := int32(r.Intn(int(n))), int32(r.Intn(int(n)))
			if u == v {
				continue
			}
			if _, err := d.Update(u, v, r.Bernoulli(0.5)); err != nil {
				t.Fatal(err)
			}
			if step%10 != 9 {
				continue
			}
			info := d.Snapshot(true)
			if !info.Verified || !info.Consistent {
				t.Fatalf("%s step %d: snapshot verify failed: %+v", name, step, info)
			}
			s := d.inc.Spanner()
			fresh, err := NewFromGraphs(s.Base, s.H, spanner.IncrementalAlpha, opts)
			if err != nil {
				t.Fatal(err)
			}
			for a := int32(0); a < n; a++ {
				for b := a + 1; b < n; b++ {
					got, err1 := d.Dist(a, b)
					want, err2 := fresh.Dist(a, b)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if got != want {
						t.Fatalf("%s step %d pair (%d,%d): refreshed answer %+v, fresh build %+v",
							name, step, a, b, got, want)
					}
				}
			}
		}
	}
}

// Exact-backend refresh: the patched table must match a fresh sweep
// bit for bit through insertions, deletions (both the affected-row
// rewrite and the >n/2 full-resweep fallback), and disconnect/reconnect
// transitions through graph.Unreachable.
func TestExactRefreshPatchesTable(t *testing.T) {
	n := 40
	cur := gen.ErdosRenyi(n, 0.09, rng.New(5))
	b := newExactBackend(cur, 2, nil)

	check := func(stage string) {
		t.Helper()
		want := newExactBackend(b.h, 2, nil)
		for u := int32(0); u < int32(n); u++ {
			for v := u + 1; v < int32(n); v++ {
				if got, exp := b.tri.At(u, v), want.tri.At(u, v); got != exp {
					t.Fatalf("%s: tri(%d,%d) = %d, fresh sweep has %d", stage, u, v, got, exp)
				}
			}
		}
	}

	mutate := func(stage string, toggle []graph.Edge) {
		t.Helper()
		have := make(map[graph.Edge]bool, b.h.M())
		for _, e := range b.h.Edges() {
			have[e] = true
		}
		for _, e := range toggle {
			e = e.Normalize()
			have[e] = !have[e]
		}
		var edges []graph.Edge
		for e, in := range have {
			if in {
				edges = append(edges, e)
			}
		}
		b.refresh(graph.FromEdges(n, edges), GraphUpdate{})
		check(stage)
	}

	// Pure insertions exercise the min-rule patch alone.
	mutate("insert", []graph.Edge{{U: 0, V: 39}, {U: 3, V: 30}, {U: 11, V: 25}})
	// A small deletion exercises the affected-row rewrite.
	some := b.h.Edges()[:2]
	mutate("delete", append([]graph.Edge(nil), some...))
	// Mixed add/remove in one refresh.
	mutate("mixed", []graph.Edge{{U: 0, V: 39}, {U: 1, V: 38}, b.h.Edges()[4]})
	// Delete most edges at once: nearly every row is affected, driving
	// the >n/2 full-resweep fallback and plenty of Unreachable pairs.
	bulk := append([]graph.Edge(nil), b.h.Edges()[:b.h.M()*3/4]...)
	mutate("bulk-delete", bulk)
	// Reconnect.
	mutate("reinsert", bulk)
}

// Landmark refresh must rebuild the table to what a fresh build on the
// new spanner produces (byte-identical, same count and seed) and empty
// the result cache.
func TestLandmarkRefreshRebuildsTableAndFlushesCache(t *testing.T) {
	h0 := gen.ErdosRenyi(64, 0.07, rng.New(9))
	opts := Options{Seed: 17, Landmarks: 8}
	b := newLandmarkBackend(h0, opts, 2, nil)
	for v := int32(1); v < 20; v++ {
		b.Dist(0, v) // populate the cache
	}
	cached := 0
	for i := range b.cache.shards {
		cached += len(b.cache.shards[i].m)
	}
	if cached == 0 {
		t.Fatal("warm-up queries cached nothing")
	}
	h1 := graph.FromEdges(64, append(h0.Edges(), graph.Edge{U: 0, V: 63}))
	b.refresh(h1, GraphUpdate{U: 0, V: 63, Add: true})
	fresh := newLandmarkBackend(h1, opts, 2, nil)
	got, want := b.lm.Bytes(), fresh.lm.Bytes()
	if string(got) != string(want) {
		t.Fatal("refreshed landmark table differs from a fresh build")
	}
	for i := range b.cache.shards {
		s := &b.cache.shards[i]
		if len(s.m) != 0 || s.used != 0 || s.head != -1 || s.tail != -1 {
			t.Fatalf("shard %d not flushed: %d entries, used=%d", i, len(s.m), s.used)
		}
	}
}

// Sparse-hub refresh rebuilds hubs and bunches in place to exactly the
// structures a fresh build would hold.
func TestSparseRefreshMatchesFreshBuild(t *testing.T) {
	h0 := gen.ErdosRenyi(56, 0.08, rng.New(13))
	opts := Options{Seed: 23, SparseHubs: 7}
	b := newSparseBackend(h0, opts, 2, nil)
	edges := h0.Edges()
	h1 := graph.FromEdges(56, append(edges[:len(edges)-3:len(edges)-3], graph.Edge{U: 2, V: 55}))
	b.refresh(h1, GraphUpdate{})
	fresh := newSparseBackend(h1, opts, 2, nil)
	if string(b.hubs.Bytes()) != string(fresh.hubs.Bytes()) {
		t.Fatal("refreshed hub table differs from a fresh build")
	}
	eq32 := func(a, c []int32) bool {
		if len(a) != len(c) {
			return false
		}
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if !eq32(b.bunchOff, fresh.bunchOff) || !eq32(b.bunchW, fresh.bunchW) || !eq32(b.bunchD, fresh.bunchD) {
		t.Fatal("refreshed bunch CSR differs from a fresh build")
	}
}

// No-op updates must leave the engine untouched and out-of-range ones
// must error without mutating anything.
func TestDynamicNoOpAndInvalidUpdates(t *testing.T) {
	base := gen.Cycle(16)
	d, err := NewDynamic(base, DynamicOptions{Oracle: Options{Backend: BackendExactCached}})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot(false)
	res, err := d.Update(0, 1, true) // edge already present
	if err != nil || res.Applied {
		t.Fatalf("inserting a present edge: %+v err=%v", res, err)
	}
	if _, err := d.Update(0, 16, true); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	after := d.Snapshot(false)
	if before != after {
		t.Fatalf("no-op updates changed the snapshot: %+v -> %+v", before, after)
	}
	if after.Seq != 0 {
		t.Fatalf("Seq advanced to %d on no-ops", after.Seq)
	}
}
