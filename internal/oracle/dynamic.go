package oracle

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// Dynamic is the live-graph serving engine: a mutable base graph, an
// incrementally maintained stretch-3 cluster spanner over it
// (spanner.Incremental), and an Oracle answering queries on the current
// spanner. Updates repair everything in place — the spanner by its local
// cluster rule, the oracle backend through Backend.refresh — so
// counters, caches, histograms, and metric registrations survive every
// mutation instead of being torn down per update.
//
// Concurrency: an RWMutex serializes updates (exclusive) against queries
// (shared). Queries between two updates see a consistent
// (graph, spanner, backend) triple; the Oracle itself is concurrency-
// safe under the read lock exactly as it is for a static graph.
type Dynamic struct {
	mu   sync.RWMutex
	inc  *spanner.Incremental
	o    *Oracle
	sopt spanner.IncrementalOptions // kept for Snapshot's verify rebuild
}

// DynamicOptions configures NewDynamic.
type DynamicOptions struct {
	// Spanner configures the incremental maintenance layer (seed,
	// rebuild threshold).
	Spanner spanner.IncrementalOptions
	// Oracle configures the serving layer. Backend "auto" is tuned once,
	// at startup — updates refresh the chosen backend, they never re-run
	// the tuner.
	Oracle Options
}

// UpdateResult reports what one edge update did.
type UpdateResult struct {
	// Applied is false for no-op updates (inserting a present edge,
	// deleting an absent one); nothing changed.
	Applied bool
	// Rebuilt reports that spanner maintenance fell back to a full
	// recompute under its dirty-fraction threshold (the result is
	// identical either way — see spanner.Incremental).
	Rebuilt bool
	// M and HM are the base-graph and spanner edge counts after the
	// update.
	M, HM int
	// Seq is the applied-update counter after the update.
	Seq uint64
}

// SnapshotInfo describes the engine's current state, hashed so two ends
// of a connection (or a differential harness) can compare states without
// shipping edge lists.
type SnapshotInfo struct {
	// N, M are the live graph's vertex and edge counts; HM is the
	// maintained spanner's edge count.
	N, M, HM int
	// Seq is the applied-update counter.
	Seq uint64
	// GraphHash and SpannerHash are FNV-1a digests of the canonical
	// (sorted, U < V) edge lists of the live graph and the spanner.
	GraphHash, SpannerHash uint64
	// Verified reports that the snapshot re-derived the spanner from
	// scratch off the current edge set and compared it to the maintained
	// one; Consistent is that comparison (always false when Verified is
	// false).
	Verified, Consistent bool
}

// NewDynamic builds the engine over a starting graph. The oracle serves
// the incremental spanner with its certified stretch
// (spanner.IncrementalAlpha).
func NewDynamic(base *graph.Graph, opts DynamicOptions) (*Dynamic, error) {
	inc := spanner.NewIncremental(base, opts.Spanner)
	s := inc.Spanner()
	o, err := NewFromGraphs(s.Base, s.H, spanner.IncrementalAlpha, opts.Oracle)
	if err != nil {
		return nil, err
	}
	return &Dynamic{inc: inc, o: o, sopt: opts.Spanner}, nil
}

// Update applies one edge mutation end to end: the live graph, the
// maintained spanner, and the oracle backend's precomputed state. No-op
// updates (Applied false) touch nothing. The cost of an applied update
// is the local spanner rule plus one snapshot materialization plus the
// backend's refresh.
func (d *Dynamic) Update(u, v int32, add bool) (UpdateResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var (
		applied, rebuilt bool
		err              error
	)
	if add {
		applied, rebuilt, err = d.inc.Insert(u, v)
	} else {
		applied, rebuilt, err = d.inc.Delete(u, v)
	}
	res := UpdateResult{
		Applied: applied,
		Rebuilt: rebuilt,
		M:       d.inc.Graph().M(),
		HM:      d.inc.HM(),
		Seq:     d.inc.Seq(),
	}
	if err != nil || !applied {
		return res, err
	}
	s := d.inc.Spanner()
	d.o.applyUpdate(s.Base, s.H, GraphUpdate{U: u, V: v, Add: add})
	return res, nil
}

// Snapshot reports the engine's current state. With verify set it also
// rebuilds the spanner from scratch off the current edge set (same seed)
// and reports whether the maintained one matches — the wire-reachable
// form of the incremental-vs-rebuilt differential.
func (d *Dynamic) Snapshot(verify bool) SnapshotInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	dg := d.inc.Graph()
	snap := dg.Snapshot()
	hEdges := d.inc.Edges()
	info := SnapshotInfo{
		N:           dg.N(),
		M:           dg.M(),
		HM:          len(hEdges),
		Seq:         dg.Seq(),
		GraphHash:   edgeSetHash(snap.Edges()),
		SpannerHash: edgeSetHash(hEdges),
	}
	if verify {
		info.Verified = true
		fresh := spanner.NewIncremental(snap, d.sopt)
		info.Consistent = edgeSetHash(fresh.Edges()) == info.SpannerHash &&
			fresh.HM() == info.HM
	}
	return info
}

// edgeSetHash is the FNV-1a digest of a canonical edge list, 8 bytes per
// edge in little-endian (u, v) order.
func edgeSetHash(edges []graph.Edge) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(x >> (8 * i)))
			h *= prime
		}
	}
	for _, e := range edges {
		mix(uint32(e.U))
		mix(uint32(e.V))
	}
	return h
}

// Oracle returns the serving oracle for read-only introspection (stats,
// tuner report, registry). The pointer is stable across updates — the
// engine repairs the oracle in place.
func (d *Dynamic) Oracle() *Oracle { return d.o }

// N returns the (fixed) vertex count.
func (d *Dynamic) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.N()
}

// Dist answers one distance query on the current spanner.
func (d *Dynamic) Dist(u, v int32) (Answer, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.Dist(u, v)
}

// DistTrace is Dist recording resolution spans into tr.
func (d *Dynamic) DistTrace(u, v int32, tr *obs.ReqTrace) (Answer, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.DistTrace(u, v, tr)
}

// AnswerBatch answers a batch on the current spanner.
func (d *Dynamic) AnswerBatch(qs []Query) []Answer {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.AnswerBatch(qs)
}

// AnswerBatchTrace is AnswerBatch recording resolution spans into tr.
func (d *Dynamic) AnswerBatchTrace(qs []Query, tr *obs.ReqTrace) []Answer {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.AnswerBatchTrace(qs, tr)
}

// Route answers one routing query on the current spanner.
func (d *Dynamic) Route(u, v int32) (routing.Path, Answer, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.Route(u, v)
}

// Stats snapshots the serving counters.
func (d *Dynamic) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.o.Stats()
}
