package oracle

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// TestPathCountersPartitionResolutions: every non-trivial resolution ends
// in exactly one of cache-hit / landmark-fallback / bibfs, so the three
// path counters sum to the cache lookup total.
func TestPathCountersPartitionResolutions(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 5)
	reg := obs.NewRegistry()
	o, err := New(dc, Options{Landmarks: 8, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const n = 400
	for i := 0; i < n; i++ {
		u := int32(r.Intn(o.N()))
		v := int32(r.Intn(o.N()))
		if u == v {
			continue
		}
		if _, err := o.Dist(u, v); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	key := func(name string) string { return backendKey(name, BackendLandmarkBiBFS) }
	hit := snap.Counters[key(metricPathCacheHit)]
	lm := snap.Counters[key(metricPathLandmark)]
	bfs := snap.Counters[key(metricPathBiBFS)]
	lookups := snap.Counters[key(metricCacheHits)] + snap.Counters[key(metricCacheMisses)]
	if hit+lm+bfs != lookups {
		t.Errorf("path counters %d+%d+%d != cache lookups %d", hit, lm, bfs, lookups)
	}
	if bfs == 0 {
		t.Error("no bibfs resolutions recorded")
	}
	if hit != snap.Counters[key(metricCacheHits)] {
		t.Errorf("path cache-hit %d != cache hits %d", hit, snap.Counters[key(metricCacheHits)])
	}
	// Every exact search observed its frontier.
	fr := snap.Histograms[metricFrontierMax]
	if fr.Count != lm+bfs {
		t.Errorf("frontier observations %d != searches %d", fr.Count, lm+bfs)
	}
	if fr.Max < 1 {
		t.Errorf("frontier max %v < 1", fr.Max)
	}
}

// TestStatsFromRegistrySnapshot: Stats figures agree with the registry
// exposition, and the consistency clamps hold.
func TestStatsFromRegistrySnapshot(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 6)
	reg := obs.NewRegistry()
	o, err := New(dc, Options{Landmarks: 8, Registry: reg, SampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	for i := 0; i < 300; i++ {
		u, v := int32(r.Intn(o.N())), int32(r.Intn(o.N()))
		if _, err := o.Dist(u, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := o.Route(1, 2); err != nil {
		t.Fatal(err)
	}
	s := o.Stats()
	snap := reg.Snapshot()
	if s.Queries != snap.Counters[metricDistQueries] {
		t.Errorf("Stats.Queries %d != registry %d", s.Queries, snap.Counters[metricDistQueries])
	}
	if s.Routes != 1 {
		t.Errorf("Routes = %d, want 1", s.Routes)
	}
	if s.HitRate < 0 || s.HitRate > 1 {
		t.Errorf("HitRate %v out of [0,1]", s.HitRate)
	}
	if s.CacheHits > s.Queries+s.Routes {
		t.Errorf("clamp failed: CacheHits %d > Queries+Routes %d", s.CacheHits, s.Queries+s.Routes)
	}
	if s.StretchSamples == 0 {
		t.Error("no stretch samples with SampleEvery=8 over 300 queries")
	}
	if s.LatencyP50 <= 0 {
		t.Error("latency p50 not positive")
	}

	// The Prometheus exposition covers the oracle metric families.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"oracle_dist_queries_total",
		"oracle_cache_hits_total",
		"oracle_path_bibfs_total",
		"oracle_dist_latency_seconds_bucket{le=",
		"oracle_realized_alpha",
		"oracle_landmarks",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPrivateRegistryWhenNil: a nil Options.Registry still yields a
// working registry, and two such oracles do not collide.
func TestPrivateRegistryWhenNil(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 9)
	o1, err := New(dc, Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := New(dc, Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if o1.Registry() == nil || o2.Registry() == nil || o1.Registry() == o2.Registry() {
		t.Error("private registries missing or shared")
	}
	if _, err := o1.Dist(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := o1.Registry().Snapshot().Counters[metricDistQueries]; got != 1 {
		t.Errorf("o1 queries = %d, want 1", got)
	}
}
