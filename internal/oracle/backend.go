package oracle

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Backend names accepted by Options.Backend (and the CLIs'
// -oracle-backend flag). The empty string means BackendLandmarkBiBFS —
// the zero Options value keeps the original engine, so committed bench
// baselines and differential fingerprints are unaffected by the backend
// layer's existence.
const (
	// BackendLandmarkBiBFS is the original three-tier engine: sharded LRU
	// result cache, landmark upper bounds, bounded bidirectional BFS.
	// Space O(k·n + cache); query O(k) on a bound, O(d·deg) on an exact
	// search. Stretch bound 1 when unbounded (every answer exact on H);
	// no declared bound when Options.MaxDist caps the search.
	BackendLandmarkBiBFS = "landmark-bibfs"
	// BackendExactCached precomputes the full all-pairs distance matrix
	// (a triangular n(n−1)/2 table) at build time. Space O(n²), query
	// O(1), stretch bound 1. Only sensible for small graphs — the tuner
	// gates it on Options.MemoryBudget.
	BackendExactCached = "exact-cached"
	// BackendSparseHub is the Thorup–Zwick-style two-level design from
	// Agarwal–Godfrey–Har-Peled's sparse-graph line of work: a hub set A
	// of size k with full BFS rows, plus per-vertex bunches
	// B(u) = {w : d(u,w) < d(u,A)} holding exact distances. Space
	// O(k·n + Σ|B(u)|) with E|B(u)| ≈ n/k under uniform hub sampling
	// (k ≈ √n balances the two terms; Options.SparseHubs is the knob).
	// Query is two binary searches plus an O(k) hub scan; stretch bound 3.
	BackendSparseHub = "sparse-hub"
	// BackendAuto asks New to benchmark every candidate backend on a
	// sampled query mix over the loaded graph and serve the fastest one
	// that fits Options.MemoryBudget (see tuner.go for the decision
	// rule). The choice is exposed via Oracle.Backend and TunerReport.
	BackendAuto = "auto"
)

// BackendNames returns the concrete backend names (excluding
// BackendAuto), in tuner preference order for ties.
func BackendNames() []string {
	return []string{BackendLandmarkBiBFS, BackendExactCached, BackendSparseHub}
}

// Backend is one distance-resolution engine behind an Oracle. The Oracle
// owns all shared serving concerns — query validation, self-queries,
// query/latency accounting, the realized-stretch sampler, routing — and
// delegates only the distance resolution of valid u ≠ v pairs here.
//
// The interface is sealed (attachMetrics is unexported): backends are
// constructed by New/NewFromGraphs via Options.Backend, so every
// implementation is swept by the internal/check differential harness
// against the exact distance matrix and its declared stretch bound.
type Backend interface {
	// Name returns the backend's registered name (one of BackendNames).
	Name() string
	// StretchBound is the declared worst-case multiplicative stretch of
	// Dist against the exact spanner distance: every finite answer
	// satisfies d_H(u,v) ≤ Dist ≤ StretchBound·d_H(u,v), and Unreachable
	// is answered if and only if the pair is disconnected on H. Zero
	// means no constant bound is declared (the landmark backend in
	// bounded-search mode). internal/check enforces the declared bound
	// against the exact matrix for every generator family.
	StretchBound() int
	// MemoryBytes estimates the backend's resident precomputed state
	// (tables, bunches, cache slots) — the figure the startup tuner
	// gates candidates on.
	MemoryBytes() int64
	// Dist resolves one query with both endpoints validated in range and
	// u ≠ v. It returns the filled Answer and the obs.Path* bit of the
	// resolution path taken; implementations do their own per-path
	// counting but no query/latency accounting.
	Dist(u, v int32) (Answer, uint8)
	// AnswerBatch offers the whole batch to the backend's bulk arm. When
	// it returns handled=true the backend has filled out[i] for every
	// valid non-self query (other slots are the Oracle's to fill) and
	// the mask is the OR of path bits taken; handled=false punts the
	// batch to the Oracle's per-query worker pool, which calls Dist.
	AnswerBatch(qs []Query, out []Answer) (mask uint8, handled bool)
	// Stats snapshots the backend's own counters (resolution paths,
	// cache hits) alongside its declared contract. The map keys are
	// stable short names ("path_bibfs", "cache_hits", ...).
	Stats() BackendStats

	// attachMetrics registers the backend's counters into the oracle's
	// registry, labeled backend="<name>". Called exactly once, on the
	// backend actually serving — tuner candidates that lose are never
	// attached, so candidate probing cannot collide on metric names.
	attachMetrics(reg *obs.Registry)

	// refresh invalidates or patches the backend's precomputed state
	// after the serving spanner changed from its current graph to h —
	// the dynamic-graph path, which repairs backends in place instead of
	// tearing down and rebuilding the oracle (counters, caches slots,
	// pools, and metric registrations all survive). up describes the
	// base-graph mutation that triggered the change, letting backends
	// patch incrementally where they can (the exact table applies a
	// per-edge relaxation for pure insertions and rewrites only affected
	// rows for deletions). The contract, enforced by internal/check's
	// incremental differential: after refresh, every answer must equal
	// the answer of a backend freshly built on h with the same Options.
	// Callers serialize refresh against Dist/AnswerBatch (oracle.Dynamic
	// holds its update lock).
	refresh(h *graph.Graph, up GraphUpdate)
}

// GraphUpdate describes one applied base-graph edge mutation, handed to
// Backend.refresh so engines can invalidate precisely instead of
// rebuilding.
type GraphUpdate struct {
	// U, V are the mutated edge's endpoints.
	U, V int32
	// Add distinguishes an insertion from a deletion.
	Add bool
}

// BackendStats is a point-in-time snapshot of one backend's counters and
// declared contract, embedded in Stats so mixed-backend fleets report
// per-backend numbers instead of blending them.
type BackendStats struct {
	// Name is the backend's registered name.
	Name string
	// StretchBound is the declared worst-case stretch (0 = undeclared).
	StretchBound int
	// MemoryBytes estimates the backend's precomputed state.
	MemoryBytes int64
	// Counters holds the backend's own counters under stable short keys.
	Counters map[string]int64
}

// backendKey returns the registry snapshot key of a backend-labeled
// metric — the obs registry keys labeled series as `name{label="value"}`.
func backendKey(name, backend string) string {
	return name + `{backend="` + backend + `"}`
}

// buildBackend constructs the named backend over the spanner h. The
// Options carry every knob a backend reads (landmark count, cache size,
// MaxDist, SparseHubs, Seed, Workers); name must be a concrete backend
// name — BackendAuto is resolved by the tuner before this is called.
func buildBackend(name string, h *graph.Graph, opts Options, workers int, trace *obs.Span) (Backend, error) {
	switch name {
	case "", BackendLandmarkBiBFS:
		return newLandmarkBackend(h, opts, workers, trace), nil
	case BackendExactCached:
		return newExactBackend(h, workers, trace), nil
	case BackendSparseHub:
		return newSparseBackend(h, opts, workers, trace), nil
	default:
		return nil, fmt.Errorf("oracle: unknown backend %q (have %v, or %q)",
			name, BackendNames(), BackendAuto)
	}
}
