package oracle

import "repro/internal/graph"

// biScratch is reusable state for bounded bidirectional BFS on the
// spanner. One instance serves one goroutine at a time; the oracle pools
// them. Stamp arrays make per-query reset O(frontier) instead of O(n).
type biScratch struct {
	du, dv []int32 // distances from the two endpoints
	su, sv []int32 // generation stamps validating du/dv entries
	gen    int32
	qu, qv []int32 // current frontiers
	nq     []int32 // next-frontier scratch

	// maxFrontier is the largest single-side frontier of the last search —
	// the per-query work figure the oracle's telemetry histograms. Owned
	// by the goroutine holding the scratch; read before pooling it back.
	maxFrontier int
}

func newBiScratch(n int) *biScratch {
	return &biScratch{
		du: make([]int32, n), dv: make([]int32, n),
		su: make([]int32, n), sv: make([]int32, n),
		qu: make([]int32, 0, 64), qv: make([]int32, 0, 64), nq: make([]int32, 0, 64),
	}
}

// distance returns the exact hop distance between u ≠ v on h via
// level-synchronized bidirectional BFS.
//
// The second return is false when maxDist >= 0 and the distance provably
// exceeds it (the caller falls back to the landmark bound). ub, when not
// graph.Unreachable, is a known upper bound on the true distance and only
// affects work, never the answer.
//
// Correctness of the stopping rule: after fully expanding a levels from u
// and b levels from v, every vertex within those radii is settled with its
// true distance. Any u–v path of length L <= a+b contains a vertex m with
// d(u,m) <= a and d(m,v) <= b, so m is settled by both sides and the
// candidate d(u,m)+d(m,v) <= L was recorded when the second side settled
// it. Hence once best <= a+b+1 no shorter path can remain undiscovered and
// best is exact; and if best is still unset with a+b >= maxDist, the
// distance exceeds maxDist.
func (s *biScratch) distance(h *graph.Graph, u, v, maxDist, ub int32) (int32, bool) {
	s.gen++
	if s.gen == 0 { // stamp wrap: invalidate everything once per 2^31 queries
		for i := range s.su {
			s.su[i] = 0
			s.sv[i] = 0
		}
		s.gen = 1
	}
	gen := s.gen
	s.qu = append(s.qu[:0], u)
	s.qv = append(s.qv[:0], v)
	s.du[u], s.su[u] = 0, gen
	s.dv[v], s.sv[v] = 0, gen
	var depthU, depthV int32
	best := graph.Unreachable
	s.maxFrontier = 1
	_ = ub // the stopping rule already bounds work by 2·dist; ub kept for the API contract

	for len(s.qu) > 0 && len(s.qv) > 0 {
		if best != graph.Unreachable && depthU+depthV >= best-1 {
			break
		}
		if best == graph.Unreachable && maxDist >= 0 && depthU+depthV >= maxDist {
			return 0, false
		}
		// Expand the smaller frontier one full level.
		if len(s.qu) <= len(s.qv) {
			s.nq = s.nq[:0]
			for _, x := range s.qu {
				dx := s.du[x]
				for _, w := range h.Neighbors(x) {
					if s.su[w] == gen {
						continue
					}
					s.su[w] = gen
					s.du[w] = dx + 1
					if s.sv[w] == gen {
						if c := dx + 1 + s.dv[w]; best == graph.Unreachable || c < best {
							best = c
						}
					}
					s.nq = append(s.nq, w)
				}
			}
			s.qu, s.nq = s.nq, s.qu
			depthU++
			if len(s.qu) > s.maxFrontier {
				s.maxFrontier = len(s.qu)
			}
		} else {
			s.nq = s.nq[:0]
			for _, x := range s.qv {
				dx := s.dv[x]
				for _, w := range h.Neighbors(x) {
					if s.sv[w] == gen {
						continue
					}
					s.sv[w] = gen
					s.dv[w] = dx + 1
					if s.su[w] == gen {
						if c := dx + 1 + s.du[w]; best == graph.Unreachable || c < best {
							best = c
						}
					}
					s.nq = append(s.nq, w)
				}
			}
			s.qv, s.nq = s.nq, s.qv
			depthV++
			if len(s.qv) > s.maxFrontier {
				s.maxFrontier = len(s.qv)
			}
		}
	}
	if best == graph.Unreachable {
		// A frontier emptied: that side's whole component is settled, so if
		// the endpoints were connected a meeting would have been recorded.
		return graph.Unreachable, true
	}
	if maxDist >= 0 && best > maxDist {
		return 0, false
	}
	return best, true
}
