package oracle

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// The bulk multi-source sweep must be answer-for-answer identical to the
// per-query path: same Dist, Bound, Exact, and sentinel handling for
// invalid queries. The batch mixes duplicates, self queries, both invalid
// shapes, and enough source sharing to trip the bulk gate.
func TestAnswerBulkMatchesPerQueryPath(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 13)
	mk := func(workers int) *Oracle {
		o, err := New(dc, Options{Landmarks: 6, Workers: workers, CacheSize: -1, SampleEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	n := dc.Graph().N()
	r := rng.New(5)
	qs := make([]Query, 0, 600)
	for i := 0; i < 560; i++ {
		// ~32 distinct sources so valid >= 2*sources comfortably holds.
		qs = append(qs, Query{U: int32(r.Intn(32)), V: int32(r.Intn(n))})
	}
	qs = append(qs,
		Query{U: 3, V: 3},            // self
		Query{U: -1, V: 5},           // invalid low
		Query{U: 5, V: int32(n)},     // invalid high
		Query{U: 9, V: 9},            // self again
		Query{U: int32(n - 1), V: 0}, // unique source
		Query{U: int32(n - 1), V: 0}, // duplicate query
	)

	// Ground truth: per-query answers on a fresh oracle (batch below the
	// bulk threshold takes the per-query path by construction).
	ref := mk(1)
	want := make([]Answer, len(qs))
	for i, q := range qs {
		a, _, err := ref.answer(q.U, q.V)
		if err != nil {
			a = Answer{U: q.U, V: q.V, Dist: graph.Unreachable, Bound: graph.Unreachable}
		}
		want[i] = a
	}

	for _, workers := range []int{1, 2, 8} {
		o := mk(workers)
		out := o.AnswerBatch(qs)
		if len(out) != len(qs) {
			t.Fatalf("workers=%d: %d answers for %d queries", workers, len(out), len(qs))
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: answer %d = %+v, per-query path says %+v",
					workers, i, out[i], want[i])
			}
		}
		// The batch must actually have gone through the bulk path: every
		// valid non-self query lands in the bulk counter, none in the
		// per-query resolution counters.
		snap := o.Registry().Snapshot()
		validNonSelf := int64(0)
		for _, q := range qs {
			if q.U >= 0 && q.V >= 0 && int(q.U) < n && int(q.V) < n && q.U != q.V {
				validNonSelf++
			}
		}
		if got := snap.Counters[backendKey(metricPathBulk, BackendLandmarkBiBFS)]; got != validNonSelf {
			t.Fatalf("workers=%d: bulk counter %d, want %d", workers, got, validNonSelf)
		}
		if snap.Counters[backendKey(metricPathBiBFS, BackendLandmarkBiBFS)] != 0 ||
			snap.Counters[backendKey(metricPathCacheHit, BackendLandmarkBiBFS)] != 0 {
			t.Fatalf("workers=%d: bulk batch leaked into per-query path counters", workers)
		}
	}
}

// Bounded oracles must never take the bulk path: a depth-limited search
// can legitimately return an inexact landmark-bound answer, which a full
// BFS row cannot mirror.
func TestAnswerBulkSkipsBoundedOracles(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 13)
	o, err := New(dc, Options{Landmarks: 6, Workers: 2, CacheSize: -1, SampleEvery: -1, MaxDist: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, 400)
	r := rng.New(8)
	for i := range qs {
		qs[i] = Query{U: int32(r.Intn(16)), V: int32(r.Intn(128))}
	}
	o.AnswerBatch(qs)
	snap := o.Registry().Snapshot()
	if got := snap.Counters[backendKey(metricPathBulk, BackendLandmarkBiBFS)]; got != 0 {
		t.Fatalf("bounded oracle served %d queries through the bulk path", got)
	}
}
