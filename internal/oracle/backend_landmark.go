package oracle

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stats"
)

// landmarkBackend is the original serving engine (see the package doc):
// a sharded LRU result cache, a k-landmark upper-bound table, and a
// bounded bidirectional BFS for the exact-on-spanner distance, plus a
// bulk multi-source BFS arm for large batches. Unbounded (maxDist < 0)
// it declares stretch bound 1 — every answer is exact on H; with a
// depth bound it declares no constant stretch, because a query past the
// bound serves the landmark upper bound, which has no worst-case ratio.
type landmarkBackend struct {
	h       *graph.Graph
	lm      *landmarkTable
	cache   *shardedCache
	maxDist int32
	workers int
	lmCount int    // resolved landmark count, kept for refresh
	seed    uint64 // landmark-selection seed, kept for refresh

	pathCacheHit atomic.Int64
	pathLandmark atomic.Int64
	pathBiBFS    atomic.Int64
	pathBulk     atomic.Int64
	frontier     *stats.Histogram

	searchPool sync.Pool // *biScratch
}

// newLandmarkBackend builds the landmark table and cache per the
// Options defaults: 16 landmarks, a 1<<16-entry cache over 4×workers
// shards, unbounded search.
func newLandmarkBackend(h *graph.Graph, opts Options, workers int, trace *obs.Span) *landmarkBackend {
	k := opts.Landmarks
	if k == 0 {
		k = 16
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 4 * workers
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 1 << 16
	}
	maxDist := int32(opts.MaxDist)
	if maxDist <= 0 {
		maxDist = -1
	}
	lsp := trace.Start("landmark-table")
	lm := buildLandmarkTable(h, k, opts.Seed)
	lsp.SetKV("landmarks", len(lm.roots))
	lsp.End()
	b := &landmarkBackend{
		h:        h,
		lm:       lm,
		cache:    newShardedCache(cacheSize, shards),
		maxDist:  maxDist,
		workers:  workers,
		lmCount:  k,
		seed:     opts.Seed,
		frontier: stats.NewHistogram(stats.ExpBuckets(1, 2, 22)),
	}
	b.searchPool.New = func() any { return newBiScratch(h.N()) }
	return b
}

// Name implements Backend.
func (b *landmarkBackend) Name() string { return BackendLandmarkBiBFS }

// StretchBound implements Backend: 1 (exact on H) when the search is
// unbounded, 0 (no declared bound) in bounded-search mode.
func (b *landmarkBackend) StretchBound() int {
	if b.maxDist < 0 {
		return 1
	}
	return 0
}

// MemoryBytes implements Backend: the landmark rows plus the cache's
// slot arrays (each entry holds a key, value, and two list links).
func (b *landmarkBackend) MemoryBytes() int64 {
	bytes := int64(4 * len(b.lm.roots) * (1 + b.h.N())) // roots + k×n rows
	if b.cache != nil {
		bytes += int64(b.cache.slots()) * 24 // key 8 + val 4 + prev/next 8 + map slot ~4
	}
	return bytes
}

// Dist implements Backend: cache probe, then bounded bidirectional BFS
// pruned by the landmark bound, falling back to the bound itself when
// the depth budget is exhausted.
func (b *landmarkBackend) Dist(u, v int32) (Answer, uint8) {
	ans := Answer{U: u, V: v, Exact: true}
	ans.Bound = b.lm.upperBound(u, v)
	key := packKey(u, v)
	if b.cache != nil {
		if d, ok := b.cache.get(key); ok {
			b.pathCacheHit.Add(1)
			ans.Dist = d
			return ans, obs.PathCache
		}
	}
	sc := b.searchPool.Get().(*biScratch)
	d, exact := sc.distance(b.h, u, v, b.maxDist, ans.Bound)
	b.frontier.Observe(float64(sc.maxFrontier))
	b.searchPool.Put(sc)
	if !exact {
		// Depth budget exhausted: serve the landmark bound, uncached.
		b.pathLandmark.Add(1)
		ans.Dist = ans.Bound
		ans.Exact = false
		return ans, obs.PathLandmark
	}
	b.pathBiBFS.Add(1)
	ans.Dist = d
	if b.cache != nil {
		b.cache.put(key, d)
	}
	return ans, obs.PathBiBFS
}

// bulkMinBatch is the smallest batch the bulk sweep considers: below it
// the per-query bidirectional path wins outright and the grouping
// bookkeeping is not worth setting up.
const bulkMinBatch = 128

// AnswerBatch implements Backend: the bulk multi-source BFS arm. It
// groups the queries by source vertex, runs one full BFS row per
// distinct source (64 sources per word through the bit-parallel kernel
// when the spanner is dense enough), and reads each query's answer out
// of its source's row.
//
// Two gates keep it an exact drop-in for the per-query path:
//
//   - Unbounded searches only (maxDist < 0). A full BFS row is always
//     the exact spanner distance, matching the per-query search's every
//     answer bit for bit. A bounded search can exhaust its depth budget
//     and fall back to the landmark bound — whether it does depends on
//     component radii in a way a full BFS cannot mirror — so bounded
//     batches take the per-query path.
//   - Enough source sharing (valid queries ≥ 2× distinct sources), since
//     the sweep's cost is per-source while the per-query path's is
//     per-query.
//
// The bulk path never touches the result cache (it neither reads nor
// seeds it — the sweep is cheaper than n cache probes, and a full row
// would flood the LRU); served queries land in the oracle_path_bulk
// counter instead of the per-query resolution-path counters.
func (b *landmarkBackend) AnswerBatch(qs []Query, out []Answer) (uint8, bool) {
	if b.maxDist >= 0 || len(qs) < bulkMinBatch {
		return 0, false
	}
	n := int32(b.h.N())
	invalid := func(q Query) bool {
		return q.U < 0 || q.V < 0 || q.U >= n || q.V >= n
	}
	// Count swept queries per source vertex (invalid and self queries are
	// the Oracle's accounting loop's, not the sweep's).
	cnt := make([]int32, n)
	valid := 0
	for _, q := range qs {
		if invalid(q) || q.U == q.V {
			continue
		}
		cnt[q.U]++
		valid++
	}
	srcs := make([]int32, 0, 64)
	for v := int32(0); v < n; v++ {
		if cnt[v] > 0 {
			srcs = append(srcs, v)
		}
	}
	if len(srcs) == 0 || valid < 2*len(srcs) {
		return 0, false
	}
	// Counting sort of query indices by source, so each BFS row is
	// consumed in one contiguous run: order[off[i]:off[i+1]] holds the
	// batch indices whose source is srcs[i].
	rowOf := make([]int32, n)
	off := make([]int32, len(srcs)+1)
	for i, s := range srcs {
		rowOf[s] = int32(i)
		off[i+1] = off[i] + cnt[s]
	}
	pos := append([]int32(nil), off[:len(srcs)]...)
	order := make([]int32, valid)
	for qi, q := range qs {
		if invalid(q) || q.U == q.V {
			continue
		}
		r := rowOf[q.U]
		order[pos[r]] = int32(qi)
		pos[r]++
	}
	// The sweep writes only out slots owned by its own row's queries, so
	// the batch result is byte-identical at any worker count.
	b.h.MultiSourceBFSSweep(srcs, b.workers, func(i int, src int32, dist []int32) {
		for _, qi := range order[off[i]:off[i+1]] {
			q := qs[qi]
			out[qi] = Answer{
				U: q.U, V: q.V,
				Dist:  dist[q.V],
				Bound: b.lm.upperBound(q.U, q.V),
				Exact: true,
			}
		}
	})
	b.pathBulk.Add(int64(valid))
	return obs.PathBulk, true
}

// refresh implements Backend: rebuild the landmark table on the new
// spanner with the original (count, seed) — selection is deterministic
// in (seed, h), so a refreshed backend holds the exact table a fresh
// build would — and flush the result cache, whose entries were exact
// only on the old spanner. Counters, the frontier histogram, the search
// pool (scratch is sized by n, which updates never change), and metric
// registrations (their closures read b.lm/b.cache through the receiver)
// all survive.
func (b *landmarkBackend) refresh(h *graph.Graph, _ GraphUpdate) {
	b.h = h
	b.lm = buildLandmarkTable(h, b.lmCount, b.seed)
	if b.cache != nil {
		b.cache.flush()
	}
}

// Stats implements Backend.
func (b *landmarkBackend) Stats() BackendStats {
	hits, misses := int64(0), int64(0)
	if b.cache != nil {
		hits, misses = b.cache.counters()
	}
	return BackendStats{
		Name:         b.Name(),
		StretchBound: b.StretchBound(),
		MemoryBytes:  b.MemoryBytes(),
		Counters: map[string]int64{
			"cache_hits":    hits,
			"cache_misses":  misses,
			"path_cache":    b.pathCacheHit.Load(),
			"path_landmark": b.pathLandmark.Load(),
			"path_bibfs":    b.pathBiBFS.Load(),
			"path_bulk":     b.pathBulk.Load(),
			"landmarks":     int64(len(b.lm.roots)),
		},
	}
}

// attachMetrics implements Backend: every counter is labeled with the
// backend's name, so mixed-backend fleets scraped into one place stay
// distinguishable and per-backend hit rates never blend.
func (b *landmarkBackend) attachMetrics(reg *obs.Registry) {
	label := b.Name()
	hits := func() int64 { return 0 }
	misses := hits
	if b.cache != nil {
		hits = func() int64 { h, _ := b.cache.counters(); return h }
		misses = func() int64 { _, m := b.cache.counters(); return m }
	}
	reg.CounterFuncLabeled(metricCacheHits, "Result-cache hits.", "backend", label, hits)
	reg.CounterFuncLabeled(metricCacheMisses, "Result-cache misses.", "backend", label, misses)
	reg.CounterFuncLabeled(metricPathCacheHit, "Resolutions served from the result cache.",
		"backend", label, b.pathCacheHit.Load)
	reg.CounterFuncLabeled(metricPathLandmark, "Resolutions falling back to the landmark upper bound.",
		"backend", label, b.pathLandmark.Load)
	reg.CounterFuncLabeled(metricPathBiBFS, "Resolutions answered exactly by bidirectional BFS.",
		"backend", label, b.pathBiBFS.Load)
	reg.CounterFuncLabeled(metricPathBulk, "Batch queries answered exactly by the bulk multi-source BFS sweep.",
		"backend", label, b.pathBulk.Load)
	reg.RegisterHistogram(metricFrontierMax,
		"Largest single-side BFS frontier per exact search (vertices).", b.frontier)
	reg.GaugeFunc(metricLandmarks, "Landmark BFS trees precomputed on H.", func() float64 {
		return float64(len(b.lm.roots))
	})
}
