package oracle

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// buildTestSpanner constructs an expander DC-spanner in the Theorem 2
// regime (Δ > n^{2/3}) for oracle tests.
func buildTestSpanner(t testing.TB, n, d int, seed uint64) *core.DCSpanner {
	t.Helper()
	g := gen.MustRandomRegular(n, d, rng.New(seed))
	dc, err := core.Build(g, core.Options{
		Algorithm: core.AlgoExpander,
		Seed:      seed,
		Expander:  spanner.ExpanderOptions{EnsureConnected: true},
	})
	if err != nil {
		t.Fatalf("core.Build: %v", err)
	}
	return dc
}

func TestDistMatchesExactSpannerDistance(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 3)
	o, err := New(dc, Options{Landmarks: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := dc.Graph()
	r := rng.New(99)
	for i := 0; i < 300; i++ {
		u := int32(r.Intn(h.N()))
		v := int32(r.Intn(h.N()))
		ans, err := o.Dist(u, v)
		if err != nil {
			t.Fatal(err)
		}
		want := h.Dist(u, v)
		if !ans.Exact {
			t.Fatalf("Dist(%d,%d) not exact with unbounded MaxDist", u, v)
		}
		if ans.Dist != want {
			t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, ans.Dist, want)
		}
		if ans.Bound != graph.Unreachable && ans.Bound < want {
			t.Fatalf("landmark bound %d below true distance %d for (%d,%d)", ans.Bound, want, u, v)
		}
	}
}

// TestRealizedStretchWithinCertifiedAlpha is the acceptance check: on a
// 1000-query random sample the measured stretch dist_H/dist_G never
// exceeds the spanner's certified α.
func TestRealizedStretchWithinCertifiedAlpha(t *testing.T) {
	dc := buildTestSpanner(t, 256, 64, 7)
	alpha := dc.CertifiedAlpha()
	if alpha <= 0 {
		t.Fatalf("expander spanner must certify a constant alpha, got %d", alpha)
	}
	o, err := New(dc, Options{Landmarks: 16})
	if err != nil {
		t.Fatal(err)
	}
	g, n := dc.Base(), dc.Base().N()
	r := rng.New(1234)
	checked := 0
	for checked < 1000 {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		ans, err := o.Dist(u, v)
		if err != nil {
			t.Fatal(err)
		}
		dg := g.Dist(u, v)
		if dg == graph.Unreachable {
			continue
		}
		if ans.Dist == graph.Unreachable {
			t.Fatalf("(%d,%d) connected in G but not in H", u, v)
		}
		if float64(ans.Dist) > float64(alpha)*float64(dg) {
			t.Fatalf("stretch violation on (%d,%d): dist_H=%d dist_G=%d alpha=%d",
				u, v, ans.Dist, dg, alpha)
		}
		checked++
	}
	s := o.Stats()
	if s.StretchSamples > 0 && s.RealizedAlpha > float64(alpha) {
		t.Fatalf("oracle-sampled realized alpha %.3f exceeds certified %d", s.RealizedAlpha, alpha)
	}
}

// TestLandmarkDeterminism: two oracles built from the same seed must have
// byte-identical landmark tables; a different seed must not (on a graph
// large enough that collisions are implausible).
func TestLandmarkDeterminism(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 11)
	a, err := New(dc, Options{Landmarks: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(dc, Options{Landmarks: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.LandmarkBytes(), b.LandmarkBytes()) {
		t.Fatal("same seed produced different landmark tables")
	}
	c, err := New(dc, Options{Landmarks: 12, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.LandmarkBytes(), c.LandmarkBytes()) {
		t.Fatal("different seeds produced identical landmark tables")
	}
	// The highest-degree hub is always a landmark.
	h := dc.Graph()
	hub := int32(0)
	for v := int32(1); v < int32(h.N()); v++ {
		if h.Degree(v) > h.Degree(hub) {
			hub = v
		}
	}
	found := false
	for _, r := range a.Landmarks() {
		if r == hub {
			found = true
		}
	}
	if !found {
		t.Fatalf("hub %d missing from landmarks %v", hub, a.Landmarks())
	}
}

func TestCacheHitsAndStats(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 5)
	o, err := New(dc, Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(3, 77); err != nil {
		t.Fatal(err)
	}
	a1, err := o.Dist(77, 3) // symmetric key: must hit
	if err != nil {
		t.Fatal(err)
	}
	a2, err := o.Dist(3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Dist != a2.Dist {
		t.Fatalf("cache returned %d, recompute %d", a1.Dist, a2.Dist)
	}
	s := o.Stats()
	if s.CacheHits < 2 {
		t.Fatalf("expected >= 2 cache hits, got %d", s.CacheHits)
	}
	if s.Queries != 3 {
		t.Fatalf("queries = %d, want 3", s.Queries)
	}
	if s.LatencyP50 <= 0 || s.LatencyP99 < s.LatencyP50 {
		t.Fatalf("implausible latency quantiles: p50=%v p99=%v", s.LatencyP50, s.LatencyP99)
	}
}

func TestCacheDisabled(t *testing.T) {
	dc := buildTestSpanner(t, 64, 18, 21)
	o, err := New(dc, Options{Landmarks: 4, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := o.Dist(1, 40); err != nil {
			t.Fatal(err)
		}
	}
	s := o.Stats()
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded traffic: hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
}

func TestDisconnectedPair(t *testing.T) {
	// Two disjoint triangles.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	o, err := NewFromGraphs(g, g, 1, Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := o.Dist(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Dist != graph.Unreachable || !ans.Exact {
		t.Fatalf("disconnected pair: got %+v, want exact Unreachable", ans)
	}
	p, _, err := o.Route(0, 4)
	if err != nil || p != nil {
		t.Fatalf("Route across components: path=%v err=%v, want nil, nil", p, err)
	}
}

func TestMaxDistFallsBackToBound(t *testing.T) {
	// Path graph 0-1-2-...-19: landmark bound is loose away from roots.
	b := graph.NewBuilder(20)
	for i := int32(0); i < 19; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	o, err := NewFromGraphs(g, g, 1, Options{Landmarks: 2, MaxDist: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := o.Dist(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatalf("distance 19 answered exactly under MaxDist=3: %+v", ans)
	}
	if ans.Dist != ans.Bound || ans.Dist < 19 {
		t.Fatalf("fallback answer %d must equal the bound %d and dominate the true distance 19",
			ans.Dist, ans.Bound)
	}
	near, err := o.Dist(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !near.Exact || near.Dist != 2 {
		t.Fatalf("short query under MaxDist: got %+v, want exact 2", near)
	}
}

func TestRouteIsValidShortestPath(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 13)
	o, err := New(dc, Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	h := dc.Graph()
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		u := int32(r.Intn(h.N()))
		v := int32(r.Intn(h.N()))
		p, ans, err := o.Route(u, v)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Valid(h, u, v) {
			t.Fatalf("Route(%d,%d) invalid path %v", u, v, p)
		}
		if int32(p.Len()) != ans.Dist {
			t.Fatalf("Route(%d,%d) length %d != dist %d", u, v, p.Len(), ans.Dist)
		}
	}
	s := o.Stats()
	if s.Routes != 100 {
		t.Fatalf("routes = %d, want 100", s.Routes)
	}
	if s.MaxCongestion < 1 {
		t.Fatal("route congestion accounting recorded nothing")
	}
}

func TestAnswerBatchMatchesSequentialAndHandlesInvalid(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 17)
	o, err := New(dc, Options{Landmarks: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	qs := make([]Query, 500)
	for i := range qs {
		qs[i] = Query{U: int32(r.Intn(128)), V: int32(r.Intn(128))}
	}
	qs[17] = Query{U: -1, V: 5}
	qs[403] = Query{U: 4, V: 1 << 20}
	got := o.AnswerBatch(qs)
	for i, q := range qs {
		var want Answer
		if q.U < 0 || q.V < 0 || q.U >= 128 || q.V >= 128 {
			want = Answer{U: q.U, V: q.V, Dist: graph.Unreachable, Bound: graph.Unreachable}
		} else {
			w, err := o.Dist(q.U, q.V)
			if err != nil {
				t.Fatal(err)
			}
			want = w
		}
		if got[i] != want {
			t.Fatalf("batch[%d] = %+v, sequential %+v", i, got[i], want)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := NewFromGraphs(nil, nil, 1, Options{}); err == nil {
		t.Fatal("nil graphs accepted")
	}
	g := gen.MustRandomRegular(16, 4, rng.New(1))
	h := gen.MustRandomRegular(32, 4, rng.New(1))
	if _, err := NewFromGraphs(g, h, 1, Options{}); err == nil {
		t.Fatal("vertex count mismatch accepted")
	}
	o, err := NewFromGraphs(g, g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(0, 16); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}
