package oracle

import "testing"

// TestCacheCapacityExact pins the realized slot total to the requested
// capacity: the old code gave every shard ceil(capacity/shards) slots, so
// e.g. capacity 100 over 16 shards materialized 112 entries. The remainder
// must be distributed, never rounded up per shard.
func TestCacheCapacityExact(t *testing.T) {
	cases := []struct {
		capacity, shards int
	}{
		{100, 16},     // non-multiple: old code realized 112
		{1000, 12},    // shards rounds to 16; 1000 = 16*62 + 8
		{7, 16},       // fewer slots than shards: shard count must clamp
		{5, 4},        // 5 = 4*1 + 1
		{1, 8},        // degenerate: one slot, one shard
		{1 << 16, 64}, // power-of-two happy path stays exact
		{3, 1},
	}
	for _, tc := range cases {
		c := newShardedCache(tc.capacity, tc.shards)
		if c == nil {
			t.Fatalf("newShardedCache(%d, %d) = nil", tc.capacity, tc.shards)
		}
		if got := c.slots(); got != tc.capacity {
			t.Errorf("newShardedCache(%d, %d) realized %d slots, want exactly %d",
				tc.capacity, tc.shards, got, tc.capacity)
		}
		for i := range c.shards {
			if len(c.shards[i].keys) < 1 {
				t.Errorf("newShardedCache(%d, %d): shard %d has zero slots",
					tc.capacity, tc.shards, i)
			}
		}
	}
	if c := newShardedCache(0, 4); c != nil {
		t.Error("capacity 0 must disable the cache")
	}
	if c := newShardedCache(-5, 4); c != nil {
		t.Error("negative capacity must disable the cache")
	}
}

// TestCacheOneSlotPerShardEviction exercises LRU eviction in the tightest
// legal configuration — every shard holds exactly one slot — where any
// off-by-one in the intrusive list (head/tail maintenance on a
// single-element list) would corrupt state or panic.
func TestCacheOneSlotPerShardEviction(t *testing.T) {
	c := newShardedCache(4, 4)
	if got := c.slots(); got != 4 {
		t.Fatalf("slots = %d, want 4", got)
	}
	// Hammer one shard's single slot through many evictions.
	target := c.shard(packKey(0, 1))
	var keys []uint64
	for u := int32(0); u < 64 && len(keys) < 8; u++ {
		k := packKey(u, u+1)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("found only %d keys for the target shard", len(keys))
	}
	for i, k := range keys {
		c.put(k, int32(i))
	}
	// Only the most recent insert survives in a 1-slot shard.
	last := keys[len(keys)-1]
	if v, ok := c.get(last); !ok || v != int32(len(keys)-1) {
		t.Fatalf("get(last) = %d, %v; want %d, true", v, ok, len(keys)-1)
	}
	for _, k := range keys[:len(keys)-1] {
		if _, ok := c.get(k); ok {
			t.Fatalf("evicted key %#x still present in 1-slot shard", k)
		}
	}
	if n := len(target.m); n != 1 {
		t.Fatalf("1-slot shard holds %d entries", n)
	}
	// Overwriting the surviving key must refresh, not grow.
	c.put(last, 99)
	if v, ok := c.get(last); !ok || v != 99 {
		t.Fatalf("refresh lost: got %d, %v", v, ok)
	}
	if n := len(target.m); n != 1 {
		t.Fatalf("refresh grew the shard to %d entries", n)
	}
}

// TestCacheSingleSlotTotal drives the capacity-1 cache (one shard, one
// slot) through put/evict/get cycles.
func TestCacheSingleSlotTotal(t *testing.T) {
	c := newShardedCache(1, 8)
	a, b := packKey(1, 2), packKey(3, 4)
	c.put(a, 10)
	if v, ok := c.get(a); !ok || v != 10 {
		t.Fatalf("get(a) = %d, %v", v, ok)
	}
	c.put(b, 20)
	if _, ok := c.get(a); ok {
		t.Fatal("capacity-1 cache retained two entries")
	}
	if v, ok := c.get(b); !ok || v != 20 {
		t.Fatalf("get(b) = %d, %v", v, ok)
	}
}
