package oracle

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// twoTriangleOracle builds an oracle over two disjoint triangles
// ({0,1,2} and {3,4,5}), the standard disconnected-pair fixture.
func twoTriangleOracle(t *testing.T) *Oracle {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	o, err := NewFromGraphs(g, g, 1, Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestRouteDoesNotInflateDistAccounting is the regression test for the
// double-count bug: Route used to call Dist, so every route bumped
// Stats.Queries and pushed its latency into the Dist histogram, inflating
// QPS and skewing the quantiles relative to the caller's own query totals.
func TestRouteDoesNotInflateDistAccounting(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 23)
	o, err := New(dc, Options{Landmarks: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 20; i++ {
		if _, _, err := o.Route(i, i+50); err != nil {
			t.Fatal(err)
		}
	}
	s := o.Stats()
	if s.Routes != 20 {
		t.Fatalf("routes = %d, want 20", s.Routes)
	}
	if s.Queries != 0 {
		t.Fatalf("20 routes inflated Queries to %d, want 0", s.Queries)
	}
	if s.LatencyP50 != 0 || s.LatencyMean != 0 {
		t.Fatalf("route traffic leaked into the Dist histogram: p50=%v mean=%v",
			s.LatencyP50, s.LatencyMean)
	}
	if s.RouteLatencyP50 <= 0 || s.RouteLatencyP99 < s.RouteLatencyP50 {
		t.Fatalf("implausible route latency quantiles: p50=%v p99=%v",
			s.RouteLatencyP50, s.RouteLatencyP99)
	}

	// Mixed traffic: Dist and Route counters stay independent.
	for i := int32(0); i < 5; i++ {
		if _, err := o.Dist(i, i+30); err != nil {
			t.Fatal(err)
		}
	}
	s = o.Stats()
	if s.Queries != 5 || s.Routes != 20 {
		t.Fatalf("mixed traffic: queries=%d routes=%d, want 5 and 20", s.Queries, s.Routes)
	}
	if s.LatencyP50 <= 0 {
		t.Fatal("Dist histogram empty after 5 Dist queries")
	}
}

// TestMarkServingStartResetsQPSClock: QPS must be measured from the
// serving-start mark, not from New — otherwise idle time between oracle
// construction and the first query dilutes the figure.
func TestMarkServingStartResetsQPSClock(t *testing.T) {
	dc := buildTestSpanner(t, 64, 18, 29)
	o, err := New(dc, Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 50; i++ {
		if _, err := o.Dist(i%64, (i+13)%64); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // idle gap charged against the old clock
	s1 := o.Stats()
	o.MarkServingStart()
	s2 := o.Stats()
	if s2.Queries != s1.Queries {
		t.Fatalf("MarkServingStart changed query count: %d -> %d", s1.Queries, s2.Queries)
	}
	// Same query count over a strictly shorter elapsed window.
	if s2.QPS <= s1.QPS {
		t.Fatalf("QPS not remeasured from serving start: before=%.0f after=%.0f", s1.QPS, s2.QPS)
	}
}

// TestRouteCountsDisconnected: a route across components is still a served
// route (the client got an answer), but never a Dist query.
func TestRouteCountsDisconnected(t *testing.T) {
	o := twoTriangleOracle(t)
	p, _, err := o.Route(0, 4)
	if err != nil || p != nil {
		t.Fatalf("Route across components: path=%v err=%v", p, err)
	}
	s := o.Stats()
	if s.Routes != 1 || s.Queries != 0 {
		t.Fatalf("routes=%d queries=%d, want 1 and 0", s.Routes, s.Queries)
	}
}
