package oracle

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// oneVertexGraph is the smallest graph New accepts: a single isolated
// vertex, on which every probe pair is a self-pair.
func oneVertexGraph() *graph.Graph { return graph.FromEdges(1, nil) }

// On a 1-vertex graph no candidate answers any probe, so the tolerance
// band covers all of them and the declared stretch bound alone decides:
// the tuner must serve a stretch≤1 backend, not the stretch-3 sparse
// structure that sub-nanosecond loop-overhead noise used to pick.
func TestTunerOneVertexPrefersSmallStretch(t *testing.T) {
	g := oneVertexGraph()
	o, err := NewFromGraphs(g, g, 0, Options{Backend: BackendAuto, SampleEvery: -1, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := o.TunerReport()
	if rep == nil {
		t.Fatal("auto backend produced no tuner report")
	}
	for _, c := range rep.Candidates {
		if c.Skipped != "" {
			t.Fatalf("candidate %s skipped on a 1-vertex graph: %s", c.Name, c.Skipped)
		}
		if c.Answered != 0 || c.QueryNs != 0 {
			t.Fatalf("candidate %s answered %d probes (QueryNs=%v) with one vertex",
				c.Name, c.Answered, c.QueryNs)
		}
	}
	bs := o.BackendStats()
	if bs.StretchBound != 1 {
		t.Fatalf("1-vertex auto-tune chose %s with stretch bound %d, want a stretch≤1 backend",
			bs.Name, bs.StretchBound)
	}
	if !strings.Contains(rep.String(), "probes=0") {
		t.Fatalf("report does not render the answered-probe count:\n%s", rep.String())
	}
}

// On a 2-vertex graph every probe can be redrawn to the one valid pair,
// so each timed candidate must report a full complement of answered
// probes — the mean no longer divides by skipped self-pairs.
func TestTunerTwoVertexAnswersEveryProbe(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	const probes = 64
	o, err := NewFromGraphs(g, g, 0, Options{
		Backend: BackendAuto, SampleEvery: -1, Workers: 1, Seed: 2, TunerProbes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := o.TunerReport()
	if rep == nil {
		t.Fatal("auto backend produced no tuner report")
	}
	for _, c := range rep.Candidates {
		if c.Skipped != "" {
			t.Fatalf("candidate %s skipped on a 2-vertex graph: %s", c.Name, c.Skipped)
		}
		if c.Answered != probes {
			t.Fatalf("candidate %s answered %d of %d probes; self-pairs must be redrawn",
				c.Name, c.Answered, probes)
		}
		if c.QueryNs <= 0 {
			t.Fatalf("candidate %s has no mean probe latency over %d answered probes", c.Name, c.Answered)
		}
	}
	if a, err := o.Dist(0, 1); err != nil || a.Dist != 1 {
		t.Fatalf("Dist(0,1) = %+v, %v", a, err)
	}
}

// A budget below every non-landmark estimate exercises the
// estimate-over-budget Skipped branch for each of them; the landmark
// backend is exempt and must serve.
func TestTunerBudgetSkipsEveryNonLandmarkEstimate(t *testing.T) {
	dc := buildTestSpanner(t, 96, 32, 31)
	o, err := New(dc, Options{Backend: BackendAuto, MemoryBudget: 1, SampleEvery: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Backend() != BackendLandmarkBiBFS {
		t.Fatalf("1-byte budget picked %q, want %q", o.Backend(), BackendLandmarkBiBFS)
	}
	for _, c := range o.TunerReport().Candidates {
		if c.Name == BackendLandmarkBiBFS {
			if c.Skipped != "" {
				t.Fatalf("landmark backend skipped: %s", c.Skipped)
			}
			continue
		}
		if c.Skipped != "estimate over memory budget" {
			t.Fatalf("candidate %s: Skipped = %q, want the estimate branch", c.Name, c.Skipped)
		}
	}
}

// hublessPathGraph builds the estimate-under/realized-over construction:
// a K4 clique (vertices 0..3, holding the highest-degree first hub)
// beside a disjoint 60-vertex path. When both sparse hubs land in the
// clique, every path vertex has an unreachable hub set and its bunch
// covers the whole 60-vertex component — ~3600 bunch entries, far above
// the n·(n/k) = ~2100-entry estimate.
func hublessPathGraph() *graph.Graph {
	var edges []graph.Edge
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	for v := int32(5); v < 64; v++ {
		edges = append(edges, graph.Edge{U: v - 1, V: v})
	}
	return graph.FromEdges(64, edges)
}

// A candidate whose estimate fits the budget but whose realized size does
// not must hit the built-size Skipped branch after being timed out of the
// race. Hub sampling is seed-keyed, so scan seeds for one that drops the
// second sparse hub into the clique (probability ~1/21 per seed).
func TestTunerRealizedSizeOverBudgetSkips(t *testing.T) {
	g := hublessPathGraph()
	const budget = 20000 // sparseMemoryEstimate(64,2)=17416 < budget < hubless-path realized ~29k
	for seed := uint64(1); seed <= 400; seed++ {
		o, err := NewFromGraphs(g, g, 0, Options{
			Backend: BackendAuto, SparseHubs: 2, MemoryBudget: budget,
			SampleEvery: -1, Workers: 1, Seed: seed, TunerProbes: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range o.TunerReport().Candidates {
			if c.Name != BackendSparseHub || c.Skipped != "built size over memory budget" {
				continue
			}
			if c.MemoryBytes <= budget {
				t.Fatalf("seed %d: skipped for size with MemoryBytes %d <= budget %d",
					seed, c.MemoryBytes, budget)
			}
			if c.BuildNs <= 0 {
				t.Fatalf("seed %d: built-size skip must record the build time, got %d", seed, c.BuildNs)
			}
			if got := o.Backend(); got == BackendSparseHub {
				t.Fatalf("seed %d: serving the over-budget sparse backend", seed)
			}
			return
		}
	}
	t.Fatal("no seed in 1..400 produced a realized-size-over-budget sparse candidate")
}
