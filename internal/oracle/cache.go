package oracle

import (
	"sync"
	"sync/atomic"
)

// shardedCache is a fixed-capacity LRU result cache split into
// power-of-two shards so concurrent query workers contend on different
// locks. Keys are packed (u, v) pairs with u ≤ v (queries are symmetric
// on an undirected graph); values are the cached distance.
type shardedCache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Int64
	misses atomic.Int64
}

// cacheShard is one mutex-guarded LRU: a map from key to slot index over
// an intrusive doubly-linked freelist stored in parallel slices, avoiding
// per-entry allocations on the hot path.
type cacheShard struct {
	mu   sync.Mutex
	m    map[uint64]int32
	keys []uint64
	vals []int32
	prev []int32
	next []int32
	head int32 // most recently used; -1 when empty
	tail int32 // least recently used; -1 when empty
	used int32
}

func packKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// mixKey scrambles the packed key (SplitMix64 finalizer) so shard
// selection isn't correlated with vertex ids.
func mixKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// newShardedCache builds a cache with exactly `capacity` total entries
// spread over `shards` shards (rounded up to a power of two, then clamped
// down so no shard has fewer than one slot). The remainder of the division
// is distributed one slot at a time over the leading shards, so the
// realized capacity equals the request for every capacity, not just
// multiples of the shard count. A zero or negative capacity returns nil —
// the oracle treats a nil cache as disabled.
func newShardedCache(capacity, shards int) *shardedCache {
	if capacity <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	// Never more shards than slots: with pow <= capacity every shard keeps
	// at least one slot, so eviction always has a tail to reclaim.
	for pow > capacity {
		pow >>= 1
	}
	base, rem := capacity/pow, capacity%pow
	c := &shardedCache{shards: make([]cacheShard, pow), mask: uint64(pow - 1)}
	for i := range c.shards {
		per := base
		if i < rem {
			per++
		}
		s := &c.shards[i]
		s.m = make(map[uint64]int32, per)
		s.keys = make([]uint64, per)
		s.vals = make([]int32, per)
		s.prev = make([]int32, per)
		s.next = make([]int32, per)
		s.head, s.tail = -1, -1
	}
	return c
}

// slots returns the total entry capacity across shards (test hook).
func (c *shardedCache) slots() int {
	total := 0
	for i := range c.shards {
		total += len(c.shards[i].keys)
	}
	return total
}

func (c *shardedCache) shard(key uint64) *cacheShard {
	return &c.shards[mixKey(key)&c.mask]
}

// get returns the cached distance for key and whether it was present,
// promoting the entry to most-recently-used.
func (c *shardedCache) get(key uint64) (int32, bool) {
	s := c.shard(key)
	s.mu.Lock()
	slot, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	s.promote(slot)
	v := s.vals[slot]
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// put inserts or refreshes key → val, evicting the LRU entry when the
// shard is full.
func (c *shardedCache) put(key uint64, val int32) {
	s := c.shard(key)
	s.mu.Lock()
	if slot, ok := s.m[key]; ok {
		s.vals[slot] = val
		s.promote(slot)
		s.mu.Unlock()
		return
	}
	var slot int32
	if int(s.used) < len(s.keys) {
		slot = s.used
		s.used++
	} else {
		// Evict the tail (least recently used).
		slot = s.tail
		delete(s.m, s.keys[slot])
		s.unlink(slot)
	}
	s.keys[slot] = key
	s.vals[slot] = val
	s.m[key] = slot
	s.pushFront(slot)
	s.mu.Unlock()
}

// promote moves slot to the front of the recency list.
func (s *cacheShard) promote(slot int32) {
	if s.head == slot {
		return
	}
	s.unlink(slot)
	s.pushFront(slot)
}

func (s *cacheShard) unlink(slot int32) {
	p, n := s.prev[slot], s.next[slot]
	if p != -1 {
		s.next[p] = n
	} else {
		s.head = n
	}
	if n != -1 {
		s.prev[n] = p
	} else {
		s.tail = p
	}
}

func (s *cacheShard) pushFront(slot int32) {
	s.prev[slot] = -1
	s.next[slot] = s.head
	if s.head != -1 {
		s.prev[s.head] = slot
	}
	s.head = slot
	if s.tail == -1 {
		s.tail = slot
	}
}

// counters returns (hits, misses) since construction.
func (c *shardedCache) counters() (int64, int64) {
	return c.hits.Load(), c.misses.Load()
}

// flush discards every cached entry while keeping the slot arrays and
// the hit/miss counters (they count lookups, not contents). This is the
// graph-update invalidation path: cached distances are exact only for
// the spanner they were computed on, so a mutation empties the cache
// rather than tearing it down.
func (c *shardedCache) flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.m {
			delete(s.m, k)
		}
		s.head, s.tail, s.used = -1, -1, 0
		s.mu.Unlock()
	}
}
