package oracle

import (
	"sync"
	"sync/atomic"
	"time"
)

// AnswerBatch answers a batch of distance queries on the oracle's worker
// pool and returns one Answer per query, index-aligned with qs. Invalid
// queries (vertices out of range) yield an Answer with Dist and Bound set
// to graph.Unreachable rather than an error, so one bad query does not
// poison a batch.
//
// Answers are identical to answering the queries sequentially: the exact
// search is deterministic and the cache stores only exact values, so a
// cache hit and a recomputation cannot disagree regardless of how workers
// interleave.
func (o *Oracle) AnswerBatch(qs []Query) []Answer {
	out := make([]Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	w := o.workers
	if w > len(qs) {
		w = len(qs)
	}
	if w <= 1 {
		for i, q := range qs {
			out[i] = o.answerTimed(q)
		}
		return out
	}
	// Work-stealing by chunked atomic counter: cheap, and per-answer cost
	// varies enough (cache hit vs full search) that static chunking would
	// straggle.
	const chunk = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(qs) {
					return
				}
				hi := lo + chunk
				if hi > len(qs) {
					hi = len(qs)
				}
				for j := lo; j < hi; j++ {
					out[j] = o.answerTimed(qs[j])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// answerTimed is one batch element: answer with latency accounting,
// swallowing the out-of-range error into the Answer sentinel.
func (o *Oracle) answerTimed(q Query) Answer {
	t0 := time.Now()
	a, err := o.answer(q.U, q.V)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	return a
}
