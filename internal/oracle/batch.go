package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// AnswerBatch answers a batch of distance queries on the oracle's worker
// pool and returns one Answer per query, index-aligned with qs. Invalid
// queries (vertices out of range) yield an Answer with Dist and Bound set
// to graph.Unreachable rather than an error, so one bad query does not
// poison a batch.
//
// Answers are identical to answering the queries sequentially: every
// backend's resolution is deterministic (and the landmark backend's cache
// stores only exact values), so scheduling cannot change an answer. A
// backend may serve the whole batch through a bulk arm when that is
// cheaper — the landmark backend's multi-source BFS sweep for large
// unbounded batches, the exact backend's parallel table fill — and the
// answers are the same either way.
func (o *Oracle) AnswerBatch(qs []Query) []Answer {
	return o.AnswerBatchTrace(qs, nil)
}

// AnswerBatchTrace is AnswerBatch with an optional request trace: the
// answers are identical (the trace influences nothing the differential
// harness can see), but the trace's path mask accumulates every
// resolution path the batch took and an "oracle" hop records which arm
// (backend bulk vs per-query pool) served it. A nil trace costs only the
// per-batch nil checks — path bits are folded into a local word per
// worker either way, never per-query atomics.
func (o *Oracle) AnswerBatchTrace(qs []Query, tr *obs.ReqTrace) []Answer {
	t0 := time.Now()
	out := make([]Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	arm := "perquery"
	var mask uint8
	if m, handled := o.backend.AnswerBatch(qs, out); handled {
		arm = "bulk"
		mask = m
		o.accountBatch(qs, out, t0)
	} else {
		mask = o.answerMany(qs, out)
	}
	if tr != nil {
		tr.OrPath(mask)
		tr.Hop("oracle", t0, fmt.Sprintf("n=%d arm=%s path=%s", len(qs), arm, obs.PathString(mask)))
	}
	return out
}

// accountBatch settles a backend-handled batch: the backend filled every
// valid non-self out slot (and counted them in its own path counters);
// this serial pass mirrors the per-query path's oracle-level semantics.
// Invalid queries get the sentinel Answer and no accounting, self queries
// count as queries but take no resolution path, backend-served queries
// count and feed the deterministic stretch sampler in batch order.
// Latency is accounted as the batch's wall time amortized uniformly over
// the accounted queries.
func (o *Oracle) accountBatch(qs []Query, out []Answer, t0 time.Time) {
	n := int32(o.h.N())
	perQuery := time.Since(t0).Seconds() / float64(len(qs))
	for qi, q := range qs {
		switch {
		case q.U < 0 || q.V < 0 || q.U >= n || q.V >= n:
			out[qi] = Answer{U: q.U, V: q.V, Dist: graph.Unreachable, Bound: graph.Unreachable}
		case q.U == q.V:
			out[qi] = Answer{U: q.U, V: q.V, Exact: true}
			o.queries.Add(1)
			o.latency.Observe(perQuery)
		default:
			seq := o.queries.Add(1)
			if out[qi].Exact {
				o.maybeSampleStretch(seq, q.U, q.V, out[qi].Dist)
			}
			o.latency.Observe(perQuery)
		}
	}
}

// answerMany runs the per-query arm over the worker pool and returns the
// OR of the resolution-path bits taken.
func (o *Oracle) answerMany(qs []Query, out []Answer) uint8 {
	w := o.workers
	if w > len(qs) {
		w = len(qs)
	}
	if w <= 1 {
		var mask uint8
		for i, q := range qs {
			var p uint8
			out[i], p = o.answerTimed(q)
			mask |= p
		}
		return mask
	}
	// Work-stealing by chunked atomic counter: cheap, and per-answer cost
	// varies enough (cache hit vs full search) that static chunking would
	// straggle.
	const chunk = 16
	var next atomic.Int64
	var paths atomic.Uint32
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mask uint8
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(qs) {
					// One atomic fold per worker, not per query.
					for {
						old := paths.Load()
						if old|uint32(mask) == old || paths.CompareAndSwap(old, old|uint32(mask)) {
							return
						}
					}
				}
				hi := lo + chunk
				if hi > len(qs) {
					hi = len(qs)
				}
				for j := lo; j < hi; j++ {
					var p uint8
					out[j], p = o.answerTimed(qs[j])
					mask |= p
				}
			}
		}()
	}
	wg.Wait()
	return uint8(paths.Load())
}

// answerTimed is one batch element: answer with latency accounting,
// swallowing the out-of-range error into the Answer sentinel. The second
// return is the resolution-path bit taken.
func (o *Oracle) answerTimed(q Query) (Answer, uint8) {
	t0 := time.Now()
	a, path, err := o.answer(q.U, q.V)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	return a, path
}
