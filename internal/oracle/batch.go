package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// AnswerBatch answers a batch of distance queries on the oracle's worker
// pool and returns one Answer per query, index-aligned with qs. Invalid
// queries (vertices out of range) yield an Answer with Dist and Bound set
// to graph.Unreachable rather than an error, so one bad query does not
// poison a batch.
//
// Answers are identical to answering the queries sequentially: the exact
// search is deterministic and the cache stores only exact values, so a
// cache hit and a recomputation cannot disagree regardless of how workers
// interleave. Large batches on unbounded oracles are served by a bulk
// multi-source BFS sweep (answerBulk) that produces the same answers by a
// cheaper route: one BFS row per distinct source instead of one
// bidirectional search per query.
func (o *Oracle) AnswerBatch(qs []Query) []Answer {
	return o.AnswerBatchTrace(qs, nil)
}

// AnswerBatchTrace is AnswerBatch with an optional request trace: the
// answers are identical (the trace influences nothing the differential
// harness can see), but the trace's path mask accumulates every
// resolution path the batch took and an "oracle" hop records which arm
// (bulk sweep vs per-query pool) served it. A nil trace costs only the
// per-batch nil checks — path bits are folded into a local word per
// worker either way, never per-query atomics.
func (o *Oracle) AnswerBatchTrace(qs []Query, tr *obs.ReqTrace) []Answer {
	t0 := time.Now()
	out := make([]Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	arm := "perquery"
	var mask uint8
	if o.answerBulk(qs, out) {
		arm = "bulk"
		mask = obs.PathBulk
	} else {
		mask = o.answerMany(qs, out)
	}
	if tr != nil {
		tr.OrPath(mask)
		tr.Hop("oracle", t0, fmt.Sprintf("n=%d arm=%s path=%s", len(qs), arm, obs.PathString(mask)))
	}
	return out
}

// answerMany runs the per-query arm over the worker pool and returns the
// OR of the resolution-path bits taken.
func (o *Oracle) answerMany(qs []Query, out []Answer) uint8 {
	w := o.workers
	if w > len(qs) {
		w = len(qs)
	}
	if w <= 1 {
		var mask uint8
		for i, q := range qs {
			var p uint8
			out[i], p = o.answerTimed(q)
			mask |= p
		}
		return mask
	}
	// Work-stealing by chunked atomic counter: cheap, and per-answer cost
	// varies enough (cache hit vs full search) that static chunking would
	// straggle.
	const chunk = 16
	var next atomic.Int64
	var paths atomic.Uint32
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mask uint8
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(qs) {
					// One atomic fold per worker, not per query.
					for {
						old := paths.Load()
						if old|uint32(mask) == old || paths.CompareAndSwap(old, old|uint32(mask)) {
							return
						}
					}
				}
				hi := lo + chunk
				if hi > len(qs) {
					hi = len(qs)
				}
				for j := lo; j < hi; j++ {
					var p uint8
					out[j], p = o.answerTimed(qs[j])
					mask |= p
				}
			}
		}()
	}
	wg.Wait()
	return uint8(paths.Load())
}

// answerTimed is one batch element: answer with latency accounting,
// swallowing the out-of-range error into the Answer sentinel. The second
// return is the resolution-path bit taken.
func (o *Oracle) answerTimed(q Query) (Answer, uint8) {
	t0 := time.Now()
	a, path, err := o.answer(q.U, q.V)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	return a, path
}

// bulkMinBatch is the smallest batch the bulk sweep considers: below it
// the per-query bidirectional path wins outright and the grouping
// bookkeeping is not worth setting up.
const bulkMinBatch = 128

// answerBulk serves a batch through the multi-source BFS kernel: group
// the queries by source vertex, run one full BFS row per distinct source
// (64 sources per word through the bit-parallel kernel when the spanner
// is dense enough), and read each query's answer out of its source's row.
// It reports whether it handled the batch.
//
// Two gates keep it an exact drop-in for the per-query path:
//
//   - Unbounded oracles only (maxDist < 0). A full BFS row is always the
//     exact spanner distance, matching the per-query search's every
//     answer bit for bit. A bounded oracle's search can exhaust its depth
//     budget and fall back to the landmark bound — whether it does
//     depends on component radii in a way a full BFS cannot mirror — so
//     bounded batches take the per-query path.
//   - Enough source sharing (valid queries ≥ 2× distinct sources), since
//     the sweep's cost is per-source while the per-query path's is
//     per-query.
//
// The bulk path never touches the result cache (it neither reads nor
// seeds it — the sweep is cheaper than n cache probes, and a full row
// would flood the LRU); served queries land in the oracle_path_bulk
// counter instead of the per-query resolution-path counters. Latency is
// accounted as the batch's wall time amortized uniformly over the
// accounted queries.
func (o *Oracle) answerBulk(qs []Query, out []Answer) bool {
	if o.maxDist >= 0 || len(qs) < bulkMinBatch {
		return false
	}
	t0 := time.Now()
	n := int32(o.h.N())
	invalid := func(q Query) bool {
		return q.U < 0 || q.V < 0 || q.U >= n || q.V >= n
	}
	// Count swept queries per source vertex (invalid and self queries are
	// handled in the accounting loop, not the sweep).
	cnt := make([]int32, n)
	valid := 0
	for _, q := range qs {
		if invalid(q) || q.U == q.V {
			continue
		}
		cnt[q.U]++
		valid++
	}
	srcs := make([]int32, 0, 64)
	for v := int32(0); v < n; v++ {
		if cnt[v] > 0 {
			srcs = append(srcs, v)
		}
	}
	if len(srcs) == 0 || valid < 2*len(srcs) {
		return false
	}
	// Counting sort of query indices by source, so each BFS row is
	// consumed in one contiguous run: order[off[i]:off[i+1]] holds the
	// batch indices whose source is srcs[i].
	rowOf := make([]int32, n)
	off := make([]int32, len(srcs)+1)
	for i, s := range srcs {
		rowOf[s] = int32(i)
		off[i+1] = off[i] + cnt[s]
	}
	pos := append([]int32(nil), off[:len(srcs)]...)
	order := make([]int32, valid)
	for qi, q := range qs {
		if invalid(q) || q.U == q.V {
			continue
		}
		r := rowOf[q.U]
		order[pos[r]] = int32(qi)
		pos[r]++
	}
	// The sweep writes only out slots owned by its own row's queries, so
	// the batch result is byte-identical at any worker count.
	o.h.MultiSourceBFSSweep(srcs, o.workers, func(i int, src int32, dist []int32) {
		for _, qi := range order[off[i]:off[i+1]] {
			q := qs[qi]
			out[qi] = Answer{
				U: q.U, V: q.V,
				Dist:  dist[q.V],
				Bound: o.lm.upperBound(q.U, q.V),
				Exact: true,
			}
		}
	})
	// Serial accounting mirroring the per-query path's semantics: invalid
	// queries get the sentinel Answer and no accounting, self queries
	// count as queries but take no resolution path, swept queries count
	// and feed the deterministic stretch sampler in batch order.
	perQuery := time.Since(t0).Seconds() / float64(len(qs))
	for qi, q := range qs {
		switch {
		case invalid(q):
			out[qi] = Answer{U: q.U, V: q.V, Dist: graph.Unreachable, Bound: graph.Unreachable}
		case q.U == q.V:
			out[qi] = Answer{U: q.U, V: q.V, Exact: true}
			o.queries.Add(1)
			o.latency.Observe(perQuery)
		default:
			seq := o.queries.Add(1)
			o.pathBulk.Inc()
			o.maybeSampleStretch(seq, q.U, q.V, out[qi].Dist)
			o.latency.Observe(perQuery)
		}
	}
	return true
}
