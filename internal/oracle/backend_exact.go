package oracle

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// exactBackend answers every query from a precomputed all-pairs distance
// table over the spanner: a triangular n(n−1)/2 int32 matrix built by
// one multi-source BFS sweep at construction time. Space is O(n²) —
// ~4·n²/2 bytes, which is why the tuner gates it on the memory budget —
// but queries are a single O(1) table load and every answer is exact on
// H (declared stretch bound 1). It is the backend of choice for small
// graphs, where the table fits comfortably and beats both the cache
// probe and the bidirectional search.
type exactBackend struct {
	h       *graph.Graph
	tri     *graph.TriDist
	workers int

	pathExact atomic.Int64
}

// newExactBackend BFS-labels the whole graph. The sweep writes each
// row's upper-triangle slots only — distinct slots across rows — so the
// build is race-free and deterministic at any worker count.
func newExactBackend(h *graph.Graph, workers int, trace *obs.Span) *exactBackend {
	sp := trace.Start("exact-table")
	n := h.N()
	b := &exactBackend{h: h, tri: graph.NewTriDist(n), workers: workers}
	b.fillAll()
	sp.SetKV("entries", n*(n-1)/2)
	sp.End()
	return b
}

// fillAll recomputes the whole table by one multi-source sweep over every
// vertex (each row writes its upper-triangle slots only — disjoint across
// rows, so race-free at any worker count).
func (b *exactBackend) fillAll() {
	n := b.h.N()
	srcs := make([]int32, n)
	for i := range srcs {
		srcs[i] = int32(i)
	}
	b.h.MultiSourceBFSSweep(srcs, b.workers, func(i int, src int32, dist []int32) {
		for v := src + 1; v < int32(n); v++ {
			b.tri.Set(src, v, dist[v])
		}
	})
}

// Name implements Backend.
func (b *exactBackend) Name() string { return BackendExactCached }

// StretchBound implements Backend: every answer is the exact spanner
// distance.
func (b *exactBackend) StretchBound() int { return 1 }

// MemoryBytes implements Backend: the triangular table.
func (b *exactBackend) MemoryBytes() int64 { return exactMemoryEstimate(b.h.N()) }

// exactMemoryEstimate is the table size for an n-vertex graph — usable
// before building, which is how the tuner skips the backend outright on
// graphs whose table cannot fit the budget.
func exactMemoryEstimate(n int) int64 {
	return 4 * int64(n) * int64(n-1) / 2
}

// Dist implements Backend: one table load. The table is exact, so the
// admissible upper bound equals the distance.
func (b *exactBackend) Dist(u, v int32) (Answer, uint8) {
	b.pathExact.Add(1)
	d := b.tri.At(u, v)
	return Answer{U: u, V: v, Dist: d, Bound: d, Exact: true}, obs.PathExact
}

// AnswerBatch implements Backend: the whole batch is table loads, so it
// always handles, filling valid non-self slots in parallel (each worker
// owns a contiguous index range — disjoint slots, deterministic output).
func (b *exactBackend) AnswerBatch(qs []Query, out []Answer) (uint8, bool) {
	n := int32(b.h.N())
	var served atomic.Int64
	graph.ParallelRangeWorkers(len(qs), b.workers, func(w, lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			q := qs[i]
			if q.U < 0 || q.V < 0 || q.U >= n || q.V >= n || q.U == q.V {
				continue // the Oracle's accounting loop fills these slots
			}
			d := b.tri.At(q.U, q.V)
			out[i] = Answer{U: q.U, V: q.V, Dist: d, Bound: d, Exact: true}
			local++
		}
		served.Add(local)
	})
	b.pathExact.Add(served.Load())
	return obs.PathExact, true
}

// refresh implements Backend: patch the distance table in place against
// the spanner edge diff instead of resweeping every source.
//
//   - Insertions apply the classic one-edge relaxation
//     d'(u,v) = min(d(u,v), d(u,a)+1+d(b,v), d(u,b)+1+d(a,v)) — exact
//     for a single inserted edge, and exact for several when applied one
//     edge at a time.
//   - Deletions then rewrite only affected rows: a source x whose
//     distances can change must have some removed edge {a,b} tight from
//     it (|d(x,a)−d(x,b)| = 1) on the pre-removal graph, so every other
//     row is already correct. When more than half the rows are affected a
//     full sweep is cheaper, so refresh falls back to fillAll.
//
// The diff is taken between the old and new spanners (not the base-graph
// update, whose spanner footprint can be several edges), so the rule
// stays exact no matter what the maintenance layer did upstream.
func (b *exactBackend) refresh(h *graph.Graph, _ GraphUpdate) {
	added, removed := diffEdges(b.h.Edges(), h.Edges())
	b.h = h
	n := int32(h.N())
	for _, e := range added {
		b.patchInsert(e.U, e.V)
	}
	if len(removed) == 0 {
		return
	}
	// After the insertion patches the table is exact for h plus the
	// removed edges — exactly the graph the tightness criterion needs.
	affected := make([]bool, n)
	count := 0
	for _, e := range removed {
		for x := int32(0); x < n; x++ {
			if affected[x] {
				continue
			}
			da, db := b.tri.At(x, e.U), b.tri.At(x, e.V)
			if da == graph.Unreachable || db == graph.Unreachable {
				continue
			}
			if da-db == 1 || db-da == 1 {
				affected[x] = true
				count++
			}
		}
	}
	if count == 0 {
		return
	}
	if int32(count) > n/2 {
		b.fillAll()
		return
	}
	srcs := make([]int32, 0, count)
	for x := int32(0); x < n; x++ {
		if affected[x] {
			srcs = append(srcs, x)
		}
	}
	// Rewrite each affected row. A pair with both endpoints affected is
	// owned by its smaller-id row, so no two rows write the same slot and
	// the sweep stays race-free at any worker count.
	b.h.MultiSourceBFSSweep(srcs, b.workers, func(i int, src int32, dist []int32) {
		for v := int32(0); v < n; v++ {
			if v == src || (affected[v] && v < src) {
				continue
			}
			b.tri.Set(src, v, dist[v])
		}
	})
}

// patchInsert relaxes every pair through the newly inserted spanner edge
// {a, c}: any path improved by the edge crosses it once, splitting into
// old-distance legs, so the pre-patch columns of a and c decide every
// new value.
func (b *exactBackend) patchInsert(a, c int32) {
	n := int32(b.h.N())
	da := make([]int32, n)
	dc := make([]int32, n)
	for x := int32(0); x < n; x++ {
		da[x] = b.tri.At(x, a)
		dc[x] = b.tri.At(x, c)
	}
	better := func(best, left, right int32) int32 {
		if left == graph.Unreachable || right == graph.Unreachable {
			return best
		}
		if d := left + 1 + right; best == graph.Unreachable || d < best {
			return d
		}
		return best
	}
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			old := b.tri.At(u, v)
			d := better(old, da[u], dc[v])
			d = better(d, dc[u], da[v])
			if d != old {
				b.tri.Set(u, v, d)
			}
		}
	}
}

// diffEdges merges two canonical (U < V, lexicographically sorted) edge
// lists into the sets present only in the new one (added) and only in
// the old one (removed).
func diffEdges(old, cur []graph.Edge) (added, removed []graph.Edge) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		a, b := old[i], cur[j]
		switch {
		case a == b:
			i++
			j++
		case a.U < b.U || (a.U == b.U && a.V < b.V):
			removed = append(removed, a)
			i++
		default:
			added = append(added, b)
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

// Stats implements Backend.
func (b *exactBackend) Stats() BackendStats {
	return BackendStats{
		Name:         b.Name(),
		StretchBound: b.StretchBound(),
		MemoryBytes:  b.MemoryBytes(),
		Counters: map[string]int64{
			"path_exact": b.pathExact.Load(),
		},
	}
}

// attachMetrics implements Backend.
func (b *exactBackend) attachMetrics(reg *obs.Registry) {
	reg.CounterFuncLabeled(metricPathExact, "Resolutions served from the precomputed all-pairs table.",
		"backend", b.Name(), b.pathExact.Load)
}
