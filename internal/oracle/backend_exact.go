package oracle

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// exactBackend answers every query from a precomputed all-pairs distance
// table over the spanner: a triangular n(n−1)/2 int32 matrix built by
// one multi-source BFS sweep at construction time. Space is O(n²) —
// ~4·n²/2 bytes, which is why the tuner gates it on the memory budget —
// but queries are a single O(1) table load and every answer is exact on
// H (declared stretch bound 1). It is the backend of choice for small
// graphs, where the table fits comfortably and beats both the cache
// probe and the bidirectional search.
type exactBackend struct {
	h       *graph.Graph
	tri     *graph.TriDist
	workers int

	pathExact atomic.Int64
}

// newExactBackend BFS-labels the whole graph. The sweep writes each
// row's upper-triangle slots only — distinct slots across rows — so the
// build is race-free and deterministic at any worker count.
func newExactBackend(h *graph.Graph, workers int, trace *obs.Span) *exactBackend {
	sp := trace.Start("exact-table")
	n := h.N()
	tri := graph.NewTriDist(n)
	srcs := make([]int32, n)
	for i := range srcs {
		srcs[i] = int32(i)
	}
	h.MultiSourceBFSSweep(srcs, workers, func(i int, src int32, dist []int32) {
		for v := src + 1; v < int32(n); v++ {
			tri.Set(src, v, dist[v])
		}
	})
	sp.SetKV("entries", n*(n-1)/2)
	sp.End()
	return &exactBackend{h: h, tri: tri, workers: workers}
}

// Name implements Backend.
func (b *exactBackend) Name() string { return BackendExactCached }

// StretchBound implements Backend: every answer is the exact spanner
// distance.
func (b *exactBackend) StretchBound() int { return 1 }

// MemoryBytes implements Backend: the triangular table.
func (b *exactBackend) MemoryBytes() int64 { return exactMemoryEstimate(b.h.N()) }

// exactMemoryEstimate is the table size for an n-vertex graph — usable
// before building, which is how the tuner skips the backend outright on
// graphs whose table cannot fit the budget.
func exactMemoryEstimate(n int) int64 {
	return 4 * int64(n) * int64(n-1) / 2
}

// Dist implements Backend: one table load. The table is exact, so the
// admissible upper bound equals the distance.
func (b *exactBackend) Dist(u, v int32) (Answer, uint8) {
	b.pathExact.Add(1)
	d := b.tri.At(u, v)
	return Answer{U: u, V: v, Dist: d, Bound: d, Exact: true}, obs.PathExact
}

// AnswerBatch implements Backend: the whole batch is table loads, so it
// always handles, filling valid non-self slots in parallel (each worker
// owns a contiguous index range — disjoint slots, deterministic output).
func (b *exactBackend) AnswerBatch(qs []Query, out []Answer) (uint8, bool) {
	n := int32(b.h.N())
	var served atomic.Int64
	graph.ParallelRangeWorkers(len(qs), b.workers, func(w, lo, hi int) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			q := qs[i]
			if q.U < 0 || q.V < 0 || q.U >= n || q.V >= n || q.U == q.V {
				continue // the Oracle's accounting loop fills these slots
			}
			d := b.tri.At(q.U, q.V)
			out[i] = Answer{U: q.U, V: q.V, Dist: d, Bound: d, Exact: true}
			local++
		}
		served.Add(local)
	})
	b.pathExact.Add(served.Load())
	return obs.PathExact, true
}

// Stats implements Backend.
func (b *exactBackend) Stats() BackendStats {
	return BackendStats{
		Name:         b.Name(),
		StretchBound: b.StretchBound(),
		MemoryBytes:  b.MemoryBytes(),
		Counters: map[string]int64{
			"path_exact": b.pathExact.Load(),
		},
	}
}

// attachMetrics implements Backend.
func (b *exactBackend) attachMetrics(reg *obs.Registry) {
	reg.CounterFuncLabeled(metricPathExact, "Resolutions served from the precomputed all-pairs table.",
		"backend", b.Name(), b.pathExact.Load)
}
