package oracle

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

func TestLandmarkTableEmptyAndOneVertexGraphs(t *testing.T) {
	// Vertex-free graph: no landmarks, Bytes must still serialize.
	empty := graph.NewBuilder(0).BuildDedup()
	et := buildLandmarkTable(empty, 4, 7)
	if len(et.roots) != 0 {
		t.Fatalf("empty graph got %d landmarks, want 0", len(et.roots))
	}
	// Header only: zero roots, zero vertices.
	if b := et.Bytes(); len(b) != 8 {
		t.Fatalf("empty-graph Bytes has %d bytes, want 8 (header only)", len(b))
	}

	// One-vertex graph: the single vertex is the hub landmark.
	one := graph.NewBuilder(1).BuildDedup()
	ot := buildLandmarkTable(one, 4, 7)
	if len(ot.roots) != 1 || ot.roots[0] != 0 {
		t.Fatalf("one-vertex graph landmarks = %v, want [0]", ot.roots)
	}
	if d := ot.dist.At(0, 0); d != 0 {
		t.Fatalf("one-vertex self distance = %d, want 0", d)
	}
	// Header + one root + one distance cell.
	if b := ot.Bytes(); len(b) != 8+4+4 {
		t.Fatalf("one-vertex Bytes has %d bytes, want 16", len(b))
	}
	if ub := ot.upperBound(0, 0); ub != 0 {
		t.Fatalf("one-vertex upperBound(0,0) = %d, want 0", ub)
	}
}

func TestLandmarkUpperBoundWhenNoLandmarkReachesBoth(t *testing.T) {
	// Two components: a triangle {0,1,2} (high degree, holds the hub) and
	// an edge {3,4}. With k=1 the sole landmark sits in the triangle, so
	// it reaches neither endpoint of a pair inside {3,4}, and no landmark
	// reaches both endpoints of a cross-component pair.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	h := b.BuildDedup()
	lt := buildLandmarkTable(h, 1, 9)
	// Hub selection is highest degree with lowest id on ties: vertex 0.
	if len(lt.roots) != 1 || lt.roots[0] != 0 {
		t.Fatalf("landmarks = %v, want [0]", lt.roots)
	}
	if ub := lt.upperBound(3, 4); ub != graph.Unreachable {
		t.Fatalf("upperBound(3,4) = %d, want Unreachable (landmark reaches neither)", ub)
	}
	if ub := lt.upperBound(0, 3); ub != graph.Unreachable {
		t.Fatalf("upperBound(0,3) = %d, want Unreachable (landmark reaches one side)", ub)
	}
	if ub := lt.upperBound(1, 2); ub != 2 {
		t.Fatalf("upperBound(1,2) = %d, want 2 (through landmark 0)", ub)
	}
}

// The landmark table must not depend on which BFS kernel filled it: the
// scalar per-source kernel and the bit-parallel kernel are byte-identical
// through Bytes().
func TestLandmarkTableKernelByteIdentity(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 77)
	h := dc.Graph()
	lt := buildLandmarkTable(h, 9, 41)

	scalar := &landmarkTable{roots: lt.roots, dist: h.ParallelBFSFrom(lt.roots, 1)}
	bitp := &landmarkTable{roots: lt.roots, dist: h.BitParallelBFSFrom(lt.roots, 0)}
	if !bytes.Equal(scalar.Bytes(), bitp.Bytes()) {
		t.Fatal("scalar-built and bit-parallel-built landmark tables serialize differently")
	}
	if !bytes.Equal(lt.Bytes(), scalar.Bytes()) {
		t.Fatal("buildLandmarkTable output differs from the scalar kernel's table")
	}
}
