package oracle

import (
	"encoding/binary"

	"repro/internal/graph"
	"repro/internal/rng"
)

// landmarkTable holds k full BFS trees rooted at deterministically chosen
// landmarks of the spanner graph H. For any pair (u, v) the table answers
// an upper bound min_l d(u,l) + d(l,v) in O(k), which both serves fast
// approximate queries and prunes the exact bidirectional search.
type landmarkTable struct {
	roots []int32         // sorted landmark vertex ids
	dist  *graph.FlatDist // Row(i)[v] = d_H(roots[i], v); graph.Unreachable if disconnected
}

// buildLandmarkTable selects k landmarks on h and BFS-labels the graph
// from each. Selection is deterministic in (seed, h): the highest-degree
// vertex (lowest id on ties) is always a landmark — hub coverage matters
// most for the bound's quality — and the remaining k−1 are a uniform
// sample from the rest of the vertex set drawn from a seed-keyed stream.
// The k BFS runs execute through the multi-source kernel (bit-parallel on
// dense spanners, scalar per-source otherwise); both kernels produce
// identical tables at any worker count, so the table is deterministic in
// (seed, h) alone.
func buildLandmarkTable(h *graph.Graph, k int, seed uint64) *landmarkTable {
	n := h.N()
	if n == 0 {
		// Vertex-free graph: no landmarks, an empty 0×0 table. Only
		// reachable from tests — NewFromGraphs rejects n == 0 — but Bytes
		// and upperBound must not panic on it.
		return &landmarkTable{dist: graph.NewFlatDist(0, 0)}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	hub := int32(0)
	for v := int32(1); v < int32(n); v++ {
		if h.Degree(v) > h.Degree(hub) {
			hub = v
		}
	}
	roots := make([]int32, 0, k)
	roots = append(roots, hub)
	if k > 1 {
		r := rng.New(seed ^ 0x0a11c0de0a11c0de)
		for _, v := range r.Sample(n-1, k-1) {
			// Sample over [0, n−1) skipping the hub's slot.
			id := int32(v)
			if id >= hub {
				id++
			}
			roots = append(roots, id)
		}
	}
	sortInt32(roots)
	return &landmarkTable{roots: roots, dist: h.MultiSourceBFSFrom(roots, 0)}
}

// upperBound returns min over landmarks of d(u,l)+d(l,v), or
// graph.Unreachable if no landmark reaches both endpoints.
func (t *landmarkTable) upperBound(u, v int32) int32 {
	best := graph.Unreachable
	for i := 0; i < t.dist.Rows(); i++ {
		d := t.dist.Row(i)
		du, dv := d[u], d[v]
		if du == graph.Unreachable || dv == graph.Unreachable {
			continue
		}
		if s := du + dv; best == graph.Unreachable || s < best {
			best = s
		}
	}
	return best
}

// Bytes serializes the table (roots then row-major distances,
// little-endian int32) — the determinism contract checked in tests: two
// oracles built from the same seed and spanner must produce byte-identical
// tables.
func (t *landmarkTable) Bytes() []byte {
	n := 0
	if t.dist.Rows() > 0 {
		n = t.dist.N()
	}
	out := make([]byte, 0, 8+4*len(t.roots)+4*len(t.roots)*n)
	var buf [4]byte
	put := func(x int32) {
		binary.LittleEndian.PutUint32(buf[:], uint32(x))
		out = append(out, buf[:]...)
	}
	put(int32(len(t.roots)))
	put(int32(n))
	for _, r := range t.roots {
		put(r)
	}
	for i := 0; i < t.dist.Rows(); i++ {
		for _, d := range t.dist.Row(i) {
			put(d)
		}
	}
	return out
}

func sortInt32(xs []int32) {
	// Insertion sort: k is small (tens of landmarks).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
