// Package oracle is the serving layer over a built DC-spanner: a
// concurrent point-to-point query engine answering approximate distance
// and routing queries on the spanner graph H while accounting realized
// stretch against the base graph G.
//
// The engine layers three mechanisms, fastest first:
//
//  1. a sharded LRU result cache keyed by the (unordered) query pair;
//  2. a landmark table — k BFS trees on H rooted at deterministically
//     selected landmarks — answering an upper bound
//     min_l d(u,l) + d(l,v) in O(k);
//  3. a bounded bidirectional BFS on H for the exact-on-spanner distance,
//     pruned by the landmark bound.
//
// Because H is an (α, β)-DC-spanner, the exact-on-H distance is within
// the certified α of the true distance on G; the oracle verifies this
// empirically by re-answering a deterministic sample of queries with an
// exact BFS on G and tracking the realized stretch. All structures are
// safe for concurrent use and AnswerBatch fans queries out over a worker
// pool; answers are independent of scheduling (the cache stores only
// exact values, so a hit and a recomputation agree).
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Metric names the oracle registers (counters are exposed with the
// _total suffix on /metrics). One oracle per registry: a second oracle
// registering into the same registry panics on the duplicate names.
const (
	metricDistQueries   = "oracle_dist_queries"
	metricRouteQueries  = "oracle_route_queries"
	metricCacheHits     = "oracle_cache_hits"
	metricCacheMisses   = "oracle_cache_misses"
	metricPathCacheHit  = "oracle_path_cache_hit"
	metricPathLandmark  = "oracle_path_landmark"
	metricPathBiBFS     = "oracle_path_bibfs"
	metricPathBulk      = "oracle_path_bulk"
	metricFrontierMax   = "oracle_bibfs_frontier_max"
	metricDistLatency   = "oracle_dist_latency_seconds"
	metricRouteLatency  = "oracle_route_latency_seconds"
	metricStretchN      = "oracle_stretch_samples"
	metricRealizedAlpha = "oracle_realized_alpha"
	metricMeanStretch   = "oracle_mean_stretch"
	metricMaxCongestion = "oracle_max_route_congestion"
	metricLandmarks     = "oracle_landmarks"
)

// Options configures New.
type Options struct {
	// Landmarks is the number of BFS trees precomputed on H (clamped to
	// [1, n]); 0 means the default 16.
	Landmarks int
	// Seed keys landmark selection; 0 inherits the spanner's build seed
	// (so oracle determinism follows spanner determinism).
	Seed uint64
	// CacheSize is the total LRU capacity across shards; 0 means the
	// default 1<<16 entries, negative disables caching.
	CacheSize int
	// Shards is the shard count (rounded up to a power of two); 0 means
	// 4× the parallel worker count.
	Shards int
	// Workers bounds AnswerBatch's worker pool; 0 means GOMAXPROCS.
	Workers int
	// SampleEvery verifies every k-th Dist query against an exact BFS on
	// the base graph and records the realized stretch; 0 means the default
	// 64, negative disables sampling.
	SampleEvery int
	// MaxDist bounds the exact bidirectional search depth: queries whose
	// spanner distance exceeds it fall back to the landmark upper bound
	// (Answer.Exact reports false). Negative (the default 0 maps to -1)
	// means unbounded — every answer is exact on H.
	MaxDist int
	// Registry receives the oracle's serving metrics (query/path counters,
	// latency and frontier histograms, stretch gauges). Nil means a
	// private registry, still reachable via Oracle.Registry — passing the
	// process-wide registry is how dcserve unifies /metrics, the wire
	// stats response, and the demo summary.
	Registry *obs.Registry
	// Trace, when non-nil, receives precomputation phase spans (the
	// landmark-table build).
	Trace *obs.Span
}

// Query is one point-to-point distance request.
type Query struct {
	U, V int32
}

// Answer is the oracle's reply to a Query.
type Answer struct {
	U, V int32
	// Dist is the hop distance on the spanner H — exact when Exact is
	// true, the landmark upper bound otherwise; graph.Unreachable for
	// disconnected pairs and invalid queries.
	Dist int32
	// Bound is the O(k) landmark upper bound (graph.Unreachable when no
	// landmark reaches both endpoints).
	Bound int32
	// Exact reports whether Dist is the exact spanner distance.
	Exact bool
}

// Stats is a point-in-time snapshot of the oracle's serving metrics.
type Stats struct {
	Queries     int64 // Dist queries (Route lookups are counted in Routes only)
	Routes      int64
	CacheHits   int64
	CacheMisses int64
	HitRate     float64 // hits / (hits+misses); 0 when cache disabled or idle

	LatencyMean float64 // seconds, Dist queries
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64

	// Route latencies live in their own histogram so route service time
	// (distance resolution + path reconstruction) never skews the Dist
	// quantiles above.
	RouteLatencyMean float64
	RouteLatencyP50  float64
	RouteLatencyP95  float64
	RouteLatencyP99  float64

	// QPS is (Queries+Routes) per second of wall time since the serving
	// clock started — MarkServingStart resets it when traffic actually
	// begins; until then it runs from New.
	QPS float64

	// Realized-stretch accounting: dist_H / dist_G over the sampled
	// queries (the Chimani–Stutzenstein "realized stretch" viewpoint).
	StretchSamples int
	RealizedAlpha  float64 // max sampled ratio
	MeanStretch    float64 // mean sampled ratio
	CertifiedAlpha int     // 0 when the construction certifies no constant α

	// MaxCongestion is the highest per-node count of served Route paths
	// crossing a vertex (C(P, v) over the routes answered so far).
	MaxCongestion int64
	Landmarks     int
}

// Oracle answers distance and route queries over a DC-spanner.
type Oracle struct {
	g     *graph.Graph // base graph G (realized-stretch reference)
	h     *graph.Graph // spanner H (the serving graph)
	alpha int          // certified distance stretch; 0 = uncertified

	lm      *landmarkTable
	cache   *shardedCache
	workers int

	sampleEvery int64
	maxDist     int32

	latency      *stats.Histogram
	routeLatency *stats.Histogram
	queries      atomic.Int64
	routes       atomic.Int64
	congestion   []int64                   // per-node route-path counts, atomic adds
	start        atomic.Pointer[time.Time] // serving-clock origin, see MarkServingStart

	// Telemetry: the registry all serving metrics live in, the per-query
	// resolution-path counters (every resolve ends in exactly one of the
	// three; batch queries served by the bulk multi-source sweep land in
	// pathBulk instead and never touch the cache), and the exact-search
	// frontier-size histogram.
	reg          *obs.Registry
	pathCacheHit *obs.Counter
	pathLandmark *obs.Counter
	pathBiBFS    *obs.Counter
	pathBulk     *obs.Counter
	frontier     *stats.Histogram

	stretchMu  sync.Mutex
	stretchN   int
	stretchSum float64
	stretchMax float64

	searchPool sync.Pool // *biScratch
	routePool  sync.Pool // *routeScratch
}

type routeScratch struct {
	bfs    *graph.BFSScratch
	parent []int32
}

// New builds an oracle over a DC-spanner built by core.Build, inheriting
// its certified stretch and (by default) its seed.
func New(dc *core.DCSpanner, opts Options) (*Oracle, error) {
	if opts.Seed == 0 {
		opts.Seed = dc.Seed()
	}
	return NewFromGraphs(dc.Base(), dc.Graph(), dc.CertifiedAlpha(), opts)
}

// NewFromGraphs builds an oracle from an explicit base graph and spanner.
// alpha is the certified distance stretch (0 if uncertified). h must be a
// spanning subgraph of g.
func NewFromGraphs(g, h *graph.Graph, alpha int, opts Options) (*Oracle, error) {
	if g == nil || h == nil || g.N() == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if g.N() != h.N() {
		return nil, fmt.Errorf("oracle: spanner has %d vertices, base has %d", h.N(), g.N())
	}
	k := opts.Landmarks
	if k == 0 {
		k = 16
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = graph.Workers()
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 4 * workers
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 1 << 16
	}
	sampleEvery := int64(opts.SampleEvery)
	if sampleEvery == 0 {
		sampleEvery = 64
	}
	maxDist := int32(opts.MaxDist)
	if maxDist <= 0 {
		maxDist = -1
	}
	lsp := opts.Trace.Start("landmark-table")
	lm := buildLandmarkTable(h, k, opts.Seed)
	lsp.SetKV("landmarks", len(lm.roots))
	lsp.End()
	o := &Oracle{
		g:            g,
		h:            h,
		alpha:        alpha,
		lm:           lm,
		cache:        newShardedCache(cacheSize, shards),
		workers:      workers,
		sampleEvery:  sampleEvery,
		maxDist:      maxDist,
		latency:      stats.NewLatencyHistogram(),
		routeLatency: stats.NewLatencyHistogram(),
		congestion:   make([]int64, g.N()),
	}
	o.MarkServingStart()
	o.searchPool.New = func() any { return newBiScratch(h.N()) }
	o.routePool.New = func() any {
		return &routeScratch{bfs: graph.NewBFSScratch(h.N()), parent: make([]int32, h.N())}
	}
	o.registerMetrics(opts.Registry)
	return o, nil
}

// registerMetrics wires the oracle's serving metrics into reg (or a fresh
// private registry when nil). Stats snapshots and /metrics exposition
// both read through this registry, so every consumer sees the same
// numbers.
func (o *Oracle) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o.reg = reg
	reg.CounterFunc(metricDistQueries, "Dist queries answered.", o.queries.Load)
	reg.CounterFunc(metricRouteQueries, "Route queries answered.", o.routes.Load)
	hits := func() int64 { return 0 }
	misses := hits
	if o.cache != nil {
		hits = func() int64 { h, _ := o.cache.counters(); return h }
		misses = func() int64 { _, m := o.cache.counters(); return m }
	}
	reg.CounterFunc(metricCacheHits, "Result-cache hits.", hits)
	reg.CounterFunc(metricCacheMisses, "Result-cache misses.", misses)
	o.pathCacheHit = reg.Counter(metricPathCacheHit, "Resolutions served from the result cache.")
	o.pathLandmark = reg.Counter(metricPathLandmark, "Resolutions falling back to the landmark upper bound.")
	o.pathBiBFS = reg.Counter(metricPathBiBFS, "Resolutions answered exactly by bidirectional BFS.")
	o.pathBulk = reg.Counter(metricPathBulk, "Batch queries answered exactly by the bulk multi-source BFS sweep.")
	o.frontier = reg.Histogram(metricFrontierMax,
		"Largest single-side BFS frontier per exact search (vertices).",
		stats.ExpBuckets(1, 2, 22))
	reg.RegisterHistogram(metricDistLatency, "Dist query service time.", o.latency)
	reg.RegisterHistogram(metricRouteLatency, "Route query service time.", o.routeLatency)
	reg.GaugeFunc(metricStretchN, "Realized-stretch samples taken.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		return float64(o.stretchN)
	})
	reg.GaugeFunc(metricRealizedAlpha, "Maximum sampled dist_H/dist_G ratio.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		return o.stretchMax
	})
	reg.GaugeFunc(metricMeanStretch, "Mean sampled dist_H/dist_G ratio.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		if o.stretchN == 0 {
			return 0
		}
		return o.stretchSum / float64(o.stretchN)
	})
	reg.GaugeFunc(metricMaxCongestion, "Highest per-node count of served route paths.", func() float64 {
		var max int64
		for i := range o.congestion {
			if c := atomic.LoadInt64(&o.congestion[i]); c > max {
				max = c
			}
		}
		return float64(max)
	})
	reg.GaugeFunc(metricLandmarks, "Landmark BFS trees precomputed on H.", func() float64 {
		return float64(len(o.lm.roots))
	})
}

// Registry returns the registry holding the oracle's metrics — the one
// passed in Options or the private one created in its place.
func (o *Oracle) Registry() *obs.Registry { return o.reg }

// N returns the number of vertices the oracle serves — queries must have
// both endpoints in [0, N).
func (o *Oracle) N() int { return o.h.N() }

// MarkServingStart resets the serving clock that Stats.QPS is measured
// against. New arms it at construction time, which charges the idle gap
// between precomputation and the first query to the throughput figure;
// callers that serve traffic (dcserve's demo and server paths) call this
// once when serving actually begins. Safe for concurrent use with Stats.
func (o *Oracle) MarkServingStart() {
	now := time.Now()
	o.start.Store(&now)
}

// Landmarks returns the sorted landmark vertex ids.
func (o *Oracle) Landmarks() []int32 {
	return append([]int32(nil), o.lm.roots...)
}

// LandmarkBytes serializes the landmark table; two oracles over the same
// spanner and seed produce identical bytes (the determinism contract).
func (o *Oracle) LandmarkBytes() []byte { return o.lm.Bytes() }

// Dist answers a single distance query. Safe for concurrent use.
func (o *Oracle) Dist(u, v int32) (Answer, error) {
	return o.DistTrace(u, v, nil)
}

// DistTrace is Dist with an optional request trace: the resolution path
// taken lands in the trace's path mask and the resolution itself is
// recorded as an "oracle" hop. A nil trace costs nothing beyond the nil
// checks — Dist calls through with nil.
func (o *Oracle) DistTrace(u, v int32, tr *obs.ReqTrace) (Answer, error) {
	t0 := time.Now()
	a, path, err := o.answer(u, v)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	if tr != nil {
		tr.OrPath(path)
		tr.Hop("oracle", t0, "path="+obs.PathString(path))
	}
	return a, err
}

// answer is Dist without latency accounting (shared with AnswerBatch): it
// resolves the distance and charges the query to the Dist counters and the
// stretch sampler. The second return is the obs.Path* bit the resolution
// took (0 for self/invalid queries).
func (o *Oracle) answer(u, v int32) (Answer, uint8, error) {
	ans, path, err := o.resolve(u, v)
	if err != nil {
		return ans, path, err
	}
	seq := o.queries.Add(1)
	if ans.Exact && u != v {
		o.maybeSampleStretch(seq, u, v, ans.Dist)
	}
	return ans, path, nil
}

// resolve computes the distance answer with no serving accounting beyond
// the cache's own hit/miss counters — Route rides on it so route lookups
// do not inflate Stats.Queries or the Dist latency histogram. It reports
// which resolution path answered (an obs.Path* bit; 0 when no path ran).
func (o *Oracle) resolve(u, v int32) (Answer, uint8, error) {
	n := int32(o.h.N())
	if u < 0 || v < 0 || u >= n || v >= n {
		return Answer{U: u, V: v, Dist: graph.Unreachable, Bound: graph.Unreachable}, 0,
			fmt.Errorf("oracle: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	ans := Answer{U: u, V: v, Exact: true}
	if u == v {
		return ans, 0, nil
	}
	ans.Bound = o.lm.upperBound(u, v)
	key := packKey(u, v)
	if o.cache != nil {
		if d, ok := o.cache.get(key); ok {
			o.pathCacheHit.Inc()
			ans.Dist = d
			return ans, obs.PathCache, nil
		}
	}
	sc := o.searchPool.Get().(*biScratch)
	d, exact := sc.distance(o.h, u, v, o.maxDist, ans.Bound)
	o.frontier.Observe(float64(sc.maxFrontier))
	o.searchPool.Put(sc)
	if !exact {
		// Depth budget exhausted: serve the landmark bound, uncached.
		o.pathLandmark.Inc()
		ans.Dist = ans.Bound
		ans.Exact = false
		return ans, obs.PathLandmark, nil
	}
	o.pathBiBFS.Inc()
	ans.Dist = d
	if o.cache != nil {
		o.cache.put(key, d)
	}
	return ans, obs.PathBiBFS, nil
}

// maybeSampleStretch re-answers every sampleEvery-th query exactly on G
// and records the realized stretch dist_H / dist_G.
func (o *Oracle) maybeSampleStretch(seq int64, u, v, dh int32) {
	if o.sampleEvery <= 0 || seq%o.sampleEvery != 0 || dh == graph.Unreachable {
		return
	}
	dg := o.g.Dist(u, v)
	if dg <= 0 {
		return
	}
	ratio := float64(dh) / float64(dg)
	o.stretchMu.Lock()
	o.stretchN++
	o.stretchSum += ratio
	if ratio > o.stretchMax {
		o.stretchMax = ratio
	}
	o.stretchMu.Unlock()
}

// Route answers a routing query: one shortest path on H realizing the
// exact spanner distance, plus the distance answer. The path's nodes are
// added to the oracle's congestion accounting (C(P, v) over served
// routes). Returns a nil path for disconnected pairs.
//
// Routes are accounted separately from Dist queries: the distance lookup
// inside Route increments neither Stats.Queries nor the Dist latency
// histogram (so route traffic cannot double-count against a caller's own
// query totals); the full route service time lands in the route latency
// histogram instead.
func (o *Oracle) Route(u, v int32) (routing.Path, Answer, error) {
	t0 := time.Now()
	ans, _, err := o.resolve(u, v)
	if err != nil {
		return nil, ans, err
	}
	if ans.Dist == graph.Unreachable {
		o.finishRoute(t0)
		return nil, ans, nil
	}
	rs := o.routePool.Get().(*routeScratch)
	limit := ans.Dist
	if !ans.Exact {
		limit = ans.Bound
	}
	p := rs.bfs.PathWithin(o.h, u, v, limit, rs.parent)
	o.routePool.Put(rs)
	if p == nil {
		return nil, ans, fmt.Errorf("oracle: inconsistent state: dist=%d but no path within it", ans.Dist)
	}
	for _, x := range p {
		atomic.AddInt64(&o.congestion[x], 1)
	}
	o.finishRoute(t0)
	return routing.Path(p), ans, nil
}

// finishRoute records one served route against the route counters.
func (o *Oracle) finishRoute(t0 time.Time) {
	o.routes.Add(1)
	o.routeLatency.Observe(time.Since(t0).Seconds())
}

// Stats snapshots the serving metrics. The snapshot is taken through the
// metrics registry in one pass — every atomic is read exactly once and
// all derived figures (hit rate, QPS, quantiles) come from those same
// reads, so a snapshot under load is internally consistent. Because a
// cache lookup precedes its query's counter increment on the hot path, a
// racing read can still observe marginally more cache operations than
// finished queries; the hit counters are clamped to the query totals and
// HitRate to [0, 1] so no consumer sees an impossible figure.
func (o *Oracle) Stats() Stats {
	return o.StatsFrom(o.reg.Snapshot())
}

// StatsFrom derives the Stats view from an already-taken registry
// snapshot — the path by which a serving layer that also owns counters
// in the same registry (internal/server) renders its whole stats line
// from one capture instant.
func (o *Oracle) StatsFrom(snap obs.Snapshot) Stats {
	s := Stats{
		Queries:        snap.Counters[metricDistQueries],
		Routes:         snap.Counters[metricRouteQueries],
		CacheHits:      snap.Counters[metricCacheHits],
		CacheMisses:    snap.Counters[metricCacheMisses],
		CertifiedAlpha: o.alpha,
		Landmarks:      len(o.lm.roots),
		StretchSamples: int(snap.Gauges[metricStretchN]),
		RealizedAlpha:  snap.Gauges[metricRealizedAlpha],
		MeanStretch:    snap.Gauges[metricMeanStretch],
		MaxCongestion:  int64(snap.Gauges[metricMaxCongestion]),
	}
	if total := s.Queries + s.Routes; s.CacheHits > total {
		s.CacheHits = total
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.HitRate = float64(s.CacheHits) / float64(lookups)
		if s.HitRate > 1 {
			s.HitRate = 1
		}
	}
	lat := snap.Histograms[metricDistLatency]
	s.LatencyMean = lat.Mean()
	s.LatencyP50 = lat.Quantile(0.50)
	s.LatencyP95 = lat.Quantile(0.95)
	s.LatencyP99 = lat.Quantile(0.99)
	rl := snap.Histograms[metricRouteLatency]
	s.RouteLatencyMean = rl.Mean()
	s.RouteLatencyP50 = rl.Quantile(0.50)
	s.RouteLatencyP95 = rl.Quantile(0.95)
	s.RouteLatencyP99 = rl.Quantile(0.99)
	if el := time.Since(*o.start.Load()).Seconds(); el > 0 {
		s.QPS = float64(s.Queries+s.Routes) / el
	}
	return s
}

// String renders the snapshot as a single report line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"queries=%d routes=%d hitRate=%.3f p50=%.3gs p95=%.3gs p99=%.3gs routeP50=%.3gs routeP99=%.3gs qps=%.0f realizedAlpha=%.3f (certified %d, %d samples) maxCong=%d landmarks=%d",
		s.Queries, s.Routes, s.HitRate, s.LatencyP50, s.LatencyP95, s.LatencyP99,
		s.RouteLatencyP50, s.RouteLatencyP99,
		s.QPS, s.RealizedAlpha, s.CertifiedAlpha, s.StretchSamples, s.MaxCongestion, s.Landmarks)
}
