// Package oracle is the serving layer over a built DC-spanner: a
// concurrent point-to-point query engine answering approximate distance
// and routing queries on the spanner graph H while accounting realized
// stretch against the base graph G.
//
// The engine layers three mechanisms, fastest first:
//
//  1. a sharded LRU result cache keyed by the (unordered) query pair;
//  2. a landmark table — k BFS trees on H rooted at deterministically
//     selected landmarks — answering an upper bound
//     min_l d(u,l) + d(l,v) in O(k);
//  3. a bounded bidirectional BFS on H for the exact-on-spanner distance,
//     pruned by the landmark bound.
//
// Because H is an (α, β)-DC-spanner, the exact-on-H distance is within
// the certified α of the true distance on G; the oracle verifies this
// empirically by re-answering a deterministic sample of queries with an
// exact BFS on G and tracking the realized stretch. All structures are
// safe for concurrent use and AnswerBatch fans queries out over a worker
// pool; answers are independent of scheduling (the cache stores only
// exact values, so a hit and a recomputation agree).
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Options configures New.
type Options struct {
	// Landmarks is the number of BFS trees precomputed on H (clamped to
	// [1, n]); 0 means the default 16.
	Landmarks int
	// Seed keys landmark selection; 0 inherits the spanner's build seed
	// (so oracle determinism follows spanner determinism).
	Seed uint64
	// CacheSize is the total LRU capacity across shards; 0 means the
	// default 1<<16 entries, negative disables caching.
	CacheSize int
	// Shards is the shard count (rounded up to a power of two); 0 means
	// 4× the parallel worker count.
	Shards int
	// Workers bounds AnswerBatch's worker pool; 0 means GOMAXPROCS.
	Workers int
	// SampleEvery verifies every k-th Dist query against an exact BFS on
	// the base graph and records the realized stretch; 0 means the default
	// 64, negative disables sampling.
	SampleEvery int
	// MaxDist bounds the exact bidirectional search depth: queries whose
	// spanner distance exceeds it fall back to the landmark upper bound
	// (Answer.Exact reports false). Negative (the default 0 maps to -1)
	// means unbounded — every answer is exact on H.
	MaxDist int
}

// Query is one point-to-point distance request.
type Query struct {
	U, V int32
}

// Answer is the oracle's reply to a Query.
type Answer struct {
	U, V int32
	// Dist is the hop distance on the spanner H — exact when Exact is
	// true, the landmark upper bound otherwise; graph.Unreachable for
	// disconnected pairs and invalid queries.
	Dist int32
	// Bound is the O(k) landmark upper bound (graph.Unreachable when no
	// landmark reaches both endpoints).
	Bound int32
	// Exact reports whether Dist is the exact spanner distance.
	Exact bool
}

// Stats is a point-in-time snapshot of the oracle's serving metrics.
type Stats struct {
	Queries     int64 // Dist queries (Route lookups are counted in Routes only)
	Routes      int64
	CacheHits   int64
	CacheMisses int64
	HitRate     float64 // hits / (hits+misses); 0 when cache disabled or idle

	LatencyMean float64 // seconds, Dist queries
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64

	// Route latencies live in their own histogram so route service time
	// (distance resolution + path reconstruction) never skews the Dist
	// quantiles above.
	RouteLatencyMean float64
	RouteLatencyP50  float64
	RouteLatencyP95  float64
	RouteLatencyP99  float64

	// QPS is (Queries+Routes) per second of wall time since the serving
	// clock started — MarkServingStart resets it when traffic actually
	// begins; until then it runs from New.
	QPS float64

	// Realized-stretch accounting: dist_H / dist_G over the sampled
	// queries (the Chimani–Stutzenstein "realized stretch" viewpoint).
	StretchSamples int
	RealizedAlpha  float64 // max sampled ratio
	MeanStretch    float64 // mean sampled ratio
	CertifiedAlpha int     // 0 when the construction certifies no constant α

	// MaxCongestion is the highest per-node count of served Route paths
	// crossing a vertex (C(P, v) over the routes answered so far).
	MaxCongestion int64
	Landmarks     int
}

// Oracle answers distance and route queries over a DC-spanner.
type Oracle struct {
	g     *graph.Graph // base graph G (realized-stretch reference)
	h     *graph.Graph // spanner H (the serving graph)
	alpha int          // certified distance stretch; 0 = uncertified

	lm      *landmarkTable
	cache   *shardedCache
	workers int

	sampleEvery int64
	maxDist     int32

	latency      *stats.Histogram
	routeLatency *stats.Histogram
	queries      atomic.Int64
	routes       atomic.Int64
	congestion   []int64                   // per-node route-path counts, atomic adds
	start        atomic.Pointer[time.Time] // serving-clock origin, see MarkServingStart

	stretchMu  sync.Mutex
	stretchN   int
	stretchSum float64
	stretchMax float64

	searchPool sync.Pool // *biScratch
	routePool  sync.Pool // *routeScratch
}

type routeScratch struct {
	bfs    *graph.BFSScratch
	parent []int32
}

// New builds an oracle over a DC-spanner built by core.Build, inheriting
// its certified stretch and (by default) its seed.
func New(dc *core.DCSpanner, opts Options) (*Oracle, error) {
	if opts.Seed == 0 {
		opts.Seed = dc.Seed()
	}
	return NewFromGraphs(dc.Base(), dc.Graph(), dc.CertifiedAlpha(), opts)
}

// NewFromGraphs builds an oracle from an explicit base graph and spanner.
// alpha is the certified distance stretch (0 if uncertified). h must be a
// spanning subgraph of g.
func NewFromGraphs(g, h *graph.Graph, alpha int, opts Options) (*Oracle, error) {
	if g == nil || h == nil || g.N() == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if g.N() != h.N() {
		return nil, fmt.Errorf("oracle: spanner has %d vertices, base has %d", h.N(), g.N())
	}
	k := opts.Landmarks
	if k == 0 {
		k = 16
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = graph.Workers()
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 4 * workers
	}
	cacheSize := opts.CacheSize
	if cacheSize == 0 {
		cacheSize = 1 << 16
	}
	sampleEvery := int64(opts.SampleEvery)
	if sampleEvery == 0 {
		sampleEvery = 64
	}
	maxDist := int32(opts.MaxDist)
	if maxDist <= 0 {
		maxDist = -1
	}
	o := &Oracle{
		g:            g,
		h:            h,
		alpha:        alpha,
		lm:           buildLandmarkTable(h, k, opts.Seed),
		cache:        newShardedCache(cacheSize, shards),
		workers:      workers,
		sampleEvery:  sampleEvery,
		maxDist:      maxDist,
		latency:      stats.NewLatencyHistogram(),
		routeLatency: stats.NewLatencyHistogram(),
		congestion:   make([]int64, g.N()),
	}
	o.MarkServingStart()
	o.searchPool.New = func() any { return newBiScratch(h.N()) }
	o.routePool.New = func() any {
		return &routeScratch{bfs: graph.NewBFSScratch(h.N()), parent: make([]int32, h.N())}
	}
	return o, nil
}

// N returns the number of vertices the oracle serves — queries must have
// both endpoints in [0, N).
func (o *Oracle) N() int { return o.h.N() }

// MarkServingStart resets the serving clock that Stats.QPS is measured
// against. New arms it at construction time, which charges the idle gap
// between precomputation and the first query to the throughput figure;
// callers that serve traffic (dcserve's demo and server paths) call this
// once when serving actually begins. Safe for concurrent use with Stats.
func (o *Oracle) MarkServingStart() {
	now := time.Now()
	o.start.Store(&now)
}

// Landmarks returns the sorted landmark vertex ids.
func (o *Oracle) Landmarks() []int32 {
	return append([]int32(nil), o.lm.roots...)
}

// LandmarkBytes serializes the landmark table; two oracles over the same
// spanner and seed produce identical bytes (the determinism contract).
func (o *Oracle) LandmarkBytes() []byte { return o.lm.Bytes() }

// Dist answers a single distance query. Safe for concurrent use.
func (o *Oracle) Dist(u, v int32) (Answer, error) {
	t0 := time.Now()
	a, err := o.answer(u, v)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	return a, err
}

// answer is Dist without latency accounting (shared with AnswerBatch): it
// resolves the distance and charges the query to the Dist counters and the
// stretch sampler.
func (o *Oracle) answer(u, v int32) (Answer, error) {
	ans, err := o.resolve(u, v)
	if err != nil {
		return ans, err
	}
	seq := o.queries.Add(1)
	if ans.Exact && u != v {
		o.maybeSampleStretch(seq, u, v, ans.Dist)
	}
	return ans, nil
}

// resolve computes the distance answer with no serving accounting beyond
// the cache's own hit/miss counters — Route rides on it so route lookups
// do not inflate Stats.Queries or the Dist latency histogram.
func (o *Oracle) resolve(u, v int32) (Answer, error) {
	n := int32(o.h.N())
	if u < 0 || v < 0 || u >= n || v >= n {
		return Answer{U: u, V: v, Dist: graph.Unreachable, Bound: graph.Unreachable},
			fmt.Errorf("oracle: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	ans := Answer{U: u, V: v, Exact: true}
	if u == v {
		return ans, nil
	}
	ans.Bound = o.lm.upperBound(u, v)
	key := packKey(u, v)
	if o.cache != nil {
		if d, ok := o.cache.get(key); ok {
			ans.Dist = d
			return ans, nil
		}
	}
	sc := o.searchPool.Get().(*biScratch)
	d, exact := sc.distance(o.h, u, v, o.maxDist, ans.Bound)
	o.searchPool.Put(sc)
	if !exact {
		// Depth budget exhausted: serve the landmark bound, uncached.
		ans.Dist = ans.Bound
		ans.Exact = false
		return ans, nil
	}
	ans.Dist = d
	if o.cache != nil {
		o.cache.put(key, d)
	}
	return ans, nil
}

// maybeSampleStretch re-answers every sampleEvery-th query exactly on G
// and records the realized stretch dist_H / dist_G.
func (o *Oracle) maybeSampleStretch(seq int64, u, v, dh int32) {
	if o.sampleEvery <= 0 || seq%o.sampleEvery != 0 || dh == graph.Unreachable {
		return
	}
	dg := o.g.Dist(u, v)
	if dg <= 0 {
		return
	}
	ratio := float64(dh) / float64(dg)
	o.stretchMu.Lock()
	o.stretchN++
	o.stretchSum += ratio
	if ratio > o.stretchMax {
		o.stretchMax = ratio
	}
	o.stretchMu.Unlock()
}

// Route answers a routing query: one shortest path on H realizing the
// exact spanner distance, plus the distance answer. The path's nodes are
// added to the oracle's congestion accounting (C(P, v) over served
// routes). Returns a nil path for disconnected pairs.
//
// Routes are accounted separately from Dist queries: the distance lookup
// inside Route increments neither Stats.Queries nor the Dist latency
// histogram (so route traffic cannot double-count against a caller's own
// query totals); the full route service time lands in the route latency
// histogram instead.
func (o *Oracle) Route(u, v int32) (routing.Path, Answer, error) {
	t0 := time.Now()
	ans, err := o.resolve(u, v)
	if err != nil {
		return nil, ans, err
	}
	if ans.Dist == graph.Unreachable {
		o.finishRoute(t0)
		return nil, ans, nil
	}
	rs := o.routePool.Get().(*routeScratch)
	limit := ans.Dist
	if !ans.Exact {
		limit = ans.Bound
	}
	p := rs.bfs.PathWithin(o.h, u, v, limit, rs.parent)
	o.routePool.Put(rs)
	if p == nil {
		return nil, ans, fmt.Errorf("oracle: inconsistent state: dist=%d but no path within it", ans.Dist)
	}
	for _, x := range p {
		atomic.AddInt64(&o.congestion[x], 1)
	}
	o.finishRoute(t0)
	return routing.Path(p), ans, nil
}

// finishRoute records one served route against the route counters.
func (o *Oracle) finishRoute(t0 time.Time) {
	o.routes.Add(1)
	o.routeLatency.Observe(time.Since(t0).Seconds())
}

// Stats snapshots the serving metrics.
func (o *Oracle) Stats() Stats {
	s := Stats{
		Queries:          o.queries.Load(),
		Routes:           o.routes.Load(),
		LatencyMean:      o.latency.Mean(),
		LatencyP50:       o.latency.Quantile(0.50),
		LatencyP95:       o.latency.Quantile(0.95),
		LatencyP99:       o.latency.Quantile(0.99),
		RouteLatencyMean: o.routeLatency.Mean(),
		RouteLatencyP50:  o.routeLatency.Quantile(0.50),
		RouteLatencyP95:  o.routeLatency.Quantile(0.95),
		RouteLatencyP99:  o.routeLatency.Quantile(0.99),
		CertifiedAlpha:   o.alpha,
		Landmarks:        len(o.lm.roots),
	}
	if o.cache != nil {
		s.CacheHits, s.CacheMisses = o.cache.counters()
		if t := s.CacheHits + s.CacheMisses; t > 0 {
			s.HitRate = float64(s.CacheHits) / float64(t)
		}
	}
	if el := time.Since(*o.start.Load()).Seconds(); el > 0 {
		s.QPS = float64(s.Queries+s.Routes) / el
	}
	o.stretchMu.Lock()
	s.StretchSamples = o.stretchN
	s.RealizedAlpha = o.stretchMax
	if o.stretchN > 0 {
		s.MeanStretch = o.stretchSum / float64(o.stretchN)
	}
	o.stretchMu.Unlock()
	for i := range o.congestion {
		if c := atomic.LoadInt64(&o.congestion[i]); c > s.MaxCongestion {
			s.MaxCongestion = c
		}
	}
	return s
}

// String renders the snapshot as a single report line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"queries=%d routes=%d hitRate=%.3f p50=%.3gs p95=%.3gs p99=%.3gs routeP50=%.3gs routeP99=%.3gs qps=%.0f realizedAlpha=%.3f (certified %d, %d samples) maxCong=%d landmarks=%d",
		s.Queries, s.Routes, s.HitRate, s.LatencyP50, s.LatencyP95, s.LatencyP99,
		s.RouteLatencyP50, s.RouteLatencyP99,
		s.QPS, s.RealizedAlpha, s.CertifiedAlpha, s.StretchSamples, s.MaxCongestion, s.Landmarks)
}
