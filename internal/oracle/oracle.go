// Package oracle is the serving layer over a built DC-spanner: a
// concurrent point-to-point query engine answering approximate distance
// and routing queries on the spanner graph H while accounting realized
// stretch against the base graph G.
//
// Distance resolution is pluggable behind the Backend interface; three
// engines ship (see Options.Backend and DESIGN.md §14):
//
//   - landmark-bibfs (the default): a sharded LRU result cache, a
//     k-landmark upper-bound table answering min_l d(u,l)+d(l,v) in
//     O(k), and a bounded bidirectional BFS for the exact-on-spanner
//     distance, pruned by the landmark bound;
//   - exact-cached: a precomputed all-pairs table for small graphs —
//     O(n²) space, O(1) queries, every answer exact;
//   - sparse-hub: the two-level hub/bunch design for sparse graphs —
//     O(n^{3/2}) space at the default √n hubs, stretch bound 3.
//
// Options.Backend "auto" benchmarks the candidates on a sampled query
// mix at startup and serves the fastest one within the memory budget.
//
// Because H is an (α, β)-DC-spanner, the exact-on-H distance is within
// the certified α of the true distance on G; the oracle verifies this
// empirically by re-answering a deterministic sample of queries with an
// exact BFS on G and tracking the realized stretch. All structures are
// safe for concurrent use and AnswerBatch fans queries out over a worker
// pool; answers are independent of scheduling (resolution is
// deterministic and the landmark backend's cache stores only exact
// values, so a hit and a recomputation agree).
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/stats"
)

// Metric names the oracle registers (counters are exposed with the
// _total suffix on /metrics). One oracle per registry: a second oracle
// registering into the same registry panics on the duplicate names.
// Backend-owned families (cache, resolution paths) carry a
// backend="<name>" label so mixed-backend fleets scraped together stay
// distinguishable; oracle-level families (queries, latency, stretch)
// are unlabeled.
const (
	metricDistQueries   = "oracle_dist_queries"
	metricRouteQueries  = "oracle_route_queries"
	metricCacheHits     = "oracle_cache_hits"
	metricCacheMisses   = "oracle_cache_misses"
	metricPathCacheHit  = "oracle_path_cache_hit"
	metricPathLandmark  = "oracle_path_landmark"
	metricPathBiBFS     = "oracle_path_bibfs"
	metricPathBulk      = "oracle_path_bulk"
	metricPathExact     = "oracle_path_exact"
	metricPathBunch     = "oracle_path_bunch"
	metricPathHub       = "oracle_path_hub"
	metricFrontierMax   = "oracle_bibfs_frontier_max"
	metricDistLatency   = "oracle_dist_latency_seconds"
	metricRouteLatency  = "oracle_route_latency_seconds"
	metricStretchN      = "oracle_stretch_samples"
	metricRealizedAlpha = "oracle_realized_alpha"
	metricMeanStretch   = "oracle_mean_stretch"
	metricMaxCongestion = "oracle_max_route_congestion"
	metricLandmarks     = "oracle_landmarks"
	metricSparseHubs    = "oracle_sparse_hubs"
	metricBunchEntries  = "oracle_sparse_bunch_entries"
	metricBackendInfo   = "oracle_backend_info"
	metricBackendBound  = "oracle_backend_stretch_bound"
	metricBackendMemory = "oracle_backend_memory_bytes"
)

// Options configures New. The zero value serves the landmark-bibfs
// backend with its historical defaults, so existing callers (and the
// committed bench baselines) are unaffected by the backend layer.
type Options struct {
	// Backend selects the distance-resolution engine: one of
	// BackendLandmarkBiBFS, BackendExactCached, BackendSparseHub, or
	// BackendAuto to benchmark them at startup and serve the fastest
	// within MemoryBudget. Empty means BackendLandmarkBiBFS.
	Backend string
	// Landmarks is the number of BFS trees precomputed on H by the
	// landmark-bibfs backend (clamped to [1, n]); 0 means the default 16.
	Landmarks int
	// SparseHubs is the sparse-hub backend's hub count — its space/query
	// knob: more hubs mean bigger rows but smaller bunches and tighter
	// bounds. 0 means ⌈√n⌉, the point balancing rows against bunches.
	SparseHubs int
	// Seed keys landmark/hub selection; 0 inherits the spanner's build
	// seed (so oracle determinism follows spanner determinism).
	Seed uint64
	// CacheSize is the landmark-bibfs backend's total LRU capacity across
	// shards; 0 means the default 1<<16 entries, negative disables
	// caching.
	CacheSize int
	// Shards is the cache shard count (rounded up to a power of two); 0
	// means 4× the parallel worker count.
	Shards int
	// Workers bounds AnswerBatch's worker pool; 0 means GOMAXPROCS.
	Workers int
	// SampleEvery verifies every k-th Dist query against an exact BFS on
	// the base graph and records the realized stretch; 0 means the default
	// 64, negative disables sampling.
	SampleEvery int
	// MaxDist bounds the landmark-bibfs backend's exact bidirectional
	// search depth: queries whose spanner distance exceeds it fall back
	// to the landmark upper bound (Answer.Exact reports false, and the
	// backend declares no stretch bound). Negative (the default 0 maps
	// to -1) means unbounded — every answer is exact on H.
	MaxDist int
	// MemoryBudget caps the precomputed state of auto-tuned backends in
	// bytes; candidates over it are skipped. 0 means the 128 MiB
	// default; negative disables the gate. Ignored when Backend names a
	// concrete engine — an explicit choice is always honored.
	MemoryBudget int64
	// TunerProbes is the number of sampled queries the auto-tuner times
	// each candidate on; 0 means the default 2048.
	TunerProbes int
	// Registry receives the oracle's serving metrics (query/path counters,
	// latency and frontier histograms, stretch gauges). Nil means a
	// private registry, still reachable via Oracle.Registry — passing the
	// process-wide registry is how dcserve unifies /metrics, the wire
	// stats response, and the demo summary.
	Registry *obs.Registry
	// Trace, when non-nil, receives precomputation phase spans (the
	// backend build, and the tuner sweep under Backend "auto").
	Trace *obs.Span
}

// Query is one point-to-point distance request.
type Query struct {
	U, V int32
}

// Answer is the oracle's reply to a Query.
type Answer struct {
	U, V int32
	// Dist is the hop distance on the spanner H — exact when Exact is
	// true, the serving backend's upper-bound estimate otherwise (the
	// landmark bound, or the sparse backend's hub bound, both within the
	// backend's declared stretch of the true spanner distance);
	// graph.Unreachable for disconnected pairs and invalid queries.
	Dist int32
	// Bound is the backend's admissible upper bound on the spanner
	// distance — the O(k) landmark bound for landmark-bibfs, the hub
	// bound for sparse-hub, Dist itself for exact-cached
	// (graph.Unreachable when nothing connects the endpoints).
	Bound int32
	// Exact reports whether Dist is the exact spanner distance.
	Exact bool
}

// Stats is a point-in-time snapshot of the oracle's serving metrics.
type Stats struct {
	Queries     int64 // Dist queries (Route lookups are counted in Routes only)
	Routes      int64
	CacheHits   int64   // landmark-bibfs result cache; 0 for cacheless backends
	CacheMisses int64   // ditto
	HitRate     float64 // hits / (hits+misses); 0 when cache disabled or idle

	LatencyMean float64 // seconds, Dist queries
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64

	// Route latencies live in their own histogram so route service time
	// (distance resolution + path reconstruction) never skews the Dist
	// quantiles above.
	RouteLatencyMean float64
	RouteLatencyP50  float64
	RouteLatencyP95  float64
	RouteLatencyP99  float64

	// QPS is (Queries+Routes) per second of wall time since the serving
	// clock started — MarkServingStart resets it when traffic actually
	// begins; until then it runs from New.
	QPS float64

	// Realized-stretch accounting: dist_H / dist_G over the sampled
	// queries (the Chimani–Stutzenstein "realized stretch" viewpoint).
	StretchSamples int
	RealizedAlpha  float64 // max sampled ratio
	MeanStretch    float64 // mean sampled ratio
	CertifiedAlpha int     // 0 when the construction certifies no constant α

	// MaxCongestion is the highest per-node count of served Route paths
	// crossing a vertex (C(P, v) over the routes answered so far).
	MaxCongestion int64
	Landmarks     int // landmark-bibfs BFS trees; 0 for other backends

	// Per-backend reporting: the serving backend's name, declared
	// contract, and own counters. Hit rates and resolution-path counts
	// are attributed to this backend alone — a fleet mixing backends
	// aggregates per-name, never blending counters across engines.
	Backend             string
	BackendStretchBound int
	BackendMemoryBytes  int64
	BackendCounters     map[string]int64
}

// Oracle answers distance and route queries over a DC-spanner through a
// pluggable resolution backend.
type Oracle struct {
	g     *graph.Graph // base graph G (realized-stretch reference)
	h     *graph.Graph // spanner H (the serving graph)
	alpha int          // certified distance stretch; 0 = uncertified

	backend Backend
	tuner   *TunerReport // non-nil only under Backend "auto"
	workers int

	sampleEvery int64

	latency      *stats.Histogram
	routeLatency *stats.Histogram
	queries      atomic.Int64
	routes       atomic.Int64
	congestion   []int64                   // per-node route-path counts, atomic adds
	start        atomic.Pointer[time.Time] // serving-clock origin, see MarkServingStart

	// reg is the registry all serving metrics live in; the per-query
	// resolution-path counters are backend-owned and labeled by backend
	// name (see Backend.attachMetrics).
	reg *obs.Registry

	stretchMu  sync.Mutex
	stretchN   int
	stretchSum float64
	stretchMax float64

	routePool sync.Pool // *routeScratch
}

type routeScratch struct {
	bfs    *graph.BFSScratch
	parent []int32
}

// New builds an oracle over a DC-spanner built by core.Build, inheriting
// its certified stretch and (by default) its seed.
func New(dc *core.DCSpanner, opts Options) (*Oracle, error) {
	if opts.Seed == 0 {
		opts.Seed = dc.Seed()
	}
	return NewFromGraphs(dc.Base(), dc.Graph(), dc.CertifiedAlpha(), opts)
}

// NewFromGraphs builds an oracle from an explicit base graph and spanner.
// alpha is the certified distance stretch (0 if uncertified). h must be a
// spanning subgraph of g.
func NewFromGraphs(g, h *graph.Graph, alpha int, opts Options) (*Oracle, error) {
	if g == nil || h == nil || g.N() == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if g.N() != h.N() {
		return nil, fmt.Errorf("oracle: spanner has %d vertices, base has %d", h.N(), g.N())
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = graph.Workers()
	}
	sampleEvery := int64(opts.SampleEvery)
	if sampleEvery == 0 {
		sampleEvery = 64
	}
	var (
		be    Backend
		tuner *TunerReport
		err   error
	)
	if opts.Backend == BackendAuto {
		be, tuner, err = autoTune(h, opts, workers, opts.Trace)
	} else {
		be, err = buildBackend(opts.Backend, h, opts, workers, opts.Trace)
	}
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		g:            g,
		h:            h,
		alpha:        alpha,
		backend:      be,
		tuner:        tuner,
		workers:      workers,
		sampleEvery:  sampleEvery,
		latency:      stats.NewLatencyHistogram(),
		routeLatency: stats.NewLatencyHistogram(),
		congestion:   make([]int64, g.N()),
	}
	o.MarkServingStart()
	o.routePool.New = func() any {
		return &routeScratch{bfs: graph.NewBFSScratch(h.N()), parent: make([]int32, h.N())}
	}
	o.registerMetrics(opts.Registry)
	return o, nil
}

// registerMetrics wires the oracle's serving metrics into reg (or a fresh
// private registry when nil). Stats snapshots and /metrics exposition
// both read through this registry, so every consumer sees the same
// numbers. The serving backend attaches its own labeled counters here;
// tuner candidates that lost are never attached.
func (o *Oracle) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o.reg = reg
	reg.CounterFunc(metricDistQueries, "Dist queries answered.", o.queries.Load)
	reg.CounterFunc(metricRouteQueries, "Route queries answered.", o.routes.Load)
	reg.GaugeFuncLabeled(metricBackendInfo,
		"Serving distance-resolution backend (info gauge: the labeled series is 1).",
		"backend", o.backend.Name(), func() float64 { return 1 })
	reg.GaugeFunc(metricBackendBound,
		"Declared worst-case stretch of the serving backend vs the exact spanner distance (0 = undeclared).",
		func() float64 { return float64(o.backend.StretchBound()) })
	reg.GaugeFunc(metricBackendMemory,
		"Estimated bytes of the serving backend's precomputed state.",
		func() float64 { return float64(o.backend.MemoryBytes()) })
	o.backend.attachMetrics(reg)
	reg.RegisterHistogram(metricDistLatency, "Dist query service time.", o.latency)
	reg.RegisterHistogram(metricRouteLatency, "Route query service time.", o.routeLatency)
	reg.GaugeFunc(metricStretchN, "Realized-stretch samples taken.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		return float64(o.stretchN)
	})
	reg.GaugeFunc(metricRealizedAlpha, "Maximum sampled dist_H/dist_G ratio.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		return o.stretchMax
	})
	reg.GaugeFunc(metricMeanStretch, "Mean sampled dist_H/dist_G ratio.", func() float64 {
		o.stretchMu.Lock()
		defer o.stretchMu.Unlock()
		if o.stretchN == 0 {
			return 0
		}
		return o.stretchSum / float64(o.stretchN)
	})
	reg.GaugeFunc(metricMaxCongestion, "Highest per-node count of served route paths.", func() float64 {
		var max int64
		for i := range o.congestion {
			if c := atomic.LoadInt64(&o.congestion[i]); c > max {
				max = c
			}
		}
		return float64(max)
	})
}

// Registry returns the registry holding the oracle's metrics — the one
// passed in Options or the private one created in its place.
func (o *Oracle) Registry() *obs.Registry { return o.reg }

// N returns the number of vertices the oracle serves — queries must have
// both endpoints in [0, N).
func (o *Oracle) N() int { return o.h.N() }

// Backend returns the name of the serving backend — the explicit
// Options.Backend choice, or the auto-tuner's pick.
func (o *Oracle) Backend() string { return o.backend.Name() }

// TunerReport returns the startup auto-tuning report, or nil when
// Options.Backend named a concrete backend.
func (o *Oracle) TunerReport() *TunerReport { return o.tuner }

// BackendStats snapshots the serving backend's own counters and
// declared contract (also embedded in Stats).
func (o *Oracle) BackendStats() BackendStats { return o.backend.Stats() }

// MarkServingStart resets the serving clock that Stats.QPS is measured
// against. New arms it at construction time, which charges the idle gap
// between precomputation and the first query to the throughput figure;
// callers that serve traffic (dcserve's demo and server paths) call this
// once when serving actually begins. Safe for concurrent use with Stats.
func (o *Oracle) MarkServingStart() {
	now := time.Now()
	o.start.Store(&now)
}

// Landmarks returns the sorted landmark vertex ids of the landmark-bibfs
// backend, or nil when another backend serves.
func (o *Oracle) Landmarks() []int32 {
	if lb, ok := o.backend.(*landmarkBackend); ok {
		return append([]int32(nil), lb.lm.roots...)
	}
	return nil
}

// LandmarkBytes serializes the landmark-bibfs backend's landmark table —
// two oracles over the same spanner and seed produce identical bytes
// (the determinism contract) — or nil when another backend serves.
func (o *Oracle) LandmarkBytes() []byte {
	if lb, ok := o.backend.(*landmarkBackend); ok {
		return lb.lm.Bytes()
	}
	return nil
}

// applyUpdate swings the oracle onto the refreshed base graph and
// spanner and has the backend repair its precomputed state in place
// (Backend.refresh). The vertex set never changes, so every n-sized
// structure — the congestion array, the route and search scratch pools,
// the metric closures — carries over untouched. NOT safe against
// concurrent queries: the caller must hold an exclusive lock over the
// oracle (oracle.Dynamic holds its update lock here).
func (o *Oracle) applyUpdate(g, h *graph.Graph, up GraphUpdate) {
	o.g = g
	o.h = h
	o.backend.refresh(h, up)
}

// Dist answers a single distance query. Safe for concurrent use. The
// answer's exactness and bound semantics are the serving backend's (see
// Answer and the Backend* constants).
func (o *Oracle) Dist(u, v int32) (Answer, error) {
	return o.DistTrace(u, v, nil)
}

// DistTrace is Dist with an optional request trace: the resolution path
// taken lands in the trace's path mask and the resolution itself is
// recorded as an "oracle" hop. A nil trace costs nothing beyond the nil
// checks — Dist calls through with nil.
func (o *Oracle) DistTrace(u, v int32, tr *obs.ReqTrace) (Answer, error) {
	t0 := time.Now()
	a, path, err := o.answer(u, v)
	if err == nil {
		o.latency.Observe(time.Since(t0).Seconds())
	}
	if tr != nil {
		tr.OrPath(path)
		tr.Hop("oracle", t0, "path="+obs.PathString(path))
	}
	return a, err
}

// answer is Dist without latency accounting (shared with AnswerBatch): it
// resolves the distance and charges the query to the Dist counters and the
// stretch sampler. The second return is the obs.Path* bit the resolution
// took (0 for self/invalid queries).
func (o *Oracle) answer(u, v int32) (Answer, uint8, error) {
	ans, path, err := o.resolve(u, v)
	if err != nil {
		return ans, path, err
	}
	seq := o.queries.Add(1)
	if ans.Exact && u != v {
		o.maybeSampleStretch(seq, u, v, ans.Dist)
	}
	return ans, path, nil
}

// resolve computes the distance answer with no serving accounting — Route
// rides on it so route lookups do not inflate Stats.Queries or the Dist
// latency histogram. Validation and self-queries are handled here; valid
// u ≠ v pairs delegate to the serving backend, which reports the
// obs.Path* bit its resolution took (0 when no path ran).
func (o *Oracle) resolve(u, v int32) (Answer, uint8, error) {
	n := int32(o.h.N())
	if u < 0 || v < 0 || u >= n || v >= n {
		return Answer{U: u, V: v, Dist: graph.Unreachable, Bound: graph.Unreachable}, 0,
			fmt.Errorf("oracle: query (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return Answer{U: u, V: v, Exact: true}, 0, nil
	}
	a, path := o.backend.Dist(u, v)
	return a, path, nil
}

// maybeSampleStretch re-answers every sampleEvery-th query exactly on G
// and records the realized stretch dist_H / dist_G.
func (o *Oracle) maybeSampleStretch(seq int64, u, v, dh int32) {
	if o.sampleEvery <= 0 || seq%o.sampleEvery != 0 || dh == graph.Unreachable {
		return
	}
	dg := o.g.Dist(u, v)
	if dg <= 0 {
		return
	}
	ratio := float64(dh) / float64(dg)
	o.stretchMu.Lock()
	o.stretchN++
	o.stretchSum += ratio
	if ratio > o.stretchMax {
		o.stretchMax = ratio
	}
	o.stretchMu.Unlock()
}

// Route answers a routing query: one shortest path on H realizing the
// exact spanner distance (or, for an inexact answer, a path within the
// backend's bound), plus the distance answer. The path's nodes are
// added to the oracle's congestion accounting (C(P, v) over served
// routes). Returns a nil path for disconnected pairs.
//
// Routes are accounted separately from Dist queries: the distance lookup
// inside Route increments neither Stats.Queries nor the Dist latency
// histogram (so route traffic cannot double-count against a caller's own
// query totals); the full route service time lands in the route latency
// histogram instead.
func (o *Oracle) Route(u, v int32) (routing.Path, Answer, error) {
	t0 := time.Now()
	ans, _, err := o.resolve(u, v)
	if err != nil {
		return nil, ans, err
	}
	if ans.Dist == graph.Unreachable {
		o.finishRoute(t0)
		return nil, ans, nil
	}
	rs := o.routePool.Get().(*routeScratch)
	limit := ans.Dist
	if !ans.Exact {
		limit = ans.Bound
	}
	p := rs.bfs.PathWithin(o.h, u, v, limit, rs.parent)
	o.routePool.Put(rs)
	if p == nil {
		return nil, ans, fmt.Errorf("oracle: inconsistent state: dist=%d but no path within it", ans.Dist)
	}
	for _, x := range p {
		atomic.AddInt64(&o.congestion[x], 1)
	}
	o.finishRoute(t0)
	return routing.Path(p), ans, nil
}

// finishRoute records one served route against the route counters.
func (o *Oracle) finishRoute(t0 time.Time) {
	o.routes.Add(1)
	o.routeLatency.Observe(time.Since(t0).Seconds())
}

// Stats snapshots the serving metrics. The snapshot is taken through the
// metrics registry in one pass — every atomic is read exactly once and
// all derived figures (hit rate, QPS, quantiles) come from those same
// reads, so a snapshot under load is internally consistent. Because a
// cache lookup precedes its query's counter increment on the hot path, a
// racing read can still observe marginally more cache operations than
// finished queries; the hit counters are clamped to the query totals and
// HitRate to [0, 1] so no consumer sees an impossible figure.
func (o *Oracle) Stats() Stats {
	return o.StatsFrom(o.reg.Snapshot())
}

// StatsFrom derives the Stats view from an already-taken registry
// snapshot — the path by which a serving layer that also owns counters
// in the same registry (internal/server) renders its whole stats line
// from one capture instant. Backend-owned series live in the snapshot
// under backend-labeled keys; the cache figures here are therefore the
// serving backend's own, never another engine's.
func (o *Oracle) StatsFrom(snap obs.Snapshot) Stats {
	name := o.backend.Name()
	s := Stats{
		Queries:             snap.Counters[metricDistQueries],
		Routes:              snap.Counters[metricRouteQueries],
		CacheHits:           snap.Counters[backendKey(metricCacheHits, name)],
		CacheMisses:         snap.Counters[backendKey(metricCacheMisses, name)],
		CertifiedAlpha:      o.alpha,
		Landmarks:           len(o.Landmarks()),
		StretchSamples:      int(snap.Gauges[metricStretchN]),
		RealizedAlpha:       snap.Gauges[metricRealizedAlpha],
		MeanStretch:         snap.Gauges[metricMeanStretch],
		MaxCongestion:       int64(snap.Gauges[metricMaxCongestion]),
		Backend:             name,
		BackendStretchBound: o.backend.StretchBound(),
		BackendMemoryBytes:  o.backend.MemoryBytes(),
		BackendCounters:     o.backend.Stats().Counters,
	}
	if total := s.Queries + s.Routes; s.CacheHits > total {
		s.CacheHits = total
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.HitRate = float64(s.CacheHits) / float64(lookups)
		if s.HitRate > 1 {
			s.HitRate = 1
		}
	}
	lat := snap.Histograms[metricDistLatency]
	s.LatencyMean = lat.Mean()
	s.LatencyP50 = lat.Quantile(0.50)
	s.LatencyP95 = lat.Quantile(0.95)
	s.LatencyP99 = lat.Quantile(0.99)
	rl := snap.Histograms[metricRouteLatency]
	s.RouteLatencyMean = rl.Mean()
	s.RouteLatencyP50 = rl.Quantile(0.50)
	s.RouteLatencyP95 = rl.Quantile(0.95)
	s.RouteLatencyP99 = rl.Quantile(0.99)
	if el := time.Since(*o.start.Load()).Seconds(); el > 0 {
		s.QPS = float64(s.Queries+s.Routes) / el
	}
	return s
}

// String renders the snapshot as a single report line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"backend=%s queries=%d routes=%d hitRate=%.3f p50=%.3gs p95=%.3gs p99=%.3gs routeP50=%.3gs routeP99=%.3gs qps=%.0f realizedAlpha=%.3f (certified %d, %d samples) maxCong=%d landmarks=%d",
		s.Backend, s.Queries, s.Routes, s.HitRate, s.LatencyP50, s.LatencyP95, s.LatencyP99,
		s.RouteLatencyP50, s.RouteLatencyP99,
		s.QPS, s.RealizedAlpha, s.CertifiedAlpha, s.StretchSamples, s.MaxCongestion, s.Landmarks)
}
