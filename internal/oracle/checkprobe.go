package oracle

// CacheProbe exposes the oracle's sharded LRU result cache to the
// differential correctness harness (internal/check), which replays
// recorded op traces against a deliberately naive single-lock model LRU
// and asserts identical hit/miss/value behavior. It exists only as a test
// seam: serving code goes through Oracle, never through a probe.
type CacheProbe struct {
	c *shardedCache
}

// NewCacheProbe builds a sharded cache exactly as NewFromGraphs would for
// the given capacity and shard count. A capacity <= 0 yields a disabled
// cache (every Get misses, Put is a no-op), mirroring Options.CacheSize.
func NewCacheProbe(capacity, shards int) *CacheProbe {
	return &CacheProbe{c: newShardedCache(capacity, shards)}
}

// Get looks up the (unordered) pair {u, v}, promoting the entry on a hit.
func (p *CacheProbe) Get(u, v int32) (int32, bool) {
	if p.c == nil {
		return 0, false
	}
	return p.c.get(packKey(u, v))
}

// Put inserts or refreshes the entry for the (unordered) pair {u, v}.
func (p *CacheProbe) Put(u, v, d int32) {
	if p.c != nil {
		p.c.put(packKey(u, v), d)
	}
}

// Slots returns the realized total entry capacity across shards; the
// cache's contract is that it equals the requested capacity exactly.
func (p *CacheProbe) Slots() int {
	if p.c == nil {
		return 0
	}
	return p.c.slots()
}

// Shards returns the realized shard count (a power of two, never more
// than Slots).
func (p *CacheProbe) Shards() int {
	if p.c == nil {
		return 0
	}
	return len(p.c.shards)
}

// Counters returns the cache's (hits, misses) counters.
func (p *CacheProbe) Counters() (hits, misses int64) {
	if p.c == nil {
		return 0, 0
	}
	return p.c.counters()
}
