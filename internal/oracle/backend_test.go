package oracle

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Every backend must agree with the exact spanner distance within its
// declared stretch bound, and an Exact answer must be the exact distance.
// The landmark backend (unbounded) and the exact table both declare 1, so
// they must match outright; the sparse backend declares 3.
func TestBackendsRespectDeclaredStretch(t *testing.T) {
	dc := buildTestSpanner(t, 160, 36, 21)
	h := dc.Graph()
	ref, err := New(dc, Options{Backend: BackendExactCached, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	qs := make([]Query, 500)
	for i := range qs {
		qs[i] = Query{U: int32(r.Intn(h.N())), V: int32(r.Intn(h.N()))}
	}
	for _, name := range BackendNames() {
		o, err := New(dc, Options{Backend: name, CacheSize: -1, SampleEvery: -1, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.Backend() != name {
			t.Fatalf("Backend() = %q, want %q", o.Backend(), name)
		}
		bound := o.BackendStats().StretchBound
		for _, q := range qs {
			exact, err := ref.Dist(q.U, q.V)
			if err != nil {
				t.Fatal(err)
			}
			a, err := o.Dist(q.U, q.V)
			if err != nil {
				t.Fatalf("%s: Dist(%d,%d): %v", name, q.U, q.V, err)
			}
			switch {
			case exact.Dist == graph.Unreachable:
				if a.Dist != graph.Unreachable {
					t.Fatalf("%s: (%d,%d) finite %d on a disconnected pair", name, q.U, q.V, a.Dist)
				}
			case a.Exact && a.Dist != exact.Dist:
				t.Fatalf("%s: (%d,%d) claims exact %d, exact is %d", name, q.U, q.V, a.Dist, exact.Dist)
			case a.Dist < exact.Dist:
				t.Fatalf("%s: (%d,%d) answered %d below exact %d", name, q.U, q.V, a.Dist, exact.Dist)
			case bound > 0 && int64(a.Dist) > int64(bound)*int64(exact.Dist):
				t.Fatalf("%s: (%d,%d) answered %d, over declared %d× of exact %d",
					name, q.U, q.V, a.Dist, bound, exact.Dist)
			}
			if a.Bound != graph.Unreachable && a.Bound < exact.Dist {
				t.Fatalf("%s: (%d,%d) Bound %d below exact %d", name, q.U, q.V, a.Bound, exact.Dist)
			}
		}
	}
}

// AnswerBatch must equal sequential Dist answers for every backend at
// every worker count, including the backends' bulk arms.
func TestBackendBatchMatchesSequential(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 22)
	n := dc.Graph().N()
	r := rng.New(23)
	qs := make([]Query, 400)
	for i := range qs {
		qs[i] = Query{U: int32(r.Intn(24)), V: int32(r.Intn(n))}
	}
	qs = append(qs, Query{U: 5, V: 5}, Query{U: -2, V: 1}, Query{U: 1, V: int32(n)})
	for _, name := range BackendNames() {
		want := make([]Answer, len(qs))
		seqO, err := New(dc, Options{Backend: name, CacheSize: -1, SampleEvery: -1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			a, _, err := seqO.answer(q.U, q.V)
			if err != nil {
				a = Answer{U: q.U, V: q.V, Dist: graph.Unreachable, Bound: graph.Unreachable}
			}
			want[i] = a
		}
		for _, workers := range []int{1, 2, 8} {
			o, err := New(dc, Options{Backend: name, CacheSize: -1, SampleEvery: -1, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			out := o.AnswerBatch(qs)
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("%s workers=%d: answer %d = %+v, sequential says %+v",
						name, workers, i, out[i], want[i])
				}
			}
		}
	}
}

// The auto-tuner must pick a real backend, report every candidate, and
// serve answers identical to the chosen backend built directly.
func TestAutoTunerPicksAndReports(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 24)
	o, err := New(dc, Options{Backend: BackendAuto, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep := o.TunerReport()
	if rep == nil {
		t.Fatal("auto backend produced no tuner report")
	}
	if rep.Chosen != o.Backend() {
		t.Fatalf("report chose %q but oracle serves %q", rep.Chosen, o.Backend())
	}
	if len(rep.Candidates) != len(BackendNames()) {
		t.Fatalf("report has %d candidates, want %d", len(rep.Candidates), len(BackendNames()))
	}
	if rep.String() == "" {
		t.Fatal("empty tuner report rendering")
	}
	direct, err := New(dc, Options{Backend: rep.Chosen, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{{0, 1}, {5, 100}, {64, 3}} {
		a, err := o.Dist(q.U, q.V)
		if err != nil {
			t.Fatal(err)
		}
		b, err := direct.Dist(q.U, q.V)
		if err != nil {
			t.Fatal(err)
		}
		if a.Dist != b.Dist || a.Exact != b.Exact {
			t.Fatalf("auto answer %+v != direct %s answer %+v", a, rep.Chosen, b)
		}
	}
	// A budget below every estimate still serves: the landmark backend is
	// never skipped, so auto-tuning cannot fail on memory alone.
	tiny, err := New(dc, Options{Backend: BackendAuto, MemoryBudget: 1, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Backend() != BackendLandmarkBiBFS {
		t.Fatalf("1-byte budget picked %q, want the never-skipped landmark backend", tiny.Backend())
	}
	for _, c := range tiny.TunerReport().Candidates {
		if c.Name != BackendLandmarkBiBFS && c.Skipped == "" {
			t.Fatalf("candidate %s not skipped under a 1-byte budget", c.Name)
		}
	}
}

// An unknown backend name is a construction error, not a silent default.
func TestUnknownBackendRejected(t *testing.T) {
	dc := buildTestSpanner(t, 64, 32, 25)
	if _, err := New(dc, Options{Backend: "btree"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// The backend info gauge and the backend-labeled counters reach the
// exposition, keyed by backend name.
func TestBackendMetricsLabeled(t *testing.T) {
	dc := buildTestSpanner(t, 96, 32, 26)
	for name, series := range map[string]string{
		BackendExactCached: `oracle_path_exact_total{backend="exact-cached"}`,
		BackendSparseHub:   `oracle_path_hub_total{backend="sparse-hub"}`,
	} {
		reg := obs.NewRegistry()
		o, err := New(dc, Options{Backend: name, Registry: reg, SampleEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := o.Dist(0, 1); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		info := `oracle_backend_info{backend="` + name + `"}`
		for _, want := range []string{info, series, "oracle_backend_stretch_bound", "oracle_backend_memory_bytes"} {
			if !strings.Contains(b.String(), want) {
				t.Errorf("%s exposition missing %q", name, want)
			}
		}
	}
}

// Landmark-only accessors degrade gracefully on other backends.
func TestLandmarkAccessorsOnOtherBackends(t *testing.T) {
	dc := buildTestSpanner(t, 96, 32, 27)
	o, err := New(dc, Options{Backend: BackendExactCached, SampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Landmarks() != nil || o.LandmarkBytes() != nil {
		t.Error("exact backend reported landmark state")
	}
	if s := o.Stats(); s.Landmarks != 0 || s.Backend != BackendExactCached {
		t.Errorf("Stats backend fields wrong: %+v", s)
	}
}
