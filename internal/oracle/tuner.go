package oracle

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TunerChoice is one candidate backend's startup benchmark: how long it
// took to build, how fast it answered the probe mix, how much memory it
// holds, and — when it was not benchmarked at all — why it was skipped.
type TunerChoice struct {
	// Name is the candidate backend.
	Name string
	// BuildNs is the wall time of the backend's precomputation.
	BuildNs int64
	// QueryNs is the mean serial latency over the answered probe
	// queries (zero when Answered is zero).
	QueryNs float64
	// Answered counts the probes actually resolved through Backend.Dist.
	// Probe pairs are drawn with u ≠ v whenever the graph has two
	// vertices, so this normally equals the probe count; on a 1-vertex
	// graph it is zero and QueryNs carries no timing signal.
	Answered int
	// MemoryBytes is the realized size of the built backend (the
	// pre-build estimate when Skipped is non-empty).
	MemoryBytes int64
	// StretchBound is the candidate's declared stretch bound.
	StretchBound int
	// Skipped, when non-empty, is the reason the candidate was excluded
	// (memory estimate or realized size over budget).
	Skipped string
}

// TunerReport records an auto-tuning run: every candidate's figures and
// the winner actually serving.
type TunerReport struct {
	// Chosen is the backend the oracle serves.
	Chosen string
	// Candidates lists every backend considered, in BackendNames order.
	Candidates []TunerChoice
}

// String renders the report as one line per candidate plus the verdict.
func (r *TunerReport) String() string {
	var b strings.Builder
	for _, c := range r.Candidates {
		if c.Skipped != "" {
			fmt.Fprintf(&b, "  %-14s skipped: %s (est %s)\n", c.Name, c.Skipped, fmtBytes(c.MemoryBytes))
			continue
		}
		marker := " "
		if c.Name == r.Chosen {
			marker = "*"
		}
		fmt.Fprintf(&b, " %s%-14s build=%-10v query=%-8s mem=%-8s stretch≤%d probes=%d\n",
			marker, c.Name, time.Duration(c.BuildNs).Round(time.Microsecond),
			fmt.Sprintf("%.0fns", c.QueryNs), fmtBytes(c.MemoryBytes), c.StretchBound, c.Answered)
	}
	return b.String()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// defaultMemoryBudget caps auto-tuned backend state when Options leaves
// MemoryBudget zero: 128 MiB holds the exact table to n ≈ 8000 and the
// sparse structures far beyond, while staying harmless on serving hosts.
const defaultMemoryBudget = int64(128) << 20

// defaultTunerProbes is the probe-mix size when Options leaves
// TunerProbes zero.
const defaultTunerProbes = 2048

// tunerQueryTolerance is the fractional band around the fastest
// candidate's mean probe latency within which candidates count as tied
// (see autoTune's decision rule). 5% sits above run-to-run timing noise
// on the probe mix but below any real architectural speed gap.
const tunerQueryTolerance = 0.05

// autoTune builds every candidate backend whose memory estimate fits
// the budget, times a deterministic probe mix against each, and returns
// the winner plus the full report. The decision rule: among candidates
// within budget, find the minimum mean probe latency, treat every
// candidate within tunerQueryTolerance (5%) of it as tied — float means
// are virtually never exactly equal, so an equality tie-break would let
// sub-nanosecond timing noise decide — and among the tied prefer the
// smallest positive declared stretch bound (an undeclared bound loses to
// any declared one), then BackendNames order. The sampling policy:
// TunerProbes uniform random ordered pairs with u ≠ v (self-pairs are
// redrawn — the Oracle short-circuits them before the backend, so timing
// them would bias the mean low; on a 1-vertex graph no valid pair
// exists, every candidate answers zero probes, and the stretch
// preference alone decides) drawn from a seed-keyed stream (so two boots
// of the same graph and seed probe the same mix), answered serially
// through Backend.Dist — the figure is per-query resolution cost,
// deliberately excluding batch-arm and cache effects that depend on
// traffic shape.
//
// The winner is served as built: its probe answers stay in its counters
// (and, for the landmark backend, its result cache), which reads as a
// small warm-up rather than a distortion.
func autoTune(h *graph.Graph, opts Options, workers int, trace *obs.Span) (Backend, *TunerReport, error) {
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = defaultMemoryBudget
	}
	probes := opts.TunerProbes
	if probes == 0 {
		probes = defaultTunerProbes
	}
	n := h.N()
	qs := make([]Query, probes)
	r := rng.New(opts.Seed ^ 0x70be_d15c_a11e_d0)
	for i := range qs {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		for n > 1 && u == v {
			v = int32(r.Intn(n))
		}
		qs[i] = Query{U: u, V: v}
	}

	sp := trace.Start("backend-tuner")
	defer sp.End()
	rep := &TunerReport{}
	var built []Backend
	var builtChoices []TunerChoice
	for _, name := range BackendNames() {
		est := tunerEstimate(name, n, opts)
		if budget > 0 && est > budget && name != BackendLandmarkBiBFS {
			rep.Candidates = append(rep.Candidates, TunerChoice{
				Name: name, MemoryBytes: est, Skipped: "estimate over memory budget",
			})
			continue
		}
		t0 := time.Now()
		b, err := buildBackend(name, h, opts, workers, nil)
		if err != nil {
			return nil, nil, err
		}
		buildNs := time.Since(t0).Nanoseconds()
		if budget > 0 && b.MemoryBytes() > budget && name != BackendLandmarkBiBFS {
			rep.Candidates = append(rep.Candidates, TunerChoice{
				Name: name, BuildNs: buildNs, MemoryBytes: b.MemoryBytes(),
				StretchBound: b.StretchBound(), Skipped: "built size over memory budget",
			})
			continue
		}
		answered := 0
		q0 := time.Now()
		for _, q := range qs {
			if q.U == q.V {
				continue
			}
			b.Dist(q.U, q.V)
			answered++
		}
		elapsed := time.Since(q0).Nanoseconds()
		c := TunerChoice{
			Name:         name,
			BuildNs:      buildNs,
			Answered:     answered,
			MemoryBytes:  b.MemoryBytes(),
			StretchBound: b.StretchBound(),
		}
		if answered > 0 {
			c.QueryNs = float64(elapsed) / float64(answered)
		}
		rep.Candidates = append(rep.Candidates, c)
		built = append(built, b)
		builtChoices = append(builtChoices, c)
	}
	if len(built) == 0 {
		// Unreachable in practice — the landmark backend is never skipped
		// — but keep the failure explicit rather than a nil deref.
		return nil, nil, fmt.Errorf("oracle: auto-tuner found no backend within the %s budget", fmtBytes(budget))
	}
	minNs := builtChoices[0].QueryNs
	for _, c := range builtChoices[1:] {
		if c.QueryNs < minNs {
			minNs = c.QueryNs
		}
	}
	band := minNs * (1 + tunerQueryTolerance)
	bestIdx, bestStretch := -1, 0
	for i, c := range builtChoices {
		if c.QueryNs > band {
			continue
		}
		stretch := c.StretchBound
		if stretch <= 0 {
			stretch = int(^uint(0) >> 1) // undeclared: worse than any bound
		}
		if bestIdx < 0 || stretch < bestStretch {
			bestIdx, bestStretch = i, stretch
		}
	}
	best := built[bestIdx]
	rep.Chosen = best.Name()
	sp.SetKV("chosen", rep.Chosen)
	return best, rep, nil
}

// tunerEstimate predicts a backend's memory before building it.
func tunerEstimate(name string, n int, opts Options) int64 {
	switch name {
	case BackendExactCached:
		return exactMemoryEstimate(n)
	case BackendSparseHub:
		k := opts.SparseHubs
		if k <= 0 {
			k = defaultSparseHubs(n)
		}
		return sparseMemoryEstimate(n, k)
	default:
		k := opts.Landmarks
		if k == 0 {
			k = 16
		}
		return 4 * int64(k) * int64(n+1)
	}
}
