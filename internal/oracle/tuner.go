package oracle

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TunerChoice is one candidate backend's startup benchmark: how long it
// took to build, how fast it answered the probe mix, how much memory it
// holds, and — when it was not benchmarked at all — why it was skipped.
type TunerChoice struct {
	// Name is the candidate backend.
	Name string
	// BuildNs is the wall time of the backend's precomputation.
	BuildNs int64
	// QueryNs is the mean serial latency over the probe queries.
	QueryNs float64
	// MemoryBytes is the realized size of the built backend (the
	// pre-build estimate when Skipped is non-empty).
	MemoryBytes int64
	// StretchBound is the candidate's declared stretch bound.
	StretchBound int
	// Skipped, when non-empty, is the reason the candidate was excluded
	// (memory estimate or realized size over budget).
	Skipped string
}

// TunerReport records an auto-tuning run: every candidate's figures and
// the winner actually serving.
type TunerReport struct {
	// Chosen is the backend the oracle serves.
	Chosen string
	// Candidates lists every backend considered, in BackendNames order.
	Candidates []TunerChoice
}

// String renders the report as one line per candidate plus the verdict.
func (r *TunerReport) String() string {
	var b strings.Builder
	for _, c := range r.Candidates {
		if c.Skipped != "" {
			fmt.Fprintf(&b, "  %-14s skipped: %s (est %s)\n", c.Name, c.Skipped, fmtBytes(c.MemoryBytes))
			continue
		}
		marker := " "
		if c.Name == r.Chosen {
			marker = "*"
		}
		fmt.Fprintf(&b, " %s%-14s build=%-10v query=%-8s mem=%-8s stretch≤%d\n",
			marker, c.Name, time.Duration(c.BuildNs).Round(time.Microsecond),
			fmt.Sprintf("%.0fns", c.QueryNs), fmtBytes(c.MemoryBytes), c.StretchBound)
	}
	return b.String()
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// defaultMemoryBudget caps auto-tuned backend state when Options leaves
// MemoryBudget zero: 128 MiB holds the exact table to n ≈ 8000 and the
// sparse structures far beyond, while staying harmless on serving hosts.
const defaultMemoryBudget = int64(128) << 20

// defaultTunerProbes is the probe-mix size when Options leaves
// TunerProbes zero.
const defaultTunerProbes = 2048

// autoTune builds every candidate backend whose memory estimate fits
// the budget, times a deterministic probe mix against each, and returns
// the winner plus the full report. The decision rule: among candidates
// within budget, minimize mean probe latency; on a tie prefer the
// smaller declared stretch bound, then BackendNames order. The sampling
// policy: TunerProbes uniform random ordered pairs drawn from a
// seed-keyed stream (so two boots of the same graph and seed probe the
// same mix), answered serially through Backend.Dist — the figure is
// per-query resolution cost, deliberately excluding batch-arm and cache
// effects that depend on traffic shape.
//
// The winner is served as built: its probe answers stay in its counters
// (and, for the landmark backend, its result cache), which reads as a
// small warm-up rather than a distortion.
func autoTune(h *graph.Graph, opts Options, workers int, trace *obs.Span) (Backend, *TunerReport, error) {
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = defaultMemoryBudget
	}
	probes := opts.TunerProbes
	if probes == 0 {
		probes = defaultTunerProbes
	}
	n := h.N()
	qs := make([]Query, probes)
	r := rng.New(opts.Seed ^ 0x70be_d15c_a11e_d0)
	for i := range qs {
		qs[i] = Query{U: int32(r.Intn(n)), V: int32(r.Intn(n))}
	}

	sp := trace.Start("backend-tuner")
	defer sp.End()
	rep := &TunerReport{}
	var best Backend
	var bestChoice TunerChoice
	for _, name := range BackendNames() {
		est := tunerEstimate(name, n, opts)
		if budget > 0 && est > budget && name != BackendLandmarkBiBFS {
			rep.Candidates = append(rep.Candidates, TunerChoice{
				Name: name, MemoryBytes: est, Skipped: "estimate over memory budget",
			})
			continue
		}
		t0 := time.Now()
		b, err := buildBackend(name, h, opts, workers, nil)
		if err != nil {
			return nil, nil, err
		}
		buildNs := time.Since(t0).Nanoseconds()
		if budget > 0 && b.MemoryBytes() > budget && name != BackendLandmarkBiBFS {
			rep.Candidates = append(rep.Candidates, TunerChoice{
				Name: name, BuildNs: buildNs, MemoryBytes: b.MemoryBytes(),
				StretchBound: b.StretchBound(), Skipped: "built size over memory budget",
			})
			continue
		}
		q0 := time.Now()
		for _, q := range qs {
			if q.U == q.V {
				continue
			}
			b.Dist(q.U, q.V)
		}
		c := TunerChoice{
			Name:         name,
			BuildNs:      buildNs,
			QueryNs:      float64(time.Since(q0).Nanoseconds()) / float64(len(qs)),
			MemoryBytes:  b.MemoryBytes(),
			StretchBound: b.StretchBound(),
		}
		rep.Candidates = append(rep.Candidates, c)
		if best == nil || c.QueryNs < bestChoice.QueryNs ||
			(c.QueryNs == bestChoice.QueryNs && c.StretchBound > 0 &&
				(bestChoice.StretchBound == 0 || c.StretchBound < bestChoice.StretchBound)) {
			best, bestChoice = b, c
		}
	}
	if best == nil {
		// Unreachable in practice — the landmark backend is never skipped
		// — but keep the failure explicit rather than a nil deref.
		return nil, nil, fmt.Errorf("oracle: auto-tuner found no backend within the %s budget", fmtBytes(budget))
	}
	rep.Chosen = best.Name()
	sp.SetKV("chosen", rep.Chosen)
	return best, rep, nil
}

// tunerEstimate predicts a backend's memory before building it.
func tunerEstimate(name string, n int, opts Options) int64 {
	switch name {
	case BackendExactCached:
		return exactMemoryEstimate(n)
	case BackendSparseHub:
		k := opts.SparseHubs
		if k <= 0 {
			k = defaultSparseHubs(n)
		}
		return sparseMemoryEstimate(n, k)
	default:
		k := opts.Landmarks
		if k == 0 {
			k = 16
		}
		return 4 * int64(k) * int64(n+1)
	}
}
