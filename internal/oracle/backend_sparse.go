package oracle

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
)

// sparseBackend is the two-level hub/bunch design from the sparse-graph
// distance-oracle line of work (Thorup–Zwick stretch-3 instantiated the
// Agarwal–Godfrey–Har-Peled way, with explicit space knobs):
//
//   - a hub set A of k vertices with a full BFS row each (reusing the
//     landmark table machinery, so hub selection is deterministic in
//     (seed, h) and always includes the highest-degree vertex);
//   - per-vertex bunches B(u) = {w : d(u,w) < d(u,A)} storing the exact
//     distance to every vertex strictly closer than the nearest hub —
//     for a vertex with no hub in its component the bunch is its whole
//     component, which is what makes unreachability answers exact.
//
// A query (u, v) first probes v in B(u), then u in B(v); a hit is the
// exact distance. On a double miss the hub rows answer the upper bound
// min_a d(u,a)+d(a,v). Both misses certify d(u,A) ≤ d(u,v) and
// d(v,A) ≤ d(u,v), so the bound through u's nearest hub is at most
// 2·d(u,A)+d(u,v) ≤ 3·d(u,v): the declared stretch bound is 3. A miss
// with an unreachable hub bound certifies a disconnected pair: a
// connected pair with a finite distance either shares a bunch or has a
// finite d(u,A), putting a hub in the common component.
//
// Space is O(k·n) for the rows plus Σ|B(u)| bunch entries; uniform hub
// sampling gives E|B(u)| ≈ n/k, so k ≈ √n (the Options.SparseHubs
// default) balances the terms at O(n^{3/2}). Query time is two binary
// searches plus an O(k) hub scan.
type sparseBackend struct {
	h       *graph.Graph
	hubs    *landmarkTable
	k       int    // resolved hub count, kept for refresh
	seed    uint64 // hub-selection seed (already sparseHubSeed-keyed)
	workers int

	// Bunches in CSR layout, each bunch sorted by vertex id for binary
	// search: bunchW[bunchOff[u]:bunchOff[u+1]] are the members of B(u),
	// bunchD the matching exact distances.
	bunchOff []int32
	bunchW   []int32
	bunchD   []int32

	pathBunch atomic.Int64
	pathHub   atomic.Int64
}

// sparseHubSeed decorrelates hub sampling from the landmark backend's
// landmark sampling at equal Options.Seed.
const sparseHubSeed = 0x5b_a5e_0dd_b0b_cafe

// defaultSparseHubs is the hub-count default: ⌈√n⌉, the space-balancing
// point.
func defaultSparseHubs(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// newSparseBackend selects the hub set and grows every bunch by bounded
// BFS. Bunch radii are exact — d(u,A)−1, or the whole component when no
// hub is reachable — never truncated: truncation would break both the
// stretch-3 proof and exact unreachability.
func newSparseBackend(h *graph.Graph, opts Options, workers int, trace *obs.Span) *sparseBackend {
	n := h.N()
	k := opts.SparseHubs
	if k <= 0 {
		k = defaultSparseHubs(n)
	}
	if k > n {
		k = n
	}
	sp := trace.Start("sparse-hub-table")
	b := &sparseBackend{h: h, k: k, seed: opts.Seed ^ sparseHubSeed, workers: workers}
	b.rebuild(h)
	sp.SetKV("hubs", len(b.hubs.roots))
	sp.SetKV("bunch-entries", len(b.bunchW))
	sp.End()
	return b
}

// rebuild recomputes the hub table, the d(u, A) column minima, every
// bunch, and the CSR pack over h with the stored (k, seed) — the shared
// body of construction and refresh, so a refreshed backend is structure-
// for-structure the backend a fresh build would produce.
func (b *sparseBackend) rebuild(h *graph.Graph) {
	n := h.N()
	hubs := buildLandmarkTable(h, b.k, b.seed)
	// d(u, A): the column minimum over the hub rows.
	dA := make([]int32, n)
	for u := range dA {
		dA[u] = graph.Unreachable
	}
	for i := 0; i < hubs.dist.Rows(); i++ {
		row := hubs.dist.Row(i)
		for u, d := range row {
			if d != graph.Unreachable && (dA[u] == graph.Unreachable || d < dA[u]) {
				dA[u] = d
			}
		}
	}
	// Grow bunches in parallel: each worker owns a contiguous vertex
	// range with private BFS scratch, writing only its own bunches[u]
	// slots, so the build is deterministic at any worker count.
	bunches := make([][]bunchEntry, n)
	graph.ParallelRangeWorkers(n, b.workers, func(w, lo, hi int) {
		bs := newBunchScratch(n)
		for u := lo; u < hi; u++ {
			bunches[u] = bs.grow(h, int32(u), dA[u])
		}
	})
	b.h, b.hubs = h, hubs
	b.bunchOff = make([]int32, n+1)
	total := 0
	for u := 0; u < n; u++ {
		total += len(bunches[u])
		b.bunchOff[u+1] = int32(total)
	}
	b.bunchW = make([]int32, total)
	b.bunchD = make([]int32, total)
	for u := 0; u < n; u++ {
		off := b.bunchOff[u]
		for i, e := range bunches[u] {
			b.bunchW[off+int32(i)] = e.w
			b.bunchD[off+int32(i)] = e.d
		}
	}
}

// refresh implements Backend: bunch membership is a global property of
// the spanner (one edge can move d(u, A) and re-cut every bunch radius
// along a path), so the backend recomputes hubs and bunches in place via
// rebuild. Path counters and metric registrations survive — the gauge
// closures read b.hubs/b.bunchW through the receiver.
func (b *sparseBackend) refresh(h *graph.Graph, _ GraphUpdate) {
	b.rebuild(h)
}

// bunchEntry is one bunch member with its exact distance from the owner.
type bunchEntry struct{ w, d int32 }

// bunchScratch is per-worker bounded-BFS state for bunch growth: stamp
// arrays make per-vertex reset O(bunch) instead of O(n).
type bunchScratch struct {
	dist  []int32
	stamp []int32
	gen   int32
	queue []int32
}

func newBunchScratch(n int) *bunchScratch {
	return &bunchScratch{dist: make([]int32, n), stamp: make([]int32, n), queue: make([]int32, 0, 64)}
}

// grow collects B(u) = {w ≠ u : d(u,w) < dAu} with exact distances,
// sorted by vertex id. dAu == graph.Unreachable means no radius bound —
// the bunch is u's whole component (minus u itself).
func (s *bunchScratch) grow(h *graph.Graph, u, dAu int32) []bunchEntry {
	if dAu == 0 {
		return nil // u is a hub: the bunch radius is empty
	}
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	gen := s.gen
	s.queue = append(s.queue[:0], u)
	s.dist[u], s.stamp[u] = 0, gen
	var out []bunchEntry
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		dx := s.dist[x]
		if dAu != graph.Unreachable && dx+1 >= dAu {
			continue // children would be at distance ≥ d(u,A): outside the bunch
		}
		for _, w := range h.Neighbors(x) {
			if s.stamp[w] == gen {
				continue
			}
			s.stamp[w] = gen
			s.dist[w] = dx + 1
			s.queue = append(s.queue, w)
			out = append(out, bunchEntry{w: w, d: dx + 1})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].w < out[j].w })
	return out
}

// lookup binary-searches w in B(u), returning the exact distance.
func (b *sparseBackend) lookup(u, w int32) (int32, bool) {
	lo, hi := b.bunchOff[u], b.bunchOff[u+1]
	ws := b.bunchW[lo:hi]
	i := sort.Search(len(ws), func(i int) bool { return ws[i] >= w })
	if i < len(ws) && ws[i] == w {
		return b.bunchD[lo+int32(i)], true
	}
	return 0, false
}

// Name implements Backend.
func (b *sparseBackend) Name() string { return BackendSparseHub }

// StretchBound implements Backend: 3, by the double-miss argument in
// the type's doc comment.
func (b *sparseBackend) StretchBound() int { return 3 }

// MemoryBytes implements Backend: hub rows plus the bunch CSR.
func (b *sparseBackend) MemoryBytes() int64 {
	rows := int64(4 * len(b.hubs.roots) * (1 + b.h.N()))
	return rows + int64(4*len(b.bunchOff)) + int64(8*len(b.bunchW))
}

// sparseMemoryEstimate predicts the backend's footprint before building
// it: k·n for the rows and n·(n/k) expected bunch entries. An estimate,
// not a bound — the tuner re-checks the realized MemoryBytes after the
// build.
func sparseMemoryEstimate(n, k int) int64 {
	if k < 1 {
		k = 1
	}
	rows := 4 * int64(k) * int64(n+1)
	bunches := 8 * int64(n) * (int64(n)/int64(k) + 1)
	return rows + bunches
}

// Dist implements Backend: bunch probe both ways (exact on a hit), hub
// upper bound on a double miss — inexact unless it certifies an
// unreachable pair, which the double miss makes exact.
func (b *sparseBackend) Dist(u, v int32) (Answer, uint8) {
	ans := Answer{U: u, V: v, Exact: true}
	if d, ok := b.lookup(u, v); ok {
		b.pathBunch.Add(1)
		ans.Dist, ans.Bound = d, d
		return ans, obs.PathHub
	}
	if d, ok := b.lookup(v, u); ok {
		b.pathBunch.Add(1)
		ans.Dist, ans.Bound = d, d
		return ans, obs.PathHub
	}
	b.pathHub.Add(1)
	hb := b.hubs.upperBound(u, v)
	ans.Dist, ans.Bound = hb, hb
	if hb != graph.Unreachable {
		ans.Exact = false // a finite hub bound is within 3×, not exact
	}
	return ans, obs.PathHub
}

// AnswerBatch implements Backend: punts to the Oracle's per-query
// worker pool — bunch lookups are already cheap and independent, so a
// bulk arm would buy nothing over the work-stealing pool calling Dist.
func (b *sparseBackend) AnswerBatch(qs []Query, out []Answer) (uint8, bool) {
	return 0, false
}

// Stats implements Backend.
func (b *sparseBackend) Stats() BackendStats {
	return BackendStats{
		Name:         b.Name(),
		StretchBound: b.StretchBound(),
		MemoryBytes:  b.MemoryBytes(),
		Counters: map[string]int64{
			"path_bunch":    b.pathBunch.Load(),
			"path_hub":      b.pathHub.Load(),
			"hubs":          int64(len(b.hubs.roots)),
			"bunch_entries": int64(len(b.bunchW)),
		},
	}
}

// attachMetrics implements Backend.
func (b *sparseBackend) attachMetrics(reg *obs.Registry) {
	label := b.Name()
	reg.CounterFuncLabeled(metricPathBunch, "Resolutions answered exactly from a hub bunch.",
		"backend", label, b.pathBunch.Load)
	reg.CounterFuncLabeled(metricPathHub, "Resolutions served the O(k) hub upper bound.",
		"backend", label, b.pathHub.Load)
	reg.GaugeFunc(metricSparseHubs, "Hub BFS rows precomputed by the sparse-hub backend.",
		func() float64 { return float64(len(b.hubs.roots)) })
	reg.GaugeFunc(metricBunchEntries, "Total bunch entries held by the sparse-hub backend.",
		func() float64 { return float64(len(b.bunchW)) })
}
