package oracle

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestAnswerBatchConcurrentHammer drives AnswerBatch from many goroutines
// at once (run with -race) and asserts every concurrent result is
// identical to the sequential answer for the same query. This is the
// oracle's core concurrency contract: scheduling and cache interleaving
// must never change an answer.
func TestAnswerBatchConcurrentHammer(t *testing.T) {
	dc := buildTestSpanner(t, 128, 32, 23)
	o, err := New(dc, Options{Landmarks: 8, Workers: 4, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	// A query pool small enough that the LRU cache churns (256 entries,
	// ~2000 distinct pairs) while goroutines race on the same shards.
	r := rng.New(31)
	pool := make([]Query, 2000)
	for i := range pool {
		pool[i] = Query{U: int32(r.Intn(128)), V: int32(r.Intn(128))}
	}
	// Sequential ground truth, computed on a second oracle so the hammered
	// oracle's cache state stays adversarial.
	ref, err := New(dc, Options{Landmarks: 8, Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Answer, len(pool))
	for i, q := range pool {
		w, err := ref.Dist(q.U, q.V)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	const hammers = 8
	var wg sync.WaitGroup
	errs := make(chan string, hammers)
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			// Each hammer runs a rotated view of the pool so different
			// goroutines compute the same keys in different orders. Batches
			// stay below bulkMinBatch so every query takes the per-query
			// cache path — the contract this test hammers; the bulk sweep
			// path has its own differential in batch_test.go.
			qs := make([]Query, len(pool))
			for i := range pool {
				qs[i] = pool[(i+h*251)%len(pool)]
			}
			const chunk = bulkMinBatch - 1
			for lo := 0; lo < len(qs); lo += chunk {
				hi := lo + chunk
				if hi > len(qs) {
					hi = len(qs)
				}
				got := o.AnswerBatch(qs[lo:hi])
				for i := range got {
					if got[i] != want[(lo+i+h*251)%len(pool)] {
						errs <- "concurrent answer diverged from sequential"
						return
					}
				}
			}
		}(h)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	s := o.Stats()
	if s.Queries != hammers*int64(len(pool)) {
		t.Fatalf("queries = %d, want %d", s.Queries, hammers*len(pool))
	}
	if s.CacheHits == 0 {
		t.Fatal("hammer produced no cache hits; test is not exercising the cache")
	}
}

// TestConcurrentDistAndRoute mixes Dist, Route, and Stats calls across
// goroutines to exercise every lock and atomic under -race.
func TestConcurrentDistAndRoute(t *testing.T) {
	dc := buildTestSpanner(t, 64, 18, 29)
	o, err := New(dc, Options{Landmarks: 4, Workers: 4, SampleEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			for i := 0; i < 400; i++ {
				u := int32(r.Intn(64))
				v := int32(r.Intn(64))
				if i%3 == 0 {
					if _, _, err := o.Route(u, v); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := o.Dist(u, v); err != nil {
						t.Error(err)
						return
					}
				}
				if i%97 == 0 {
					_ = o.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	s := o.Stats()
	if s.StretchSamples == 0 {
		t.Fatal("realized-stretch sampling recorded nothing")
	}
	if s.RealizedAlpha > 3 {
		t.Fatalf("realized alpha %.3f exceeds certified 3", s.RealizedAlpha)
	}
}
