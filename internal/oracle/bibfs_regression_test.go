package oracle

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// These tests pin the two bidirectional-search behaviors the differential
// harness was built to interrogate (see ISSUE: the stopping rule when the
// frontiers touch exactly at the search bound, and the "unreachable
// within bound" sentinel on disconnected graphs). The sweep found no
// divergence — the stopping rule `depthU+depthV >= best-1` is sound — and
// these seed-pinned sweeps keep it that way.

// exactDistContract sweeps every pair of g through an oracle and asserts
// the bounded-search contract against a plain BFS reference: exact
// answers must equal the true spanner distance; inexact answers may only
// occur past maxDist and must serve exactly the landmark bound.
func exactDistContract(t *testing.T, g *graph.Graph, maxDist int32, seed uint64) {
	t.Helper()
	o, err := NewFromGraphs(g, g, 3, Options{
		Landmarks: 3, Seed: seed, CacheSize: -1, SampleEvery: -1, MaxDist: int(maxDist),
	})
	if err != nil {
		t.Fatalf("NewFromGraphs: %v", err)
	}
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		ref := g.BFS(u)
		for v := int32(0); v < n; v++ {
			a, err := o.Dist(u, v)
			if err != nil {
				t.Fatalf("Dist(%d,%d): %v", u, v, err)
			}
			if a.Exact {
				if a.Dist != ref[v] {
					t.Fatalf("Dist(%d,%d) = %d exact, BFS says %d (maxDist=%d seed=%d)",
						u, v, a.Dist, ref[v], maxDist, seed)
				}
				continue
			}
			if maxDist < 0 {
				t.Fatalf("Dist(%d,%d) inexact on an unbounded oracle (seed=%d)", u, v, seed)
			}
			if ref[v] != graph.Unreachable && ref[v] <= maxDist {
				t.Fatalf("Dist(%d,%d) fell back to the bound but true distance %d <= maxDist %d (seed=%d)",
					u, v, ref[v], maxDist, seed)
			}
			if a.Dist != a.Bound {
				t.Fatalf("Dist(%d,%d) inexact answer %d != landmark bound %d (seed=%d)",
					u, v, a.Dist, a.Bound, seed)
			}
			if a.Bound != graph.Unreachable && ref[v] != graph.Unreachable && a.Bound < ref[v] {
				t.Fatalf("Dist(%d,%d) landmark bound %d below true distance %d (seed=%d)",
					u, v, a.Bound, ref[v], seed)
			}
		}
	}
}

// TestBoundedSearchMeetingAtBound drives the frontiers to touch exactly
// at the depth budget: on a cycle, antipodal pairs sit at every distance
// up to n/2, so a MaxDist equal to (and one past) specific distances
// exercises the `depthU+depthV >= best-1` cutoff on both sides of the
// boundary. Structured graphs, no randomness — any stopping-rule
// off-by-one fails deterministically.
func TestBoundedSearchMeetingAtBound(t *testing.T) {
	for _, m := range []int32{1, 2, 3, 5, 6, 7, 11, 12} {
		exactDistContract(t, gen.Cycle(24), m, 9)
		exactDistContract(t, gen.Path(20), m, 9)
	}
	// Odd-distance meeting points (frontier levels of unequal depth).
	exactDistContract(t, gen.Cycle(25), 6, 9)
}

// TestDisconnectedSentinelPinnedSeeds sweeps sub-threshold Erdős–Rényi
// graphs — the family whose isolated vertices and small components make
// "unreachable within bound" ambiguous — under both an unbounded and a
// tightly bounded oracle. The seeds are pinned: each produced a
// disconnected graph when this test was written, and the sweep asserts
// the full contract on every pair, including that unbounded disconnected
// answers are exact Unreachable (the sentinel never downgrades to an
// inexact landmark fallback when the frontier genuinely empties).
func TestDisconnectedSentinelPinnedSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 4, 7, 1002} {
		g := gen.ErdosRenyi(48, 1.2/48.0, rng.New(seed))
		if g.Connected() {
			t.Fatalf("seed %d no longer yields a disconnected graph; re-pin the seed", seed)
		}
		exactDistContract(t, g, -1, seed)
		exactDistContract(t, g, 3, seed)
	}
}
