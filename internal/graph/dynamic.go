package graph

import (
	"fmt"
	"sort"
)

// DynGraph is the mutable companion of Graph: the same dense-vertex,
// simple, undirected model, but with edge insert/delete in O(deg) and a
// canonical Snapshot back into the immutable CSR form. The vertex set is
// fixed at construction — the dynamic workload is edge churn on a live
// graph, not vertex churn — and adjacency lists stay sorted at all
// times, so Neighbors and HasEdge keep the semantics (and determinism)
// of their immutable counterparts while the graph changes underneath.
//
// DynGraph does no internal locking: callers serialize mutations (the
// serving layer applies updates under the oracle's update lock).
type DynGraph struct {
	n   int
	m   int
	seq uint64
	adj [][]int32 // sorted within each vertex's list
}

// NewDynGraph returns a mutable copy of base. The base graph is not
// retained; subsequent mutations never alias its storage.
func NewDynGraph(base *Graph) *DynGraph {
	d := &DynGraph{n: base.N(), m: base.M(), adj: make([][]int32, base.N())}
	for v := int32(0); v < int32(d.n); v++ {
		nbrs := base.Neighbors(v)
		d.adj[v] = append(make([]int32, 0, len(nbrs)), nbrs...)
	}
	return d
}

// N returns the (fixed) number of vertices.
func (d *DynGraph) N() int { return d.n }

// M returns the current number of edges.
func (d *DynGraph) M() int { return d.m }

// Seq returns the number of applied mutations — a monotone version
// counter for snapshot/consistency protocols. No-op updates (inserting
// a present edge, deleting an absent one) do not advance it.
func (d *DynGraph) Seq() uint64 { return d.seq }

// Degree returns the current degree of v.
func (d *DynGraph) Degree(v int32) int { return len(d.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage: it must not be modified, and it is only
// valid until the next mutation touching v.
func (d *DynGraph) Neighbors(v int32) []int32 { return d.adj[v] }

// HasEdge reports whether {u, v} is currently an edge. Self-queries
// return false.
func (d *DynGraph) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || int(u) >= d.n || int(v) >= d.n {
		return false
	}
	if len(d.adj[u]) > len(d.adj[v]) {
		u, v = v, u
	}
	nbrs := d.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// check validates an endpoint pair for mutation.
func (d *DynGraph) check(u, v int32) error {
	if u < 0 || v < 0 || int(u) >= d.n || int(v) >= d.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	return nil
}

// Insert adds the edge {u, v}. It reports whether the graph changed —
// inserting a present edge is a no-op, not an error — and rejects
// out-of-range endpoints and self-loops.
func (d *DynGraph) Insert(u, v int32) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if d.HasEdge(u, v) {
		return false, nil
	}
	d.insertArc(u, v)
	d.insertArc(v, u)
	d.m++
	d.seq++
	return true, nil
}

// Delete removes the edge {u, v}. It reports whether the graph changed —
// deleting an absent edge is a no-op, not an error — and rejects
// out-of-range endpoints and self-loops.
func (d *DynGraph) Delete(u, v int32) (bool, error) {
	if err := d.check(u, v); err != nil {
		return false, err
	}
	if !d.HasEdge(u, v) {
		return false, nil
	}
	d.deleteArc(u, v)
	d.deleteArc(v, u)
	d.m--
	d.seq++
	return true, nil
}

func (d *DynGraph) insertArc(u, v int32) {
	nbrs := d.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	nbrs = append(nbrs, 0)
	copy(nbrs[i+1:], nbrs[i:])
	nbrs[i] = v
	d.adj[u] = nbrs
}

func (d *DynGraph) deleteArc(u, v int32) {
	nbrs := d.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	d.adj[u] = append(nbrs[:i], nbrs[i+1:]...)
}

// Snapshot freezes the current edge set into an immutable Graph in the
// canonical form every consumer expects (each edge once with U < V,
// sorted lexicographically). Two DynGraphs holding the same edge set
// snapshot to byte-identical graphs regardless of mutation history —
// the property the incremental-vs-rebuilt differential gate relies on.
func (d *DynGraph) Snapshot() *Graph {
	edges := make([]Edge, 0, d.m)
	for u := int32(0); u < int32(d.n); u++ {
		for _, v := range d.adj[u] {
			if u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	// Edges emitted in increasing (u, v) order are already sorted.
	return fromSortedEdges(d.n, edges)
}
