package graph

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

// randomKernelGraph builds a connected-ish random graph on n vertices with ~m
// edges for kernel tests (duplicates collapsed by BuildDedup).
func randomKernelGraph(n, m int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i < m; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u != v {
			b.TryAddEdge(u, v)
		}
	}
	return b.BuildDedup()
}

func TestParallelRangeWorkersCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ParallelRangeWorkers(n, workers, func(w, lo, hi int) {
			if w < 0 {
				t.Errorf("negative worker index %d", w)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
	// Degenerate sizes must not hang or call fn.
	ParallelRangeWorkers(0, 4, func(w, lo, hi int) { t.Error("fn called for n=0") })
	ParallelRangeWorkers(-3, 4, func(w, lo, hi int) { t.Error("fn called for n<0") })
}

func TestParallelBFSFromMatchesSerialBFS(t *testing.T) {
	g := randomKernelGraph(400, 1500, 11)
	sources := make([]int32, 0, 50)
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		sources = append(sources, int32(r.Intn(g.N())))
	}
	want := make([][]int32, len(sources))
	for i, s := range sources {
		want[i] = g.BFS(s)
	}
	for _, workers := range []int{0, 1, 2, 4, 9} {
		got := g.ParallelBFSFrom(sources, workers)
		if got.Rows() != len(sources) || got.N() != g.N() {
			t.Fatalf("workers=%d: table is %dx%d, want %dx%d",
				workers, got.Rows(), got.N(), len(sources), g.N())
		}
		for i := range sources {
			if !reflect.DeepEqual(got.Row(i), want[i]) {
				t.Fatalf("workers=%d: ParallelBFSFrom row %d differs from serial BFS", workers, i)
			}
		}
	}
}

func TestParallelBFSSweepStreamsEverySource(t *testing.T) {
	g := randomKernelGraph(200, 600, 5)
	sources := []int32{0, 7, 31, 100, 199, 42}
	want := make([][]int32, len(sources))
	for i, s := range sources {
		want[i] = g.BFS(s)
	}
	for _, workers := range []int{1, 3, 6} {
		got := make([][]int32, len(sources))
		g.ParallelBFSSweep(sources, workers, func(i int, src int32, dist []int32) {
			if src != sources[i] {
				t.Errorf("index %d: got source %d, want %d", i, src, sources[i])
			}
			// dist is reused scratch: copy before retaining.
			got[i] = append([]int32(nil), dist...)
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sweep distances differ from serial BFS", workers)
		}
	}
}

func TestParallelEdgeSweepVisitsEveryEdgeOnce(t *testing.T) {
	g := randomKernelGraph(150, 700, 9)
	for _, workers := range []int{1, 4} {
		visited := make([]atomic.Int32, g.M())
		g.ParallelEdgeSweep(workers, func(w, lo, hi int, edges []Edge) {
			if len(edges) != g.M() {
				t.Errorf("edge slice has %d edges, want %d", len(edges), g.M())
			}
			for i := lo; i < hi; i++ {
				if edges[i] != g.Edges()[i] {
					t.Errorf("edge %d mismatch", i)
				}
				visited[i].Add(1)
			}
		})
		for i := range visited {
			if got := visited[i].Load(); got != 1 {
				t.Fatalf("workers=%d: edge %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestBFSScratchBFSFromMatchesBFS(t *testing.T) {
	g := randomKernelGraph(120, 300, 21)
	s := NewBFSScratch(g.N())
	dist := make([]int32, g.N())
	for src := int32(0); src < int32(g.N()); src += 13 {
		s.BFSFrom(g, src, dist)
		want := g.BFS(src)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("src %d vertex %d: got %d want %d", src, v, dist[v], want[v])
			}
		}
	}
	// Scratch interleaving: a bounded DistWithin between full sweeps must
	// not corrupt the next BFSFrom.
	s.DistWithin(g, 0, int32(g.N()-1), 2)
	s.BFSFrom(g, 0, dist)
	want := g.BFS(0)
	if !reflect.DeepEqual(dist, want) {
		t.Fatal("BFSFrom after DistWithin differs from serial BFS")
	}
}
