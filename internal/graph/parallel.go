package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by the Parallel* helpers
// when the caller does not pick one explicitly: GOMAXPROCS, floored at 1.
func Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// clampWorkers resolves a caller-supplied worker count: values <= 0 mean
// Workers(), and the pool never exceeds the number of work items.
func clampWorkers(workers, items int) int {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParallelRangeWorkers processes [0, n) on a pool of exactly `workers`
// goroutines (0 means Workers()). Unlike ParallelRange it hands out work
// in small dynamically-claimed chunks, so uneven per-item cost (a BFS that
// terminates early, a cache hit) does not straggle the pool, and it passes
// the worker index w in [0, workers) to fn so each worker can own reusable
// scratch (a BFSScratch, a distance buffer) across all chunks it claims.
//
// Determinism contract: which worker processes which index is
// schedule-dependent, so fn must write results only into per-index slots
// (out[i] = ...) or into per-worker accumulators that are merged
// order-independently afterwards. Under that discipline the result is
// byte-identical for every worker count, including workers == 1, which
// runs fn(0, 0, n) inline with no goroutines at all.
func ParallelRangeWorkers(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	// Chunks are sized so each worker claims ~8 of them on average: small
	// enough to balance variable per-item cost, large enough that the
	// atomic claim is negligible against any non-trivial fn.
	chunk := n / (8 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// ParallelRange splits [0, n) into contiguous chunks and invokes fn(lo, hi)
// for each chunk on a bounded pool of workers. fn must be safe to call
// concurrently for disjoint ranges. It is a no-op for n <= 0.
func ParallelRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelForEachEdge invokes fn(i, e) for every edge index i in parallel
// chunks. fn must not mutate shared state without its own synchronization;
// the idiomatic pattern is writing to out[i].
func (g *Graph) ParallelForEachEdge(fn func(i int, e Edge)) {
	edges := g.edges
	ParallelRange(len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i, edges[i])
		}
	})
}

// ParallelForEachVertex invokes fn(v) for every vertex in parallel chunks.
func (g *Graph) ParallelForEachVertex(fn func(v int32)) {
	ParallelRange(g.n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			fn(int32(v))
		}
	})
}

// BFSScratch holds reusable per-worker BFS state so bulk multi-source
// distance computations do not reallocate O(n) slices per source.
type BFSScratch struct {
	dist  []int32
	queue []int32
	stamp []int32 // generation tags: dist[v] valid iff stamp[v] == gen
	gen   int32
}

// NewBFSScratch allocates scratch for graphs with n vertices.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:  make([]int32, n),
		queue: make([]int32, 0, 64),
		stamp: make([]int32, n),
		gen:   0,
	}
}

// DistWithin is g.DistWithin using the scratch space (no allocation after
// warm-up). limit < 0 means unlimited.
func (s *BFSScratch) DistWithin(g *Graph, u, v, limit int32) int32 {
	if u == v {
		return 0
	}
	s.gen++
	if s.gen == 0 { // wrapped; reset stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, u)
	s.dist[u] = 0
	s.stamp[u] = s.gen
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		dx := s.dist[x]
		if limit >= 0 && dx >= limit {
			break
		}
		for _, w := range g.Neighbors(x) {
			if s.stamp[w] == s.gen {
				continue
			}
			s.stamp[w] = s.gen
			s.dist[w] = dx + 1
			if w == v {
				return dx + 1
			}
			s.queue = append(s.queue, w)
		}
	}
	return Unreachable
}

// PathWithin returns a shortest u–v path of length at most limit using the
// scratch space, or nil if none exists; limit < 0 means unlimited. Unlike
// DistWithin it records parents while searching, and it stops the moment v
// is discovered: BFS discovers v first at its true distance, and every
// parent on the chain back to u was finalized at an earlier level, so the
// reconstruction needs nothing from the rest of v's level.
func (s *BFSScratch) PathWithin(g *Graph, u, v, limit int32, parent []int32) []int32 {
	if u == v {
		return []int32{u}
	}
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, u)
	s.dist[u] = 0
	s.stamp[u] = s.gen
	parent[u] = u
	found := false
	for head := 0; head < len(s.queue) && !found; head++ {
		x := s.queue[head]
		dx := s.dist[x]
		if limit >= 0 && dx >= limit {
			break
		}
		for _, w := range g.Neighbors(x) {
			if s.stamp[w] == s.gen {
				continue
			}
			s.stamp[w] = s.gen
			s.dist[w] = dx + 1
			parent[w] = x
			if w == v {
				found = true
				break
			}
			s.queue = append(s.queue, w)
		}
	}
	if !found {
		return nil
	}
	// Size by the found distance, not the limit: limit may be -1 (or any
	// negative "unlimited" value, for which limit+1 would be a negative
	// capacity and panic) and is only an upper bound anyway.
	path := make([]int32, 0, s.dist[v]+1)
	for x := v; ; x = parent[x] {
		path = append(path, x)
		if x == u {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// BFSFrom fills dist (which must have length g.N()) with hop distances
// from src, reusing the scratch queue across calls. Unreachable vertices
// get Unreachable. It is the full-sweep sibling of DistWithin for bulk
// multi-source workloads: the only per-call allocation is none after the
// queue warms up.
func (s *BFSScratch) BFSFrom(g *Graph, src int32, dist []int32) {
	for i := range dist {
		dist[i] = Unreachable
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, src)
	dist[src] = 0
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				s.queue = append(s.queue, w)
			}
		}
	}
}

// ParallelBFSFrom computes BFS distances from every source on a pool of
// `workers` goroutines (0 means Workers()) and returns the flat distance
// table, row-aligned with sources: out.Row(i) equals g.BFS(sources[i])
// element for element. It is the scalar multi-source kernel — one plain
// BFS per source with per-worker reusable queues — kept both as the
// sparse-graph arm of MultiSourceBFSFrom and as the differential
// reference the bit-parallel kernel is checked against in dccheck.
//
// The result is deterministic — byte-identical for every worker count at
// a fixed input — because each source's BFS is independent and lands in
// its own row.
func (g *Graph) ParallelBFSFrom(sources []int32, workers int) *FlatDist {
	out := NewFlatDist(len(sources), g.n)
	scratch := make([]*BFSScratch, clampWorkers(workers, len(sources)))
	ParallelRangeWorkers(len(sources), workers, func(w, lo, hi int) {
		s := scratch[w]
		if s == nil {
			s = NewBFSScratch(g.n)
			scratch[w] = s
		}
		for i := lo; i < hi; i++ {
			s.BFSFrom(g, sources[i], out.Row(i))
		}
	})
	return out
}

// ParallelBFSSweep runs a BFS from every source on a pool of `workers`
// goroutines and streams each completed distance slice to visit(i, src,
// dist), where i is the source's index. The dist slice is per-worker
// scratch reused for the next source: visit must not retain it, and must
// be safe to call concurrently for distinct indices (it is never called
// concurrently for the same index). Use this instead of ParallelBFSFrom
// when the sweep reduces each BFS to a few numbers (an eccentricity, a
// stretch maximum) and holding len(sources) full distance slices would
// be wasteful.
func (g *Graph) ParallelBFSSweep(sources []int32, workers int, visit func(i int, src int32, dist []int32)) {
	type state struct {
		scratch *BFSScratch
		dist    []int32
	}
	states := make([]state, clampWorkers(workers, len(sources)))
	ParallelRangeWorkers(len(sources), workers, func(w, lo, hi int) {
		st := &states[w]
		if st.scratch == nil {
			st.scratch = NewBFSScratch(g.n)
			st.dist = make([]int32, g.n)
		}
		for i := lo; i < hi; i++ {
			st.scratch.BFSFrom(g, sources[i], st.dist)
			visit(i, sources[i], st.dist)
		}
	})
}

// ParallelEdgeSweep invokes fn for dynamically-balanced contiguous ranges
// of the edge list on a pool of `workers` goroutines (0 means Workers()).
// The worker index w lets fn key per-worker scratch; edges is the graph's
// full edge slice (do not modify). It is the parallel edge-sweep helper
// behind the per-edge stretch verification kernel: fn typically runs a
// bounded BFS per edge and writes one result per edge index.
func (g *Graph) ParallelEdgeSweep(workers int, fn func(w, lo, hi int, edges []Edge)) {
	edges := g.edges
	ParallelRangeWorkers(len(edges), workers, func(w, lo, hi int) {
		fn(w, lo, hi, edges)
	})
}

// ParallelAllDistancesFrom computes BFS distances from each source in
// sources concurrently with the default worker count, returning the flat
// distance table. It is ParallelBFSFrom(sources, 0).
func (g *Graph) ParallelAllDistancesFrom(sources []int32) *FlatDist {
	return g.ParallelBFSFrom(sources, 0)
}
