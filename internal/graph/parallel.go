package graph

import (
	"runtime"
	"sync"
)

// Workers returns the degree of parallelism used by the Parallel* helpers:
// GOMAXPROCS, floored at 1.
func Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelRange splits [0, n) into contiguous chunks and invokes fn(lo, hi)
// for each chunk on a bounded pool of workers. fn must be safe to call
// concurrently for disjoint ranges. It is a no-op for n <= 0.
func ParallelRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelForEachEdge invokes fn(i, e) for every edge index i in parallel
// chunks. fn must not mutate shared state without its own synchronization;
// the idiomatic pattern is writing to out[i].
func (g *Graph) ParallelForEachEdge(fn func(i int, e Edge)) {
	edges := g.edges
	ParallelRange(len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i, edges[i])
		}
	})
}

// ParallelForEachVertex invokes fn(v) for every vertex in parallel chunks.
func (g *Graph) ParallelForEachVertex(fn func(v int32)) {
	ParallelRange(g.n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			fn(int32(v))
		}
	})
}

// BFSScratch holds reusable per-worker BFS state so bulk multi-source
// distance computations do not reallocate O(n) slices per source.
type BFSScratch struct {
	dist  []int32
	queue []int32
	stamp []int32 // generation tags: dist[v] valid iff stamp[v] == gen
	gen   int32
}

// NewBFSScratch allocates scratch for graphs with n vertices.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:  make([]int32, n),
		queue: make([]int32, 0, 64),
		stamp: make([]int32, n),
		gen:   0,
	}
}

// DistWithin is g.DistWithin using the scratch space (no allocation after
// warm-up). limit < 0 means unlimited.
func (s *BFSScratch) DistWithin(g *Graph, u, v, limit int32) int32 {
	if u == v {
		return 0
	}
	s.gen++
	if s.gen == 0 { // wrapped; reset stamps
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, u)
	s.dist[u] = 0
	s.stamp[u] = s.gen
	for head := 0; head < len(s.queue); head++ {
		x := s.queue[head]
		dx := s.dist[x]
		if limit >= 0 && dx >= limit {
			break
		}
		for _, w := range g.Neighbors(x) {
			if s.stamp[w] == s.gen {
				continue
			}
			s.stamp[w] = s.gen
			s.dist[w] = dx + 1
			if w == v {
				return dx + 1
			}
			s.queue = append(s.queue, w)
		}
	}
	return Unreachable
}

// PathWithin returns a shortest u–v path of length at most limit using the
// scratch space, or nil if none exists. Unlike DistWithin it must finish
// the BFS level containing v to reconstruct parents, so it is slightly
// slower; use DistWithin when only existence matters.
func (s *BFSScratch) PathWithin(g *Graph, u, v, limit int32, parent []int32) []int32 {
	if u == v {
		return []int32{u}
	}
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, u)
	s.dist[u] = 0
	s.stamp[u] = s.gen
	parent[u] = u
	found := false
	for head := 0; head < len(s.queue) && !found; head++ {
		x := s.queue[head]
		dx := s.dist[x]
		if limit >= 0 && dx >= limit {
			break
		}
		for _, w := range g.Neighbors(x) {
			if s.stamp[w] == s.gen {
				continue
			}
			s.stamp[w] = s.gen
			s.dist[w] = dx + 1
			parent[w] = x
			if w == v {
				found = true
				break
			}
			s.queue = append(s.queue, w)
		}
	}
	if !found {
		return nil
	}
	path := make([]int32, 0, limit+1)
	for x := v; ; x = parent[x] {
		path = append(path, x)
		if x == u {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// ParallelAllDistancesFrom computes BFS distances from each source in
// sources concurrently, returning one distance slice per source.
func (g *Graph) ParallelAllDistancesFrom(sources []int32) [][]int32 {
	out := make([][]int32, len(sources))
	ParallelRange(len(sources), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = g.BFS(sources[i])
		}
	})
	return out
}
