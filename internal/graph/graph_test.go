package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

func cycle(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

func complete(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := path(t, 5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 5, 4", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("path edge (0,1) missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge (0,2)")
	}
	if g.HasEdge(3, 3) {
		t.Error("self-query must be false")
	}
	if d := g.Degree(0); d != 1 {
		t.Errorf("Degree(0) = %d, want 1", d)
	}
	if d := g.Degree(2); d != 2 {
		t.Errorf("Degree(2) = %d, want 2", d)
	}
}

func TestBuilderDuplicateRejected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a duplicate edge")
	}
}

func TestBuildDedupCollapses(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.BuildDedup()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(2,2) did not panic")
		}
	}()
	NewBuilder(3).AddEdge(2, 2)
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(3, 5)
	b.AddEdge(3, 0)
	b.AddEdge(3, 4)
	b.AddEdge(3, 1)
	g := b.MustBuild()
	nbrs := g.Neighbors(3)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors not sorted: %v", nbrs)
		}
	}
}

func TestEdgesNormalized(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(3, 1)
	b.AddEdge(2, 0)
	g := b.MustBuild()
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{2, 7}
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestIsRegular(t *testing.T) {
	if d, ok := cycle(t, 8).IsRegular(); !ok || d != 2 {
		t.Errorf("cycle: got (%d,%v), want (2,true)", d, ok)
	}
	if _, ok := path(t, 8).IsRegular(); ok {
		t.Error("path reported regular")
	}
	if d, ok := complete(t, 5).IsRegular(); !ok || d != 4 {
		t.Errorf("K5: got (%d,%v), want (4,true)", d, ok)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := complete(t, 6)
	if c := g.CommonNeighbors(0, 1); c != 4 {
		t.Errorf("K6 common(0,1) = %d, want 4", c)
	}
	p := path(t, 5)
	if c := p.CommonNeighbors(0, 2); c != 1 {
		t.Errorf("path common(0,2) = %d, want 1", c)
	}
	if c := p.CommonNeighbors(0, 4); c != 0 {
		t.Errorf("path common(0,4) = %d, want 0", c)
	}
}

func TestBFSPathGraph(t *testing.T) {
	g := path(t, 10)
	dist := g.BFS(0)
	for v := 0; v < 10; v++ {
		if dist[v] != int32(v) {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSWithinCutoff(t *testing.T) {
	g := path(t, 10)
	dist := g.BFSWithin(0, 3)
	if dist[3] != 3 {
		t.Errorf("dist[3] = %d, want 3", dist[3])
	}
	if dist[4] != Unreachable {
		t.Errorf("dist[4] = %d, want Unreachable", dist[4])
	}
}

func TestDistAndDistWithin(t *testing.T) {
	g := cycle(t, 10)
	if d := g.Dist(0, 5); d != 5 {
		t.Errorf("Dist(0,5) = %d, want 5", d)
	}
	if d := g.Dist(0, 7); d != 3 {
		t.Errorf("Dist(0,7) = %d, want 3", d)
	}
	if d := g.DistWithin(0, 5, 4); d != Unreachable {
		t.Errorf("DistWithin(0,5,4) = %d, want Unreachable", d)
	}
	if d := g.DistWithin(0, 5, 5); d != 5 {
		t.Errorf("DistWithin(0,5,5) = %d, want 5", d)
	}
}

func TestDistDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if d := g.Dist(0, 3); d != Unreachable {
		t.Errorf("Dist across components = %d, want Unreachable", d)
	}
	if g.Connected() {
		t.Error("Connected() true for 2-component graph")
	}
	_, cnt := g.Components()
	if cnt != 2 {
		t.Errorf("component count = %d, want 2", cnt)
	}
}

func TestShortestPathValid(t *testing.T) {
	g := cycle(t, 9)
	p := g.ShortestPath(0, 4)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5 vertices", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 4 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("non-edge in path: %d-%d", p[i-1], p[i])
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := path(t, 3)
	p := g.ShortestPath(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := path(t, 7)
	ecc, all := g.Eccentricity(0)
	if !all || ecc != 6 {
		t.Errorf("ecc(0) = %d,%v; want 6,true", ecc, all)
	}
	d, conn := g.DiameterLowerBound(3)
	if !conn || d != 6 {
		t.Errorf("diameter = %d,%v; want 6,true", d, conn)
	}
}

func TestFilterEdges(t *testing.T) {
	g := complete(t, 5)
	h := g.FilterEdges(func(e Edge) bool { return e.U == 0 })
	if h.M() != 4 {
		t.Fatalf("star filter kept %d edges, want 4", h.M())
	}
	if h.N() != g.N() {
		t.Fatal("FilterEdges changed vertex count")
	}
	if !h.IsSubgraphOf(g) {
		t.Fatal("filtered graph not a subgraph")
	}
}

func TestUnion(t *testing.T) {
	a := path(t, 4)
	bld := NewBuilder(4)
	bld.AddEdge(0, 3)
	bld.AddEdge(0, 1) // overlap with path
	b := bld.MustBuild()
	u := Union(a, b)
	if u.M() != 4 {
		t.Fatalf("union has %d edges, want 4", u.M())
	}
	if !a.IsSubgraphOf(u) || !b.IsSubgraphOf(u) {
		t.Fatal("union misses an input edge")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := complete(t, 6)
	keep := []bool{true, false, true, true, false, true} // keep 0,2,3,5
	sub, orig := g.InducedSubgraph(keep)
	if sub.N() != 4 {
		t.Fatalf("n = %d, want 4", sub.N())
	}
	if sub.M() != 6 { // K4
		t.Fatalf("m = %d, want 6", sub.M())
	}
	want := []int32{0, 2, 3, 5}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("origID = %v", orig)
		}
	}
	// Induced edges map back to original edges.
	for _, e := range sub.Edges() {
		if !g.HasEdge(orig[e.U], orig[e.V]) {
			t.Fatalf("induced edge %v not in original", e)
		}
	}
}

func TestInducedSubgraphEmptyAndFull(t *testing.T) {
	g := cycle(t, 5)
	none, _ := g.InducedSubgraph(make([]bool, 5))
	if none.N() != 0 || none.M() != 0 {
		t.Fatal("empty keep not empty")
	}
	all := []bool{true, true, true, true, true}
	full, orig := g.InducedSubgraph(all)
	if full.N() != 5 || full.M() != 5 {
		t.Fatal("full keep changed the graph")
	}
	for i, v := range orig {
		if int32(i) != v {
			t.Fatal("identity mapping broken")
		}
	}
}

func TestInducedSubgraphBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on keep length mismatch")
		}
	}()
	cycle(t, 4).InducedSubgraph([]bool{true})
}

func TestEdgeIndex(t *testing.T) {
	g := cycle(t, 5)
	idx := g.EdgeIndex()
	if len(idx) != g.M() {
		t.Fatalf("index size %d, want %d", len(idx), g.M())
	}
	for i, e := range g.Edges() {
		if idx[e] != i {
			t.Fatalf("index[%v] = %d, want %d", e, idx[e], i)
		}
	}
}

func TestBFSScratchMatchesBFS(t *testing.T) {
	r := rng.New(7)
	g := randomGraph(r, 60, 150)
	s := NewBFSScratch(g.N())
	for trial := 0; trial < 200; trial++ {
		u := int32(r.Intn(g.N()))
		v := int32(r.Intn(g.N()))
		want := g.Dist(u, v)
		got := s.DistWithin(g, u, v, -1)
		if got != want {
			t.Fatalf("scratch dist(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestBFSScratchLimit(t *testing.T) {
	g := path(t, 12)
	s := NewBFSScratch(g.N())
	if d := s.DistWithin(g, 0, 4, 3); d != Unreachable {
		t.Errorf("limited dist = %d, want Unreachable", d)
	}
	if d := s.DistWithin(g, 0, 3, 3); d != 3 {
		t.Errorf("limited dist = %d, want 3", d)
	}
}

func TestPathWithin(t *testing.T) {
	g := cycle(t, 8)
	s := NewBFSScratch(g.N())
	parent := make([]int32, g.N())
	p := s.PathWithin(g, 0, 3, 3, parent)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("PathWithin = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("non-edge in path %v", p)
		}
	}
	if p2 := s.PathWithin(g, 0, 4, 3, parent); p2 != nil {
		t.Fatalf("PathWithin beyond limit returned %v", p2)
	}
}

// randomGraph builds a random simple graph with up to m attempted edges.
func randomGraph(r *rng.RNG, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.BuildDedup()
}

func TestParallelRangeCoversAll(t *testing.T) {
	n := 1000
	hit := make([]bool, n)
	ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i] = true
		}
	})
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestParallelForEachEdge(t *testing.T) {
	g := complete(t, 12)
	seen := make([]int32, g.M())
	g.ParallelForEachEdge(func(i int, e Edge) {
		seen[i] = e.U + e.V
	})
	for i, e := range g.Edges() {
		if seen[i] != e.U+e.V {
			t.Fatalf("edge %d not processed correctly", i)
		}
	}
}

// Property: HasEdge agrees with a brute-force adjacency map on random graphs.
func TestPropertyHasEdgeAgainstMap(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, 3*n)
		want := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			want[[2]int32{e.U, e.V}] = true
		}
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				has := g.HasEdge(u, v)
				key := [2]int32{u, v}
				if u > v {
					key = [2]int32{v, u}
				}
				if has != (u != v && want[key]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sums to 2m and Neighbors is symmetric.
func TestPropertyDegreeSymmetry(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		g := randomGraph(r, n, 4*n)
		sum := 0
		for v := int32(0); v < int32(n); v++ {
			sum += g.Degree(v)
			for _, w := range g.Neighbors(v) {
				if !g.HasEdge(w, v) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle condition |d(u)-d(v)| <= 1
// across every edge, and d is 0 exactly at the source.
func TestPropertyBFSIsMetric(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(60)
		g := randomGraph(r, n, 3*n)
		src := int32(r.Intn(n))
		dist := g.BFS(src)
		if dist[src] != 0 {
			return false
		}
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if (du == Unreachable) != (dv == Unreachable) {
				return false
			}
			if du != Unreachable {
				diff := du - dv
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSCycle(b *testing.B) {
	bld := NewBuilder(4096)
	for i := 0; i < 4096; i++ {
		bld.AddEdge(int32(i), int32((i+1)%4096))
	}
	g := bld.MustBuild()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(0)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	r := rng.New(1)
	g := randomGraph(r, 2000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int32(i%2000), int32((i*7)%2000))
	}
}

func TestGirthKnownGraphs(t *testing.T) {
	if g := complete(t, 4).Girth(); g != 3 {
		t.Fatalf("K4 girth %d, want 3", g)
	}
	if g := cycle(t, 9).Girth(); g != 9 {
		t.Fatalf("C9 girth %d, want 9", g)
	}
	if g := path(t, 6).Girth(); g != Unreachable {
		t.Fatalf("path girth %d, want -1", g)
	}
	// Petersen graph: girth 5.
	b := NewBuilder(10)
	outer := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int32{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	for _, e := range outer {
		b.AddEdge(e[0], e[1])
	}
	for _, e := range inner {
		b.AddEdge(e[0], e[1])
	}
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, i+5)
	}
	if g := b.MustBuild().Girth(); g != 5 {
		t.Fatalf("Petersen girth %d, want 5", g)
	}
	// Hypercube Q3: girth 4.
	hb := NewBuilder(8)
	for v := 0; v < 8; v++ {
		for bit := 0; bit < 3; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				hb.AddEdge(int32(v), int32(w))
			}
		}
	}
	if g := hb.MustBuild().Girth(); g != 4 {
		t.Fatalf("Q3 girth %d, want 4", g)
	}
}
