// Package graph implements the undirected simple-graph substrate used by
// every other package in this repository.
//
// Graphs are stored in a compact CSR-like layout: a single []int32 neighbor
// arena plus per-vertex offsets, with each adjacency list sorted so that
// HasEdge is a binary search and set operations over neighborhoods (common
// neighbor counting, the hot loop of Algorithm 1's supported-edge census)
// are linear merges. Graphs are immutable after construction; builders and
// filters produce new graphs.
//
// Vertex ids are dense ints in [0, N). Edges are unordered pairs; the Edges
// slice lists each edge once with U < V.
//
// The package also hosts the worker-pool evaluation kernels the measurement
// layers build on (parallel.go, bitbfs.go): ParallelBFSFrom /
// ParallelBFSSweep for scalar multi-source BFS with per-worker reusable
// scratch, BitBFS and its BitParallelBFS* drivers advancing 64 sources per
// adjacency walk into row-major FlatDist tables, the adaptive
// MultiSourceBFSFrom / MultiSourceBFSSweep dispatchers that pick between
// the two by graph density alone, ParallelEdgeSweep for per-edge work, and
// ParallelRangeWorkers as the generic chunked loop. All of them honor one
// determinism contract — for a fixed input, results are identical for
// every worker count — which is what lets the experiment harness
// (internal/experiments), spanner validation (internal/spanner), and
// congestion accounting (internal/routing) parallelize without perturbing
// reported numbers. See DESIGN.md §9 and §12.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge with U < V after normalization.
type Edge struct {
	U, V int32
}

// Normalize returns the edge with endpoints ordered U < V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e different from v. It panics if v is not
// an endpoint of e.
func (e Edge) Other(v int32) int32 {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of edge %v", v, e))
}

// Graph is an immutable undirected simple graph.
type Graph struct {
	n     int
	m     int
	off   []int32 // len n+1; adjacency of v is adj[off[v]:off[v+1]]
	adj   []int32 // sorted within each vertex's window
	edges []Edge  // each edge once, U < V, sorted lexicographically
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether {u, v} is an edge. Self-queries return false.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	// Search the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Edges returns all edges, each once with U < V, sorted lexicographically.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.n); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := int32(1); v < int32(g.n); v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// IsRegular reports whether every vertex has the same degree, and if so,
// that degree.
func (g *Graph) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for v := int32(1); v < int32(g.n); v++ {
		if g.Degree(v) != d {
			return 0, false
		}
	}
	return d, true
}

// CommonNeighbors counts |N(u) ∩ N(v)| by merging the two sorted lists.
// This is the inner kernel of the supported-edge census (Section 4).
func (g *Graph) CommonNeighbors(u, v int32) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.m)
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are rejected at Build time (the substrate is simple
// graphs only, matching the paper's setting).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Order does not matter.
func (b *Builder) AddEdge(u, v int32) {
	if err := b.AddEdgeErr(u, v); err != nil {
		panic(err.Error())
	}
}

// AddEdgeErr is AddEdge with the validation reported as an error instead
// of a panic — the seam for layers fed by untrusted input (the graphio
// reader, fuzz harnesses), which must reject a bad edge without tearing
// down the process.
func (b *Builder) AddEdgeErr(u, v int32) error {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	b.edges = append(b.edges, Edge{u, v}.Normalize())
	return nil
}

// TryAddEdge adds {u,v} unless it is a self-loop, returning whether it was
// added. Duplicates are still deduplicated at Build time by Dedup builders;
// plain Build rejects them.
func (b *Builder) TryAddEdge(u, v int32) bool {
	if u == v {
		return false
	}
	b.AddEdge(u, v)
	return true
}

// Len returns the number of edges recorded so far (before deduplication).
func (b *Builder) Len() int { return len(b.edges) }

// N returns the vertex count the builder was created with.
func (b *Builder) N() int { return b.n }

// Build finalizes the graph. It returns an error if a duplicate edge was
// added.
func (b *Builder) Build() (*Graph, error) {
	sortEdges(b.edges)
	for i := 1; i < len(b.edges); i++ {
		if b.edges[i] == b.edges[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", b.edges[i].U, b.edges[i].V)
		}
	}
	return fromSortedEdges(b.n, b.edges), nil
}

// BuildDedup finalizes the graph, silently collapsing duplicate edges.
// Generators that may propose the same edge twice (e.g. the configuration
// model before repair) use this.
func (b *Builder) BuildDedup() *Graph {
	sortEdges(b.edges)
	out := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			out = append(out, e)
		}
	}
	return fromSortedEdges(b.n, out)
}

// MustBuild is Build that panics on error; for tests and generators whose
// edge sets are duplicate-free by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph from an edge list (deduplicated, self-loops
// rejected with a panic).
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.BuildDedup()
}

// fromSortedEdges builds the CSR arrays from a sorted, deduplicated edge
// list. The slice is retained by the graph.
func fromSortedEdges(n int, edges []Edge) *Graph {
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	off := deg
	adj := make([]int32, 2*len(edges))
	cursor := make([]int32, n)
	for i := range cursor {
		cursor[i] = off[i]
	}
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{n: n, m: len(edges), off: off, adj: adj, edges: edges}
	// Edges were sorted lexicographically, so each adjacency window was
	// filled in increasing neighbor order for the U side but interleaved for
	// the V side; sort each window to restore the invariant.
	for v := 0; v < n; v++ {
		w := adj[off[v]:off[v+1]]
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	}
	return g
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// FilterEdges returns the spanning subgraph of g containing exactly the
// edges for which keep returns true. The vertex set is unchanged, matching
// the paper's definition of a spanner graph (V(H) = V(G), E(H) ⊆ E(G)).
func (g *Graph) FilterEdges(keep func(Edge) bool) *Graph {
	kept := make([]Edge, 0, g.m)
	for _, e := range g.edges {
		if keep(e) {
			kept = append(kept, e)
		}
	}
	return fromSortedEdges(g.n, kept)
}

// Union returns the spanning subgraph of the complete graph on g.N()
// vertices whose edge set is the union of g's and h's edges. Both graphs
// must have the same vertex count.
func Union(g, h *Graph) *Graph {
	if g.n != h.n {
		panic("graph: Union over different vertex counts")
	}
	edges := make([]Edge, 0, g.m+h.m)
	edges = append(edges, g.edges...)
	edges = append(edges, h.edges...)
	return FromEdges(g.n, edges)
}

// IsSubgraphOf reports whether every edge of g is an edge of h.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for _, e := range g.edges {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced by the vertices with
// keep[v] == true, together with the mapping from new ids to original ids
// (new id i corresponds to original vertex origID[i]). Edges with either
// endpoint dropped disappear. len(keep) must equal N().
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int32) {
	if len(keep) != g.n {
		panic("graph: InducedSubgraph keep length mismatch")
	}
	newID := make([]int32, g.n)
	origID := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			newID[v] = int32(len(origID))
			origID = append(origID, int32(v))
		} else {
			newID[v] = -1
		}
	}
	edges := make([]Edge, 0, g.m)
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			edges = append(edges, Edge{U: newID[e.U], V: newID[e.V]}.Normalize())
		}
	}
	sortEdges(edges)
	return fromSortedEdges(len(origID), edges), origID
}

// EdgeIndex builds a map from normalized edge to its index in Edges().
// Useful for per-edge bookkeeping keyed by position.
func (g *Graph) EdgeIndex() map[Edge]int {
	idx := make(map[Edge]int, g.m)
	for i, e := range g.edges {
		idx[e] = i
	}
	return idx
}
