package graph

import (
	"reflect"
	"testing"
)

// starGraph returns a star with center 0 and leaves 1..n-1.
func starGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.BuildDedup()
}

// The depth-limited bfsInto must stop scanning the queue at the first
// vertex at the limit level: queue distances are monotone, so everything
// after it is at or past the limit too. Before the fix the loop
// `continue`d through every remaining queued vertex, scanning all n
// entries; with the break it scans exactly 2 (center + first leaf).
func TestBFSIntoBreaksAtLimitLevel(t *testing.T) {
	const n = 1000
	g := starGraph(n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	scanned := g.bfsInto(0, 1, dist, nil)
	if scanned > 2 {
		t.Fatalf("limit-1 BFS on a %d-leaf star scanned %d queue entries, want <= 2", n-1, scanned)
	}
	// Distances must still be the full limit-1 ball.
	if dist[0] != 0 {
		t.Fatalf("dist[0] = %d, want 0", dist[0])
	}
	for v := 1; v < n; v++ {
		if dist[v] != 1 {
			t.Fatalf("dist[%d] = %d, want 1", v, dist[v])
		}
	}

	// Unlimited BFS still scans the whole component.
	for i := range dist {
		dist[i] = Unreachable
	}
	if scanned := g.bfsInto(0, -1, dist, nil); scanned != n {
		t.Fatalf("unlimited BFS scanned %d entries, want %d", scanned, n)
	}
}

// BFSWithin must agree with BFS restricted to the limit ball — the break
// must not drop vertices at exactly the limit level.
func TestBFSWithinMatchesTruncatedBFS(t *testing.T) {
	g := randomKernelGraph(150, 500, 33)
	full := g.BFS(7)
	for _, limit := range []int32{0, 1, 2, 3} {
		got := g.BFSWithin(7, limit)
		for v := range full {
			want := full[v]
			if want > limit {
				want = Unreachable
			}
			if got[v] != want {
				t.Fatalf("limit %d vertex %d: got %d want %d", limit, v, got[v], want)
			}
		}
	}
}

// Regression for the PathWithin capacity panic: limit == -1 used to size
// the path slice with capacity limit+1 == 0 (harmless but undersized), and
// any other negative "unlimited" limit panicked with a negative capacity.
func TestPathWithinUnlimitedReconstruction(t *testing.T) {
	// Path graph 0-1-...-9: the unique shortest path has 10 vertices.
	n := 10
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.BuildDedup()
	s := NewBFSScratch(n)
	parent := make([]int32, n)
	want := make([]int32, n)
	for i := range want {
		want[i] = int32(i)
	}
	for _, limit := range []int32{-1, -5, int32(n)} {
		got := s.PathWithin(g, 0, int32(n-1), limit, parent)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("limit %d: path %v, want %v", limit, got, want)
		}
	}
	// Too-tight limit: no path.
	if got := s.PathWithin(g, 0, int32(n-1), 3, parent); got != nil {
		t.Fatalf("limit 3: path %v, want nil", got)
	}
	// Disconnected target: nil even unlimited.
	b2 := NewBuilder(3)
	b2.AddEdge(0, 1)
	g2 := b2.BuildDedup()
	s2 := NewBFSScratch(3)
	if got := s2.PathWithin(g2, 0, 2, -1, make([]int32, 3)); got != nil {
		t.Fatalf("disconnected: path %v, want nil", got)
	}
}
