package graph

// Unreachable is the distance value reported for vertices not connected to
// the BFS source.
const Unreachable = int32(-1)

// BFS computes hop distances from src to every vertex. Unreachable vertices
// get Unreachable. The returned slice has length g.N().
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(src, -1, dist, nil)
	return dist
}

// BFSWithin computes hop distances from src but abandons vertices farther
// than limit hops; those report Unreachable. limit < 0 means no limit.
func (g *Graph) BFSWithin(src int32, limit int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(src, limit, dist, nil)
	return dist
}

// bfsInto runs BFS from src into dist (which must be pre-filled with
// Unreachable). If parent is non-nil it records BFS-tree parents (parent of
// src is src). Vertices beyond limit hops are not explored when limit >= 0.
// The queue is reused storage allocated per call; for bulk workloads use
// NewBFSScratch. It returns the number of queue entries scanned — the
// work-counting seam the depth-limit test pins the early break on.
func (g *Graph) bfsInto(src, limit int32, dist, parent []int32) int {
	queue := make([]int32, 0, 64)
	queue = append(queue, src)
	dist[src] = 0
	if parent != nil {
		parent[src] = src
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		if limit >= 0 && dv >= limit {
			// Queue distances are monotone non-decreasing, so every later
			// entry is at or beyond the limit level too: stop instead of
			// scanning the rest of the queue one by one.
			return head + 1
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				if parent != nil {
					parent[w] = v
				}
				queue = append(queue, w)
			}
		}
	}
	return len(queue)
}

// Dist returns the hop distance between u and v, or Unreachable if they are
// in different components. It runs a plain unidirectional BFS from u that
// exits as soon as v is discovered; callers that need the bidirectional
// machinery (meet-in-the-middle frontiers) use the oracle's bounded
// bidirectional search, which carries its own scratch.
func (g *Graph) Dist(u, v int32) int32 {
	if u == v {
		return 0
	}
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := []int32{u}
	dist[u] = 0
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.Neighbors(x) {
			if dist[w] == Unreachable {
				dist[w] = dist[x] + 1
				if w == v {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return Unreachable
}

// DistWithin returns the hop distance between u and v if it is at most
// limit, and Unreachable otherwise. This is the primitive behind 3-detour
// existence checks (is dist_{G'}(u,v) <= 3 after removing edge (u,v)?).
func (g *Graph) DistWithin(u, v, limit int32) int32 {
	if u == v {
		return 0
	}
	if limit <= 0 {
		return Unreachable
	}
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := []int32{u}
	dist[u] = 0
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		if dist[x] >= limit {
			break
		}
		for _, w := range g.Neighbors(x) {
			if dist[w] == Unreachable {
				dist[w] = dist[x] + 1
				if w == v {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return Unreachable
}

// ShortestPath returns one shortest u–v path as a vertex sequence
// (inclusive of both endpoints), or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int32) []int32 {
	if u == v {
		return []int32{u}
	}
	dist := make([]int32, g.n)
	parent := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.bfsInto(u, -1, dist, parent)
	if dist[v] == Unreachable {
		return nil
	}
	path := make([]int32, 0, dist[v]+1)
	for x := v; ; x = parent[x] {
		path = append(path, x)
		if x == u {
			break
		}
	}
	// Reverse in place so the path runs u -> v.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// vertex, plus whether all vertices were reachable.
func (g *Graph) Eccentricity(v int32) (int32, bool) {
	dist := g.BFS(v)
	ecc := int32(0)
	all := true
	for _, d := range dist {
		if d == Unreachable {
			all = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, all
}

// DiameterLowerBound estimates the diameter with a double-sweep: BFS from
// src, then BFS from the farthest vertex found. The result is an exact
// diameter on trees and a lower bound in general; it also reports whether
// the graph was connected from src's component point of view.
func (g *Graph) DiameterLowerBound(src int32) (int32, bool) {
	dist := g.BFS(src)
	far, fd := src, int32(0)
	conn := true
	for v, d := range dist {
		if d == Unreachable {
			conn = false
			continue
		}
		if d > fd {
			fd = d
			far = int32(v)
		}
	}
	ecc, _ := g.Eccentricity(far)
	return ecc, conn
}

// Girth returns the length of the shortest cycle, or -1 for forests.
// O(n·m) BFS from every vertex; sized for analysis of spanner outputs
// (the Erdős girth conjecture ties spanner size lower bounds to girth:
// an α-spanner contains no cycle of length ≤ α+1 created by a removed
// chord, and the greedy α-spanner has girth > α+1).
func (g *Graph) Girth() int32 {
	best := Unreachable
	dist := make([]int32, g.n)
	parent := make([]int32, g.n)
	queue := make([]int32, 0, 64)
	for src := int32(0); src < int32(g.n); src++ {
		for i := range dist {
			dist[i] = Unreachable
		}
		queue = queue[:0]
		queue = append(queue, src)
		dist[src] = 0
		parent[src] = -1
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if best != Unreachable && 2*dist[v] >= best {
				break // no shorter cycle through src can be found
			}
			for _, w := range g.Neighbors(v) {
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else if parent[v] != w {
					// Non-tree edge closes a cycle through src of length
					// dist[v] + dist[w] + 1 (a lower bound that is exact
					// for the girth when minimized over all sources).
					c := dist[v] + dist[w] + 1
					if best == Unreachable || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// Connected reports whether the graph is connected (the empty graph and
// single-vertex graph are connected).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns a component id per vertex and the component count.
// Ids are dense in [0, count) in order of first-seen vertex.
func (g *Graph) Components() ([]int32, int) {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, 64)
	for s := int32(0); s < int32(g.n); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if comp[w] == -1 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, int(next)
}
