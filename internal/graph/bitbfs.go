package graph

import (
	"fmt"
	"math/bits"
	"sync"
)

// bitGroup is the number of sources one BitBFS pass advances: one bit per
// source in a machine word.
const bitGroup = 64

// BitBFS is the bit-parallel multi-source BFS kernel: it advances up to 64
// sources per pass, one bit per source packed into a uint64 per vertex.
//
// Layout (word-major): frontier[v], next[v], and visited[v] each hold one
// word for vertex v whose bit j means "source j's search has reached v".
// One sweep over the CSR adjacency then advances all 64 searches at once —
// for every frontier vertex v, OR frontier[v] into next[w] for each
// neighbor w — so the per-level cost is one graph scan regardless of how
// many of the 64 sources are still active. A commit pass turns newly set
// bits into distance entries.
//
// A BitBFS serves one goroutine at a time; the parallel drivers give each
// worker its own instance from an internal pool.
type BitBFS struct {
	n        int
	frontier []uint64
	next     []uint64
	visited  []uint64
	rows     [][]int32 // per-run row cache, avoids Row() math in the hot loop
}

// NewBitBFS allocates scratch for graphs with n vertices.
func NewBitBFS(n int) *BitBFS {
	return &BitBFS{
		n:        n,
		frontier: make([]uint64, n),
		next:     make([]uint64, n),
		visited:  make([]uint64, n),
		rows:     make([][]int32, 0, bitGroup),
	}
}

// Run executes BFS from up to 64 sources simultaneously on g, writing hop
// distances into out rows [row, row+len(sources)): out.Row(row+j) becomes
// g.BFS(sources[j]) element for element (Unreachable for vertices source j
// cannot reach). Duplicate sources are allowed and produce identical rows.
//
// The result is a pure function of (g, sources), which is what lets the
// parallel drivers above it keep the byte-identical-at-any-worker-count
// determinism contract.
func (b *BitBFS) Run(g *Graph, sources []int32, out *FlatDist, row int) {
	k := len(sources)
	if k == 0 {
		return
	}
	if k > bitGroup {
		panic(fmt.Sprintf("graph: BitBFS.Run with %d sources > %d", k, bitGroup))
	}
	if g.n != b.n {
		panic(fmt.Sprintf("graph: BitBFS sized for n=%d run on n=%d", b.n, g.n))
	}
	for i := range b.frontier {
		b.frontier[i] = 0
		b.next[i] = 0
		b.visited[i] = 0
	}
	rows := b.rows[:0]
	for j, s := range sources {
		r := out.Row(row + j)
		for i := range r {
			r[i] = Unreachable
		}
		r[s] = 0
		rows = append(rows, r)
		bit := uint64(1) << uint(j)
		b.frontier[s] |= bit
		b.visited[s] |= bit
	}
	for level := int32(1); ; level++ {
		// Scatter: one sweep over the adjacency of the current frontier
		// advances every search whose bit is set.
		for v := int32(0); v < int32(g.n); v++ {
			fv := b.frontier[v]
			if fv == 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				b.next[w] |= fv
			}
		}
		// Commit: newly reached (vertex, source) bits become distances and
		// form the next frontier.
		active := false
		for v := range b.next {
			nv := b.next[v] &^ b.visited[v]
			b.next[v] = 0
			b.frontier[v] = nv
			if nv == 0 {
				continue
			}
			b.visited[v] |= nv
			active = true
			for rem := nv; rem != 0; rem &= rem - 1 {
				rows[bits.TrailingZeros64(rem)][v] = level
			}
		}
		if !active {
			return
		}
	}
}

// bitBFSPool recycles BitBFS scratch (and block tables for the sweep
// driver) across kernel invocations so steady-state multi-source sweeps
// allocate nothing. Entries sized for a different n are discarded.
var bitBFSPool sync.Pool

type bitScratch struct {
	bfs   *BitBFS
	block *FlatDist // sweep-driver group table, bitGroup rows max
}

func getBitScratch(n int) *bitScratch {
	if s, ok := bitBFSPool.Get().(*bitScratch); ok && s.bfs.n == n {
		return s
	}
	return &bitScratch{bfs: NewBitBFS(n), block: NewFlatDist(0, n)}
}

func putBitScratch(s *bitScratch) { bitBFSPool.Put(s) }

// BitParallelBFSFrom computes BFS distances from every source through the
// bit-parallel kernel on a pool of `workers` goroutines (0 means
// Workers()) and returns the flat distance table: row i equals
// g.BFS(sources[i]) element for element. Sources are processed in groups
// of 64 (one machine word per group), groups are distributed over the
// pool, and each group writes only its own rows, so the table is
// byte-identical for every worker count.
func (g *Graph) BitParallelBFSFrom(sources []int32, workers int) *FlatDist {
	out := NewFlatDist(len(sources), g.n)
	g.BitParallelBFSInto(sources, workers, out)
	return out
}

// BitParallelBFSInto is BitParallelBFSFrom writing into a caller-owned
// table (Reset to len(sources)×g.N()) so steady-state sweeps reuse one
// slab instead of reallocating per call.
func (g *Graph) BitParallelBFSInto(sources []int32, workers int, out *FlatDist) {
	if out.Rows() != len(sources) || out.N() != g.n {
		panic(fmt.Sprintf("graph: BitParallelBFSInto table is %dx%d, want %dx%d",
			out.Rows(), out.N(), len(sources), g.n))
	}
	groups := (len(sources) + bitGroup - 1) / bitGroup
	ParallelRangeWorkers(groups, workers, func(w, lo, hi int) {
		s := getBitScratch(g.n)
		for gi := lo; gi < hi; gi++ {
			start := gi * bitGroup
			end := start + bitGroup
			if end > len(sources) {
				end = len(sources)
			}
			s.bfs.Run(g, sources[start:end], out, start)
		}
		putBitScratch(s)
	})
}

// BitParallelBFSSweep is the streaming form of BitParallelBFSFrom: it
// computes each source's distances in 64-source groups and hands every
// completed row to visit(i, src, dist), where i is the source's index.
// The dist slice is per-worker group scratch reused for later groups —
// visit must not retain it. visit is called once per source, never
// concurrently for the same index, and must write results only into
// per-index slots (the determinism contract of ParallelBFSSweep, which
// shares this signature).
func (g *Graph) BitParallelBFSSweep(sources []int32, workers int, visit func(i int, src int32, dist []int32)) {
	groups := (len(sources) + bitGroup - 1) / bitGroup
	ParallelRangeWorkers(groups, workers, func(w, lo, hi int) {
		s := getBitScratch(g.n)
		for gi := lo; gi < hi; gi++ {
			start := gi * bitGroup
			end := start + bitGroup
			if end > len(sources) {
				end = len(sources)
			}
			s.block.Reset(end-start, g.n)
			s.bfs.Run(g, sources[start:end], s.block, 0)
			for i := start; i < end; i++ {
				visit(i, sources[i], s.block.Row(i-start))
			}
		}
		putBitScratch(s)
	})
}

// bitParallelProfitable is the kernel-choice heuristic behind the
// MultiSource* entry points. The bit-parallel kernel wins when searches
// share levels — dense, small-diameter graphs — because one adjacency
// sweep then advances 64 searches that would each have scanned the graph
// alone. On sparse, high-diameter graphs (paths, trees) its per-level
// commit pass over all n vertices makes a full 64-source group cost
// O(diameter·n) words, which loses to 64 cheap scalar BFS runs; average
// degree ≥ 8 is the cheap proxy separating the regimes. The choice
// depends only on the graph and the source count, never on the worker
// count, so it cannot perturb the determinism contract.
func (g *Graph) bitParallelProfitable(k int) bool {
	return k >= 2 && g.m >= 4*g.n && g.m >= 64
}

// MultiSourceBFSFrom computes one distance row per source, choosing
// between the scalar per-source kernel (ParallelBFSFrom) and the
// bit-parallel kernel (BitParallelBFSFrom) by the density heuristic
// above. Both kernels produce identical tables; only the cost differs.
func (g *Graph) MultiSourceBFSFrom(sources []int32, workers int) *FlatDist {
	if g.bitParallelProfitable(len(sources)) {
		return g.BitParallelBFSFrom(sources, workers)
	}
	return g.ParallelBFSFrom(sources, workers)
}

// MultiSourceBFSSweep streams one distance row per source to visit,
// choosing the kernel like MultiSourceBFSFrom. The visit contract is that
// of ParallelBFSSweep / BitParallelBFSSweep (shared signature).
func (g *Graph) MultiSourceBFSSweep(sources []int32, workers int, visit func(i int, src int32, dist []int32)) {
	if g.bitParallelProfitable(len(sources)) {
		g.BitParallelBFSSweep(sources, workers, visit)
		return
	}
	g.ParallelBFSSweep(sources, workers, visit)
}
