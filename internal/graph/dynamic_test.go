package graph

import (
	"testing"

	"repro/internal/rng"
)

func dynTestBase() *Graph {
	// A 12-vertex graph with a mix of degrees: an 8-cycle with two chords
	// plus a 4-vertex tail.
	b := NewBuilder(12)
	for v := int32(0); v < 8; v++ {
		b.AddEdge(v, (v+1)%8)
	}
	b.AddEdge(0, 4)
	b.AddEdge(1, 5)
	b.AddEdge(7, 8)
	b.AddEdge(8, 9)
	b.AddEdge(9, 10)
	b.AddEdge(10, 11)
	return b.MustBuild()
}

func TestDynGraphMutationsAgainstReference(t *testing.T) {
	base := dynTestBase()
	d := NewDynGraph(base)
	ref := make(map[Edge]bool)
	for _, e := range base.Edges() {
		ref[e] = true
	}
	r := rng.New(42)
	wantSeq := uint64(0)
	for step := 0; step < 2000; step++ {
		u, v := int32(r.Intn(12)), int32(r.Intn(12))
		if u == v {
			continue
		}
		e := Edge{U: u, V: v}.Normalize()
		if r.Bernoulli(0.5) {
			applied, err := d.Insert(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if applied != !ref[e] {
				t.Fatalf("step %d: Insert%v applied=%v with present=%v", step, e, applied, ref[e])
			}
			if applied {
				wantSeq++
				ref[e] = true
			}
		} else {
			applied, err := d.Delete(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if applied != ref[e] {
				t.Fatalf("step %d: Delete%v applied=%v with present=%v", step, e, applied, ref[e])
			}
			if applied {
				wantSeq++
				delete(ref, e)
			}
		}
	}
	if d.Seq() != wantSeq {
		t.Fatalf("Seq = %d, want %d", d.Seq(), wantSeq)
	}
	if d.M() != len(ref) {
		t.Fatalf("M = %d, reference has %d edges", d.M(), len(ref))
	}
	for u := int32(0); u < 12; u++ {
		for v := int32(0); v < 12; v++ {
			if d.HasEdge(u, v) != ref[Edge{U: u, V: v}.Normalize()] && u != v {
				t.Fatalf("HasEdge(%d,%d) = %v disagrees with reference", u, v, d.HasEdge(u, v))
			}
		}
	}
}

// Snapshot must be canonical: equal edge sets snapshot identically
// regardless of mutation history, and the snapshot round-trips.
func TestDynGraphSnapshotCanonical(t *testing.T) {
	base := dynTestBase()
	d := NewDynGraph(base)
	if _, err := d.Insert(3, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(3, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.N() != base.N() || snap.M() != base.M() {
		t.Fatalf("round-trip snapshot is %v, want %v", snap, base)
	}
	be, se := base.Edges(), snap.Edges()
	for i := range be {
		if be[i] != se[i] {
			t.Fatalf("edge %d: %v != %v after a no-op mutation cycle", i, se[i], be[i])
		}
	}
	for v := int32(0); v < int32(snap.N()); v++ {
		bn, sn := base.Neighbors(v), snap.Neighbors(v)
		if len(bn) != len(sn) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(sn), len(bn))
		}
		for i := range bn {
			if bn[i] != sn[i] {
				t.Fatalf("vertex %d adjacency differs at %d", v, i)
			}
		}
	}
	// Mutating the DynGraph must not alias the snapshot or the base.
	if _, err := d.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if !snap.HasEdge(0, 1) || !base.HasEdge(0, 1) {
		t.Fatal("mutation after Snapshot leaked into immutable graphs")
	}
}

func TestDynGraphRejectsBadEndpoints(t *testing.T) {
	d := NewDynGraph(dynTestBase())
	for _, pair := range [][2]int32{{-1, 0}, {0, 12}, {5, 5}} {
		if _, err := d.Insert(pair[0], pair[1]); err == nil {
			t.Errorf("Insert(%d,%d) accepted", pair[0], pair[1])
		}
		if _, err := d.Delete(pair[0], pair[1]); err == nil {
			t.Errorf("Delete(%d,%d) accepted", pair[0], pair[1])
		}
	}
	if d.Seq() != 0 {
		t.Fatalf("rejected updates advanced Seq to %d", d.Seq())
	}
}
