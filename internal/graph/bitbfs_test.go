package graph

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// expectRowsMatchBFS asserts that table row i equals g.BFS(sources[i]) for
// every source.
func expectRowsMatchBFS(t *testing.T, g *Graph, sources []int32, table *FlatDist, label string) {
	t.Helper()
	if table.Rows() != len(sources) || table.N() != g.N() {
		t.Fatalf("%s: table is %dx%d, want %dx%d",
			label, table.Rows(), table.N(), len(sources), g.N())
	}
	for i, s := range sources {
		want := g.BFS(s)
		if !reflect.DeepEqual(table.Row(i), want) {
			t.Fatalf("%s: row %d (source %d) differs from serial BFS\n got %v\nwant %v",
				label, i, s, table.Row(i), want)
		}
	}
}

func TestBitBFSRunMatchesSerialBFS(t *testing.T) {
	g := randomKernelGraph(300, 1200, 17)
	r := rng.New(4)
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(r.Intn(g.N()))
	}
	table := NewFlatDist(len(sources), g.N())
	NewBitBFS(g.N()).Run(g, sources, table, 0)
	expectRowsMatchBFS(t, g, sources, table, "full 64-source group")

	// Partial group, reusing the same scratch (state must fully reset).
	small := []int32{0, int32(g.N() - 1), 5}
	table.Reset(len(small), g.N())
	bb := NewBitBFS(g.N())
	bb.Run(g, []int32{1}, NewFlatDist(1, g.N()), 0) // dirty the scratch first
	bb.Run(g, small, table, 0)
	expectRowsMatchBFS(t, g, small, table, "partial group after reuse")
}

func TestBitBFSDuplicateSourcesProduceIdenticalRows(t *testing.T) {
	g := randomKernelGraph(100, 400, 23)
	sources := []int32{7, 7, 42, 7}
	table := NewFlatDist(len(sources), g.N())
	NewBitBFS(g.N()).Run(g, sources, table, 0)
	expectRowsMatchBFS(t, g, sources, table, "duplicate sources")
	if !reflect.DeepEqual(table.Row(0), table.Row(1)) || !reflect.DeepEqual(table.Row(0), table.Row(3)) {
		t.Fatal("duplicate sources produced different rows")
	}
}

func TestBitBFSDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles {0,1,2} and {3,4,5} plus an isolated vertex 6.
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	g := b.BuildDedup()
	sources := []int32{0, 3, 6}
	table := NewFlatDist(len(sources), g.N())
	NewBitBFS(g.N()).Run(g, sources, table, 0)
	expectRowsMatchBFS(t, g, sources, table, "disconnected")
	if d := table.At(0, 4); d != Unreachable {
		t.Fatalf("cross-component distance = %d, want Unreachable", d)
	}
	if d := table.At(2, 2); d != Unreachable {
		t.Fatalf("isolated-source distance to 2 = %d, want Unreachable", d)
	}
}

func TestBitParallelBFSFromMultiGroupAcrossWorkers(t *testing.T) {
	g := randomKernelGraph(250, 1000, 31)
	r := rng.New(9)
	// 150 sources: two full 64-source words plus a 22-source tail group.
	sources := make([]int32, 150)
	for i := range sources {
		sources[i] = int32(r.Intn(g.N()))
	}
	want := g.BitParallelBFSFrom(sources, 1)
	expectRowsMatchBFS(t, g, sources, want, "workers=1")
	for _, workers := range []int{0, 2, 4, 9} {
		got := g.BitParallelBFSFrom(sources, workers)
		if !reflect.DeepEqual(got.Data(), want.Data()) {
			t.Fatalf("workers=%d: bit-parallel table differs from workers=1", workers)
		}
	}
}

func TestBitParallelBFSIntoReusesTable(t *testing.T) {
	g := randomKernelGraph(80, 320, 41)
	sources := []int32{1, 2, 3, 70}
	table := NewFlatDist(len(sources), g.N())
	g.BitParallelBFSInto(sources, 2, table)
	expectRowsMatchBFS(t, g, sources, table, "first fill")
	// Reuse the same slab for a different source set.
	sources2 := []int32{79, 0}
	table.Reset(len(sources2), g.N())
	g.BitParallelBFSInto(sources2, 1, table)
	expectRowsMatchBFS(t, g, sources2, table, "after Reset reuse")

	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched table did not panic")
		}
	}()
	g.BitParallelBFSInto(sources, 1, table) // wrong row count now
}

func TestBitParallelBFSSweepMatchesSerialAcrossWorkers(t *testing.T) {
	g := randomKernelGraph(180, 800, 51)
	r := rng.New(12)
	sources := make([]int32, 100) // crosses a group boundary
	for i := range sources {
		sources[i] = int32(r.Intn(g.N()))
	}
	want := make([][]int32, len(sources))
	for i, s := range sources {
		want[i] = g.BFS(s)
	}
	for _, workers := range []int{1, 2, 5} {
		got := make([][]int32, len(sources))
		g.BitParallelBFSSweep(sources, workers, func(i int, src int32, dist []int32) {
			if src != sources[i] {
				t.Errorf("index %d: got source %d, want %d", i, src, sources[i])
			}
			got[i] = append([]int32(nil), dist...)
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: bit-parallel sweep differs from serial BFS", workers)
		}
	}
}

func TestBitBFSEmptyAndTinyGraphs(t *testing.T) {
	// Zero sources: no-op.
	g := randomKernelGraph(10, 20, 3)
	NewBitBFS(g.N()).Run(g, nil, NewFlatDist(0, g.N()), 0)

	// One-vertex graph.
	one := NewBuilder(1).BuildDedup()
	table := NewFlatDist(1, 1)
	NewBitBFS(1).Run(one, []int32{0}, table, 0)
	if table.At(0, 0) != 0 {
		t.Fatalf("one-vertex self distance = %d, want 0", table.At(0, 0))
	}

	// Empty graph through the driver: zero sources, zero rows.
	empty := NewBuilder(0).BuildDedup()
	out := empty.BitParallelBFSFrom(nil, 2)
	if out.Rows() != 0 || out.N() != 0 {
		t.Fatalf("empty-graph table is %dx%d, want 0x0", out.Rows(), out.N())
	}
}

func TestBitBFSPathGraphHighDiameter(t *testing.T) {
	// A pure path stresses the level loop: diameter n-1 levels.
	n := 200
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.BuildDedup()
	sources := []int32{0, int32(n - 1), int32(n / 2)}
	table := g.BitParallelBFSFrom(sources, 2)
	expectRowsMatchBFS(t, g, sources, table, "path graph")
	if g.bitParallelProfitable(len(sources)) {
		t.Fatal("sparse path graph should not select the bit-parallel kernel")
	}
}

func TestBitBFSRejectsOversizedGroupAndWrongN(t *testing.T) {
	g := randomKernelGraph(70, 200, 7)
	bb := NewBitBFS(g.N())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("65-source group did not panic")
			}
		}()
		bb.Run(g, make([]int32, 65), NewFlatDist(65, g.N()), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n-mismatched scratch did not panic")
			}
		}()
		NewBitBFS(g.N()+1).Run(g, []int32{0}, NewFlatDist(1, g.N()), 0)
	}()
}

func TestMultiSourceBFSDispatchMatchesBothKernels(t *testing.T) {
	// Dense graph: heuristic picks bit-parallel; sparse: scalar. Either way
	// the table must equal both kernels' output.
	dense := randomKernelGraph(120, 3000, 61) // m >= 4n, bit-parallel regime
	sparse := randomKernelGraph(300, 100, 62) // m < 4n, scalar regime
	if !dense.bitParallelProfitable(8) {
		t.Fatalf("dense graph (n=%d m=%d) should be bit-parallel profitable", dense.N(), dense.M())
	}
	if sparse.bitParallelProfitable(8) {
		t.Fatalf("sparse graph (n=%d m=%d) should not be bit-parallel profitable", sparse.N(), sparse.M())
	}
	for _, g := range []*Graph{dense, sparse} {
		r := rng.New(77)
		sources := make([]int32, 70)
		for i := range sources {
			sources[i] = int32(r.Intn(g.N()))
		}
		want := g.ParallelBFSFrom(sources, 1)
		for _, workers := range []int{1, 3} {
			got := g.MultiSourceBFSFrom(sources, workers)
			if !reflect.DeepEqual(got.Data(), want.Data()) {
				t.Fatalf("n=%d m=%d workers=%d: MultiSourceBFSFrom differs from scalar kernel",
					g.N(), g.M(), workers)
			}
			sweep := NewFlatDist(len(sources), g.N())
			g.MultiSourceBFSSweep(sources, workers, func(i int, src int32, dist []int32) {
				copy(sweep.Row(i), dist)
			})
			if !reflect.DeepEqual(sweep.Data(), want.Data()) {
				t.Fatalf("n=%d m=%d workers=%d: MultiSourceBFSSweep differs from scalar kernel",
					g.N(), g.M(), workers)
			}
		}
	}
}

func TestBitParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	g := randomKernelGraph(220, 1500, 91)
	r := rng.New(15)
	sources := make([]int32, 130)
	for i := range sources {
		sources[i] = int32(r.Intn(g.N()))
	}
	base := g.BitParallelBFSFrom(sources, 1)
	scalar := g.ParallelBFSFrom(sources, 1)
	if !reflect.DeepEqual(base.Data(), scalar.Data()) {
		t.Fatal("bit-parallel table differs from scalar table")
	}
	for _, workers := range []int{0, 2, 4, 9} {
		got := g.BitParallelBFSFrom(sources, workers)
		if !reflect.DeepEqual(got.Data(), base.Data()) {
			t.Fatalf("workers=%d: table not byte-identical to workers=1", workers)
		}
	}
}
