package graph

import "testing"

// Pinned to the SNIPPETS.md §3 triangular layout: entries for pair (i, j)
// with i < j live at j*(j-1)/2 + i.
func TestTriMatrixLength(t *testing.T) {
	want := []int{0, 0, 1, 3, 6, 10, 15}
	for n, w := range want {
		if got := TriMatrixLength(n); got != w {
			t.Errorf("TriMatrixLength(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestTriMatrixIndex(t *testing.T) {
	cases := []struct{ i, j, want int }{
		{0, 1, 0},
		{0, 2, 1},
		{1, 2, 2},
		{0, 3, 3},
		{1, 3, 4},
		{2, 3, 5},
		{0, 4, 6},
	}
	for _, c := range cases {
		if got := TriMatrixIndex(c.i, c.j); got != c.want {
			t.Errorf("TriMatrixIndex(%d, %d) = %d, want %d", c.i, c.j, got, c.want)
		}
		if got := TriMatrixIndex(c.j, c.i); got != c.want {
			t.Errorf("TriMatrixIndex(%d, %d) = %d, want %d (argument order)", c.j, c.i, got, c.want)
		}
	}
	// Bijection onto [0, C(n,2)) for a fixed n.
	const n = 9
	seen := make([]bool, TriMatrixLength(n))
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			idx := TriMatrixIndex(i, j)
			if idx < 0 || idx >= len(seen) || seen[idx] {
				t.Fatalf("TriMatrixIndex(%d, %d) = %d: out of range or duplicate", i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestFlatDistRowsAndReset(t *testing.T) {
	d := NewFlatDist(3, 4)
	if d.Rows() != 3 || d.N() != 4 {
		t.Fatalf("dims %dx%d, want 3x4", d.Rows(), d.N())
	}
	for i := 0; i < 3; i++ {
		row := d.Row(i)
		if len(row) != 4 {
			t.Fatalf("row %d length %d, want 4", i, len(row))
		}
		for v := range row {
			row[v] = int32(10*i + v)
		}
	}
	for i := 0; i < 3; i++ {
		for v := int32(0); v < 4; v++ {
			if got := d.At(i, v); got != int32(10*i)+v {
				t.Fatalf("At(%d, %d) = %d, want %d", i, v, got, int32(10*i)+v)
			}
		}
	}
	// Rows must be capped: appending to one cannot bleed into the next.
	r0 := d.Row(0)
	r0 = append(r0, 99)
	if d.At(1, 0) == 99 {
		t.Fatal("append to Row(0) overwrote Row(1)")
	}
	_ = r0

	// Shrinking Reset reuses the slab (no allocation), growing one extends it.
	slab := &d.Data()[0]
	d.Reset(2, 3)
	if d.Rows() != 2 || d.N() != 3 || len(d.Data()) != 6 {
		t.Fatalf("after shrink: dims %dx%d data %d", d.Rows(), d.N(), len(d.Data()))
	}
	if &d.Data()[0] != slab {
		t.Fatal("shrinking Reset reallocated the slab")
	}
	d.Reset(10, 10)
	if len(d.Data()) != 100 {
		t.Fatalf("after grow: data %d, want 100", len(d.Data()))
	}
	// Zero-row and zero-n tables are fine.
	d.Reset(0, 5)
	if d.Rows() != 0 || len(d.Data()) != 0 {
		t.Fatal("zero-row Reset broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Reset did not panic")
		}
	}()
	d.Reset(-1, 5)
}

func TestTriDistStoresSymmetricPairs(t *testing.T) {
	td := NewTriDist(5)
	if td.N() != 5 {
		t.Fatalf("N = %d, want 5", td.N())
	}
	for u := int32(0); u < 5; u++ {
		if td.At(u, u) != 0 {
			t.Fatalf("diagonal At(%d,%d) = %d, want 0", u, u, td.At(u, u))
		}
	}
	if td.At(1, 3) != Unreachable {
		t.Fatalf("fresh pair = %d, want Unreachable", td.At(1, 3))
	}
	td.Set(3, 1, 7)
	if td.At(1, 3) != 7 || td.At(3, 1) != 7 {
		t.Fatalf("symmetric read failed: %d / %d", td.At(1, 3), td.At(3, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("diagonal Set did not panic")
		}
	}()
	td.Set(2, 2, 1)
}
