package graph

import "fmt"

// FlatDist is a row-major multi-source distance table: Rows() sources by
// N() vertices in one contiguous []int32 slab. It replaces the old
// [][]int32 slice-of-slices returned by the multi-source BFS kernels —
// one allocation instead of one per source, cache-friendly row scans, and
// a Reset that reuses the backing slab arena-style across sweeps.
type FlatDist struct {
	rows, n int
	data    []int32
}

// NewFlatDist allocates a rows×n table. Entries are zero; the BFS kernels
// overwrite every cell of the rows they fill.
func NewFlatDist(rows, n int) *FlatDist {
	d := &FlatDist{}
	d.Reset(rows, n)
	return d
}

// Reset resizes the table to rows×n, reusing the backing slab when it is
// large enough (no allocation) and growing it otherwise. Cell contents
// after Reset are unspecified — callers fill every row they read.
func (d *FlatDist) Reset(rows, n int) {
	if rows < 0 || n < 0 {
		panic(fmt.Sprintf("graph: FlatDist.Reset(%d, %d) with negative dimension", rows, n))
	}
	need := rows * n
	if cap(d.data) < need {
		d.data = make([]int32, need)
	}
	d.data = d.data[:need]
	d.rows, d.n = rows, n
}

// Rows returns the number of source rows.
func (d *FlatDist) Rows() int { return d.rows }

// N returns the number of vertices per row.
func (d *FlatDist) N() int { return d.n }

// Row returns row i as a slice aliasing the backing slab. The full-slice
// expression caps it so an append cannot bleed into the next row.
func (d *FlatDist) Row(i int) []int32 {
	lo := i * d.n
	return d.data[lo : lo+d.n : lo+d.n]
}

// At returns the distance entry for source row i and vertex v.
func (d *FlatDist) At(i int, v int32) int32 { return d.data[i*d.n+int(v)] }

// Data returns the whole row-major slab (row i occupies [i*N(), (i+1)*N())).
// It aliases internal storage; serializers iterate it directly.
func (d *FlatDist) Data() []int32 { return d.data }

// TriMatrixLength returns the number of entries a strictly-triangular
// symmetric matrix over n vertices needs: C(n, 2).
func TriMatrixLength(n int) int { return n * (n - 1) / 2 }

// TriMatrixIndex maps an unordered pair of distinct vertices to its slot
// in a triangular slab: with i < j the slot is j*(j-1)/2 + i, so the
// entries for larger vertex j pack contiguously after all smaller ones.
// Argument order does not matter.
func TriMatrixIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return j*(j-1)/2 + i
}

// TriDist is a compact symmetric all-pairs distance table: one int32 per
// unordered vertex pair in a TriMatrixIndex-addressed slab, with the zero
// diagonal implicit. It stores exactly half the cells of a full n×n
// matrix, which is what makes exact all-pairs references affordable as
// graphs grow.
type TriDist struct {
	n    int
	data []int32
}

// NewTriDist allocates an all-pairs table over n vertices with every pair
// initialized to Unreachable.
func NewTriDist(n int) *TriDist {
	data := make([]int32, TriMatrixLength(n))
	for i := range data {
		data[i] = Unreachable
	}
	return &TriDist{n: n, data: data}
}

// N returns the number of vertices the table covers.
func (t *TriDist) N() int { return t.n }

// At returns the stored distance between u and v (0 when u == v).
func (t *TriDist) At(u, v int32) int32 {
	if u == v {
		return 0
	}
	return t.data[TriMatrixIndex(int(u), int(v))]
}

// Set records the distance between the distinct vertices u and v.
func (t *TriDist) Set(u, v int32, d int32) {
	if u == v {
		panic(fmt.Sprintf("graph: TriDist.Set on the diagonal (%d)", u))
	}
	t.data[TriMatrixIndex(int(u), int(v))] = d
}
