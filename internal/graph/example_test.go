package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// ParallelBFSFrom computes one full BFS distance row per source over a
// worker pool into a flat row-major table. Rows are index-aligned with
// the sources and identical for every worker count — the determinism
// contract all evaluation kernels build on (DESIGN.md §9).
func ExampleGraph_ParallelBFSFrom() {
	// A path graph 0-1-2-3-4.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.BuildDedup()

	dists := g.ParallelBFSFrom([]int32{0, 4}, 2)
	fmt.Println(dists.Row(0))
	fmt.Println(dists.Row(1))
	// Output:
	// [0 1 2 3 4]
	// [4 3 2 1 0]
}

// BitBFS advances up to 64 BFS searches at once, one bit per source in a
// uint64 word per vertex, writing hop distances into a FlatDist table.
// Each row equals the plain per-source BFS — the bit-parallel kernel is a
// faster route to the same answers (DESIGN.md §12).
func ExampleBitBFS() {
	// A 4-cycle 0-1-2-3-0.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.BuildDedup()

	sources := []int32{0, 2}
	table := graph.NewFlatDist(len(sources), g.N())
	bb := graph.NewBitBFS(g.N())
	bb.Run(g, sources, table, 0)
	fmt.Println(table.Row(0))
	fmt.Println(table.Row(1))
	// Output:
	// [0 1 2 1]
	// [2 1 0 1]
}
