package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// ParallelBFSFrom computes one full BFS distance slice per source over a
// worker pool. Results are index-aligned with the sources and identical
// for every worker count — the determinism contract all evaluation
// kernels build on (DESIGN.md §9).
func ExampleGraph_ParallelBFSFrom() {
	// A path graph 0-1-2-3-4.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.BuildDedup()

	dists := g.ParallelBFSFrom([]int32{0, 4}, 2)
	fmt.Println(dists[0])
	fmt.Println(dists[1])
	// Output:
	// [0 1 2 3 4]
	// [4 3 2 1 0]
}
