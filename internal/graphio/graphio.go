// Package graphio serializes graphs: a plain edge-list text format for
// interchange between the CLI tools (and for persisting generated
// instances so experiments can be re-run on identical inputs), plus
// Graphviz DOT export for inspection. A spanner can be exported overlaid
// on its base graph, with kept/removed edges distinguished.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// MaxVertices caps the vertex count ReadEdgeList will accept. The CSR
// representation allocates two int32 arrays of length n+1 and 2m up
// front, so a hostile or corrupt header like "n 99999999999" would
// otherwise turn into a multi-gigabyte allocation (or an int32 overflow
// in the builder) long before any edge is parsed. 1<<27 vertices ≈ 0.5 GB
// of offsets — beyond any practical instance for this repository.
const MaxVertices = 1 << 27

// WriteEdgeList writes the graph in the format:
//
//	# comment lines allowed
//	n <vertices>
//	<u> <v>      (one edge per line, normalized u < v)
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored. Duplicate edges are rejected.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *graph.Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graphio: line %d: expected header \"n <count>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", line, fields[1])
			}
			if n > MaxVertices {
				return nil, fmt.Errorf("graphio: line %d: vertex count %d exceeds MaxVertices %d (refusing pre-allocation)", line, n, MaxVertices)
			}
			b = graph.NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: expected \"u v\", got %q", line, text)
		}
		// Parse into int64 and range-check before the int32 cast: the old
		// Atoi-then-cast path truncated 64-bit ids (so "4294967296 1" became
		// the valid-looking edge "0 1"), and handing a negative or >= n id
		// to Builder.AddEdge panicked instead of returning an error. Found
		// by the internal/check graphio fuzzer.
		u, err1 := strconv.ParseInt(fields[0], 10, 64)
		v, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphio: line %d: bad edge %q", line, text)
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop %d", line, u)
		}
		if u < 0 || v < 0 || u >= int64(b.N()) || v >= int64(b.N()) {
			return nil, fmt.Errorf("graphio: line %d: vertex out of range [0,%d) in %q", line, b.N(), text)
		}
		if err := b.AddEdgeErr(int32(u), int32(v)); err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: missing header")
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// WriteDOT exports the graph as Graphviz DOT.
func WriteDOT(w io.Writer, g *graph.Graph, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle];\n")
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteSpannerDOT exports base graph g with the spanner h overlaid: edges
// kept in h are solid, removed edges dashed — handy for eyeballing small
// constructions (the fan graph, Lemma 2 instances).
func WriteSpannerDOT(w io.Writer, g, h *graph.Graph, name string) error {
	if g.N() != h.N() {
		return fmt.Errorf("graphio: vertex count mismatch %d vs %d", g.N(), h.N())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle];\n")
	for _, e := range g.Edges() {
		if h.HasEdge(e.U, e.V) {
			fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
		} else {
			fmt.Fprintf(bw, "  %d -- %d [style=dashed, color=gray];\n", e.U, e.V)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
