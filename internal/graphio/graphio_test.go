package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.MustRandomRegular(40, 6, rng.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatalf("edge %d changed", i)
		}
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 4\n0 1\n# another\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                  // missing header
		"0 1\n",             // edge before header
		"n -3\n",            // bad count
		"n 3\n0\n",          // malformed edge
		"n 3\n0 9\n",        // out of range
		"n 3\n-1 2\n",       // negative vertex
		"n 3\n1 1\n",        // self loop
		"n 3\n0 1\n1 0\n",   // duplicate
		"n x\n",             // bad header value
		"header nonsense\n", // bad header
		"n 3\n0 1 2\n",      // too many fields
		"n 3\nzero one\n",   // non-numeric
		"n 3\n99999999999999999999 1\n", // beyond int64
	}
	for _, in := range cases {
		// The parser validates every edge before touching the builder, so
		// rejection is always an error, never a panic.
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

// TestReadEdgeListRejectsInt32Truncation pins the parser bug the
// differential harness flushed out: vertex ids were parsed with Atoi and
// cast to int32, so "4294967296 1" (2³²) silently truncated to the edge
// (0,1) on 64-bit platforms instead of being rejected.
func TestReadEdgeListRejectsInt32Truncation(t *testing.T) {
	for _, in := range []string{
		"n 2\n4294967296 1\n",  // 2^32 -> truncated to 0
		"n 2\n4294967297 1\n",  // 2^32+1 -> truncated to 1 (self-loop after truncation)
		"n 2\n0 8589934593\n",  // 2*2^32+1 -> truncated to 1
		"n 2\n-4294967295 1\n", // truncates to a positive in-range id
	} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted: 64-bit vertex id truncated to int32", in)
		}
	}
}

// TestRoundTripDegenerateGraphs: the empty graph and the single-edge
// graph survive a write/read cycle unchanged.
func TestRoundTripDegenerateGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).MustBuild(),
		graph.NewBuilder(3).MustBuild(), // vertices, no edges
		graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}),
	} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("read back %d-vertex graph: %v", g.N(), err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Errorf("round trip changed shape: n %d->%d, m %d->%d", g.N(), got.N(), g.M(), got.M())
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := gen.Cycle(4)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "c4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph \"c4\"") || !strings.Contains(out, "0 -- 1;") {
		t.Fatalf("DOT output:\n%s", out)
	}
	if strings.Count(out, "--") != 4 {
		t.Fatalf("expected 4 edges in DOT:\n%s", out)
	}
}

func TestWriteSpannerDOT(t *testing.T) {
	g := gen.Clique(4)
	h := g.FilterEdges(func(e graph.Edge) bool { return e.U == 0 })
	var buf bytes.Buffer
	if err := WriteSpannerDOT(&buf, g, h, "star"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "style=dashed") != g.M()-h.M() {
		t.Fatalf("dashed count wrong:\n%s", out)
	}
}

func TestWriteSpannerDOTMismatch(t *testing.T) {
	if err := WriteSpannerDOT(&bytes.Buffer{}, gen.Cycle(4), gen.Cycle(5), "x"); err == nil {
		t.Fatal("accepted mismatched vertex counts")
	}
}

// deepEqualGraphs compares vertex count, edge list, and the full
// per-vertex adjacency structure (not just the edge slice, so a CSR
// construction bug would also be caught).
func deepEqualGraphs(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			return false
		}
	}
	for v := int32(0); v < int32(a.N()); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// Property: write→read→deep-equal holds for arbitrary random graphs
// across the density spectrum, including edgeless and near-complete ones.
func TestPropertyRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		b := graph.NewBuilder(n)
		// Density varies from 0 to ~n² proposals across seeds.
		proposals := r.Intn(n*n + 1)
		for i := 0; i < proposals; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.BuildDedup()
		var buf bytes.Buffer
		if WriteEdgeList(&buf, g) != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return deepEqualGraphs(g, g2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRoundTripGenerators round-trips structured instances from
// the generator package (the graphs the CLIs actually exchange).
func TestPropertyRoundTripGenerators(t *testing.T) {
	graphs := []*graph.Graph{
		gen.MustRandomRegular(60, 8, rng.New(2)),
		gen.Margulis(6),
		gen.Hypercube(5),
		gen.Clique(12),
		gen.Cycle(17),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !deepEqualGraphs(g, g2) {
			t.Fatalf("graph %d: round trip not deep-equal", i)
		}
	}
}

// TestReadEdgeListRejectsHugeHeader: a header vertex count beyond
// MaxVertices must fail fast with a clear error instead of attempting the
// pre-allocation (or overflowing int32 vertex ids downstream).
func TestReadEdgeListRejectsHugeHeader(t *testing.T) {
	for _, in := range []string{
		"n 99999999999\n0 1\n", // would overflow int32 ids
		"n 134217729\n",        // MaxVertices + 1
	} {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Fatalf("header %q accepted", strings.SplitN(in, "\n", 2)[0])
		}
		if !strings.Contains(err.Error(), "MaxVertices") {
			t.Fatalf("header rejection should name MaxVertices, got: %v", err)
		}
	}
	// A count at the cap itself is in-contract (not asserted here: parsing
	// it allocates the full half-gigabyte CSR arrays, too heavy for the
	// unit suite); a modest header stays readable.
	g, err := ReadEdgeList(strings.NewReader("n 1000000\n"))
	if err != nil {
		t.Fatalf("large-but-legal header rejected: %v", err)
	}
	if g.N() != 1000000 || g.M() != 0 {
		t.Fatalf("header-only graph parsed as %v", g)
	}
}
