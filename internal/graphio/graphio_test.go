package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.MustRandomRegular(40, 6, rng.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatalf("edge %d changed", i)
		}
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 4\n0 1\n# another\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                  // missing header
		"0 1\n",             // edge before header
		"n -3\n",            // bad count
		"n 3\n0\n",          // malformed edge
		"n 3\n0 9\n",        // out of range (panics in builder? -> check)
		"n 3\n1 1\n",        // self loop
		"n 3\n0 1\n1 0\n",   // duplicate
		"n x\n",             // bad header value
		"header nonsense\n", // bad header
		"n 3\n0 1 2\n",      // too many fields
		"n 3\nzero one\n",   // non-numeric
	}
	for _, in := range cases {
		func() {
			defer func() { recover() }() // builder panics count as rejection
			if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
				t.Errorf("input %q accepted", in)
			}
		}()
	}
}

func TestWriteDOT(t *testing.T) {
	g := gen.Cycle(4)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "c4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph \"c4\"") || !strings.Contains(out, "0 -- 1;") {
		t.Fatalf("DOT output:\n%s", out)
	}
	if strings.Count(out, "--") != 4 {
		t.Fatalf("expected 4 edges in DOT:\n%s", out)
	}
}

func TestWriteSpannerDOT(t *testing.T) {
	g := gen.Clique(4)
	h := g.FilterEdges(func(e graph.Edge) bool { return e.U == 0 })
	var buf bytes.Buffer
	if err := WriteSpannerDOT(&buf, g, h, "star"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "style=dashed") != g.M()-h.M() {
		t.Fatalf("dashed count wrong:\n%s", out)
	}
}

func TestWriteSpannerDOTMismatch(t *testing.T) {
	if err := WriteSpannerDOT(&bytes.Buffer{}, gen.Cycle(4), gen.Cycle(5), "x"); err == nil {
		t.Fatal("accepted mismatched vertex counts")
	}
}

// Property: round trip preserves arbitrary random graphs.
func TestPropertyRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.BuildDedup()
		var buf bytes.Buffer
		if WriteEdgeList(&buf, g) != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for i, e := range g.Edges() {
			if g2.Edges()[i] != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
