package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser with arbitrary inputs. The parser
// validates every edge before touching the builder, so a panic is a bug —
// no recover() here — and every successfully parsed graph must
// round-trip through WriteEdgeList unchanged.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 4\n0 1\n2 3\n")
	f.Add("# comment\nn 2\n0 1\n")
	f.Add("n 0\n")
	f.Add("n 3\n0 1\n1 2\n0 2\n")
	f.Add("garbage")
	f.Add("n 3\n0 1\n0 1\n")
	f.Add("n 3\n2 2\n")
	f.Add("n 3\n-4 1\n")
	f.Add("n 2\n4294967296 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, parsed); err != nil {
			t.Fatalf("write failed on parsed graph: %v", err)
		}
		again, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.N() != parsed.N() || again.M() != parsed.M() {
			t.Fatalf("round trip changed shape")
		}
	})
}
