package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the parser with arbitrary inputs: it must
// never panic (builder panics are converted to errors by recover here to
// mirror CLI usage), and every successfully parsed graph must round-trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 4\n0 1\n2 3\n")
	f.Add("# comment\nn 2\n0 1\n")
	f.Add("n 0\n")
	f.Add("n 3\n0 1\n1 2\n0 2\n")
	f.Add("garbage")
	f.Add("n 3\n0 1\n0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		var g interface {
			N() int
			M() int
		}
		func() {
			defer func() { recover() }()
			parsed, err := ReadEdgeList(strings.NewReader(input))
			if err != nil {
				return
			}
			g = parsed
			// Round trip.
			var buf bytes.Buffer
			if err := WriteEdgeList(&buf, parsed); err != nil {
				t.Fatalf("write failed on parsed graph: %v", err)
			}
			again, err := ReadEdgeList(&buf)
			if err != nil {
				t.Fatalf("re-parse failed: %v", err)
			}
			if again.N() != parsed.N() || again.M() != parsed.M() {
				t.Fatalf("round trip changed shape")
			}
		}()
		_ = g
	})
}
