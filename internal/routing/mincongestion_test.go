package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMinCongestionMatchingOverEdges(t *testing.T) {
	// Each demand is an edge of G and the demands form a matching: the
	// optimum is 1 (route each demand over its own edge).
	r := rng.New(1)
	g := gen.MustRandomRegular(60, 8, r)
	used := make([]bool, g.N())
	var prob Problem
	for _, e := range g.Edges() {
		if !used[e.U] && !used[e.V] {
			used[e.U] = true
			used[e.V] = true
			prob = append(prob, Pair{Src: e.U, Dst: e.V})
		}
	}
	rt, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(g); err != nil {
		t.Fatal(err)
	}
	if c := rt.NodeCongestion(g.N()); c != 1 {
		t.Fatalf("matching congestion %d, want 1", c)
	}
}

func TestMinCongestionHubStar(t *testing.T) {
	// Star K_{1,6}: demands between distinct leaves all pass the hub.
	b := graph.NewBuilder(7)
	for i := int32(1); i <= 6; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	prob := Problem{{1, 2}, {3, 4}, {5, 6}}
	rt, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c := rt.NodeCongestion(7); c != 3 {
		t.Fatalf("hub congestion %d, want 3 (forced)", c)
	}
}

func TestMinCongestionSpreadsOverParallelPaths(t *testing.T) {
	// Two demands whose unique shortest paths share a hub m, but each has
	// a private longer detour. Optimal congestion is 1 (route one demand
	// through m and the other over its detour, or both over detours);
	// naive shortest-path routing gives 2 at m.
	//
	//   s1(0) – m(4) – t1(1),  detour s1–5–6–t1
	//   s2(2) – m(4) – t2(3),  detour s2–7–8–t2
	b := graph.NewBuilder(9)
	b.AddEdge(0, 4)
	b.AddEdge(4, 1)
	b.AddEdge(2, 4)
	b.AddEdge(4, 3)
	b.AddEdge(0, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 1)
	b.AddEdge(2, 7)
	b.AddEdge(7, 8)
	b.AddEdge(8, 3)
	g := b.MustBuild()
	prob := Problem{{0, 1}, {2, 3}}
	sp, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NodeCongestion(9) != 2 {
		t.Fatalf("BFS congestion = %d, want 2 (both via hub)", sp.NodeCongestion(9))
	}
	rt, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 4, Passes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c := rt.NodeCongestion(9); c != 1 {
		t.Fatalf("min-congestion = %d, want 1: %v", c, rt.Paths)
	}
}

func TestMinCongestionBeatsShortestPaths(t *testing.T) {
	// On a random graph with a heavy single-source workload, potential-
	// based routing should never be worse than plain BFS routing.
	r := rng.New(5)
	g := gen.MustRandomRegular(80, 6, r)
	prob := RandomProblem(80, 200, r)
	sp, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if mc.NodeCongestion(80) > sp.NodeCongestion(80) {
		t.Fatalf("min-congestion %d worse than shortest paths %d",
			mc.NodeCongestion(80), sp.NodeCongestion(80))
	}
}

func TestMinCongestionDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if _, err := MinCongestion(g, Problem{{0, 3}}, MinCongestionOptions{}); err == nil {
		t.Fatal("accepted disconnected pair")
	}
}

func TestCongestionLowerBound(t *testing.T) {
	prob := Problem{{0, 1}, {0, 2}, {3, 0}, {4, 5}}
	if lb := CongestionLowerBound(6, prob); lb != 3 {
		t.Fatalf("lower bound %d, want 3", lb)
	}
	if lb := CongestionLowerBound(6, Problem{{0, 1}, {2, 3}}); lb != 1 {
		t.Fatalf("matching lower bound %d, want 1", lb)
	}
}

// Property: MinCongestion always returns a valid routing whose congestion
// is at least the endpoint lower bound and at most the BFS routing's.
func TestPropertyMinCongestionSandwich(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 16 + 2*r.Intn(20)
		g := gen.MustRandomRegular(n, 4, r)
		if !g.Connected() {
			return true
		}
		prob := RandomProblem(n, 1+r.Intn(2*n), r)
		mc, err := MinCongestion(g, prob, MinCongestionOptions{Seed: seed, Passes: 4})
		if err != nil {
			return false
		}
		if mc.Validate(g) != nil {
			return false
		}
		sp, err := ShortestPaths(g, prob)
		if err != nil {
			return false
		}
		c := mc.NodeCongestion(n)
		return c >= CongestionLowerBound(n, prob) && c <= sp.NodeCongestion(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinCongestion(b *testing.B) {
	r := rng.New(7)
	g := gen.MustRandomRegular(128, 8, r)
	prob := RandomProblem(128, 128, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinCongestion(g, prob, MinCongestionOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
