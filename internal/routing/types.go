// Package routing implements the routing-problem machinery of the paper:
// routing problems and routings (Section 2), node and edge congestion
// (Definition 2), shortest-path and Valiant-style routing, and the
// decomposition of an arbitrary routing into matchings (Algorithm 2,
// Section 6) together with the reassembly of the substitute routing on a
// spanner (Theorem 1, Lemmas 20–23).
package routing

import (
	"fmt"

	"repro/internal/graph"
)

// Pair is a source–destination request of a routing problem.
type Pair struct {
	Src, Dst int32
}

// Problem is a routing problem R: a set of source–destination pairs with
// Src ≠ Dst for each pair (Section 2).
type Problem []Pair

// Validate checks the structural constraints of a routing problem on an
// n-vertex graph.
func (r Problem) Validate(n int) error {
	for i, p := range r {
		if p.Src == p.Dst {
			return fmt.Errorf("routing: pair %d has equal endpoints %d", i, p.Src)
		}
		if p.Src < 0 || int(p.Src) >= n || p.Dst < 0 || int(p.Dst) >= n {
			return fmt.Errorf("routing: pair %d out of range", i)
		}
	}
	return nil
}

// IsMatching reports whether the problem is a matching routing problem:
// every node occurs at most once among all sources and destinations.
func (r Problem) IsMatching() bool {
	seen := make(map[int32]bool, 2*len(r))
	for _, p := range r {
		if seen[p.Src] || seen[p.Dst] {
			return false
		}
		seen[p.Src] = true
		seen[p.Dst] = true
	}
	return true
}

// MatchingProblem converts a set of edges (a matching in some graph) into
// the routing problem R_M: each edge contributes its endpoints as a pair,
// oriented U → V.
func MatchingProblem(m []graph.Edge) Problem {
	out := make(Problem, len(m))
	for i, e := range m {
		out[i] = Pair{Src: e.U, Dst: e.V}
	}
	return out
}

// Path is a vertex sequence; consecutive vertices must be adjacent in the
// graph the path lives in. A path of l(p) edges has l(p)+1 vertices.
type Path []int32

// Len returns the number of edges of the path.
func (p Path) Len() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Reversed returns a new path traversed in the opposite direction.
func (p Path) Reversed() Path {
	out := make(Path, len(p))
	for i, v := range p {
		out[len(p)-1-i] = v
	}
	return out
}

// Valid reports whether p is a walk in g from src to dst.
func (p Path) Valid(g *graph.Graph, src, dst int32) bool {
	if len(p) == 0 {
		return false
	}
	if p[0] != src || p[len(p)-1] != dst {
		return false
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			return false
		}
	}
	return true
}

// Routing is a set of paths answering a routing problem: Paths[i] serves
// Problem[i].
type Routing struct {
	Problem Problem
	Paths   []Path
}

// Validate checks that every path is a valid walk in g serving its pair.
func (r *Routing) Validate(g *graph.Graph) error {
	if len(r.Paths) != len(r.Problem) {
		return fmt.Errorf("routing: %d paths for %d pairs", len(r.Paths), len(r.Problem))
	}
	for i, p := range r.Paths {
		pr := r.Problem[i]
		if !p.Valid(g, pr.Src, pr.Dst) {
			return fmt.Errorf("routing: path %d invalid for pair (%d,%d): %v", i, pr.Src, pr.Dst, p)
		}
	}
	return nil
}

// MaxLength returns the maximum path length (edges) in the routing.
func (r *Routing) MaxLength() int {
	max := 0
	for _, p := range r.Paths {
		if p.Len() > max {
			max = p.Len()
		}
	}
	return max
}

// Stretch returns the maximum per-path length ratio of r versus base. The
// two routings must answer the same problem, pair by pair. Paths of equal
// endpoints never occur (Src ≠ Dst), so base lengths are >= 1.
func (r *Routing) Stretch(base *Routing) float64 {
	worst := 0.0
	for i, p := range r.Paths {
		ratio := float64(p.Len()) / float64(base.Paths[i].Len())
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}
