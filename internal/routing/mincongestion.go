package routing

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// MinCongestionOptions configures the approximate min-congestion solver.
type MinCongestionOptions struct {
	// Passes is the number of full rerouting sweeps (default 8).
	Passes int
	// Base is the potential base: the solver minimizes Σ_v Base^load(v),
	// which drives the maximum node congestion down (default 2).
	Base float64
	// Seed randomizes the demand processing order between passes.
	Seed uint64
}

// MinCongestion computes a routing for prob that approximately minimizes
// the node congestion C(P) — the paper's C(R) = min over routings
// (Section 2). It is an exponential-potential local-search: each demand
// is (re)routed along a node-weighted shortest path whose node costs are
// the marginal increase of Σ_v Base^load(v), for several randomized
// passes. The result is feasible and its congestion upper-bounds C_G(R);
// on instances with known optima (matchings over edges, hub stars) it
// attains them, which the tests pin down.
func MinCongestion(g *graph.Graph, prob Problem, opts MinCongestionOptions) (*Routing, error) {
	if err := prob.Validate(g.N()); err != nil {
		return nil, err
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 8
	}
	base := opts.Base
	if base <= 1 {
		base = 2
	}
	r := rng.New(opts.Seed)
	n := g.N()

	load := make([]int, n)
	paths := make([]Path, len(prob))

	// Congestion-driven node cost: base^load − 1, so unloaded nodes are
	// (nearly) free — C(R) puts no constraint on path lengths, only on
	// congestion. The tiny per-node epsilon breaks ties toward shorter
	// paths among equally-congested alternatives.
	const lenEps = 1e-9
	cost := func(v int32) float64 {
		return math.Pow(base, float64(load[v])) - 1 + lenEps
	}
	addPath := func(p Path, delta int) {
		for _, v := range p {
			load[v] += delta
		}
	}

	d := newNodeDijkstra(n)
	for pass := 0; pass < passes; pass++ {
		order := r.Perm(len(prob))
		improved := false
		for _, idx := range order {
			pr := prob[idx]
			old := paths[idx]
			if old != nil {
				addPath(old, -1)
			}
			p := d.route(g, pr.Src, pr.Dst, cost)
			if p == nil {
				if old != nil {
					addPath(old, +1)
				}
				return nil, fmt.Errorf("routing: pair (%d,%d) disconnected", pr.Src, pr.Dst)
			}
			if old == nil || pathCost(p, cost) < pathCost(old, cost)-1e-12 {
				paths[idx] = p
				addPath(p, +1)
				improved = improved || old != nil
			} else {
				paths[idx] = old
				addPath(old, +1)
			}
			if old == nil {
				improved = true
			}
		}
		if !improved && pass > 0 {
			break
		}
	}
	return &Routing{Problem: prob, Paths: paths}, nil
}

func pathCost(p Path, cost func(int32) float64) float64 {
	s := 0.0
	for _, v := range p {
		s += cost(v)
	}
	return s
}

// CongestionLowerBound returns a trivial lower bound on C_G(R): the
// maximum number of demands sharing an endpoint (every path must touch
// its endpoints). For matching problems this equals 1, the exact optimum.
func CongestionLowerBound(n int, prob Problem) int {
	cnt := make([]int, n)
	for _, p := range prob {
		cnt[p.Src]++
		cnt[p.Dst]++
	}
	max := 0
	for _, c := range cnt {
		if c > max {
			max = c
		}
	}
	return max
}

// nodeDijkstra is a node-weighted shortest path solver with reusable
// buffers (the cost of a path is the sum of node costs, including both
// endpoints).
type nodeDijkstra struct {
	dist    []float64
	parent  []int32
	visited []bool
	touched []int32
	pq      pqueue
}

func newNodeDijkstra(n int) *nodeDijkstra {
	d := &nodeDijkstra{
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		visited: make([]bool, n),
	}
	for i := range d.dist {
		d.dist[i] = math.Inf(1)
	}
	return d
}

func (d *nodeDijkstra) route(g *graph.Graph, src, dst int32, cost func(int32) float64) Path {
	// Reset only touched entries from the previous run.
	for _, v := range d.touched {
		d.dist[v] = math.Inf(1)
		d.visited[v] = false
	}
	d.touched = d.touched[:0]
	d.pq = d.pq[:0]

	d.dist[src] = cost(src)
	d.parent[src] = src
	d.touched = append(d.touched, src)
	heap.Push(&d.pq, pqItem{v: src, prio: d.dist[src]})
	for d.pq.Len() > 0 {
		it := heap.Pop(&d.pq).(pqItem)
		v := it.v
		if d.visited[v] {
			continue
		}
		d.visited[v] = true
		if v == dst {
			break
		}
		dv := d.dist[v]
		for _, w := range g.Neighbors(v) {
			if d.visited[w] {
				continue
			}
			nd := dv + cost(w)
			if nd < d.dist[w] {
				if math.IsInf(d.dist[w], 1) {
					d.touched = append(d.touched, w)
				}
				d.dist[w] = nd
				d.parent[w] = v
				heap.Push(&d.pq, pqItem{v: w, prio: nd})
			}
		}
	}
	if !d.visited[dst] {
		return nil
	}
	var p Path
	for x := dst; ; x = d.parent[x] {
		p = append(p, x)
		if x == src {
			break
		}
	}
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

type pqItem struct {
	v    int32
	prio float64
}

type pqueue []pqItem

func (q pqueue) Len() int           { return len(q) }
func (q pqueue) Less(i, j int) bool { return q[i].prio < q[j].prio }
func (q pqueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
