package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestExactHubStar(t *testing.T) {
	b := graph.NewBuilder(7)
	for i := int32(1); i <= 6; i++ {
		b.AddEdge(0, i)
	}
	g := b.MustBuild()
	prob := Problem{{1, 2}, {3, 4}, {5, 6}}
	rt, c, err := ExactMinCongestion(g, prob, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("exact congestion %d, want 3", c)
	}
	if err := rt.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestExactDoubleDetour(t *testing.T) {
	// Same graph as the MinCongestion spreading test: optimum is 1.
	b := graph.NewBuilder(9)
	b.AddEdge(0, 4)
	b.AddEdge(4, 1)
	b.AddEdge(2, 4)
	b.AddEdge(4, 3)
	b.AddEdge(0, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 1)
	b.AddEdge(2, 7)
	b.AddEdge(7, 8)
	b.AddEdge(8, 3)
	g := b.MustBuild()
	_, c, err := ExactMinCongestion(g, Problem{{0, 1}, {2, 3}}, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Fatalf("exact congestion %d, want 1", c)
	}
}

func TestExactMatchesHeuristicOnFan(t *testing.T) {
	// Lemma 18's fan: the removed-edge routing in H has optimum k (all
	// substitutes cross s). Verify the exact solver agrees.
	f := gen.FanGraph(3)
	// Remove first line edge of each face.
	removed := make(map[graph.Edge]bool)
	var prob Problem
	for j := 1; j <= 3; j++ {
		u := f.Line[2*(j-1)]
		v := f.Line[2*(j-1)+1]
		removed[graph.Edge{U: u, V: v}.Normalize()] = true
		prob = append(prob, Pair{Src: u, Dst: v})
	}
	h := f.G.FilterEdges(func(e graph.Edge) bool { return !removed[e] })
	_, c, err := ExactMinCongestion(h, prob, ExactOptions{MaxPathLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("fan exact congestion %d, want k=3", c)
	}
}

func TestExactDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if _, _, err := ExactMinCongestion(g, Problem{{0, 3}}, ExactOptions{}); err == nil {
		t.Fatal("accepted disconnected pair")
	}
}

func TestEnumerateSimplePaths(t *testing.T) {
	g := gen.Cycle(6)
	paths, err := enumerateSimplePaths(g, 0, 3, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Two simple paths: clockwise (3 edges) and counterclockwise (3 edges).
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2: %v", len(paths), paths)
	}
	short, err := enumerateSimplePaths(g, 0, 3, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 0 {
		t.Fatalf("length-2 budget found %d paths", len(short))
	}
}

func TestEnumerateCapExceeded(t *testing.T) {
	g := gen.Clique(8)
	if _, err := enumerateSimplePaths(g, 0, 1, 7, 10); err == nil {
		t.Fatal("cap not enforced")
	}
}

// Property: on tiny random instances the heuristic solver matches the
// exact optimum reasonably often and never beats it (sanity of both).
func TestPropertyHeuristicVsExact(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(6)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.BuildDedup()
		if !g.Connected() {
			return true
		}
		k := 1 + r.Intn(3)
		prob := RandomProblem(n, k, r)
		_, exact, err := ExactMinCongestion(g, prob, ExactOptions{MaxCandidates: 5000})
		if err != nil {
			return true // enumeration blew up; skip
		}
		h, err := MinCongestion(g, prob, MinCongestionOptions{Seed: seed})
		if err != nil {
			return false
		}
		return h.NodeCongestion(n) >= exact
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
