package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNumShortestPathsGrid(t *testing.T) {
	// 2×2 "diamond": 0-1, 0-2, 1-3, 2-3: two shortest 0→3 paths.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s := NewSPSampler(g)
	cnt, d := s.NumShortestPaths(0, 3)
	if d != 2 || cnt != 2 {
		t.Fatalf("count=%v dist=%d, want 2, 2", cnt, d)
	}
}

func TestNumShortestPathsHypercube(t *testing.T) {
	// Antipodal pair in Q_d has d! shortest paths.
	g := gen.Hypercube(4)
	s := NewSPSampler(g)
	cnt, d := s.NumShortestPaths(0, 15)
	if d != 4 || cnt != 24 {
		t.Fatalf("count=%v dist=%d, want 24, 4", cnt, d)
	}
}

func TestSampleIsShortestAndValid(t *testing.T) {
	r := rng.New(1)
	g := gen.MustRandomRegular(80, 6, r)
	s := NewSPSampler(g)
	for trial := 0; trial < 200; trial++ {
		u := int32(r.Intn(80))
		v := int32(r.Intn(80))
		if u == v {
			continue
		}
		p := s.Sample(u, v, r)
		if p == nil {
			t.Fatalf("no path %d->%d", u, v)
		}
		if !Path(p).Valid(g, u, v) {
			t.Fatalf("invalid path %v", p)
		}
		if int32(Path(p).Len()) != g.Dist(u, v) {
			t.Fatalf("path %v not shortest", p)
		}
	}
}

func TestSampleUniformOnDiamond(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s := NewSPSampler(g)
	r := rng.New(2)
	via1 := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		p := s.Sample(0, 3, r)
		if p[1] == 1 {
			via1++
		}
	}
	if via1 < trials*45/100 || via1 > trials*55/100 {
		t.Fatalf("path via 1 chosen %d/%d — not uniform", via1, trials)
	}
}

func TestSampleUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s := NewSPSampler(g)
	if p := s.Sample(0, 3, rng.New(3)); p != nil {
		t.Fatalf("sampled across components: %v", p)
	}
	if _, d := s.NumShortestPaths(0, 3); d != graph.Unreachable {
		t.Fatal("unreachable pair reported reachable")
	}
}

func TestRandomShortestPathsRouting(t *testing.T) {
	r := rng.New(4)
	g := gen.MustRandomRegular(60, 8, r)
	prob := RandomProblem(60, 100, r)
	rt, err := RandomShortestPaths(g, prob, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i, p := range rt.Paths {
		if int32(p.Len()) != g.Dist(prob[i].Src, prob[i].Dst) {
			t.Fatalf("pair %d routed non-shortest", i)
		}
	}
}

func TestRandomShortestPathsSpreadsCongestion(t *testing.T) {
	// On the hypercube, deterministic BFS routing of many antipodal pairs
	// funnels through lexicographically-first paths; randomized shortest
	// paths spread them. Compare the same heavy single-pair multiset.
	g := gen.Hypercube(6)
	var prob Problem
	for i := 0; i < 32; i++ {
		prob = append(prob, Pair{Src: 0, Dst: 63})
	}
	det, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomShortestPaths(g, prob, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints are shared by all paths (congestion 32 there); compare
	// interior congestion instead.
	interior := func(rt *Routing) int {
		prof := rt.NodeCongestionProfile(g.N())
		max := 0
		for v, c := range prof {
			if v != 0 && v != 63 && c > max {
				max = c
			}
		}
		return max
	}
	if interior(rnd) >= interior(det) {
		t.Fatalf("random SP interior congestion %d not better than deterministic %d",
			interior(rnd), interior(det))
	}
}

// Property: sampled paths are always shortest, valid, and the path count
// matches a brute-force enumeration on small graphs.
func TestPropertySPSamplerCounts(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(8)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.BuildDedup()
		s := NewSPSampler(g)
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			return true
		}
		cnt, d := s.NumShortestPaths(u, v)
		want, wd := bruteCountShortest(g, u, v)
		if wd != d {
			return false
		}
		if d == graph.Unreachable {
			return true
		}
		return cnt == float64(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// bruteCountShortest enumerates all simple paths up to the BFS distance.
func bruteCountShortest(g *graph.Graph, u, v int32) (int, int32) {
	d := g.Dist(u, v)
	if d == graph.Unreachable {
		return 0, d
	}
	count := 0
	var dfs func(x int32, depth int32, visited map[int32]bool)
	dfs = func(x int32, depth int32, visited map[int32]bool) {
		if depth == d {
			if x == v {
				count++
			}
			return
		}
		for _, w := range g.Neighbors(x) {
			if !visited[w] {
				visited[w] = true
				dfs(w, depth+1, visited)
				delete(visited, w)
			}
		}
	}
	dfs(u, 0, map[int32]bool{u: true})
	return count, d
}

func BenchmarkSPSample(b *testing.B) {
	r := rng.New(6)
	g := gen.MustRandomRegular(500, 10, r)
	s := NewSPSampler(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(0, int32(1+i%499), r)
	}
}
