package routing

import (
	"fmt"

	"repro/internal/graph"
)

// ExactOptions configures the exact min-congestion solver.
type ExactOptions struct {
	// MaxPathLen bounds the candidate simple paths per pair; 0 means
	// dist(u,v) + 4. C(R) can in principle profit from arbitrarily long
	// paths, but on the small instances this solver targets, the optimum
	// is attained well within this slack; raise it to certify.
	MaxPathLen int
	// MaxCandidates aborts if a pair has more candidate paths (guards
	// against accidental exponential blow-ups). Default 20000.
	MaxCandidates int
}

// ExactMinCongestion computes the minimum node congestion C_G(R) by
// branch-and-bound over all simple candidate paths of bounded length —
// exponential, intended only for validating the heuristic solver and the
// paper's small witnesses. Returns an optimal routing and its congestion.
func ExactMinCongestion(g *graph.Graph, prob Problem, opts ExactOptions) (*Routing, int, error) {
	if err := prob.Validate(g.N()); err != nil {
		return nil, 0, err
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = 20000
	}

	// Enumerate candidates per pair.
	cands := make([][]Path, len(prob))
	for i, pr := range prob {
		limit := opts.MaxPathLen
		if limit <= 0 {
			d := g.Dist(pr.Src, pr.Dst)
			if d == graph.Unreachable {
				return nil, 0, fmt.Errorf("routing: pair (%d,%d) disconnected", pr.Src, pr.Dst)
			}
			limit = int(d) + 4
		}
		paths, err := enumerateSimplePaths(g, pr.Src, pr.Dst, limit, maxCand)
		if err != nil {
			return nil, 0, err
		}
		if len(paths) == 0 {
			return nil, 0, fmt.Errorf("routing: pair (%d,%d) has no path within %d hops", pr.Src, pr.Dst, limit)
		}
		cands[i] = paths
	}

	// Order pairs by fewest candidates first (most constrained first).
	order := make([]int, len(prob))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && len(cands[order[j]]) < len(cands[order[j-1]]) {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}

	// Initial upper bound from the heuristic.
	best := len(prob) + 1
	var bestAssign []int
	if h, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 1}); err == nil {
		best = h.NodeCongestion(g.N()) + 1 // +1: we search for strictly better
	}

	load := make([]int, g.N())
	assign := make([]int, len(prob))
	for i := range assign {
		assign[i] = -1
	}
	curMax := 0

	var dfs func(pos int)
	dfs = func(pos int) {
		if curMax >= best {
			return
		}
		if pos == len(order) {
			best = curMax
			bestAssign = append([]int(nil), assign...)
			return
		}
		i := order[pos]
		for ci, p := range cands[i] {
			// Apply.
			newMax := curMax
			ok := true
			for _, v := range p {
				load[v]++
				if load[v] > newMax {
					newMax = load[v]
				}
				if load[v] >= best {
					ok = false
				}
			}
			if ok {
				savedMax := curMax
				curMax = newMax
				assign[i] = ci
				dfs(pos + 1)
				assign[i] = -1
				curMax = savedMax
			}
			for _, v := range p {
				load[v]--
			}
			if best == 1 && bestAssign != nil {
				return // cannot do better than 1
			}
		}
	}
	dfs(0)

	if bestAssign == nil {
		// The heuristic bound was already optimal; recover its routing.
		h, err := MinCongestion(g, prob, MinCongestionOptions{Seed: 1})
		if err != nil {
			return nil, 0, err
		}
		return h, h.NodeCongestion(g.N()), nil
	}
	out := &Routing{Problem: prob, Paths: make([]Path, len(prob))}
	for i, ci := range bestAssign {
		out.Paths[i] = cands[i][ci]
	}
	return out, best, nil
}

// enumerateSimplePaths lists all simple src–dst paths with at most limit
// edges, erroring out past maxCand.
func enumerateSimplePaths(g *graph.Graph, src, dst int32, limit, maxCand int) ([]Path, error) {
	var out []Path
	onPath := make([]bool, g.N())
	stack := make(Path, 0, limit+1)
	var dfs func(v int32) error
	dfs = func(v int32) error {
		stack = append(stack, v)
		onPath[v] = true
		defer func() {
			stack = stack[:len(stack)-1]
			onPath[v] = false
		}()
		if v == dst {
			out = append(out, append(Path(nil), stack...))
			if len(out) > maxCand {
				return fmt.Errorf("routing: more than %d candidate paths for (%d,%d)", maxCand, src, dst)
			}
			return nil
		}
		if len(stack) > limit {
			return nil
		}
		for _, w := range g.Neighbors(v) {
			if !onPath[w] {
				if err := dfs(w); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := dfs(src); err != nil {
		return nil, err
	}
	return out, nil
}
