package routing

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// SPSampler draws uniformly random shortest paths between vertex pairs.
// It materializes the BFS shortest-path DAG from the source, counts the
// number of shortest paths into every vertex, and walks backward from the
// destination choosing predecessors proportionally to their path counts —
// so every shortest path is returned with equal probability.
//
// Randomizing over shortest paths is the natural way to spread congestion
// without sacrificing any distance (it generalizes Theorem 2's "choose a
// replacement path uniformly at random" rule from 3-hop detours to
// arbitrary pairs), and the ablation experiments use it as a router
// variant.
type SPSampler struct {
	g       *graph.Graph
	dist    []int32
	count   []float64 // number of shortest paths from src (float to avoid overflow)
	stamp   []int32
	gen     int32
	queue   []int32
	lastSrc int32
}

// NewSPSampler creates a sampler for g.
func NewSPSampler(g *graph.Graph) *SPSampler {
	n := g.N()
	return &SPSampler{
		g:       g,
		dist:    make([]int32, n),
		count:   make([]float64, n),
		stamp:   make([]int32, n),
		lastSrc: -1,
	}
}

// prepare runs counting-BFS from src unless already cached.
func (s *SPSampler) prepare(src int32) {
	if s.lastSrc == src {
		return
	}
	s.lastSrc = src
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.queue = append(s.queue, src)
	s.dist[src] = 0
	s.count[src] = 1
	s.stamp[src] = s.gen
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		dv := s.dist[v]
		cv := s.count[v]
		for _, w := range s.g.Neighbors(v) {
			if s.stamp[w] != s.gen {
				s.stamp[w] = s.gen
				s.dist[w] = dv + 1
				s.count[w] = cv
				s.queue = append(s.queue, w)
			} else if s.dist[w] == dv+1 {
				s.count[w] += cv
			}
		}
	}
}

// NumShortestPaths returns the number of distinct shortest src–dst paths
// (as a float64; exact for counts below 2⁵³) and the distance. Returns
// (0, Unreachable) for disconnected pairs.
func (s *SPSampler) NumShortestPaths(src, dst int32) (float64, int32) {
	s.prepare(src)
	if s.stamp[dst] != s.gen {
		return 0, graph.Unreachable
	}
	return s.count[dst], s.dist[dst]
}

// Sample returns a uniformly random shortest path from src to dst, or nil
// if dst is unreachable.
func (s *SPSampler) Sample(src, dst int32, r *rng.RNG) Path {
	s.prepare(src)
	if s.stamp[dst] != s.gen {
		return nil
	}
	// Walk backward: from v, choose predecessor u (dist[u] = dist[v]−1,
	// edge (u,v)) with probability count[u] / Σ count of predecessors.
	length := s.dist[dst]
	path := make(Path, length+1)
	path[length] = dst
	v := dst
	for d := length; d > 0; d-- {
		total := 0.0
		for _, u := range s.g.Neighbors(v) {
			if s.stamp[u] == s.gen && s.dist[u] == d-1 {
				total += s.count[u]
			}
		}
		pick := r.Float64() * total
		var chosen int32 = -1
		for _, u := range s.g.Neighbors(v) {
			if s.stamp[u] == s.gen && s.dist[u] == d-1 {
				pick -= s.count[u]
				if pick <= 0 {
					chosen = u
					break
				}
			}
		}
		if chosen == -1 {
			// Numerical corner: take the last valid predecessor.
			for _, u := range s.g.Neighbors(v) {
				if s.stamp[u] == s.gen && s.dist[u] == d-1 {
					chosen = u
				}
			}
		}
		path[d-1] = chosen
		v = chosen
	}
	return path
}

// RandomShortestPaths routes every pair along an independently sampled
// uniformly random shortest path. Pairs are grouped by source so the
// counting BFS is reused.
func RandomShortestPaths(g *graph.Graph, prob Problem, r *rng.RNG) (*Routing, error) {
	paths := make([]Path, len(prob))
	bySrc := make(map[int32][]int)
	for i, p := range prob {
		bySrc[p.Src] = append(bySrc[p.Src], i)
	}
	s := NewSPSampler(g)
	// Deterministic iteration order over sources.
	srcs := make([]int32, 0, len(bySrc))
	for src := range bySrc {
		srcs = append(srcs, src)
	}
	sortInt32s(srcs)
	for _, src := range srcs {
		for _, i := range bySrc[src] {
			p := s.Sample(src, prob[i].Dst, r)
			if p == nil {
				return nil, errDisconnected(prob[i])
			}
			paths[i] = p
		}
	}
	return &Routing{Problem: prob, Paths: paths}, nil
}

func errDisconnected(p Pair) error {
	return &disconnectedError{p}
}

type disconnectedError struct{ p Pair }

func (e *disconnectedError) Error() string {
	return "routing: pair disconnected"
}

func sortInt32s(xs []int32) {
	// Insertion sort: source sets are small in practice; avoids pulling
	// in sort with closures on the hot path.
	for i := 1; i < len(xs); i++ {
		j := i
		for j > 0 && xs[j] < xs[j-1] {
			xs[j], xs[j-1] = xs[j-1], xs[j]
			j--
		}
	}
}
