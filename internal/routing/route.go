package routing

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// errOnce records the first error reported by any worker.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

// ShortestPaths routes every pair of the problem along one BFS shortest
// path, computing pairs in parallel. Returns an error if some pair is
// disconnected.
func ShortestPaths(g *graph.Graph, prob Problem) (*Routing, error) {
	paths := make([]Path, len(prob))
	var eo errOnce
	graph.ParallelRange(len(prob), func(lo, hi int) {
		scratch := graph.NewBFSScratch(g.N())
		parent := make([]int32, g.N())
		for i := lo; i < hi; i++ {
			p := scratch.PathWithin(g, prob[i].Src, prob[i].Dst, -1, parent)
			if p == nil {
				eo.set(fmt.Errorf("routing: pair (%d,%d) disconnected", prob[i].Src, prob[i].Dst))
				return
			}
			paths[i] = p
		}
	})
	if eo.err != nil {
		return nil, eo.err
	}
	return &Routing{Problem: prob, Paths: paths}, nil
}

// Valiant routes each pair via a uniformly random intermediate vertex
// (src → w → dst along BFS shortest paths). On expanders this classic
// trick yields short paths with low congestion w.h.p.; the harness uses it
// as the stand-in for the Scheideler permutation-routing result quoted for
// the Table 1 rows [16] and [5] (see DESIGN.md, substitutions).
func Valiant(g *graph.Graph, prob Problem, r *rng.RNG) (*Routing, error) {
	n := g.N()
	// Draw all intermediates up front from the parent stream so the result
	// is independent of worker scheduling.
	mids := make([]int32, len(prob))
	for i := range mids {
		mids[i] = int32(r.Intn(n))
	}
	paths := make([]Path, len(prob))
	var eo errOnce
	graph.ParallelRange(len(prob), func(lo, hi int) {
		scratch := graph.NewBFSScratch(n)
		parent := make([]int32, n)
		for i := lo; i < hi; i++ {
			src, dst, mid := prob[i].Src, prob[i].Dst, mids[i]
			p1 := scratch.PathWithin(g, src, mid, -1, parent)
			if p1 == nil {
				eo.set(fmt.Errorf("routing: (%d,%d) unreachable", src, mid))
				return
			}
			p2 := scratch.PathWithin(g, mid, dst, -1, parent)
			if p2 == nil {
				eo.set(fmt.Errorf("routing: (%d,%d) unreachable", mid, dst))
				return
			}
			// Concatenate, dropping the duplicated intermediate vertex.
			full := make(Path, 0, len(p1)+len(p2)-1)
			full = append(full, p1...)
			full = append(full, p2[1:]...)
			paths[i] = simplifyWalk(full)
		}
	})
	if eo.err != nil {
		return nil, eo.err
	}
	return &Routing{Problem: prob, Paths: paths}, nil
}

// simplifyWalk removes loops from a walk (repeated vertices), producing a
// simple path with the same endpoints. Keeping paths simple keeps the
// congestion accounting tight.
func simplifyWalk(w Path) Path {
	last := make(map[int32]int, len(w))
	out := make(Path, 0, len(w))
	for _, v := range w {
		if j, ok := last[v]; ok {
			// Cut the loop back to the previous occurrence.
			for _, u := range out[j+1:] {
				delete(last, u)
			}
			out = out[:j+1]
			continue
		}
		last[v] = len(out)
		out = append(out, v)
	}
	return out
}

// RandomProblem samples k source–destination pairs uniformly (endpoints
// distinct per pair).
func RandomProblem(n, k int, r *rng.RNG) Problem {
	prob := make(Problem, k)
	for i := range prob {
		s := int32(r.Intn(n))
		d := int32(r.Intn(n))
		for d == s {
			d = int32(r.Intn(n))
		}
		prob[i] = Pair{Src: s, Dst: d}
	}
	return prob
}

// RandomPermutationProblem builds a permutation routing problem: node i
// sends to π(i) for a uniform permutation π, skipping fixed points.
func RandomPermutationProblem(n int, r *rng.RNG) Problem {
	perm := r.Perm(n)
	prob := make(Problem, 0, n)
	for i, j := range perm {
		if i != j {
			prob = append(prob, Pair{Src: int32(i), Dst: int32(j)})
		}
	}
	return prob
}

// RandomMatchingProblem builds a matching routing problem on n vertices by
// pairing up 2k distinct random vertices.
func RandomMatchingProblem(n, k int, r *rng.RNG) Problem {
	if 2*k > n {
		panic("routing: matching larger than n/2")
	}
	verts := r.Sample(n, 2*k)
	prob := make(Problem, k)
	for i := 0; i < k; i++ {
		prob[i] = Pair{Src: int32(verts[2*i]), Dst: int32(verts[2*i+1])}
	}
	return prob
}
