package routing

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/matching"
)

// edgeRef addresses one edge occurrence inside one path of a routing:
// path Paths[PathIdx], edge (p[Pos], p[Pos+1]).
type edgeRef struct {
	PathIdx int32
	Pos     int32
}

// Level is one level of the Algorithm 2 decomposition: the subgraph
// G_k = (V, Y_k) induced by the level's edges, its degree d_k, and the
// partition of Y_k into matchings via a proper edge coloring with
// m_k ≤ d_k+1 colors (Misra–Gries).
type Level struct {
	Edges     []graph.Edge   // Y_k, each edge once
	Degree    int            // d_k
	Matchings [][]graph.Edge // color classes; each is a matching
	// assignment of this level's (path, pos) pairs:
	// refs[i] is the occurrence that consumed Edges[i].
	refs []edgeRef
	// colorOf[i] is the color (matching index) of Edges[i].
	colorOf []int32
}

// Decomposition is the output of Algorithm 2's first half (lines 1–17):
// the routing's edges partitioned into per-level matchings, with each edge
// occurrence of each path assigned to exactly one (level, matching) slot.
type Decomposition struct {
	N       int
	Routing *Routing
	Levels  []*Level
	// slot[pathIdx][pos] = (level, matching index within level, index of
	// the edge within that matching), so substitution is O(1) per edge.
	slot [][]slotRef
}

type slotRef struct {
	Level int32
	Match int32
	Idx   int32
}

// NumMatchings returns the total number of matchings across levels
// (Lemma 23 bounds this by O(n³); in practice it is far smaller).
func (d *Decomposition) NumMatchings() int {
	total := 0
	for _, l := range d.Levels {
		total += len(l.Matchings)
	}
	return total
}

// DegreePlusOneSum returns Σ_k (d_k + 1), the quantity Lemma 21 bounds by
// 12·C(P)·log₂ n.
func (d *Decomposition) DegreePlusOneSum() int {
	s := 0
	for _, l := range d.Levels {
		s += l.Degree + 1
	}
	return s
}

// Lemma21Bound returns 12·C(P)·log₂ n for this decomposition's routing.
func (d *Decomposition) Lemma21Bound() float64 {
	c := d.Routing.NodeCongestion(d.N)
	return 12 * float64(c) * math.Log2(float64(d.N))
}

// EdgeColorer colors a level subgraph into matchings. Algorithm 2 uses
// Misra–Gries (m_k ≤ d_k+1 colors); the ablation experiments also run the
// greedy colorer (≤ 2d_k−1 colors) to quantify what the tighter coloring
// buys.
type EdgeColorer func(*graph.Graph) *matching.EdgeColoring

// Decompose runs lines 1–17 of Algorithm 2: it assigns every edge
// occurrence of every path to a level (each level uses each edge at most
// once), then edge-colors each level subgraph with ≤ d_k+1 colors so each
// color class is a matching.
func Decompose(n int, r *Routing) (*Decomposition, error) {
	return DecomposeWith(n, r, matching.MisraGries, true)
}

// DecomposeWith is Decompose with a custom level colorer. strict enforces
// the m_k ≤ d_k+1 bound (set false for colorers without that guarantee).
func DecomposeWith(n int, r *Routing, color EdgeColorer, strict bool) (*Decomposition, error) {
	// A_p: remaining edge occurrences per path, expressed as positions.
	// An edge may appear several times across paths (and, for non-simple
	// walks, within a path); each occurrence is consumed exactly once.
	type occList struct {
		refs []edgeRef
	}
	remaining := make(map[graph.Edge]*occList)
	for pi, p := range r.Paths {
		for j := 0; j+1 < len(p); j++ {
			e := graph.Edge{U: p[j], V: p[j+1]}.Normalize()
			l := remaining[e]
			if l == nil {
				l = &occList{}
				remaining[e] = l
			}
			l.refs = append(l.refs, edgeRef{PathIdx: int32(pi), Pos: int32(j)})
		}
	}

	d := &Decomposition{N: n, Routing: r}
	d.slot = make([][]slotRef, len(r.Paths))
	for pi, p := range r.Paths {
		if p.Len() > 0 {
			d.slot[pi] = make([]slotRef, p.Len())
		}
	}

	// Build levels: level k takes one pending occurrence of every edge
	// that still has pending occurrences. Y_{k+1} ⊆ Y_k holds because an
	// edge with occurrences left at level k+1 had some at level k too.
	for len(remaining) > 0 {
		level := &Level{}
		for e, l := range remaining {
			level.Edges = append(level.Edges, e)
			level.refs = append(level.refs, l.refs[len(l.refs)-1])
			l.refs = l.refs[:len(l.refs)-1]
			if len(l.refs) == 0 {
				delete(remaining, e)
			}
		}
		// Canonicalize edge order (map iteration is randomized) so the
		// decomposition is deterministic for a given routing.
		sortLevel(level)
		d.Levels = append(d.Levels, level)
	}

	// Color each level and record slots.
	for li, level := range d.Levels {
		sub := graph.FromEdges(n, level.Edges)
		level.Degree = sub.MaxDegree()
		coloring := color(sub)
		if strict && coloring.NumColors > level.Degree+1 {
			return nil, fmt.Errorf("routing: level %d used %d colors > d_k+1 = %d",
				li, coloring.NumColors, level.Degree+1)
		}
		level.Matchings = make([][]graph.Edge, coloring.NumColors)
		level.colorOf = make([]int32, len(level.Edges))
		// The subgraph's canonical edge order equals level.Edges' sorted
		// order, which sortLevel established; map colors back by index.
		subEdges := sub.Edges()
		if len(subEdges) != len(level.Edges) {
			return nil, fmt.Errorf("routing: level %d lost edges in subgraph", li)
		}
		idxWithin := make([]int32, len(level.Edges))
		for i, e := range subEdges {
			if e != level.Edges[i] {
				return nil, fmt.Errorf("routing: level %d edge order mismatch", li)
			}
			c := coloring.Colors[i]
			level.colorOf[i] = c
			idxWithin[i] = int32(len(level.Matchings[c]))
			level.Matchings[c] = append(level.Matchings[c], e)
		}
		for i, ref := range level.refs {
			d.slot[ref.PathIdx][ref.Pos] = slotRef{
				Level: int32(li),
				Match: level.colorOf[i],
				Idx:   idxWithin[i],
			}
		}
	}
	return d, nil
}

// sortLevel sorts the level's parallel slices (Edges, refs) by edge.
func sortLevel(l *Level) {
	idx := make([]int, len(l.Edges))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort on the permutation; levels are typically small and
	// this keeps the parallel-slice permutation explicit.
	lessEdge := func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	}
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && lessEdge(l.Edges[idx[j]], l.Edges[idx[j-1]]) {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			j--
		}
	}
	edges := make([]graph.Edge, len(l.Edges))
	refs := make([]edgeRef, len(l.refs))
	for to, from := range idx {
		edges[to] = l.Edges[from]
		refs[to] = l.refs[from]
	}
	l.Edges = edges
	l.refs = refs
}

// MatchingRouter produces a substitute routing on a spanner for a matching
// routing problem: given matching edges, it returns one path per edge,
// oriented from e.U to e.V. Implementations are provided by the spanner
// package (identity for surviving edges, 3-detours for removed ones).
type MatchingRouter interface {
	// RouteMatching returns paths[i] from edges[i].U to edges[i].V in the
	// spanner. The input is a matching in the base graph.
	RouteMatching(edges []graph.Edge) ([]Path, error)
}

// Substitute runs the second half of Algorithm 2 (lines 18–27): each
// matching of each level is routed on the spanner via router, and every
// path of the original routing is rebuilt by splicing in the matching
// paths (oriented to the traversal direction).
func (d *Decomposition) Substitute(router MatchingRouter) (*Routing, error) {
	// Route every matching once.
	routed := make([][][]Path, len(d.Levels))
	for li, level := range d.Levels {
		routed[li] = make([][]Path, len(level.Matchings))
		for mi, m := range level.Matchings {
			paths, err := router.RouteMatching(m)
			if err != nil {
				return nil, fmt.Errorf("routing: level %d matching %d: %w", li, mi, err)
			}
			if len(paths) != len(m) {
				return nil, fmt.Errorf("routing: level %d matching %d: %d paths for %d edges",
					li, mi, len(paths), len(m))
			}
			routed[li][mi] = paths
		}
	}

	out := &Routing{Problem: d.Routing.Problem, Paths: make([]Path, len(d.Routing.Paths))}
	for pi, p := range d.Routing.Paths {
		if p.Len() == 0 {
			out.Paths[pi] = append(Path(nil), p...)
			continue
		}
		np := make(Path, 0, 3*p.Len()+1)
		np = append(np, p[0])
		for j := 0; j+1 < len(p); j++ {
			ref := d.slot[pi][j]
			level := d.Levels[ref.Level]
			e := level.Matchings[ref.Match][ref.Idx]
			q := routed[ref.Level][ref.Match][ref.Idx]
			// Orient q to run p[j] -> p[j+1].
			if p[j] == e.U {
				np = append(np, q[1:]...)
			} else {
				rq := q.Reversed()
				np = append(np, rq[1:]...)
			}
		}
		out.Paths[pi] = np
	}
	return out, nil
}

// SubstituteViaMatchings is the end-to-end Theorem 1 pipeline: decompose
// the routing into matchings and splice the router's per-matching paths
// back into a substitute routing on the spanner.
func SubstituteViaMatchings(n int, r *Routing, router MatchingRouter) (*Routing, *Decomposition, error) {
	d, err := Decompose(n, r)
	if err != nil {
		return nil, nil, err
	}
	sub, err := d.Substitute(router)
	if err != nil {
		return nil, nil, err
	}
	return sub, d, nil
}
