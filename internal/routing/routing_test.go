package routing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestProblemValidate(t *testing.T) {
	if err := (Problem{{0, 1}, {2, 3}}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (Problem{{1, 1}}).Validate(4); err == nil {
		t.Fatal("accepted equal endpoints")
	}
	if err := (Problem{{0, 9}}).Validate(4); err == nil {
		t.Fatal("accepted out-of-range")
	}
}

func TestIsMatching(t *testing.T) {
	if !(Problem{{0, 1}, {2, 3}}).IsMatching() {
		t.Fatal("disjoint pairs rejected")
	}
	if (Problem{{0, 1}, {1, 2}}).IsMatching() {
		t.Fatal("shared node accepted")
	}
}

func TestPathBasics(t *testing.T) {
	g := gen.Path(5)
	p := Path{0, 1, 2, 3}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.Valid(g, 0, 3) {
		t.Fatal("valid path rejected")
	}
	if p.Valid(g, 0, 2) {
		t.Fatal("wrong destination accepted")
	}
	if (Path{0, 2}).Valid(g, 0, 2) {
		t.Fatal("non-edge accepted")
	}
	rev := p.Reversed()
	if rev[0] != 3 || rev[3] != 0 {
		t.Fatalf("Reversed = %v", rev)
	}
}

func TestNodeCongestion(t *testing.T) {
	r := &Routing{
		Problem: Problem{{0, 2}, {1, 3}},
		Paths:   []Path{{0, 1, 2}, {1, 2, 3}},
	}
	prof := r.NodeCongestionProfile(4)
	want := []int{1, 2, 2, 1}
	for i := range want {
		if prof[i] != want[i] {
			t.Fatalf("profile[%d] = %d, want %d", i, prof[i], want[i])
		}
	}
	if c := r.NodeCongestion(4); c != 2 {
		t.Fatalf("C(P) = %d, want 2", c)
	}
}

func TestNodeCongestionCountsWalkOnce(t *testing.T) {
	// A non-simple walk visiting node 1 twice contributes 1 to C(P, 1).
	r := &Routing{
		Problem: Problem{{0, 3}},
		Paths:   []Path{{0, 1, 2, 1, 3}},
	}
	prof := r.NodeCongestionProfile(4)
	if prof[1] != 1 {
		t.Fatalf("walk counted twice: %d", prof[1])
	}
}

func TestEdgeCongestion(t *testing.T) {
	g := gen.Path(4)
	r := &Routing{
		Problem: Problem{{0, 3}, {1, 2}},
		Paths:   []Path{{0, 1, 2, 3}, {1, 2}},
	}
	if c := r.EdgeCongestion(g); c != 2 {
		t.Fatalf("edge congestion = %d, want 2", c)
	}
}

func TestShortestPathsRouting(t *testing.T) {
	g := gen.Cycle(10)
	prob := Problem{{0, 5}, {2, 7}, {9, 4}}
	r, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i, p := range r.Paths {
		want := g.Dist(prob[i].Src, prob[i].Dst)
		if int32(p.Len()) != want {
			t.Fatalf("pair %d: length %d, want %d", i, p.Len(), want)
		}
	}
}

func TestShortestPathsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if _, err := ShortestPaths(g, Problem{{0, 3}}); err == nil {
		t.Fatal("expected error for disconnected pair")
	}
}

func TestValiantRoutingValid(t *testing.T) {
	r := rng.New(3)
	g := gen.MustRandomRegular(100, 6, r)
	prob := RandomPermutationProblem(100, r)
	rt, err := Valiant(g, prob, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Paths should be simple after walk simplification.
	for _, p := range rt.Paths {
		seen := make(map[int32]bool)
		for _, v := range p {
			if seen[v] {
				t.Fatalf("non-simple path %v", p)
			}
			seen[v] = true
		}
	}
}

func TestValiantCongestionOnExpander(t *testing.T) {
	r := rng.New(4)
	n := 200
	g := gen.MustRandomRegular(n, 8, r)
	prob := RandomPermutationProblem(n, r)
	rt, err := Valiant(g, prob, r)
	if err != nil {
		t.Fatal(err)
	}
	c := rt.NodeCongestion(n)
	// Valiant routing on an expander should give polylog congestion; allow
	// a generous constant times log²n ≈ 58.
	limit := int(10 * math.Pow(math.Log2(float64(n)), 2))
	if c > limit {
		t.Fatalf("Valiant congestion %d exceeds %d", c, limit)
	}
	// And path lengths O(log n).
	if ml := rt.MaxLength(); ml > 6*int(math.Log2(float64(n))) {
		t.Fatalf("Valiant max length %d too large", ml)
	}
}

func TestSimplifyWalk(t *testing.T) {
	w := Path{0, 1, 2, 1, 3}
	s := simplifyWalk(w)
	want := Path{0, 1, 3}
	if len(s) != len(want) {
		t.Fatalf("simplify = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("simplify = %v, want %v", s, want)
		}
	}
	// Idempotent on simple paths.
	s2 := simplifyWalk(s)
	if len(s2) != len(s) {
		t.Fatalf("simplify not idempotent: %v", s2)
	}
}

func TestRandomProblemGenerators(t *testing.T) {
	r := rng.New(5)
	p1 := RandomProblem(50, 20, r)
	if err := p1.Validate(50); err != nil {
		t.Fatal(err)
	}
	p2 := RandomMatchingProblem(50, 10, r)
	if err := p2.Validate(50); err != nil {
		t.Fatal(err)
	}
	if !p2.IsMatching() {
		t.Fatal("RandomMatchingProblem not a matching")
	}
	p3 := RandomPermutationProblem(50, r)
	if err := p3.Validate(50); err != nil {
		t.Fatal(err)
	}
	srcSeen := make(map[int32]bool)
	dstSeen := make(map[int32]bool)
	for _, pr := range p3 {
		if srcSeen[pr.Src] || dstSeen[pr.Dst] {
			t.Fatal("permutation reuses a source or destination")
		}
		srcSeen[pr.Src] = true
		dstSeen[pr.Dst] = true
	}
}

// identityRouter routes each matching edge as itself — valid when the
// spanner contains the matching (used to test decomposition plumbing).
type identityRouter struct{}

func (identityRouter) RouteMatching(edges []graph.Edge) ([]Path, error) {
	out := make([]Path, len(edges))
	for i, e := range edges {
		out[i] = Path{e.U, e.V}
	}
	return out, nil
}

func TestDecomposeLevelsAreMatchingPartition(t *testing.T) {
	r := rng.New(6)
	g := gen.MustRandomRegular(60, 6, r)
	prob := RandomProblem(60, 30, r)
	rt, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(g.N(), rt)
	if err != nil {
		t.Fatal(err)
	}
	// Every matching is node-disjoint.
	for _, level := range d.Levels {
		for _, m := range level.Matchings {
			used := make(map[int32]bool)
			for _, e := range m {
				if used[e.U] || used[e.V] {
					t.Fatal("level matching not node-disjoint")
				}
				used[e.U] = true
				used[e.V] = true
			}
		}
	}
	// Total matching edges across levels = total edge occurrences in P.
	occ := 0
	for _, p := range rt.Paths {
		occ += p.Len()
	}
	got := 0
	for _, level := range d.Levels {
		got += len(level.Edges)
	}
	if got != occ {
		t.Fatalf("levels hold %d edge occurrences, want %d", got, occ)
	}
}

func TestDecomposeLemma21Bound(t *testing.T) {
	r := rng.New(7)
	g := gen.MustRandomRegular(80, 8, r)
	prob := RandomProblem(80, 60, r)
	rt, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(g.N(), rt)
	if err != nil {
		t.Fatal(err)
	}
	if got, bound := float64(d.DegreePlusOneSum()), d.Lemma21Bound(); got > bound {
		t.Fatalf("Σ(d_k+1) = %v exceeds Lemma 21 bound %v", got, bound)
	}
}

func TestSubstituteIdentityRoundTrips(t *testing.T) {
	r := rng.New(8)
	g := gen.MustRandomRegular(50, 6, r)
	prob := RandomProblem(50, 25, r)
	rt, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	sub, d, err := SubstituteViaMatchings(g.N(), rt, identityRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumMatchings() == 0 {
		t.Fatal("no matchings produced")
	}
	// Identity routing must reproduce the original paths exactly.
	for i, p := range sub.Paths {
		orig := rt.Paths[i]
		if len(p) != len(orig) {
			t.Fatalf("path %d length changed: %v vs %v", i, p, orig)
		}
		for j := range p {
			if p[j] != orig[j] {
				t.Fatalf("path %d differs: %v vs %v", i, p, orig)
			}
		}
	}
}

// detourRouter replaces each edge (u,v) with a fixed-length detour if one
// exists in its spanner; used to test orientation handling.
type detourRouter struct {
	h *graph.Graph
}

func (d detourRouter) RouteMatching(edges []graph.Edge) ([]Path, error) {
	out := make([]Path, len(edges))
	for i, e := range edges {
		p := d.h.ShortestPath(e.U, e.V)
		if p == nil {
			return nil, errUnreachable
		}
		out[i] = p
	}
	return out, nil
}

var errUnreachable = errorString("unreachable pair")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestSubstituteOnSpannerIsValid(t *testing.T) {
	r := rng.New(9)
	g := gen.MustRandomRegular(60, 10, r)
	// Spanner: drop ~half the edges but keep connectivity by retrying.
	var h *graph.Graph
	for {
		h = g.FilterEdges(func(e graph.Edge) bool { return r.Bernoulli(0.6) })
		if h.Connected() {
			break
		}
	}
	prob := RandomProblem(60, 40, r)
	rt, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := SubstituteViaMatchings(g.N(), rt, detourRouter{h: h})
	if err != nil {
		t.Fatal(err)
	}
	// The substitute routing must be valid in H and answer the problem.
	if err := sub.Validate(h); err != nil {
		t.Fatal(err)
	}
}

// Property: decomposition is lossless — splicing identity paths back
// reproduces any valid routing.
func TestPropertyDecomposeSubstituteIdentity(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + 2*r.Intn(20)
		g := gen.MustRandomRegular(n, 4, r)
		if !g.Connected() {
			return true // skip rare disconnected instance
		}
		prob := RandomProblem(n, 1+r.Intn(2*n), r)
		rt, err := ShortestPaths(g, prob)
		if err != nil {
			return false
		}
		sub, _, err := SubstituteViaMatchings(n, rt, identityRouter{})
		if err != nil {
			return false
		}
		for i := range sub.Paths {
			if len(sub.Paths[i]) != len(rt.Paths[i]) {
				return false
			}
			for j := range sub.Paths[i] {
				if sub.Paths[i][j] != rt.Paths[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Lemma 21 — Σ(d_k+1) ≤ 12·C(P)·log₂ n on random shortest-path
// routings.
func TestPropertyLemma21(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 16 + 2*r.Intn(30)
		g := gen.MustRandomRegular(n, 6, r)
		if !g.Connected() {
			return true
		}
		prob := RandomProblem(n, 1+r.Intn(3*n), r)
		rt, err := ShortestPaths(g, prob)
		if err != nil {
			return false
		}
		d, err := Decompose(n, rt)
		if err != nil {
			return false
		}
		return float64(d.DegreePlusOneSum()) <= d.Lemma21Bound()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	r := rng.New(10)
	g := gen.MustRandomRegular(200, 10, r)
	prob := RandomProblem(200, 200, r)
	rt, err := ShortestPaths(g, prob)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(g.N(), rt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPaths(b *testing.B) {
	r := rng.New(11)
	g := gen.MustRandomRegular(500, 10, r)
	prob := RandomProblem(500, 500, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestPaths(g, prob); err != nil {
			b.Fatal(err)
		}
	}
}

func TestValiantDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if _, err := Valiant(g, Problem{{Src: 0, Dst: 1}}, rng.New(1)); err == nil {
		t.Fatal("Valiant accepted a disconnected graph (random intermediate unreachable)")
	}
}

func TestRoutingStretchAgainstBase(t *testing.T) {
	base := &Routing{
		Problem: Problem{{Src: 0, Dst: 2}},
		Paths:   []Path{{0, 1, 2}},
	}
	longer := &Routing{
		Problem: base.Problem,
		Paths:   []Path{{0, 3, 4, 5, 2}},
	}
	if s := longer.Stretch(base); s != 2 {
		t.Fatalf("stretch = %v, want 2", s)
	}
	if s := base.Stretch(base); s != 1 {
		t.Fatalf("self stretch = %v, want 1", s)
	}
}

func TestTotalLengthAndMaxLength(t *testing.T) {
	r := &Routing{
		Problem: Problem{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}},
		Paths:   []Path{{0, 1, 2}, {1, 2, 3, 4}},
	}
	if r.TotalLength() != 5 {
		t.Fatalf("total length %d, want 5", r.TotalLength())
	}
	if r.MaxLength() != 3 {
		t.Fatalf("max length %d, want 3", r.MaxLength())
	}
}
