package routing

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// randomWalkRouting builds k random walks of varying length (with repeat
// visits, exercising the per-path de-duplication stamp) on n vertices.
func randomWalkRouting(n, k int, seed uint64) *Routing {
	r := rng.New(seed)
	rt := &Routing{Problem: make(Problem, k), Paths: make([]Path, k)}
	for i := 0; i < k; i++ {
		length := 1 + r.Intn(12)
		p := make(Path, 0, length+1)
		p = append(p, int32(r.Intn(n)))
		for j := 0; j < length; j++ {
			// Deliberately allow revisits: C(P, v) counts a path once per
			// vertex regardless of how often the walk returns.
			p = append(p, int32(r.Intn(n)))
		}
		rt.Problem[i] = Pair{Src: p[0], Dst: p[len(p)-1]}
		rt.Paths[i] = p
	}
	return rt
}

// The parallel congestion kernel merges per-worker counts by summation,
// which must reproduce the serial profile exactly for every worker count.
func TestNodeCongestionProfileDeterministicAcrossWorkers(t *testing.T) {
	const n = 200
	for _, k := range []int{0, 1, 7, 500} {
		rt := randomWalkRouting(n, k, uint64(k)+1)
		want := rt.NodeCongestionProfileWorkers(n, 1)
		for _, workers := range []int{0, 2, 3, 8, 64} {
			got := rt.NodeCongestionProfileWorkers(n, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d workers=%d: profile differs from serial", k, workers)
			}
			if gotMax, wantMax := rt.NodeCongestionWorkers(n, workers), rt.NodeCongestionWorkers(n, 1); gotMax != wantMax {
				t.Fatalf("k=%d workers=%d: C(P) %d != serial %d", k, workers, gotMax, wantMax)
			}
		}
	}
}

// Repeat visits within one path must count once — pinned against the
// paper's set-membership definition C(P, v) = |{p_i : v ∈ p_i}|.
func TestNodeCongestionCountsRepeatVisitsOnce(t *testing.T) {
	rt := &Routing{Paths: []Path{{0, 1, 0, 2, 0}, {1, 2}}}
	prof := rt.NodeCongestionProfile(3)
	if want := []int{1, 2, 2}; !reflect.DeepEqual(prof, want) {
		t.Fatalf("profile = %v, want %v", prof, want)
	}
}
