package routing

// Lemma-level tests for Section 6 (decomposition into matchings).

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// spannerRouter routes matching edges on a fixed spanner via shortest
// paths, recording the per-matching congestion β' it realizes.
type spannerRouter struct {
	h        *graph.Graph
	maxBeta  int
	maxAlpha int
}

func (s *spannerRouter) RouteMatching(edges []graph.Edge) ([]Path, error) {
	out := make([]Path, len(edges))
	counts := make(map[int32]int)
	for i, e := range edges {
		p := s.h.ShortestPath(e.U, e.V)
		if p == nil {
			return nil, errUnreachable2
		}
		out[i] = p
		if len(p)-1 > s.maxAlpha {
			s.maxAlpha = len(p) - 1
		}
		for _, v := range p {
			counts[v]++
			if counts[v] > s.maxBeta {
				s.maxBeta = counts[v]
			}
		}
	}
	return out, nil
}

var errUnreachable2 = errorString("unreachable")

// Lemma 20: if C(P) = 1 (the routing is node-disjoint), the substitute
// routing built from per-matching (α', β')-substitutes has congestion at
// most 2β' (m_P ≤ 2 matchings suffice).
func TestLemma20UnitCongestionCase(t *testing.T) {
	r := rng.New(201)
	g := gen.MustRandomRegular(100, 8, r)
	var h *graph.Graph
	for {
		h = g.FilterEdges(func(graph.Edge) bool { return r.Bernoulli(0.6) })
		if h.Connected() {
			break
		}
	}
	// Build a node-disjoint routing: vertex-disjoint short paths.
	used := make([]bool, g.N())
	var prob Problem
	var paths []Path
	for _, e := range g.Edges() {
		if used[e.U] || used[e.V] {
			continue
		}
		// Extend to a 2-edge path if possible for a non-trivial test.
		var third int32 = -1
		for _, w := range g.Neighbors(e.V) {
			if w != e.U && !used[w] {
				third = w
				break
			}
		}
		if third >= 0 {
			prob = append(prob, Pair{Src: e.U, Dst: third})
			paths = append(paths, Path{e.U, e.V, third})
			used[third] = true
		} else {
			prob = append(prob, Pair{Src: e.U, Dst: e.V})
			paths = append(paths, Path{e.U, e.V})
		}
		used[e.U] = true
		used[e.V] = true
	}
	rt := &Routing{Problem: prob, Paths: paths}
	if c := rt.NodeCongestion(g.N()); c != 1 {
		t.Fatalf("constructed routing has C(P) = %d, want 1", c)
	}
	dec, err := Decompose(g.N(), rt)
	if err != nil {
		t.Fatal(err)
	}
	// C(P) = 1: exactly one level, and at most d_1+1 ≤ 3 matchings (path
	// subgraph has degree ≤ 2).
	if len(dec.Levels) != 1 {
		t.Fatalf("C(P)=1 routing produced %d levels", len(dec.Levels))
	}
	if dec.Levels[0].Degree > 2 {
		t.Fatalf("level degree %d > 2 for a disjoint-paths routing", dec.Levels[0].Degree)
	}
	router := &spannerRouter{h: h}
	sub, err := dec.Substitute(router)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(h); err != nil {
		t.Fatal(err)
	}
	// Lemma 20 bound with m_P ≤ d_1+1 matchings: C(P') ≤ (d_1+1)·β'.
	limit := (dec.Levels[0].Degree + 1) * router.maxBeta
	if c := sub.NodeCongestion(g.N()); c > limit {
		t.Fatalf("substitute congestion %d > (d+1)·β' = %d", c, limit)
	}
}

// Lemma 22: C(P') ≤ 12·β'·C(P)·log₂ n for arbitrary routings.
func TestLemma22SubstituteCongestion(t *testing.T) {
	r := rng.New(202)
	n := 128
	g := gen.MustRandomRegular(n, 10, r)
	var h *graph.Graph
	for {
		h = g.FilterEdges(func(graph.Edge) bool { return r.Bernoulli(0.5) })
		if h.Connected() {
			break
		}
	}
	prob := RandomProblem(n, 3*n, r)
	onG, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(n, onG)
	if err != nil {
		t.Fatal(err)
	}
	router := &spannerRouter{h: h}
	sub, err := dec.Substitute(router)
	if err != nil {
		t.Fatal(err)
	}
	cP := onG.NodeCongestion(n)
	cSub := sub.NodeCongestion(n)
	bound := 12 * float64(router.maxBeta) * float64(cP) * math.Log2(float64(n))
	if float64(cSub) > bound {
		t.Fatalf("C(P') = %d > Lemma 22 bound %v (β'=%d, C(P)=%d)",
			cSub, bound, router.maxBeta, cP)
	}
	// Distance side of Lemma 22: per-path stretch ≤ α'.
	for i, p := range sub.Paths {
		if p.Len() > router.maxAlpha*onG.Paths[i].Len() {
			t.Fatalf("path %d stretch exceeds α' = %d", i, router.maxAlpha)
		}
	}
}

// Lemma 23: the number of distinct matchings is at most O(n³) — and in
// practice bounded by Σ_k (d_k+1), which we assert directly.
func TestLemma23MatchingCount(t *testing.T) {
	r := rng.New(203)
	n := 100
	g := gen.MustRandomRegular(n, 8, r)
	prob := RandomProblem(n, 5*n, r)
	onG, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(n, onG)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumMatchings() > dec.DegreePlusOneSum() {
		t.Fatalf("matchings %d exceed Σ(d_k+1) = %d", dec.NumMatchings(), dec.DegreePlusOneSum())
	}
	if int64(dec.NumMatchings()) > int64(n)*int64(n)*int64(n) {
		t.Fatalf("matchings %d exceed n³", dec.NumMatchings())
	}
}

// Y_{i+1} ⊆ Y_i: the level edge sets are nested (the structural invariant
// Lemma 21's range argument relies on).
func TestLevelsAreNested(t *testing.T) {
	r := rng.New(204)
	n := 80
	g := gen.MustRandomRegular(n, 8, r)
	prob := RandomProblem(n, 4*n, r)
	onG, err := ShortestPaths(g, prob)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(n, onG)
	if err != nil {
		t.Fatal(err)
	}
	for li := 1; li < len(dec.Levels); li++ {
		prev := make(map[graph.Edge]bool, len(dec.Levels[li-1].Edges))
		for _, e := range dec.Levels[li-1].Edges {
			prev[e] = true
		}
		for _, e := range dec.Levels[li].Edges {
			if !prev[e] {
				t.Fatalf("level %d edge %v absent from level %d", li, e, li-1)
			}
		}
		if dec.Levels[li].Degree > dec.Levels[li-1].Degree {
			t.Fatalf("degree increased across levels: %d then %d",
				dec.Levels[li-1].Degree, dec.Levels[li].Degree)
		}
	}
}
