package routing

import "repro/internal/graph"

// NodeCongestionProfile returns, for each vertex of an n-vertex graph, the
// number of paths of r that use it (C(P, v) in the paper). A path visiting
// a vertex multiple times (non-simple walk) counts once, matching the
// set-membership definition C(P, v) = |{p_i : v ∈ p_i}|. It is
// NodeCongestionProfileWorkers with the default worker count.
func (r *Routing) NodeCongestionProfile(n int) []int {
	return r.NodeCongestionProfileWorkers(n, 0)
}

// NodeCongestionProfileWorkers is the parallel congestion-accounting
// kernel: paths are swept on a pool of `workers` goroutines (0 means
// graph.Workers(), 1 runs inline), each worker accumulating into its own
// counts array, merged by summation afterwards. Because every path
// contributes exactly once per visited vertex and integer addition is
// order-independent, the profile is byte-identical for every worker count
// — the property the experiment harness's determinism tests pin down.
func (r *Routing) NodeCongestionProfileWorkers(n, workers int) []int {
	counts := make([]int, n)
	if len(r.Paths) == 0 {
		return counts
	}
	w := workers
	if w <= 0 {
		w = graph.Workers()
	}
	if w > len(r.Paths) {
		w = len(r.Paths)
	}
	if w == 1 {
		countPaths(r.Paths, 0, counts, newStamp(n))
		return counts
	}
	type state struct {
		counts, stamp []int
	}
	perWorker := make([]state, w)
	graph.ParallelRangeWorkers(len(r.Paths), workers, func(wi, lo, hi int) {
		st := &perWorker[wi]
		if st.counts == nil {
			st.counts = make([]int, n)
			st.stamp = newStamp(n)
		}
		countPaths(r.Paths[lo:hi], lo, st.counts, st.stamp)
	})
	for _, st := range perWorker {
		for v, cv := range st.counts {
			counts[v] += cv
		}
	}
	return counts
}

// newStamp allocates a path-id stamp array cleared to -1 (no path id).
func newStamp(n int) []int {
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	return stamp
}

// countPaths adds each path's per-vertex contribution (visits count once
// per path) into counts. base is the global index of paths[0]; stamping
// vertices with the global path id de-duplicates repeat visits within a
// path while letting workers reuse one stamp array across chunks.
func countPaths(paths []Path, base int, counts, stamp []int) {
	for pi, p := range paths {
		id := base + pi
		for _, v := range p {
			if stamp[v] != id {
				stamp[v] = id
				counts[v]++
			}
		}
	}
}

// NodeCongestion returns C(P) = max_v C(P, v).
func (r *Routing) NodeCongestion(n int) int {
	return r.NodeCongestionWorkers(n, 0)
}

// NodeCongestionWorkers returns C(P) computed on a worker pool; see
// NodeCongestionProfileWorkers for the determinism contract.
func (r *Routing) NodeCongestionWorkers(n, workers int) int {
	max := 0
	for _, c := range r.NodeCongestionProfileWorkers(n, workers) {
		if c > max {
			max = c
		}
	}
	return max
}

// EdgeCongestionProfile returns the number of paths using each edge of g
// (in either direction). Edges outside g used by a path are ignored; call
// Validate first if that matters.
func (r *Routing) EdgeCongestionProfile(g *graph.Graph) map[graph.Edge]int {
	counts := make(map[graph.Edge]int)
	for _, p := range r.Paths {
		for i := 1; i < len(p); i++ {
			e := graph.Edge{U: p[i-1], V: p[i]}.Normalize()
			counts[e]++
		}
	}
	return counts
}

// EdgeCongestion returns the maximum per-edge congestion.
func (r *Routing) EdgeCongestion(g *graph.Graph) int {
	max := 0
	for _, c := range r.EdgeCongestionProfile(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// TotalLength returns the sum of path lengths — a secondary quality metric
// used by the experiment harness.
func (r *Routing) TotalLength() int {
	sum := 0
	for _, p := range r.Paths {
		sum += p.Len()
	}
	return sum
}
