package routing

import "repro/internal/graph"

// NodeCongestionProfile returns, for each vertex of an n-vertex graph, the
// number of paths of r that use it (C(P, v) in the paper). A path visiting
// a vertex multiple times (non-simple walk) counts once, matching the
// set-membership definition C(P, v) = |{p_i : v ∈ p_i}|.
func (r *Routing) NodeCongestionProfile(n int) []int {
	counts := make([]int, n)
	stamp := make([]int, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for pi, p := range r.Paths {
		for _, v := range p {
			if stamp[v] != pi {
				stamp[v] = pi
				counts[v]++
			}
		}
	}
	return counts
}

// NodeCongestion returns C(P) = max_v C(P, v).
func (r *Routing) NodeCongestion(n int) int {
	max := 0
	for _, c := range r.NodeCongestionProfile(n) {
		if c > max {
			max = c
		}
	}
	return max
}

// EdgeCongestionProfile returns the number of paths using each edge of g
// (in either direction). Edges outside g used by a path are ignored; call
// Validate first if that matters.
func (r *Routing) EdgeCongestionProfile(g *graph.Graph) map[graph.Edge]int {
	counts := make(map[graph.Edge]int)
	for _, p := range r.Paths {
		for i := 1; i < len(p); i++ {
			e := graph.Edge{U: p[i-1], V: p[i]}.Normalize()
			counts[e]++
		}
	}
	return counts
}

// EdgeCongestion returns the maximum per-edge congestion.
func (r *Routing) EdgeCongestion(g *graph.Graph) int {
	max := 0
	for _, c := range r.EdgeCongestionProfile(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// TotalLength returns the sum of path lengths — a secondary quality metric
// used by the experiment harness.
func (r *Routing) TotalLength() int {
	sum := 0
	for _, p := range r.Paths {
		sum += p.Len()
	}
	return sum
}
