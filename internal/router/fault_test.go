package router

import (
	"strings"
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/server"
)

// withTimeout fails the test if fn does not return within d — fault paths
// must degrade to errors, never to hangs.
func withTimeout(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("fault path hung")
	}
}

// TestWorkerDeathMidTraffic kills one of two workers between batches; the
// router must retry onto the survivor and keep answering identically.
func TestWorkerDeathMidTraffic(t *testing.T) {
	fleet, r := startFleet(t, 2, Options{
		HealthInterval: -1,
		RequestTimeout: 5 * time.Second,
	})
	ref := refOracle(t)
	qs := testQueries(64)

	want := ref.AnswerBatch(qs)
	check := func(label string) {
		t.Helper()
		var got []oracle.Answer
		var err error
		withTimeout(t, 30*time.Second, func() { got, err = r.AnswerBatch(qs) })
		if err != nil {
			t.Fatalf("%s: AnswerBatch: %v", label, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: answer %d: %+v, want %+v", label, i, got[i], want[i])
			}
		}
	}

	check("both workers up")
	fleet.StopWorker(0)
	// The dead worker's pooled connections fail on use; chunks assigned to
	// it must retry on the survivor.
	check("after worker 0 died")
	if r.Counter("failures") != 0 {
		t.Fatalf("failures = %d, want 0 (survivor should have absorbed the chunks)", r.Counter("failures"))
	}
	if r.HealthyWorkers() != 1 {
		t.Fatalf("healthy workers = %d after a death, want 1", r.HealthyWorkers())
	}
	check("steady state with one worker")
}

// TestAllWorkersDead checks the batch fails with a clean error (and
// quickly) when the whole fleet is gone — and that the text protocol
// front answers per-line errors rather than dropping the connection.
func TestAllWorkersDead(t *testing.T) {
	fleet, r := startFleet(t, 2, Options{
		HealthInterval: -1,
		DialTimeout:    2 * time.Second,
		RequestTimeout: 2 * time.Second,
	})
	fleet.Close()

	withTimeout(t, 30*time.Second, func() {
		if _, err := r.AnswerBatch(testQueries(8)); err == nil {
			t.Error("batch against a dead fleet returned nil error")
		}
		if _, err := r.Dist(0, 1); err == nil {
			t.Error("dist against a dead fleet returned nil error")
		}
	})
	if r.Counter("failures") == 0 {
		t.Fatal("dead fleet produced no failure count")
	}

	// The text front still owes index-aligned responses.
	front := server.NewBackend(r, server.Config{})
	out := serveScript(t, front, "batch 2\ndist 0 1\ndist 1 0\nquit\n")
	if len(out) != 2 {
		t.Fatalf("got %d batch response lines: %q", len(out), out)
	}
	for i, line := range out {
		if !strings.HasPrefix(line, "err ") {
			t.Fatalf("line %d = %q, want err", i, line)
		}
	}
}

// TestHealthLoopRecoversMarkdown kills a worker, lets traffic mark it
// down, and checks the health loop notices the death (the rejoin half
// needs a worker restart, which LocalFleet does not model — markdown is
// the observable).
func TestHealthLoopRecoversMarkdown(t *testing.T) {
	fleet, r := startFleet(t, 2, Options{
		HealthInterval: 50 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	fleet.StopWorker(1)
	deadline := time.Now().Add(10 * time.Second)
	for r.HealthyWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("health loop never marked the dead worker down (healthy=%d)", r.HealthyWorkers())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Traffic keeps working off the survivor.
	if _, err := r.AnswerBatch(testQueries(16)); err != nil {
		t.Fatalf("AnswerBatch after markdown: %v", err)
	}
}
