package router

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/spanner"
)

// testOracle builds worker i's replica of the standard 128-node serving
// fixture. Replicas are deterministic — every worker must answer
// identically for the router's merge to be meaningful.
func testOracle(t testing.TB) func(i int) (*oracle.Oracle, error) {
	t.Helper()
	return func(i int) (*oracle.Oracle, error) {
		g := gen.MustRandomRegular(128, 32, rng.New(3))
		dc, err := core.Build(g, core.Options{
			Algorithm: core.AlgoExpander,
			Seed:      3,
			Expander:  spanner.ExpanderOptions{EnsureConnected: true},
		})
		if err != nil {
			return nil, err
		}
		return oracle.New(dc, oracle.Options{Landmarks: 8})
	}
}

// startFleet boots n workers plus a router over them, with test cleanup.
func startFleet(t testing.TB, n int, opts Options) (*LocalFleet, *Router) {
	t.Helper()
	fleet, err := StartLocalFleet(n, testOracle(t), server.Config{})
	if err != nil {
		t.Fatalf("StartLocalFleet: %v", err)
	}
	t.Cleanup(fleet.Close)
	opts.Workers = fleet.Addrs()
	r, err := New(opts)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return fleet, r
}

// refOracle is the single-process reference the routed answers must match.
func refOracle(t testing.TB) *oracle.Oracle {
	t.Helper()
	o, err := testOracle(t)(0)
	if err != nil {
		t.Fatalf("reference oracle: %v", err)
	}
	return o
}

func testQueries(n int) []oracle.Query {
	r := rng.New(42)
	qs := make([]oracle.Query, n)
	for i := range qs {
		qs[i] = oracle.Query{U: int32(r.Intn(128)), V: int32(r.Intn(128))}
	}
	// A few invalid ones: the router must preserve sentinel semantics.
	if n >= 4 {
		qs[1] = oracle.Query{U: -3, V: 5}
		qs[n/2] = oracle.Query{U: 5, V: 1 << 20}
	}
	return qs
}

// TestRoutedBatchMatchesSingleProcess is the core property: a batch fanned
// across 3 workers merges back byte-identical to oracle.AnswerBatch.
func TestRoutedBatchMatchesSingleProcess(t *testing.T) {
	_, r := startFleet(t, 3, Options{HealthInterval: -1})
	ref := refOracle(t)

	for _, size := range []int{1, 2, 7, 64, 500} {
		qs := testQueries(size)
		got, err := r.AnswerBatch(qs)
		if err != nil {
			t.Fatalf("AnswerBatch(%d): %v", size, err)
		}
		want := ref.AnswerBatch(qs)
		if len(got) != len(want) {
			t.Fatalf("AnswerBatch(%d): %d answers, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d answer %d: routed %+v, single-process %+v", size, i, got[i], want[i])
			}
		}
	}
	if r.Counter("chunks") < 3 {
		t.Fatalf("chunks = %d; the 500-query batch should have fanned out", r.Counter("chunks"))
	}
}

// TestRoutedDistMatches checks the single-query path.
func TestRoutedDistMatches(t *testing.T) {
	_, r := startFleet(t, 2, Options{HealthInterval: -1})
	ref := refOracle(t)
	for _, q := range testQueries(20)[:8] {
		if q.U < 0 || q.V < 0 || q.U >= 128 || q.V >= 128 {
			continue
		}
		got, err := r.Dist(q.U, q.V)
		if err != nil {
			t.Fatalf("Dist(%d,%d): %v", q.U, q.V, err)
		}
		want, err := ref.Dist(q.U, q.V)
		if err != nil {
			t.Fatalf("reference Dist: %v", err)
		}
		if got != want {
			t.Fatalf("Dist(%d,%d): routed %+v, single-process %+v", q.U, q.V, got, want)
		}
	}
}

// TestRouterDistOutOfRange checks deterministic request errors surface as
// errors (not retried into a fleet failure).
func TestRouterDistOutOfRange(t *testing.T) {
	_, r := startFleet(t, 2, Options{HealthInterval: -1})
	_, err := r.Dist(-1, 5)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Dist(-1,5) err = %v, want out-of-range", err)
	}
	if r.Counter("failures") != 0 {
		t.Fatalf("a request error counted as a fleet failure")
	}
}

// TestRouterAsBackend fronts the router with a server.Server and runs the
// text protocol against the fleet — the dcrouter wiring in miniature.
func TestRouterAsBackend(t *testing.T) {
	_, r := startFleet(t, 2, Options{HealthInterval: -1})
	front := server.NewBackend(r, server.Config{})

	out := serveScript(t, front, "dist 0 1\nbatch 2\ndist 0 1\ndist 1 0\nstats\nroute 0 1\nquit\n")
	if len(out) != 5 {
		t.Fatalf("got %d response lines: %q", len(out), out)
	}
	if !strings.HasPrefix(out[0], "dist 0 1 = ") {
		t.Fatalf("dist response: %q", out[0])
	}
	if stripLatency(out[0]) != out[1] {
		t.Fatalf("batch answer %q != dist answer %q", out[1], out[0])
	}
	if !strings.Contains(out[3], "router") || !strings.Contains(out[3], "shard0") || !strings.Contains(out[3], "shard1") {
		t.Fatalf("stats line misses per-shard counters: %q", out[3])
	}
	if !strings.HasPrefix(out[4], "err ") || !strings.Contains(out[4], "route") {
		t.Fatalf("route through router: %q, want err", out[4])
	}
}

// TestRouterMetrics checks the obs registry surface: router_* counters
// and per-shard families on /metrics.
func TestRouterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, r := startFleet(t, 2, Options{HealthInterval: -1, Registry: reg})
	if _, err := r.AnswerBatch(testQueries(16)); err != nil {
		t.Fatalf("AnswerBatch: %v", err)
	}

	srv := httptest.NewServer(obs.NewDebugMux(reg, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"router_batches_total", "router_chunks_total",
		"router_shard0_requests_total", "router_shard1_queries_total",
		"router_healthy_workers 2", "router_workers 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics misses %q", want)
		}
	}
}

// TestRouterWorkerTransitions kills a worker under traffic and checks
// the health flip is counted, logged under component=router, and
// exported as router_worker_transitions_total{dir="down"}; a recovery
// flip (forced, since a stopped local worker cannot restart) counts and
// logs the up direction the same way.
func TestRouterWorkerTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf strings.Builder // slog's handler serializes writes
	fleet, r := startFleet(t, 2, Options{
		HealthInterval: -1,
		Registry:       reg,
		Log:            obs.NewLogger(&logBuf, slog.LevelInfo),
		RequestTimeout: 5 * time.Second,
	})

	if _, err := r.AnswerBatch(testQueries(16)); err != nil {
		t.Fatalf("warmup batch: %v", err)
	}
	if up, down := r.TransitionCounts(); up != 0 || down != 0 {
		t.Fatalf("transitions before any fault = %d/%d (initial marking must not count)", up, down)
	}

	fleet.StopWorker(0)
	var down int64
	deadline := time.Now().Add(10 * time.Second)
	for down == 0 && time.Now().Before(deadline) {
		if _, err := r.AnswerBatch(testQueries(16)); err != nil {
			t.Fatalf("batch with one dead worker: %v", err)
		}
		_, down = r.TransitionCounts()
	}
	if down != 1 {
		t.Fatalf("down transitions = %d, want 1", down)
	}
	if !strings.Contains(logBuf.String(), "msg=\"worker down\"") ||
		!strings.Contains(logBuf.String(), "component=router") {
		t.Errorf("worker death not logged:\n%s", logBuf.String())
	}

	// Force the survivor unhealthy; the next successful request flips it
	// back up through the same markHealth path.
	r.markHealth(r.shards[1], false, "test")
	if _, err := r.AnswerBatch(testQueries(8)); err != nil {
		t.Fatalf("recovery batch: %v", err)
	}
	up, _ := r.TransitionCounts()
	if up != 1 {
		t.Fatalf("up transitions = %d, want 1", up)
	}
	if !strings.Contains(logBuf.String(), "msg=\"worker up\"") {
		t.Errorf("worker recovery not logged:\n%s", logBuf.String())
	}

	snap := reg.Snapshot()
	if got := snap.Counters[`router_worker_transitions{dir="down"}`]; got != 2 {
		// worker 0's death plus the forced flip on worker 1
		t.Errorf(`transitions{dir="down"} = %d, want 2`, got)
	}
	if got := snap.Counters[`router_worker_transitions{dir="up"}`]; got != 1 {
		t.Errorf(`transitions{dir="up"} = %d, want 1`, got)
	}
}

// TestRouterTracedFanout threads a ReqTrace through the batch and dist
// paths: the batch trace carries split → shard<i> → merge hops with the
// fan-out noted, both traces pick up worker resolution-path bits, and
// the traced answers stay byte-identical to the untraced ones.
func TestRouterTracedFanout(t *testing.T) {
	_, r := startFleet(t, 2, Options{HealthInterval: -1})
	ref := refOracle(t)

	qs := testQueries(64)
	tr := obs.NewReqTrace(0)
	got, err := r.AnswerBatchTrace(qs, tr)
	if err != nil {
		t.Fatalf("AnswerBatchTrace: %v", err)
	}
	want := ref.AnswerBatch(qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traced answer %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	hops := tr.Hops()
	if len(hops) < 3 || hops[0].Name != "split" || hops[len(hops)-1].Name != "merge" {
		t.Fatalf("batch hops = %+v, want split … merge", hops)
	}
	if !strings.Contains(hops[0].Note, "n=64") || !strings.Contains(hops[0].Note, "workers=2") {
		t.Errorf("split note = %q", hops[0].Note)
	}
	shardHops := 0
	for _, h := range hops[1 : len(hops)-1] {
		if strings.HasPrefix(h.Name, "shard") {
			shardHops++
			if !strings.Contains(h.Note, "chunk=") || !strings.Contains(h.Note, "try=0") {
				t.Errorf("shard hop note = %q", h.Note)
			}
		}
	}
	if shardHops != 2 {
		t.Errorf("shard hops = %d, want one per chunk (2)", shardHops)
	}
	if tr.Path() == 0 {
		t.Error("batch trace carries no resolution-path bits")
	}

	tr2 := obs.NewReqTrace(0)
	if _, err := r.DistTrace(3, 9, tr2); err != nil {
		t.Fatalf("DistTrace: %v", err)
	}
	hops = tr2.Hops()
	if len(hops) != 1 || !strings.HasPrefix(hops[0].Name, "shard") || hops[0].Note != "q=1" {
		t.Fatalf("dist hops = %+v, want one shard hop (q=1)", hops)
	}
	if tr2.Path() == 0 {
		t.Error("dist trace carries no resolution-path bits")
	}
}

// TestRouterRejectsMismatchedFleet checks startup fails when workers are
// not replicas (different N).
func TestRouterRejectsMismatchedFleet(t *testing.T) {
	small, err := StartLocalFleet(1, func(i int) (*oracle.Oracle, error) {
		g := gen.MustRandomRegular(64, 32, rng.New(1))
		dc, err := core.Build(g, core.Options{
			Algorithm: core.AlgoExpander,
			Seed:      1,
			Expander:  spanner.ExpanderOptions{EnsureConnected: true},
		})
		if err != nil {
			return nil, err
		}
		return oracle.New(dc, oracle.Options{Landmarks: 4})
	}, server.Config{})
	if err != nil {
		t.Fatalf("small fleet: %v", err)
	}
	defer small.Close()
	big, err := StartLocalFleet(1, testOracle(t), server.Config{})
	if err != nil {
		t.Fatalf("big fleet: %v", err)
	}
	defer big.Close()

	r, err := New(Options{Workers: append(small.Addrs(), big.Addrs()...), HealthInterval: -1})
	if err == nil {
		r.Close()
		t.Fatal("mixed-size fleet accepted")
	}
	if !strings.Contains(err.Error(), "not replicas") {
		t.Fatalf("mixed-size fleet err = %v", err)
	}
}

// serveScript runs a text-protocol script against a Backend-fronted
// server (ServeStream).
func serveScript(t testing.TB, srv *server.Server, script string) []string {
	t.Helper()
	var sb strings.Builder
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeStream(context.Background(), strings.NewReader(script), &sb)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ServeStream hung")
	}
	s := strings.TrimRight(sb.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func stripLatency(line string) string {
	if i := strings.LastIndex(line, " us="); i >= 0 {
		return line[:i]
	}
	return line
}
