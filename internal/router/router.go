// Package router is the fleet tier of the serving stack: a Router
// implements server.Backend over N dcserve workers reached through the
// binary wire protocol, so cmd/dcrouter can put the whole hardened
// connection layer of internal/server in front of a worker fleet without
// that package knowing fleets exist.
//
// The first (and current) sharding mode is replicated oracles: every
// worker holds the full oracle, so any query can go to any worker and a
// batch splits into contiguous chunks fanned across the healthy workers.
// Chunk answers are copied back into place by offset, which preserves the
// caller's index alignment — a routed batch is byte-identical to a
// single-process oracle.AnswerBatch (internal/check gates on exactly
// that).
//
// Fault handling: each worker (a shard) has a small pool of pipelined
// connections; a connection that dies is redialed by the health loop, a
// chunk that fails on one worker is retried on others, and only when a
// chunk exhausts every distinct healthy worker does the batch fail as a
// whole. The text batch path then answers "err ..." per line and the
// binary path answers MsgErr — callers never hang on a dead worker.
package router

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Defaults for the zero Options.
const (
	DefaultConnsPerWorker = 2
	DefaultRetries        = 2
	DefaultDialTimeout    = 5 * time.Second
	DefaultRequestTimeout = 30 * time.Second
	DefaultHealthInterval = 2 * time.Second
)

// Options configures a Router. The zero value (plus Workers) is usable.
type Options struct {
	// Workers is the address list of the fleet, one entry per worker.
	Workers []string
	// ConnsPerWorker sizes each worker's connection pool. Connections are
	// pipelined, so this bounds write-side concurrency, not in-flight
	// requests.
	ConnsPerWorker int
	// Retries is how many additional workers a failed chunk is tried on
	// before the batch fails (capped at the number of workers - 1).
	Retries int
	// MaxBatch bounds one chunk sent to a single worker. 0 means the
	// smallest MaxBatch the workers advertise via MsgInfo.
	MaxBatch int
	// DialTimeout, RequestTimeout configure the pooled wire clients.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	// HealthInterval is how often unhealthy shards are redialed and
	// healthy ones pinged. Negative disables the loop (tests, benchmarks —
	// redial then happens inline on use).
	HealthInterval time.Duration
	// Registry, when set, exposes router_* counters and per-shard
	// router_shard<i>_* counters plus healthy-worker gauges and the
	// router_worker_transitions{dir="up"|"down"} transition counters.
	Registry *obs.Registry
	// Log, when set, receives worker health transitions and fan-out
	// diagnostics as structured records under component=router. Nil
	// discards.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.ConnsPerWorker <= 0 {
		o.ConnsPerWorker = DefaultConnsPerWorker
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = DefaultRetries
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	return o
}

// shard is one worker: its address, its connection pool, and its health.
type shard struct {
	idx  int
	addr string

	mu    sync.Mutex
	conns []*wire.Client // lazily dialed, round-robin
	next  int

	healthy  atomic.Bool
	counters *stats.Counters
}

// Router fans queries across a fleet of replicated workers. It implements
// server.Backend.
type Router struct {
	opts     Options
	shards   []*shard
	n        int // vertex count, agreed by every worker at startup
	maxBatch int // largest chunk one worker accepts

	rr       atomic.Uint64 // round-robin cursor for single-query dispatch
	counters *stats.Counters
	log      *slog.Logger

	// Worker health transitions observed by markHealth, split by
	// direction (the router_worker_transitions metric family).
	transUp   atomic.Int64
	transDown atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup

	closed atomic.Bool
}

// New dials every worker, verifies they agree on the serving shape, and
// starts the health loop. All workers must be reachable at startup — a
// fleet that begins degraded is a deployment error, not a fault to mask.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("router: no workers")
	}
	r := &Router{
		opts: opts,
		log:  obs.Component(opts.Log, "router"),
		stop: make(chan struct{}),
		counters: stats.NewCounters(
			"dist", "batches", "chunks", "retries", "failures"),
	}
	for i, addr := range opts.Workers {
		sh := &shard{
			idx:  i,
			addr: addr,
			counters: stats.NewCounters(
				"requests", "queries", "errs", "retries", "redials"),
		}
		r.shards = append(r.shards, sh)
	}

	// First contact: every worker must answer Info and agree on N.
	for _, sh := range r.shards {
		c, err := r.dial(sh)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("router: worker %d (%s): %w", sh.idx, sh.addr, err)
		}
		info, err := c.Info()
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("router: worker %d (%s) info: %w", sh.idx, sh.addr, err)
		}
		if r.n == 0 {
			r.n = info.N
		} else if info.N != r.n {
			r.Close()
			return nil, fmt.Errorf("router: worker %d (%s) serves n=%d, fleet serves n=%d — not replicas",
				sh.idx, sh.addr, info.N, r.n)
		}
		if r.maxBatch == 0 || info.MaxBatch < r.maxBatch {
			r.maxBatch = info.MaxBatch
		}
		sh.healthy.Store(true)
	}
	if opts.MaxBatch > 0 && opts.MaxBatch < r.maxBatch {
		r.maxBatch = opts.MaxBatch
	}

	if reg := opts.Registry; reg != nil {
		reg.AttachCounters("router", r.counters)
		for _, sh := range r.shards {
			reg.AttachCounters(fmt.Sprintf("router_shard%d", sh.idx), sh.counters)
		}
		reg.GaugeFunc("router_workers", "workers configured in the fleet",
			func() float64 { return float64(len(r.shards)) })
		reg.GaugeFunc("router_healthy_workers", "workers currently marked healthy",
			func() float64 { return float64(r.HealthyWorkers()) })
		reg.CounterFuncLabeled("router_worker_transitions",
			"Worker health transitions observed, by direction.",
			"dir", "up", r.transUp.Load)
		reg.CounterFuncLabeled("router_worker_transitions",
			"Worker health transitions observed, by direction.",
			"dir", "down", r.transDown.Load)
	}

	if opts.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// markHealth sets one worker's health state, and — only when the state
// actually flips — counts and logs the transition. Every health write in
// the package goes through here (except the initial all-healthy marking
// in New, which is not a transition), so the transition counters and the
// up/down log lines can never disagree with the gauge.
func (r *Router) markHealth(sh *shard, up bool, reason string) {
	if sh.healthy.Swap(up) == up {
		return
	}
	if up {
		r.transUp.Add(1)
		r.log.Info("worker up", "worker", sh.idx, "addr", sh.addr, "reason", reason)
	} else {
		r.transDown.Add(1)
		r.log.Warn("worker down", "worker", sh.idx, "addr", sh.addr, "reason", reason)
	}
}

// TransitionCounts returns the cumulative worker health transitions seen
// so far (up = unhealthy→healthy, down = healthy→unhealthy).
func (r *Router) TransitionCounts() (up, down int64) {
	return r.transUp.Load(), r.transDown.Load()
}

// N implements server.Backend.
func (r *Router) N() int { return r.n }

// MaxBatch is the largest chunk one worker accepts; the front server's
// own MaxBatch may be larger (the router splits).
func (r *Router) MaxBatch() int { return r.maxBatch }

// HealthyWorkers counts shards currently marked healthy.
func (r *Router) HealthyWorkers() int {
	n := 0
	for _, sh := range r.shards {
		if sh.healthy.Load() {
			n++
		}
	}
	return n
}

// Counter exposes a named router counter — dist, batches, chunks,
// retries, failures.
func (r *Router) Counter(name string) int64 { return r.counters.Get(name) }

// dial adds one pooled connection to sh, under sh.mu only for the pool
// append (the dial itself runs unlocked).
func (r *Router) dial(sh *shard) (*wire.Client, error) {
	c, err := wire.Dial(sh.addr, wire.ClientOptions{
		DialTimeout:    r.opts.DialTimeout,
		RequestTimeout: r.opts.RequestTimeout,
	})
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	sh.conns = append(sh.conns, c)
	sh.mu.Unlock()
	return c, nil
}

// conn returns a healthy pooled connection for sh, dialing up to the pool
// size and pruning dead connections as it goes. A nil return means the
// worker is unreachable right now; the caller marks it unhealthy.
func (r *Router) conn(sh *shard) *wire.Client {
	sh.mu.Lock()
	// Prune dead connections in place.
	live := sh.conns[:0]
	for _, c := range sh.conns {
		if c.Healthy() {
			live = append(live, c)
		} else {
			c.Close()
		}
	}
	sh.conns = live
	if len(sh.conns) > 0 {
		c := sh.conns[sh.next%len(sh.conns)]
		sh.next++
		needDial := len(sh.conns) < r.opts.ConnsPerWorker
		sh.mu.Unlock()
		if needDial {
			// Top the pool back up without holding the lock; failure is
			// fine, we already have a live connection.
			if _, err := r.dial(sh); err == nil {
				sh.counters.Add("redials", 1)
			}
		}
		return c
	}
	sh.mu.Unlock()
	c, err := r.dial(sh)
	if err != nil {
		return nil
	}
	sh.counters.Add("redials", 1)
	return c
}

// healthyShards returns the healthy shards rotated by the round-robin
// cursor, so consecutive calls spread first-choice load across the fleet.
func (r *Router) healthyShards() []*shard {
	start := int(r.rr.Add(1))
	out := make([]*shard, 0, len(r.shards))
	for i := 0; i < len(r.shards); i++ {
		sh := r.shards[(start+i)%len(r.shards)]
		if sh.healthy.Load() {
			out = append(out, sh)
		}
	}
	// Unhealthy shards go last instead of nowhere: if everything healthy
	// fails we would rather try a marked-down worker than give up.
	for i := 0; i < len(r.shards); i++ {
		sh := r.shards[(start+i)%len(r.shards)]
		if !sh.healthy.Load() {
			out = append(out, sh)
		}
	}
	return out
}

// tryShard runs fn against one worker, handling the
// connection/health bookkeeping. A false return means this worker failed
// and the caller should try another.
func (r *Router) tryShard(sh *shard, fn func(c *wire.Client) error) bool {
	c := r.conn(sh)
	if c == nil {
		r.markHealth(sh, false, "dial failed")
		sh.counters.Add("errs", 1)
		return false
	}
	err := fn(c)
	if err == nil {
		r.markHealth(sh, true, "request ok")
		return true
	}
	sh.counters.Add("errs", 1)
	var re *wire.RemoteError
	if errors.As(err, &re) {
		// The worker is alive and answered; the request itself is bad.
		// Retrying elsewhere would fail identically (replicas), so treat
		// the worker as healthy and give up on the request.
		return false
	}
	// Transport error: the worker (or this connection) is gone.
	r.markHealth(sh, false, "transport error")
	return false
}

// reqCtx is the wire trace context a traced request propagates to a
// worker: the trace id with the sampling bit, or the zero context for
// untraced requests (v3 workers see id 0 / unsampled; v2 workers see no
// trace field at all).
func reqCtx(tr *obs.ReqTrace) wire.TraceContext {
	if tr == nil {
		return wire.TraceContext{}
	}
	return wire.SampledContext(tr.ID())
}

// Dist implements server.Backend: one query, tried on every worker in
// rotation until one answers.
func (r *Router) Dist(u, v int32) (oracle.Answer, error) {
	return r.DistTrace(u, v, nil)
}

// DistTrace implements server.TracedBackend: the answer is identical to
// Dist, and a non-nil trace gains one hop per worker attempt (send
// through merge of the wire round trip), retry events, and the worker's
// resolution-path bits carried back in the v3 response flags.
func (r *Router) DistTrace(u, v int32, tr *obs.ReqTrace) (oracle.Answer, error) {
	r.counters.Add("dist", 1)
	var ans oracle.Answer
	var lastErr error
	for _, sh := range r.healthyShards() {
		t0 := time.Now()
		ok := r.tryShard(sh, func(c *wire.Client) error {
			a, rtc, err := c.DistTraced(u, v, reqCtx(tr))
			if err != nil {
				lastErr = err
				return err
			}
			tr.OrPath(rtc.PathMask())
			ans = a
			return nil
		})
		if ok {
			tr.Hop(fmt.Sprintf("shard%d", sh.idx), t0, "q=1")
			sh.counters.Add("requests", 1)
			sh.counters.Add("queries", 1)
			return ans, nil
		}
		var re *wire.RemoteError
		if errors.As(lastErr, &re) {
			// Deterministic request error (e.g. out of range): replicas
			// agree, stop retrying and surface the worker's answer.
			return oracle.Answer{}, errors.New(re.Msg)
		}
		tr.Event("retry", fmt.Sprintf("worker=%d", sh.idx))
		r.counters.Add("retries", 1)
	}
	r.counters.Add("failures", 1)
	if lastErr == nil {
		lastErr = errors.New("router: no reachable workers")
	}
	return oracle.Answer{}, fmt.Errorf("router: dist failed on all workers: %w", lastErr)
}

// Route implements server.Backend. Paths are worker-local state the wire
// protocol does not carry; the text protocol answers this error line.
func (r *Router) Route(u, v int32) (routing.Path, oracle.Answer, error) {
	return nil, oracle.Answer{}, errors.New("router: route is not supported through the fleet tier (ask a worker directly)")
}

// chunk is one contiguous slice of a batch assigned to one worker.
type chunk struct {
	lo, hi int // qs[lo:hi]
}

// AnswerBatch implements server.Backend: the batch splits into contiguous
// chunks (one per healthy worker, each within every worker's batch
// limit), the chunks fan out concurrently, and each chunk's answers are
// copied to its offset — so the merged result preserves request order
// exactly. A chunk that fails on its worker retries on the others; if any
// chunk exhausts the fleet the whole batch errors.
func (r *Router) AnswerBatch(qs []oracle.Query) ([]oracle.Answer, error) {
	return r.AnswerBatchTrace(qs, nil)
}

// AnswerBatchTrace implements server.TracedBackend: answers are
// byte-identical to AnswerBatch (internal/check gates on that), and a
// non-nil trace gains a "split" hop (chunking decision), one concurrent
// "shard<i>" hop per chunk attempt covering the wire round trip, retry
// events, and a "merge" hop for the error fold after the fan-in.
func (r *Router) AnswerBatchTrace(qs []oracle.Query, tr *obs.ReqTrace) ([]oracle.Answer, error) {
	if r.closed.Load() {
		return nil, errors.New("router: closed")
	}
	r.counters.Add("batches", 1)
	out := make([]oracle.Answer, len(qs))
	if len(qs) == 0 {
		return out, nil
	}

	t0 := time.Now()
	shards := r.healthyShards()
	if len(shards) == 0 {
		r.counters.Add("failures", 1)
		return nil, errors.New("router: no workers")
	}
	ways := len(shards)
	per := (len(qs) + ways - 1) / ways
	if per > r.maxBatch {
		per = r.maxBatch
	}
	var chunks []chunk
	for lo := 0; lo < len(qs); lo += per {
		hi := lo + per
		if hi > len(qs) {
			hi = len(qs)
		}
		chunks = append(chunks, chunk{lo, hi})
	}
	r.counters.Add("chunks", int64(len(chunks)))
	if tr != nil {
		tr.Hop("split", t0, fmt.Sprintf("n=%d chunks=%d workers=%d", len(qs), len(chunks), len(shards)))
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(chunks))
	for ci, ck := range chunks {
		wg.Add(1)
		go func(ci int, ck chunk) {
			defer wg.Done()
			errc <- r.answerChunk(qs[ck.lo:ck.hi], out[ck.lo:ck.hi], shards, ci, tr)
		}(ci, ck)
	}
	wg.Wait()
	tm := time.Now()
	close(errc)
	for err := range errc {
		if err != nil {
			r.counters.Add("failures", 1)
			return nil, err
		}
	}
	if tr != nil {
		tr.Hop("merge", tm, fmt.Sprintf("chunks=%d", len(chunks)))
	}
	return out, nil
}

// answerChunk answers qs into out (same length), starting at shard
// ci%len(shards) and retrying on up to Retries further distinct workers.
// Chunk answers land directly in out's slice window, so the merge is the
// copy each worker response already performs.
func (r *Router) answerChunk(qs []oracle.Query, out []oracle.Answer, shards []*shard, ci int, tr *obs.ReqTrace) error {
	tries := r.opts.Retries + 1
	if tries > len(shards) {
		tries = len(shards)
	}
	var lastErr error
	for t := 0; t < tries; t++ {
		sh := shards[(ci+t)%len(shards)]
		t0 := time.Now()
		ok := r.tryShard(sh, func(c *wire.Client) error {
			as, rtc, err := c.BatchTraced(qs, reqCtx(tr))
			if err != nil {
				lastErr = err
				return err
			}
			tr.OrPath(rtc.PathMask())
			copy(out, as)
			return nil
		})
		if ok {
			tr.Hop(fmt.Sprintf("shard%d", sh.idx), t0, fmt.Sprintf("chunk=%d q=%d try=%d", ci, len(qs), t))
			sh.counters.Add("requests", 1)
			sh.counters.Add("queries", int64(len(qs)))
			return nil
		}
		var re *wire.RemoteError
		if errors.As(lastErr, &re) {
			// Replicas answer deterministic request errors identically;
			// retrying elsewhere only repeats the refusal.
			break
		}
		if t+1 < tries {
			tr.Event("retry", fmt.Sprintf("chunk=%d worker=%d", ci, sh.idx))
			sh.counters.Add("retries", 1)
			r.counters.Add("retries", 1)
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no reachable workers")
	}
	return fmt.Errorf("router: chunk of %d queries failed after %d workers: %w", len(qs), tries, lastErr)
}

// StatsLine implements server.Backend: the router counters and every
// shard's counters, each block rendered from one snapshot.
func (r *Router) StatsLine() string {
	var b []byte
	b = append(b, "router"...)
	for _, cv := range r.counters.Snapshot() {
		b = append(b, ' ')
		b = append(b, cv.Name...)
		b = append(b, '=')
		b = fmt.Appendf(b, "%d", cv.Value)
	}
	b = fmt.Appendf(b, " workers=%d healthy=%d", len(r.shards), r.HealthyWorkers())
	for _, sh := range r.shards {
		b = fmt.Appendf(b, " | shard%d", sh.idx)
		if !sh.healthy.Load() {
			b = append(b, "(down)"...)
		}
		for _, cv := range sh.counters.Snapshot() {
			b = append(b, ' ')
			b = append(b, cv.Name...)
			b = append(b, '=')
			b = fmt.Appendf(b, "%d", cv.Value)
		}
	}
	return string(b)
}

// healthLoop periodically pings healthy shards and redials unhealthy
// ones, so a worker that restarts rejoins the rotation without traffic
// having to trip over it first. Transition logging and counting happen
// inside markHealth (via tryShard), so a flip detected by the loop and a
// flip detected by live traffic are recorded identically.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		for _, sh := range r.shards {
			r.tryShard(sh, func(c *wire.Client) error {
				_, err := c.Info()
				return err
			})
		}
	}
}

// Close stops the health loop and closes every pooled connection.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.stop)
	r.wg.Wait()
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, c := range sh.conns {
			c.Close()
		}
		sh.conns = nil
		sh.mu.Unlock()
	}
	return nil
}
