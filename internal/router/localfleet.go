package router

import (
	"context"
	"fmt"
	"net"
	"sync"

	"repro/internal/oracle"
	"repro/internal/server"
)

// LocalFleet runs n in-process dcserve workers on loopback listeners —
// the backing for dcrouter's -spawn mode, the router differential check,
// the router_fanout benchmark, and the fault tests. Each worker gets its
// own oracle (replicas are built per worker, not shared, so worker death
// tests and per-worker metrics stay honest).
type LocalFleet struct {
	addrs   []string
	cancels []context.CancelFunc
	done    []chan error
	wg      sync.WaitGroup
}

// StartLocalFleet boots n workers. newOracle builds worker i's oracle —
// it must give each worker its own obs registry (or none): registries
// panic on duplicate metric names. cfg applies to every worker's server.
func StartLocalFleet(n int, newOracle func(i int) (*oracle.Oracle, error), cfg server.Config) (*LocalFleet, error) {
	f := &LocalFleet{}
	for i := 0; i < n; i++ {
		o, err := newOracle(i)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("localfleet: worker %d oracle: %w", i, err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("localfleet: worker %d listen: %w", i, err)
		}
		srv := server.New(o, cfg)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		f.addrs = append(f.addrs, l.Addr().String())
		f.cancels = append(f.cancels, cancel)
		f.done = append(f.done, done)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			done <- srv.Serve(ctx, l)
		}()
	}
	return f, nil
}

// Addrs returns the workers' dial addresses, index-aligned with the
// worker numbers.
func (f *LocalFleet) Addrs() []string { return append([]string(nil), f.addrs...) }

// StopWorker kills worker i (drains its server). Used by fault tests to
// simulate worker death; the fleet keeps running without it.
func (f *LocalFleet) StopWorker(i int) {
	f.cancels[i]()
	<-f.done[i]
}

// Close stops every worker and waits for their serve loops.
func (f *LocalFleet) Close() {
	for _, cancel := range f.cancels {
		cancel()
	}
	f.wg.Wait()
}
