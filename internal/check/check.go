// Package check is the differential correctness harness: deliberately
// naive reference implementations of everything the optimized serving and
// evaluation paths compute (exact all-pairs distances by repeated BFS,
// brute-force edge/pair stretch, brute-force node-congestion accounting, a
// single-lock model LRU), a randomized differential runner that generates
// graphs from every internal/gen family and asserts optimized == reference,
// structural invariant checkers callable from any test, and fuzz targets
// for the dcserve line protocol and the graphio reader.
//
// The contract it enforces is the one distance-oracle papers state as the
// definition of correctness: agreement with the exact distance matrix.
// Every optimized path — oracle.Dist / AnswerBatch (cache on and off, all
// landmark counts, bounded and unbounded search), the sharded LRU,
// spanner.Verify*StretchOpts and routing.NodeCongestion* at every worker
// count — must agree bit-for-bit with its naive reference on every
// generator family. The references are kept obviously correct (plain
// loops, no scratch reuse, no parallelism) and are never imported by
// serving code.
//
// Everything is deterministic in Options.Seed: a reported divergence
// prints the family and seed that reproduce it (`dccheck -families F
// -seed S`), and fixed divergences are pinned by seed in regression
// tests. See DESIGN.md §10.
package check

import "fmt"

// Divergence records one optimized-vs-reference disagreement found by the
// runner, with enough context to reproduce it from the command line.
type Divergence struct {
	Family string // generator family ("" for family-independent checks)
	Check  string // which differential check fired
	Seed   uint64 // the runner seed that reproduces it
	Detail string // what disagreed, with the offending values
}

func (d Divergence) String() string {
	fam := d.Family
	if fam == "" {
		fam = "-"
	}
	return fmt.Sprintf("[%s] %s (seed %d): %s", fam, d.Check, d.Seed, d.Detail)
}

// Report is the outcome of one differential run.
type Report struct {
	Families    int // generator families swept
	Checks      int // individual assertions evaluated
	Divergences []Divergence
}

// OK reports whether the run found no divergences.
func (r Report) OK() bool { return len(r.Divergences) == 0 }

func (r Report) String() string {
	return fmt.Sprintf("families=%d checks=%d divergences=%d",
		r.Families, r.Checks, len(r.Divergences))
}
