package check

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/wire"
)

// fuzzServer builds one small oracle + server shared across fuzz
// iterations (the server is safe for concurrent sessions; construction is
// the expensive part).
var fuzzServer = sync.OnceValue(func() *server.Server {
	g := gen.Cycle(9)
	o, err := oracle.NewFromGraphs(g, g, 3, oracle.Options{Landmarks: 2, Workers: 1})
	if err != nil {
		panic(err)
	}
	return server.New(o, server.Config{MaxBatch: 64, MaxLineBytes: 512})
})

// FuzzServerProtocol throws arbitrary bytes at the dcserve line protocol
// via ServeStream. The session must never panic, every response line must
// carry a known protocol prefix, and the graph.Unreachable sentinel (-1)
// must never leak into a distance answer — disconnected pairs speak the
// protocol word "unreachable". Inputs whose first byte is the binary
// protocol's magic byte open a binary session instead; for those the line
// assertions do not apply (the output is frames, not lines) and the
// property checked is simply no panic and no hang.
func FuzzServerProtocol(f *testing.F) {
	f.Add("dist 0 1\n")
	f.Add("route 0 3\nstats\nquit\n")
	f.Add("batch 2\ndist 0 1\ndist 1 2\n")
	f.Add("batch 3\ndist 0 1\n") // truncated batch
	f.Add("batch 0\nbatch -7\nbatch 99999999999999999999\nbatch x\n")
	f.Add("dist -1 5\ndist 4294967296 1\ndist 0\n")
	f.Add("nonsense\n\n  \n\x00\xff\n")
	f.Add("dist 0 1") // no trailing newline
	f.Add(strings.Repeat("a", 600) + "\ndist 1 2\n")
	f.Add("\xd5CP2\x00\x02\x00\x02")     // valid binary hello, no frames
	f.Add("\xd5CP2\x00\x02")             // truncated hello
	f.Add("\xd5garbage after the magic") // binary-classified, corrupt hello
	f.Fuzz(func(t *testing.T, input string) {
		srv := fuzzServer()
		var out bytes.Buffer
		srv.ServeStream(context.Background(), strings.NewReader(input), &out)
		if len(input) > 0 && input[0] == wire.MagicByte {
			// Binary session: output is frames (or nothing). Returning
			// without panicking is the property.
			return
		}
		sc := bufio.NewScanner(&out)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				t.Fatalf("empty response line for input %q", input)
			}
			switch {
			case strings.HasPrefix(line, "dist "),
				strings.HasPrefix(line, "route "),
				strings.HasPrefix(line, "stats "),
				strings.HasPrefix(line, "err "):
			default:
				t.Fatalf("response %q has no protocol prefix (input %q)", line, input)
			}
			if strings.Contains(line, "= -1") {
				t.Fatalf("Unreachable sentinel leaked to the wire: %q (input %q)", line, input)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning server output: %v", err)
		}
	})
}

// FuzzWireFrame throws arbitrary bytes at the binary protocol's frame and
// payload decoders, at both frame versions (v2 without trace context, v3
// with it). Truncated frames, oversized length prefixes, bad magic, and
// lying batch counts must all come back as errors — never a panic, and
// never an allocation driven by an attacker-chosen length (the 1 KiB
// frame limit here means any decoded payload is at most 1 KiB, whatever
// the length prefix claims). A frame that does decode must re-encode and
// re-decode to itself at the version it was decoded at.
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x09, 0x01, 0, 0, 0, 0, 0, 0, 0, 1}) // minimal valid v2 frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                               // 4 GiB length prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x03})                               // body below the fixed header
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x02})                         // declared 256, carries 1
	f.Add([]byte("\xd5CP2\x00\x02\x00\x02"))                            // a hello is not a frame
	f.Add([]byte("\xd5CP2\x00\x02\x00\x03"))                            // v2..v3 hello
	f.Add(wire.AppendFrame(nil, wire.Frame{Type: 0x02, ID: 7,
		Payload: wire.AppendQueries(nil, []oracle.Query{{U: 1, V: 2}, {U: -1, V: 1 << 30}})}))
	f.Add(wire.AppendFrameV(nil, wire.Frame{Type: 0x01, ID: 9,
		Trace:   wire.SampledContext(0xdeadbeef),
		Payload: wire.AppendQuery(nil, oracle.Query{U: 3, V: 4})}, wire.VersionMax))
	f.Fuzz(func(t *testing.T, input []byte) {
		const limit = 1 << 10
		for _, version := range []uint16{wire.VersionMin, wire.VersionMax} {
			fr, err := wire.ReadFrameV(bytes.NewReader(input), limit, version)
			if err == nil {
				if len(fr.Payload) > limit {
					t.Fatalf("v%d: decoded payload of %d bytes exceeds the %d limit", version, len(fr.Payload), limit)
				}
				reenc := wire.AppendFrameV(nil, fr, version)
				again, rerr := wire.ReadFrameV(bytes.NewReader(reenc), limit, version)
				if rerr != nil {
					t.Fatalf("v%d: re-decoding a decoded frame failed: %v", version, rerr)
				}
				if again.Type != fr.Type || again.ID != fr.ID || again.Trace != fr.Trace || !bytes.Equal(again.Payload, fr.Payload) {
					t.Fatalf("v%d: frame round trip changed: %+v -> %+v", version, fr, again)
				}
				// Payload decoders must be total on arbitrary payloads too.
				wire.DecodeQueries(fr.Payload)
				wire.DecodeAnswers(fr.Payload)
				wire.DecodeQuery(fr.Payload)
				wire.DecodeAnswer(fr.Payload)
				wire.DecodeInfo(fr.Payload)
			}
		}
		wire.ParseHello(input)
		wire.ParseHelloReply(input)
	})
}

// FuzzGraphioRead throws arbitrary bytes at the edge-list parser. Since
// the parser validates before touching the builder it must never panic
// (no recover here — a panic is a finding); every accepted graph must
// pass the structural invariants and round-trip through WriteEdgeList
// unchanged.
func FuzzGraphioRead(f *testing.F) {
	f.Add("n 4\n0 1\n2 3\n")
	f.Add("# comment\nn 2\n0 1\n")
	f.Add("n 0\n")
	f.Add("n 3\n0 1\n1 2\n0 2\n")
	f.Add("garbage")
	f.Add("n 3\n0 1\n0 1\n")     // duplicate edge
	f.Add("n 3\n1 1\n")          // self-loop
	f.Add("n 3\n-1 2\n")         // negative vertex
	f.Add("n 3\n0 7\n")          // out of range
	f.Add("n 2\n4294967296 1\n") // would truncate to 0 under int32 casting
	f.Add("n 99999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := graphio.ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if ierr := GraphInvariants(g); ierr != nil {
			t.Fatalf("accepted graph violates invariants: %v (input %q)", ierr, input)
		}
		var buf bytes.Buffer
		if werr := graphio.WriteEdgeList(&buf, g); werr != nil {
			t.Fatalf("write failed on accepted graph: %v", werr)
		}
		again, rerr := graphio.ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip re-parse failed: %v", rerr)
		}
		if again.N() != g.N() || again.M() != g.M() {
			t.Fatalf("round trip changed shape: n %d->%d, m %d->%d", g.N(), again.N(), g.M(), again.M())
		}
		for i, e := range again.Edges() {
			if e != g.Edges()[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, g.Edges()[i], e)
			}
		}
	})
}
