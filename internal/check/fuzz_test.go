package check

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/oracle"
	"repro/internal/server"
)

// fuzzServer builds one small oracle + server shared across fuzz
// iterations (the server is safe for concurrent sessions; construction is
// the expensive part).
var fuzzServer = sync.OnceValue(func() *server.Server {
	g := gen.Cycle(9)
	o, err := oracle.NewFromGraphs(g, g, 3, oracle.Options{Landmarks: 2, Workers: 1})
	if err != nil {
		panic(err)
	}
	return server.New(o, server.Config{MaxBatch: 64, MaxLineBytes: 512})
})

// FuzzServerProtocol throws arbitrary bytes at the dcserve line protocol
// via ServeStream. The session must never panic, every response line must
// carry a known protocol prefix, and the graph.Unreachable sentinel (-1)
// must never leak into a distance answer — disconnected pairs speak the
// protocol word "unreachable".
func FuzzServerProtocol(f *testing.F) {
	f.Add("dist 0 1\n")
	f.Add("route 0 3\nstats\nquit\n")
	f.Add("batch 2\ndist 0 1\ndist 1 2\n")
	f.Add("batch 3\ndist 0 1\n") // truncated batch
	f.Add("batch 0\nbatch -7\nbatch 99999999999999999999\nbatch x\n")
	f.Add("dist -1 5\ndist 4294967296 1\ndist 0\n")
	f.Add("nonsense\n\n  \n\x00\xff\n")
	f.Add("dist 0 1") // no trailing newline
	f.Add(strings.Repeat("a", 600) + "\ndist 1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		srv := fuzzServer()
		var out bytes.Buffer
		srv.ServeStream(context.Background(), strings.NewReader(input), &out)
		sc := bufio.NewScanner(&out)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				t.Fatalf("empty response line for input %q", input)
			}
			switch {
			case strings.HasPrefix(line, "dist "),
				strings.HasPrefix(line, "route "),
				strings.HasPrefix(line, "stats "),
				strings.HasPrefix(line, "err "):
			default:
				t.Fatalf("response %q has no protocol prefix (input %q)", line, input)
			}
			if strings.Contains(line, "= -1") {
				t.Fatalf("Unreachable sentinel leaked to the wire: %q (input %q)", line, input)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning server output: %v", err)
		}
	})
}

// FuzzGraphioRead throws arbitrary bytes at the edge-list parser. Since
// the parser validates before touching the builder it must never panic
// (no recover here — a panic is a finding); every accepted graph must
// pass the structural invariants and round-trip through WriteEdgeList
// unchanged.
func FuzzGraphioRead(f *testing.F) {
	f.Add("n 4\n0 1\n2 3\n")
	f.Add("# comment\nn 2\n0 1\n")
	f.Add("n 0\n")
	f.Add("n 3\n0 1\n1 2\n0 2\n")
	f.Add("garbage")
	f.Add("n 3\n0 1\n0 1\n")  // duplicate edge
	f.Add("n 3\n1 1\n")       // self-loop
	f.Add("n 3\n-1 2\n")      // negative vertex
	f.Add("n 3\n0 7\n")       // out of range
	f.Add("n 2\n4294967296 1\n") // would truncate to 0 under int32 casting
	f.Add("n 99999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := graphio.ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if ierr := GraphInvariants(g); ierr != nil {
			t.Fatalf("accepted graph violates invariants: %v (input %q)", ierr, input)
		}
		var buf bytes.Buffer
		if werr := graphio.WriteEdgeList(&buf, g); werr != nil {
			t.Fatalf("write failed on accepted graph: %v", werr)
		}
		again, rerr := graphio.ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("round trip re-parse failed: %v", rerr)
		}
		if again.N() != g.N() || again.M() != g.M() {
			t.Fatalf("round trip changed shape: n %d->%d, m %d->%d", g.N(), again.N(), g.M(), again.M())
		}
		for i, e := range again.Edges() {
			if e != g.Edges()[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, g.Edges()[i], e)
			}
		}
	})
}
