package check

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// backendConfig is one (backend, knob) point of the backend sweep.
type backendConfig struct {
	label string
	opts  oracle.Options
	// boundedMaxDist, when ≥ 0, marks a configuration whose backend may
	// legitimately answer inexactly for pairs past the bound.
	boundedMaxDist int32
}

// backendSweep enumerates the configurations checkBackends runs: every
// backend at its defaults, plus the knob extremes that change resolution
// behavior — the sparse backend at one hub (maximal bunches) and the
// landmark backend in bounded-search mode. A non-empty opts.Backend
// restricts the sweep to that backend's configurations.
func backendSweep(opts Options, oSeed uint64) []backendConfig {
	base := func(name string) oracle.Options {
		return oracle.Options{Backend: name, Seed: oSeed, CacheSize: -1, Workers: 1, SampleEvery: -1}
	}
	cfgs := []backendConfig{
		{label: oracle.BackendLandmarkBiBFS, opts: base(oracle.BackendLandmarkBiBFS), boundedMaxDist: -1},
		{label: oracle.BackendLandmarkBiBFS + "/maxdist=3", boundedMaxDist: 3,
			opts: func() oracle.Options {
				o := base(oracle.BackendLandmarkBiBFS)
				o.MaxDist = 3
				return o
			}()},
		{label: oracle.BackendExactCached, opts: base(oracle.BackendExactCached), boundedMaxDist: -1},
		{label: oracle.BackendSparseHub, opts: base(oracle.BackendSparseHub), boundedMaxDist: -1},
		{label: oracle.BackendSparseHub + "/hubs=1", boundedMaxDist: -1,
			opts: func() oracle.Options {
				o := base(oracle.BackendSparseHub)
				o.SparseHubs = 1
				return o
			}()},
	}
	if opts.Backend == "" {
		return cfgs
	}
	kept := cfgs[:0]
	for _, c := range cfgs {
		if c.opts.Backend == opts.Backend {
			kept = append(kept, c)
		}
	}
	return kept
}

// checkBackendAnswer asserts the backend-generic answer contract against
// the exact distance matrix: unreachable pairs answered unreachable,
// exact claims exactly right, every answer admissible (never below the
// true distance), and — when the backend declares a stretch bound b —
// within b× of it. bounded ≥ 0 relaxes the exactness requirement for
// pairs past the search bound (the landmark backend's bounded mode, which
// declares no stretch bound).
func checkBackendAnswer(ck *checker, a oracle.Answer, distH *graph.TriDist, stretchBound int, bounded int32) {
	u, v := a.U, a.V
	if u == v {
		ck.assert(a.Dist == 0 && a.Bound == 0 && a.Exact,
			"(%d,%d): self-query got dist=%d bound=%d exact=%v", u, v, a.Dist, a.Bound, a.Exact)
		return
	}
	ref := distH.At(u, v)
	if ref == graph.Unreachable {
		ck.assert(a.Dist == graph.Unreachable,
			"(%d,%d): answered %d on a disconnected pair", u, v, a.Dist)
		return
	}
	if !ck.assert(a.Dist != graph.Unreachable,
		"(%d,%d): answered unreachable, true distance is %d", u, v, ref) {
		return
	}
	ck.assert(a.Dist >= ref, "(%d,%d): answered %d below the true distance %d", u, v, a.Dist, ref)
	switch {
	case a.Exact:
		ck.assert(a.Dist == ref, "(%d,%d): claims exact %d, true distance is %d", u, v, a.Dist, ref)
	case bounded >= 0:
		// Bounded landmark mode: inexact answers only past the search bound.
		ck.assert(ref > bounded,
			"(%d,%d): inexact answer %d though the true distance %d is within the search bound %d",
			u, v, a.Dist, ref, bounded)
	default:
		// Unbounded: only a backend with an approximation ratio (declared
		// bound other than exactly 1) may answer inexactly.
		ck.assert(stretchBound != 1,
			"(%d,%d): inexact answer %d from a backend declaring exactness (ref %d)", u, v, a.Dist, ref)
	}
	if stretchBound > 0 {
		ck.assert(int64(a.Dist) <= int64(stretchBound)*int64(ref),
			"(%d,%d): answered %d, over the declared %d× bound of the true distance %d",
			u, v, a.Dist, stretchBound, ref)
	}
	if a.Bound != graph.Unreachable {
		ck.assert(a.Bound >= ref, "(%d,%d): admissible bound %d below the true distance %d", u, v, a.Bound, ref)
		ck.assert(a.Dist <= a.Bound, "(%d,%d): answer %d above its own bound %d", u, v, a.Dist, a.Bound)
	}
}

// checkBackends sweeps every oracle backend over one spanner variant
// against the exact all-pairs matrix: the declared stretch bound must
// hold on every query, Exact claims must be exactly right, and
// AnswerBatch must equal the sequential answers at every worker count.
// This is the backend-generic complement to checkOracle, which pins the
// landmark backend's sharper per-path contract.
func checkBackends(rep *Report, family string, v variant, distH *graph.TriDist, opts Options, r *rng.RNG) {
	n := v.h.N()
	qn := 120
	if !opts.Quick {
		qn = 300
	}
	qs := sampleQueries(n, qn, r)
	batch := append(append([]oracle.Query(nil), qs...),
		oracle.Query{U: -1, V: 0}, oracle.Query{U: 0, V: int32(n)})
	oSeed := r.Uint64() | 1

	for _, cfg := range backendSweep(opts, oSeed) {
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("backend-dist/%s/%s", v.name, cfg.label), seed: opts.Seed}
		o, err := oracle.NewFromGraphs(v.h, v.h, alpha, cfg.opts)
		if !ck.assert(err == nil, "NewFromGraphs: %v", err) {
			continue
		}
		bs := o.BackendStats()
		ck.assert(bs.Name == cfg.opts.Backend, "serving backend %q, asked for %q", bs.Name, cfg.opts.Backend)
		for _, q := range qs {
			a, err := o.Dist(q.U, q.V)
			if !ck.assert(err == nil, "Dist(%d,%d): %v", q.U, q.V, err) {
				continue
			}
			checkBackendAnswer(ck, a, distH, bs.StretchBound, cfg.boundedMaxDist)
		}

		// AnswerBatch: equal to the sequential answers above, sentinel
		// answers for invalid queries, identical at every worker count.
		var first []oracle.Answer
		for _, w := range workerCounts {
			wopts := cfg.opts
			wopts.Workers = w
			ob, err := oracle.NewFromGraphs(v.h, v.h, alpha, wopts)
			bck := &checker{rep: rep, family: family,
				check: fmt.Sprintf("backend-batch/%s/%s/workers=%d", v.name, cfg.label, w), seed: opts.Seed}
			if !bck.assert(err == nil, "NewFromGraphs: %v", err) {
				continue
			}
			out := ob.AnswerBatch(batch)
			if !bck.assert(len(out) == len(batch), "got %d answers for %d queries", len(out), len(batch)) {
				continue
			}
			for i, a := range out {
				q := batch[i]
				if q.U < 0 || q.V < 0 || int(q.U) >= n || int(q.V) >= n {
					bck.assert(a.Dist == graph.Unreachable && a.Bound == graph.Unreachable && !a.Exact,
						"invalid query (%d,%d): got dist=%d bound=%d exact=%v", q.U, q.V, a.Dist, a.Bound, a.Exact)
					continue
				}
				checkBackendAnswer(bck, a, distH, bs.StretchBound, cfg.boundedMaxDist)
			}
			if first == nil {
				first = out
				continue
			}
			for i := range out {
				if !bck.assert(out[i] == first[i],
					"answer %d differs between workers=%d and workers=%d: %+v vs %+v",
					i, w, workerCounts[0], out[i], first[i]) {
					break
				}
			}
		}
	}
}
