package check

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// checkDynamic is the incremental-maintenance differential: drive seeded
// batches of edge updates through the incremental spanner and through a
// full oracle.Dynamic engine per backend, and after EVERY batch assert
// that the incrementally maintained state is indistinguishable from a
// from-scratch build on the current edge set.
//
// Three layers are compared per batch:
//
//   - Spanner: the maintained edge set must equal (edge for edge, not
//     just by hash) a fresh spanner.NewIncremental on the current graph
//     with the same seed — once for the auto-rebuild config and once
//     with rebuilds disabled, so the pure local-repair path is held to
//     the same standard as the threshold path.
//   - Engine: Snapshot(verify) must report Consistent, the maintained
//     spanner must satisfy the spanner invariants, and Seq must count
//     exactly the applied updates.
//   - Backend: sampled queries through the live engine must equal the
//     answers of an oracle freshly built on the same (base, spanner)
//     pair, and must satisfy the backend answer contract against an
//     exact all-pairs reference on the current spanner.
func checkDynamic(rep *Report, family string, g *graph.Graph, opts Options, r *rng.RNG) {
	n := g.N()
	if n < 2 {
		return
	}
	batches := pick(opts.Quick, 3, 5)
	batchSize := pick(opts.Quick, 6, 12)
	sopt := spanner.IncrementalOptions{Seed: r.Uint64()}
	loc := sopt
	loc.RebuildThreshold = -1 // never rebuild: every update takes the local-repair path

	incAuto := spanner.NewIncremental(g, sopt)
	incLocal := spanner.NewIncremental(g, loc)

	oSeed := r.Uint64() | 1
	var engines []*dynEngine
	for _, name := range []string{oracle.BackendLandmarkBiBFS, oracle.BackendExactCached, oracle.BackendSparseHub} {
		if opts.Backend != "" && opts.Backend != name {
			continue
		}
		ck := &checker{rep: rep, family: family, check: "dynamic-engine/" + name, seed: opts.Seed}
		d, err := oracle.NewDynamic(g, oracle.DynamicOptions{
			Spanner: sopt,
			Oracle:  oracle.Options{Backend: name, Seed: oSeed, CacheSize: 1 << 10, Workers: 1, SampleEvery: -1},
		})
		if !ck.assert(err == nil, "NewDynamic: %v", err) {
			continue
		}
		engines = append(engines, &dynEngine{name: name, d: d})
	}

	// cur mirrors the live edge set so every generated update is a real
	// mutation (flip: present -> delete, absent -> insert).
	cur := make(map[graph.Edge]bool, g.M())
	for _, e := range g.Edges() {
		cur[e] = true
	}
	applied := uint64(0)

	for b := 0; b < batches; b++ {
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("dynamic-differential/batch=%d", b), seed: opts.Seed}
		for j := 0; j < batchSize; j++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue // skipped, not redrawn: keeps the stream aligned
			}
			e := graph.Edge{U: u, V: v}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			add := !cur[e]
			okA, _, errA := applyInc(incAuto, u, v, add)
			okL, _, errL := applyInc(incLocal, u, v, add)
			if !ck.assert(errA == nil && errL == nil, "update (%d,%d,add=%v): %v / %v", u, v, add, errA, errL) {
				return
			}
			if !ck.assert(okA && okL, "update (%d,%d,add=%v) was a surprise no-op", u, v, add) {
				return
			}
			for _, en := range engines {
				res, err := en.d.Update(u, v, add)
				if !ck.assert(err == nil && res.Applied,
					"engine %s: update (%d,%d,add=%v) = (%+v, %v)", en.name, u, v, add, res, err) {
					return
				}
			}
			cur[e] = add
			if !add {
				delete(cur, e)
			}
			applied++
		}

		// Spanner layer: maintained == rebuilt from scratch, edge for edge.
		snap := incAuto.Graph().Snapshot()
		fresh := spanner.NewIncremental(snap, sopt)
		ck.assert(edgesEqual(incAuto.Edges(), fresh.Edges()),
			"auto-rebuild spanner (%d edges) differs from a from-scratch build (%d edges) after %d updates",
			incAuto.HM(), fresh.HM(), applied)
		ck.assert(edgesEqual(incLocal.Edges(), fresh.Edges()),
			"local-only spanner (%d edges) differs from a from-scratch build (%d edges) after %d updates",
			incLocal.HM(), fresh.HM(), applied)
		ck.assert(incAuto.Seq() == applied, "auto Seq=%d, applied %d updates", incAuto.Seq(), applied)

		s := incAuto.Spanner()
		ck.assert(SpannerInvariants(s.Base, s.H) == nil, "maintained spanner violates invariants after %d updates", applied)

		// Engine + backend layers.
		distH := AllPairs(s.H)
		qs := sampleQueries(n, pick(opts.Quick, 40, 90), r.Split())
		for _, en := range engines {
			eck := &checker{rep: rep, family: family,
				check: fmt.Sprintf("dynamic-backend/%s/batch=%d", en.name, b), seed: opts.Seed}
			si := en.d.Snapshot(true)
			eck.assert(si.Verified && si.Consistent,
				"verify snapshot after %d updates: %+v", applied, si)
			eck.assert(si.Seq == applied, "engine Seq=%d, applied %d updates", si.Seq, applied)
			eck.assert(si.HM == fresh.HM(), "engine HM=%d, fresh build has %d", si.HM, fresh.HM())

			freshO, err := oracle.NewFromGraphs(s.Base, s.H, spanner.IncrementalAlpha,
				oracle.Options{Backend: en.name, Seed: oSeed, CacheSize: -1, Workers: 1, SampleEvery: -1})
			if !eck.assert(err == nil, "fresh oracle: %v", err) {
				continue
			}
			sb := freshO.BackendStats().StretchBound
			for _, q := range qs {
				live, err1 := en.d.Dist(q.U, q.V)
				want, err2 := freshO.Dist(q.U, q.V)
				if !eck.assert(err1 == nil && err2 == nil, "Dist(%d,%d): %v / %v", q.U, q.V, err1, err2) {
					continue
				}
				if !eck.assert(live == want,
					"(%d,%d): refreshed backend answers %+v, fresh build answers %+v", q.U, q.V, live, want) {
					break
				}
				checkBackendAnswer(eck, live, distH, sb, -1)
			}
		}
	}

	// No-op and invalid updates must change nothing.
	ck := &checker{rep: rep, family: family, check: "dynamic-noop", seed: opts.Seed}
	liveEdges := incAuto.Graph().Snapshot().Edges()
	for _, en := range engines {
		before := en.d.Snapshot(false)
		if len(liveEdges) > 0 {
			e := liveEdges[0]
			res, err := en.d.Update(e.U, e.V, true) // already present
			ck.assert(err == nil && !res.Applied, "engine %s: re-insert = (%+v, %v)", en.name, res, err)
		}
		if _, err := en.d.Update(0, 0, true); !ck.assert(err != nil, "engine %s accepted a self-edge", en.name) {
			continue
		}
		_, err := en.d.Update(0, int32(n), true)
		ck.assert(err != nil, "engine %s accepted an out-of-range endpoint", en.name)
		after := en.d.Snapshot(false)
		ck.assert(before == after, "engine %s: no-op updates moved the snapshot %+v -> %+v", en.name, before, after)
	}
}

// dynEngine pairs a live engine with its backend name for reporting.
type dynEngine struct {
	name string
	d    *oracle.Dynamic
}

// applyInc dispatches one update to a maintained spanner.
func applyInc(inc *spanner.Incremental, u, v int32, add bool) (bool, bool, error) {
	if add {
		return inc.Insert(u, v)
	}
	return inc.Delete(u, v)
}

// edgesEqual compares two canonical (sorted, U < V) edge lists.
func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
