package check

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// TestQuickRunNoDivergences is the harness's own gate: the quick sweep at
// the default seed must be divergence-free (verify.sh runs the same sweep
// through cmd/dccheck).
func TestQuickRunNoDivergences(t *testing.T) {
	rep, err := Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Divergences {
		t.Errorf("divergence: %s", d)
	}
	if rep.Families != len(Families()) {
		t.Errorf("swept %d families, registry has %d", rep.Families, len(Families()))
	}
	if rep.Checks == 0 {
		t.Error("run evaluated zero checks")
	}
}

// TestRunDeterministic pins the reproducibility contract: two runs with
// the same options produce byte-identical reports (same check count, same
// divergence list), and restricting to one family replays exactly the
// same assertions for it.
func TestRunDeterministic(t *testing.T) {
	opts := Options{Quick: true, Seed: 77, Families: []string{"erdosrenyi-sparse", "regular"}}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different reports:\n%+v\n%+v", a, b)
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if _, err := Run(Options{Families: []string{"no-such-family"}}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestFamiliesBuildDeterministically guards the registry itself: same
// stream, same graph, and every family passes the graph invariants in
// both size modes.
func TestFamiliesBuildDeterministically(t *testing.T) {
	for _, f := range Families() {
		for _, quick := range []bool{true, false} {
			g1 := f.Build(rng.New(5), quick)
			g2 := f.Build(rng.New(5), quick)
			if g1.N() != g2.N() || !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
				t.Errorf("family %s (quick=%v) not deterministic in its stream", f.Name, quick)
			}
			if err := GraphInvariants(g1); err != nil {
				t.Errorf("family %s (quick=%v): %v", f.Name, quick, err)
			}
		}
	}
}

// TestInvariantCheckersCatchViolations feeds each checker a violating
// input: a spanner with an edge its base graph lacks, and a spanner that
// disconnects its base graph.
func TestInvariantCheckersCatchViolations(t *testing.T) {
	path := gen.Path(6)
	cycle := gen.Cycle(6) // has the wrap-around edge Path lacks
	if err := SpannerInvariants(path, cycle); err == nil {
		t.Error("SpannerInvariants accepted H ⊄ G")
	}
	if err := SpannerInvariants(path, gen.Path(5)); err == nil {
		t.Error("SpannerInvariants accepted differing vertex sets")
	}
	if err := SpannerInvariants(cycle, path); err != nil {
		t.Errorf("SpannerInvariants rejected a valid spanner: %v", err)
	}

	// Drop the middle edge of the path: still a subgraph, no longer
	// connecting what G connects.
	broken := path.FilterEdges(func(e graph.Edge) bool { return e.U != 2 })
	if err := SpannerInvariants(path, broken); err != nil {
		t.Errorf("subgraph with fewer edges should pass SpannerInvariants: %v", err)
	}
	if err := ConnectivityPreserved(path, broken); err == nil {
		t.Error("ConnectivityPreserved accepted a disconnecting spanner")
	}
	if err := ConnectivityPreserved(path, path); err != nil {
		t.Errorf("ConnectivityPreserved rejected the identity spanner: %v", err)
	}
}

// TestCheckAnswerCatchesWrongAnswers proves the oracle differential can
// actually fire: hand-corrupted answers must produce divergences.
func TestCheckAnswerCatchesWrongAnswers(t *testing.T) {
	g := gen.Path(5)
	dist := AllPairs(g)
	lms := []int32{0}
	cases := []struct {
		name string
		a    oracle.Answer
	}{
		{"wrong exact distance", oracle.Answer{U: 0, V: 3, Dist: 2, Bound: 3, Exact: true}},
		{"wrong bound", oracle.Answer{U: 0, V: 3, Dist: 3, Bound: 4, Exact: true}},
		{"inexact from unbounded oracle", oracle.Answer{U: 0, V: 3, Dist: 3, Bound: 3, Exact: false}},
		{"nonzero self distance", oracle.Answer{U: 2, V: 2, Dist: 1, Bound: 0, Exact: true}},
	}
	for _, tc := range cases {
		rep := &Report{}
		ck := &checker{rep: rep, family: "test", check: tc.name, seed: 1}
		checkAnswer(ck, tc.a, dist, lms, -1)
		if rep.OK() {
			t.Errorf("%s: corrupted answer produced no divergence", tc.name)
		}
	}
	// And a correct answer must not fire.
	rep := &Report{}
	ck := &checker{rep: rep, family: "test", check: "good", seed: 1}
	checkAnswer(ck, oracle.Answer{U: 0, V: 3, Dist: 3, Bound: 3, Exact: true}, dist, lms, -1)
	if !rep.OK() {
		t.Errorf("correct answer flagged: %v", rep.Divergences)
	}
}

// TestModelLRU pins the reference cache's own semantics (the model must
// be right for the differential to mean anything).
func TestModelLRU(t *testing.T) {
	m := NewModelLRU(2)
	m.Put(1, 10)
	m.Put(2, 20)
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d,%v), want (10,true)", v, ok)
	}
	m.Put(3, 30) // evicts 2: key 1 was promoted by the Get above
	if _, ok := m.Get(2); ok {
		t.Fatal("LRU victim 2 still cached")
	}
	if v, ok := m.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) after eviction round = (%d,%v), want (10,true)", v, ok)
	}
	m.Put(1, 11) // update in place, no eviction
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("updated value = %d, want 11", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}

	off := NewModelLRU(0)
	off.Put(1, 10)
	if _, ok := off.Get(1); ok || off.Len() != 0 {
		t.Fatal("disabled model cache stored an entry")
	}
}

func TestPairKeyNormalizes(t *testing.T) {
	if PairKey(3, 7) != PairKey(7, 3) {
		t.Fatal("PairKey not symmetric")
	}
	if PairKey(3, 7) == PairKey(3, 8) {
		t.Fatal("PairKey collides on distinct pairs")
	}
}

// TestCacheProbeConcurrent hammers the probe from many goroutines so the
// race detector sweeps the sharded cache through the check seam.
func TestCacheProbeConcurrent(t *testing.T) {
	probe := oracle.NewCacheProbe(64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w + 1))
			for i := 0; i < 2000; i++ {
				u, v := int32(r.Intn(20)), int32(r.Intn(20))
				if r.Bernoulli(0.5) {
					probe.Get(u, v)
				} else {
					probe.Put(u, v, int32(r.Intn(50)))
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := probe.Counters()
	if hits+misses == 0 {
		t.Fatal("no gets recorded")
	}
}

// TestReferenceStretchConventions pins the reference kernels' value
// conventions directly (disconnection → +Inf, identical pairs → 1).
func TestReferenceStretchConventions(t *testing.T) {
	g := gen.Path(4)
	empty := g.FilterEdges(func(graph.Edge) bool { return false })
	distG, distE := AllPairs(g), AllPairs(empty)

	rep := EdgeStretch(g, distE, alpha)
	if rep.Checked != g.M() || rep.Violations != g.M() {
		t.Fatalf("edge stretch on empty spanner: %+v", rep)
	}

	// The pair sweep asserts no finite bound (its bound is +Inf), so
	// disconnection shows up as infinite MaxStretch, not as a violation.
	pairs := [][2]int32{{0, 1}, {0, 3}}
	pr := PairStretch(distG, distE, pairs)
	if pr.Checked != 2 || !math.IsInf(pr.MaxStretch, 1) || pr.Violations != 0 {
		t.Fatalf("pair stretch on empty spanner: %+v", pr)
	}
	same := PairStretch(distE, distE, pairs)
	if same.MaxStretch != 1 || same.Violations != 0 {
		t.Fatalf("both-unreachable pairs should have stretch 1: %+v", same)
	}
}
