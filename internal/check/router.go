package check

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
)

// runRouterDifferential gates the fleet tier: a batch routed through N
// in-process workers over the binary wire protocol must come back
// byte-identical (struct equality, sentinel answers included) to the same
// batch answered by a single-process oracle.AnswerBatch. The round trip
// covers the whole serving stack — frame encode/decode on both sides,
// chunking, fan-out, merge order — so any divergence anywhere in it
// surfaces here as a differential, not as a wrong answer in production.
func runRouterDifferential(rep *Report, opts Options) {
	r := rng.New(opts.Seed ^ 0x40075e7f1ee7)
	n := 96
	deg := 16
	qn := 300
	if opts.Quick {
		n, deg, qn = 64, 12, 120
	}
	g := gen.MustRandomRegular(n, deg, r.Split())
	oSeed := r.Uint64() | 1

	newOracle := func(i int) (*oracle.Oracle, error) {
		// Same graph, same seed, per-worker instance: replicas by
		// construction, each with its own (nil) registry. A forced
		// opts.Backend rides through so the whole wire round trip is
		// exercised per backend.
		return oracle.NewFromGraphs(g, g, alpha, oracle.Options{
			Backend: opts.Backend, Landmarks: 4, Seed: oSeed, CacheSize: -1, Workers: 1, SampleEvery: -1,
		})
	}

	ref, err := newOracle(-1)
	{
		ck := &checker{rep: rep, family: "", check: "router/reference", seed: opts.Seed}
		if !ck.assert(err == nil, "reference oracle: %v", err) {
			return
		}
	}

	qs := sampleQueries(n, qn, r)
	// Invalid queries ride along: the routed path must preserve the
	// sentinel-per-index semantics, not reject or reorder.
	qs = append(qs, oracle.Query{U: -1, V: 0}, oracle.Query{U: 0, V: int32(n)}, oracle.Query{U: 1 << 30, V: -7})

	fleetSizes := []int{2, 3}
	if opts.Quick {
		fleetSizes = []int{2}
	}
	for _, workers := range fleetSizes {
		ck := &checker{rep: rep, family: "",
			check: fmt.Sprintf("router/fleet=%d", workers), seed: opts.Seed}

		fleet, err := router.StartLocalFleet(workers, newOracle, server.Config{})
		if !ck.assert(err == nil, "StartLocalFleet: %v", err) {
			continue
		}
		rt, err := router.New(router.Options{
			Workers:        fleet.Addrs(),
			HealthInterval: -1, // no background traffic during a differential
		})
		if !ck.assert(err == nil, "router.New: %v", err) {
			fleet.Close()
			continue
		}
		ck.assert(rt.N() == n, "router N = %d, fleet serves %d", rt.N(), n)

		// Batch sizes around the chunking edges: single chunk, one chunk
		// per worker, and remainder-heavy.
		for _, size := range []int{1, workers, len(qs)} {
			sub := qs[:size]
			got, err := rt.AnswerBatch(sub)
			if !ck.assert(err == nil, "AnswerBatch(%d): %v", size, err) {
				continue
			}
			want := ref.AnswerBatch(sub)
			if !ck.assert(len(got) == len(want), "AnswerBatch(%d): %d answers, want %d", size, len(got), len(want)) {
				continue
			}
			for i := range want {
				if !ck.assert(got[i] == want[i],
					"batch size %d, answer %d for (%d,%d): routed %+v, single-process %+v",
					size, i, sub[i].U, sub[i].V, got[i], want[i]) {
					break
				}
			}
		}

		// Single-query path.
		for _, q := range qs[:8] {
			if q.U < 0 || q.V < 0 || int(q.U) >= n || int(q.V) >= n {
				continue
			}
			got, err := rt.Dist(q.U, q.V)
			if !ck.assert(err == nil, "Dist(%d,%d): %v", q.U, q.V, err) {
				continue
			}
			want, err := ref.Dist(q.U, q.V)
			if !ck.assert(err == nil, "reference Dist(%d,%d): %v", q.U, q.V, err) {
				continue
			}
			ck.assert(got == want, "Dist(%d,%d): routed %+v, single-process %+v", q.U, q.V, got, want)
		}

		rt.Close()
		fleet.Close()
	}
}
