package check

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// workerCounts is the worker-count sweep every parallel kernel is checked
// at: inline, minimal parallelism, and oversubscribed (more workers than
// this container has cores).
var workerCounts = []int{1, 2, 8}

// alpha is the stretch bound the verification kernels are run with. Its
// exact value is immaterial to the differential (the reference uses the
// same one); 3 matches the paper's headline construction.
const alpha = 3

// Options parameterizes a differential run. The zero value is a full
// sweep of every family at seed 0 (which Run remaps to a fixed nonzero
// default so derived streams are never the degenerate all-zero state).
type Options struct {
	// Seed keys every random choice of the run. A divergence found at
	// seed S in family F reproduces with exactly those two values.
	Seed uint64
	// Quick shrinks graph sizes and trace lengths for CI gating.
	Quick bool
	// Families restricts the sweep to the named families; empty means all.
	Families []string
	// Backend restricts the backend sweep to one oracle backend (a
	// Backend* name from the oracle package) and forces it into the
	// router differential. Empty sweeps every backend. The
	// landmark-specific differentials (checkOracle's per-path contract,
	// the cache traces) run only when the landmark backend is in scope.
	Backend string
	// Logf, when non-nil, receives per-family progress lines.
	Logf func(format string, args ...any)
}

// DefaultSeed is the run seed used when Options.Seed is zero.
const DefaultSeed = 0xd15c0c0de

// landmarkInScope reports whether the landmark backend's own
// differentials should run under this configuration.
func landmarkInScope(opts Options) bool {
	return opts.Backend == "" || opts.Backend == oracle.BackendLandmarkBiBFS
}

// Run executes the differential sweep and returns its report. It only
// returns a non-nil error for configuration problems (unknown family
// names); divergences are data, reported in Report.Divergences.
func Run(opts Options) (Report, error) {
	fams, err := LookupFamilies(opts.Families)
	if err != nil {
		return Report{}, err
	}
	if opts.Seed == 0 {
		opts.Seed = DefaultSeed
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := Report{}
	for _, f := range fams {
		before := len(rep.Divergences)
		runFamily(&rep, f, opts)
		rep.Families++
		logf("family %-18s checks=%d divergences=%d", f.Name, rep.Checks, len(rep.Divergences)-before)
	}
	if landmarkInScope(opts) {
		runCacheTrace(&rep, opts)
		logf("cache traces          checks=%d divergences=%d", rep.Checks, len(rep.Divergences))
	}
	runRouterDifferential(&rep, opts)
	logf("router fleet          checks=%d divergences=%d", rep.Checks, len(rep.Divergences))
	return rep, nil
}

// checker accumulates assertions for one (family, check) context.
type checker struct {
	rep    *Report
	family string
	check  string
	seed   uint64
}

func (c *checker) assert(ok bool, format string, args ...any) bool {
	c.rep.Checks++
	if !ok {
		c.rep.Divergences = append(c.rep.Divergences, Divergence{
			Family: c.family,
			Check:  c.check,
			Seed:   c.seed,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	return ok
}

// variant is one (spanner, base) pair a family is checked under.
type variant struct {
	name string
	h    *graph.Graph
}

// runFamily drives every differential for one generator family: build the
// graph, derive spanner variants, and check the oracle, the verification
// kernels, and the congestion kernels against the exact references.
func runFamily(rep *Report, f Family, opts Options) {
	seed := familySeed(opts.Seed, f.Name)
	r := rng.New(seed)
	g := f.Build(r.Split(), opts.Quick)

	ck := &checker{rep: rep, family: f.Name, check: "graph-invariants", seed: opts.Seed}
	if err := GraphInvariants(g); !ck.assert(err == nil, "%v", err) {
		return // structurally broken graph poisons everything downstream
	}

	distG := AllPairs(g)
	variants := []variant{{name: "identity", h: g}}
	if f.Spanner != nil {
		variants = append(variants, variant{name: "paper", h: f.Spanner(r.Split(), opts.Quick)})
	}
	if h := forestSpanner(g, r.Split()); h != nil {
		variants = append(variants, variant{name: "forest", h: h})
	}
	if h := randomSubgraph(g, r.Split()); h != nil {
		variants = append(variants, variant{name: "random-sub", h: h})
	}

	for _, v := range variants {
		ck := &checker{rep: rep, family: f.Name, check: "spanner-invariants/" + v.name, seed: opts.Seed}
		if err := SpannerInvariants(g, v.h); !ck.assert(err == nil, "%v", err) {
			continue
		}
		if v.name == "identity" || v.name == "forest" {
			ck.check = "connectivity/" + v.name
			ck.assert(ConnectivityPreserved(g, v.h) == nil, "spanner disconnects the base graph")
		}
		distH := distG
		if v.h != g {
			distH = AllPairs(v.h)
		}
		if landmarkInScope(opts) {
			checkOracle(rep, f.Name, v, distH, opts, r.Split())
		}
		checkBackends(rep, f.Name, v, distH, opts, r.Split())
		checkVerifyKernels(rep, f.Name, v, g, distG, distH, opts, r.Split())
		checkCongestion(rep, f.Name, v, opts, r.Split())
	}

	checkBFSKernels(rep, f.Name, g, opts, r.Split())
	checkDynamic(rep, f.Name, g, opts, r.Split())
}

// checkBFSKernels is the multi-source kernel differential: the
// bit-parallel kernel, the scalar parallel kernel, and the naive
// per-source BFS must produce identical distance rows at every worker
// count (bit-parallel == scalar == naive). Sources are a stride sample
// wide enough to cross a 64-source word boundary plus a duplicate, so
// group packing and the duplicate-source path are both exercised.
func checkBFSKernels(rep *Report, family string, g *graph.Graph, opts Options, r *rng.RNG) {
	n := g.N()
	if n == 0 {
		return
	}
	count := 70 // crosses one bitGroup boundary
	if count > 2*n {
		count = 2 * n
	}
	srcs := make([]int32, 0, count+1)
	for i := 0; i < count; i++ {
		srcs = append(srcs, int32(r.Intn(n)))
	}
	srcs = append(srcs, srcs[0]) // duplicate source
	naive := make([][]int32, len(srcs))
	for i, s := range srcs {
		naive[i] = g.BFS(s)
	}
	for _, w := range workerCounts {
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("bfs-kernels/workers=%d", w), seed: opts.Seed}
		scalar := g.ParallelBFSFrom(srcs, w)
		bitp := g.BitParallelBFSFrom(srcs, w)
		for i := range srcs {
			if !ck.assert(int32sEqual(scalar.Row(i), naive[i]),
				"scalar kernel row %d (source %d) differs from naive BFS", i, srcs[i]) {
				break
			}
			if !ck.assert(int32sEqual(bitp.Row(i), naive[i]),
				"bit-parallel kernel row %d (source %d) differs from naive BFS", i, srcs[i]) {
				break
			}
		}
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forestSpanner returns a spanning forest of g plus a random ~30% of the
// remaining edges: always connectivity-preserving, usually much sparser
// than g. Returns nil for edgeless graphs (the identity variant covers
// those).
func forestSpanner(g *graph.Graph, r *rng.RNG) *graph.Graph {
	if g.M() == 0 {
		return nil
	}
	n := g.N()
	b := graph.NewBuilder(n)
	inTree := make([]bool, n)
	queue := make([]int32, 0, n)
	for root := int32(0); root < int32(n); root++ {
		if inTree[root] {
			continue
		}
		inTree[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if !inTree[w] {
					inTree[w] = true
					b.AddEdge(u, w)
					queue = append(queue, w)
				}
			}
		}
	}
	forest := b.MustBuild()
	for _, e := range g.Edges() {
		// Draw for every edge so the stream is independent of forest shape.
		keep := r.Bernoulli(0.3)
		if keep && !forest.HasEdge(e.U, e.V) {
			b.AddEdge(e.U, e.V)
		}
	}
	return b.MustBuild()
}

// randomSubgraph keeps each edge of g independently with probability 0.55
// — the variant that exercises disconnected pairs and the Unreachable
// sentinel end to end. Returns nil for edgeless graphs.
func randomSubgraph(g *graph.Graph, r *rng.RNG) *graph.Graph {
	if g.M() == 0 {
		return nil
	}
	keep := make([]bool, g.M())
	for i := range keep {
		keep[i] = r.Bernoulli(0.55)
	}
	i := 0
	return g.FilterEdges(func(graph.Edge) bool {
		k := keep[i]
		i++
		return k
	})
}

// sampleQueries draws the query set one oracle differential runs against:
// random ordered pairs (u == v included), plus the fixed corner pairs.
func sampleQueries(n, count int, r *rng.RNG) []oracle.Query {
	qs := make([]oracle.Query, 0, count+2)
	for i := 0; i < count; i++ {
		qs = append(qs, oracle.Query{U: int32(r.Intn(n)), V: int32(r.Intn(n))})
	}
	qs = append(qs, oracle.Query{U: 0, V: int32(n - 1)}, oracle.Query{U: 0, V: 0})
	return qs
}

// refBound recomputes the landmark upper bound min_l d(u,l) + d(l,v) from
// the exact distance table and the oracle's own landmark choice.
func refBound(distH *graph.TriDist, lms []int32, u, v int32) int32 {
	best := graph.Unreachable
	for _, l := range lms {
		du, dv := distH.At(l, u), distH.At(l, v)
		if du == graph.Unreachable || dv == graph.Unreachable {
			continue
		}
		if s := du + dv; best == graph.Unreachable || s < best {
			best = s
		}
	}
	return best
}

// checkAnswer asserts one oracle Answer against the exact reference.
// maxDist < 0 means the oracle ran unbounded (every answer must be exact);
// otherwise the bounded-search contract applies: an inexact answer is
// allowed only when the true distance exceeds the bound, and it must then
// serve exactly the landmark bound.
func checkAnswer(ck *checker, a oracle.Answer, distH *graph.TriDist, lms []int32, maxDist int32) {
	u, v := a.U, a.V
	if u == v {
		ck.assert(a.Dist == 0 && a.Bound == 0 && a.Exact,
			"(%d,%d): self-query got dist=%d bound=%d exact=%v", u, v, a.Dist, a.Bound, a.Exact)
		return
	}
	ref := distH.At(u, v)
	bound := refBound(distH, lms, u, v)
	if !ck.assert(a.Bound == bound,
		"(%d,%d): bound=%d, reference landmark bound=%d", u, v, a.Bound, bound) {
		return
	}
	if a.Exact {
		ck.assert(a.Dist == ref,
			"(%d,%d): exact dist=%d, reference BFS says %d", u, v, a.Dist, ref)
		return
	}
	if !ck.assert(maxDist >= 0,
		"(%d,%d): inexact answer from an unbounded oracle (dist=%d ref=%d)", u, v, a.Dist, ref) {
		return
	}
	ck.assert(ref == graph.Unreachable || ref > maxDist,
		"(%d,%d): inexact answer but reference distance %d is within bound %d", u, v, ref, maxDist)
	ck.assert(a.Dist == bound,
		"(%d,%d): inexact answer dist=%d != landmark bound %d", u, v, a.Dist, bound)
	ck.assert(bound == graph.Unreachable || ref == graph.Unreachable || bound >= ref,
		"(%d,%d): landmark bound %d below true distance %d", u, v, bound, ref)
}

// checkOracle runs the oracle differential for one spanner variant: every
// landmark count × cache configuration, two passes (cold then cache-warm),
// the bounded-search mode, AnswerBatch at every worker count, and invalid
// queries.
func checkOracle(rep *Report, family string, v variant, distH *graph.TriDist, opts Options, r *rng.RNG) {
	n := v.h.N()
	qn := 150
	if !opts.Quick {
		qn = 400
	}
	qs := sampleQueries(n, qn, r)
	oSeed := r.Uint64() | 1 // nonzero: 0 would mean "inherit build seed"

	landmarkCounts := []int{1, 3, n}
	cacheSizes := []int{-1, 1 << 12, 3}
	for _, lc := range landmarkCounts {
		for _, cs := range cacheSizes {
			o, err := oracle.NewFromGraphs(v.h, v.h, alpha, oracle.Options{
				Landmarks: lc, Seed: oSeed, CacheSize: cs, Workers: 1, SampleEvery: -1,
			})
			ck := &checker{rep: rep, family: family,
				check: fmt.Sprintf("oracle-dist/%s/lm=%d/cache=%d", v.name, lc, cs), seed: opts.Seed}
			if !ck.assert(err == nil, "NewFromGraphs: %v", err) {
				continue
			}
			lms := o.Landmarks()
			want := lc
			if want > n {
				want = n
			}
			ck.assert(len(lms) == want, "asked for %d landmarks, got %d", want, len(lms))
			for pass := 0; pass < 2; pass++ {
				for _, q := range qs {
					a, err := o.Dist(q.U, q.V)
					if !ck.assert(err == nil, "Dist(%d,%d) pass %d: %v", q.U, q.V, pass, err) {
						continue
					}
					checkAnswer(ck, a, distH, lms, -1)
				}
			}
		}
	}

	// Bounded search: answers past MaxDist fall back to the landmark bound.
	{
		o, err := oracle.NewFromGraphs(v.h, v.h, alpha, oracle.Options{
			Landmarks: 3, Seed: oSeed, CacheSize: -1, Workers: 1, SampleEvery: -1, MaxDist: 3,
		})
		ck := &checker{rep: rep, family: family, check: "oracle-dist/" + v.name + "/maxdist=3", seed: opts.Seed}
		if ck.assert(err == nil, "NewFromGraphs: %v", err) {
			lms := o.Landmarks()
			for _, q := range qs {
				a, err := o.Dist(q.U, q.V)
				if !ck.assert(err == nil, "Dist(%d,%d): %v", q.U, q.V, err) {
					continue
				}
				checkAnswer(ck, a, distH, lms, 3)
			}
		}
	}

	// AnswerBatch: identical answers at every worker count, invalid
	// queries answered with the Unreachable sentinel instead of poisoning
	// the batch.
	batch := append(append([]oracle.Query(nil), qs...),
		oracle.Query{U: -1, V: 0}, oracle.Query{U: 0, V: int32(n)})
	var first []oracle.Answer
	for _, w := range workerCounts {
		o, err := oracle.NewFromGraphs(v.h, v.h, alpha, oracle.Options{
			Landmarks: 3, Seed: oSeed, CacheSize: 1 << 12, Workers: w, SampleEvery: -1,
		})
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("oracle-batch/%s/workers=%d", v.name, w), seed: opts.Seed}
		if !ck.assert(err == nil, "NewFromGraphs: %v", err) {
			continue
		}
		lms := o.Landmarks()
		out := o.AnswerBatch(batch)
		if !ck.assert(len(out) == len(batch), "got %d answers for %d queries", len(out), len(batch)) {
			continue
		}
		for i, a := range out {
			q := batch[i]
			if q.U < 0 || q.V < 0 || int(q.U) >= n || int(q.V) >= n {
				ck.assert(a.Dist == graph.Unreachable && a.Bound == graph.Unreachable && !a.Exact,
					"invalid query (%d,%d): got dist=%d bound=%d exact=%v", q.U, q.V, a.Dist, a.Bound, a.Exact)
				continue
			}
			checkAnswer(ck, a, distH, lms, -1)
		}
		if first == nil {
			first = out
			continue
		}
		for i := range out {
			if !ck.assert(out[i] == first[i],
				"answer %d differs between workers=%d and workers=%d: %+v vs %+v",
				i, w, workerCounts[0], out[i], first[i]) {
				break
			}
		}
	}
}

// checkVerifyKernels runs the stretch-verification differential: the
// optimized parallel kernels at every worker count versus the brute-force
// reports computed from the exact distance matrices. Agreement is exact
// (float bit equality), not approximate — the references reduce in the
// same order as the kernels.
func checkVerifyKernels(rep *Report, family string, v variant, g *graph.Graph, distG, distH *graph.TriDist, opts Options, r *rng.RNG) {
	edgeRef := EdgeStretch(g, distH, alpha)
	for _, w := range workerCounts {
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("verify-edge/%s/workers=%d", v.name, w), seed: opts.Seed}
		got := spanner.VerifyEdgeStretchOpts(g, v.h, alpha, spanner.VerifyOptions{Workers: w})
		ck.assert(got == edgeRef, "got %+v, reference %+v", got, edgeRef)
	}

	n := g.N()
	pairs := 80
	if !opts.Quick {
		pairs = 250
	}
	if total := n * (n - 1) / 2; pairs > total {
		pairs = total
	}
	pairSeed := r.Uint64()
	ps := rng.New(pairSeed).SamplePairs(n, pairs)
	pairRef := PairStretch(distG, distH, ps)
	for _, w := range workerCounts {
		ck := &checker{rep: rep, family: family,
			check: fmt.Sprintf("verify-pair/%s/workers=%d", v.name, w), seed: opts.Seed}
		got := spanner.VerifyPairStretchOpts(g, v.h, pairs, rng.New(pairSeed), spanner.VerifyOptions{Workers: w})
		ck.assert(got == pairRef, "got %+v, reference %+v", got, pairRef)
	}
}

// checkCongestion routes a within-component problem on the spanner and
// compares the parallel congestion-accounting kernels at every worker
// count against the map-per-path reference.
func checkCongestion(rep *Report, family string, v variant, opts Options, r *rng.RNG) {
	n := v.h.N()
	comp, _ := v.h.Components()
	want := 25
	if !opts.Quick {
		want = 60
	}
	var prob routing.Problem
	for tries := 0; tries < 40*want && len(prob) < want; tries++ {
		u, w := int32(r.Intn(n)), int32(r.Intn(n))
		if u != w && comp[u] == comp[w] {
			prob = append(prob, routing.Pair{Src: u, Dst: w})
		}
	}
	ck := &checker{rep: rep, family: family, check: "congestion/" + v.name, seed: opts.Seed}
	if len(prob) == 0 {
		return // all-singleton components: nothing to route
	}
	route, err := routing.ShortestPaths(v.h, prob)
	if !ck.assert(err == nil, "ShortestPaths: %v", err) {
		return
	}
	ck.assert(route.Validate(v.h) == nil, "routing failed validation on its own graph")
	refProfile := NodeCongestionProfile(route.Paths, n)
	refMax := NodeCongestion(route.Paths, n)
	for _, w := range workerCounts {
		ck.check = fmt.Sprintf("congestion/%s/workers=%d", v.name, w)
		got := route.NodeCongestionProfileWorkers(n, w)
		ck.assert(intsEqual(got, refProfile), "profile differs from reference at workers=%d", w)
		ck.assert(route.NodeCongestionWorkers(n, w) == refMax,
			"max congestion %d != reference %d", route.NodeCongestionWorkers(n, w), refMax)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cacheTraceOp is one recorded cache operation.
type cacheTraceOp struct {
	get  bool
	u, v int32
	val  int32
}

// recordTrace draws a random get/put trace over a small key space —
// small enough that keys collide and evictions churn.
func recordTrace(r *rng.RNG, ops int) []cacheTraceOp {
	trace := make([]cacheTraceOp, ops)
	for i := range trace {
		u, v := int32(r.Intn(12)), int32(r.Intn(12))
		trace[i] = cacheTraceOp{
			get: r.Bernoulli(0.6),
			u:   u, v: v,
			val: int32(r.Intn(100)),
		}
	}
	return trace
}

// runCacheTrace replays recorded op traces against the oracle's sharded
// LRU. Single-shard configurations must match the model LRU op for op;
// multi-shard configurations (shard-local eviction order is a different
// policy by design) are held to the weaker per-key invariants.
func runCacheTrace(rep *Report, opts Options) {
	ops := 4000
	if opts.Quick {
		ops = 1500
	}
	trace := recordTrace(rng.New(opts.Seed^0xcac4e17ace), ops)

	for _, capacity := range []int{1, 2, 7, 64} {
		ck := &checker{rep: rep, family: "", seed: opts.Seed,
			check: fmt.Sprintf("cache-exact/cap=%d", capacity)}
		probe := oracle.NewCacheProbe(capacity, 1)
		if !ck.assert(probe.Slots() == capacity, "single shard has %d slots for capacity %d", probe.Slots(), capacity) {
			continue
		}
		model := NewModelLRU(capacity)
		for i, op := range trace {
			if op.get {
				gd, gok := probe.Get(op.u, op.v)
				md, mok := model.Get(PairKey(op.u, op.v))
				if !ck.assert(gok == mok && (!gok || gd == md),
					"op %d: Get(%d,%d) = (%d,%v), model says (%d,%v)", i, op.u, op.v, gd, gok, md, mok) {
					break
				}
			} else {
				probe.Put(op.u, op.v, op.val)
				model.Put(PairKey(op.u, op.v), op.val)
			}
		}
		hits, misses := probe.Counters()
		gets := int64(0)
		for _, op := range trace {
			if op.get {
				gets++
			}
		}
		ck.assert(hits+misses == gets, "hits %d + misses %d != gets %d", hits, misses, gets)
	}

	// Disabled cache: every get misses, puts are dropped.
	{
		ck := &checker{rep: rep, family: "", seed: opts.Seed, check: "cache-disabled"}
		probe := oracle.NewCacheProbe(-1, 0)
		ck.assert(probe.Slots() == 0, "disabled cache reports %d slots", probe.Slots())
		probe.Put(1, 2, 3)
		_, ok := probe.Get(1, 2)
		ck.assert(!ok, "disabled cache served a hit")
	}

	for _, cfg := range [][2]int{{64, 8}, {13, 4}, {100, 7}} {
		capacity, shards := cfg[0], cfg[1]
		ck := &checker{rep: rep, family: "", seed: opts.Seed,
			check: fmt.Sprintf("cache-sharded/cap=%d/shards=%d", capacity, shards)}
		probe := oracle.NewCacheProbe(capacity, shards)
		ck.assert(probe.Slots() >= capacity, "total slots %d below capacity %d", probe.Slots(), capacity)
		ck.assert(probe.Shards() >= 1 && probe.Shards()&(probe.Shards()-1) == 0,
			"shard count %d not a power of two", probe.Shards())
		last := make(map[uint64]int32)
		gets := int64(0)
		for i, op := range trace {
			key := PairKey(op.u, op.v)
			if op.get {
				gets++
				if d, ok := probe.Get(op.u, op.v); ok {
					want, ever := last[key]
					if !ck.assert(ever && d == want,
						"op %d: Get(%d,%d) hit %d, last put was (%d, present=%v)", i, op.u, op.v, d, want, ever) {
						break
					}
				}
			} else {
				probe.Put(op.u, op.v, op.val)
				last[key] = op.val
				// Single-threaded put-then-get on the same key must hit:
				// only other puts to the same shard could evict it.
				d, ok := probe.Get(op.u, op.v)
				gets++
				if !ck.assert(ok && d == op.val,
					"op %d: Get(%d,%d) right after Put = (%d,%v), want (%d,true)", i, op.u, op.v, d, ok, op.val) {
					break
				}
			}
		}
		hits, misses := probe.Counters()
		ck.assert(hits+misses == gets, "hits %d + misses %d != gets %d", hits, misses, gets)
	}
}
