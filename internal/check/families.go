package check

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Family is one generator family the differential runner sweeps. Build
// receives a family-keyed RNG stream and the quick flag; it must be
// deterministic in the stream (sizes are fixed per mode so a divergence
// reproduces from the family name and seed alone).
type Family struct {
	Name  string
	Build func(r *rng.RNG, quick bool) *graph.Graph
	// Spanner, when set, returns a construction-specific spanner of the
	// built graph (the Lemma 2 instance ships its own H); otherwise the
	// runner derives spanners generically.
	Spanner func(r *rng.RNG, quick bool) *graph.Graph
}

func pick(quick bool, q, full int) int {
	if quick {
		return q
	}
	return full
}

// Families returns every internal/gen graph family, in a fixed order, at
// sizes small enough for exact all-pairs reference computation. Each
// constructor exported by internal/gen appears at least once, including
// the paper's bespoke instances.
func Families() []Family {
	lemma2 := func(quick bool) *gen.Lemma2Instance {
		return gen.Lemma2Graph(pick(quick, 4, 6), 3)
	}
	return []Family{
		{Name: "path", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Path(pick(quick, 17, 41))
		}},
		{Name: "cycle", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Cycle(pick(quick, 16, 40))
		}},
		{Name: "clique", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Clique(pick(quick, 12, 24))
		}},
		{Name: "circulant", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Circulant(pick(quick, 18, 42), []int{1, 2, 5})
		}},
		{Name: "hypercube", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Hypercube(pick(quick, 4, 6))
		}},
		{Name: "torus", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			s := pick(quick, 4, 6)
			return gen.Torus(s, s+1)
		}},
		{Name: "bipartite", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.CompleteBipartite(pick(quick, 5, 9), pick(quick, 7, 11))
		}},
		// Sparse G(n, p) below the connectivity threshold: the family that
		// exercises disconnected pairs, unreachable sentinels, and isolated
		// vertices end to end.
		{Name: "erdosrenyi-sparse", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			n := pick(quick, 32, 56)
			return gen.ErdosRenyi(n, 1.2/float64(n), r)
		}},
		{Name: "erdosrenyi-dense", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.ErdosRenyi(pick(quick, 26, 44), 0.18, r)
		}},
		{Name: "regular", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.MustRandomRegular(pick(quick, 24, 48), 4, r)
		}},
		{Name: "margulis", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.Margulis(pick(quick, 4, 6))
		}},
		{Name: "paley", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			g, err := gen.Paley(pick(quick, 17, 37))
			if err != nil {
				panic(err)
			}
			return g
		}},
		{Name: "denseexpander", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			g, err := gen.DenseExpander(pick(quick, 24, 40), 0.4, r)
			if err != nil {
				panic(err)
			}
			return g
		}},
		{Name: "cliquematching", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.CliqueMatchingGraph(pick(quick, 12, 20))
		}},
		{Name: "fan", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			return gen.FanGraph(pick(quick, 6, 12)).G
		}},
		// The Lemma 2 separation instance carries its own paper-defined
		// spanner H, so the runner checks that exact (G, H) pair too.
		{
			Name: "lemma2",
			Build: func(r *rng.RNG, quick bool) *graph.Graph {
				return lemma2(quick).G
			},
			Spanner: func(r *rng.RNG, quick bool) *graph.Graph {
				return lemma2(quick).H
			},
		},
		{Name: "theorem4-affine", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			inst, err := gen.Theorem4Affine(pick(quick, 3, 5))
			if err != nil {
				panic(err)
			}
			return inst.G
		}},
		{Name: "theorem4-random", Build: func(r *rng.RNG, quick bool) *graph.Graph {
			inst, err := gen.Theorem4Random(pick(quick, 18, 30), pick(quick, 4, 6), 2, r)
			if err != nil {
				panic(err)
			}
			return inst.G
		}},
	}
}

// FamilyNames returns the registered family names in sweep order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// LookupFamilies resolves a list of family names, erroring on unknown
// names. An empty list means all families.
func LookupFamilies(names []string) ([]Family, error) {
	all := Families()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Family, len(all))
	for _, f := range all {
		byName[f.Name] = f
	}
	out := make([]Family, 0, len(names))
	for _, n := range names {
		f, ok := byName[n]
		if !ok {
			known := FamilyNames()
			sort.Strings(known)
			return nil, fmt.Errorf("check: unknown family %q (known: %v)", n, known)
		}
		out = append(out, f)
	}
	return out, nil
}

// familySeed derives the per-family RNG seed from the run seed, so one
// family reproduces in isolation with the same graphs it saw in a full
// sweep.
func familySeed(runSeed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return runSeed ^ h.Sum64()
}
