package check

import (
	"fmt"

	"repro/internal/graph"
)

// GraphInvariants checks the structural contract every graph.Graph must
// satisfy, reading only through the public API so it can be called on any
// graph from any test:
//
//   - each adjacency list is strictly increasing (sorted, no duplicates)
//     and contains no self-loop;
//   - Edges() lists each edge once, normalized U < V, in strict
//     lexicographic order, and M() matches;
//   - adjacency and edge list describe the same edge set (degree sum is
//     2·M and every listed edge appears in both endpoint adjacencies).
func GraphInvariants(g *graph.Graph) error {
	n := int32(g.N())
	degSum := 0
	for v := int32(0); v < n; v++ {
		nbrs := g.Neighbors(v)
		degSum += len(nbrs)
		for i, w := range nbrs {
			if w == v {
				return fmt.Errorf("self-loop at vertex %d", v)
			}
			if w < 0 || w >= n {
				return fmt.Errorf("vertex %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && nbrs[i-1] >= w {
				return fmt.Errorf("adjacency of %d not strictly increasing at index %d (%d >= %d)",
					v, i, nbrs[i-1], w)
			}
		}
	}
	edges := g.Edges()
	if len(edges) != g.M() {
		return fmt.Errorf("M()=%d but Edges() has %d entries", g.M(), len(edges))
	}
	if degSum != 2*g.M() {
		return fmt.Errorf("degree sum %d != 2*M = %d", degSum, 2*g.M())
	}
	for i, e := range edges {
		if e.U >= e.V {
			return fmt.Errorf("edge %d (%d,%d) not normalized U < V", i, e.U, e.V)
		}
		if i > 0 {
			p := edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				return fmt.Errorf("edge list not strictly sorted at %d: (%d,%d) then (%d,%d)",
					i, p.U, p.V, e.U, e.V)
			}
		}
		if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
			return fmt.Errorf("edge (%d,%d) listed but not in adjacency", e.U, e.V)
		}
	}
	return nil
}

// SpannerInvariants checks that h is a spanner-shaped subgraph of g in
// the paper's sense: same vertex set, E(H) ⊆ E(G), and both graphs pass
// GraphInvariants.
func SpannerInvariants(g, h *graph.Graph) error {
	if err := GraphInvariants(g); err != nil {
		return fmt.Errorf("base graph: %w", err)
	}
	if err := GraphInvariants(h); err != nil {
		return fmt.Errorf("spanner: %w", err)
	}
	if g.N() != h.N() {
		return fmt.Errorf("vertex sets differ: |V(H)|=%d, |V(G)|=%d", h.N(), g.N())
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("spanner edge (%d,%d) not in base graph", e.U, e.V)
		}
	}
	return nil
}

// ConnectivityPreserved checks that h connects everything g connects.
// Because E(H) ⊆ E(G) implies h's components refine g's, it suffices to
// compare component counts — but this checker does not assume the subset
// relation and verifies endpoint-by-endpoint: every edge of g must have
// its endpoints in one h-component.
func ConnectivityPreserved(g, h *graph.Graph) error {
	if g.N() != h.N() {
		return fmt.Errorf("vertex sets differ: %d vs %d", g.N(), h.N())
	}
	comp, _ := h.Components()
	for _, e := range g.Edges() {
		if comp[e.U] != comp[e.V] {
			return fmt.Errorf("edge (%d,%d) of G spans two components of H", e.U, e.V)
		}
	}
	return nil
}
