package check

import (
	"container/list"
	"math"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spanner"
)

// This file holds the naive reference implementations the differential
// runner compares the optimized paths against. They are intentionally
// slow and intentionally boring: one plain BFS per source, one map per
// path, one mutex-free linked-list LRU. Do not optimize them — their
// value is that a reviewer can see they are correct at a glance.

// AllPairs returns the exact all-pairs hop-distance table of g via one
// independent BFS per source (graph.BFS, the simplest BFS in the repo) —
// deliberately not the bit-parallel kernel, which this table is the
// reference for. At(u, v) is graph.Unreachable for disconnected pairs; the
// triangular layout stores each unordered pair once (symmetry is a BFS
// theorem, not an implementation detail the reference relies on).
func AllPairs(g *graph.Graph) *graph.TriDist {
	n := g.N()
	out := graph.NewTriDist(n)
	for v := 0; v < n; v++ {
		row := g.BFS(int32(v))
		for w := v + 1; w < n; w++ {
			out.Set(int32(v), int32(w), row[w])
		}
	}
	return out
}

// EdgeStretch recomputes spanner.VerifyEdgeStretch's report from an exact
// distance table of h: for every edge (u, v) of g, the per-edge stretch
// is dist_H(u, v) (the edge has length 1 in G), +Inf when h disconnects
// the endpoints. The reduction runs in g's edge order with the same
// arithmetic as the optimized kernel, so agreement is exact, not
// approximate.
func EdgeStretch(g *graph.Graph, distH *graph.TriDist, alpha int) spanner.StretchReport {
	stretch := make([]float64, 0, g.M())
	for _, e := range g.Edges() {
		d := distH.At(e.U, e.V)
		if d == graph.Unreachable {
			stretch = append(stretch, math.Inf(1))
		} else {
			stretch = append(stretch, float64(d))
		}
	}
	return foldStretch(stretch, float64(alpha))
}

// PairStretch recomputes spanner.VerifyPairStretch's report for an
// explicit pair sample from exact distance tables of g and h, with the
// optimized kernel's value conventions: both-unreachable counts as
// stretch 1, h-only-unreachable as +Inf.
func PairStretch(distG, distH *graph.TriDist, pairs [][2]int32) spanner.StretchReport {
	stretch := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		dg := distG.At(p[0], p[1])
		dh := distH.At(p[0], p[1])
		switch {
		case dg == graph.Unreachable && dh == graph.Unreachable:
			stretch = append(stretch, 1)
		case dh == graph.Unreachable:
			stretch = append(stretch, math.Inf(1))
		case dg == 0:
			stretch = append(stretch, 1)
		default:
			stretch = append(stretch, float64(dh)/float64(dg))
		}
	}
	return foldStretch(stretch, math.Inf(1))
}

// foldStretch mirrors the optimized kernels' serial reduction: values
// above bound count as violations, the mean is the straight sum in slice
// order. Keeping the order identical keeps the floating-point results
// bit-identical.
func foldStretch(stretch []float64, bound float64) spanner.StretchReport {
	rep := spanner.StretchReport{Checked: len(stretch)}
	total := 0.0
	for _, s := range stretch {
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
		if s > bound {
			rep.Violations++
		}
		total += s
	}
	if len(stretch) > 0 {
		rep.MeanStretch = total / float64(len(stretch))
	}
	return rep
}

// NodeCongestionProfile recomputes routing's C(P, v) accounting the
// obvious way: one set per path, each visited vertex counted once per
// path that contains it.
func NodeCongestionProfile(paths []routing.Path, n int) []int {
	counts := make([]int, n)
	for _, p := range paths {
		seen := make(map[int32]struct{}, len(p))
		for _, v := range p {
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			counts[v]++
		}
	}
	return counts
}

// NodeCongestion is max_v of NodeCongestionProfile.
func NodeCongestion(paths []routing.Path, n int) int {
	max := 0
	for _, c := range NodeCongestionProfile(paths, n) {
		if c > max {
			max = c
		}
	}
	return max
}

// ModelLRU is the single-threaded model cache the sharded LRU is checked
// against: a textbook map + doubly-linked-list LRU with no sharding, no
// pooling, and no concurrency. With shard count 1 the optimized cache
// must agree with it on every operation of any trace.
type ModelLRU struct {
	capacity int
	order    *list.List // front = most recently used; values are *modelEntry
	entries  map[uint64]*list.Element
}

type modelEntry struct {
	key uint64
	val int32
}

// NewModelLRU builds a model cache. capacity <= 0 means disabled (all
// gets miss, puts are dropped), mirroring oracle.Options.CacheSize.
func NewModelLRU(capacity int) *ModelLRU {
	return &ModelLRU{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[uint64]*list.Element),
	}
}

// PairKey packs an unordered vertex pair the same way the oracle cache
// does: normalized u <= v, 32 bits each.
func PairKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Get returns the cached value and whether it was present, promoting the
// entry to most recently used.
func (m *ModelLRU) Get(key uint64) (int32, bool) {
	el, ok := m.entries[key]
	if !ok {
		return 0, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*modelEntry).val, true
}

// Put inserts or refreshes key -> val, evicting the least recently used
// entry when full.
func (m *ModelLRU) Put(key uint64, val int32) {
	if m.capacity <= 0 {
		return
	}
	if el, ok := m.entries[key]; ok {
		el.Value.(*modelEntry).val = val
		m.order.MoveToFront(el)
		return
	}
	if m.order.Len() >= m.capacity {
		tail := m.order.Back()
		m.order.Remove(tail)
		delete(m.entries, tail.Value.(*modelEntry).key)
	}
	m.entries[key] = m.order.PushFront(&modelEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (m *ModelLRU) Len() int { return m.order.Len() }
