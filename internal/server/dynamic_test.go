package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
	"repro/internal/wire"
)

// testDynamicServer builds a Server over an oracle.Dynamic engine on a
// 64-vertex Erdős–Rényi graph.
func testDynamicServer(t testing.TB) *Server {
	t.Helper()
	base := gen.ErdosRenyi(64, 0.08, rng.New(4))
	d, err := oracle.NewDynamic(base, oracle.DynamicOptions{
		Oracle: oracle.Options{Backend: oracle.BackendExactCached, Seed: 5},
	})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	return NewBackend(DynamicBackend{d}, Config{})
}

// The update/snapshot text verbs end to end: mutations apply, queries
// see them, no-ops report applied=false, and a verify snapshot confirms
// the maintained spanner matches a from-scratch rebuild.
func TestTextUpdateSnapshot(t *testing.T) {
	srv := testDynamicServer(t)
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)

	c.send("snapshot")
	before := c.readLine()
	if !strings.HasPrefix(before, "snapshot n=64 ") || !strings.Contains(before, "seq=0") {
		t.Fatalf("initial snapshot = %q", before)
	}

	// Find a non-adjacent pair by probing distances.
	c.send("dist 0 1")
	if first := c.readLine(); strings.HasPrefix(first, "err") {
		t.Fatalf("dist probe failed: %q", first)
	}

	c.send("update 0 1 del") // may or may not exist; both shapes are valid
	del := c.readLine()
	if !strings.HasPrefix(del, "update 0 1 del = applied=") {
		t.Fatalf("update response = %q", del)
	}
	c.send("update 0 1 add")
	add := c.readLine()
	if !strings.Contains(add, "applied=true") {
		t.Fatalf("adding a just-deleted or absent edge: %q", add)
	}
	c.send("dist 0 1")
	if got := stripLatency(c.readLine()); got != "dist 0 1 = 1 exact=true bound=1" {
		t.Fatalf("after inserting {0,1}: %q", got)
	}
	c.send("update 0 1 add")
	if noop := c.readLine(); !strings.Contains(noop, "applied=false") {
		t.Fatalf("re-inserting a present edge: %q", noop)
	}

	c.send("snapshot verify")
	ver := c.readLine()
	if !strings.Contains(ver, "verified=true consistent=true") {
		t.Fatalf("verify snapshot = %q", ver)
	}

	c.send("update 0 1 flip")
	if e := c.readLine(); !strings.HasPrefix(e, "err want") {
		t.Fatalf("bad op answered %q", e)
	}
	c.send("update 0 999 add")
	if e := c.readLine(); !strings.HasPrefix(e, "err") {
		t.Fatalf("out-of-range update answered %q", e)
	}
}

// A static server must refuse the dynamic verbs without dying.
func TestStaticServerRefusesUpdates(t *testing.T) {
	srv := New(testOracle(t), Config{})
	lines := runScript(t, srv, "update 1 2 add\nsnapshot\ndist 1 2\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	for _, l := range lines[:2] {
		if !strings.HasPrefix(l, "err updates not supported") {
			t.Fatalf("static server answered %q", l)
		}
	}
	if strings.HasPrefix(lines[2], "err") {
		t.Fatalf("connection unusable after refused update: %q", lines[2])
	}
}

// The binary MsgUpdate/MsgSnap path through a real wire.Client, plus the
// updated-state visibility guarantee across protocol flavors.
func TestBinaryUpdateSnapshot(t *testing.T) {
	srv := testDynamicServer(t)
	addr, _, _ := startTCP(t, srv)
	c, err := wire.Dial(addr, wire.ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Version() != 4 {
		t.Fatalf("negotiated %d, want 4", c.Version())
	}

	info0, err := c.Snap(false)
	if err != nil || info0.N != 64 {
		t.Fatalf("Snap = (%+v, %v)", info0, err)
	}
	res, err := c.Update(2, 60, true)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if res.Applied {
		// The edge was absent; distance must now be 1.
		a, err := c.Dist(2, 60)
		if err != nil || a.Dist != 1 {
			t.Fatalf("Dist(2,60) after insert = (%+v, %v)", a, err)
		}
	}
	info1, err := c.Snap(true)
	if err != nil {
		t.Fatalf("Snap verify: %v", err)
	}
	if !info1.Verified || !info1.Consistent {
		t.Fatalf("verify snapshot: %+v", info1)
	}
	if res.Applied && (info1.Seq != info0.Seq+1 || info1.M != info0.M+1) {
		t.Fatalf("seq/m did not advance: %+v -> %+v", info0, info1)
	}
	if _, err := c.Update(2, 64, true); err == nil {
		t.Fatal("out-of-range binary update succeeded")
	}
	if !c.Healthy() {
		t.Fatal("remote error killed the connection")
	}
}

// A static binary server refuses MsgUpdate with MsgErr and keeps serving.
func TestBinaryStaticRefusesUpdates(t *testing.T) {
	srv := New(testOracle(t), Config{})
	addr, _, _ := startTCP(t, srv)
	c, err := wire.Dial(addr, wire.ClientOptions{RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Update(1, 2, true); err == nil {
		t.Fatal("static server accepted an update")
	} else if !strings.Contains(err.Error(), "updates not supported") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	if _, err := c.Snap(false); err == nil {
		t.Fatal("static server answered a snapshot")
	}
	if a, err := c.Dist(1, 2); err != nil || a.U != 1 {
		t.Fatalf("Dist after refusals = (%+v, %v)", a, err)
	}
}

// Concurrent binary updates and queries must stay consistent: the final
// verify snapshot proves the maintained spanner equals a from-scratch
// rebuild after racing traffic.
func TestBinaryConcurrentUpdatesAndQueries(t *testing.T) {
	srv := testDynamicServer(t)
	addr, _, _ := startTCP(t, srv)
	upd, err := wire.Dial(addr, wire.ClientOptions{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer upd.Close()
	qry, err := wire.Dial(addr, wire.ClientOptions{RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer qry.Close()

	done := make(chan error, 1)
	go func() {
		r := rng.New(8)
		for i := 0; i < 60; i++ {
			u, v := int32(r.Intn(64)), int32(r.Intn(64))
			if u == v {
				continue
			}
			if _, err := upd.Update(u, v, r.Bernoulli(0.5)); err != nil {
				done <- fmt.Errorf("update %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()
	r := rng.New(9)
	for i := 0; i < 120; i++ {
		u, v := int32(r.Intn(64)), int32(r.Intn(64))
		if _, err := qry.Dist(u, v); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	info, err := upd.Snap(true)
	if err != nil || !info.Consistent {
		t.Fatalf("final verify snapshot = (%+v, %v)", info, err)
	}
}
