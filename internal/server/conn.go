package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/wire"
)

// deadliner is the part of net.Conn the session needs for idle/write
// deadlines; a nil deadliner (stdin mode) disables them.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// session is one connection's protocol state.
type session struct {
	srv *Server
	rd  *lineReader
	w   *bufio.Writer
	dl  deadliner
}

// runSession classifies the connection's protocol from its first byte —
// wire.MagicByte opens a binary frame session, anything else a text line
// session — and runs the matching loop until EOF, "quit", a dead
// connection, an idle timeout, or a server drain.
func (s *Server) runSession(in io.Reader, out io.Writer, dl deadliner) {
	br := bufio.NewReaderSize(in, 4096)
	if s.draining.Load() {
		return
	}
	// The sniff runs under the idle deadline like any other read: a
	// connection that sends nothing is a slow loris whichever protocol it
	// was going to speak. One byte suffices because the binary magic byte
	// is non-ASCII — peeking more could hang an interactive text client
	// that typed a short line.
	if dl != nil && s.cfg.IdleTimeout > 0 {
		dl.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	first, err := br.Peek(1)
	if err != nil {
		if isTimeout(err) && !s.draining.Load() {
			s.counters.Add("timeouts", 1)
			s.counters.Add("errs", 1)
			if dl != nil && s.cfg.WriteTimeout > 0 {
				dl.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			io.WriteString(out, "err idle timeout, closing connection\n")
		}
		return
	}
	if first[0] == wire.MagicByte {
		s.counters.Add("binconns", 1)
		s.runBinarySession(br, out, dl)
		return
	}
	s.runTextSession(br, out, dl)
}

// runTextSession speaks the line protocol over an already-sniffed reader.
// Every exit flushes any pending response first, so an in-flight request
// is answered before the connection closes.
func (s *Server) runTextSession(in io.Reader, out io.Writer, dl deadliner) {
	sess := &session{srv: s, rd: newLineReader(in, s.cfg.MaxLineBytes), w: bufio.NewWriter(out), dl: dl}
	defer sess.flush()
	for {
		if s.draining.Load() {
			return
		}
		sess.armReadDeadline()
		line, tooLong, err := sess.rd.readLine()
		if tooLong {
			s.counters.Add("toolong", 1)
			if sess.respondErrf("line too long (max %d bytes)", s.cfg.MaxLineBytes) != nil || err != nil {
				return
			}
			continue
		}
		if err != nil {
			// EOF and mid-line disconnects close silently (there is no one
			// left to answer); an idle timeout tells the slow client why it
			// is being dropped — unless the deadline fired because the
			// server is draining.
			if isTimeout(err) && !s.draining.Load() {
				s.counters.Add("timeouts", 1)
				sess.respondErrf("idle timeout, closing connection")
			}
			return
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			return
		}
		s.counters.Add("requests", 1)
		if sess.handle(line) != nil {
			return
		}
	}
}

// armReadDeadline starts the idle clock for the next read.
func (sess *session) armReadDeadline() {
	if sess.dl != nil && sess.srv.cfg.IdleTimeout > 0 {
		sess.dl.SetReadDeadline(time.Now().Add(sess.srv.cfg.IdleTimeout))
	}
}

// writeLine queues one response line; write errors surface on flush.
func (sess *session) writeLine(line string) {
	sess.w.WriteString(line)
	sess.w.WriteByte('\n')
}

// flush pushes queued response lines under the write deadline.
func (sess *session) flush() error {
	if sess.dl != nil && sess.srv.cfg.WriteTimeout > 0 {
		sess.dl.SetWriteDeadline(time.Now().Add(sess.srv.cfg.WriteTimeout))
	}
	return sess.w.Flush()
}

// respond writes and flushes a single response line; a non-nil error means
// the connection is unusable.
func (sess *session) respond(line string) error {
	sess.writeLine(line)
	return sess.flush()
}

// respondErrf answers "err <message>" and counts it.
func (sess *session) respondErrf(format string, args ...any) error {
	sess.srv.counters.Add("errs", 1)
	if len(args) == 0 {
		return sess.respond("err " + format)
	}
	return sess.respond("err " + fmt.Sprintf(format, args...))
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
