package server

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/oracle"
)

// TestHandleTable drives the protocol layer line by line — the coverage
// the old cmd/dcserve handle/parsePair never had.
func TestHandleTable(t *testing.T) {
	o := testOracle(t)
	cases := []struct {
		name  string
		input string
		want  string // regexp anchored to the full (single) response line; "" = no response
	}{
		{"dist self", "dist 2 2", `^dist 2 2 = 0 exact=true bound=0 us=\d+\.\d$`},
		{"dist normal", "dist 0 100", `^dist 0 100 = \d+ exact=true bound=\d+ us=\d+\.\d$`},
		{"empty line", "", ``},
		{"whitespace only", "   \t  ", ``},
		{"comment", "# a comment", ``},
		{"missing args", "dist 1", `^err want "dist <u> <v>"$`},
		{"too many args", "dist 1 2 3", `^err want "dist <u> <v>"$`},
		{"bad vertex", "dist a b", `^err bad vertex in \[a b\]$`},
		{"negative vertex", "dist -1 5", `^err oracle: query \(-1,5\) out of range \[0,128\)$`},
		{"out of range", "dist 0 128", `^err oracle: query \(0,128\) out of range \[0,128\)$`},
		{"int32 overflow", "dist 4294967296 0", `^err bad vertex in \[4294967296 0\]$`},
		{"int64 overflow", "dist 99999999999999999999 0", `^err bad vertex in \[99999999999999999999 0\]$`},
		{"route self", "route 3 3", `^route 3 3 = 0 path=3$`},
		{"route normal", "route 0 100", `^route 0 100 = \d+ path=\d+(-\d+)*$`},
		{"route bad", "route x 1", `^err bad vertex in \[x 1\]$`},
		{"unknown command", "frobnicate 1 2", `^err unknown command "frobnicate" \(want dist\|route\|batch\|trace\|stats\|update\|snapshot\|quit\)$`},
		{"batch missing n", "batch", `^err want "batch <n>"$`},
		{"batch zero", "batch 0", `^err batch size must be in \[1, \d+\]$`},
		{"batch negative", "batch -3", `^err batch size must be in \[1, \d+\]$`},
		{"batch huge", "batch 99999999", `^err batch size must be in \[1, \d+\]$`},
		{"batch bad n", "batch xyz", `^err batch size must be in \[1, \d+\]$`},
		{"batch int64 overflow", "batch 99999999999999999999", `^err batch size must be in \[1, \d+\]$`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(o, Config{})
			got := runScript(t, srv, tc.input+"\n")
			if tc.want == "" {
				if len(got) != 0 {
					t.Fatalf("input %q: unexpected response %q", tc.input, got)
				}
				return
			}
			if len(got) != 1 {
				t.Fatalf("input %q: got %d response lines %q, want 1", tc.input, len(got), got)
			}
			if !regexp.MustCompile(tc.want).MatchString(got[0]) {
				t.Fatalf("input %q: response %q does not match %q", tc.input, got[0], tc.want)
			}
		})
	}
}

// TestStatsShape pins the extended stats response: the oracle report, a
// separator, and the server counter block with every declared counter.
func TestStatsShape(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	lines := runScript(t, srv, "dist 0 1\nbogus\nstats\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines %q, want 3", len(lines), lines)
	}
	stats := lines[2]
	if !strings.HasPrefix(stats, "stats backend=") {
		t.Fatalf("stats response %q lacks oracle report prefix", stats)
	}
	if !strings.Contains(stats, " | server ") {
		t.Fatalf("stats response %q lacks server section", stats)
	}
	for _, field := range []string{"conns=1", "busy=0", "requests=3", "batches=0",
		"errs=1", "toolong=0", "timeouts=0", "active=", "routeP50=", "qps="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("stats response %q missing %q", stats, field)
		}
	}
	if strings.Contains(stats, "= -1") || strings.Contains(stats, "=-1") {
		t.Fatalf("stats response %q leaks a sentinel", stats)
	}
}

// TestDistUnreachableWord is the regression test for the sentinel leak:
// dist on a disconnected pair used to answer "= -1" (raw graph.Unreachable)
// while route answered "unreachable".
func TestDistUnreachableWord(t *testing.T) {
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	o, err := oracle.NewFromGraphs(g, g, 1, oracle.Options{Landmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(o, Config{})
	lines := runScript(t, srv, "dist 0 4\nroute 0 4\ndist 0 2\n")
	if len(lines) != 3 {
		t.Fatalf("got %q, want 3 lines", lines)
	}
	if lines[0] != "dist 0 4 = unreachable" {
		t.Fatalf("dist across components = %q, want %q", lines[0], "dist 0 4 = unreachable")
	}
	if lines[1] != "route 0 4 = unreachable" {
		t.Fatalf("route across components = %q, want %q", lines[1], "route 0 4 = unreachable")
	}
	if strings.Contains(lines[0]+lines[1], "-1") {
		t.Fatalf("sentinel leaked: %q", lines[:2])
	}
	if !strings.HasPrefix(lines[2], "dist 0 2 = 1 exact=true") {
		t.Fatalf("in-component dist = %q", lines[2])
	}
}

// TestBatchStream answers a batch over ServeStream and checks index
// alignment, including error slots for malformed and out-of-range lines.
func TestBatchStream(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	input := strings.Join([]string{
		"batch 6",
		"dist 0 1",
		"route 0 1", // wrong command inside a batch
		"dist -1 7", // out of range
		"dist 5 5",
		"garbage",
		"dist 0 1", // duplicate of index 0
		"",
	}, "\n")
	lines := runScript(t, srv, input)
	if len(lines) != 6 {
		t.Fatalf("batch 6 returned %d lines %q", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "dist 0 1 = ") {
		t.Fatalf("batch[0] = %q", lines[0])
	}
	if lines[1] != `err batch lines must be dist queries, got "route"` {
		t.Fatalf("batch[1] = %q", lines[1])
	}
	if lines[2] != "err oracle: query (-1,7) out of range [0,128)" {
		t.Fatalf("batch[2] = %q", lines[2])
	}
	if lines[3] != "dist 5 5 = 0 exact=true bound=0" {
		t.Fatalf("batch[3] = %q", lines[3])
	}
	if !strings.HasPrefix(lines[4], "err batch lines must be dist queries") {
		t.Fatalf("batch[4] = %q", lines[4])
	}
	if lines[5] != lines[0] {
		t.Fatalf("identical queries disagree: %q vs %q", lines[0], lines[5])
	}
	if got := srv.Counter("batches"); got != 1 {
		t.Fatalf("batches counter = %d, want 1", got)
	}
	// The batch line plus its 6 sub-requests.
	if got := srv.Counter("requests"); got != 7 {
		t.Fatalf("requests counter = %d, want 7", got)
	}
}

// TestBatchMatchesSequential: every batch answer must equal the sequential
// dist answer for the same pair (modulo the us= latency field).
func TestBatchMatchesSequential(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	const n = 40
	var batchIn, seqIn strings.Builder
	fmt.Fprintf(&batchIn, "batch %d\n", n)
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("dist %d %d\n", (i*7)%128, (i*31+5)%128)
		batchIn.WriteString(q)
		seqIn.WriteString(q)
	}
	seq := runScript(t, New(o, Config{}), seqIn.String())
	batch := runScript(t, srv, batchIn.String())
	if len(seq) != n || len(batch) != n {
		t.Fatalf("line counts: seq=%d batch=%d, want %d", len(seq), len(batch), n)
	}
	for i := range seq {
		if stripLatency(seq[i]) != batch[i] {
			t.Fatalf("index %d: sequential %q vs batch %q", i, seq[i], batch[i])
		}
	}
}

// TestQuitEndsStream: nothing is processed after quit.
func TestQuitEndsStream(t *testing.T) {
	o := testOracle(t)
	lines := runScript(t, New(o, Config{}), "dist 0 1\nquit\ndist 2 3\n")
	if len(lines) != 1 {
		t.Fatalf("got %q, want exactly the pre-quit response", lines)
	}
}
