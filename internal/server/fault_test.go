package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// TestOversizedLineAnsweredNotDropped is the regression test for the
// silent-kill bug: the old bufio.Scanner path never checked sc.Err(), so a
// request line over 64KB ended the connection with no response. The
// hardened reader must answer "err line too long", resync, and keep the
// connection serving — here with a 1MB line against the documented max.
func TestOversizedLineAnsweredNotDropped(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)

	huge := strings.Repeat("a", 1<<20) // 1MB, far over the 256KB default
	c.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.conn.Write(append([]byte(huge), '\n')); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	want := fmt.Sprintf("err line too long (max %d bytes)", DefaultMaxLineBytes)
	if got := c.readLine(); got != want {
		t.Fatalf("oversized line answered %q, want %q", got, want)
	}
	// The connection survived and still serves.
	c.send("dist 0 1")
	if got := c.readLine(); !strings.HasPrefix(got, "dist 0 1 = ") {
		t.Fatalf("connection unusable after oversized line: %q", got)
	}
	if got := srv.Counter("toolong"); got != 1 {
		t.Fatalf("toolong counter = %d, want 1", got)
	}
}

// TestOversizedLineOnStream covers the same bug on the stdin-style path
// (no deadlines) with a line just over the configured max.
func TestOversizedLineOnStream(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{MaxLineBytes: 1 << 10})
	input := strings.Repeat("x", 1<<10+1) + "\ndist 0 1\n"
	lines := runScript(t, srv, input)
	if len(lines) != 2 {
		t.Fatalf("got %q, want err + answer", lines)
	}
	if lines[0] != "err line too long (max 1024 bytes)" {
		t.Fatalf("lines[0] = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "dist 0 1 = ") {
		t.Fatalf("lines[1] = %q", lines[1])
	}
	// A line of exactly the max is served, not rejected.
	exact := "dist 0 1" + strings.Repeat(" ", 1<<10-8)
	if lines := runScript(t, New(o, Config{MaxLineBytes: 1 << 10}), exact+"\n"); len(lines) != 1 ||
		!strings.HasPrefix(lines[0], "dist 0 1 = ") {
		t.Fatalf("exact-max line answered %q", lines)
	}
}

// TestMalformedFlood: a client spewing garbage gets an error per line and
// the connection stays up throughout.
func TestMalformedFlood(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)
	for i := 0; i < 50; i++ {
		c.send(fmt.Sprintf("junk%d x y z", i))
		if got := c.readLine(); !strings.HasPrefix(got, "err unknown command") {
			t.Fatalf("flood line %d answered %q", i, got)
		}
	}
	c.send("dist 1 2")
	if got := c.readLine(); !strings.HasPrefix(got, "dist 1 2 = ") {
		t.Fatalf("connection dead after flood: %q", got)
	}
	if got := srv.Counter("errs"); got != 50 {
		t.Fatalf("errs counter = %d, want 50", got)
	}
}

// TestSlowLorisIdleTimeout: a client that opens a connection and trickles
// (or stalls mid-line) must be told why and disconnected at the idle
// deadline, freeing its slot.
func TestSlowLorisIdleTimeout(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{IdleTimeout: 100 * time.Millisecond})
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)

	// Half a request, then silence.
	if _, err := c.conn.Write([]byte("dist 0")); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	got, err := c.tryReadLine(5 * time.Second)
	if err != nil {
		t.Fatalf("slow client read: %v", err)
	}
	if got != "err idle timeout, closing connection" {
		t.Fatalf("slow client answered %q", got)
	}
	if _, err := c.tryReadLine(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("slow client not disconnected: %v", err)
	}
	if srv.Counter("timeouts") != 1 {
		t.Fatalf("timeouts counter = %d, want 1", srv.Counter("timeouts"))
	}
}

// TestSlowLorisInsideBatch: stalling between batch lines hits the same
// idle deadline instead of pinning a worker forever.
func TestSlowLorisInsideBatch(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{IdleTimeout: 100 * time.Millisecond})
	addr, _, _ := startTCP(t, srv)
	c := dialClient(t, addr)

	c.send("batch 3")
	c.send("dist 0 1") // then never send the remaining two lines
	got, err := c.tryReadLine(5 * time.Second)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != "err idle timeout inside batch, closing connection" {
		t.Fatalf("stalled batch answered %q", got)
	}
	if _, err := c.tryReadLine(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("stalled batch client not disconnected: %v", err)
	}
}

// TestMidLineDisconnect: a client that dies mid-request must not wedge or
// panic the server; the next connection is served normally.
func TestMidLineDisconnect(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	addr, _, _ := startTCP(t, srv)

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Write([]byte("dist 12")); err != nil { // no newline
		t.Fatalf("partial write: %v", err)
	}
	conn.Close()

	// Same fault mid-batch: header promised 2 lines, connection died after 1.
	conn2, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn2.Write([]byte("batch 2\ndist 0 1\n")); err != nil {
		t.Fatalf("batch write: %v", err)
	}
	conn2.Close()

	// The server shrugged both off and keeps serving.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a := srv.Active(); a != 0 {
		t.Fatalf("%d sessions leaked after disconnects", a)
	}
	c := dialClient(t, addr)
	c.send("dist 3 4")
	if got := c.readLine(); !strings.HasPrefix(got, "dist 3 4 = ") {
		t.Fatalf("server unhealthy after disconnects: %q", got)
	}
}

// TestOversizedBatchLineKeepsAlignment: one oversized line inside a batch
// consumes its slot with an error; the other slots still answer.
func TestOversizedBatchLineKeepsAlignment(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{MaxLineBytes: 64})
	input := "batch 3\ndist 0 1\ndist 2 " + strings.Repeat("9", 100) + "\ndist 5 5\n"
	lines := runScript(t, srv, input)
	if len(lines) != 3 {
		t.Fatalf("got %d lines %q, want 3", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "dist 0 1 = ") {
		t.Fatalf("lines[0] = %q", lines[0])
	}
	if lines[1] != "err line too long (max 64 bytes)" {
		t.Fatalf("lines[1] = %q", lines[1])
	}
	if lines[2] != "dist 5 5 = 0 exact=true bound=0" {
		t.Fatalf("lines[2] = %q", lines[2])
	}
}

// TestTruncatedMaxBatchCostsNothing: a client that promises the maximum
// batch size and immediately disconnects must not hang the session or
// commit the server to the full batch's allocations — the batch buffers
// grow with the lines actually received, so the only cost of the empty
// promise is the small initial capacity.
func TestTruncatedMaxBatchCostsNothing(t *testing.T) {
	o := testOracle(t)
	srv := New(o, Config{})
	lines := runScript(t, srv, fmt.Sprintf("batch %d\n", DefaultMaxBatch))
	if len(lines) != 0 {
		t.Fatalf("truncated batch answered %d lines %q, want none", len(lines), lines)
	}
	// The same server still answers a fresh session.
	if got := runScript(t, srv, "dist 1 2\n"); len(got) != 1 || !strings.HasPrefix(got[0], "dist 1 2 = ") {
		t.Fatalf("server unhealthy after truncated batch: %q", got)
	}
}
